// Streaming-replay benchmark and smoke test: stream a synthetic SWF
// archive of REPLAY_JOBS jobs (default one million) through the online
// simulator with lazy admission, the O(1) metrics accumulator and
// discard retention, and report wire speed (events/s) plus peak heap.
// Peak memory is O(active jobs), so the heap figure stays flat as the
// archive grows — BENCH_2.json records the 100k-vs-1M evidence.
//
// Run: go test -bench BenchmarkReplay -benchtime 1x .
// Smoke (CI, under GOMEMLIMIT): REPLAY_SMOKE=1 go test -run TestReplaySmoke -v .
package repro

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// replayM is the cluster width the replay stream is shaped for. The
// arrival rate (2 jobs/s) times the mean work per job (~10.5s × ~1.5
// procs) keeps utilization near 50%, so the queue — and with it the
// active set — stays bounded however long the archive is.
const replayM = 64

// replayJobs resolves the archive size (REPLAY_JOBS env, default 1M).
func replayJobs(tb testing.TB) int {
	n := 1_000_000
	if s := os.Getenv("REPLAY_JOBS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			tb.Fatalf("bad REPLAY_JOBS %q", s)
		}
		n = v
	}
	return n
}

// writeReplayArchive streams an n-job rigid trace to path in O(1)
// memory (the generator writes line by line; nothing is accumulated).
func writeReplayArchive(tb testing.TB, path string, n int) {
	tb.Helper()
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	w := trace.NewSWFWriter(f)
	rng := stats.NewRNG(1)
	for i := 0; i < n; i++ {
		if err := w.Write(trace.SWFRecord{
			ID: i, Submit: float64(i) * 0.5, Wait: 0,
			Runtime: rng.Range(1, 20), Procs: rng.IntRange(1, 2), Weight: 1,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
}

// streamReplay replays the archive once and returns the event count
// and the peak heap observed by a 5ms sampler during the run.
func streamReplay(tb testing.TB, path string, n int) (events uint64, peakHeap uint64) {
	tb.Helper()
	f, err := os.Open(path)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	sim, err := cluster.New(des.New(), replayM, 1, cluster.EASYPolicy{}, cluster.KillNewest)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sim.SetRetention(metrics.NewDiscard()); err != nil {
		tb.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var peak uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()

	if err := sim.Stream(trace.NewSWFJobSource(f)); err != nil {
		tb.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		tb.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if sim.CompletedCount() != n {
		tb.Fatalf("completed %d of %d jobs", sim.CompletedCount(), n)
	}
	if sim.Report().Makespan <= 0 {
		tb.Fatal("degenerate replay report")
	}
	return sim.DES.Processed, peak
}

// BenchmarkReplayMillionJobs streams the archive through the engine and
// reports events/s and peak heap alongside the standard measurements.
func BenchmarkReplayMillionJobs(b *testing.B) {
	n := replayJobs(b)
	path := filepath.Join(b.TempDir(), "archive.swf")
	writeReplayArchive(b, path, n)
	b.ReportAllocs()
	b.ResetTimer()
	var events, peak uint64
	for i := 0; i < b.N; i++ {
		ev, pk := streamReplay(b, path, n)
		events += ev
		if pk > peak {
			peak = pk
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(peak), "peak-heap-B")
}

// TestReplaySmokeMillionJobs is the CI replay smoke (REPLAY_SMOKE=1,
// run under GOMEMLIMIT by scripts/smoke_replay.sh): the full archive
// must stream within a hard peak-heap bound and above an events/s
// floor. Bounds are env-tunable for slow runners:
// REPLAY_MAX_HEAP_MB (default 256), REPLAY_MIN_EVENTS_PER_SEC
// (default 100000).
func TestReplaySmokeMillionJobs(t *testing.T) {
	if os.Getenv("REPLAY_SMOKE") == "" {
		t.Skip("set REPLAY_SMOKE=1 to run the streaming replay smoke")
	}
	envInt := func(key string, def int) int {
		if s := os.Getenv(key); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				t.Fatalf("bad %s %q", key, s)
			}
			return v
		}
		return def
	}
	maxHeapMB := envInt("REPLAY_MAX_HEAP_MB", 256)
	minEvents := envInt("REPLAY_MIN_EVENTS_PER_SEC", 100_000)

	n := replayJobs(t)
	path := filepath.Join(t.TempDir(), "archive.swf")
	writeReplayArchive(t, path, n)
	t0 := time.Now()
	events, peak := streamReplay(t, path, n)
	elapsed := time.Since(t0)

	rate := float64(events) / elapsed.Seconds()
	t.Logf("replayed %d jobs: %d events in %v (%.0f events/s), peak heap %.1f MiB",
		n, events, elapsed.Round(time.Millisecond), rate, float64(peak)/(1<<20))
	if peak > uint64(maxHeapMB)<<20 {
		t.Fatalf("peak heap %.1f MiB exceeds the %d MiB bound — streaming memory is not O(active)",
			float64(peak)/(1<<20), maxHeapMB)
	}
	if rate < float64(minEvents) {
		t.Fatalf("replay ran at %.0f events/s, below the %d floor", rate, minEvents)
	}
}
