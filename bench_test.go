// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md experiment index), plus the DESIGN.md §5
// ablations. Each benchmark regenerates its artifact end to end —
// workload generation, policy run, lower bounds, table rendering — so
// -bench times reflect the full experiment cost. Shapes (who wins, which
// bounds hold) are asserted by the experiment package's tests; here we
// only keep the artifacts honest by failing on errors.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"runtime"
	"testing"

	"repro/internal/bicriteria"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// benchScale keeps individual iterations under ~100 ms so -benchtime
// produces stable numbers; pass -benchscale=1 wiring is deliberately
// omitted — full-scale tables come from cmd/experiments. Workers enables
// the parallel replication runner, so BenchmarkTable* time what
// cmd/experiments -parallel ships; tables stay bit-identical to the
// sequential runner (asserted by TestParallelMatchesSequential in
// internal/experiments).
var benchScale = experiments.Scale{JobFactor: 10, Workers: runtime.GOMAXPROCS(0)}

func benchTable(b *testing.B, fn func(uint64, experiments.Scale) (*trace.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := fn(uint64(i), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig2NonParallel regenerates the "Non Parallel" series of
// Figure 2 (100 machines, sequential jobs).
func BenchmarkFig2NonParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := bicriteria.Fig2Series(bicriteria.Fig2Config{
			M: 100, Ns: []int{10, 50, 100, 200}, Seed: uint64(i), Reps: 1, Parallel: false,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 4 {
			b.Fatal("short series")
		}
	}
}

// BenchmarkFig2Parallel regenerates the "Parallel" series of Figure 2.
func BenchmarkFig2Parallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := bicriteria.Fig2Series(bicriteria.Fig2Config{
			M: 100, Ns: []int{10, 50, 100, 200}, Seed: uint64(i), Reps: 1, Parallel: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 4 {
			b.Fatal("short series")
		}
	}
}

// BenchmarkTableMRT regenerates T1 (§4.1, MRT vs baselines).
func BenchmarkTableMRT(b *testing.B) { benchTable(b, experiments.MRTTable) }

// BenchmarkTableBatch regenerates T2 (§4.2, online batches over MRT).
func BenchmarkTableBatch(b *testing.B) { benchTable(b, experiments.BatchTable) }

// BenchmarkTableSMART regenerates T3 (§4.3, SMART shelves).
func BenchmarkTableSMART(b *testing.B) { benchTable(b, experiments.SMARTTable) }

// BenchmarkTableBiCriteria regenerates T4 (§4.4, doubling bi-criteria).
func BenchmarkTableBiCriteria(b *testing.B) { benchTable(b, experiments.BiCriteriaTable) }

// BenchmarkTableDLT regenerates T5 (§2.1, divisible-load policies).
func BenchmarkTableDLT(b *testing.B) { benchTable(b, experiments.DLTTable) }

// BenchmarkTableCiGri regenerates T6 (§5.2, centralized CiGri on CIMENT).
func BenchmarkTableCiGri(b *testing.B) { benchTable(b, experiments.CiGriTable) }

// BenchmarkTableDecentralized regenerates T7 (§5.2, load exchange).
func BenchmarkTableDecentralized(b *testing.B) { benchTable(b, experiments.DecentralizedTable) }

// BenchmarkTableMixed regenerates T8 (§5.1, rigid+moldable strategies).
func BenchmarkTableMixed(b *testing.B) { benchTable(b, experiments.MixedTable) }

// BenchmarkTableReservations regenerates T9 (§5.1, reservations).
func BenchmarkTableReservations(b *testing.B) { benchTable(b, experiments.ReservationsTable) }

// BenchmarkTableMalleable regenerates EXT1 (§2.2 malleable extension).
func BenchmarkTableMalleable(b *testing.B) { benchTable(b, experiments.MalleableTable) }

// BenchmarkTableTreeDLT regenerates EXT2 (tree-network divisible load).
func BenchmarkTableTreeDLT(b *testing.B) { benchTable(b, experiments.TreeDLTTable) }

// BenchmarkTableCriteriaMatrix regenerates EXT3 (criteria matrix).
func BenchmarkTableCriteriaMatrix(b *testing.B) { benchTable(b, experiments.CriteriaMatrixTable) }

// BenchmarkTableHeteroGrid regenerates EXT4 (two-level grid scheduling).
func BenchmarkTableHeteroGrid(b *testing.B) { benchTable(b, experiments.HeteroGridTable) }

// BenchmarkAblationAllotment compares knapsack vs greedy MRT allotment.
func BenchmarkAblationAllotment(b *testing.B) { benchTable(b, experiments.AblationAllotment) }

// BenchmarkAblationDoublingBase sweeps the bi-criteria base deadline.
func BenchmarkAblationDoublingBase(b *testing.B) { benchTable(b, experiments.AblationDoublingBase) }

// BenchmarkAblationShelfFill compares SMART shelf-filling rules.
func BenchmarkAblationShelfFill(b *testing.B) { benchTable(b, experiments.AblationShelfFill) }

// BenchmarkAblationChunk sweeps the DLT self-scheduling chunk size.
func BenchmarkAblationChunk(b *testing.B) { benchTable(b, experiments.AblationChunk) }

// BenchmarkAblationKillPolicy compares best-effort eviction rules.
func BenchmarkAblationKillPolicy(b *testing.B) { benchTable(b, experiments.AblationKillPolicy) }

// BenchmarkAblationCompaction measures the left-shift post-pass.
func BenchmarkAblationCompaction(b *testing.B) { benchTable(b, experiments.AblationCompaction) }
