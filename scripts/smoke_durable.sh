#!/usr/bin/env bash
# Smoke-test the durable multi-tenant run store end to end: start gridd
# with -data-dir and a two-tenant -tenants file, complete runs (one
# traced) as tenant alpha, verify per-tenant auth (401/403) and quotas
# (alpha saturated gets 429 + Retry-After while beta still admits),
# kill -9 the daemon while a paper-scale run is mid-flight, restart on
# the same directory, and require (a) finished results and traces are
# byte-identical to the pre-crash responses, (b) the interrupted run
# recovers as failed with a restart reason, and (c) an identical
# resubmission is answered from the memo cache without re-executing.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18154}"
BIN="$(mktemp -d)"
trap 'kill -9 "${GRIDD_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT

fail() { echo "FAIL: $1" >&2; shift; for f in "$@"; do echo "--- $f" >&2; cat "$f" >&2 || true; done; exit 1; }

wait_http() {
  for _ in $(seq 1 50); do
    if curl -sf "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  curl -sf "$1" >/dev/null
}

go build -o "$BIN/gridd" ./cmd/gridd
go build -o "$BIN/gridctl" ./cmd/gridctl

DATA="$BIN/data"
cat > "$BIN/tenants.json" <<EOF
{"tenants":[
  {"name":"alpha","key":"alpha-key","max_active":1,"submit_rate":50,"burst":100},
  {"name":"beta","key":"beta-key","max_active":2,"submit_rate":50,"burst":100}
]}
EOF

start_gridd() {
  "$BIN/gridd" -addr "127.0.0.1:$PORT" -dilation 0 \
    -data-dir "$DATA" -tenants "$BIN/tenants.json" >"$BIN/gridd.$1.log" 2>&1 &
  GRIDD_PID=$!
  wait_http "http://127.0.0.1:$PORT/stats"
}

API="http://127.0.0.1:$PORT"
CTL_ALPHA() { GRIDD_API_KEY=alpha-key "$BIN/gridctl" -addr "$API" "$@"; }
CTL_BETA()  { GRIDD_API_KEY=beta-key  "$BIN/gridctl" -addr "$API" "$@"; }

echo "== boot with empty -data-dir =="
start_gridd boot1

echo "== auth: no key is 401, wrong key is 403 =="
BODY='{"spec":{"id":"auth-probe","kind":"mrt","params":{"ms":[16],"ns":[4000]}}}'
CODE="$(curl -s -o /dev/null -w '%{http_code}' -XPOST -d "$BODY" "$API/v1/runs")"
[ "$CODE" = 401 ] || fail "unauthenticated submit answered $CODE, want 401"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -XPOST -d "$BODY" -H 'Authorization: Bearer nope' "$API/v1/runs")"
[ "$CODE" = 403 ] || fail "unknown-key submit answered $CODE, want 403"

echo "== alpha completes a table run and a traced run =="
cat > "$BIN/table.json" <<EOF
{"id":"smoke-durable","kind":"mrt","params":{"ms":[16,32],"ns":[4000]}}
EOF
TABLE_ID="$(CTL_ALPHA submit -seed 7 "$BIN/table.json")"
for _ in $(seq 1 200); do
  if CTL_ALPHA status -format json "$TABLE_ID" | grep -q '"state": "done"'; then break; fi
  sleep 0.1
done
curl -sf "$API/v1/runs/$TABLE_ID/result?format=text" > "$BIN/table.pre.txt"

cat > "$BIN/traced.json" <<EOF
{"id":"smoke-durable-traced","kind":"online","workload":{"n":60,"m":32,"rigid_fraction":1},
 "policies":["fcfs"],"params":{"rates":[0.3]},"trace":{"events":true}}
EOF
TRACE_ID="$(CTL_ALPHA submit -seed 7 "$BIN/traced.json")"
for _ in $(seq 1 200); do
  if CTL_ALPHA status -format json "$TRACE_ID" | grep -q '"state": "done"'; then break; fi
  sleep 0.1
done
curl -sf "$API/v1/runs/$TRACE_ID/trace" > "$BIN/trace.pre"
curl -sf "$API/v1/runs/$TRACE_ID/result?format=text" > "$BIN/traced.pre.txt"
[ -s "$BIN/trace.pre" ] || fail "traced run produced no trace" "$BIN/gridd.boot1.log"

echo "== quotas: saturated alpha gets 429 + Retry-After while beta admits =="
# A paper-scale sweep: reliably still in flight while we probe quotas
# and then kill the daemon (alpha's max_active is 1, so it pins alpha's
# only slot).
cat > "$BIN/slow.json" <<EOF
{"id":"smoke-durable-slow","kind":"mrt","params":{"ms":[16,32,48,64,80,96,112,128],"ns":[8000,12000]}}
EOF
SLOW_ID="$(CTL_ALPHA submit -seed 7 "$BIN/slow.json")"
HDRS="$(curl -s -D - -o /dev/null -XPOST -d "$BODY" -H 'Authorization: Bearer alpha-key' "$API/v1/runs")"
echo "$HDRS" | head -1 | grep -q 429 || fail "saturated alpha not throttled: $(echo "$HDRS" | head -1)"
echo "$HDRS" | grep -qi '^retry-after:' || fail "429 carries no Retry-After header"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -XPOST -d "$BODY" -H 'Authorization: Bearer beta-key' "$API/v1/runs")"
[ "$CODE" = 202 ] || fail "beta refused ($CODE) while only alpha is saturated"

echo "== kill -9 mid-run, restart on the same -data-dir =="
CTL_ALPHA status -format json "$SLOW_ID" | grep -Eq '"state": "(queued|running)"' \
  || fail "slow run already terminal before the kill" "$BIN/gridd.boot1.log"
kill -9 "$GRIDD_PID"
GRIDD_PID=""
start_gridd boot2
grep -q "recovered" "$BIN/gridd.boot2.log" || fail "restart log mentions no recovery" "$BIN/gridd.boot2.log"

echo "== recovered results and traces are byte-identical =="
curl -sf "$API/v1/runs/$TABLE_ID/result?format=text" > "$BIN/table.post.txt"
cmp "$BIN/table.pre.txt" "$BIN/table.post.txt" || fail "recovered table differs"
curl -sf "$API/v1/runs/$TRACE_ID/result?format=text" > "$BIN/traced.post.txt"
curl -sf "$API/v1/runs/$TRACE_ID/trace" > "$BIN/trace.post"
cmp "$BIN/traced.pre.txt" "$BIN/traced.post.txt" || fail "recovered traced-run table differs"
cmp "$BIN/trace.pre" "$BIN/trace.post" || fail "recovered trace differs"

echo "== the interrupted run recovered as failed with a restart reason =="
SLOW="$(CTL_ALPHA status -format json "$SLOW_ID")"
echo "$SLOW" | grep -q '"state": "failed"' || fail "interrupted run not failed: $SLOW"
echo "$SLOW" | grep -q "interrupted by daemon restart" || fail "interrupted run lacks restart reason: $SLOW"

echo "== identical resubmission is served from the memo cache =="
RESP="$(curl -sf -XPOST -d "{\"spec\":$(cat "$BIN/traced.json"),\"seed\":7}" -H 'Authorization: Bearer alpha-key' "$API/v1/runs")"
echo "$RESP" | grep -q '"cached":true' || fail "resubmission not cached: $RESP"
echo "$RESP" | grep -q '"state":"done"' || fail "cached resubmission not immediately done: $RESP"
HIT_ID="$(echo "$RESP" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)"
curl -sf "$API/v1/runs/$HIT_ID/result?format=text" > "$BIN/traced.hit.txt"
cmp "$BIN/traced.pre.txt" "$BIN/traced.hit.txt" || fail "cached result differs from original"
curl -sf "$API/metrics" | grep -q '^gridd_run_cache_hits_total 1' \
  || fail "cache hit missing from /metrics" <(curl -sf "$API/metrics" | grep gridd_run)

kill -TERM "$GRIDD_PID"
wait "$GRIDD_PID" || true
GRIDD_PID=""
echo "OK: durable store smoke passed"
