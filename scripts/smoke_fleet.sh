#!/usr/bin/env bash
# Smoke-test distributed run execution end to end: build gridd and
# gridctl, render a reference table from a plain single-process daemon,
# then start a fleet coordinator (-fleet) with two worker processes
# (-worker), submit the same scenario through the ordinary run API,
# assert both workers hold leases concurrently, SIGKILL one of them
# mid-run, and require (a) the run still completes — the dead worker's
# cells requeue via lease TTL — and (b) the rendered table is
# byte-identical to the single-process reference.
set -euo pipefail
cd "$(dirname "$0")/.."

LOCAL_PORT="${LOCAL_PORT:-18152}"
COORD_PORT="${COORD_PORT:-18153}"
BIN="$(mktemp -d)"
trap 'kill -9 "${LOCAL_PID:-}" "${COORD_PID:-}" "${W1_PID:-}" "${W2_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT

fail() { echo "FAIL: $1" >&2; shift; for f in "$@"; do echo "--- $f" >&2; cat "$f" >&2 || true; done; exit 1; }

# wait_http URL: poll until the endpoint answers.
wait_http() {
  for _ in $(seq 1 50); do
    if curl -sf "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  curl -sf "$1" >/dev/null
}

go build -o "$BIN/gridd" ./cmd/gridd
go build -o "$BIN/gridctl" ./cmd/gridctl

echo "== build identity =="
"$BIN/gridd" -version
"$BIN/gridd" -version | grep -q "catalog" || fail "gridd -version missing catalog hash"

# A paper-scale MRT sweep: 16 cells of a few hundred ms each, so the
# run is reliably still in flight when we observe the fleet and kill a
# worker.
cat > "$BIN/spec.json" <<EOF
{"id":"smoke-fleet","kind":"mrt","params":{"ms":[16,32,48,64,80,96,112,128],"ns":[8000,12000]}}
EOF

echo "== reference: single-process run =="
"$BIN/gridd" -addr "127.0.0.1:$LOCAL_PORT" -dilation 0 >"$BIN/local.log" 2>&1 &
LOCAL_PID=$!
wait_http "http://127.0.0.1:$LOCAL_PORT/stats"
"$BIN/gridctl" -addr "http://127.0.0.1:$LOCAL_PORT" run -seed 7 "$BIN/spec.json" > "$BIN/local.txt"
kill -TERM "$LOCAL_PID"
wait "$LOCAL_PID" || true
LOCAL_PID=""

echo "== coordinator (-fleet, 2s lease TTL) + 2 worker processes =="
"$BIN/gridd" -addr "127.0.0.1:$COORD_PORT" -dilation 0 -fleet -fleet-ttl 2s >"$BIN/coord.log" 2>&1 &
COORD_PID=$!
wait_http "http://127.0.0.1:$COORD_PORT/stats"
"$BIN/gridd" -worker -coordinator "http://127.0.0.1:$COORD_PORT" -worker-id w1 -worker-batch 2 >"$BIN/w1.log" 2>&1 &
W1_PID=$!
"$BIN/gridd" -worker -coordinator "http://127.0.0.1:$COORD_PORT" -worker-id w2 -worker-batch 2 >"$BIN/w2.log" 2>&1 &
W2_PID=$!

GRIDCTL="$BIN/gridctl -addr http://127.0.0.1:$COORD_PORT"
RUN_ID="$($GRIDCTL submit -seed 7 "$BIN/spec.json")"
echo "submitted distributed run $RUN_ID"

echo "== both workers must lease concurrently, then SIGKILL w1 mid-run =="
CONCURRENT=0
for _ in $(seq 1 200); do
  LEASED="$($GRIDCTL workers | awk 'NR > 1 && $4 > 0 {n++} END {print n+0}')"
  if [ "$LEASED" -ge 2 ]; then CONCURRENT=1; break; fi
  sleep 0.05
done
[ "$CONCURRENT" = 1 ] || fail "never observed 2 workers holding leases concurrently" "$BIN/coord.log" "$BIN/w1.log" "$BIN/w2.log"
$GRIDCTL workers
kill -9 "$W1_PID"
W1_PID=""
echo "SIGKILLed worker w1 mid-run"

echo "== run must still complete (dead worker's cells requeue via TTL) =="
DONE=0
for _ in $(seq 1 1200); do
  STATE="$($GRIDCTL status "$RUN_ID")"
  if echo "$STATE" | grep -q '"state": "done"'; then DONE=1; break; fi
  if echo "$STATE" | grep -Eq '"state": "(failed|cancelled)"'; then
    fail "run $RUN_ID terminated abnormally: $STATE" "$BIN/coord.log" "$BIN/w2.log"
  fi
  sleep 0.1
done
[ "$DONE" = 1 ] || fail "run $RUN_ID did not complete after worker death" "$BIN/coord.log" "$BIN/w2.log"

curl -sf "http://127.0.0.1:$COORD_PORT/v1/runs/$RUN_ID/result?format=text" > "$BIN/fleet.txt"
cmp "$BIN/local.txt" "$BIN/fleet.txt" \
  || fail "distributed table differs from single-process reference" <(diff "$BIN/local.txt" "$BIN/fleet.txt" || true)
echo "distributed table is byte-identical to the single-process reference"

$GRIDCTL status "$RUN_ID" | grep -q '"w2"' \
  || fail "surviving worker w2 missing from run status workers field"

echo "== fleet view after the kill =="
$GRIDCTL workers

echo "== graceful worker drain (SIGTERM) =="
kill -TERM "$W2_PID"
wait "$W2_PID" || true
W2_PID=""
grep -q "drained" "$BIN/w2.log" || fail "worker w2 did not drain gracefully" "$BIN/w2.log"

kill -TERM "$COORD_PID"
wait "$COORD_PID" || true
COORD_PID=""
grep -q "drained" "$BIN/coord.log" || fail "coordinator did not drain gracefully" "$BIN/coord.log"
echo "OK: fleet smoke passed"
