#!/usr/bin/env bash
# Smoke-test the online scheduler service end to end: build gridd,
# loadgen and gridctl, start the daemon, fire a paced batch of jobs and
# assert every one completes, then run a max-rate probe and assert the
# service sustains at least MIN_RPS submissions per second with zero
# lost jobs. Exercise the /v1 run-lifecycle API through the pkg/client
# SDK (gridctl): submit a run and stream its per-cell events, assert
# the legacy POST /scenarios shim returns byte-identically the same
# table as the /v1 pipeline, and cancel a paper-scale run mid-flight.
# Then repeat the load exercise against a 4-cluster broker fleet: a
# campaign of CAMPAIGN_TASKS best-effort tasks must fan out and
# complete, and the max-rate probe must sustain MIN_RPS through the
# routing layer too.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18142}"
BROKER_PORT="${BROKER_PORT:-18143}"
MIN_RPS="${MIN_RPS:-5000}"
PROBE_JOBS="${PROBE_JOBS:-20000}"
CAMPAIGN_TASKS="${CAMPAIGN_TASKS:-500}"
BIN="$(mktemp -d)"
trap 'kill "${GRIDD_PID:-}" "${BROKER_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT

# assert_rps OUTPUT: extract the sustained jobs/s figure and compare.
assert_rps() {
  local out="$1" label="$2"
  local rps
  rps="$(echo "$out" | awk '{for (i = 2; i <= NF; i++) if ($i == "jobs/s") print $(i-1)}' | head -1)"
  if [ -z "$rps" ] || [ "$(printf '%.0f' "$rps")" -lt "$MIN_RPS" ]; then
    echo "FAIL: $label sustained $rps jobs/s < $MIN_RPS" >&2
    exit 1
  fi
  echo "$label sustained $rps jobs/s"
}

# wait_http URL: poll until the endpoint answers.
wait_http() {
  for _ in $(seq 1 50); do
    if curl -sf "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  curl -sf "$1" >/dev/null
}

go build -o "$BIN/gridd" ./cmd/gridd
go build -o "$BIN/loadgen" ./cmd/loadgen
go build -o "$BIN/gridctl" ./cmd/gridctl

"$BIN/gridd" -addr "127.0.0.1:$PORT" -m 128 -policy easy -dilation 0 >"$BIN/gridd.log" 2>&1 &
GRIDD_PID=$!

wait_http "http://127.0.0.1:$PORT/stats"

echo "== smoke: 200 paced jobs, all must complete =="
"$BIN/loadgen" -addr "http://127.0.0.1:$PORT" -n 200 -rps 500 -workers 4 -wait -timeout 60s

echo "== probe: $PROBE_JOBS jobs at max rate, >= $MIN_RPS jobs/s =="
OUT="$("$BIN/loadgen" -addr "http://127.0.0.1:$PORT" -n "$PROBE_JOBS" -workers 8 -wait -timeout 120s)"
echo "$OUT"
assert_rps "$OUT" "single-cluster"

GRIDCTL="$BIN/gridctl -addr http://127.0.0.1:$PORT"

echo "== run API: submit via pkg/client, stream per-cell events =="
$GRIDCTL run -quick -watch mrt > "$BIN/v1.txt" 2> "$BIN/watch.log"
grep -q "cell" "$BIN/watch.log" || { echo "FAIL: no cell events streamed" >&2; cat "$BIN/watch.log" >&2; exit 1; }
grep -q "state: done" "$BIN/watch.log" || { echo "FAIL: stream missing terminal state" >&2; exit 1; }

echo "== run API: legacy /scenarios shim returns the same table as /v1 =="
$GRIDCTL run -quick -legacy mrt > "$BIN/legacy.txt"
cmp "$BIN/v1.txt" "$BIN/legacy.txt" \
  || { echo "FAIL: legacy shim table differs from /v1 result" >&2; diff "$BIN/v1.txt" "$BIN/legacy.txt" >&2 || true; exit 1; }

echo "== run API: cancel a paper-scale run mid-flight =="
# A 16-cell MRT sweep heavy enough (~seconds) that the immediate
# cancel below always lands mid-run; cancellation then resolves
# within one cell's duration.
cat > "$BIN/slow.json" <<EOF
{"id":"smoke-slow","kind":"mrt","params":{"ms":[16,32,48,64,80,96,112,128],"ns":[8000,12000]}}
EOF
RUN_ID="$($GRIDCTL submit "$BIN/slow.json")"
$GRIDCTL cancel "$RUN_ID" >/dev/null
CANCELLED=0
for _ in $(seq 1 100); do
  if $GRIDCTL status "$RUN_ID" | grep -q '"state": "cancelled"'; then CANCELLED=1; break; fi
  sleep 0.1
done
[ "$CANCELLED" = 1 ] || { echo "FAIL: run $RUN_ID did not cancel" >&2; $GRIDCTL status "$RUN_ID" >&2; exit 1; }
echo "run $RUN_ID cancelled mid-flight"

kill -TERM "$GRIDD_PID"
wait "$GRIDD_PID" || true
GRIDD_PID=""
grep -q "drained" "$BIN/gridd.log" || { echo "FAIL: gridd did not drain gracefully" >&2; cat "$BIN/gridd.log" >&2; exit 1; }

echo "== broker: 4-cluster fleet, campaign + max-rate probe =="
cat > "$BIN/fleet.json" <<EOF
{
  "grid_policy": "centralized",
  "dilation": 0,
  "defaults": {"policy": "easy"},
  "clusters": [
    {"name": "fast", "m": 128, "speed": 2},
    {"name": "a", "m": 64},
    {"name": "b", "m": 64},
    {"name": "small", "m": 32, "speed": 0.5}
  ]
}
EOF
"$BIN/gridd" -addr "127.0.0.1:$BROKER_PORT" -topology "$BIN/fleet.json" >"$BIN/broker.log" 2>&1 &
BROKER_PID=$!
wait_http "http://127.0.0.1:$BROKER_PORT/stats"

echo "== broker smoke: paced campaign of $CAMPAIGN_TASKS tasks must complete =="
"$BIN/loadgen" -addr "http://127.0.0.1:$BROKER_PORT" -campaign "$CAMPAIGN_TASKS" -run-time 20 -wait -timeout 60s

echo "== broker probe: $PROBE_JOBS jobs at max rate through the router, >= $MIN_RPS jobs/s =="
OUT="$("$BIN/loadgen" -addr "http://127.0.0.1:$BROKER_PORT" -n "$PROBE_JOBS" -workers 8 -wait -timeout 120s)"
echo "$OUT"
assert_rps "$OUT" "broker"

# Capture first: grep -q exits on the first match and would SIGPIPE
# curl under pipefail.
METRICS="$(curl -sf "http://127.0.0.1:$BROKER_PORT/metrics")"
echo "$METRICS" | grep -q 'gridd_cluster_jobs_completed_total{cluster="fast"}' \
  || { echo "FAIL: per-cluster metrics missing" >&2; exit 1; }

kill -TERM "$BROKER_PID"
wait "$BROKER_PID" || true
BROKER_PID=""
grep -q "drained fleet" "$BIN/broker.log" || { echo "FAIL: broker did not drain gracefully" >&2; cat "$BIN/broker.log" >&2; exit 1; }
echo "OK: service + broker smoke passed"
