#!/usr/bin/env bash
# Smoke-test the online scheduler service end to end: build gridd and
# loadgen, start the daemon, fire a paced batch of jobs and assert every
# one completes, then run a max-rate probe and assert the service
# sustains at least MIN_RPS submissions per second with zero lost jobs.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18142}"
MIN_RPS="${MIN_RPS:-5000}"
PROBE_JOBS="${PROBE_JOBS:-20000}"
BIN="$(mktemp -d)"
trap 'kill "${GRIDD_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/gridd" ./cmd/gridd
go build -o "$BIN/loadgen" ./cmd/loadgen

"$BIN/gridd" -addr "127.0.0.1:$PORT" -m 128 -policy easy -dilation 0 >"$BIN/gridd.log" 2>&1 &
GRIDD_PID=$!

# Wait for the daemon to listen.
for _ in $(seq 1 50); do
  if curl -sf "http://127.0.0.1:$PORT/stats" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "http://127.0.0.1:$PORT/stats" >/dev/null

echo "== smoke: 200 paced jobs, all must complete =="
"$BIN/loadgen" -addr "http://127.0.0.1:$PORT" -n 200 -rps 500 -workers 4 -wait -timeout 60s

echo "== probe: $PROBE_JOBS jobs at max rate, >= $MIN_RPS jobs/s =="
OUT="$("$BIN/loadgen" -addr "http://127.0.0.1:$PORT" -n "$PROBE_JOBS" -workers 8 -wait -timeout 120s)"
echo "$OUT"
RPS="$(echo "$OUT" | awk '{for (i = 2; i <= NF; i++) if ($i == "jobs/s") print $(i-1)}' | head -1)"
if [ -z "$RPS" ] || [ "$(printf '%.0f' "$RPS")" -lt "$MIN_RPS" ]; then
  echo "FAIL: sustained $RPS jobs/s < $MIN_RPS" >&2
  exit 1
fi

kill -TERM "$GRIDD_PID"
wait "$GRIDD_PID" || true
grep -q "drained" "$BIN/gridd.log" || { echo "FAIL: gridd did not drain gracefully" >&2; cat "$BIN/gridd.log" >&2; exit 1; }
echo "OK: service smoke passed ($RPS jobs/s sustained)"
