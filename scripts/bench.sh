#!/usr/bin/env sh
# bench.sh — run the table/figure benchmark suite and emit a JSON
# snapshot (ns/op, B/op, allocs/op per benchmark) for the perf
# trajectory tracked in BENCH_<pr>.json.
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 1s)
#   BENCH       benchmark regexp (default the table/figure suite)
#
# The committed BENCH_<pr>.json files wrap two of these snapshots as
# {"before": ..., "after": ...}; compare any two snapshots with your
# favourite JSON tooling or benchstat on the raw `go test -bench` output.
set -e
cd "$(dirname "$0")/.."
OUT="${1:-bench_snapshot.json}"
PATTERN="${BENCH:-BenchmarkTable|BenchmarkFig2}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "${BENCHTIME:-1s}" . | tee "$TMP"

# Benchmark lines are "<name> <iters> <value> <unit> <value> <unit>…".
# Custom b.ReportMetric units (e.g. events/s, peak-heap-B from the
# replay benchmark) shift the columns, so scan the value/unit pairs
# instead of hard-coding positions.
awk -v benchtime="${BENCHTIME:-1s}" '
BEGIN { print "{"; printf("  \"benchtime\": \"%s\",\n  \"results\": [", benchtime); first = 1 }
/^Benchmark/ && NF >= 4 {
  name = $1; sub(/-[0-9]+$/, "", name)
  if (!first) printf(",")
  first = 0
  printf("\n    {\"name\": \"%s\"", name)
  for (i = 3; i < NF; i += 2) {
    unit = $(i + 1)
    if (unit == "ns/op")          key = "ns_per_op"
    else if (unit == "B/op")      key = "bytes_per_op"
    else if (unit == "allocs/op") key = "allocs_per_op"
    else { key = unit; gsub(/[^A-Za-z0-9]+/, "_", key) }
    printf(", \"%s\": %s", key, $i)
  }
  printf("}")
}
END { print "\n  ]\n}" }' "$TMP" > "$OUT"

echo "wrote $OUT"
