#!/usr/bin/env bash
# Golden-file check for the scenario engine: every built-in scenario is
# run with -quick at the default seed and diffed byte-for-byte against
# the committed legacy-table output in testdata/golden/ — both through
# the sequential runner and the -parallel worker pool.
#
# Usage:
#   scripts/golden.sh            # check (CI mode, non-zero on any diff)
#   scripts/golden.sh generate   # refresh the goldens from the current build
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-check}"
bin="$(mktemp -d)/experiments"
go build -o "$bin" ./cmd/experiments

ids=$("$bin" -list-scenarios | awk '{print $1}')
mkdir -p testdata/golden
fail=0
for id in $ids; do
  golden="testdata/golden/$id.txt"
  if [ "$mode" = generate ]; then
    "$bin" -quick run "$id" > "$golden"
    echo "generated $golden"
    continue
  fi
  seq_out=$(mktemp)
  par_out=$(mktemp)
  "$bin" -quick run "$id" > "$seq_out"
  "$bin" -quick -parallel run "$id" > "$par_out"
  if ! cmp -s "$golden" "$seq_out"; then
    echo "GOLDEN MISMATCH (sequential): $id" >&2
    diff "$golden" "$seq_out" | head -20 >&2 || true
    fail=1
  fi
  if ! cmp -s "$golden" "$par_out"; then
    echo "GOLDEN MISMATCH (-parallel): $id" >&2
    diff "$golden" "$par_out" | head -20 >&2 || true
    fail=1
  fi
  rm -f "$seq_out" "$par_out"
done
if [ "$mode" = check ]; then
  if [ "$fail" -ne 0 ]; then
    echo "golden check failed" >&2
    exit 1
  fi
  echo "golden check ok ($(echo "$ids" | wc -w | tr -d ' ') scenarios, sequential + parallel)"
fi
