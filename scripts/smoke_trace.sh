#!/usr/bin/env bash
# Smoke-test the observability pipeline end to end: build gridd and
# gridctl, start the daemon with -pprof and -log-requests, run the
# traced example scenario through the /v1 run API, then assert the
# whole chain holds together — the JSONL trace is served and conserves
# jobs (submits == finishes + kills), `gridctl observe` renders it,
# -swf re-exports it as a replayable archive, the pprof index answers
# outside the API body caps, and /metrics carries the trace-derived
# histograms.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-18144}"
BIN="$(mktemp -d)"
trap 'kill "${GRIDD_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT

# wait_http URL: poll until the endpoint answers.
wait_http() {
  for _ in $(seq 1 50); do
    if curl -sf "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  curl -sf "$1" >/dev/null
}

go build -o "$BIN/gridd" ./cmd/gridd
go build -o "$BIN/gridctl" ./cmd/gridctl

"$BIN/gridd" -addr "127.0.0.1:$PORT" -dilation 0 -pprof -log-requests >"$BIN/gridd.log" 2>&1 &
GRIDD_PID=$!
wait_http "http://127.0.0.1:$PORT/stats"

GRIDCTL="$BIN/gridctl -addr http://127.0.0.1:$PORT"

echo "== traced run: submit the example spec, wait for done =="
RUN_ID="$($GRIDCTL submit examples/scenario/traced-run.json)"
DONE=0
for _ in $(seq 1 100); do
  if $GRIDCTL status -format json "$RUN_ID" | grep -q '"state": "done"'; then DONE=1; break; fi
  sleep 0.1
done
[ "$DONE" = 1 ] || { echo "FAIL: run $RUN_ID did not finish" >&2; $GRIDCTL status "$RUN_ID" >&2; exit 1; }

echo "== trace: JSONL served, submits == finishes + kills =="
$GRIDCTL trace "$RUN_ID" > "$BIN/trace.jsonl"
SUBMITS="$(grep -c '"ev":"submit"' "$BIN/trace.jsonl")"
FINISHES="$(grep -c '"ev":"finish"' "$BIN/trace.jsonl" || true)"
KILLS="$(grep -c '"ev":"kill"' "$BIN/trace.jsonl" || true)"
echo "submits=$SUBMITS finishes=$FINISHES kills=$KILLS"
[ "$SUBMITS" -gt 0 ] || { echo "FAIL: trace recorded no submits" >&2; head "$BIN/trace.jsonl" >&2; exit 1; }
[ "$SUBMITS" -eq $((FINISHES + KILLS)) ] \
  || { echo "FAIL: job conservation violated ($SUBMITS != $FINISHES + $KILLS)" >&2; exit 1; }

echo "== observe: timelines render with utilization and queue rows =="
$GRIDCTL observe "$RUN_ID" > "$BIN/observe.txt"
cat "$BIN/observe.txt"
grep -q "mean utilization" "$BIN/observe.txt" || { echo "FAIL: observe missing utilization line" >&2; exit 1; }
grep -q "^util " "$BIN/observe.txt" || { echo "FAIL: observe missing util sparkline" >&2; exit 1; }
grep -q "^queue " "$BIN/observe.txt" || { echo "FAIL: observe missing queue sparkline" >&2; exit 1; }

echo "== observe -diff: a run diffed against itself matches =="
$GRIDCTL observe -diff "$RUN_ID" "$RUN_ID" > "$BIN/diff.txt"
grep -q "mean util" "$BIN/diff.txt" || { echo "FAIL: observe -diff rendered nothing" >&2; exit 1; }

echo "== trace -swf: a single-policy traced run re-exports as a replayable SWF archive =="
# -swf needs exactly one sub-run: the example sweeps two policies, so
# record a dedicated single-policy run for the export.
cat > "$BIN/single.json" <<EOF
{"id":"smoke-swf","kind":"online","workload":{"n":60,"m":32,"rigid_fraction":1},
 "policies":["fcfs"],"params":{"rates":[0.3]},"trace":{"events":true}}
EOF
SWF_ID="$($GRIDCTL submit "$BIN/single.json")"
for _ in $(seq 1 100); do
  if $GRIDCTL status -format json "$SWF_ID" | grep -q '"state": "done"'; then break; fi
  sleep 0.1
done
$GRIDCTL trace -swf -o "$BIN/recorded.swf" "$SWF_ID"
[ -s "$BIN/recorded.swf" ] || { echo "FAIL: SWF export is empty" >&2; exit 1; }

echo "== pprof: index served outside the API body caps =="
curl -sf "http://127.0.0.1:$PORT/debug/pprof/" >/dev/null \
  || { echo "FAIL: /debug/pprof/ not mounted" >&2; exit 1; }

echo "== metrics: trace-derived histograms exported =="
METRICS="$(curl -sf "http://127.0.0.1:$PORT/metrics")"
echo "$METRICS" | grep -q 'gridd_trace_utilization_ratio_bucket' \
  || { echo "FAIL: utilization histogram missing from /metrics" >&2; exit 1; }
echo "$METRICS" | grep -q 'gridd_trace_queue_depth_bucket' \
  || { echo "FAIL: queue-depth histogram missing from /metrics" >&2; exit 1; }

echo "== request log: -log-requests wrote per-request lines =="
kill -TERM "$GRIDD_PID"
wait "$GRIDD_PID" || true
GRIDD_PID=""
grep -Eq "GET /v1/runs/$RUN_ID/trace 200 .* run=$RUN_ID" "$BIN/gridd.log" \
  || { echo "FAIL: no request-log line for the trace fetch" >&2; cat "$BIN/gridd.log" >&2; exit 1; }
echo "OK: trace smoke passed"
