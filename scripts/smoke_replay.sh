#!/usr/bin/env bash
# smoke_replay.sh — streaming-replay smoke: generate a ~1M-job SWF
# archive and replay it through the online simulator under a hard Go
# runtime memory limit, asserting the peak-heap bound and an events/s
# floor (TestReplaySmokeMillionJobs). A materialized replay of the same
# archive needs hundreds of MB; the streamed path must fit in a few.
#
# Environment (all optional):
#   REPLAY_JOBS                archive size          (default 1000000)
#   REPLAY_MAX_HEAP_MB         peak-heap bound       (default 256)
#   REPLAY_MIN_EVENTS_PER_SEC  throughput floor      (default 100000)
#   GOMEMLIMIT                 Go soft memory limit  (default 256MiB)
set -euo pipefail
cd "$(dirname "$0")/.."

export REPLAY_SMOKE=1
export REPLAY_JOBS="${REPLAY_JOBS:-1000000}"
export REPLAY_MAX_HEAP_MB="${REPLAY_MAX_HEAP_MB:-256}"
export REPLAY_MIN_EVENTS_PER_SEC="${REPLAY_MIN_EVENTS_PER_SEC:-100000}"
export GOMEMLIMIT="${GOMEMLIMIT:-256MiB}"

echo "replay smoke: ${REPLAY_JOBS} jobs, GOMEMLIMIT=${GOMEMLIMIT}," \
     "peak heap <= ${REPLAY_MAX_HEAP_MB} MiB, >= ${REPLAY_MIN_EVENTS_PER_SEC} events/s"
go test -run '^TestReplaySmokeMillionJobs$' -v -count=1 .
echo "replay smoke ok"
