package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	_ "repro/internal/experiments" // register scenario kinds + catalog
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/service"
)

// newFleetDaemon starts a coordinator-backed daemon: the same engine +
// run service the plain tests use, with a fleet coordinator wired into
// the run executor and the /v1/fleet surface mounted.
func newFleetDaemon(t *testing.T, ttl time.Duration) (*Client, *fleet.Coordinator) {
	t.Helper()
	e, err := service.New(service.Config{M: 8, Policy: "easy", Dilation: 0})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	co := fleet.NewCoordinator(fleet.Config{TTL: ttl})
	runs := api.NewRunService(api.Config{Fleet: co})
	srv := httptest.NewServer(e.Handler(runs))
	t.Cleanup(func() {
		srv.Close()
		runs.Close()
		co.Close()
		e.Stop()
	})
	return New(srv.URL), co
}

// TestFleetOverHTTP is the full distributed loop over real HTTP: a
// coordinator daemon, two worker loops driving it through the SDK's
// Transport implementation, a run submitted through the ordinary run
// API — and a text result byte-identical to the local rendering, with
// the contributing workers reported on the run status.
func TestFleetOverHTTP(t *testing.T) {
	c, _ := newFleetDaemon(t, 30*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Workers handshake exactly like cmd/gridd -worker does.
	v, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mine := fleet.CurrentBuild()
	if v.CatalogHash != mine.CatalogHash {
		t.Fatalf("catalog hash skew: daemon %s, local %s", v.CatalogHash, mine.CatalogHash)
	}
	var wg sync.WaitGroup
	for i := range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = fleet.RunWorker(ctx, c, fleet.WorkerConfig{
				ID: fmt.Sprintf("httpw%d", i), Batch: 2, Poll: 100 * time.Millisecond, Workers: 2,
			})
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	seed := uint64(42)
	final, err := c.RunToCompletion(ctx, scenario.HTTPRequest{ID: "mrt", Seed: &seed, Quick: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.RunDone {
		t.Fatalf("state %q: %s", final.State, final.Error)
	}
	if len(final.Workers) == 0 {
		t.Fatalf("no fleet workers on run status: %+v", final)
	}
	for _, w := range final.Workers {
		if w != "httpw0" && w != "httpw1" {
			t.Fatalf("unexpected contributor %q", w)
		}
	}

	text, err := c.RunResultText(ctx, final.ID, "text")
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := scenario.Lookup("mrt")
	want, err := scenario.Run(spec, scenario.RunOptions{
		Seed: 42, SeedExplicit: true, Scale: scenario.Scale{JobFactor: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := want.Table.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if text != buf.String() {
		t.Fatalf("distributed text result differs from local rendering:\n--- local\n%s\n--- fleet\n%s", buf.String(), text)
	}

	// The fleet view lists both workers.
	ws, err := c.FleetWorkers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("fleet view: %+v", ws)
	}
}

// TestLeaseIncompatibleMapsTo409: the SDK surfaces the coordinator's
// build refusal as fleet.ErrIncompatible (so fleet.RunWorker stops
// instead of retrying forever).
func TestLeaseIncompatibleMapsTo409(t *testing.T) {
	c, _ := newFleetDaemon(t, 30*time.Second)
	bad := fleet.CurrentBuild()
	bad.CatalogHash = "0000000000000000"
	_, err := c.LeaseCells(context.Background(), fleet.LeaseRequest{WorkerID: "w", Build: bad})
	if !errors.Is(err, fleet.ErrIncompatible) {
		t.Fatalf("err = %v, want fleet.ErrIncompatible", err)
	}
}

// TestCompleteCellsRetriesIdempotently: completion reports retry
// through transport failures — the endpoint is idempotent server-side,
// so the SDK may reissue a POST it normally would not.
func TestCompleteCellsRetriesIdempotently(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		api.WriteJSON(w, http.StatusOK, fleet.CompleteResponse{Accepted: 1})
	}))
	defer srv.Close()
	c := New(srv.URL, WithBackoff(time.Millisecond))
	resp, err := c.CompleteCells(context.Background(), fleet.CompleteRequest{WorkerID: "w"})
	if err != nil || resp.Accepted != 1 {
		t.Fatalf("resp %+v, err %v (calls %d)", resp, err, calls.Load())
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (one failure, one retry)", calls.Load())
	}
	// An ordinary POST still refuses to retry a 5xx.
	calls.Store(0)
	if _, err := c.SubmitRun(context.Background(), scenario.HTTPRequest{ID: "mrt"}); err == nil {
		t.Fatal("submit succeeded against a 502 server")
	}
	if calls.Load() != 1 {
		t.Fatalf("non-idempotent POST was retried: %d calls", calls.Load())
	}
}

// TestJitterBounds: the retry jitter stays within [d/2, d] — spread
// enough to de-synchronize a fleet, never longer than the nominal wait.
func TestJitterBounds(t *testing.T) {
	d := 100 * time.Millisecond
	distinct := map[time.Duration]bool{}
	for range 200 {
		j := jitter(d)
		if j < d/2 || j > d {
			t.Fatalf("jitter(%v) = %v, outside [%v, %v]", d, j, d/2, d)
		}
		distinct[j] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("jitter produced only %d distinct values in 200 draws", len(distinct))
	}
	if jitter(0) != 0 || jitter(1) != 1 {
		t.Fatal("degenerate durations must pass through")
	}
}
