package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/runtrace"
	"repro/internal/scenario"
)

// Run-lifecycle API: the wire types are the server's own
// (scenario.HTTPRequest for submissions, api.RunStatus / api.Event /
// scenario.ResultJSON for answers), so client and daemon cannot drift.

// SubmitRun starts a scenario run asynchronously (POST /v1/runs) and
// returns its initial status (state "queued", carrying the run id).
func (c *Client) SubmitRun(ctx context.Context, req scenario.HTTPRequest) (api.RunStatus, error) {
	var st api.RunStatus
	err := c.do(ctx, http.MethodPost, "/v1/runs", req, &st)
	return st, err
}

// Run fetches one run's typed status, including per-cell timings.
func (c *Client) Run(ctx context.Context, id string) (api.RunStatus, error) {
	var st api.RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &st)
	return st, err
}

// Runs lists the daemon's stored runs in submission order.
func (c *Client) Runs(ctx context.Context) ([]api.RunStatus, error) {
	var out []api.RunStatus
	err := c.do(ctx, http.MethodGet, "/v1/runs", nil, &out)
	return out, err
}

// CancelRun requests cooperative cancellation (DELETE /v1/runs/{id})
// and returns the status after the request. A run that already
// finished answers 409, surfaced as a typed *Error.
func (c *Client) CancelRun(ctx context.Context, id string) (api.RunStatus, error) {
	var st api.RunStatus
	err := c.do(ctx, http.MethodDelete, "/v1/runs/"+id, nil, &st)
	return st, err
}

// RunResult fetches a finished run's typed result cells.
func (c *Client) RunResult(ctx context.Context, id string) (scenario.ResultJSON, error) {
	var out scenario.ResultJSON
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id+"/result", nil, &out)
	return out, err
}

// RunResultText fetches a finished run's rendering in the given
// format ("text" — byte-identical to the CLI table — or "csv").
func (c *Client) RunResultText(ctx context.Context, id, format string) (string, error) {
	return c.text(ctx, "/v1/runs/"+id+"/result?format="+format)
}

// RunTrace fetches a finished run's recorded event trace as raw JSONL
// (GET /v1/runs/{id}/trace). cell >= 0 filters to one cell; pass a
// negative cell for the whole run. The transport negotiates gzip
// transparently. Runs whose spec did not set the trace axis answer
// 404, surfaced as a typed *Error.
func (c *Client) RunTrace(ctx context.Context, id string, cell int) (string, error) {
	path := "/v1/runs/" + id + "/trace"
	if cell >= 0 {
		path += "?cell=" + strconv.Itoa(cell)
	}
	return c.text(ctx, path)
}

// RunTraceLines fetches a finished run's trace and decodes it into
// typed lines (meta lines carry cluster metadata, event lines one
// simulation event each).
func (c *Client) RunTraceLines(ctx context.Context, id string, cell int) ([]runtrace.Line, error) {
	raw, err := c.RunTrace(ctx, id, cell)
	if err != nil {
		return nil, err
	}
	return runtrace.ParseLines(strings.NewReader(raw))
}

// StreamEvents subscribes to the run's SSE progress stream and calls
// fn for every event, starting from the beginning of the run's history
// (late subscribers replay every cell). It returns nil when the stream
// ends with the terminal state event, fn's error if fn aborts, or the
// transport/context error otherwise.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(api.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return &Error{Message: err.Error()}
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	// Streams outlive the default request timeout: use a timeout-free
	// copy of the transport and rely on ctx for cancellation.
	hc := &http.Client{Transport: c.hc.Transport}
	resp, err := hc.Do(req)
	if err != nil {
		return &Error{Message: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf [4 << 10]byte
		n, _ := resp.Body.Read(buf[:])
		return decodeError(resp, buf[:n])
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(nil, 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		case line == "" && data.Len() > 0:
			var e api.Event
			if err := json.Unmarshal([]byte(data.String()), &e); err != nil {
				return &Error{Message: fmt.Sprintf("bad event payload: %v", err)}
			}
			data.Reset()
			if err := fn(e); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &Error{Message: err.Error()}
	}
	return nil
}

// WaitRun polls until the run reaches a terminal state (the fallback
// for callers not consuming the event stream).
func (c *Client) WaitRun(ctx context.Context, id string, poll time.Duration) (api.RunStatus, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	for {
		st, err := c.Run(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// RunToCompletion submits a run, streams its events through onEvent
// (which may be nil), and returns the terminal status. If the event
// stream fails mid-run it falls back to polling.
func (c *Client) RunToCompletion(ctx context.Context, req scenario.HTTPRequest, onEvent func(api.Event)) (api.RunStatus, error) {
	st, err := c.SubmitRun(ctx, req)
	if err != nil {
		return st, err
	}
	streamErr := c.StreamEvents(ctx, st.ID, func(e api.Event) error {
		if onEvent != nil {
			onEvent(e)
		}
		return nil
	})
	if streamErr != nil && ctx.Err() != nil {
		return st, ctx.Err()
	}
	return c.WaitRun(ctx, st.ID, 0)
}

// SubmitScenarioLegacy drives the legacy synchronous POST /scenarios
// shim, returning the finished table payload (used to verify the shim
// against the /v1 pipeline).
func (c *Client) SubmitScenarioLegacy(ctx context.Context, req scenario.HTTPRequest) (scenario.HTTPResponse, error) {
	var out scenario.HTTPResponse
	err := c.do(ctx, http.MethodPost, "/scenarios", req, &out)
	return out, err
}
