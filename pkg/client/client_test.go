package client

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	_ "repro/internal/experiments" // register scenario kinds + catalog
	"repro/internal/scenario"
	"repro/internal/service"
)

// newTestDaemon starts a real single-cluster engine with the shared
// run service behind an httptest server — the SDK's target surface.
func newTestDaemon(t *testing.T) *Client {
	t.Helper()
	e, err := service.New(service.Config{M: 8, Policy: "easy", Dilation: 0})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	runs := api.NewRunService(api.Config{})
	srv := httptest.NewServer(e.Handler(runs))
	t.Cleanup(func() {
		srv.Close()
		runs.Close()
		e.Stop()
	})
	return New(srv.URL)
}

// TestRunLifecycle: submit → stream → result through the SDK, and the
// text result matches the engine's own rendering byte for byte.
func TestRunLifecycle(t *testing.T) {
	c := newTestDaemon(t)
	ctx := context.Background()
	seed := uint64(42)

	var cells atomic.Int32
	final, err := c.RunToCompletion(ctx,
		scenario.HTTPRequest{ID: "mrt", Seed: &seed, Quick: true},
		func(e api.Event) {
			if e.Type == "cell" {
				cells.Add(1)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.RunDone {
		t.Fatalf("state %q: %s", final.State, final.Error)
	}
	if int(cells.Load()) != final.CellsDone || final.CellsDone == 0 {
		t.Fatalf("streamed %d cells, status says %d", cells.Load(), final.CellsDone)
	}

	text, err := c.RunResultText(ctx, final.ID, "text")
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := scenario.Lookup("mrt")
	want, err := scenario.Run(spec, scenario.RunOptions{
		Seed: 42, SeedExplicit: true, Scale: scenario.Scale{JobFactor: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := want.Table.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if text != buf.String() {
		t.Fatalf("SDK text result differs from engine rendering")
	}

	res, err := c.RunResult(ctx, final.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "mrt" || len(res.Cells) != len(want.Table.Rows) {
		t.Fatalf("typed result %+v", res)
	}

	runs, err := c.Runs(ctx)
	if err != nil || len(runs) == 0 {
		t.Fatalf("list: %v (%d runs)", err, len(runs))
	}

	// Legacy shim answers the same table.
	legacy, err := c.SubmitScenarioLegacy(ctx, scenario.HTTPRequest{ID: "mrt", Seed: &seed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	lt := &scenario.Result{Table: scenario.RenderTable(legacy.Title, legacy.Headers, nil)}
	lt.Table.Rows = legacy.Rows
	var lbuf bytes.Buffer
	if err := lt.Table.Write(&lbuf); err != nil {
		t.Fatal(err)
	}
	if lbuf.String() != text {
		t.Fatal("legacy shim table differs from /v1 result")
	}
}

// TestTypedErrors: 404 and cancel-conflict surface as typed errors.
func TestTypedErrors(t *testing.T) {
	c := newTestDaemon(t)
	ctx := context.Background()

	if _, err := c.Run(ctx, "r999999"); !IsNotFound(err) {
		t.Fatalf("unknown run: %v", err)
	}
	st, err := c.RunToCompletion(ctx, scenario.HTTPRequest{ID: "treedlt", Quick: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelRun(ctx, st.ID); err == nil {
		t.Fatal("cancelling a done run must conflict")
	} else if e, ok := err.(*Error); !ok || e.Status != http.StatusConflict {
		t.Fatalf("cancel error: %v", err)
	}
}

// TestJobsAPI: the loadgen surface — submit, status, stats counter.
func TestJobsAPI(t *testing.T) {
	c := newTestDaemon(t)
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, service.JobSpec{Name: "j", SeqTime: 10, MinProcs: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		js, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if js.State == service.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", js.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	done, err := c.Completed(ctx)
	if err != nil || done != 1 {
		t.Fatalf("completed = %d (%v)", done, err)
	}
	if _, err := c.SubmitJob(ctx, service.JobSpec{SeqTime: 1, MinProcs: 1000}); err == nil {
		t.Fatal("too-wide job must fail")
	}
}

// TestRetryPolicy: transient 5xx answers are retried with backoff;
// WithRetries(0) surfaces them immediately.
func TestRetryPolicy(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			api.WriteError(w, http.StatusInternalServerError, "transient")
			return
		}
		api.WriteJSON(w, http.StatusOK, map[string]int{"completed": 7})
	}))
	defer srv.Close()

	c := New(srv.URL, WithBackoff(time.Millisecond))
	done, err := c.Completed(context.Background())
	if err != nil || done != 7 {
		t.Fatalf("retried call: %d, %v (calls %d)", done, err, calls.Load())
	}
	if calls.Load() != 3 {
		t.Fatalf("expected 3 attempts, saw %d", calls.Load())
	}

	calls.Store(0)
	c0 := New(srv.URL, WithRetries(0))
	if _, err := c0.Completed(context.Background()); err == nil {
		t.Fatal("no-retry client must surface the 500")
	}
	if calls.Load() != 1 {
		t.Fatalf("no-retry client issued %d attempts", calls.Load())
	}
}
