package client

import (
	"context"
	"fmt"
	"net/http"

	"repro/internal/api"
	"repro/internal/fleet"
)

// Fleet lease protocol: the same Client doubles as the worker-side
// fleet.Transport, so fleet.RunWorker drives a remote coordinator
// through exactly the interface the in-process tests use.
var _ fleet.Transport = (*Client)(nil)

// Version fetches the daemon's build identity (GET /v1/version). A
// worker compares it against its own fleet.CurrentBuild() before
// leasing: mismatched catalog hashes would silently break the
// coordinator's byte-identity guarantee.
func (c *Client) Version(ctx context.Context) (api.VersionInfo, error) {
	var v api.VersionInfo
	err := c.do(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v, err
}

// LeaseCells asks the coordinator for a batch of cells (POST
// /v1/fleet/lease). A nil lease with nil error means the long-poll
// window elapsed with nothing to do — poll again. An incompatible
// build answers 409, surfaced wrapped in fleet.ErrIncompatible so the
// worker loop stops instead of retrying forever.
func (c *Client) LeaseCells(ctx context.Context, req fleet.LeaseRequest) (*fleet.Lease, error) {
	var resp fleet.LeaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/fleet/lease", req, &resp)
	if err != nil {
		if e, ok := err.(*Error); ok && e.Status == http.StatusConflict {
			return nil, fmt.Errorf("%w: %s", fleet.ErrIncompatible, e.Message)
		}
		return nil, err
	}
	return resp.Lease, nil
}

// CompleteCells reports a lease's cell results (POST
// /v1/fleet/complete). The endpoint is idempotent on the server —
// duplicate deliveries are counted and ignored — so this call retries
// POSTs on transport failures and 5xx, unlike ordinary submissions.
func (c *Client) CompleteCells(ctx context.Context, req fleet.CompleteRequest) (fleet.CompleteResponse, error) {
	var resp fleet.CompleteResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/fleet/complete", req, &resp, true)
	return resp, err
}

// Heartbeat extends the worker's lease deadlines (POST
// /v1/fleet/heartbeat) and learns which leases already expired.
func (c *Client) Heartbeat(ctx context.Context, req fleet.HeartbeatRequest) (fleet.HeartbeatResponse, error) {
	var resp fleet.HeartbeatResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/fleet/heartbeat", req, &resp, true)
	return resp, err
}

// FleetWorkers fetches the coordinator's per-worker fleet view (GET
// /v1/fleet/workers).
func (c *Client) FleetWorkers(ctx context.Context) ([]fleet.WorkerStatus, error) {
	var out []fleet.WorkerStatus
	err := c.do(ctx, http.MethodGet, "/v1/fleet/workers", nil, &out)
	return out, err
}
