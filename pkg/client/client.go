// Package client is the Go SDK for the gridd HTTP API: the versioned
// /v1 run lifecycle (submit / status / SSE event streams / cancel /
// results), job submission, campaigns and stats — with bounded retries
// and typed errors. cmd/loadgen, cmd/gridctl and the service test
// suites all drive the daemon through this package.
//
// The zero-config client targets http://localhost:8042 and retries
// failed calls twice with exponential backoff, honouring Retry-After:
// idempotent calls on transport failures, 5xx and 429; POST
// submissions only on explicit 429 back-pressure (any other POST
// failure might mean the work was accepted — or accepted and then
// cancelled — and a blind retry would duplicate it). WithRetries(0)
// disables retrying for latency-sensitive callers like the load
// generator.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Error is the typed failure of one API call.
type Error struct {
	// Status is the HTTP status code (0 for transport failures).
	Status int
	// Message is the server's JSON error message (or the transport
	// error text).
	Message string
	// RetryAfter is the server's back-off hint on 429 responses.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("client: %s", e.Message)
	}
	return fmt.Sprintf("client: status %d: %s", e.Status, e.Message)
}

// Sentinel errors for the authentication and quota rejections of a
// multi-tenant daemon. They match through errors.Is, so callers can
// branch without digging status codes out of *Error:
//
//	if errors.Is(err, client.ErrQuotaExceeded) { backoff() }
var (
	// ErrUnauthorized is a 401: the daemon requires an API key and the
	// request carried none (see WithAPIKey).
	ErrUnauthorized = errors.New("client: unauthorized (missing API key)")
	// ErrForbidden is a 403: the API key is not a configured tenant's,
	// or the key's tenant does not own the targeted run.
	ErrForbidden = errors.New("client: forbidden (unknown API key or not the run's tenant)")
	// ErrQuotaExceeded is a 429: the tenant's admission quota (or the
	// daemon's global backlog bound) rejected the submission; the
	// *Error carries the per-tenant Retry-After hint.
	ErrQuotaExceeded = errors.New("client: quota exceeded; retry later")
)

// Is maps the typed API error onto the exported sentinels, keyed by
// status code.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrUnauthorized:
		return e.Status == http.StatusUnauthorized
	case ErrForbidden:
		return e.Status == http.StatusForbidden
	case ErrQuotaExceeded:
		return e.Status == http.StatusTooManyRequests
	}
	return false
}

// IsNotFound reports whether err is a 404 API error.
func IsNotFound(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Status == http.StatusNotFound
}

// IsBusy reports whether err is a 429 back-pressure rejection.
func IsBusy(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Status == http.StatusTooManyRequests
}

// Client talks to one gridd daemon (single-cluster or broker).
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	apiKey  string
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (default:
// 10-second timeout).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a failed call is retried (see the
// package comment for which failures qualify). 0 disables retrying.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the initial retry backoff (doubles per attempt;
// a server Retry-After hint wins when larger).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithAPIKey attaches a tenant API key (Authorization: Bearer) to
// every request — required by daemons started with -tenants. An empty
// key is a no-op, so callers can pass os.Getenv("GRIDD_API_KEY")
// unconditionally.
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// New builds a client for the daemon at base (e.g.
// "http://localhost:8042").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: 10 * time.Second},
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the daemon base URL.
func (c *Client) Base() string { return c.base }

// retryable reports whether a call may be reissued. Non-idempotent
// methods (the POST submissions) are retried only on 429 back-pressure
// — the one rejection where the server provably did not accept the
// work. A transport failure on a POST is surfaced (the submission may
// have landed; a blind retry would duplicate it), and so is a POST
// 503: the legacy /scenarios shim answers 503 for a run that WAS
// accepted and then cancelled, where a retry would resubmit the
// cancelled work.
func retryable(method string, err *Error) bool {
	if err.Status == http.StatusTooManyRequests {
		return true
	}
	if method == http.MethodPost {
		return false
	}
	return err.Status == 0 || err.Status >= 500
}

// do issues one JSON request with the retry policy. in (when non-nil)
// is marshalled as the body; out (when non-nil) receives the decoded
// 2xx response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doRetry(ctx, method, path, in, out, false)
}

// doRetry is do with an idempotency override: endpoints that are safe
// to reissue regardless of method (the fleet completion report, whose
// second delivery is a server-side no-op) retry POSTs on transport
// failures and 5xx too.
func (c *Client) doRetry(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	var last *Error
	for attempt := 0; ; attempt++ {
		apiErr := c.once(ctx, method, path, body, out)
		if apiErr == nil {
			return nil
		}
		last = apiErr
		retry := retryable(method, apiErr)
		if idempotent && (apiErr.Status == 0 || apiErr.Status >= 500) {
			retry = true
		}
		if attempt >= c.retries || !retry {
			break
		}
		// Jittered backoff: N workers bouncing off one restarted
		// coordinator must not retry in lockstep. A server Retry-After
		// hint is honoured as a floor, de-synchronized by up to one
		// base backoff on top.
		wait := jitter(c.backoff << attempt)
		if apiErr.RetryAfter > 0 {
			if h := apiErr.RetryAfter + jitter(c.backoff); h > wait {
				wait = h
			}
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return last
}

// jitter spreads a wait uniformly over [d/2, d] (thundering-herd
// insurance for fleets of identically configured clients).
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)/2+1))
}

// once issues a single attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) *Error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return &Error{Message: err.Error()}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &Error{Message: err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return &Error{Status: resp.StatusCode, Message: err.Error()}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return &Error{Status: resp.StatusCode, Message: fmt.Sprintf("decode response: %v", err)}
		}
	}
	return nil
}

// text issues a GET and returns the raw (non-JSON) body.
func (c *Client) text(ctx context.Context, path string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", &Error{Message: err.Error()}
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", &Error{Message: err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", &Error{Status: resp.StatusCode, Message: err.Error()}
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp, raw)
	}
	return string(raw), nil
}

// decodeError turns a non-2xx response into the typed error.
func decodeError(resp *http.Response, raw []byte) *Error {
	e := &Error{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error != "" {
		e.Message = env.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}
