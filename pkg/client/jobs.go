package client

import (
	"context"
	"net/http"
	"strconv"

	"repro/internal/service"
)

// Job and campaign API (the loadgen surface). Job payloads are the
// service's own wire types.

// JobAccepted is the submission answer: the job status, plus the
// chosen cluster when the daemon is a broker.
type JobAccepted struct {
	service.JobStatus
	Cluster string `json:"cluster,omitempty"`
}

// SubmitJob submits one job (POST /jobs) and returns its accepted
// status (brokers tag it with the chosen cluster).
func (c *Client) SubmitJob(ctx context.Context, spec service.JobSpec) (JobAccepted, error) {
	var st JobAccepted
	err := c.do(ctx, http.MethodPost, "/jobs", spec, &st)
	return st, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id int) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+strconv.Itoa(id), nil, &st)
	return st, err
}

// Completed reads the daemon's completed-job counter, transparently
// handling both the single-cluster /stats shape and the broker's
// fleet-wide shape.
func (c *Client) Completed(ctx context.Context) (int, error) {
	var probe struct {
		Completed int `json:"completed"`
		Fleet     *struct {
			Completed int `json:"completed"`
		} `json:"fleet"`
	}
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &probe); err != nil {
		return 0, err
	}
	if probe.Fleet != nil {
		return probe.Fleet.Completed, nil
	}
	return probe.Completed, nil
}

// Campaign mirrors the broker's campaign payload.
type Campaign struct {
	ID         int    `json:"id"`
	Name       string `json:"name"`
	Tasks      int    `json:"tasks"`
	Completed  int    `json:"completed"`
	Killed     int    `json:"killed"`
	PerCluster []int  `json:"per_cluster"`
	Done       bool   `json:"done"`
}

// SubmitCampaign fans a bag of best-effort tasks across the fleet
// (broker mode only).
func (c *Client) SubmitCampaign(ctx context.Context, name string, tasks int, runTime float64) (Campaign, error) {
	var out Campaign
	err := c.do(ctx, http.MethodPost, "/campaigns", map[string]any{
		"name": name, "tasks": tasks, "run_time": runTime,
	}, &out)
	return out, err
}

// CampaignStatus fetches one campaign.
func (c *Client) CampaignStatus(ctx context.Context, id int) (Campaign, error) {
	var out Campaign
	err := c.do(ctx, http.MethodGet, "/campaigns/"+strconv.Itoa(id), nil, &out)
	return out, err
}
