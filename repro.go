// Package repro is the public facade of the reproduction of Dutot,
// Eyraud, Mounié and Trystram, "Models for scheduling on large scale
// platforms: which policy for which application?" (IPDPS 2004).
//
// It re-exports the stable entry points of the internal packages:
//
//   - application profiling and policy selection (the paper's title
//     question) — Profile, Recommend, Run;
//   - workload generation — GenConfig, Sequential, Parallel, Mixed,
//     Communities, Bags;
//   - platforms — CIMENT (Figure 3), Uniform (Figure 2's 100 machines);
//   - the §4 algorithm stack under their own names via the internal
//     packages (moldable.MRT, batch.OnlineMoldable, smart.Schedule,
//     bicriteria.Schedule) for callers who want a specific algorithm
//     rather than the recommendation;
//   - divisible load (§2.1) — Star, SingleRound, MultiRound,
//     SelfSchedule, SteadyStateThroughput;
//   - grid designs (§5.2) — Member, NewCentralized, NewDecentralized.
//
// See the examples/ directory for end-to-end usage.
package repro

import (
	"repro/internal/bicriteria"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dlt"
	"repro/internal/grid"
	"repro/internal/lowerbound"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Policy selection (internal/core).
type (
	// Profile classifies an application (rigid/moldable/divisible,
	// online/offline, target criterion).
	Profile = core.Profile
	// Recommendation is the selected policy with its §4 guarantee.
	Recommendation = core.Recommendation
	// Criterion is the optimization objective of §3.
	Criterion = core.Criterion
)

// Criteria values.
const (
	Makespan           = core.Makespan
	WeightedCompletion = core.WeightedCompletion
	BiCriteria         = core.BiCriteria
)

// Recommend maps an application profile to the paper's policy choice.
var Recommend = core.Recommend

// Run executes the recommended policy on a concrete instance.
var Run = core.Run

// Workloads (internal/workload).
type (
	// Job is a Parallel Task (§2.2).
	Job = workload.Job
	// GenConfig parameterizes the synthetic generators.
	GenConfig = workload.GenConfig
	// Bag is a multi-parametric campaign (§5.2).
	Bag = workload.Bag
	// Community shapes one CIMENT user community.
	Community = workload.Community
)

// Workload generators.
var (
	// SequentialJobs generates the "Non Parallel" family of Figure 2.
	SequentialJobs = workload.Sequential
	// ParallelJobs generates the "Parallel" (moldable) family.
	ParallelJobs = workload.Parallel
	// MixedJobs generates the §5.1 rigid+moldable mix.
	MixedJobs = workload.Mixed
	// CommunityJobs draws from a community mix with Poisson arrivals.
	CommunityJobs = workload.Communities
	// CIMENTCommunities is the §5.2 community mix.
	CIMENTCommunities = workload.CIMENTCommunities
	// Bags generates multi-parametric campaigns.
	Bags = workload.Bags
)

// Platforms (internal/platform).
type (
	// Cluster is one weakly-heterogeneous cluster.
	Cluster = platform.Cluster
	// LightGrid is a small set of clusters (Figure 1).
	LightGrid = platform.Grid
	// Reservation blocks processors during a window (§5.1).
	Reservation = platform.Reservation
)

var (
	// CIMENT is the Figure 3 platform (4 clusters, 432 processors).
	CIMENT = platform.CIMENT
	// UniformCluster is a single homogeneous cluster (Figure 2 uses 100).
	UniformCluster = platform.Uniform
)

// Schedules and metrics.
type (
	// Schedule is a validated Gantt chart.
	Schedule = sched.Schedule
	// Report bundles every §3 criterion.
	Report = metrics.Report
	// Completion is one finished job record.
	Completion = metrics.Completion
)

// Lower bounds (ratio denominators).
var (
	// CmaxLowerBound certifies a makespan lower bound.
	CmaxLowerBound = lowerbound.Cmax
	// WeightedCompletionLowerBound certifies a ΣωiCi lower bound.
	WeightedCompletionLowerBound = lowerbound.SumWeightedCompletion
)

// Figure 2 reproduction (internal/bicriteria).
type (
	// Fig2Config parameterizes the Figure 2 sweep.
	Fig2Config = bicriteria.Fig2Config
	// Fig2Point is one measured point of the ratio curves.
	Fig2Point = bicriteria.Fig2Point
)

var (
	// Fig2Series regenerates one Figure 2 series.
	Fig2Series = bicriteria.Fig2Series
	// WriteFig2 renders both panels as text.
	WriteFig2 = bicriteria.WriteFig2
)

// Divisible load (internal/dlt).
type (
	// Star is a one-port master-worker platform.
	Star = dlt.Star
	// Worker is one DLT compute resource.
	Worker = dlt.Worker
	// Distribution is a DLT policy outcome.
	Distribution = dlt.Distribution
)

var (
	// BusPlatform builds a shared-link platform.
	BusPlatform = dlt.Bus
	// SingleRound is the optimal one-round closed form.
	SingleRound = dlt.SingleRound
	// MultiRound distributes in R installments.
	MultiRound = dlt.MultiRound
	// SelfSchedule is the dynamic chunked strategy.
	SelfSchedule = dlt.SelfSchedule
	// SteadyStateThroughput is the §5.2 asymptotic bound.
	SteadyStateThroughput = dlt.SteadyStateThroughput
)

// Grid designs (internal/grid, internal/cluster).
type (
	// GridMember is one cluster plus its local workload and policy.
	GridMember = grid.Member
	// ClusterPolicy decides local starts in the cluster simulator.
	ClusterPolicy = cluster.Policy
)

var (
	// NewCentralizedGrid builds the CiGri design (§5.2).
	NewCentralizedGrid = grid.NewCentralized
	// NewDecentralizedGrid builds the load-exchange design (§5.2).
	NewDecentralizedGrid = grid.NewDecentralized
	// RunIsolated is the no-grid baseline.
	RunIsolated = grid.RunIsolated
)

// Cluster policies.
var (
	// FCFS is strict first-come-first-served.
	FCFS = cluster.FCFSPolicy{}
	// EASY is aggressive backfilling.
	EASY = cluster.EASYPolicy{}
	// GreedyFit starts anything that fits.
	GreedyFit = cluster.GreedyFitPolicy{}
)
