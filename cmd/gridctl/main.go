// Command gridctl drives a running gridd daemon through the pkg/client
// SDK and the /v1 run-lifecycle API: it submits scenario runs, watches
// their per-cell progress live over SSE, lists, inspects and cancels
// runs, and fetches results in any renderer format.
//
// Usage:
//
//	gridctl [-addr URL] run [-seed N] [-quick] [-workers N] [-watch]
//	        [-format text|json|csv] [-legacy] <id>|<spec.json>
//	gridctl [-addr URL] runs [-format text|json]
//	                                         list stored runs
//	gridctl [-addr URL] status [-format json|text] <run-id>
//	                                         typed status + cell timings
//	gridctl [-addr URL] cancel <run-id>      cooperative cancellation
//	gridctl [-addr URL] workers [-format text|json]
//	                                         fleet coordinator worker view
//	gridctl [-addr URL] submit [run flags] <id>|<spec.json>
//	                                         submit without waiting
//	gridctl [-addr URL] trace [-cell N] [-swf] [-o FILE] <run-id>
//	                                         dump a recorded event trace
//	gridctl [-addr URL] observe [-cell N] [-bins N] <run-id>
//	gridctl [-addr URL] observe -diff <run-id-a> <run-id-b>
//	                                         render timelines from a trace
//
// "run" submits, waits for the terminal state and prints the result
// (the text format is byte-identical to the cmd/experiments output).
// -watch additionally narrates every cell completion on stderr.
// -legacy drives the compatibility POST /scenarios shim instead and
// renders the returned table locally — diffing it against "run"
// output verifies the shim serves exactly the /v1 pipeline's table.
//
// "trace" streams the JSONL event trace of a finished traced run
// (-swf re-exports it as an SWF archive the replay kind accepts);
// "observe" folds the trace into terminal utilization and queue-depth
// timelines plus a per-job Gantt summary, and -diff compares two runs
// sub-run by sub-run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/api"
	_ "repro/internal/experiments" // register kinds + catalog (spec file validation)
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/pkg/client"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gridctl [-addr URL] run|submit [-seed N] [-quick] [-workers N] [-watch] [-format text|json|csv] [-legacy] <id>|<spec.json>")
	fmt.Fprintln(os.Stderr, "       gridctl [-addr URL] runs [-format text|json]")
	fmt.Fprintln(os.Stderr, "       gridctl [-addr URL] status [-format json|text] <run-id>")
	fmt.Fprintln(os.Stderr, "       gridctl [-addr URL] cancel <run-id>")
	fmt.Fprintln(os.Stderr, "       gridctl [-addr URL] workers [-format text|json]")
	fmt.Fprintln(os.Stderr, "       gridctl [-addr URL] trace [-cell N] [-swf] [-o FILE] <run-id>")
	fmt.Fprintln(os.Stderr, "       gridctl [-addr URL] observe [-cell N] [-bins N] <run-id>")
	fmt.Fprintln(os.Stderr, "       gridctl [-addr URL] observe -diff <run-id-a> <run-id-b>")
}

func main() {
	addr := flag.String("addr", "http://localhost:8042", "gridd base URL")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")
	flag.Usage = func() { usage(); flag.PrintDefaults() }
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	// No per-request transport timeout: the -legacy shim and result
	// fetches can legitimately take as long as the run; -timeout (the
	// context deadline) is the only clock that matters here. The tenant
	// API key, when the daemon requires one, comes from the
	// GRIDD_API_KEY environment variable.
	c := client.New(*addr,
		client.WithHTTPClient(&http.Client{}),
		client.WithAPIKey(os.Getenv("GRIDD_API_KEY")))
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "run", "submit":
		err = runCmd(ctx, c, cmd, flag.Args()[1:])
	case "runs":
		err = listCmd(ctx, c, flag.Args()[1:])
	case "status":
		err = statusCmd(ctx, c, flag.Args()[1:])
	case "cancel":
		err = cancelCmd(ctx, c, flag.Args()[1:])
	case "workers":
		err = workersCmd(ctx, c, flag.Args()[1:])
	case "trace":
		err = traceCmd(ctx, c, flag.Args()[1:])
	case "observe":
		err = observeCmd(ctx, c, flag.Args()[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		var apiErr *client.Error
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests && apiErr.RetryAfter > 0 {
			fmt.Fprintf(os.Stderr, "gridctl: quota exceeded; server asks to retry after %s\n", apiErr.RetryAfter)
		}
		if errors.Is(err, client.ErrUnauthorized) {
			fmt.Fprintln(os.Stderr, "gridctl: this daemon requires a tenant API key; set GRIDD_API_KEY")
		}
		os.Exit(1)
	}
}

// buildRequest resolves the scenario argument: a catalog id or a spec
// file (validated locally before submission).
func buildRequest(arg string, seed *uint64, quick bool, workers int) (scenario.HTTPRequest, error) {
	req := scenario.HTTPRequest{Seed: seed, Quick: quick, Workers: workers}
	if strings.HasSuffix(arg, ".json") {
		spec, err := scenario.Load(arg)
		if err != nil {
			return req, err
		}
		req.Spec = spec
	} else {
		req.ID = arg
	}
	return req, nil
}

func runCmd(ctx context.Context, c *client.Client, cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Uint64("seed", 0, "base RNG seed (overrides a spec-pinned seed)")
	quick := fs.Bool("quick", false, "shrink workloads ~10x")
	workers := fs.Int("workers", 0, "server-side cell worker pool (0 = sequential)")
	watch := fs.Bool("watch", false, "narrate per-cell progress (SSE) on stderr")
	format := fs.String("format", "text", "result rendering: text|json|csv")
	legacy := fs.Bool("legacy", false, "use the legacy synchronous POST /scenarios shim")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("%s takes exactly one <id>|<spec.json> argument", cmd)
	}
	var seedp *uint64
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedp = seed
		}
	})
	req, err := buildRequest(fs.Arg(0), seedp, *quick, *workers)
	if err != nil {
		return err
	}

	if *legacy {
		if *format != "text" {
			return fmt.Errorf("-legacy serves only the text table")
		}
		resp, err := c.SubmitScenarioLegacy(ctx, req)
		if err != nil {
			return err
		}
		t := &trace.Table{Title: resp.Title, Headers: resp.Headers, Rows: resp.Rows}
		return t.Write(os.Stdout)
	}

	st, err := c.SubmitRun(ctx, req)
	if err != nil {
		return err
	}
	if cmd == "submit" {
		fmt.Println(st.ID)
		return nil
	}
	if *watch {
		fmt.Fprintf(os.Stderr, "run %s submitted (%s/%s)\n", st.ID, st.SpecID, st.Kind)
	}
	streamErr := c.StreamEvents(ctx, st.ID, func(e api.Event) error {
		if !*watch {
			return nil
		}
		switch e.Type {
		case "cell":
			fmt.Fprintf(os.Stderr, "  cell %d done (%d/%d, %.3fs)\n",
				e.Cell.Index, e.Cell.Done, e.Cell.Total, e.Cell.DurationSeconds)
		case "state":
			fmt.Fprintf(os.Stderr, "  state: %s %s\n", e.State, e.Error)
		}
		return nil
	})
	if streamErr != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	final, err := c.WaitRun(ctx, st.ID, 0)
	if err != nil {
		return err
	}
	switch final.State {
	case api.RunDone:
		out, err := c.RunResultText(ctx, st.ID, *format)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	case api.RunFailed:
		return fmt.Errorf("run %s failed: %s", final.ID, final.Error)
	default:
		return fmt.Errorf("run %s %s: %s", final.ID, final.State, final.Error)
	}
}

func listCmd(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text|json")
	_ = fs.Parse(args)
	runs, err := c.Runs(ctx)
	if err != nil {
		return err
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(runs)
	case "text":
		fmt.Printf("%-9s %-16s %-10s %-9s %10s %10s\n", "ID", "SPEC", "STATE", "CELLS", "SECONDS", "ROWS")
		for _, st := range runs {
			fmt.Printf("%-9s %-16s %-10s %4d/%-4d %10.3f %10d\n",
				st.ID, st.SpecID, st.State, st.CellsDone, st.CellsTotal, st.DurationSeconds, st.Rows)
		}
		return nil
	}
	return fmt.Errorf("unknown format %q (text|json)", *format)
}

func statusCmd(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	// JSON stays the default: existing scripts parse it.
	format := fs.String("format", "json", "output format: json|text")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("status takes exactly one run id")
	}
	st, err := c.Run(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	case "text":
		fmt.Printf("run %s  %s/%s  seed %d\n", st.ID, st.SpecID, st.Kind, st.Seed)
		fmt.Printf("state %s", st.State)
		if st.Error != "" {
			fmt.Printf(" (%s)", st.Error)
		}
		fmt.Printf("  cells %d/%d  rows %d", st.CellsDone, st.CellsTotal, st.Rows)
		if st.TraceEvents > 0 {
			fmt.Printf("  trace events %d", st.TraceEvents)
		}
		fmt.Println()
		if st.DurationSeconds > 0 {
			fmt.Printf("duration %.3fs\n", st.DurationSeconds)
		}
		return nil
	}
	return fmt.Errorf("unknown format %q (json|text)", *format)
}

// workersCmd renders the coordinator's fleet view (GET
// /v1/fleet/workers): every worker that ever leased cells, with live
// lease counts and lifetime throughput. A daemon not started with
// -fleet has no such endpoint and answers 404.
func workersCmd(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("workers", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text|json")
	_ = fs.Parse(args)
	ws, err := c.FleetWorkers(ctx)
	if err != nil {
		if e, ok := err.(*client.Error); ok && e.Status == http.StatusNotFound {
			return fmt.Errorf("no fleet coordinator at %s (start gridd with -fleet)", c.Base())
		}
		return err
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(ws)
	case "text":
		fmt.Printf("%-24s %-10s %-6s %7s %7s %9s %6s %7s\n",
			"WORKER", "VERSION", "ALIVE", "LEASES", "CELLS", "CELLS/S", "FAILS", "EXPIRED")
		for _, w := range ws {
			fmt.Printf("%-24s %-10s %-6t %7d %7d %9.2f %6d %7d\n",
				w.ID, w.Version, w.Alive, w.Leases, w.CellsDone, w.CellsPerSec, w.Failures, w.Expirations)
		}
		return nil
	}
	return fmt.Errorf("unknown format %q (text|json)", *format)
}

func cancelCmd(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel takes exactly one run id")
	}
	st, err := c.CancelRun(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("run %s: %s\n", st.ID, st.State)
	return nil
}
