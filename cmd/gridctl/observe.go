package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/runtrace"
	"repro/pkg/client"
)

// traceCmd dumps a finished run's recorded event trace: raw JSONL by
// default, or an SWF archive (-swf) that the replay scenario kind and
// loadgen accept as input — replaying a recorded run against a
// different policy is then just another scenario.
func traceCmd(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	cell := fs.Int("cell", -1, "only this cell (default: all cells)")
	swf := fs.Bool("swf", false, "export as an SWF archive instead of JSONL")
	out := fs.String("o", "", "write to file instead of stdout")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("trace takes exactly one run id")
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if !*swf {
		raw, err := c.RunTrace(ctx, fs.Arg(0), *cell)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, raw)
		return err
	}
	traces, err := fetchTraces(ctx, c, fs.Arg(0), *cell)
	if err != nil {
		return err
	}
	if len(traces) != 1 {
		return fmt.Errorf("-swf exports one sub-run; run has %d (pick one with -cell, or a single-policy spec)", len(traces))
	}
	n, err := runtrace.ExportSWF(w, traces[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exported %d jobs\n", n)
	return nil
}

// fetchTraces pulls and rebuilds a run's typed traces.
func fetchTraces(ctx context.Context, c *client.Client, id string, cell int) ([]runtrace.CellTrace, error) {
	lines, err := c.RunTraceLines(ctx, id, cell)
	if err != nil {
		return nil, err
	}
	return runtrace.Rebuild(lines)
}

// observeCmd renders a traced run as terminal timelines: per sub-run
// utilization and queue-depth sparklines, totals, and a Gantt summary
// of the longest jobs. With -diff it compares two runs sub-run by
// sub-run instead.
func observeCmd(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("observe", flag.ExitOnError)
	cell := fs.Int("cell", -1, "only this cell (default: all cells)")
	bins := fs.Int("bins", 60, "timeline resolution (characters)")
	diff := fs.Bool("diff", false, "compare two runs cell-by-cell")
	_ = fs.Parse(args)
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("observe -diff takes exactly two run ids")
		}
		return observeDiff(ctx, c, fs.Arg(0), fs.Arg(1), *cell, *bins)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("observe takes exactly one run id")
	}
	traces, err := fetchTraces(ctx, c, fs.Arg(0), *cell)
	if err != nil {
		return err
	}
	for i := range traces {
		if i > 0 {
			fmt.Println()
		}
		renderTrace(os.Stdout, traces[i], *bins)
	}
	return nil
}

// sparkBlocks are the 8-level bar characters of the sparklines.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// spark renders values scaled to max as a one-line sparkline.
func spark(values []float64, max float64) string {
	var b strings.Builder
	for _, v := range values {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkBlocks)-1))
		}
		if i < 0 {
			i = 0
		}
		if i >= len(sparkBlocks) {
			i = len(sparkBlocks) - 1
		}
		b.WriteRune(sparkBlocks[i])
	}
	return b.String()
}

// subRunName labels one trace in the observe output.
func subRunName(tr runtrace.CellTrace) string {
	if tr.Label != "" {
		return fmt.Sprintf("cell %d · %s", tr.Cell, tr.Label)
	}
	return fmt.Sprintf("cell %d", tr.Cell)
}

func renderTrace(w io.Writer, tr runtrace.CellTrace, bins int) {
	s := runtrace.BinSeries(tr, bins)
	n := tr.Totals()
	fmt.Fprintf(w, "== %s (%d cluster(s), %d procs) ==\n", subRunName(tr), len(tr.Clusters), s.Capacity)
	fmt.Fprintf(w, "events %d  submits %d  finishes %d  kills %d  migrations %d",
		len(tr.Events), n.Submits, n.Finishes, n.Kills, n.Migrates)
	if tr.Dropped > 0 {
		fmt.Fprintf(w, "  dropped %d", tr.Dropped)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "horizon %.1fs  mean utilization %.1f%%  max queue %d\n",
		s.Horizon, 100*s.MeanUtil, s.MaxQueue)
	fmt.Fprintf(w, "util  |%s| 0..100%%\n", spark(s.Util, 1))
	maxQ := 0.0
	for _, q := range s.Queue {
		if q > maxQ {
			maxQ = q
		}
	}
	fmt.Fprintf(w, "queue |%s| 0..%.0f jobs\n", spark(s.Queue, maxQ), maxQ)
	renderGantt(w, tr, s.Horizon, bins)
}

// renderGantt prints the longest-running jobs as horizon-scaled bars.
func renderGantt(w io.Writer, tr runtrace.CellTrace, horizon float64, bins int) {
	type span struct {
		job        int32
		start, end float64
		procs      int32
		started    bool
		done       bool
	}
	spans := map[int32]*span{}
	for _, e := range tr.Events {
		if e.Job < 0 {
			continue
		}
		switch e.Type {
		case runtrace.EvStart:
			sp, ok := spans[e.Job]
			if !ok {
				sp = &span{job: e.Job}
				spans[e.Job] = sp
			}
			sp.start, sp.procs, sp.started, sp.done = e.T, e.Procs, true, false
		case runtrace.EvFinish:
			if sp, ok := spans[e.Job]; ok && sp.started {
				sp.end, sp.done = e.T, true
			}
		}
	}
	var done []*span
	for _, sp := range spans {
		if sp.done {
			done = append(done, sp)
		}
	}
	if len(done) == 0 || horizon <= 0 {
		return
	}
	sort.Slice(done, func(i, k int) bool {
		di, dk := done[i].end-done[i].start, done[k].end-done[k].start
		if di != dk {
			return di > dk
		}
		return done[i].job < done[k].job
	})
	const top = 5
	fmt.Fprintf(w, "gantt (top %d longest of %d jobs):\n", min(top, len(done)), len(done))
	for _, sp := range done[:min(top, len(done))] {
		lo := int(sp.start / horizon * float64(bins))
		hi := int(sp.end / horizon * float64(bins))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > bins {
			hi = bins
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("█", hi-lo) + strings.Repeat(" ", bins-hi)
		fmt.Fprintf(w, "  job %-6d |%s| %.1fs x %dp\n", sp.job, bar, sp.end-sp.start, sp.procs)
	}
}

// observeDiff compares two runs sub-run by sub-run (matched on cell +
// label), printing the headline series metrics side by side.
func observeDiff(ctx context.Context, c *client.Client, idA, idB string, cell, bins int) error {
	ta, err := fetchTraces(ctx, c, idA, cell)
	if err != nil {
		return fmt.Errorf("%s: %w", idA, err)
	}
	tb, err := fetchTraces(ctx, c, idB, cell)
	if err != nil {
		return fmt.Errorf("%s: %w", idB, err)
	}
	type key struct {
		cell  int
		label string
	}
	bByKey := map[key]runtrace.CellTrace{}
	for _, tr := range tb {
		bByKey[key{tr.Cell, tr.Label}] = tr
	}
	matched := 0
	for _, a := range ta {
		b, ok := bByKey[key{a.Cell, a.Label}]
		if !ok {
			fmt.Printf("== %s: only in %s ==\n", subRunName(a), idA)
			continue
		}
		delete(bByKey, key{a.Cell, a.Label})
		matched++
		sa, sb := runtrace.BinSeries(a, bins), runtrace.BinSeries(b, bins)
		na, nb := a.Totals(), b.Totals()
		fmt.Printf("== %s: %s vs %s ==\n", subRunName(a), idA, idB)
		fmt.Printf("  %-18s %12s %12s %12s\n", "", idA, idB, "delta")
		row := func(name string, va, vb float64, format string) {
			fmt.Printf("  %-18s %12s %12s %+12s\n", name,
				fmt.Sprintf(format, va), fmt.Sprintf(format, vb), fmt.Sprintf(format, vb-va))
		}
		row("horizon s", sa.Horizon, sb.Horizon, "%.1f")
		row("mean util %", 100*sa.MeanUtil, 100*sb.MeanUtil, "%.1f")
		row("max queue", float64(sa.MaxQueue), float64(sb.MaxQueue), "%.0f")
		row("finishes", float64(na.Finishes), float64(nb.Finishes), "%.0f")
		row("kills", float64(na.Kills), float64(nb.Kills), "%.0f")
		fmt.Printf("  util A |%s|\n  util B |%s|\n", spark(sa.Util, 1), spark(sb.Util, 1))
	}
	for _, b := range tb {
		if _, ok := bByKey[key{b.Cell, b.Label}]; ok {
			fmt.Printf("== %s: only in %s ==\n", subRunName(b), idB)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no matching sub-runs between %s and %s", idA, idB)
	}
	return nil
}
