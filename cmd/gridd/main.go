// Command gridd is the online scheduler daemon. In its default mode it
// runs one simulated cluster as a long-lived service; with -topology it
// becomes a federated grid broker serving a whole fleet of clusters
// behind one API, routing jobs and CiGri-style best-effort campaigns
// across them with a pluggable grid policy.
//
// Usage examples:
//
//	gridd -m 128 -policy easy -dilation 60        # 1 wall second = 60 sim seconds
//	gridd -policy conservative -dilation 0        # free-running (as fast as possible)
//	gridd -topology fleet.json                    # multi-cluster broker mode
//	gridd -list-policies                          # local + grid policy catalogs
//
// Single-cluster endpoints: POST /jobs, GET /jobs/{id}, GET /queue,
// GET /stats, GET /metrics (Prometheus text), GET /policies, the
// versioned /v1 run-lifecycle API (POST /v1/runs, GET /v1/runs[/{id}],
// GET /v1/runs/{id}/events SSE stream, GET /v1/runs/{id}/result,
// DELETE /v1/runs/{id}) and the legacy POST /scenarios shim over it
// (-max-runs bounds concurrent scenario execution). Broker mode adds
// POST /campaigns, GET /campaigns[/{id}], GET /topology, keeps the
// whole run API, and labels per-cluster metrics with {cluster="name"}.
//
// On SIGTERM/SIGINT the daemon drains gracefully: it stops accepting
// submissions, fast-forwards every accepted job (and, in broker mode,
// every campaign task) to completion, prints the final report, and
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	_ "repro/internal/experiments" // registers the scenario kinds + catalog for the run API
	"repro/internal/fleet"
	"repro/internal/gridservice"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/store"
	"repro/pkg/client"
)

func main() {
	var (
		addr     = flag.String("addr", ":8042", "HTTP listen address")
		m        = flag.Int("m", 64, "cluster width (processors)")
		speed    = flag.Float64("speed", 1, "cluster speed factor")
		policy   = flag.String("policy", "easy", "online policy name (see -list-policies)")
		kill     = flag.String("kill", "newest", "best-effort eviction policy: newest|largest")
		dilation = flag.Float64("dilation", 60, "simulated seconds per wall second (0 = free-running)")
		topology = flag.String("topology", "", "fleet topology file: serve a multi-cluster grid broker")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on shutdown")
		maxRuns  = flag.Int("max-runs", 2, "concurrent server-side scenario runs; further submissions queue, then get 429 + Retry-After")
		logReqs  = flag.Bool("log-requests", false, "log one line per API request (method, path, status, duration, bytes, run id)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (outside the API body caps)")
		list     = flag.Bool("list-policies", false, "print the policy catalogs and exit")

		dataDir   = flag.String("data-dir", "", "durable run store directory (WAL + compacting snapshots); empty = in-memory store")
		tenantsF  = flag.String("tenants", "", "tenants file (JSON): per-tenant API keys and admission quotas")
		noPersist = flag.Bool("no-persist", false, "ignore -data-dir and keep the run store in memory")

		fleetOn  = flag.Bool("fleet", false, "coordinator mode: shard run cells across fleet workers via /v1/fleet")
		fleetTTL = flag.Duration("fleet-ttl", 15*time.Second, "fleet lease TTL (expired leases requeue their cells)")

		workerMode  = flag.Bool("worker", false, "worker mode: lease and execute cells from -coordinator instead of serving")
		coordinator = flag.String("coordinator", "http://localhost:8042", "coordinator base URL for -worker mode")
		workerID    = flag.String("worker-id", "", "worker identity (-worker mode; default host-pid)")
		workerBatch = flag.Int("worker-batch", 4, "max cells leased per request (-worker mode)")
		workerPool  = flag.Int("worker-pool", 0, "local cell parallelism per lease (-worker mode; 0 = GOMAXPROCS)")

		version = flag.Bool("version", false, "print build identity (version, go toolchain, catalog hash) and exit")
	)
	flag.Parse()
	if *version {
		v := api.CurrentVersion()
		fmt.Printf("gridd %s %s catalog %s (%d scenarios, %d kinds)\n",
			v.Version, v.GoVersion, v.CatalogHash, v.Scenarios, v.Kinds)
		return
	}
	if *list {
		fmt.Println("local queue policies:")
		_ = registry.WriteCatalog(os.Stdout)
		fmt.Println("\ngrid routing policies (-topology mode):")
		_ = registry.WriteGridCatalog(os.Stdout)
		return
	}
	if *workerMode {
		runWorker(*coordinator, *workerID, *workerBatch, *workerPool)
		return
	}
	apiCfg, closeStore := buildAPIConfig(*maxRuns, *logReqs, *dataDir, *tenantsF, *noPersist)
	defer closeStore()
	var fl *fleet.Coordinator
	if *fleetOn {
		fl = fleet.NewCoordinator(fleet.Config{TTL: *fleetTTL})
		defer fl.Close()
		log.Printf("gridd: fleet coordinator enabled (lease TTL %v, catalog %s)",
			*fleetTTL, fl.Build().CatalogHash)
	}
	if *topology != "" {
		// Broker mode takes its whole configuration from the topology
		// file; warn about explicitly passed single-cluster flags that
		// would otherwise be dropped silently.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "m", "speed", "policy", "kill", "dilation":
				log.Printf("gridd: -%s is ignored in -topology mode (set it in %s)", f.Name, *topology)
			}
		})
		if fl != nil {
			apiCfg.Fleet = fl
		}
		runBroker(*topology, *addr, *drainT, apiCfg, *pprofOn)
		return
	}
	kp := cluster.KillNewest
	switch *kill {
	case "newest":
	case "largest":
		kp = cluster.KillLargestRemaining
	default:
		log.Fatalf("gridd: unknown kill policy %q (newest|largest)", *kill)
	}
	eng, err := service.New(service.Config{
		M: *m, Speed: *speed, Policy: *policy, Kill: kp, Dilation: *dilation,
	})
	if err != nil {
		log.Fatalf("gridd: %v", err)
	}
	eng.Start()
	if fl != nil {
		apiCfg.Fleet = fl
	}
	runs := api.NewRunService(apiCfg)
	defer runs.Close()
	srv := &http.Server{Addr: *addr, Handler: withPprof(eng.Handler(runs), *pprofOn)}

	log.Printf("gridd: serving on %s (m=%d policy=%s dilation=%gx)", *addr, *m, *policy, *dilation)
	serve(srv, func() { eng.Stop() })

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	st, err := eng.Drain(ctx)
	if err != nil {
		log.Printf("gridd: drain: %v", err)
	} else {
		fmt.Printf("gridd: drained: submitted=%d completed=%d %s\n",
			st.Submitted, st.Completed, st.Report)
	}
	_ = srv.Shutdown(ctx)
	eng.Stop()
}

// buildAPIConfig assembles the shared run-service configuration: the
// executor bounds, and — when requested — the durable store and the
// tenant set. The returned closer releases the store's WAL handle.
func buildAPIConfig(maxRuns int, logReqs bool, dataDir, tenantsPath string, noPersist bool) (api.Config, func()) {
	cfg := api.Config{MaxActive: maxRuns, Log: requestLogger(logReqs)}
	closeStore := func() {}
	if dataDir != "" && !noPersist {
		st, err := store.Open(dataDir, store.Options{})
		if err != nil {
			log.Fatalf("gridd: run store: %v", err)
		}
		cfg.Store = st
		closeStore = func() { st.Close() }
		log.Printf("gridd: durable run store at %s (%d runs recovered, seq %d)",
			dataDir, len(st.Runs()), st.Seq())
	}
	if tenantsPath != "" {
		ts, err := store.LoadTenants(tenantsPath)
		if err != nil {
			log.Fatalf("gridd: %v", err)
		}
		cfg.Tenants = ts
		log.Printf("gridd: multi-tenant mode: %s", strings.Join(ts.Names(), ", "))
	}
	return cfg, closeStore
}

// runBroker serves a multi-cluster fleet from a topology file.
func runBroker(path, addr string, drainT time.Duration, cfg api.Config, pprofOn bool) {
	topo, err := gridservice.LoadTopology(path)
	if err != nil {
		log.Fatalf("gridd: %v", err)
	}
	b, err := gridservice.NewBroker(topo)
	if err != nil {
		log.Fatalf("gridd: %v", err)
	}
	b.Start()
	runs := api.NewRunService(cfg)
	defer runs.Close()
	srv := &http.Server{Addr: addr, Handler: withPprof(b.Handler(runs), pprofOn)}

	procs := 0
	for _, c := range topo.Clusters {
		procs += c.M
	}
	log.Printf("gridd: broker serving on %s (%d clusters, %d procs, grid policy %s, dilation %gx)",
		addr, len(topo.Clusters), procs, topo.GridPolicy, topo.Dilation)
	serve(srv, func() { b.Stop() })

	ctx, cancel := context.WithTimeout(context.Background(), drainT)
	defer cancel()
	st, err := b.Drain(ctx)
	if err != nil {
		log.Printf("gridd: drain: %v", err)
	} else {
		fmt.Printf("gridd: drained fleet: submitted=%d completed=%d campaigns=%d/%d best-effort=%d (killed %d)\n",
			st.Fleet.Submitted, st.Fleet.Completed, st.Fleet.CampaignsDone, st.Fleet.Campaigns,
			st.Fleet.BestEffort.Completed, st.Fleet.BestEffort.Killed)
		for _, cs := range st.Clusters {
			fmt.Printf("gridd:   %-12s m=%-4d completed=%-6d best-effort=%d\n",
				cs.Name, cs.Stats.M, cs.Stats.Completed, cs.Stats.BestEffort.Completed)
		}
	}
	_ = srv.Shutdown(ctx)
	b.Stop()
}

// runWorker joins a coordinator's fleet: version handshake first (a
// mismatched catalog hash would silently break the coordinator's
// deterministic merge), then the lease/execute/report loop until
// SIGTERM/SIGINT, which drains gracefully — finished cells of the
// current batch are still reported, unfinished ones requeue on the
// coordinator when the lease TTL expires.
func runWorker(base, id string, batch, pool int) {
	cl := client.New(base)
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancel()

	mine := fleet.CurrentBuild()
	v, err := cl.Version(ctx)
	if err != nil {
		log.Fatalf("gridd: worker: coordinator %s: %v", base, err)
	}
	theirs := fleet.BuildInfo{Version: v.Version, GoVersion: v.GoVersion, CatalogHash: v.CatalogHash}
	if !mine.Compatible(theirs) {
		log.Fatalf("gridd: worker: incompatible coordinator %s: local %+v, remote %+v", base, mine, theirs)
	}
	log.Printf("gridd: worker joining %s (catalog %s)", base, mine.CatalogHash)

	err = fleet.RunWorker(ctx, cl, fleet.WorkerConfig{
		ID: id, Batch: batch, Workers: pool, Log: log.Default(),
	})
	if err != nil && ctx.Err() == nil {
		log.Fatalf("gridd: worker: %v", err)
	}
	log.Printf("gridd: worker: drained, exiting")
}

// requestLogger resolves the -log-requests flag into the middleware's
// optional logger (nil = no per-request log lines).
func requestLogger(enabled bool) *log.Logger {
	if !enabled {
		return nil
	}
	return log.Default()
}

// withPprof mounts the net/http/pprof handlers on an outer mux so
// profile downloads bypass the API middleware (body caps, request
// logging); the daemon API is served unchanged at every other path.
func withPprof(h http.Handler, enabled bool) http.Handler {
	if !enabled {
		return h
	}
	root := http.NewServeMux()
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	root.Handle("/", h)
	return root
}

// serve runs the HTTP server until SIGTERM/SIGINT (returning normally,
// so the caller drains) or a listen error (fatal, after cleanup).
func serve(srv *http.Server, cleanup func()) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case sig := <-sigc:
		log.Printf("gridd: %v: draining", sig)
	case err := <-errc:
		cleanup()
		log.Fatalf("gridd: %v", err)
	}
}
