// Command gridd is the online scheduler daemon: it runs one simulated
// cluster as a long-lived service, accepts job submissions over an HTTP
// JSON API, and advances the deterministic virtual clock against wall
// time with a configurable dilation factor.
//
// Usage examples:
//
//	gridd -m 128 -policy easy -dilation 60        # 1 wall second = 60 sim seconds
//	gridd -policy conservative -dilation 0        # free-running (as fast as possible)
//	gridd -list-policies
//
// Endpoints: POST /jobs, GET /jobs/{id}, GET /queue, GET /stats,
// GET /metrics (Prometheus text), GET /policies.
//
// On SIGTERM/SIGINT the daemon drains gracefully: it stops accepting
// submissions, fast-forwards every accepted job to completion, prints
// the final criteria report, and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/registry"
	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8042", "HTTP listen address")
		m        = flag.Int("m", 64, "cluster width (processors)")
		speed    = flag.Float64("speed", 1, "cluster speed factor")
		policy   = flag.String("policy", "easy", "online policy name (see -list-policies)")
		kill     = flag.String("kill", "newest", "best-effort eviction policy: newest|largest")
		dilation = flag.Float64("dilation", 60, "simulated seconds per wall second (0 = free-running)")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on shutdown")
		list     = flag.Bool("list-policies", false, "print the policy catalog and exit")
	)
	flag.Parse()
	if *list {
		_ = registry.WriteCatalog(os.Stdout)
		return
	}
	kp := cluster.KillNewest
	switch *kill {
	case "newest":
	case "largest":
		kp = cluster.KillLargestRemaining
	default:
		log.Fatalf("gridd: unknown kill policy %q (newest|largest)", *kill)
	}
	eng, err := service.New(service.Config{
		M: *m, Speed: *speed, Policy: *policy, Kill: kp, Dilation: *dilation,
	})
	if err != nil {
		log.Fatalf("gridd: %v", err)
	}
	eng.Start()
	srv := &http.Server{Addr: *addr, Handler: eng.Handler()}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gridd: serving on %s (m=%d policy=%s dilation=%gx)", *addr, *m, *policy, *dilation)

	select {
	case sig := <-sigc:
		log.Printf("gridd: %v: draining", sig)
	case err := <-errc:
		eng.Stop()
		log.Fatalf("gridd: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	st, err := eng.Drain(ctx)
	if err != nil {
		log.Printf("gridd: drain: %v", err)
	} else {
		fmt.Printf("gridd: drained: submitted=%d completed=%d %s\n",
			st.Submitted, st.Completed, st.Report)
	}
	_ = srv.Shutdown(ctx)
	eng.Stop()
}
