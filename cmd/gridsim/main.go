// Command gridsim runs a single scheduling scenario from flags and
// prints the §3 criteria report, optionally with an ASCII Gantt chart —
// the quick-look tool for exploring policies.
//
// Usage examples:
//
//	gridsim -policy mrt -n 100 -m 64
//	gridsim -policy bicriteria -n 200 -m 100 -weighted
//	gridsim -policy easy -n 50 -m 32 -rate 0.1 -gantt
//	gridsim -policy smart -n 80 -m 16 -rigid -weighted
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/batch"
	"repro/internal/bicriteria"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/lowerbound"
	"repro/internal/metrics"
	"repro/internal/moldable"
	"repro/internal/rigid"
	"repro/internal/sched"
	"repro/internal/smart"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		policy   = flag.String("policy", "mrt", "mrt|batch|bicriteria|smart|fcfs|easy|conservative|ffdh")
		n        = flag.Int("n", 100, "number of jobs")
		m        = flag.Int("m", 64, "processors")
		seed     = flag.Uint64("seed", 42, "workload seed")
		rate     = flag.Float64("rate", 0, "Poisson arrival rate (0 = offline)")
		weighted = flag.Bool("weighted", false, "draw job weights")
		rigidF   = flag.Float64("rigidfrac", 0, "fraction of rigid jobs (1 = all rigid)")
		gantt    = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		csvOut   = flag.Bool("csv", false, "dump the schedule as CSV")
		swf      = flag.String("swf", "", "read the workload from an SWF-style trace file instead of generating one")
	)
	flag.Parse()

	var jobs []*workload.Job
	if *swf != "" {
		f, err := os.Open(*swf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		jobs, err = trace.ReadSWF(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		*n = len(jobs)
	} else {
		jobs = workload.Parallel(workload.GenConfig{
			N: *n, M: *m, Seed: *seed, ArrivalRate: *rate,
			Weighted: *weighted, RigidFraction: *rigidF,
		})
	}
	s, err := runPolicy(*policy, jobs, *m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
		os.Exit(1)
	}
	rep := s.Report()
	cmaxLB := lowerbound.Cmax(jobs, *m)
	wcLB := lowerbound.SumWeightedCompletion(jobs, *m)
	fmt.Printf("policy=%s n=%d m=%d rate=%g\n", *policy, *n, *m, *rate)
	fmt.Printf("  Cmax      %12.4g  (%.3fx LB)\n", rep.Makespan, rep.Makespan/cmaxLB)
	fmt.Printf("  ΣC        %12.4g\n", rep.SumCompletion)
	fmt.Printf("  ΣwC       %12.4g  (%.3fx LB)\n", rep.SumWeightedCompletion, rep.SumWeightedCompletion/wcLB)
	fmt.Printf("  mean flow %12.4g\n", rep.MeanFlow)
	fmt.Printf("  max flow  %12.4g\n", rep.MaxFlow)
	fmt.Printf("  util      %11.1f%%\n", 100*rep.Utilization)
	if *gantt {
		fmt.Println()
		if err := trace.Gantt(os.Stdout, s, 100); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: gantt: %v\n", err)
		}
	}
	if *csvOut {
		if err := trace.WriteCSV(os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: csv: %v\n", err)
		}
	}
}

func runPolicy(name string, jobs []*workload.Job, m int) (*sched.Schedule, error) {
	switch name {
	case "mrt":
		res, err := moldable.MRT(jobs, m, 0.01)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	case "batch":
		res, err := batch.OnlineMoldable(jobs, m, 0.01)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	case "bicriteria":
		res, err := bicriteria.Schedule(jobs, m, bicriteria.Options{})
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	case "smart":
		s, _, err := smart.Schedule(jobs, m, smart.FirstFit)
		return s, err
	case "fcfs", "easy":
		var pol cluster.Policy = cluster.FCFSPolicy{}
		if name == "easy" {
			pol = cluster.EASYPolicy{}
		}
		sim, err := cluster.New(des.New(), m, 1, pol, cluster.KillNewest)
		if err != nil {
			return nil, err
		}
		for _, j := range jobs {
			if err := sim.Submit(j); err != nil {
				return nil, err
			}
		}
		if err := sim.Run(); err != nil {
			return nil, err
		}
		return completionsToSchedule(sim.Completions(), m), nil
	case "conservative":
		return rigid.Conservative(jobs, m)
	case "ffdh":
		shelves, err := rigid.FFDH(jobs, m)
		if err != nil {
			return nil, err
		}
		return rigid.ShelvesToSchedule(shelves, m), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func completionsToSchedule(cs []metrics.Completion, m int) *sched.Schedule {
	s := sched.New(m)
	for _, c := range cs {
		s.Add(sched.Alloc{Job: c.Job, Start: c.Start, Procs: c.Procs})
	}
	return s
}
