// Command gridsim runs a single scheduling scenario from flags and
// prints the §3 criteria report, optionally with an ASCII Gantt chart —
// the quick-look tool for exploring policies. Policies are resolved
// through the internal/registry catalog (see -list-policies).
//
// Usage examples:
//
//	gridsim -policy mrt -n 100 -m 64
//	gridsim -policy bicriteria -n 200 -m 100 -weighted
//	gridsim -policy easy -n 50 -m 32 -rate 0.1 -gantt
//	gridsim -policy conservative -online -n 80 -m 16
//	gridsim -scenario examples/scenario/offline-sweep.json
//	gridsim -list-policies
//
// -scenario runs a declarative internal/scenario spec file through the
// experiment engine and prints its table (honouring -seed, -csv and
// -quick), so one binary covers both the single-run quick look and
// full declarative scenarios.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/des"
	_ "repro/internal/experiments" // registers the scenario kinds + catalog
	"repro/internal/lowerbound"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		policy   = flag.String("policy", "mrt", "policy name (see -list-policies)")
		n        = flag.Int("n", 100, "number of jobs")
		m        = flag.Int("m", 64, "processors")
		seed     = flag.Uint64("seed", 42, "workload seed")
		rate     = flag.Float64("rate", 0, "Poisson arrival rate (0 = offline)")
		weighted = flag.Bool("weighted", false, "draw job weights")
		rigidF   = flag.Float64("rigidfrac", 0, "fraction of rigid jobs (1 = all rigid)")
		online   = flag.Bool("online", false, "force the event-driven online mode for dual-capability policies")
		gantt    = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		csvOut   = flag.Bool("csv", false, "dump the schedule as CSV")
		swf      = flag.String("swf", "", "read the workload from an SWF-style trace file instead of generating one")
		stream   = flag.Bool("stream", false, "stream the workload (SWF file or generator) through the online simulator in O(active) memory; prints the report only")
		scen     = flag.String("scenario", "", "run a scenario spec file (JSON) instead of a single policy")
		quick    = flag.Bool("quick", false, "with -scenario: shrink workloads ~10x")
		list     = flag.Bool("list-policies", false, "print the policy catalog with capability flags and exit")
	)
	flag.Parse()

	if *scen != "" {
		spec, err := scenario.Load(*scen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		opt := scenario.RunOptions{Seed: *seed}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				opt.SeedExplicit = true
			}
		})
		if *quick {
			opt.Scale.JobFactor = 10
		}
		res, err := scenario.Run(spec, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		if err := res.Emit(os.Stdout, *csvOut); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		if err := registry.WriteCatalog(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *stream {
		if err := runStream(*policy, *swf, workload.GenConfig{
			N: *n, M: *m, Seed: *seed, ArrivalRate: *rate,
			Weighted: *weighted, RigidFraction: *rigidF,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var jobs []*workload.Job
	if *swf != "" {
		f, err := os.Open(*swf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		jobs, err = trace.ReadSWF(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		*n = len(jobs)
	} else {
		jobs = workload.Parallel(workload.GenConfig{
			N: *n, M: *m, Seed: *seed, ArrivalRate: *rate,
			Weighted: *weighted, RigidFraction: *rigidF,
		})
	}
	s, err := runPolicy(*policy, jobs, *m, *online)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
		os.Exit(1)
	}
	rep := s.Report()
	cmaxLB := lowerbound.Cmax(jobs, *m)
	wcLB := lowerbound.SumWeightedCompletion(jobs, *m)
	fmt.Printf("policy=%s n=%d m=%d rate=%g\n", *policy, *n, *m, *rate)
	fmt.Printf("  Cmax      %12.4g  (%.3fx LB)\n", rep.Makespan, rep.Makespan/cmaxLB)
	fmt.Printf("  ΣC        %12.4g\n", rep.SumCompletion)
	fmt.Printf("  ΣwC       %12.4g  (%.3fx LB)\n", rep.SumWeightedCompletion, rep.SumWeightedCompletion/wcLB)
	fmt.Printf("  mean flow %12.4g\n", rep.MeanFlow)
	fmt.Printf("  max flow  %12.4g\n", rep.MaxFlow)
	fmt.Printf("  util      %11.1f%%\n", 100*rep.Utilization)
	if *gantt {
		fmt.Println()
		if err := trace.Gantt(os.Stdout, s, 100); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: gantt: %v\n", err)
		}
	}
	if *csvOut {
		if err := trace.WriteCSV(os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: csv: %v\n", err)
		}
	}
}

// runStream replays the workload through the online simulator with lazy
// admission and discard retention: the jobs are never all in memory, so
// there is no schedule to chart and no lower bound to compare against —
// the streamed accumulator report is the whole output. This is the path
// that takes multi-million-job SWF archives.
func runStream(policy, swfPath string, cfg workload.GenConfig) error {
	entry, err := registry.Get(policy)
	if err != nil {
		return err
	}
	if !entry.Caps.Online {
		return fmt.Errorf("policy %q is offline-only; -stream needs an online policy", policy)
	}
	var src workload.Source
	srcDesc := fmt.Sprintf("parallel n=%d", cfg.N)
	if swfPath != "" {
		f, err := os.Open(swfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src = trace.NewSWFJobSource(f)
		srcDesc = "swf " + swfPath
	} else {
		src = workload.ParallelSource(cfg)
	}
	sim, err := cluster.New(des.New(), cfg.M, 1, entry.NewPolicy(), cluster.KillNewest)
	if err != nil {
		return err
	}
	if err := sim.SetRetention(metrics.NewDiscard()); err != nil {
		return err
	}
	if err := sim.Stream(src); err != nil {
		return err
	}
	if err := sim.Run(); err != nil {
		return err
	}
	rep := sim.Report()
	fmt.Printf("policy=%s m=%d stream=%s jobs=%d events=%d\n",
		policy, cfg.M, srcDesc, sim.CompletedCount(), sim.DES.Processed)
	fmt.Printf("  Cmax         %12.4g\n", rep.Makespan)
	fmt.Printf("  ΣC           %12.4g\n", rep.SumCompletion)
	fmt.Printf("  ΣwC          %12.4g\n", rep.SumWeightedCompletion)
	fmt.Printf("  mean flow    %12.4g\n", rep.MeanFlow)
	fmt.Printf("  max flow     %12.4g\n", rep.MaxFlow)
	fmt.Printf("  mean stretch %12.4g\n", rep.MeanStretch)
	fmt.Printf("  util         %11.1f%%\n", 100*rep.Utilization)
	return nil
}

// runPolicy resolves the policy in the registry and runs it: offline
// policies build the schedule directly; online policies (or dual-mode
// ones with -online) run through the event-driven cluster simulator.
func runPolicy(name string, jobs []*workload.Job, m int, online bool) (*sched.Schedule, error) {
	entry, err := registry.Get(name)
	if err != nil {
		return nil, err
	}
	if online && !entry.Caps.Online {
		return nil, fmt.Errorf("policy %q is offline-only; -online does not apply", name)
	}
	if entry.Caps.Offline && !(online && entry.Caps.Online) {
		return entry.Offline(jobs, m)
	}
	sim, err := cluster.New(des.New(), m, 1, entry.NewPolicy(), cluster.KillNewest)
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		if err := sim.Submit(j); err != nil {
			return nil, err
		}
	}
	if err := sim.Run(); err != nil {
		return nil, err
	}
	return completionsToSchedule(sim.Completions(), m), nil
}

func completionsToSchedule(cs []metrics.Completion, m int) *sched.Schedule {
	s := sched.New(m)
	for _, c := range cs {
		s.Add(sched.Alloc{Job: c.Job, Start: c.Start, Procs: c.Procs})
	}
	return s
}
