package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// collect drains a specStream.
func collect(t *testing.T, s specStream) ([]service.JobSpec, error) {
	t.Helper()
	var out []service.JobSpec
	for {
		sp, ok, err := s.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, sp)
	}
}

// materializedSWFSpecs is the historical buildSpecs SWF path: read the
// whole trace, then map every record. The streaming path must produce
// the identical spec sequence.
func materializedSWFSpecs(t *testing.T, path string, useRel bool) []service.JobSpec {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadSWFRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]service.JobSpec, len(recs))
	for i, rec := range recs {
		specs[i] = swfSpec(rec, useRel)
	}
	return specs
}

// TestSWFStreamMatchesMaterialized: replaying a trace through the
// streaming source submits the same specs in the same order as the old
// materialize-then-loop path, with and without -use-release.
func TestSWFStreamMatchesMaterialized(t *testing.T) {
	rng := stats.NewRNG(13)
	recs := make([]trace.SWFRecord, 200)
	for i := range recs {
		recs[i] = trace.SWFRecord{
			ID: i, Submit: rng.Range(0, 500), Wait: rng.Range(0, 50),
			Runtime: rng.Range(0.1, 100), Procs: rng.IntRange(1, 64),
			Weight: float64(rng.Zipf(1.1, 10)),
		}
	}
	path := filepath.Join(t.TempDir(), "replay.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSWFRecords(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, useRel := range []bool{false, true} {
		want := materializedSWFSpecs(t, path, useRel)
		stream, closeStream, err := buildStream(path, 0, 0, 0, useRel)
		if err != nil {
			t.Fatal(err)
		}
		got, serr := collect(t, stream)
		if cerr := closeStream(); cerr != nil {
			t.Fatal(cerr)
		}
		if serr != nil {
			t.Fatal(serr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("useRel=%v: streamed specs diverged from materialized (%d vs %d)",
				useRel, len(got), len(want))
		}
	}
}

// TestSyntheticStreamMatchesMaterialized: the generator-backed stream
// submits the same specs as mapping workload.Parallel eagerly.
func TestSyntheticStreamMatchesMaterialized(t *testing.T) {
	const n, m, seed = 150, 32, uint64(42)
	jobs := workload.Parallel(workload.GenConfig{N: n, M: m, Seed: seed, ArrivalRate: 0.5})
	var want []service.JobSpec
	for _, j := range jobs {
		want = append(want, service.JobSpec{
			Name: j.Name, Class: j.Class, SeqTime: j.SeqTime,
			MinProcs: j.MinProcs, MaxProcs: j.MaxProcs, Weight: j.Weight,
			Release: j.Release,
		})
	}
	stream, closeStream, err := buildStream("", n, m, seed, true)
	if err != nil {
		t.Fatal(err)
	}
	defer closeStream()
	got, serr := collect(t, stream)
	if serr != nil {
		t.Fatal(serr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("synthetic stream diverged from materialized (%d vs %d specs)", len(got), len(want))
	}
}

// TestSWFStreamSurfacesParseError: a malformed record mid-trace yields
// the good prefix, then the parse error.
func TestSWFStreamSurfacesParseError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.swf")
	if err := os.WriteFile(path, []byte("1 0 0 5 2 1\n2 0 0 5 1 1\nbroken line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stream, closeStream, err := buildStream(path, 0, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeStream()
	got, serr := collect(t, stream)
	if len(got) != 2 {
		t.Fatalf("yielded %d specs before the bad line, want 2", len(got))
	}
	if serr == nil {
		t.Fatal("malformed trace record not surfaced")
	}
}
