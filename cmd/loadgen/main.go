// Command loadgen drives a running gridd daemon through the pkg/client
// SDK: it submits a stream of jobs — synthetic (workload.GenConfig
// shapes) or replayed from an SWF trace — at a target submission rate
// with concurrent workers, then prints a latency/throughput summary and
// optionally waits until the daemon reports every accepted job
// complete. Against a broker (-topology gridd) the summary additionally
// breaks submission latency down per cluster, and -campaign fans a
// bag-of-tasks campaign across the fleet and waits for it to finish.
//
// Usage examples:
//
//	loadgen -addr http://localhost:8042 -n 200 -rps 100 -workers 4 -wait
//	loadgen -swf trace.swf -use-release -rps 0
//	loadgen -n 5000 -workers 8 -wait          # max-rate throughput probe
//	loadgen -campaign 500 -run-time 30 -wait  # campaign mode (broker only)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/pkg/client"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8042", "gridd base URL")
		n        = flag.Int("n", 200, "number of jobs to submit (synthetic mode)")
		m        = flag.Int("m", 64, "platform width shaping the synthetic jobs")
		rps      = flag.Float64("rps", 0, "target submissions per second (0 = as fast as possible)")
		workers  = flag.Int("workers", 4, "concurrent submission workers")
		seed     = flag.Uint64("seed", 42, "synthetic workload seed")
		swf      = flag.String("swf", "", "replay this SWF trace instead of generating jobs")
		useRel   = flag.Bool("use-release", false, "forward workload release dates as virtual arrival times")
		wait     = flag.Bool("wait", false, "poll until every accepted job (or the campaign) completed")
		campaign = flag.Int("campaign", 0, "campaign mode: POST a bag of this many tasks instead of jobs")
		runTime  = flag.Float64("run-time", 30, "campaign task duration (virtual seconds)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "overall deadline (submission + wait)")
	)
	flag.Parse()

	// No retries: the measured latency must be one round trip, and a
	// saturation probe should count rejections, not mask them.
	cl := client.New(*addr, client.WithRetries(0))
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *campaign > 0 {
		os.Exit(runCampaign(ctx, cl, *campaign, *runTime, *wait))
	}

	stream, closeStream, err := buildStream(*swf, *n, *m, *seed, *useRel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	defer closeStream()

	// Snapshot the daemon's counters first: a long-lived gridd may carry
	// completions from earlier runs, and -wait must account only for the
	// jobs this run submits.
	baseline := 0
	if *wait {
		done, err := cl.Completed(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		baseline = done
	}

	res := fire(ctx, cl, stream, *rps, *workers)
	res.print(os.Stdout)

	exit := 0
	if res.failed > 0 {
		exit = 1
	}
	if *wait {
		lost, err := waitComplete(ctx, cl, baseline, res.accepted)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: wait: %v\n", err)
			exit = 1
		} else if lost > 0 {
			fmt.Printf("LOST %d of %d accepted jobs\n", lost, res.accepted)
			exit = 1
		} else {
			fmt.Printf("all %d accepted jobs completed\n", res.accepted)
		}
	}
	os.Exit(exit)
}

// runCampaign submits one campaign and optionally polls it to completion.
func runCampaign(ctx context.Context, cl *client.Client, tasks int, runTime float64, wait bool) int {
	t0 := time.Now()
	c, err := cl.SubmitCampaign(ctx, "loadgen", tasks, runTime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: campaign: %v\n", err)
		return 1
	}
	fmt.Printf("campaign %d accepted: %d tasks x %gs\n", c.ID, c.Tasks, runTime)
	if !wait {
		return 0
	}
	for {
		st, err := cl.CampaignStatus(ctx, c.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: campaign poll: %v\n", err)
			return 1
		}
		if st.Done {
			fmt.Printf("campaign done in %v: %d tasks completed, %d kills, per-cluster %v\n",
				time.Since(t0).Round(time.Millisecond), st.Completed, st.Killed, st.PerCluster)
			return 0
		}
		select {
		case <-time.After(25 * time.Millisecond):
		case <-ctx.Done():
			fmt.Fprintf(os.Stderr, "loadgen: campaign incomplete at deadline: %d of %d\n",
				st.Completed, st.Tasks)
			return 1
		}
	}
}

// specStream yields the submission stream one spec at a time: an SWF
// replay reads the trace line by line and a synthetic run pulls from
// the workload generator, so loadgen's memory stays O(1) in the trace
// length. ok=false ends the stream; err then reports a malformed trace
// (nil for a clean end).
type specStream interface {
	Next() (sp service.JobSpec, ok bool, err error)
}

// swfSpec derives the submission payload of one trace record — the
// single definition both the streaming path and tests share, so the
// spec order of a streamed replay is the materialized order by
// construction.
func swfSpec(rec trace.SWFRecord, useRel bool) service.JobSpec {
	sp := service.JobSpec{
		Name: fmt.Sprintf("swf-%d", rec.ID), Class: "swf",
		SeqTime:  rec.Runtime * float64(rec.Procs),
		MinProcs: rec.Procs, Weight: rec.Weight,
	}
	if useRel {
		sp.Release = rec.Submit
	}
	return sp
}

// swfStream streams specs off an SWF trace file.
type swfStream struct {
	sc     *trace.SWFScanner
	useRel bool
}

func (s *swfStream) Next() (service.JobSpec, bool, error) {
	if !s.sc.Scan() {
		return service.JobSpec{}, false, s.sc.Err()
	}
	return swfSpec(s.sc.Record(), s.useRel), true, nil
}

// jobStream streams specs off a synthetic workload source.
type jobStream struct {
	src    workload.Source
	useRel bool
}

func (s *jobStream) Next() (service.JobSpec, bool, error) {
	j, ok := s.src.Next()
	if !ok {
		return service.JobSpec{}, false, nil
	}
	sp := service.JobSpec{
		Name: j.Name, Class: j.Class, SeqTime: j.SeqTime,
		MinProcs: j.MinProcs, MaxProcs: j.MaxProcs, Weight: j.Weight,
	}
	if s.useRel {
		sp.Release = j.Release
	}
	return sp, true, nil
}

// buildStream opens the submission stream and returns it with its
// cleanup function.
func buildStream(swf string, n, m int, seed uint64, useRel bool) (specStream, func() error, error) {
	if swf != "" {
		f, err := os.Open(swf)
		if err != nil {
			return nil, nil, err
		}
		return &swfStream{sc: trace.NewSWFScanner(f), useRel: useRel}, f.Close, nil
	}
	src := workload.ParallelSource(workload.GenConfig{N: n, M: m, Seed: seed, ArrivalRate: 0.5})
	return &jobStream{src: src, useRel: useRel}, func() error { return nil }, nil
}

type result struct {
	accepted, failed int
	elapsed          time.Duration
	latencies        []time.Duration
	perCluster       map[string][]time.Duration
	firstErr         string
}

// fire submits the stream with the worker pool, pacing it at rps
// submissions per second (absolute schedule, so pacing does not drift).
// A malformed trace record stops submission there; the prefix already
// sent stands and the parse error is reported as a failure.
func fire(ctx context.Context, cl *client.Client, stream specStream, rps float64, workers int) *result {
	if workers < 1 {
		workers = 1
	}
	feed := make(chan service.JobSpec, workers)
	var mu sync.Mutex
	res := &result{perCluster: map[string][]time.Duration{}}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lats []time.Duration
			byCluster := map[string][]time.Duration{}
			acc, fail := 0, 0
			firstErr := ""
			for sp := range feed {
				t0 := time.Now()
				st, err := cl.SubmitJob(ctx, sp)
				lat := time.Since(t0)
				if err != nil {
					fail++
					if firstErr == "" {
						firstErr = err.Error()
					}
					continue
				}
				acc++
				lats = append(lats, lat)
				if st.Cluster != "" {
					byCluster[st.Cluster] = append(byCluster[st.Cluster], lat)
				}
			}
			mu.Lock()
			res.accepted += acc
			res.failed += fail
			res.latencies = append(res.latencies, lats...)
			for name, ls := range byCluster {
				res.perCluster[name] = append(res.perCluster[name], ls...)
			}
			if res.firstErr == "" {
				res.firstErr = firstErr
			}
			mu.Unlock()
		}()
	}
	fed, skipped := 0, 0
	var streamErr error
	for {
		sp, ok, err := stream.Next()
		if err != nil {
			streamErr = err
			break
		}
		if !ok {
			break
		}
		if rps > 0 {
			due := start.Add(time.Duration(float64(fed) / rps * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
		}
		// Stop feeding once the deadline fired: every further submission
		// would fail instantly, and sleeping out the rest of a long
		// paced schedule just to report that helps nobody. The remainder
		// of the stream is drained (not submitted) so the failure count
		// still covers the whole workload.
		if ctx.Err() != nil {
			skipped++
			for {
				if _, more, err := stream.Next(); err != nil || !more {
					break
				}
				skipped++
			}
			break
		}
		feed <- sp
		fed++
	}
	close(feed)
	wg.Wait()
	if skipped > 0 {
		res.failed += skipped
		if res.firstErr == "" {
			res.firstErr = ctx.Err().Error()
		}
	}
	if streamErr != nil {
		res.failed++
		if res.firstErr == "" {
			res.firstErr = streamErr.Error()
		}
	}
	res.elapsed = time.Since(start)
	return res
}

// pctOf returns the p-quantile of a sorted latency slice.
func pctOf(sorted []time.Duration, p float64) time.Duration {
	return sorted[int(p*float64(len(sorted)-1))]
}

func (r *result) print(w io.Writer) {
	fmt.Fprintf(w, "submitted %d (accepted %d, failed %d) in %v  →  %.0f jobs/s\n",
		r.accepted+r.failed, r.accepted, r.failed, r.elapsed.Round(time.Millisecond),
		float64(r.accepted)/r.elapsed.Seconds())
	if r.firstErr != "" {
		fmt.Fprintf(w, "first error: %s\n", r.firstErr)
	}
	if len(r.latencies) == 0 {
		return
	}
	sort.Slice(r.latencies, func(i, k int) bool { return r.latencies[i] < r.latencies[k] })
	fmt.Fprintf(w, "latency p50=%v p90=%v p99=%v max=%v\n",
		pctOf(r.latencies, 0.50).Round(time.Microsecond), pctOf(r.latencies, 0.90).Round(time.Microsecond),
		pctOf(r.latencies, 0.99).Round(time.Microsecond), r.latencies[len(r.latencies)-1].Round(time.Microsecond))
	if len(r.perCluster) == 0 {
		return
	}
	names := make([]string, 0, len(r.perCluster))
	for name := range r.perCluster {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ls := r.perCluster[name]
		sort.Slice(ls, func(i, k int) bool { return ls[i] < ls[k] })
		fmt.Fprintf(w, "  cluster %-12s %6d jobs  p50=%v p99=%v max=%v\n",
			name, len(ls),
			pctOf(ls, 0.50).Round(time.Microsecond), pctOf(ls, 0.99).Round(time.Microsecond),
			ls[len(ls)-1].Round(time.Microsecond))
	}
}

// waitComplete polls /stats until the daemon has completed `accepted`
// jobs beyond the pre-run baseline or the context deadline passes,
// returning the number of this run's jobs still unfinished.
func waitComplete(ctx context.Context, cl *client.Client, baseline, accepted int) (lost int, err error) {
	for {
		completed, err := cl.Completed(ctx)
		if err != nil {
			return accepted, err
		}
		done := completed - baseline
		if done >= accepted {
			return 0, nil
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return accepted - done, nil
		}
	}
}
