// Command loadgen drives a running gridd daemon: it submits a stream of
// jobs — synthetic (workload.GenConfig shapes) or replayed from an SWF
// trace — at a target submission rate with concurrent workers, then
// prints a latency/throughput summary and optionally waits until the
// daemon reports every accepted job complete.
//
// Usage examples:
//
//	loadgen -addr http://localhost:8042 -n 200 -rps 100 -workers 4 -wait
//	loadgen -swf trace.swf -use-release -rps 0
//	loadgen -n 5000 -workers 8 -wait          # max-rate throughput probe
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8042", "gridd base URL")
		n       = flag.Int("n", 200, "number of jobs to submit (synthetic mode)")
		m       = flag.Int("m", 64, "platform width shaping the synthetic jobs")
		rps     = flag.Float64("rps", 0, "target submissions per second (0 = as fast as possible)")
		workers = flag.Int("workers", 4, "concurrent submission workers")
		seed    = flag.Uint64("seed", 42, "synthetic workload seed")
		swf     = flag.String("swf", "", "replay this SWF trace instead of generating jobs")
		useRel  = flag.Bool("use-release", false, "forward workload release dates as virtual arrival times")
		wait    = flag.Bool("wait", false, "poll /stats until every accepted job completed")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall deadline (submission + wait)")
	)
	flag.Parse()

	specs, err := buildSpecs(*swf, *n, *m, *seed, *useRel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 10 * time.Second}
	deadline := time.Now().Add(*timeout)

	// Snapshot the daemon's counters first: a long-lived gridd may carry
	// completions from earlier runs, and -wait must account only for the
	// jobs this run submits.
	baseline := 0
	if *wait {
		st, err := fetchStats(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		baseline = st.Completed
	}

	res := fire(client, base, specs, *rps, *workers)
	res.print(os.Stdout)

	exit := 0
	if res.failed > 0 {
		exit = 1
	}
	if *wait {
		lost, err := waitComplete(client, base, baseline, res.accepted, deadline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: wait: %v\n", err)
			exit = 1
		} else if lost > 0 {
			fmt.Printf("LOST %d of %d accepted jobs\n", lost, res.accepted)
			exit = 1
		} else {
			fmt.Printf("all %d accepted jobs completed\n", res.accepted)
		}
	}
	os.Exit(exit)
}

// buildSpecs materializes the submission stream.
func buildSpecs(swf string, n, m int, seed uint64, useRel bool) ([]service.JobSpec, error) {
	var specs []service.JobSpec
	if swf != "" {
		f, err := os.Open(swf)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := trace.ReadSWFRecords(f)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			sp := service.JobSpec{
				Name: fmt.Sprintf("swf-%d", rec.ID), Class: "swf",
				SeqTime:  rec.Runtime * float64(rec.Procs),
				MinProcs: rec.Procs, Weight: rec.Weight,
			}
			if useRel {
				sp.Release = rec.Submit
			}
			specs = append(specs, sp)
		}
		return specs, nil
	}
	jobs := workload.Parallel(workload.GenConfig{N: n, M: m, Seed: seed, ArrivalRate: 0.5})
	for _, j := range jobs {
		sp := service.JobSpec{
			Name: j.Name, Class: j.Class, SeqTime: j.SeqTime,
			MinProcs: j.MinProcs, MaxProcs: j.MaxProcs, Weight: j.Weight,
		}
		if useRel {
			sp.Release = j.Release
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

type result struct {
	accepted, failed int
	elapsed          time.Duration
	latencies        []time.Duration
	firstErr         string
}

// fire submits the specs with the worker pool, pacing the stream at rps
// submissions per second (absolute schedule, so pacing does not drift).
func fire(client *http.Client, base string, specs []service.JobSpec, rps float64, workers int) *result {
	if workers < 1 {
		workers = 1
	}
	feed := make(chan service.JobSpec, workers)
	var mu sync.Mutex
	res := &result{}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lats []time.Duration
			acc, fail := 0, 0
			firstErr := ""
			for sp := range feed {
				body, _ := json.Marshal(sp)
				t0 := time.Now()
				resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					fail++
					if firstErr == "" {
						firstErr = err.Error()
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					fail++
					if firstErr == "" {
						firstErr = fmt.Sprintf("status %d", resp.StatusCode)
					}
					continue
				}
				acc++
				lats = append(lats, lat)
			}
			mu.Lock()
			res.accepted += acc
			res.failed += fail
			res.latencies = append(res.latencies, lats...)
			if res.firstErr == "" {
				res.firstErr = firstErr
			}
			mu.Unlock()
		}()
	}
	for i, sp := range specs {
		if rps > 0 {
			due := start.Add(time.Duration(float64(i) / rps * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		feed <- sp
	}
	close(feed)
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

func (r *result) print(w io.Writer) {
	fmt.Fprintf(w, "submitted %d (accepted %d, failed %d) in %v  →  %.0f jobs/s\n",
		r.accepted+r.failed, r.accepted, r.failed, r.elapsed.Round(time.Millisecond),
		float64(r.accepted)/r.elapsed.Seconds())
	if r.firstErr != "" {
		fmt.Fprintf(w, "first error: %s\n", r.firstErr)
	}
	if len(r.latencies) == 0 {
		return
	}
	sort.Slice(r.latencies, func(i, k int) bool { return r.latencies[i] < r.latencies[k] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(r.latencies)-1))
		return r.latencies[i]
	}
	fmt.Fprintf(w, "latency p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), r.latencies[len(r.latencies)-1].Round(time.Microsecond))
}

// fetchStats reads the daemon's /stats endpoint.
func fetchStats(client *http.Client, base string) (service.Stats, error) {
	var st service.Stats
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitComplete polls /stats until the daemon has completed `accepted`
// jobs beyond the pre-run baseline or the deadline passes, returning the
// number of this run's jobs still unfinished.
func waitComplete(client *http.Client, base string, baseline, accepted int, deadline time.Time) (lost int, err error) {
	for {
		st, err := fetchStats(client, base)
		if err != nil {
			return accepted, err
		}
		done := st.Completed - baseline
		if done >= accepted {
			return 0, nil
		}
		if time.Now().After(deadline) {
			return accepted - done, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}
