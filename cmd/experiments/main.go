// Command experiments runs scenarios from the declarative catalog
// (internal/scenario): every table and figure of the paper's
// evaluation is a built-in Spec, and arbitrary new workload × platform
// × policy × routing combinations load from JSON files.
//
// Usage:
//
//	experiments [-seed N] [-quick] [-csv] [-parallel] [-workers N] run <id>|<file.json>
//	experiments [flags] <id>|all|ablations|<file.json>    (legacy form)
//	experiments -list-scenarios
//	experiments -list-policies
//
// The id list in the usage text is generated from the scenario
// catalog; see -list-scenarios for descriptions and kinds.
//
// -parallel fans independent experiment cells out over the worker-pool
// replication runner (bounded by GOMAXPROCS); passing -workers
// explicitly (any value; 0 means GOMAXPROCS) also selects the pool.
// Tables are bit-identical to a sequential run for the same seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	_ "repro/internal/experiments" // registers the scenario kinds and built-in catalog
	"repro/internal/registry"
	"repro/internal/scenario"
)

func usage(w *os.File) {
	fmt.Fprintln(w, "usage: experiments [-seed N] [-quick] [-csv] [-parallel] [-workers N] run <id>|<file.json>")
	fmt.Fprintln(w, "       experiments [flags] <id>|all|ablations|<file.json>")
	fmt.Fprintln(w, "       experiments -list-scenarios | -list-policies")
	fmt.Fprintf(w, "ids: %s\n", strings.Join(append(scenario.CatalogIDs(scenario.GroupFigure),
		append(scenario.CatalogIDs(scenario.GroupTable), "ablations")...), " "))
	fmt.Fprintf(w, "ablations: %s\n", strings.Join(scenario.CatalogIDs(scenario.GroupAblation), " "))
}

func main() {
	seed := flag.Uint64("seed", 42, "base RNG seed (overrides a spec-pinned seed)")
	quickFlag := flag.Bool("quick", false, "shrink workloads ~10x for a fast pass")
	format := flag.String("format", "text", "output format: text (aligned tables, the default), json (typed result cells) or csv")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables (alias for -format csv)")
	parallel := flag.Bool("parallel", false, "run independent experiment cells on a worker pool")
	workers := flag.Int("workers", 0, "worker-pool size; passing this flag implies the pool (0 = GOMAXPROCS)")
	list := flag.Bool("list-policies", false, "print the policy catalog with capability flags and exit")
	listScenarios := flag.Bool("list-scenarios", false, "print the scenario catalog and exit")
	flag.Usage = func() { usage(os.Stderr); flag.PrintDefaults() }
	flag.Parse()
	if *list {
		if err := registry.WriteCatalog(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *listScenarios {
		if err := scenario.WriteCatalog(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	args := flag.Args()
	if len(args) == 2 && args[0] == "run" {
		args = args[1:]
	}
	if len(args) != 1 {
		usage(os.Stderr)
		os.Exit(2)
	}
	opt := scenario.RunOptions{Seed: *seed}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			opt.SeedExplicit = true
		case "workers":
			// Any explicit -workers selects the pool, -workers 1
			// included (a pool of one runs cells sequentially but keeps
			// the pool semantics) — the flag is never silently ignored.
			*parallel = true
		}
	})
	if *quickFlag {
		opt.Scale.JobFactor = 10
	}
	if *parallel {
		opt.Scale.Workers = *workers
		if opt.Scale.Workers <= 0 {
			opt.Scale.Workers = runtime.GOMAXPROCS(0)
		}
	}
	formatExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "format" {
			formatExplicit = true
		}
	})
	if *csv {
		if formatExplicit && *format != "csv" {
			fmt.Fprintf(os.Stderr, "experiments: -csv conflicts with -format %s\n", *format)
			os.Exit(2)
		}
		*format = "csv"
	}
	switch *format {
	case "text", "json", "csv":
	default:
		// Reject up front: discovering a typo after the first
		// paper-scale experiment finished would waste its compute.
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q (text|json|csv)\n", *format)
		os.Exit(2)
	}
	if err := run(args[0], opt, *format); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// run resolves the argument — "all", "ablations", a catalog id, or a
// scenario JSON file — and emits each resulting scenario's output
// followed by a blank line.
func run(id string, opt scenario.RunOptions, format string) error {
	var specs []*scenario.Spec
	switch {
	case id == "all":
		specs = scenario.Catalog()
	case id == "ablations":
		for _, s := range scenario.Catalog() {
			if s.Group == scenario.GroupAblation {
				specs = append(specs, s)
			}
		}
	default:
		if s, ok := scenario.Lookup(id); ok {
			specs = []*scenario.Spec{s}
			break
		}
		if strings.HasSuffix(id, ".json") || fileExists(id) {
			s, err := scenario.Load(id)
			if err != nil {
				return err
			}
			specs = []*scenario.Spec{s}
			break
		}
		return fmt.Errorf("unknown experiment %q (see -list-scenarios)", id)
	}
	for _, s := range specs {
		res, err := scenario.Run(s, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		if err := res.EmitFormat(os.Stdout, format); err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		fmt.Println()
	}
	return nil
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}
