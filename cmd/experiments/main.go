// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments [-seed N] [-quick] [-csv] [-parallel] [-workers N] <id>|all
//	experiments -list-policies
//
// Experiment ids: fig2, mrt, batch, smart, bicriteria, dlt, cigri,
// decentralized, mixed, reservations, malleable, treedlt, policies,
// ablations.
//
// -parallel fans independent experiment cells out over the worker-pool
// replication runner (bounded by GOMAXPROCS); tables are bit-identical
// to a sequential run for the same seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/bicriteria"
	"repro/internal/experiments"
	"repro/internal/registry"
	"repro/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 42, "base RNG seed")
	quickFlag := flag.Bool("quick", false, "shrink workloads ~10x for a fast pass")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	parallel := flag.Bool("parallel", false, "run independent experiment cells on a worker pool")
	workers := flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
	list := flag.Bool("list-policies", false, "print the policy catalog with capability flags and exit")
	flag.Parse()
	if *list {
		if err := registry.WriteCatalog(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-seed N] [-quick] [-csv] [-parallel] [-workers N] <id>|all")
		fmt.Fprintln(os.Stderr, "ids: fig2 mrt batch smart bicriteria dlt cigri decentralized mixed reservations malleable treedlt criteria heterogrid policies gridpolicies ablations")
		os.Exit(2)
	}
	sc := experiments.Scale{}
	if *quickFlag {
		sc.JobFactor = 10
	}
	if *parallel || *workers > 1 {
		sc.Workers = *workers
		if sc.Workers <= 0 {
			sc.Workers = runtime.GOMAXPROCS(0)
		}
	}
	id := flag.Arg(0)
	if err := run(id, *seed, sc, *csv); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

type tableFn func(uint64, experiments.Scale) (*trace.Table, error)

var tables = []struct {
	id string
	fn tableFn
}{
	{"mrt", experiments.MRTTable},
	{"batch", experiments.BatchTable},
	{"smart", experiments.SMARTTable},
	{"bicriteria", experiments.BiCriteriaTable},
	{"dlt", experiments.DLTTable},
	{"cigri", experiments.CiGriTable},
	{"decentralized", experiments.DecentralizedTable},
	{"mixed", experiments.MixedTable},
	{"reservations", experiments.ReservationsTable},
	{"malleable", experiments.MalleableTable},
	{"treedlt", experiments.TreeDLTTable},
	{"criteria", experiments.CriteriaMatrixTable},
	{"heterogrid", experiments.HeteroGridTable},
	{"policies", experiments.OnlinePolicyTable},
	{"gridpolicies", experiments.GridPolicyTable},
}

var ablations = []struct {
	id string
	fn tableFn
}{
	{"ablation-allotment", experiments.AblationAllotment},
	{"ablation-doubling-base", experiments.AblationDoublingBase},
	{"ablation-shelf-fill", experiments.AblationShelfFill},
	{"ablation-chunk", experiments.AblationChunk},
	{"ablation-kill-policy", experiments.AblationKillPolicy},
	{"ablation-compaction", experiments.AblationCompaction},
}

func run(id string, seed uint64, sc experiments.Scale, csv bool) error {
	emit := func(t *trace.Table) error {
		defer fmt.Println()
		if csv {
			return t.WriteCSV(os.Stdout)
		}
		return t.Write(os.Stdout)
	}
	runOne := func(fn tableFn) error {
		t, err := fn(seed, sc)
		if err != nil {
			return err
		}
		return emit(t)
	}
	if id == "fig2" || id == "all" {
		np, p, err := experiments.Fig2Tables(seed, sc)
		if err != nil {
			return err
		}
		bicriteria.WriteFig2(os.Stdout, np, p)
		fmt.Println()
		if id == "fig2" {
			return nil
		}
	}
	matched := false
	for _, e := range tables {
		if id == e.id || id == "all" {
			matched = true
			if err := runOne(e.fn); err != nil {
				return fmt.Errorf("%s: %w", e.id, err)
			}
		}
	}
	for _, e := range ablations {
		if id == e.id || id == "ablations" || id == "all" {
			matched = true
			if err := runOne(e.fn); err != nil {
				return fmt.Errorf("%s: %w", e.id, err)
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
