package repro

import (
	"fmt"
	"testing"
)

// The facade must expose a coherent, working surface: these tests drive
// the whole stack through the public aliases only.

func TestFacadeRecommendAndRun(t *testing.T) {
	const m = 32
	jobs := ParallelJobs(GenConfig{N: 40, M: m, Seed: 1, Weighted: true})
	p := Profile{Moldable: true, Criterion: BiCriteria}
	rec := Recommend(p)
	if rec.Policy != "bicriteria-doubling" {
		t.Fatalf("recommendation drifted: %+v", rec)
	}
	s, _, err := Run(jobs, m, p)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Makespan <= 0 || rep.N != 40 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Makespan/CmaxLowerBound(jobs, m) > 6 {
		t.Fatal("4ρ bound violated through the facade")
	}
	if rep.SumWeightedCompletion/WeightedCompletionLowerBound(jobs, m) > 6 {
		t.Fatal("ΣwC bound violated through the facade")
	}
}

func TestFacadePlatforms(t *testing.T) {
	if CIMENT().TotalProcs() != 432 {
		t.Fatal("CIMENT drifted from Figure 3")
	}
	if UniformCluster("x", 100).TotalProcs() != 100 {
		t.Fatal("uniform platform broken")
	}
}

func TestFacadeDLT(t *testing.T) {
	star := BusPlatform([]float64{1, 2}, 0.1, 0)
	d, err := SingleRound(star, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Makespan <= 0 {
		t.Fatal("degenerate DLT result")
	}
	if SteadyStateThroughput(star) <= 0 {
		t.Fatal("degenerate throughput")
	}
	if _, err := MultiRound(star, 100, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := SelfSchedule(star, 100, 5); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(SequentialJobs(GenConfig{N: 5, Seed: 1})) != 5 {
		t.Fatal("SequentialJobs broken")
	}
	if len(MixedJobs(GenConfig{N: 5, M: 8, Seed: 1})) != 5 {
		t.Fatal("MixedJobs broken")
	}
	if len(CommunityJobs(CIMENTCommunities(), 5, 16, 0, 1)) != 5 {
		t.Fatal("CommunityJobs broken")
	}
	if len(Bags(3, 1)) != 3 {
		t.Fatal("Bags broken")
	}
}

func TestFacadePolicies(t *testing.T) {
	for _, p := range []ClusterPolicy{FCFS, EASY, GreedyFit} {
		if p.Name() == "" {
			t.Fatal("unnamed policy")
		}
	}
}

// ExampleRecommend demonstrates the paper's decision procedure.
func ExampleRecommend() {
	rec := Recommend(Profile{Moldable: true, Online: true})
	fmt.Println(rec.Policy, rec.Guarantee)
	// Output: batch-mrt 3 + ε
}

// ExampleFig2Series shows how to regenerate one point of Figure 2.
func ExampleFig2Series() {
	pts, err := Fig2Series(Fig2Config{
		M: 16, Ns: []int{10}, Seed: 1, Reps: 1, Parallel: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(pts), pts[0].N)
	// Output: 1 10
}
