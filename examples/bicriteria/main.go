// Figure 2 in miniature: run the §4.4 bi-criteria doubling algorithm on
// the paper's 100-machine cluster for both workload families and print
// the two ratio curves (WiCi ratio and Cmax ratio vs number of tasks).
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	ns := []int{10, 50, 100, 250, 500, 1000}
	fmt.Println("reproducing Figure 2 (this takes a few seconds)...")

	nonParallel, err := repro.Fig2Series(repro.Fig2Config{
		M: 100, Ns: ns, Seed: 1, Reps: 3, Parallel: false,
	})
	if err != nil {
		log.Fatal(err)
	}
	parallel, err := repro.Fig2Series(repro.Fig2Config{
		M: 100, Ns: ns, Seed: 2, Reps: 3, Parallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	repro.WriteFig2(os.Stdout, nonParallel, parallel)

	fmt.Println("\nThe §4.4 guarantee bounds both ratios by 4ρ = 6; the")
	fmt.Println("measured curves stay far below it, like the paper's Figure 2.")
}
