// Quickstart: profile an application, let the library pick the policy
// the paper recommends, run it, and score the schedule on the §3
// criteria.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A cluster of 100 machines — the Figure 2 setting.
	const m = 100

	// 200 moldable parallel jobs with priorities, all available now.
	jobs := repro.ParallelJobs(repro.GenConfig{N: 200, M: m, Seed: 42, Weighted: true})

	// The paper's question: which policy for this application?
	profile := repro.Profile{Moldable: true, Criterion: repro.BiCriteria}
	rec := repro.Recommend(profile)
	fmt.Printf("application: offline moldable, both criteria\n")
	fmt.Printf("recommended: %s (%s, guarantee %s)\n", rec.Policy, rec.Section, rec.Guarantee)

	// Run it.
	schedule, _, err := repro.Run(jobs, m, profile)
	if err != nil {
		log.Fatal(err)
	}

	// Score against certified lower bounds.
	report := schedule.Report()
	cmaxLB := repro.CmaxLowerBound(jobs, m)
	wcLB := repro.WeightedCompletionLowerBound(jobs, m)
	fmt.Printf("makespan  : %.1f  (%.2fx the lower bound)\n", report.Makespan, report.Makespan/cmaxLB)
	fmt.Printf("ΣwC       : %.3g  (%.2fx the lower bound)\n",
		report.SumWeightedCompletion, report.SumWeightedCompletion/wcLB)
	fmt.Printf("utilization: %.0f%%\n", 100*report.Utilization)

	// Contrast with a pure-makespan profile.
	rec2 := repro.Recommend(repro.Profile{Moldable: true, Criterion: repro.Makespan})
	fmt.Printf("\nfor Cmax only the paper picks: %s (%s, guarantee %s)\n",
		rec2.Policy, rec2.Section, rec2.Guarantee)
}
