// The paper's title, answered: enumerate the application taxonomy of §2
// and print the policy the analysis selects for each class, with its
// guarantee — then run each recommendation on a sample workload to show
// the guarantee holding.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Which policy for which application?  (§2 taxonomy × §3 criteria)")
	fmt.Println()

	profiles := []struct {
		desc string
		p    repro.Profile
	}{
		{"offline moldable, makespan", repro.Profile{Moldable: true}},
		{"online moldable, makespan", repro.Profile{Moldable: true, Online: true}},
		{"rigid, weighted completion", repro.Profile{Criterion: repro.WeightedCompletion}},
		{"moldable, both criteria", repro.Profile{Moldable: true, Criterion: repro.BiCriteria}},
		{"offline rigid, makespan", repro.Profile{}},
		{"online rigid, makespan", repro.Profile{Online: true}},
		{"divisible (multi-parametric)", repro.Profile{Divisible: true}},
	}
	for _, x := range profiles {
		rec := repro.Recommend(x.p)
		fmt.Printf("%-30s → %-24s %-10s ratio %s\n",
			x.desc, rec.Policy, rec.Section, rec.Guarantee)
	}

	// Demonstrate the recommendations on a live instance.
	const m = 32
	fmt.Printf("\nrunning each PT recommendation on 60 jobs, m=%d:\n", m)
	for _, x := range profiles {
		if x.p.Divisible {
			continue // handled by the dlt package (see examples/dlt)
		}
		cfg := repro.GenConfig{N: 60, M: m, Seed: 7, Weighted: true}
		if x.p.Online {
			cfg.ArrivalRate = 0.1
		}
		if !x.p.Moldable {
			cfg.RigidFraction = 1
		}
		jobs := repro.ParallelJobs(cfg)
		s, rec, err := repro.Run(jobs, m, x.p)
		if err != nil {
			log.Fatal(err)
		}
		rep := s.Report()
		fmt.Printf("%-30s Cmax %8.0f (%.2fx LB)   ΣwC %10.0f (%.2fx LB)\n",
			rec.Policy,
			rep.Makespan, rep.Makespan/repro.CmaxLowerBound(jobs, m),
			rep.SumWeightedCompletion,
			rep.SumWeightedCompletion/repro.WeightedCompletionLowerBound(jobs, m))
	}
}
