// Fleet: shard one scenario's cells across a worker fleet and prove
// the distributed result is byte-identical to the single-process one.
//
// This drives the coordinator and workers in-process (the coordinator
// is its own Transport), which is the same machinery `gridd -fleet`
// and `gridd -worker` run across real machines — see README.md in
// this directory for the multi-process walkthrough.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	_ "repro/internal/experiments" // register the built-in scenario catalog
	"repro/internal/fleet"
	"repro/internal/scenario"
)

func main() {
	spec, ok := scenario.Lookup("mrt")
	if !ok {
		log.Fatal("mrt not in catalog")
	}
	opt := scenario.RunOptions{Seed: 42, Scale: scenario.Scale{JobFactor: 20}}

	// The reference: one process, no fleet.
	local, err := scenario.Run(spec, opt)
	if err != nil {
		log.Fatal(err)
	}
	var want bytes.Buffer
	if err := local.Emit(&want, false); err != nil {
		log.Fatal(err)
	}

	// A coordinator plus three workers. Over HTTP the workers would use
	// pkg/client as the Transport; in-process the coordinator is one.
	c := fleet.NewCoordinator(fleet.Config{TTL: 30 * time.Second})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = fleet.RunWorker(ctx, c, fleet.WorkerConfig{
				ID: fmt.Sprintf("node-%d", i), Batch: 2, Poll: 50 * time.Millisecond,
			})
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	// Exactly what the daemon's run executor does: resolve the seed,
	// register the run with the coordinator, and hand the returned cell
	// runner to the scenario engine via RunOptions.Remote.
	runID := "example-mrt"
	cr, err := c.Dispatcher(runID, spec, spec.EffectiveSeed(opt), opt.Scale.JobFactor)
	if err != nil {
		log.Fatal(err)
	}
	opt.Remote = cr
	dist, err := scenario.Run(spec, opt)
	if err != nil {
		log.Fatal(err)
	}
	var got bytes.Buffer
	if err := dist.Emit(&got, false); err != nil {
		log.Fatal(err)
	}

	fmt.Print(got.String())
	if got.String() != want.String() {
		log.Fatal("distributed table diverged from the single-process run")
	}
	fmt.Printf("\nbyte-identical to the single-process run; contributors: %v\n", c.RunWorkers(runID))
	for _, w := range c.WorkersStatus() {
		fmt.Printf("  %-8s leased->done %d cells (%.1f cells/s)\n", w.ID, w.CellsDone, w.CellsPerSec)
	}
}
