// Divisible load (§2.1): distribute a large multi-parametric workload on
// a heterogeneous star platform with the three policies the paper
// discusses — optimal single round, multi-round, and dynamic
// self-scheduling — and show where each wins as latency grows.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A small heterogeneous platform: fast workers on slow links and
	// vice versa (the interesting DLT regime).
	star := &repro.Star{Workers: []repro.Worker{
		{Name: "itanium", Compute: 0.8, Link: 0.02},
		{Name: "xeon", Compute: 1.0, Link: 0.08},
		{Name: "athlon-a", Compute: 1.3, Link: 0.40},
		{Name: "athlon-b", Compute: 1.3, Link: 0.40},
	}}
	const W = 10000.0 // total load units

	fmt.Printf("star platform, %d workers, load %g\n", len(star.Workers), W)
	fmt.Printf("steady-state throughput bound: %.3f units/s\n\n", repro.SteadyStateThroughput(star))

	fmt.Printf("%10s  %12s  %12s  %14s\n", "latency", "1 round", "10 rounds", "self-sched")
	for _, latency := range []float64{0, 1, 10, 100} {
		star.Latency = latency
		one, err := repro.SingleRound(star, W)
		if err != nil {
			log.Fatal(err)
		}
		ten, err := repro.MultiRound(star, W, 10)
		if err != nil {
			log.Fatal(err)
		}
		dyn, err := repro.SelfSchedule(star, W, W/100)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10g  %12.0f  %12.0f  %14.0f\n",
			latency, one.Makespan, ten.Makespan, dyn.Makespan)
	}

	fmt.Println("\nmulti-round overlaps communication with computation and wins at")
	fmt.Println("low latency; single round wins once per-message latency dominates —")
	fmt.Println("the §2.1 trade-off (NP-hard in general topologies, closed form here).")
}
