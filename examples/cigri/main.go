// CiGri in miniature (§5.2 centralized design): the four CIMENT clusters
// of Figure 3 run their communities' local jobs while a central server
// feeds a multi-parametric campaign into the holes as best-effort tasks.
// Local jobs are never delayed; killed grid tasks are resubmitted.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cluster"
	"repro/internal/metrics"
)

func main() {
	grid := repro.CIMENT()
	fmt.Printf("platform: %s — %d clusters, %d processors (Figure 3)\n",
		grid.Name, len(grid.Clusters), grid.TotalProcs())

	// Local community workloads per cluster.
	var members []repro.GridMember
	seed := uint64(7)
	id := 0
	for _, cl := range grid.Clusters {
		jobs := repro.CommunityJobs(repro.CIMENTCommunities(), 40, cl.Procs(), 0.002, seed)
		seed++
		for _, j := range jobs {
			j.ID = id // unique across the grid
			id++
		}
		members = append(members, repro.GridMember{
			Cluster: cl, Policy: repro.EASY, Local: jobs,
		})
	}

	// One multi-parametric campaign: 3000 runs of ~60 s.
	bags := []*repro.Bag{{ID: 0, Runs: 3000, RunTime: 60, Name: "param-study"}}

	g, err := repro.NewCentralizedGrid(members, bags, cluster.KillNewest)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Run(); err != nil {
		log.Fatal(err)
	}

	st := g.Stats()
	fmt.Printf("\ngrid campaign: %d tasks completed, %d kill/resubmit events\n",
		st.TasksCompleted, st.TasksKilled)
	fmt.Printf("grid work done: %.0f s; wasted to kills: %.0f s (%.1f%%)\n",
		st.DoneWork, st.WastedWork, 100*st.WastedWork/(st.DoneWork+st.WastedWork))
	fmt.Printf("campaign makespan: %.0f s\n", st.GridMakespan)

	fmt.Println("\nper-cluster local service (grid jobs never delay local users):")
	for i, cl := range grid.Clusters {
		cs := g.LocalCompletions(i)
		fmt.Printf("  %-9s %3d local jobs, mean flow %8.0f s, BE done %d / killed %d\n",
			cl.Name, len(cs), metrics.MeanFlow(cs),
			st.PerCluster[i].Completed, st.PerCluster[i].Killed)
	}
}
