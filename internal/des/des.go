// Package des is a minimal deterministic discrete-event simulation
// kernel: a clock and a binary-heap event queue with stable FIFO
// tie-breaking at equal timestamps. The cluster and grid simulators are
// built on it.
//
// The heap holds pointer-free eventRef values (time, seq, callback slot)
// and the callbacks live in a free-listed side table: sifting the heap
// then moves plain words with no GC write barriers and scheduling never
// boxes events through an interface, which together dominate the cost of
// simulator-heavy experiments.
package des

import (
	"fmt"
	"math"
)

// eventRef is one scheduled event as stored in the heap: deliberately
// pointer-free so heap maintenance is barrier-free memmove work. slot
// indexes the Simulator's callback table.
type eventRef struct {
	time float64
	seq  uint64 // insertion order, breaks ties deterministically
	slot int32
}

// eventHeap is a binary min-heap of eventRef ordered by (time, seq).
type eventHeap []eventRef

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && h.less(r, l) {
			least = r
		}
		if !h.less(least, i) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Simulator owns the virtual clock and the pending event set.
type Simulator struct {
	clock  float64
	events eventHeap
	// fns holds the scheduled callbacks, indexed by eventRef.slot and
	// recycled through free once dispatched.
	fns     []func()
	free    []int32
	seq     uint64
	stopped bool
	// Processed counts executed events (diagnostics / runaway guards).
	Processed uint64
	// Limit aborts Run after this many events (0 = no limit). A safety
	// valve against non-terminating simulations in tests.
	Limit uint64
}

// New returns a simulator with the clock at 0.
func New() *Simulator { return &Simulator{} }

// NewWithCapacity returns a simulator whose event heap and callback
// table are pre-sized for n pending events, avoiding the doubling
// reallocations of a cold heap when the expected event volume is known
// up front (e.g. one submission event per job).
func NewWithCapacity(n int) *Simulator {
	if n < 0 {
		n = 0
	}
	return &Simulator{
		events: make(eventHeap, 0, n),
		fns:    make([]func(), 0, n),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.clock }

// At schedules fn at absolute time t. Scheduling in the past is an error.
func (s *Simulator) At(t float64, fn func()) error {
	if t < s.clock {
		return fmt.Errorf("des: scheduling at %v before now (%v)", t, s.clock)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("des: scheduling at non-finite time %v", t)
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
		s.fns[slot] = fn
	} else {
		slot = int32(len(s.fns))
		s.fns = append(s.fns, fn)
	}
	s.events = append(s.events, eventRef{time: t, seq: s.seq, slot: slot})
	s.seq++
	s.events.siftUp(len(s.events) - 1)
	return nil
}

// Event pairs a timestamp with a callback for AtBatch.
type Event struct {
	Time float64
	Fn   func()
}

// AtBatch schedules many events in one heap operation — the bursty
// arrival groups of trace replays and atomic batch submissions. FIFO
// tie-breaking follows slice order (event i gets a smaller seq than
// event i+1), so dispatch is indistinguishable from calling At in a
// loop. The whole batch is validated before the first insertion: on
// error nothing was scheduled.
//
// When the batch rivals the pending set in size the heap is rebuilt
// with a single O(pending+k) heapify instead of k O(log n) sift-ups.
func (s *Simulator) AtBatch(evs []Event) error {
	for _, e := range evs {
		if e.Time < s.clock {
			return fmt.Errorf("des: scheduling at %v before now (%v)", e.Time, s.clock)
		}
		if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
			return fmt.Errorf("des: scheduling at non-finite time %v", e.Time)
		}
		if e.Fn == nil {
			return fmt.Errorf("des: nil event callback")
		}
	}
	heapify := len(evs) > len(s.events)
	for _, e := range evs {
		var slot int32
		if n := len(s.free); n > 0 {
			slot = s.free[n-1]
			s.free = s.free[:n-1]
			s.fns[slot] = e.Fn
		} else {
			slot = int32(len(s.fns))
			s.fns = append(s.fns, e.Fn)
		}
		s.events = append(s.events, eventRef{time: e.Time, seq: s.seq, slot: slot})
		s.seq++
		if !heapify {
			s.events.siftUp(len(s.events) - 1)
		}
	}
	if heapify {
		for i := len(s.events)/2 - 1; i >= 0; i-- {
			s.events.siftDown(i)
		}
	}
	return nil
}

// After schedules fn after delay d (d >= 0).
func (s *Simulator) After(d float64, fn func()) error {
	if d < 0 {
		return fmt.Errorf("des: negative delay %v", d)
	}
	return s.At(s.clock+d, fn)
}

// pop removes and returns the earliest event's time and callback,
// recycling its slot.
func (s *Simulator) pop() (float64, func()) {
	top := s.events[0]
	n := len(s.events) - 1
	s.events[0] = s.events[n]
	s.events = s.events[:n]
	if n > 1 {
		s.events.siftDown(0)
	}
	fn := s.fns[top.slot]
	s.fns[top.slot] = nil
	s.free = append(s.free, top.slot)
	return top.time, fn
}

// Stop makes Run return after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// PeekTime returns the timestamp of the earliest pending event, or
// ok=false when the queue is empty. Wall-clock drivers use it to decide
// how long they may sleep before virtual time has to advance again.
func (s *Simulator) PeekTime() (t float64, ok bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].time, true
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the event limit is hit (error in that last case).
func (s *Simulator) Run() error {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.Limit > 0 && s.Processed >= s.Limit {
			return fmt.Errorf("des: event limit %d reached at t=%v", s.Limit, s.clock)
		}
		t, fn := s.pop()
		s.clock = t
		s.Processed++
		fn()
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (s *Simulator) RunUntil(t float64) error {
	if t < s.clock {
		return fmt.Errorf("des: RunUntil(%v) before now (%v)", t, s.clock)
	}
	s.stopped = false
	for len(s.events) > 0 && !s.stopped && s.events[0].time <= t {
		if s.Limit > 0 && s.Processed >= s.Limit {
			return fmt.Errorf("des: event limit %d reached at t=%v", s.Limit, s.clock)
		}
		et, fn := s.pop()
		s.clock = et
		s.Processed++
		fn()
	}
	if !s.stopped {
		s.clock = t
	}
	return nil
}
