// Package des is a minimal deterministic discrete-event simulation
// kernel: a clock and a binary-heap event queue with stable FIFO
// tie-breaking at equal timestamps. The cluster and grid simulators are
// built on it.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// event is one scheduled callback.
type event struct {
	time float64
	seq  uint64 // insertion order, breaks ties deterministically
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulator owns the virtual clock and the pending event set.
type Simulator struct {
	clock   float64
	events  eventHeap
	seq     uint64
	stopped bool
	// Processed counts executed events (diagnostics / runaway guards).
	Processed uint64
	// Limit aborts Run after this many events (0 = no limit). A safety
	// valve against non-terminating simulations in tests.
	Limit uint64
}

// New returns a simulator with the clock at 0.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.clock }

// At schedules fn at absolute time t. Scheduling in the past is an error.
func (s *Simulator) At(t float64, fn func()) error {
	if t < s.clock {
		return fmt.Errorf("des: scheduling at %v before now (%v)", t, s.clock)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("des: scheduling at non-finite time %v", t)
	}
	heap.Push(&s.events, event{time: t, seq: s.seq, fn: fn})
	s.seq++
	return nil
}

// After schedules fn after delay d (d >= 0).
func (s *Simulator) After(d float64, fn func()) error {
	if d < 0 {
		return fmt.Errorf("des: negative delay %v", d)
	}
	return s.At(s.clock+d, fn)
}

// Stop makes Run return after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.events.Len() }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the event limit is hit (error in that last case).
func (s *Simulator) Run() error {
	s.stopped = false
	for s.events.Len() > 0 && !s.stopped {
		if s.Limit > 0 && s.Processed >= s.Limit {
			return fmt.Errorf("des: event limit %d reached at t=%v", s.Limit, s.clock)
		}
		e := heap.Pop(&s.events).(event)
		s.clock = e.time
		s.Processed++
		e.fn()
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (s *Simulator) RunUntil(t float64) error {
	if t < s.clock {
		return fmt.Errorf("des: RunUntil(%v) before now (%v)", t, s.clock)
	}
	s.stopped = false
	for s.events.Len() > 0 && !s.stopped && s.events[0].time <= t {
		if s.Limit > 0 && s.Processed >= s.Limit {
			return fmt.Errorf("des: event limit %d reached at t=%v", s.Limit, s.clock)
		}
		e := heap.Pop(&s.events).(event)
		s.clock = e.time
		s.Processed++
		e.fn()
	}
	if !s.stopped {
		s.clock = t
	}
	return nil
}
