package des

import (
	"testing"
	"time"
)

func TestPacerMapping(t *testing.T) {
	anchor := time.Unix(1000, 0)
	p, err := NewPacer(60, anchor, 0) // one wall second = one virtual minute
	if err != nil {
		t.Fatal(err)
	}
	if got := p.VirtualNow(anchor); got != 0 {
		t.Fatalf("virtual time at anchor = %v, want 0", got)
	}
	if got := p.VirtualNow(anchor.Add(2 * time.Second)); got != 120 {
		t.Fatalf("virtual time after 2s = %v, want 120", got)
	}
	// Before the anchor the clock clamps (never runs backwards).
	if got := p.VirtualNow(anchor.Add(-time.Hour)); got != 0 {
		t.Fatalf("virtual time before anchor = %v, want 0", got)
	}
	// 300 virtual seconds ahead at 60x = 5 wall seconds.
	if got := p.WallUntil(300, anchor); got != 5*time.Second {
		t.Fatalf("WallUntil(300) = %v, want 5s", got)
	}
	// Already-passed virtual instants need no sleep.
	if got := p.WallUntil(60, anchor.Add(10*time.Second)); got != 0 {
		t.Fatalf("WallUntil(past) = %v, want 0", got)
	}
	// Far-future virtual times clamp to MaxSleep instead of overflowing
	// time.Duration into a negative (busy-spin) value.
	if got := p.WallUntil(1e18, anchor); got != MaxSleep {
		t.Fatalf("WallUntil(1e18) = %v, want %v", got, MaxSleep)
	}
	if got := p.WallUntil(1e308, anchor); got != MaxSleep {
		t.Fatalf("WallUntil(1e308) = %v, want %v", got, MaxSleep)
	}
}

func TestPacerAnchorOffset(t *testing.T) {
	anchor := time.Unix(5000, 0)
	p, err := NewPacer(2, anchor, 100) // anchored mid-simulation
	if err != nil {
		t.Fatal(err)
	}
	if got := p.VirtualNow(anchor.Add(3 * time.Second)); got != 106 {
		t.Fatalf("virtual time = %v, want 106", got)
	}
	if p.Dilation() != 2 {
		t.Fatalf("dilation = %v", p.Dilation())
	}
}

func TestPacerRejectsBadDilation(t *testing.T) {
	for _, d := range []float64{0, -1} {
		if _, err := NewPacer(d, time.Now(), 0); err == nil {
			t.Fatalf("dilation %v accepted", d)
		}
	}
}

func TestPeekTime(t *testing.T) {
	s := New()
	if _, ok := s.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported an event")
	}
	if err := s.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.At(2, func() {}); err != nil {
		t.Fatal(err)
	}
	if next, ok := s.PeekTime(); !ok || next != 2 {
		t.Fatalf("PeekTime = %v,%v, want 2,true", next, ok)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.PeekTime(); ok {
		t.Fatal("PeekTime after drain reported an event")
	}
}
