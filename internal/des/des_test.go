package des

import (
	"testing"
)

func TestEventOrder(t *testing.T) {
	s := New()
	var order []int
	add := func(tm float64, id int) {
		if err := s.At(tm, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(5, 1)
	add(1, 2)
	add(3, 3)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 1}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		id := i
		if err := s.At(7, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestSchedulingDuringRun(t *testing.T) {
	s := New()
	var hits []float64
	var chain func()
	chain = func() {
		hits = append(hits, s.Now())
		if len(hits) < 5 {
			if err := s.After(2, chain); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.At(1, chain); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 || hits[4] != 9 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	s := New()
	if err := s.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.At(3, func() {}); err == nil {
		t.Fatal("past event accepted")
	}
	if err := s.After(-1, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		tm := float64(i)
		if err := s.At(tm, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("processed %d events after Stop", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var hits []float64
	for _, tm := range []float64{1, 2, 3, 10} {
		tt := tm
		if err := s.At(tt, func() { hits = append(hits, tt) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want 5", s.Now())
	}
	if err := s.RunUntil(4); err == nil {
		t.Fatal("RunUntil into the past accepted")
	}
	if err := s.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 || s.Now() != 20 {
		t.Fatalf("hits = %v, clock = %v", hits, s.Now())
	}
}

func TestEventLimit(t *testing.T) {
	s := New()
	s.Limit = 10
	var loop func()
	loop = func() {
		if err := s.After(1, loop); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.At(0, loop); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err == nil {
		t.Fatal("runaway simulation not aborted")
	}
}

func TestNonFiniteTimeRejected(t *testing.T) {
	s := New()
	inf := 1.0
	for i := 0; i < 2000; i++ {
		inf *= 10
	}
	if err := s.At(inf, func() {}); err == nil {
		t.Fatal("infinite time accepted")
	}
}
