// Wall-clock driver mode: a Pacer maps the simulator's virtual clock
// onto real time with a configurable dilation factor, so a long-running
// service can execute the same deterministic event stream as the batch
// engine while letting external clients interact with it in real time.
package des

import (
	"fmt"
	"time"
)

// Pacer converts between wall-clock time and virtual simulation time.
// Dilation is the number of virtual seconds that elapse per wall-clock
// second: 1 is real time, 60 compresses a minute of simulated work into
// a wall second, fractions slow the simulation down for demos.
//
// The mapping is anchored at construction: virtual time virtStart
// corresponds to the wall instant start.
type Pacer struct {
	dilation  float64
	start     time.Time
	virtStart float64
}

// NewPacer anchors a pacer: at wall instant start, virtual time is
// virtNow, and it advances at dilation virtual seconds per wall second.
func NewPacer(dilation float64, start time.Time, virtNow float64) (*Pacer, error) {
	if dilation <= 0 {
		return nil, fmt.Errorf("des: non-positive dilation %v", dilation)
	}
	return &Pacer{dilation: dilation, start: start, virtStart: virtNow}, nil
}

// Dilation returns the virtual-seconds-per-wall-second factor.
func (p *Pacer) Dilation() float64 { return p.dilation }

// VirtualNow returns the virtual time corresponding to the wall instant
// now. Instants before the anchor clamp to the anchor's virtual time
// (virtual clocks never run backwards).
func (p *Pacer) VirtualNow(now time.Time) float64 {
	elapsed := now.Sub(p.start).Seconds()
	if elapsed <= 0 {
		return p.virtStart
	}
	return p.virtStart + elapsed*p.dilation
}

// MaxSleep caps WallUntil: sleeping longer than this is pointless (the
// caller re-evaluates on wake) and, crucially, far-future virtual times
// would otherwise overflow time.Duration — the float→int64 conversion
// wraps negative and a timer armed with it fires immediately, turning
// the wait loop into a busy spin.
const MaxSleep = time.Hour

// WallUntil returns how long to sleep from the wall instant now until
// virtual time virt is reached, capped at MaxSleep. Already-passed
// virtual times return 0.
func (p *Pacer) WallUntil(virt float64, now time.Time) time.Duration {
	d := (virt - p.VirtualNow(now)) / p.dilation
	if d <= 0 {
		return 0
	}
	if d >= MaxSleep.Seconds() {
		return MaxSleep
	}
	return time.Duration(d * float64(time.Second))
}
