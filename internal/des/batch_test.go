package des

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// TestAtBatchMatchesLoop pins the batch-insertion contract: for any
// interleaving of At and AtBatch calls (including batches large enough
// to trigger the heapify path), dispatch order is identical to the
// equivalent At loop.
func TestAtBatchMatchesLoop(t *testing.T) {
	rng := stats.NewRNG(5)
	times := make([]float64, 400)
	for i := range times {
		// Coarse quantization forces plenty of FIFO ties.
		times[i] = float64(rng.Intn(20))
	}

	runLoop := func(batch bool) []int {
		s := New()
		var order []int
		record := func(id int) func() { return func() { order = append(order, id) } }
		// A few singles first so the batch lands on a non-empty heap.
		for i := 0; i < 10; i++ {
			if err := s.At(times[i], record(i)); err != nil {
				t.Fatal(err)
			}
		}
		if batch {
			evs := make([]Event, 0, len(times)-10)
			for i := 10; i < len(times); i++ {
				evs = append(evs, Event{Time: times[i], Fn: record(i)})
			}
			if err := s.AtBatch(evs); err != nil {
				t.Fatal(err)
			}
		} else {
			for i := 10; i < len(times); i++ {
				if err := s.At(times[i], record(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}

	want := runLoop(false)
	got := runLoop(true)
	if len(want) != len(got) {
		t.Fatalf("lengths differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("dispatch diverged at %d: loop %d, batch %d", i, want[i], got[i])
		}
	}
}

// TestAtBatchSmallSiftUpPath covers batches smaller than the pending
// set (per-event sift-up, no heapify).
func TestAtBatchSmallSiftUpPath(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 8; i++ {
		tm := float64(i)
		_ = s.At(tm, func() { order = append(order, int(tm)) })
	}
	if err := s.AtBatch([]Event{
		{Time: 2.5, Fn: func() { order = append(order, 100) }},
		{Time: 0.5, Fn: func() { order = append(order, 101) }},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 101, 1, 2, 100, 3, 4, 5, 6, 7}
	if len(order) != len(want) {
		t.Fatalf("got %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

// TestAtBatchValidation: a bad event anywhere in the batch schedules
// nothing.
func TestAtBatchValidation(t *testing.T) {
	fn := func() {}
	cases := [][]Event{
		{{Time: 1, Fn: fn}, {Time: -1, Fn: fn}},
		{{Time: 1, Fn: fn}, {Time: math.NaN(), Fn: fn}},
		{{Time: 1, Fn: fn}, {Time: math.Inf(1), Fn: fn}},
		{{Time: 1, Fn: fn}, {Time: 2, Fn: nil}},
	}
	for i, evs := range cases {
		s := New()
		s.clock = 0
		if err := s.AtBatch(evs); err == nil {
			t.Fatalf("case %d: batch accepted", i)
		}
		if s.Pending() != 0 {
			t.Fatalf("case %d: partial batch scheduled (%d pending)", i, s.Pending())
		}
	}
}
