package des

import "testing"

// BenchmarkEventThroughput measures raw event processing (schedule +
// dispatch) — the floor cost of every cluster simulation.
func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			_ = s.After(1, tick)
		}
	}
	_ = s.At(0, tick)
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHeapChurn measures interleaved scheduling at random offsets.
func BenchmarkHeapChurn(b *testing.B) {
	b.ReportAllocs()
	s := New()
	for i := 0; i < b.N; i++ {
		_ = s.At(float64(i%97), func() {})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
