package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	_ "repro/internal/experiments" // register scenario kinds + catalog
	"repro/internal/scenario"
)

func postScenario(t *testing.T, url string, req scenario.HTTPRequest) (scenario.HTTPResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/scenarios", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out scenario.HTTPResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode
}

// TestHTTPScenarios: POST /scenarios returns the same table the CLI
// produces for the same spec, seed and scale — for a built-in id and
// for an inline spec.
func TestHTTPScenarios(t *testing.T) {
	_, srv := newTestServer(t, Config{M: 8, Policy: "easy", Dilation: 0})

	seed := uint64(42)
	// 1) A built-in catalog scenario by id.
	got, code := postScenario(t, srv.URL, scenario.HTTPRequest{ID: "mrt", Seed: &seed, Quick: true})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	spec, _ := scenario.Lookup("mrt")
	want, err := scenario.Run(spec, scenario.RunOptions{
		Seed: 42, SeedExplicit: true, Scale: scenario.Scale{JobFactor: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != want.Table.Title || !reflect.DeepEqual(got.Rows, want.Table.Rows) {
		t.Fatalf("HTTP table differs from engine:\n got %+v\nwant %+v", got, want.Table)
	}
	if got.Kind != "mrt" || got.Seed != 42 {
		t.Fatalf("metadata: %+v", got)
	}

	// 2) An inline spec (the generic offline kind).
	inline := scenario.New("inline-sweep", "offline",
		scenario.WithWorkload(scenario.Workload{N: 40, M: 16, Weighted: true}),
		scenario.WithPolicies("mrt", "ffdh"),
		scenario.WithMetrics("cmax_ratio", "util"))
	got2, code := postScenario(t, srv.URL, scenario.HTTPRequest{Spec: inline, Seed: &seed})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want2, err := scenario.Run(inline, scenario.RunOptions{Seed: 42, SeedExplicit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.Rows, want2.Table.Rows) || !reflect.DeepEqual(got2.Headers, want2.Table.Headers) {
		t.Fatalf("inline spec differs:\n got %+v\nwant %+v", got2, want2.Table)
	}
}

func TestHTTPScenariosErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{M: 8, Policy: "easy", Dilation: 0})
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/scenarios", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{`); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", code)
	}
	if code := post(`{}`); code != http.StatusBadRequest {
		t.Fatalf("empty request: %d", code)
	}
	if code := post(`{"id":"mrt","spec":{"id":"x","kind":"mrt"}}`); code != http.StatusBadRequest {
		t.Fatalf("id+spec: %d", code)
	}
	if code := post(`{"id":"no-such-scenario"}`); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", code)
	}
	if code := post(`{"spec":{"id":"x","kind":"no-such-kind"}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown kind: %d", code)
	}
	// fig2 renders custom output — not servable as a table.
	if code := post(`{"id":"fig2","quick":true}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("figure scenario: %d", code)
	}
	if code := post(`{"id":"mrt","bogus":true}`); code != http.StatusBadRequest {
		t.Fatalf("unknown request field: %d", code)
	}
}
