package service

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/registry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// traceJobs builds a workload, round-trips it through the SWF format
// (exactly what a user replaying a trace file does), and returns two
// independent copies of the resulting rigid jobs.
func traceJobs(t *testing.T, seed uint64, n, m int) (forService, forOffline []*workload.Job) {
	t.Helper()
	gen := workload.Parallel(workload.GenConfig{N: n, M: m, Seed: seed, ArrivalRate: 0.2})
	var buf bytes.Buffer
	// Freeze the generated workload as a trace: run it through FCFS once
	// to obtain completions, the only thing WriteSWF records.
	sim, err := cluster.New(des.New(), m, 1, cluster.FCFSPolicy{}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range gen {
		if err := sim.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSWF(&buf, sim.Completions()); err != nil {
		t.Fatal(err)
	}
	text := buf.Bytes()
	a, err := trace.ReadSWF(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.ReadSWF(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestServiceMatchesOfflineOrder is the determinism acceptance check: an
// SWF trace replayed through the live service must complete jobs in
// exactly the same order as an offline cluster.Sim run at the same seed,
// for every online policy in the registry.
func TestServiceMatchesOfflineOrder(t *testing.T) {
	const n, m = 200, 32
	for _, entry := range registry.Online() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			svcJobs, offJobs := traceJobs(t, 7, n, m)

			// Offline reference: plain batch engine.
			sim, err := cluster.New(des.New(), m, 1, entry.NewPolicy(), cluster.KillNewest)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range offJobs {
				if err := sim.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			if err := sim.Run(); err != nil {
				t.Fatal(err)
			}
			var want []int
			for _, c := range sim.Completions() {
				want = append(want, c.Job.ID)
			}

			// Live service: submit the same stream, drain, compare.
			e, err := New(Config{M: m, Policy: entry.Name})
			if err != nil {
				t.Fatal(err)
			}
			e.Start()
			defer e.Stop()
			if err := e.SubmitJobs(svcJobs); err != nil {
				t.Fatal(err)
			}
			stats, err := e.Drain(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if stats.Completed != len(svcJobs) {
				t.Fatalf("service completed %d of %d jobs", stats.Completed, len(svcJobs))
			}
			got, err := e.CompletionOrder()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("completion counts differ: service %d, offline %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("completion order diverges at position %d: service job %d, offline job %d",
						i, got[i], want[i])
				}
			}
		})
	}
}

// TestServiceDeterministicAcrossRuns replays the same trace through two
// independent engines and requires identical completion orders (no
// wall-clock leakage into the virtual schedule).
func TestServiceDeterministicAcrossRuns(t *testing.T) {
	run := func() []int {
		jobs, _ := traceJobs(t, 11, 150, 16)
		e, err := New(Config{M: 16, Policy: "easy"})
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		defer e.Stop()
		if err := e.SubmitJobs(jobs); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		order, err := e.CompletionOrder()
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("orders differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("orders diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
