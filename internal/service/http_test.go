package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

func newTestServer(t *testing.T, cfg Config) (*Engine, *httptest.Server) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	runs := api.NewRunService(api.Config{})
	srv := httptest.NewServer(e.Handler(runs))
	t.Cleanup(func() {
		srv.Close()
		runs.Close()
		e.Stop()
	})
	return e, srv
}

func postJob(t *testing.T, url string, spec JobSpec) (JobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode
}

func TestHTTPSubmitQueryLifecycle(t *testing.T) {
	_, srv := newTestServer(t, Config{M: 16, Policy: "easy"})

	st, code := postJob(t, srv.URL, JobSpec{Name: "web", SeqTime: 50, MinProcs: 2})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs status %d", code)
	}
	if st.ID != 0 || st.State != StateWaiting {
		t.Fatalf("submit response %+v", st)
	}

	// In free-running mode the job completes as soon as the mailbox
	// turns; poll briefly since a query can land in the same command
	// burst as the submission, before the events run.
	var got JobStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/0")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/0 status %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job state %q, want done", got.State)
		}
		time.Sleep(time.Millisecond)
	}

	if resp, _ := http.Get(srv.URL + "/jobs/99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /jobs/99 status %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/jobs/zzz"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /jobs/zzz status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPBadSpec(t *testing.T) {
	_, srv := newTestServer(t, Config{M: 4, Policy: "fcfs"})
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if _, code := postJob(t, srv.URL, JobSpec{SeqTime: 5, MinProcs: 100}); code != http.StatusBadRequest {
		t.Fatalf("too-wide job: status %d, want 400", code)
	}
}

func TestHTTPStatsAndQueue(t *testing.T) {
	_, srv := newTestServer(t, Config{M: 8, Policy: "easy"})
	for i := 0; i < 5; i++ {
		if _, code := postJob(t, srv.URL, JobSpec{SeqTime: 10, MinProcs: 1}); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
	}
	var stats Stats
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Submitted != 5 {
		t.Fatalf("stats.Submitted = %d, want 5", stats.Submitted)
	}
	if stats.Policy != "easy" || stats.M != 8 {
		t.Fatalf("stats identity: %+v", stats)
	}

	var snap QueueSnapshot
	resp, err = http.Get(srv.URL + "/queue")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Waiting == nil || snap.Running == nil {
		t.Fatal("queue arrays must be non-null JSON")
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	_, srv := newTestServer(t, Config{M: 8, Policy: "easy"})
	postJob(t, srv.URL, JobSpec{SeqTime: 10, MinProcs: 1})

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics content type %q", resp.Header.Get("Content-Type"))
	}
	for _, metric := range []string{
		"gridd_jobs_submitted_total 1",
		"gridd_processors 8",
		"# TYPE gridd_virtual_time_seconds gauge",
		"gridd_utilization_ratio",
	} {
		if !strings.Contains(text, metric) {
			t.Fatalf("metrics output missing %q:\n%s", metric, text)
		}
	}
}

func TestHTTPPolicies(t *testing.T) {
	_, srv := newTestServer(t, Config{M: 8, Policy: "easy"})
	resp, err := http.Get(srv.URL + "/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range out {
		names[fmt.Sprint(p["name"])] = true
	}
	for _, want := range []string{"easy", "fcfs", "conservative", "mrt"} {
		if !names[want] {
			t.Fatalf("policy catalog missing %q: %v", want, names)
		}
	}
}
