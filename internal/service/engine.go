// Package service turns the deterministic batch simulator into a
// long-running online scheduler: an Engine owns one cluster.Sim plus its
// DES event queue inside a single goroutine, accepts concurrent job
// submissions through a channel-based mailbox, and advances the virtual
// clock against wall-clock time with a configurable dilation factor (one
// wall second = Dilation simulated seconds). The HTTP layer in http.go
// exposes the engine as the gridd daemon.
//
// Because every mutation funnels through the mailbox into the same
// single-threaded simulator the batch tools use, a trace replayed
// through the service completes jobs in exactly the same order as an
// offline cluster.Sim run with the same seed — the determinism the
// paper's evaluation relies on, kept under live traffic.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/workload"
)

// ErrStopped rejects calls into an engine whose loop has exited.
var ErrStopped = errors.New("service: engine stopped")

// Config parameterizes an Engine.
type Config struct {
	// M is the cluster width (processors). Default 64.
	M int
	// Speed is the cluster speed factor. Default 1.
	Speed float64
	// Policy is the registry name of an online-capable policy ("easy",
	// "fcfs", "greedyfit", "conservative"). Default "easy".
	Policy string
	// Kill selects the best-effort eviction policy.
	Kill cluster.KillPolicy
	// Dilation is the number of simulated seconds per wall-clock second.
	// Zero (or negative) selects free-running mode: pending events are
	// executed immediately after every mailbox interaction, so the
	// virtual clock runs as fast as the hardware allows.
	Dilation float64
	// Mailbox is the command-channel capacity. Default 256.
	Mailbox int
	// Label names this engine in multi-cluster fleets (Prometheus
	// per-cluster labels; empty for a standalone daemon).
	Label string
	// Anchor, when non-zero, is the shared wall-clock instant that maps
	// to virtual time 0. A grid broker starts every engine of a fleet
	// with the same anchor so their paced virtual clocks advance in
	// lockstep; zero anchors the clock at Start time.
	Anchor time.Time
	// OnBEKilled and OnBEDone observe best-effort task kills and
	// completions. Both run on the engine loop goroutine while it holds
	// the simulator — handlers must not call back into this Engine and
	// should hand the task off quickly (the grid broker appends to its
	// own requeue list under a private lock).
	OnBEKilled func(t cluster.BETask)
	OnBEDone   func(t cluster.BETask)
}

func (c Config) fill() Config {
	if c.M == 0 {
		c.M = 64
	}
	if c.Speed == 0 {
		c.Speed = 1
	}
	if c.Policy == "" {
		c.Policy = "easy"
	}
	if c.Mailbox <= 0 {
		c.Mailbox = 256
	}
	return c
}

// JobSpec is the submission payload (HTTP body of POST /jobs). Rigid
// jobs set min_procs only; moldable jobs set max_procs > min_procs and
// are priced with an Amdahl speedup (alpha defaulting to 0.05).
type JobSpec struct {
	Name  string `json:"name,omitempty"`
	Class string `json:"class,omitempty"`
	// Cluster pins the job to a named cluster in broker (grid) mode: the
	// CiGri contract that local users submit to their own machine. Empty
	// lets the grid policy place the job; single-engine daemons ignore it.
	Cluster  string  `json:"cluster,omitempty"`
	SeqTime  float64 `json:"seq_time"`
	MinProcs int     `json:"min_procs,omitempty"` // 0 → 1
	MaxProcs int     `json:"max_procs,omitempty"` // 0 → min_procs
	Weight   float64 `json:"weight,omitempty"`    // 0 → 1
	DueDate  float64 `json:"due_date,omitempty"`  // <= 0 → no due date
	Release  float64 `json:"release,omitempty"`   // absolute virtual time; past → now
	Alpha    float64 `json:"alpha,omitempty"`     // Amdahl sequential fraction
}

// Job materializes the spec as a workload.Job with the given ID.
func (sp JobSpec) Job(id int) (*workload.Job, error) {
	min := sp.MinProcs
	if min <= 0 {
		min = 1
	}
	max := sp.MaxProcs
	if max <= 0 {
		max = min
	}
	kind := workload.Rigid
	if max > min {
		kind = workload.Moldable
	}
	alpha := sp.Alpha
	if alpha <= 0 {
		alpha = 0.05
	}
	weight := sp.Weight
	if weight == 0 {
		weight = 1
	}
	due := sp.DueDate
	if due <= 0 {
		due = -1
	}
	release := sp.Release
	if release < 0 {
		release = 0
	}
	var model workload.SpeedupModel = workload.Linear{}
	if kind == workload.Moldable {
		model = workload.Amdahl{Alpha: alpha}
	}
	j := &workload.Job{
		ID: id, Name: sp.Name, Class: sp.Class, Kind: kind,
		Release: release, Weight: weight, DueDate: due,
		SeqTime: sp.SeqTime, MinProcs: min, MaxProcs: max, Model: model,
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	StateWaiting JobState = "waiting"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
)

// JobStatus is the externally visible record of one job. Times are
// virtual (simulation seconds).
type JobStatus struct {
	ID      int      `json:"id"`
	Name    string   `json:"name,omitempty"`
	Class   string   `json:"class,omitempty"`
	State   JobState `json:"state"`
	Release float64  `json:"release"`
	Procs   int      `json:"procs,omitempty"` // allocated processors once running
	Start   float64  `json:"start,omitempty"`
	End     float64  `json:"end,omitempty"`
}

// QueueSnapshot is the GET /queue payload.
type QueueSnapshot struct {
	VirtualNow float64     `json:"virtual_now"`
	Waiting    []JobStatus `json:"waiting"`
	Running    []JobStatus `json:"running"`
}

// Stats is the GET /stats payload.
type Stats struct {
	Policy        string          `json:"policy"`
	M             int             `json:"m"`
	Speed         float64         `json:"speed"`
	Dilation      float64         `json:"dilation"` // 0 = free-running
	VirtualNow    float64         `json:"virtual_now"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Submitted     int             `json:"submitted"`
	Waiting       int             `json:"waiting"`
	Running       int             `json:"running"`
	Completed     int             `json:"completed"`
	Drained       bool            `json:"drained"`
	BestEffort    cluster.BEStats `json:"best_effort"`
	Report        metrics.Report  `json:"report"`
	// Runs summarizes the scenario run store (filled by the HTTP
	// layer from the same store the /v1/runs endpoints serve).
	Runs *api.RunsSummary `json:"runs,omitempty"`
}

// Engine runs one online cluster scheduler. All simulator state is owned
// by the loop goroutine; public methods marshal through the mailbox and
// are safe for concurrent use.
type Engine struct {
	cfg   Config
	sim   *cluster.Sim
	pacer *des.Pacer // nil in free-running mode

	cmds     chan func()
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// Everything below is owned by the loop goroutine.
	jobs    map[int]*JobStatus
	order   []int // completion order (event order)
	nextID  int
	started time.Time
	counts  struct{ waiting, running, completed int }
	// streaming is set once StreamJobs attaches a source: streamed jobs
	// bypass the per-job status map (tracking every record would defeat
	// the O(active) memory of lazy admission), so stats fall back to the
	// simulator's own counters.
	streaming bool
}

// New builds an engine from the config; Start launches it.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.fill()
	entry, err := registry.Get(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if !entry.Caps.Online {
		return nil, fmt.Errorf("service: policy %q is offline-only", cfg.Policy)
	}
	sim, err := cluster.New(des.New(), cfg.M, cfg.Speed, entry.NewPolicy(), cfg.Kill)
	if err != nil {
		return nil, err
	}
	// Engines are polled from outside (brokers read Load lock-free), so
	// the per-event snapshot publication is always on here.
	sim.EnablePolling()
	e := &Engine{
		cfg:  cfg,
		sim:  sim,
		cmds: make(chan func(), cfg.Mailbox),
		quit: make(chan struct{}),
		done: make(chan struct{}),
		jobs: make(map[int]*JobStatus),
	}
	sim.OnLocalStart = func(j *workload.Job, procs int, now float64) {
		if st := e.jobs[j.ID]; st != nil {
			st.State, st.Procs, st.Start = StateRunning, procs, now
			e.counts.waiting--
			e.counts.running++
		}
	}
	sim.OnLocalDone = func(c metrics.Completion) {
		if st := e.jobs[c.Job.ID]; st != nil {
			st.State, st.End = StateDone, c.End
			e.counts.running--
			e.counts.completed++
			e.order = append(e.order, c.Job.ID)
		}
	}
	sim.OnBEKilled = cfg.OnBEKilled
	sim.OnBEDone = cfg.OnBEDone
	return e, nil
}

// Label returns the engine's fleet label (empty for standalone daemons).
func (e *Engine) Label() string { return e.cfg.Label }

// M returns the cluster width.
func (e *Engine) M() int { return e.cfg.M }

// Start launches the engine loop. The wall-clock anchor is taken now
// unless Config.Anchor pins it (shared fleet clock): with dilation D,
// virtual time t maps to anchor + t/D wall seconds.
func (e *Engine) Start() {
	e.started = time.Now()
	anchor := e.started
	if !e.cfg.Anchor.IsZero() {
		anchor = e.cfg.Anchor
	}
	if e.cfg.Dilation > 0 {
		e.pacer, _ = des.NewPacer(e.cfg.Dilation, anchor, 0)
	}
	go e.loop()
}

// Stop terminates the loop without draining (pending virtual work is
// abandoned). Safe to call more than once.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.quit) })
	<-e.done
}

func (e *Engine) loop() {
	defer close(e.done)
	for {
		e.advance()
		var timer *time.Timer
		var timeCh <-chan time.Time
		if e.pacer != nil {
			if next, ok := e.sim.DES.PeekTime(); ok {
				timer = time.NewTimer(e.pacer.WallUntil(next, time.Now()))
				timeCh = timer.C
			}
		}
		select {
		case cmd := <-e.cmds:
			cmd()
			e.drainCmds()
		case <-timeCh:
		case <-e.quit:
			if timer != nil {
				timer.Stop()
			}
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// drainCmds executes every queued command without blocking, so a burst
// of submissions is applied atomically before the clock advances again.
func (e *Engine) drainCmds() {
	for {
		select {
		case cmd := <-e.cmds:
			cmd()
		default:
			return
		}
	}
}

// advance catches the virtual clock up: to the pacer's wall-mapped time
// in dilated mode, or through every pending event in free-running mode.
func (e *Engine) advance() {
	if e.pacer != nil {
		_ = e.sim.DES.RunUntil(e.pacer.VirtualNow(time.Now()))
		return
	}
	_ = e.sim.DES.Run()
}

// do runs fn on the loop goroutine and waits for it.
func (e *Engine) do(fn func()) error {
	ack := make(chan struct{})
	select {
	case e.cmds <- func() { fn(); close(ack) }:
	case <-e.done:
		return ErrStopped
	}
	select {
	case <-ack:
		return nil
	case <-e.done:
		return ErrStopped
	}
}

// Submit accepts one job described by spec, assigns it an ID, and
// schedules its arrival. It returns the initial status.
func (e *Engine) Submit(spec JobSpec) (JobStatus, error) {
	var st JobStatus
	var err error
	doErr := e.do(func() {
		id := e.nextID
		var j *workload.Job
		j, err = spec.Job(id)
		if err != nil {
			return
		}
		if err = e.sim.Submit(j); err != nil {
			return
		}
		e.nextID++
		e.track(j)
		st = *e.jobs[id]
	})
	if doErr != nil {
		return JobStatus{}, doErr
	}
	return st, err
}

// SubmitJobs atomically submits pre-built jobs (trace replay): either
// every job is scheduled before any simulation event runs, or none is.
// Job IDs must be unique within the batch and not collide with earlier
// submissions. The whole batch is validated before the first submission
// so a rejected job never leaves a partial batch behind.
func (e *Engine) SubmitJobs(jobs []*workload.Job) error {
	var err error
	doErr := e.do(func() {
		if e.sim.Drained() {
			err = cluster.ErrDrained
			return
		}
		inBatch := make(map[int]bool, len(jobs))
		for _, j := range jobs {
			if _, dup := e.jobs[j.ID]; dup || inBatch[j.ID] {
				err = fmt.Errorf("service: duplicate job ID %d", j.ID)
				return
			}
			inBatch[j.ID] = true
			if verr := j.Validate(); verr != nil {
				err = fmt.Errorf("service: %w", verr)
				return
			}
			if j.MinProcs > e.cfg.M {
				err = fmt.Errorf("service: job %d needs %d > %d procs", j.ID, j.MinProcs, e.cfg.M)
				return
			}
			if math.IsNaN(j.Release) || math.IsInf(j.Release, 0) {
				err = fmt.Errorf("service: job %d has non-finite release %v", j.ID, j.Release)
				return
			}
		}
		if err = e.sim.SubmitAll(jobs); err != nil {
			return // unreachable after the validation above
		}
		for _, j := range jobs {
			if j.ID >= e.nextID {
				e.nextID = j.ID + 1
			}
			e.track(j)
		}
	})
	if doErr != nil {
		return doErr
	}
	return err
}

// StreamJobs attaches a pull-based source: jobs are admitted lazily as
// their release times come due, so replaying a multi-million-job
// archive through the daemon holds O(active) state instead of the whole
// trace. Streamed jobs are not individually tracked (no /jobs/{id}
// status, no completion-order witness) — aggregate statistics remain
// exact via the simulator's accumulator. One source per engine; Submit
// and SubmitJobs still work alongside it.
func (e *Engine) StreamJobs(src workload.Source) error {
	var err error
	doErr := e.do(func() {
		// The simulator itself would accept a fresh source once the
		// previous one drained; the engine keeps the 1:1 contract so
		// streamed stats always describe a single replay.
		if e.streaming {
			err = errors.New("service: a source is already streaming")
			return
		}
		if err = e.sim.Stream(src); err == nil {
			e.streaming = true
		}
	})
	if doErr != nil {
		return doErr
	}
	return err
}

// SetRetention swaps the completion-history store (e.g. a bounded ring
// or discard for archive replays). Only valid before any completion.
func (e *Engine) SetRetention(r metrics.Retention) error {
	var err error
	doErr := e.do(func() { err = e.sim.SetRetention(r) })
	if doErr != nil {
		return doErr
	}
	return err
}

// track registers a freshly submitted job (loop goroutine only).
func (e *Engine) track(j *workload.Job) {
	e.jobs[j.ID] = &JobStatus{
		ID: j.ID, Name: j.Name, Class: j.Class,
		State: StateWaiting, Release: j.Release,
	}
	e.counts.waiting++
}

// Job returns the status of one job.
func (e *Engine) Job(id int) (JobStatus, bool, error) {
	var st JobStatus
	var ok bool
	err := e.do(func() {
		if rec := e.jobs[id]; rec != nil {
			st, ok = *rec, true
		}
	})
	return st, ok, err
}

// Queue returns the waiting and running jobs.
func (e *Engine) Queue() (QueueSnapshot, error) {
	var snap QueueSnapshot
	err := e.do(func() {
		snap.VirtualNow = e.virtualNow()
		// Waiting = queued in the cluster (scheduling order) followed by
		// submitted-but-not-yet-arrived jobs (future release under
		// dilation, ID order); both carry StateWaiting, and together they
		// match the /stats waiting count.
		inQueue := make(map[int]bool)
		for _, j := range e.sim.Queued() {
			if rec := e.jobs[j.ID]; rec != nil {
				snap.Waiting = append(snap.Waiting, *rec)
				inQueue[j.ID] = true
			}
		}
		var pending []int
		for id, rec := range e.jobs {
			if rec.State == StateWaiting && !inQueue[id] {
				pending = append(pending, id)
			}
		}
		sort.Ints(pending)
		for _, id := range pending {
			snap.Waiting = append(snap.Waiting, *e.jobs[id])
		}
		for _, r := range e.sim.Running() {
			if rec := e.jobs[r.Job.ID]; rec != nil {
				snap.Running = append(snap.Running, *rec)
			}
		}
	})
	return snap, err
}

// virtualNow returns the engine's virtual clock (loop goroutine only).
func (e *Engine) virtualNow() float64 {
	if e.pacer != nil {
		if v := e.pacer.VirtualNow(time.Now()); v > e.sim.DES.Now() {
			return v
		}
	}
	return e.sim.DES.Now()
}

// Stats returns the aggregate service statistics, including the full §3
// criteria report over the completions so far.
func (e *Engine) Stats() (Stats, error) {
	var st Stats
	err := e.do(func() { st = e.stats() })
	return st, err
}

// stats builds the Stats payload (loop goroutine only). The criteria
// report comes from the simulator's streaming accumulator, so a scrape
// is O(1) no matter how old the daemon is or how history is retained.
// Under StreamJobs the per-job map is not populated, so the lifecycle
// counters come from the simulator too (Waiting then counts arrived
// jobs only — records not yet pulled from the source are nowhere yet).
func (e *Engine) stats() Stats {
	submitted, waiting, running, completed :=
		len(e.jobs), e.counts.waiting, e.counts.running, e.counts.completed
	if e.streaming {
		submitted = e.sim.Submitted()
		waiting = e.sim.QueueLength()
		running = e.sim.RunningCount()
		completed = e.sim.CompletedCount()
	}
	return Stats{
		Policy:        e.cfg.Policy,
		M:             e.cfg.M,
		Speed:         e.cfg.Speed,
		Dilation:      e.cfg.Dilation,
		VirtualNow:    e.virtualNow(),
		UptimeSeconds: time.Since(e.started).Seconds(),
		Submitted:     submitted,
		Waiting:       waiting,
		Running:       running,
		Completed:     completed,
		Drained:       e.sim.Drained(),
		BestEffort:    e.sim.BestEffort(),
		Report:        e.sim.Report(),
	}
}

// CompletionOrder returns the job IDs in completion-event order (the
// determinism witness compared against offline runs).
func (e *Engine) CompletionOrder() ([]int, error) {
	var out []int
	err := e.do(func() { out = append([]int(nil), e.order...) })
	return out, err
}

// Completions returns the local-job completion records so far.
func (e *Engine) Completions() ([]metrics.Completion, error) {
	var out []metrics.Completion
	err := e.do(func() { out = e.sim.Completions() })
	return out, err
}

// Load returns the cluster's latest load snapshot without going through
// the mailbox: the snapshot is published atomically by the simulator at
// event granularity, so brokers can poll a whole fleet lock-free.
func (e *Engine) Load() cluster.LoadInfo { return e.sim.LoadSnapshot() }

// VirtualNow returns the engine's virtual clock (the broker's partition
// windows are expressed in virtual seconds).
func (e *Engine) VirtualNow() (float64, error) {
	var v float64
	err := e.do(func() { v = e.virtualNow() })
	return v, err
}

// Crash takes procs processors down for the given virtual duration,
// killing and requeueing the local jobs caught on them (fault-injection
// testing against a live engine).
func (e *Engine) Crash(procs int, duration float64) error {
	var ierr error
	err := e.do(func() {
		now := e.virtualNow()
		if now > e.sim.DES.Now() {
			_ = e.sim.DES.RunUntil(now)
		}
		ierr = e.sim.Crash(procs, e.sim.DES.Now()+duration)
	})
	if err != nil {
		return err
	}
	return ierr
}

// SubmitBestEffort hands grid campaign tasks to this cluster; they run
// in scheduling holes and are killed (and reported through
// Config.OnBEKilled) whenever a local job claims their processors.
// Unlike local submissions, best-effort work is accepted even after
// Drain: the broker keeps redistributing killed tasks until the stock
// runs dry.
func (e *Engine) SubmitBestEffort(tasks ...cluster.BETask) error {
	return e.do(func() {
		for _, t := range tasks {
			e.sim.SubmitBestEffort(t)
		}
	})
}

// Sync runs every pending virtual event immediately and returns once the
// simulator is quiescent. Only meaningful in free-running engines (or
// drained ones): under a pacer it would fast-forward the virtual clock
// past its wall mapping.
func (e *Engine) Sync() error {
	return e.do(func() { _ = e.sim.DES.Run() })
}

// StealQueued removes and returns up to n jobs from the tail of this
// cluster's waiting queue (the decentralized exchange protocol). Stolen
// jobs vanish from this engine's tracking; the broker re-injects them
// into another engine.
func (e *Engine) StealQueued(n int) ([]*workload.Job, error) {
	var out []*workload.Job
	err := e.do(func() {
		out = e.sim.StealQueued(n)
		for _, j := range out {
			if st := e.jobs[j.ID]; st != nil && st.State == StateWaiting {
				e.counts.waiting--
			}
			delete(e.jobs, j.ID)
		}
	})
	return out, err
}

// Drain stops accepting submissions and fast-forwards the remaining
// virtual work to completion regardless of dilation (graceful shutdown:
// every accepted job still completes, immediately rather than in wall
// time). It returns the final statistics. The context bounds only the
// wait for the mailbox; the fast-forward itself is a single command.
func (e *Engine) Drain(ctx context.Context) (Stats, error) {
	var st Stats
	done := make(chan error, 1)
	go func() {
		done <- e.do(func() {
			e.sim.Drain()
			_ = e.sim.DES.Run()
			// Post-drain the engine free-runs: the broker keeps
			// redistributing leftover best-effort campaign work across a
			// drained fleet, and those tasks must not wait for wall time.
			e.pacer = nil
			st = e.stats()
		})
	}()
	select {
	case err := <-done:
		return st, err
	case <-ctx.Done():
		return Stats{}, ctx.Err()
	}
}
