package service

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestStreamJobsMatchesOffline: a free-running engine fed through
// StreamJobs produces the exact report of an offline cluster run over
// the same source, with only a bounded tail retained.
func TestStreamJobsMatchesOffline(t *testing.T) {
	cfg := workload.GenConfig{N: 400, M: 16, Seed: 17, ArrivalRate: 1}

	sim, err := cluster.New(des.New(), 16, 1, cluster.EASYPolicy{}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Stream(workload.ParallelSource(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	e, err := New(Config{M: 16, Policy: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	if err := e.SetRetention(metrics.NewRing(8)); err != nil {
		t.Fatal(err)
	}
	if err := e.StreamJobs(workload.ParallelSource(cfg)); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 400 || stats.Submitted != 400 {
		t.Fatalf("streamed stats: completed=%d submitted=%d", stats.Completed, stats.Submitted)
	}
	if stats.Report != sim.Report() {
		t.Fatalf("streamed report diverged:\nengine  %+v\noffline %+v", stats.Report, sim.Report())
	}
	cs, err := e.Completions()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 8 {
		t.Fatalf("ring retained %d records, want 8", len(cs))
	}
}

// TestStreamJobsGuards: double attach fails, and retention cannot be
// swapped once completions exist.
func TestStreamJobsGuards(t *testing.T) {
	e, err := New(Config{M: 8, Policy: "fcfs"})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	src := workload.SequentialSource(workload.GenConfig{N: 10, Seed: 2})
	if err := e.StreamJobs(src); err != nil {
		t.Fatal(err)
	}
	if err := e.StreamJobs(workload.SequentialSource(workload.GenConfig{N: 10, Seed: 3})); err == nil {
		t.Fatal("second source accepted")
	}
	if _, err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.SetRetention(metrics.NewDiscard()); err == nil {
		t.Fatal("post-completion retention swap accepted")
	}
}
