// HTTP layer of the gridd daemon: a JSON API over the Engine mailbox
// plus a Prometheus-style text exposition of the §3 criteria. The
// run-lifecycle endpoints, the middleware stack and the JSON helpers
// live in the shared internal/api package.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/registry"
)

// Handler returns the gridd HTTP API. Every legacy route is also
// served under /v1 (the legacy paths are thin shims registering the
// same handlers), and runs mounts the shared run-lifecycle API:
//
//	POST   /jobs                 submit a JobSpec, returns the JobStatus (202)
//	GET    /jobs/{id}            status of one job
//	GET    /queue                waiting + running jobs
//	GET    /stats                aggregate statistics, criteria report, runs summary
//	GET    /metrics              Prometheus text exposition
//	GET    /policies             the registry catalog with capability flags
//	POST   /v1/runs              submit a scenario run asynchronously (202)
//	GET    /v1/runs[/{id}]       run listing / typed status
//	GET    /v1/runs/{id}/events  per-cell SSE progress stream
//	GET    /v1/runs/{id}/result  result (?format=json|text|csv)
//	DELETE /v1/runs/{id}         cooperative cancellation
//	POST   /scenarios            legacy synchronous shim over /v1
//
// A nil runs service gets a default-config one (tests; cmd/gridd
// passes its flag-configured instance).
func (e *Engine) Handler(runs *api.RunService) http.Handler {
	if runs == nil {
		runs = api.NewRunService(api.Config{})
	}
	mux := http.NewServeMux()
	api.RegisterBoth(mux, "POST /jobs", e.handleSubmit)
	api.RegisterBoth(mux, "GET /jobs/{id}", e.handleJob)
	api.RegisterBoth(mux, "GET /queue", e.handleQueue)
	api.RegisterBoth(mux, "GET /stats", e.statsHandler(runs))
	api.RegisterBoth(mux, "GET /metrics", e.metricsHandler(runs))
	api.RegisterBoth(mux, "GET /policies", handlePolicies)
	runs.Mount(mux)
	return api.Wrap(mux, runs.Config().MaxBody, runs.Config().Log)
}

// APIError is the JSON error envelope (alias of the shared api type,
// kept for the broker and existing callers).
type APIError = api.Error

// WriteJSON forwards to the shared api helper.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	api.WriteJSON(w, code, v)
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		WriteJSON(w, http.StatusBadRequest, APIError{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	st, err := e.Submit(spec)
	switch {
	case errors.Is(err, cluster.ErrDrained):
		WriteJSON(w, http.StatusServiceUnavailable, APIError{Error: err.Error()})
		return
	case errors.Is(err, ErrStopped):
		WriteJSON(w, http.StatusServiceUnavailable, APIError{Error: err.Error()})
		return
	case err != nil:
		WriteJSON(w, http.StatusBadRequest, APIError{Error: err.Error()})
		return
	}
	WriteJSON(w, http.StatusAccepted, st)
}

func (e *Engine) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, APIError{Error: "job id must be an integer"})
		return
	}
	st, ok, err := e.Job(id)
	if err != nil {
		WriteJSON(w, http.StatusServiceUnavailable, APIError{Error: err.Error()})
		return
	}
	if !ok {
		WriteJSON(w, http.StatusNotFound, APIError{Error: fmt.Sprintf("unknown job %d", id)})
		return
	}
	WriteJSON(w, http.StatusOK, st)
}

func (e *Engine) handleQueue(w http.ResponseWriter, r *http.Request) {
	snap, err := e.Queue()
	if err != nil {
		WriteJSON(w, http.StatusServiceUnavailable, APIError{Error: err.Error()})
		return
	}
	if snap.Waiting == nil {
		snap.Waiting = []JobStatus{}
	}
	if snap.Running == nil {
		snap.Running = []JobStatus{}
	}
	WriteJSON(w, http.StatusOK, snap)
}

// statsHandler serves /stats: the engine statistics plus the scenario
// runs summary, aggregated from the same run store /v1/runs serves so
// the two surfaces cannot diverge.
func (e *Engine) statsHandler(runs *api.RunService) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := e.Stats()
		if err != nil {
			WriteJSON(w, http.StatusServiceUnavailable, APIError{Error: err.Error()})
			return
		}
		sum := runs.Summary()
		st.Runs = &sum
		WriteJSON(w, http.StatusOK, st)
	}
}

// metricsHandler renders the stats as Prometheus text exposition format
// (fed from internal/metrics via Stats.Report), plus the run-store
// series shared with the broker mode.
func (e *Engine) metricsHandler(runs *api.RunService) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := e.Stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		g := func(name, help, typ string, v float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
		}
		g("gridd_jobs_submitted_total", "Jobs accepted since start.", "counter", float64(st.Submitted))
		g("gridd_jobs_completed_total", "Jobs completed since start.", "counter", float64(st.Completed))
		g("gridd_jobs_waiting", "Jobs waiting (pending arrival or queued).", "gauge", float64(st.Waiting))
		g("gridd_jobs_running", "Jobs currently running.", "gauge", float64(st.Running))
		g("gridd_processors", "Cluster width.", "gauge", float64(st.M))
		g("gridd_virtual_time_seconds", "Virtual simulation clock.", "gauge", st.VirtualNow)
		g("gridd_uptime_seconds", "Wall-clock uptime.", "gauge", st.UptimeSeconds)
		g("gridd_time_dilation", "Simulated seconds per wall second (0 = free-running).", "gauge", st.Dilation)
		g("gridd_makespan_seconds", "Cmax over completed jobs.", "gauge", st.Report.Makespan)
		g("gridd_mean_flow_seconds", "Mean flow time over completed jobs.", "gauge", st.Report.MeanFlow)
		g("gridd_max_flow_seconds", "Max flow time over completed jobs.", "gauge", st.Report.MaxFlow)
		g("gridd_mean_stretch", "Mean normalized stretch over completed jobs.", "gauge", st.Report.MeanStretch)
		g("gridd_max_stretch", "Max normalized stretch over completed jobs.", "gauge", st.Report.MaxStretch)
		g("gridd_utilization_ratio", "Fraction of the processor-time area used.", "gauge", st.Report.Utilization)
		g("gridd_best_effort_completed_total", "Best-effort tasks completed.", "counter", float64(st.BestEffort.Completed))
		g("gridd_best_effort_killed_total", "Best-effort tasks killed.", "counter", float64(st.BestEffort.Killed))
		g("gridd_best_effort_redistributed_total", "Killed best-effort tasks re-arrived after drifting through the stock.", "counter", float64(st.BestEffort.Redistributed))
		g("gridd_fault_crashes_total", "Capacity-loss events injected.", "counter", float64(st.Report.Faults.Crashes))
		g("gridd_fault_repairs_total", "Capacity-return events.", "counter", float64(st.Report.Faults.Repairs))
		g("gridd_fault_requeues_total", "Local jobs killed by crashes and requeued.", "counter", float64(st.Report.Faults.Requeues))
		g("gridd_fault_lost_work_seconds", "Reference-speed work destroyed by crashes.", "counter", st.Report.Faults.LostWork)
		g("gridd_fault_down_proc_seconds", "Integrated unavailable capacity.", "counter", st.Report.Faults.DownProcSeconds)
		drained := 0.0
		if st.Drained {
			drained = 1
		}
		g("gridd_drained", "1 once the service stopped accepting submissions.", "gauge", drained)
		api.WriteRunMetrics(w, runs.Summary())
		metrics.WriteTraceMetrics(w)
	}
}

// PolicyInfo is the /policies JSON shape for one local queue policy,
// shared with the broker's catalog endpoint.
type PolicyInfo struct {
	Name       string `json:"name"`
	Caps       string `json:"caps"`
	Online     bool   `json:"online"`
	Offline    bool   `json:"offline"`
	Moldable   bool   `json:"moldable"`
	BestEffort bool   `json:"best_effort"`
	Desc       string `json:"desc"`
}

// CatalogPolicies renders the registry catalog as PolicyInfo records.
func CatalogPolicies() []PolicyInfo {
	var out []PolicyInfo
	for _, e := range registry.All() {
		out = append(out, PolicyInfo{
			Name: e.Name, Caps: e.Caps.String(),
			Online: e.Caps.Online, Offline: e.Caps.Offline,
			Moldable: e.Caps.Moldable, BestEffort: e.Caps.BestEffort,
			Desc: e.Desc,
		})
	}
	return out
}

func handlePolicies(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, CatalogPolicies())
}
