package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func TestSubmitAndComplete(t *testing.T) {
	e, err := New(Config{M: 8, Policy: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	st, err := e.Submit(JobSpec{Name: "a", SeqTime: 100, MinProcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != 0 || st.State != StateWaiting {
		t.Fatalf("initial status = %+v", st)
	}
	stats, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 1 || stats.Submitted != 1 {
		t.Fatalf("stats after drain = %+v", stats)
	}
	got, ok, err := e.Job(0)
	if err != nil || !ok {
		t.Fatalf("Job(0): ok=%v err=%v", ok, err)
	}
	if got.State != StateDone || got.Procs != 2 || got.End <= 0 {
		t.Fatalf("final status = %+v", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	e, err := New(Config{M: 4, Policy: "fcfs"})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	if _, err := e.Submit(JobSpec{SeqTime: -1, MinProcs: 1}); err == nil {
		t.Fatal("negative seq_time accepted")
	}
	if _, err := e.Submit(JobSpec{SeqTime: 10, MinProcs: 99}); err == nil {
		t.Fatal("job wider than the cluster accepted")
	}
	// Failed submissions must not burn IDs.
	st, err := e.Submit(JobSpec{SeqTime: 10, MinProcs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != 0 {
		t.Fatalf("first accepted job got ID %d, want 0", st.ID)
	}
}

func TestDrainRejectsFurtherSubmissions(t *testing.T) {
	e, err := New(Config{M: 8, Policy: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	if _, err := e.Submit(JobSpec{SeqTime: 10, MinProcs: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err = e.Submit(JobSpec{SeqTime: 10, MinProcs: 1})
	if !errors.Is(err, cluster.ErrDrained) {
		t.Fatalf("post-drain submit error = %v, want ErrDrained", err)
	}
}

func TestStoppedEngineRejects(t *testing.T) {
	e, err := New(Config{M: 8, Policy: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	e.Stop()
	if _, err := e.Submit(JobSpec{SeqTime: 10, MinProcs: 1}); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop = %v, want ErrStopped", err)
	}
}

func TestOfflinePolicyRejected(t *testing.T) {
	if _, err := New(Config{Policy: "mrt"}); err == nil {
		t.Fatal("offline-only policy accepted by the service")
	}
	if _, err := New(Config{Policy: "no-such"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestDilationPacesVirtualClock checks the wall-clock driver: with a
// dilation of 1000x, a 100-virtual-second job must complete within a few
// hundred wall milliseconds — and not instantly.
func TestDilationPacesVirtualClock(t *testing.T) {
	e, err := New(Config{M: 4, Policy: "fcfs", Dilation: 1000})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	if _, err := e.Submit(JobSpec{SeqTime: 100, MinProcs: 1}); err != nil {
		t.Fatal(err)
	}
	// At 1000 virtual s / wall s, completion is due ~100ms in.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok, err := e.Job(0)
		if err != nil || !ok {
			t.Fatalf("Job(0): ok=%v err=%v", ok, err)
		}
		if st.State == StateDone {
			if st.End < 100 {
				t.Fatalf("job completed at virtual %v, want >= 100", st.End)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not completed after 5s wall; status %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.VirtualNow < 100 {
		t.Fatalf("virtual clock %v did not pass the completion time", stats.VirtualNow)
	}
}

func TestQueueSnapshot(t *testing.T) {
	// Dilated mode so the in-flight state is observable: at 1 virtual
	// second per wall second, a 10000-virtual-second job effectively
	// never finishes within the test.
	e, err := New(Config{M: 2, Policy: "fcfs", Dilation: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	// Two 2-wide jobs: the second must wait behind the first.
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(JobSpec{SeqTime: 10000, MinProcs: 2}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := e.Queue()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Running) == 1 && len(snap.Waiting) == 1 {
			if snap.Running[0].ID != 0 || snap.Waiting[0].ID != 1 {
				t.Fatalf("queue snapshot order: running=%d waiting=%d", snap.Running[0].ID, snap.Waiting[0].ID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue snapshot never reached 1 running / 1 waiting: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitJobsAtomicity: a batch containing an invalid job (or an
// intra-batch duplicate ID) must leave no partial state behind.
func TestSubmitJobsAtomicity(t *testing.T) {
	e, err := New(Config{M: 4, Policy: "fcfs"})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	good := func(id int) *workload.Job {
		return &workload.Job{
			ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1,
			SeqTime: 10, MinProcs: 1, MaxProcs: 1, Model: workload.Linear{},
		}
	}
	tooWide := good(2)
	tooWide.MinProcs, tooWide.MaxProcs = 99, 99
	if err := e.SubmitJobs([]*workload.Job{good(0), good(1), tooWide}); err == nil {
		t.Fatal("batch with too-wide job accepted")
	}
	if err := e.SubmitJobs([]*workload.Job{good(3), good(3)}); err == nil {
		t.Fatal("batch with intra-batch duplicate ID accepted")
	}
	stats, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != 0 {
		t.Fatalf("rejected batches leaked %d jobs", stats.Submitted)
	}
	// A clean batch still goes through afterwards.
	if err := e.SubmitJobs([]*workload.Job{good(0), good(1)}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueIncludesPendingArrivals: jobs submitted with a future release
// date (not yet arrived in the cluster) must show up in the /queue
// waiting list, consistent with the /stats waiting count.
func TestQueueIncludesPendingArrivals(t *testing.T) {
	e, err := New(Config{M: 4, Policy: "fcfs", Dilation: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	// Released an hour of virtual time out: at 1x it cannot arrive
	// during the test.
	if _, err := e.Submit(JobSpec{SeqTime: 10, MinProcs: 1, Release: 3600}); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Waiting) != 1 || snap.Waiting[0].ID != 0 {
		t.Fatalf("pending arrival missing from queue snapshot: %+v", snap)
	}
	stats, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Waiting != len(snap.Waiting) {
		t.Fatalf("stats.Waiting=%d but queue lists %d", stats.Waiting, len(snap.Waiting))
	}
}

// TestConcurrentSubmissions hammers the mailbox from many goroutines
// (run under -race in CI) and checks nothing is lost.
func TestConcurrentSubmissions(t *testing.T) {
	e, err := New(Config{M: 64, Policy: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	const workers, per = 8, 50
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < per; i++ {
				if _, err := e.Submit(JobSpec{SeqTime: 10, MinProcs: 1}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	stats, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != workers*per || stats.Completed != workers*per {
		t.Fatalf("submitted=%d completed=%d, want %d", stats.Submitted, stats.Completed, workers*per)
	}
}
