package platform

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestClusterProcs(t *testing.T) {
	c := &Cluster{Name: "x", Nodes: 48, ProcsPerNode: 2, Speed: 1}
	if c.Procs() != 96 {
		t.Fatalf("Procs = %d", c.Procs())
	}
}

func TestClusterValidate(t *testing.T) {
	bad := []*Cluster{
		{Name: "a", Nodes: 0, ProcsPerNode: 1, Speed: 1},
		{Name: "b", Nodes: 1, ProcsPerNode: 0, Speed: 1},
		{Name: "c", Nodes: 1, ProcsPerNode: 1, Speed: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("cluster %q accepted", c.Name)
		}
	}
}

func TestBandwidthOrdering(t *testing.T) {
	my := (&Cluster{Interconnect: "myrinet"}).Bandwidth()
	gi := (&Cluster{Interconnect: "gige"}).Bandwidth()
	e1 := (&Cluster{Interconnect: "eth100"}).Bandwidth()
	if !(my > gi && gi > e1) {
		t.Fatalf("bandwidth ordering wrong: %v %v %v", my, gi, e1)
	}
	if (&Cluster{Interconnect: "unknown"}).Bandwidth() <= 0 {
		t.Fatal("unknown interconnect must have positive bandwidth")
	}
}

func TestCIMENTMatchesFigure3(t *testing.T) {
	g := CIMENT()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Clusters) != 4 {
		t.Fatalf("CIMENT has %d clusters, want 4", len(g.Clusters))
	}
	nodes := map[string]int{}
	for _, c := range g.Clusters {
		nodes[c.Name] = c.Nodes
		if c.ProcsPerNode != 2 {
			t.Errorf("cluster %s is not bi-processor", c.Name)
		}
	}
	want := map[string]int{"itanium": 104, "xeon": 48, "athlon-a": 40, "athlon-b": 24}
	for k, v := range want {
		if nodes[k] != v {
			t.Errorf("cluster %s: %d nodes, want %d", k, nodes[k], v)
		}
	}
	// 216 bi-processor nodes = 432 processors.
	if g.TotalProcs() != 432 {
		t.Fatalf("TotalProcs = %d, want 432", g.TotalProcs())
	}
}

func TestUniform(t *testing.T) {
	g := Uniform("fig2", 100)
	if g.TotalProcs() != 100 {
		t.Fatalf("TotalProcs = %d", g.TotalProcs())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridValidateDuplicate(t *testing.T) {
	g := &Grid{Clusters: []*Cluster{
		{Name: "a", Nodes: 1, ProcsPerNode: 1, Speed: 1},
		{Name: "a", Nodes: 1, ProcsPerNode: 1, Speed: 1},
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("duplicate cluster names accepted")
	}
}

func TestReservationValidate(t *testing.T) {
	bad := []Reservation{
		{Name: "empty", Start: 5, End: 5, Procs: 1},
		{Name: "neg", Start: -1, End: 5, Procs: 1},
		{Name: "zero", Start: 0, End: 5, Procs: 0},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("reservation %q accepted", r.Name)
		}
	}
}

func TestCalendarAvailability(t *testing.T) {
	cal, err := NewCalendar(10, []Reservation{
		{Name: "demo", Start: 100, End: 200, Procs: 4},
		{Name: "exp", Start: 150, End: 300, Procs: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    float64
		want int
	}{
		{0, 10}, {99, 10}, {100, 6}, {149, 6}, {150, 3},
		{199, 3}, {200, 7}, {299, 7}, {300, 10},
	}
	for _, c := range cases {
		if got := cal.Available(c.t); got != c.want {
			t.Errorf("Available(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestCalendarOverflow(t *testing.T) {
	_, err := NewCalendar(5, []Reservation{
		{Name: "a", Start: 0, End: 10, Procs: 3},
		{Name: "b", Start: 5, End: 15, Procs: 3},
	})
	if err == nil {
		t.Fatal("overlapping reservations exceeding m accepted")
	}
	// Back-to-back is fine.
	if _, err := NewCalendar(5, []Reservation{
		{Name: "a", Start: 0, End: 10, Procs: 3},
		{Name: "b", Start: 10, End: 15, Procs: 3},
	}); err != nil {
		t.Fatalf("back-to-back reservations rejected: %v", err)
	}
}

func TestNextBoundary(t *testing.T) {
	cal, _ := NewCalendar(10, []Reservation{
		{Name: "r", Start: 100, End: 200, Procs: 1},
	})
	if b, ok := cal.NextBoundary(0); !ok || b != 100 {
		t.Fatalf("NextBoundary(0) = %v,%v", b, ok)
	}
	if b, ok := cal.NextBoundary(100); !ok || b != 200 {
		t.Fatalf("NextBoundary(100) = %v,%v", b, ok)
	}
	if _, ok := cal.NextBoundary(200); ok {
		t.Fatal("NextBoundary past all reservations should report none")
	}
}

func TestMinAvailable(t *testing.T) {
	cal, _ := NewCalendar(10, []Reservation{
		{Name: "r", Start: 100, End: 200, Procs: 4},
	})
	if got := cal.MinAvailable(0, 50); got != 10 {
		t.Fatalf("MinAvailable before reservation = %d", got)
	}
	if got := cal.MinAvailable(0, 150); got != 6 {
		t.Fatalf("MinAvailable spanning start = %d", got)
	}
	if got := cal.MinAvailable(150, 250); got != 6 {
		t.Fatalf("MinAvailable inside = %d", got)
	}
	if got := cal.MinAvailable(200, 300); got != 10 {
		t.Fatalf("MinAvailable after = %d", got)
	}
}

func TestAssignBasic(t *testing.T) {
	got, err := Assign(4, []Interval{
		{Start: 0, End: 10, Count: 2},
		{Start: 0, End: 5, Count: 2},
		{Start: 5, End: 10, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 2 || len(got[1]) != 2 || len(got[2]) != 2 {
		t.Fatalf("wrong processor counts: %v", got)
	}
	// Interval 0 and 1 overlap: disjoint processors required.
	inUse := map[int]bool{}
	for _, p := range got[0] {
		inUse[p] = true
	}
	for _, p := range got[1] {
		if inUse[p] {
			t.Fatalf("intervals 0 and 1 share processor %d", p)
		}
	}
}

func TestAssignHalfOpenReuse(t *testing.T) {
	got, err := Assign(1, []Interval{
		{Start: 0, End: 5, Count: 1},
		{Start: 5, End: 10, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 0 || got[1][0] != 0 {
		t.Fatalf("back-to-back intervals should reuse proc 0: %v", got)
	}
}

func TestAssignOverflow(t *testing.T) {
	_, err := Assign(3, []Interval{
		{Start: 0, End: 10, Count: 2},
		{Start: 5, End: 15, Count: 2},
	})
	if err == nil {
		t.Fatal("overcommitted intervals accepted")
	}
}

func TestAssignZeroWidth(t *testing.T) {
	got, err := Assign(2, []Interval{
		{Start: 5, End: 5, Count: 2},
		{Start: 0, End: 1, Count: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 0 || len(got[1]) != 0 {
		t.Fatalf("zero-width/zero-count intervals received processors: %v", got)
	}
}

func TestPeakDemand(t *testing.T) {
	peak := PeakDemand([]Interval{
		{Start: 0, End: 10, Count: 2},
		{Start: 5, End: 15, Count: 3},
		{Start: 20, End: 30, Count: 4},
	})
	if peak != 5 {
		t.Fatalf("PeakDemand = %d, want 5", peak)
	}
	if PeakDemand(nil) != 0 {
		t.Fatal("empty PeakDemand != 0")
	}
}

// Property: Assign never double-books a processor and always respects
// demand counts, for random feasible interval sets.
func TestAssignProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw%20) + 1
		m := rng.IntRange(1, 16)
		intervals := make([]Interval, n)
		for i := range intervals {
			s := rng.Range(0, 100)
			intervals[i] = Interval{
				Start: s,
				End:   s + rng.Range(0.1, 50),
				Count: rng.IntRange(0, m),
			}
		}
		assigned, err := Assign(m, intervals)
		if err != nil {
			// Must genuinely exceed capacity.
			return PeakDemand(intervals) > m
		}
		if PeakDemand(intervals) > m {
			return false // should have failed
		}
		// Verify counts and non-overlap pairwise.
		for i, iv := range intervals {
			if iv.Count > 0 && iv.End > iv.Start && len(assigned[i]) != iv.Count {
				return false
			}
		}
		for i := range intervals {
			for k := i + 1; k < len(intervals); k++ {
				a, b := intervals[i], intervals[k]
				if a.Start < b.End && b.Start < a.End {
					used := map[int]bool{}
					for _, p := range assigned[i] {
						used[p] = true
					}
					for _, p := range assigned[k] {
						if used[p] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: calendar availability is always within [0, m].
func TestCalendarProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(1, 32)
		var rs []Reservation
		for i := 0; i < rng.Intn(5); i++ {
			s := rng.Range(0, 100)
			rs = append(rs, Reservation{
				Name:  "r",
				Start: s,
				End:   s + rng.Range(1, 50),
				Procs: rng.IntRange(1, m),
			})
		}
		cal, err := NewCalendar(m, rs)
		if err != nil {
			return true // overcommitted draw; rejection is correct
		}
		for t := 0.0; t < 160; t += 7.3 {
			a := cal.Available(t)
			if a < 0 || a > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarReservationsCopy(t *testing.T) {
	cal, _ := NewCalendar(4, []Reservation{{Name: "r", Start: 1, End: 2, Procs: 1}})
	rs := cal.Reservations()
	rs[0].Procs = 99
	if cal.Reserved(1.5) != 1 {
		t.Fatal("Reservations() exposed internal state")
	}
}

func TestMinAvailableUnbounded(t *testing.T) {
	cal, _ := NewCalendar(8, nil)
	if got := cal.MinAvailable(0, math.Inf(1)); got != 8 {
		t.Fatalf("empty calendar MinAvailable = %d", got)
	}
}
