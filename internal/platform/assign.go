package platform

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Interval is a processor demand over a half-open time window. Assign
// turns a set of intervals into concrete processor IDs.
type Interval struct {
	Start, End float64
	Count      int
}

// intHeap is a min-heap of processor IDs.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Assign maps each interval to a concrete set of processor IDs in [0, m)
// such that no processor serves two overlapping intervals. Intervals are
// half-open, so an interval ending at t and one starting at t may share
// processors. Returns an error if at some instant total demand exceeds m.
//
// The assignment is the classic sweep: process interval starts in time
// order (ends released first at equal times) and grab the lowest-numbered
// free processors. Because demand never exceeds m, the greedy grab always
// succeeds — this is interval graph coloring.
func Assign(m int, intervals []Interval) ([][]int, error) {
	if m <= 0 {
		return nil, fmt.Errorf("platform: Assign with m = %d", m)
	}
	type event struct {
		t     float64
		start bool
		idx   int
	}
	events := make([]event, 0, 2*len(intervals))
	for i, iv := range intervals {
		if iv.Count < 0 {
			return nil, fmt.Errorf("platform: interval %d has negative count", i)
		}
		if iv.End < iv.Start {
			return nil, fmt.Errorf("platform: interval %d has End < Start", i)
		}
		if iv.Count == 0 || iv.End == iv.Start {
			continue // zero-width or zero-demand intervals get no processors
		}
		events = append(events, event{iv.Start, true, i}, event{iv.End, false, i})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		if events[a].start != events[b].start {
			return !events[a].start // ends first
		}
		return events[a].idx < events[b].idx
	})

	free := make(intHeap, m)
	for i := range free {
		free[i] = i
	}
	heap.Init(&free)

	out := make([][]int, len(intervals))
	for i := 0; i < len(events); {
		groupEnd := i
		eps := sweepEps(events[i].t)
		for groupEnd < len(events) && events[groupEnd].t-events[i].t <= eps {
			groupEnd++
		}
		// Apply all ends in the group before any start, so hairline
		// float overlaps from shifted schedules do not spuriously
		// exhaust the free pool.
		for k := i; k < groupEnd; k++ {
			if !events[k].start {
				for _, p := range out[events[k].idx] {
					heap.Push(&free, p)
				}
			}
		}
		for k := i; k < groupEnd; k++ {
			e := events[k]
			if !e.start {
				continue
			}
			iv := intervals[e.idx]
			if iv.Count > free.Len() {
				return nil, fmt.Errorf("platform: demand exceeds %d processors at t=%v", m, e.t)
			}
			procs := make([]int, iv.Count)
			for q := range procs {
				procs[q] = heap.Pop(&free).(int)
			}
			sort.Ints(procs)
			out[e.idx] = procs
		}
		i = groupEnd
	}
	return out, nil
}

// sweepEps returns the tie tolerance for event sweeps at time t. Start
// and end instants that differ only by float rounding (e.g. (base+s)+d vs
// base+(s+d) after shifting a schedule) must be treated as simultaneous,
// with releases applied before grabs.
func sweepEps(t float64) float64 { return 1e-9 * (1 + math.Abs(t)) }

// PeakDemand returns the maximum simultaneous processor demand of the
// intervals (useful to size a platform or validate feasibility quickly).
// Events closer than a relative 1e-9 are coalesced, releases first.
func PeakDemand(intervals []Interval) int {
	type event struct {
		t float64
		d int
	}
	evs := make([]event, 0, 2*len(intervals))
	for _, iv := range intervals {
		if iv.Count == 0 || iv.End <= iv.Start {
			continue
		}
		evs = append(evs, event{iv.Start, iv.Count}, event{iv.End, -iv.Count})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].d < evs[b].d
	})
	cur, peak := 0, 0
	for i := 0; i < len(evs); {
		groupEnd := i
		eps := sweepEps(evs[i].t)
		for groupEnd < len(evs) && evs[groupEnd].t-evs[i].t <= eps {
			groupEnd++
		}
		// Releases first within the group.
		for k := i; k < groupEnd; k++ {
			if evs[k].d < 0 {
				cur += evs[k].d
			}
		}
		for k := i; k < groupEnd; k++ {
			if evs[k].d > 0 {
				cur += evs[k].d
				if cur > peak {
					peak = cur
				}
			}
		}
		i = groupEnd
	}
	return peak
}
