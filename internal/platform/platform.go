// Package platform models the execution supports of the paper (§1.2): a
// light grid is a small set of clusters, each a collection of tens to
// hundreds of nodes, weakly heterogeneous inside a cluster (clock speeds)
// and strongly heterogeneous across clusters (architecture, interconnect,
// OS). It also provides reservation calendars (§5.1) and the concrete
// processor-assignment sweep used to turn (start, duration, count)
// schedules into per-processor allocations.
package platform

import (
	"fmt"
	"sort"
)

// Cluster is one weakly-heterogeneous cluster of a light grid.
type Cluster struct {
	// Name identifies the cluster ("icluster", "idpot", ...).
	Name string
	// Nodes is the number of nodes; Procs = Nodes * ProcsPerNode.
	Nodes int
	// ProcsPerNode is the per-node processor count (2 for the CIMENT
	// bi-processor machines).
	ProcsPerNode int
	// Speed is the relative processor speed (reference cluster = 1.0).
	// A job with sequential time s takes s/Speed on one processor here.
	Speed float64
	// Interconnect names the network ("myrinet", "gige", "eth100"). The PT
	// model folds network cost into the per-job penalty, so this field is
	// descriptive, but the DLT experiments derive bandwidth from it.
	Interconnect string
}

// Procs returns the total processor count of the cluster.
func (c *Cluster) Procs() int { return c.Nodes * c.ProcsPerNode }

// Bandwidth returns an indicative link bandwidth in MB/s for the DLT
// experiments, derived from the interconnect name. Unknown interconnects
// get 100 MB/s.
func (c *Cluster) Bandwidth() float64 {
	switch c.Interconnect {
	case "myrinet":
		return 2000
	case "gige":
		return 125
	case "eth100":
		return 12.5
	default:
		return 100
	}
}

// Validate checks structural invariants.
func (c *Cluster) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster %q: %d nodes", c.Name, c.Nodes)
	case c.ProcsPerNode <= 0:
		return fmt.Errorf("cluster %q: %d procs/node", c.Name, c.ProcsPerNode)
	case c.Speed <= 0:
		return fmt.Errorf("cluster %q: speed %v", c.Name, c.Speed)
	}
	return nil
}

// Grid is a light grid: a named set of clusters (Figure 1).
type Grid struct {
	Name     string
	Clusters []*Cluster
}

// TotalProcs sums processor counts over all clusters.
func (g *Grid) TotalProcs() int {
	var n int
	for _, c := range g.Clusters {
		n += c.Procs()
	}
	return n
}

// Validate checks all clusters and name uniqueness.
func (g *Grid) Validate() error {
	seen := map[string]bool{}
	for _, c := range g.Clusters {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("duplicate cluster name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// CIMENT returns the four largest clusters of the CIMENT project exactly
// as drawn in Figure 3 of the paper: 104 bi-Itanium2 nodes on Myrinet,
// 48 bi-P4 Xeon on gigabit Ethernet, 40 and 24 bi-Athlon on 100 Mb/s
// Ethernet. Speeds are indicative relative clock/architecture factors.
func CIMENT() *Grid {
	return &Grid{
		Name: "CIMENT",
		Clusters: []*Cluster{
			{Name: "itanium", Nodes: 104, ProcsPerNode: 2, Speed: 1.3, Interconnect: "myrinet"},
			{Name: "xeon", Nodes: 48, ProcsPerNode: 2, Speed: 1.0, Interconnect: "gige"},
			{Name: "athlon-a", Nodes: 40, ProcsPerNode: 2, Speed: 0.8, Interconnect: "eth100"},
			{Name: "athlon-b", Nodes: 24, ProcsPerNode: 2, Speed: 0.8, Interconnect: "eth100"},
		},
	}
}

// Uniform returns a single-cluster grid of m unit-speed processors — the
// Figure 2 setting ("a cluster of 100 machines").
func Uniform(name string, m int) *Grid {
	return &Grid{
		Name: name,
		Clusters: []*Cluster{
			{Name: name, Nodes: m, ProcsPerNode: 1, Speed: 1, Interconnect: "gige"},
		},
	}
}

// Reservation is an advance reservation (§5.1): Procs processors are
// unavailable to the scheduler during [Start, End).
type Reservation struct {
	Name  string
	Start float64
	End   float64
	Procs int
}

// Validate checks the reservation window.
func (r Reservation) Validate() error {
	switch {
	case r.End <= r.Start:
		return fmt.Errorf("reservation %q: empty window [%v,%v)", r.Name, r.Start, r.End)
	case r.Procs <= 0:
		return fmt.Errorf("reservation %q: %d procs", r.Name, r.Procs)
	case r.Start < 0:
		return fmt.Errorf("reservation %q: negative start %v", r.Name, r.Start)
	}
	return nil
}

// Calendar is a set of reservations on one cluster. It answers
// availability queries: how many processors are free of reservations at
// time t, and what is the next boundary after t.
type Calendar struct {
	m            int
	reservations []Reservation
}

// NewCalendar builds a calendar for a cluster of m processors. It returns
// an error if any reservation is invalid or if at some instant the
// reserved processors exceed m.
func NewCalendar(m int, rs []Reservation) (*Calendar, error) {
	if m <= 0 {
		return nil, fmt.Errorf("calendar: %d processors", m)
	}
	c := &Calendar{m: m, reservations: append([]Reservation(nil), rs...)}
	for _, r := range c.reservations {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	sort.Slice(c.reservations, func(i, k int) bool {
		return c.reservations[i].Start < c.reservations[k].Start
	})
	// Check peak demand with a sweep.
	type ev struct {
		t float64
		d int
	}
	var evs []ev
	for _, r := range c.reservations {
		evs = append(evs, ev{r.Start, r.Procs}, ev{r.End, -r.Procs})
	}
	sort.Slice(evs, func(i, k int) bool {
		if evs[i].t != evs[k].t {
			return evs[i].t < evs[k].t
		}
		return evs[i].d < evs[k].d // process releases before grabs at ties
	})
	cur := 0
	for _, e := range evs {
		cur += e.d
		if cur > m {
			return nil, fmt.Errorf("calendar: reservations exceed %d processors", m)
		}
	}
	return c, nil
}

// M returns the processor count of the underlying cluster.
func (c *Calendar) M() int { return c.m }

// Reserved returns the number of processors reserved at time t
// (reservations are half-open [Start, End)).
func (c *Calendar) Reserved(t float64) int {
	var n int
	for _, r := range c.reservations {
		if r.Start <= t && t < r.End {
			n += r.Procs
		}
	}
	return n
}

// Available returns m - Reserved(t).
func (c *Calendar) Available(t float64) int { return c.m - c.Reserved(t) }

// NextBoundary returns the smallest reservation start or end strictly
// greater than t, or ok=false if none exists.
func (c *Calendar) NextBoundary(t float64) (boundary float64, ok bool) {
	best := 0.0
	found := false
	for _, r := range c.reservations {
		for _, b := range [2]float64{r.Start, r.End} {
			if b > t && (!found || b < best) {
				best = b
				found = true
			}
		}
	}
	return best, found
}

// MinAvailable returns the minimum availability over the window [t0, t1).
func (c *Calendar) MinAvailable(t0, t1 float64) int {
	minAvail := c.Available(t0)
	t := t0
	for {
		b, ok := c.NextBoundary(t)
		if !ok || b >= t1 {
			return minAvail
		}
		if a := c.Available(b); a < minAvail {
			minAvail = a
		}
		t = b
	}
}

// Reservations returns a copy of the sorted reservation list.
func (c *Calendar) Reservations() []Reservation {
	return append([]Reservation(nil), c.reservations...)
}
