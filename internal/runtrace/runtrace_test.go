package runtrace_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/runtrace"
	"repro/internal/trace"
	"repro/internal/workload"
)

func rjob(id int, dur float64, procs int, release float64) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: release,
		SeqTime: dur * float64(procs), MinProcs: procs, MaxProcs: procs,
		Model: workload.Linear{},
	}
}

// runTraced runs a tiny FCFS cluster with the recorder attached and
// returns the sealed trace.
func runTraced(t *testing.T, rec *runtrace.Recorder, jobs []*workload.Job) runtrace.CellTrace {
	t.Helper()
	s, err := cluster.New(des.New(), 4, 1, cluster.FCFSPolicy{}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(s, "")
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return rec.Finish(0, "fcfs")
}

func TestRecorderEventSequence(t *testing.T) {
	tr := runTraced(t, runtrace.NewRecorder(0), []*workload.Job{
		rjob(1, 10, 4, 0), // full machine
		rjob(2, 5, 2, 1),  // waits for job 1
	})
	want := []struct {
		typ runtrace.EventType
		job int32
		t   float64
	}{
		{runtrace.EvSubmit, 1, 0},
		{runtrace.EvSubmit, 2, 1},
		{runtrace.EvStart, 1, 0},
		{runtrace.EvStart, 2, 10},
		{runtrace.EvFinish, 1, 10},
		{runtrace.EvFinish, 2, 15},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(tr.Events), len(want), tr.Events)
	}
	// Events are recorded in simulation order: both submits fire before
	// job 1 starts (arrival events schedule the reschedule pass).
	byKey := map[[2]int32]float64{}
	for _, e := range tr.Events {
		byKey[[2]int32{int32(e.Type), e.Job}] = e.T
	}
	for _, w := range want {
		got, ok := byKey[[2]int32{int32(w.typ), w.job}]
		if !ok {
			t.Fatalf("missing event %v job %d", w.typ, w.job)
		}
		if got != w.t {
			t.Errorf("event %v job %d at t=%v, want %v", w.typ, w.job, got, w.t)
		}
	}
	n := tr.Totals()
	if n.Submits != 2 || n.Starts != 2 || n.Finishes != 2 || n.Kills != 0 {
		t.Fatalf("totals %+v", n)
	}
	if tr.Capacity() != 4 {
		t.Fatalf("capacity %d, want 4", tr.Capacity())
	}
}

func TestRecorderCrashKillRequeue(t *testing.T) {
	s, err := cluster.New(des.New(), 4, 1, cluster.FCFSPolicy{}, cluster.KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	rec := runtrace.NewRecorder(0)
	rec.Attach(s, "")
	if err := s.Submit(rjob(1, 100, 4, 0)); err != nil {
		t.Fatal(err)
	}
	// Crash the whole machine at t=10: the running job is killed and
	// requeued, capacity returns at t=20.
	if err := s.DES.At(10, func() {
		if err := s.Crash(4, 20); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	tr := rec.Finish(0, "")
	n := tr.Totals()
	if n.Crashes != 1 || n.Repairs != 1 {
		t.Fatalf("crashes %d repairs %d, want 1/1", n.Crashes, n.Repairs)
	}
	if n.Kills != 1 || n.Requeues != 1 {
		t.Fatalf("kills %d requeues %d, want 1/1", n.Kills, n.Requeues)
	}
	if n.Finishes != 1 {
		t.Fatalf("finishes %d, want 1 (job restarts after repair)", n.Finishes)
	}
}

func TestRecorderCapDrops(t *testing.T) {
	rec := runtrace.NewRecorder(3)
	tr := runTraced(t, rec, []*workload.Job{
		rjob(1, 10, 4, 0), rjob(2, 5, 2, 1),
	})
	if len(tr.Events) != 3 {
		t.Fatalf("stored %d events, want 3", len(tr.Events))
	}
	if tr.Dropped != 3 {
		t.Fatalf("dropped %d, want 3", tr.Dropped)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var rec *runtrace.Recorder
	rec.Record(1, runtrace.EvSubmit, 1, 1, 0)
	if rec.Len() != 0 {
		t.Fatal("nil recorder stored an event")
	}
	tr := rec.Finish(3, "x")
	if tr.Cell != 3 || tr.Label != "x" || len(tr.Events) != 0 {
		t.Fatalf("nil Finish: %+v", tr)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	traces := []runtrace.CellTrace{
		{
			Cell: 0, Label: "easy",
			Clusters: []runtrace.ClusterInfo{{M: 64}},
			Events: []runtrace.Event{
				{T: 0, Job: 1, Procs: 8, Type: runtrace.EvSubmit},
				{T: 0.1, Job: 1, Procs: 8, Type: runtrace.EvStart},
				{T: 1e6, Job: 1, Procs: 8, Type: runtrace.EvFinish},
				{T: 2.5, Job: -1, Procs: 4, Type: runtrace.EvCrash},
				{T: 3.75, Job: -1, Procs: 4, Type: runtrace.EvRepair},
			},
		},
		{
			Cell: 1, Label: "grid \"odd\" label",
			Clusters: []runtrace.ClusterInfo{{Name: "big", M: 64}, {Name: "tiny", M: 16}},
			Events: []runtrace.Event{
				{T: 0.30000000000000004, Job: 7, Procs: 2, Type: runtrace.EvSubmit, Cluster: 1},
				{T: 5, Job: 7, Procs: 2, Type: runtrace.EvMigrate, Cluster: 0},
			},
			Dropped: 2,
		},
	}
	var buf bytes.Buffer
	if err := runtrace.WriteJSONL(&buf, traces); err != nil {
		t.Fatal(err)
	}
	lines, err := runtrace.ParseLines(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// 2 meta lines + 7 event lines.
	if len(lines) != 9 {
		t.Fatalf("got %d lines, want 9", len(lines))
	}
	rebuilt, err := runtrace.Rebuild(lines)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rebuilt, traces) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", rebuilt, traces)
	}
	// Determinism: re-serializing the rebuilt traces is byte-identical.
	var buf2 bytes.Buffer
	if err := runtrace.WriteJSONL(&buf2, rebuilt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialized trace differs")
	}
}

func TestBinSeries(t *testing.T) {
	tr := runtrace.CellTrace{
		Clusters: []runtrace.ClusterInfo{{M: 4}},
		Events: []runtrace.Event{
			{T: 0, Job: 1, Procs: 4, Type: runtrace.EvSubmit},
			{T: 0, Job: 2, Procs: 2, Type: runtrace.EvSubmit},
			{T: 0, Job: 1, Procs: 4, Type: runtrace.EvStart},
			{T: 10, Job: 1, Procs: 4, Type: runtrace.EvFinish},
			{T: 10, Job: 2, Procs: 2, Type: runtrace.EvStart},
			{T: 20, Job: 2, Procs: 2, Type: runtrace.EvFinish},
		},
	}
	s := runtrace.BinSeries(tr, 2)
	if s.Horizon != 20 || s.Capacity != 4 {
		t.Fatalf("horizon %v capacity %d", s.Horizon, s.Capacity)
	}
	if s.Util[0] != 1 || s.Util[1] != 0.5 {
		t.Fatalf("util %v, want [1 0.5]", s.Util)
	}
	// Queue: both jobs queued at 0 (instantaneously), job 2 waits until
	// t=10 → depth 1 over [0,10), 0 after.
	if s.Queue[0] != 1 || s.Queue[1] != 0 {
		t.Fatalf("queue %v, want [1 0]", s.Queue)
	}
	if s.MaxQueue != 2 {
		t.Fatalf("max queue %d, want 2 (both queued at t=0)", s.MaxQueue)
	}
	if s.MeanUtil != 0.75 {
		t.Fatalf("mean util %v, want 0.75", s.MeanUtil)
	}
}

func TestBinSeriesBEKillsDoNotCorrupt(t *testing.T) {
	// A best-effort kill is non-job-scoped (job -1, no recorded start):
	// busy accounting must not go negative.
	tr := runtrace.CellTrace{
		Clusters: []runtrace.ClusterInfo{{M: 2}},
		Events: []runtrace.Event{
			{T: 0, Job: 1, Procs: 2, Type: runtrace.EvSubmit},
			{T: 0, Job: 1, Procs: 2, Type: runtrace.EvStart},
			{T: 1, Job: -1, Procs: 1, Type: runtrace.EvKill},
			{T: 4, Job: 1, Procs: 2, Type: runtrace.EvFinish},
		},
	}
	s := runtrace.BinSeries(tr, 1)
	if s.Util[0] != 1 {
		t.Fatalf("util %v, want [1]", s.Util)
	}
}

func TestExportSWFRoundTrip(t *testing.T) {
	tr := runTraced(t, runtrace.NewRecorder(0), []*workload.Job{
		// Submitted out of order: export must sort by (submit, id).
		rjob(3, 4, 2, 5),
		rjob(1, 10, 4, 0),
		rjob(2, 5, 2, 5),
	})
	var buf bytes.Buffer
	n, err := runtrace.ExportSWF(&buf, tr)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("exported %d jobs, want 3", n)
	}
	recs, err := trace.ReadSWFRecords(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read back %d records", len(recs))
	}
	// Sorted by (submit, id): job 1 (t=0), then jobs 2 and 3 (t=5).
	if recs[0].ID != 1 || recs[1].ID != 2 || recs[2].ID != 3 {
		t.Fatalf("order %d %d %d, want 1 2 3", recs[0].ID, recs[1].ID, recs[2].ID)
	}
	for _, r := range recs {
		if r.Runtime <= 0 || r.Procs <= 0 || r.Wait < 0 {
			t.Fatalf("bad record %+v", r)
		}
	}
}

func TestExportSWFSkipsUnfinished(t *testing.T) {
	tr := runtrace.CellTrace{Events: []runtrace.Event{
		{T: 0, Job: 1, Procs: 1, Type: runtrace.EvSubmit},
		{T: 0, Job: 2, Procs: 1, Type: runtrace.EvSubmit},
		{T: 0, Job: 2, Procs: 1, Type: runtrace.EvStart},
		{T: 3, Job: 2, Procs: 1, Type: runtrace.EvFinish},
	}}
	var buf bytes.Buffer
	n, err := runtrace.ExportSWF(&buf, tr)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("exported %d jobs, want 1 (job 1 never finished)", n)
	}
}

func BenchmarkRecord(b *testing.B) {
	rec := runtrace.NewRecorder(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Record(float64(i), runtrace.EvSubmit, i, 4, 0)
	}
}
