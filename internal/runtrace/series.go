package runtrace

// Series is a time-binned view of one trace: per-bin mean utilization
// (busy processors over capacity) and mean queue depth, integrated
// piecewise over the virtual-time horizon.
type Series struct {
	// Horizon is the virtual time spanned (last event timestamp).
	Horizon float64
	// Capacity is the summed processor count of the traced clusters.
	Capacity int
	// Util holds per-bin mean utilization in [0, 1].
	Util []float64
	// Queue holds per-bin mean queue depth (jobs waiting).
	Queue []float64
	// MaxQueue is the peak instantaneous queue depth.
	MaxQueue int
	// MeanUtil is the horizon-wide mean utilization in [0, 1].
	MeanUtil float64
}

// BinSeries integrates the trace into bins equal-width time bins.
// Busy-processor accounting is guarded by a running-job map so kill
// events without a recorded start (best-effort tasks) cannot drive the
// counters negative; queue accounting likewise dedupes per job, so a
// migrated job counts once while queued anywhere in the grid.
func BinSeries(tr CellTrace, bins int) Series {
	if bins <= 0 {
		bins = 1
	}
	s := Series{Capacity: tr.Capacity()}
	for _, e := range tr.Events {
		if e.T > s.Horizon {
			s.Horizon = e.T
		}
	}
	s.Util = make([]float64, bins)
	s.Queue = make([]float64, bins)
	if s.Horizon <= 0 || len(tr.Events) == 0 {
		return s
	}
	binW := s.Horizon / float64(bins)

	// accumulate adds the piecewise-constant levels over [from, to).
	utilArea := make([]float64, bins)
	queueArea := make([]float64, bins)
	accumulate := func(from, to float64, busy, queued int) {
		if to <= from {
			return
		}
		for b := int(from / binW); b < bins; b++ {
			lo := float64(b) * binW
			hi := lo + binW
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi <= lo {
				if lo >= to {
					break
				}
				continue
			}
			utilArea[b] += float64(busy) * (hi - lo)
			queueArea[b] += float64(queued) * (hi - lo)
		}
	}

	running := map[int32]int32{} // job -> procs occupied
	queued := map[int32]bool{}
	busy, depth := 0, 0
	prev := 0.0
	var busyArea float64
	for _, e := range tr.Events {
		accumulate(prev, e.T, busy, depth)
		busyArea += float64(busy) * (e.T - prev)
		prev = e.T
		switch e.Type {
		case EvSubmit, EvRequeue:
			if !queued[e.Job] {
				queued[e.Job] = true
				depth++
			}
		case EvStart:
			if queued[e.Job] {
				delete(queued, e.Job)
				depth--
			}
			running[e.Job] += e.Procs
			busy += int(e.Procs)
		case EvFinish, EvKill:
			if p, ok := running[e.Job]; ok {
				busy -= int(p)
				delete(running, e.Job)
			}
		}
		if depth > s.MaxQueue {
			s.MaxQueue = depth
		}
	}
	denom := binW * float64(s.Capacity)
	for b := 0; b < bins; b++ {
		if denom > 0 {
			s.Util[b] = utilArea[b] / denom
		}
		s.Queue[b] = queueArea[b] / binW
	}
	if s.Capacity > 0 {
		s.MeanUtil = busyArea / (s.Horizon * float64(s.Capacity))
	}
	return s
}
