package runtrace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSONL streams traces as JSON Lines. Each trace contributes one
// meta line followed by one line per event, e.g.
//
//	{"cell":0,"label":"easy","ev":"meta","clusters":[{"m":64}],"events":412}
//	{"cell":0,"label":"easy","ev":"submit","t":0,"job":1,"procs":8}
//	{"cell":0,"label":"easy","ev":"start","t":0,"job":1,"procs":8}
//
// Event lines omit "job" for non-job-scoped events (crash/repair) and
// carry a "cluster" field only when the cluster has a name. Floats use
// Go's %g shortest form, which round-trips exactly — equal traces
// always serialize to identical bytes.
func WriteJSONL(w io.Writer, traces []CellTrace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	for i := range traces {
		var err error
		buf, err = writeTrace(bw, &traces[i], buf)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeTrace(bw *bufio.Writer, tr *CellTrace, buf []byte) ([]byte, error) {
	prefix := []byte(`{"cell":` + strconv.Itoa(tr.Cell))
	if tr.Label != "" {
		lab, err := json.Marshal(tr.Label)
		if err != nil {
			return buf, err
		}
		prefix = append(prefix, `,"label":`...)
		prefix = append(prefix, lab...)
	}
	clusters, err := json.Marshal(tr.Clusters)
	if err != nil {
		return buf, err
	}
	meta := append([]byte(nil), prefix...)
	meta = append(meta, `,"ev":"meta","clusters":`...)
	meta = append(meta, clusters...)
	meta = append(meta, `,"events":`...)
	meta = strconv.AppendInt(meta, int64(len(tr.Events)), 10)
	if tr.Dropped > 0 {
		meta = append(meta, `,"dropped":`...)
		meta = strconv.AppendInt(meta, int64(tr.Dropped), 10)
	}
	meta = append(meta, "}\n"...)
	if _, err := bw.Write(meta); err != nil {
		return buf, err
	}

	// Pre-marshal the per-cluster name suffixes once.
	suffixes := make([][]byte, len(tr.Clusters))
	for i, c := range tr.Clusters {
		if c.Name == "" {
			continue
		}
		name, err := json.Marshal(c.Name)
		if err != nil {
			return buf, err
		}
		s := append([]byte(`,"cluster":`), name...)
		suffixes[i] = s
	}

	for _, e := range tr.Events {
		buf = buf[:0]
		buf = append(buf, prefix...)
		buf = append(buf, `,"ev":"`...)
		buf = append(buf, e.Type.String()...)
		buf = append(buf, `","t":`...)
		buf = strconv.AppendFloat(buf, e.T, 'g', -1, 64)
		if e.Job >= 0 {
			buf = append(buf, `,"job":`...)
			buf = strconv.AppendInt(buf, int64(e.Job), 10)
		}
		buf = append(buf, `,"procs":`...)
		buf = strconv.AppendInt(buf, int64(e.Procs), 10)
		if int(e.Cluster) < len(suffixes) && suffixes[e.Cluster] != nil {
			buf = append(buf, suffixes[e.Cluster]...)
		}
		buf = append(buf, "}\n"...)
		if _, err := bw.Write(buf); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// Line is the decoded form of one JSONL trace line — either a meta line
// (Ev == "meta", Clusters/Events/Dropped populated) or an event line.
// Job is -1 when the line carried no job id.
type Line struct {
	Cell     int           `json:"cell"`
	Label    string        `json:"label,omitempty"`
	Ev       string        `json:"ev"`
	T        float64       `json:"t"`
	Job      int           `json:"job"`
	Procs    int           `json:"procs"`
	Cluster  string        `json:"cluster,omitempty"`
	Clusters []ClusterInfo `json:"clusters,omitempty"`
	Events   int           `json:"events,omitempty"`
	Dropped  int           `json:"dropped,omitempty"`
}

// ParseLines decodes a JSONL trace stream. Blank lines are skipped.
func ParseLines(r io.Reader) ([]Line, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var lines []Line
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		ln := Line{Job: -1}
		if err := json.Unmarshal(raw, &ln); err != nil {
			return nil, fmt.Errorf("runtrace: line %d: %w", len(lines)+1, err)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return lines, nil
}

// Rebuild reassembles CellTraces from decoded lines (the inverse of
// WriteJSONL for well-formed streams). Traces are keyed by (cell,
// label) in order of first appearance; event lines before any meta line
// for their key start an implicit trace with no cluster metadata.
func Rebuild(lines []Line) ([]CellTrace, error) {
	type key struct {
		cell  int
		label string
	}
	index := map[key]int{}
	var traces []CellTrace
	at := func(k key) *CellTrace {
		if i, ok := index[k]; ok {
			return &traces[i]
		}
		index[k] = len(traces)
		traces = append(traces, CellTrace{Cell: k.cell, Label: k.label})
		return &traces[len(traces)-1]
	}
	for i, ln := range lines {
		tr := at(key{ln.Cell, ln.Label})
		if ln.Ev == "meta" {
			tr.Clusters = ln.Clusters
			tr.Dropped = ln.Dropped
			continue
		}
		typ, ok := EventTypeOf(ln.Ev)
		if !ok {
			return nil, fmt.Errorf("runtrace: line %d: unknown event %q", i+1, ln.Ev)
		}
		ci := 0
		if ln.Cluster != "" {
			ci = -1
			for j, c := range tr.Clusters {
				if c.Name == ln.Cluster {
					ci = j
					break
				}
			}
			if ci < 0 {
				return nil, fmt.Errorf("runtrace: line %d: unknown cluster %q", i+1, ln.Cluster)
			}
		}
		tr.Events = append(tr.Events, Event{
			T: ln.T, Job: int32(ln.Job), Procs: int32(ln.Procs),
			Type: typ, Cluster: uint8(ci),
		})
	}
	return traces, nil
}
