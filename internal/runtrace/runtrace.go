// Package runtrace records structured per-run event traces. A Recorder
// attaches to the nil-checked observer hooks of a cluster simulation
// (and, via Record, to the grid exchange loop) and captures a compact
// typed event stream: submissions, starts, finishes, kills, requeues,
// crashes, repairs and migrations, each stamped with virtual time, job
// id, processor count and cluster index.
//
// The package is pay-for-what-you-use: a nil *Recorder is a valid
// no-op, every hook installed by Attach exists only when tracing was
// requested, and events are fixed-size values appended to one slice —
// no per-event allocation beyond slice growth.
package runtrace

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// EventType enumerates the recorded event kinds.
type EventType uint8

const (
	// EvSubmit marks a local job entering a waiting queue (first
	// arrival or migration injection at the destination).
	EvSubmit EventType = iota
	// EvStart marks a local job beginning execution.
	EvStart
	// EvFinish marks a local job completing.
	EvFinish
	// EvKill marks a running job or best-effort task evicted by a
	// capacity loss.
	EvKill
	// EvRequeue marks a killed local job re-entering its waiting queue.
	EvRequeue
	// EvCrash marks a capacity loss (Procs processors taken offline).
	EvCrash
	// EvRepair marks a capacity return (Procs processors back online).
	EvRepair
	// EvMigrate marks a queued job moved between clusters by the grid
	// exchange round (Cluster is the destination).
	EvMigrate
)

var eventNames = [...]string{
	EvSubmit:  "submit",
	EvStart:   "start",
	EvFinish:  "finish",
	EvKill:    "kill",
	EvRequeue: "requeue",
	EvCrash:   "crash",
	EvRepair:  "repair",
	EvMigrate: "migrate",
}

// String returns the wire name of the event type ("submit", ...).
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return "unknown"
}

// EventTypeOf resolves a wire name back to its EventType; ok is false
// for unknown names.
func EventTypeOf(name string) (EventType, bool) {
	for i, n := range eventNames {
		if n == name {
			return EventType(i), true
		}
	}
	return 0, false
}

// Event is one recorded simulation event. The layout is deliberately
// compact (24 bytes) so multi-million-event traces stay cheap: virtual
// time, a job id (-1 for events that are not job-scoped, e.g. crash and
// repair), a processor count, the event type and the cluster index into
// the owning trace's Clusters list.
type Event struct {
	T       float64
	Job     int32
	Procs   int32
	Type    EventType
	Cluster uint8
}

// ClusterInfo describes one traced cluster: a human label (empty for a
// single anonymous cluster) and its processor count.
type ClusterInfo struct {
	Name string `json:"name,omitempty"`
	M    int    `json:"m"`
}

// CellTrace is the finished trace of one cell sub-run: the cell index
// in row-major table order, a label distinguishing sub-runs that share
// a cell (usually the policy name), the traced clusters, the event
// stream in simulation order, and how many events were dropped once the
// recorder's cap was reached.
type CellTrace struct {
	Cell     int
	Label    string
	Clusters []ClusterInfo
	Events   []Event
	Dropped  int
}

// Recorder accumulates events for one cell sub-run. The zero value is
// unusable; construct with NewRecorder. A nil *Recorder is a valid
// no-op receiver for every method, so callers can thread an optional
// recorder without branching.
type Recorder struct {
	clusters []ClusterInfo
	events   []Event
	max      int
	dropped  int
}

// NewRecorder returns a recorder bounded to maxEvents (0 = unlimited).
// Once the cap is reached further events are counted as dropped rather
// than stored, so a runaway scenario cannot exhaust memory.
func NewRecorder(maxEvents int) *Recorder {
	return &Recorder{max: maxEvents}
}

// Record appends one event. Job is the job id (-1 when not job-scoped)
// and clusterIdx indexes the Attach order.
func (r *Recorder) Record(t float64, typ EventType, job, procs, clusterIdx int) {
	if r == nil {
		return
	}
	if r.max > 0 && len(r.events) >= r.max {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{
		T: t, Job: int32(job), Procs: int32(procs),
		Type: typ, Cluster: uint8(clusterIdx),
	})
}

// Attach registers the cluster under the given label and chains the
// recorder onto the simulation's observer hooks, preserving any hooks
// already installed (fault engines and grid routers set OnBEKilled
// before tracing attaches). It returns the cluster index used for the
// recorded events, or -1 on a nil recorder.
func (r *Recorder) Attach(s *cluster.Sim, label string) int {
	if r == nil {
		return -1
	}
	ci := len(r.clusters)
	r.clusters = append(r.clusters, ClusterInfo{Name: label, M: s.M})

	prevSubmit := s.OnLocalSubmit
	s.OnLocalSubmit = func(j *workload.Job, now float64) {
		r.Record(now, EvSubmit, j.ID, j.MinProcs, ci)
		if prevSubmit != nil {
			prevSubmit(j, now)
		}
	}
	prevStart := s.OnLocalStart
	s.OnLocalStart = func(j *workload.Job, procs int, now float64) {
		r.Record(now, EvStart, j.ID, procs, ci)
		if prevStart != nil {
			prevStart(j, procs, now)
		}
	}
	prevDone := s.OnLocalDone
	s.OnLocalDone = func(c metrics.Completion) {
		r.Record(c.End, EvFinish, c.Job.ID, c.Procs, ci)
		if prevDone != nil {
			prevDone(c)
		}
	}
	prevKilled := s.OnLocalKilled
	s.OnLocalKilled = func(j *workload.Job, procs int, now float64) {
		r.Record(now, EvKill, j.ID, procs, ci)
		r.Record(now, EvRequeue, j.ID, j.MinProcs, ci)
		if prevKilled != nil {
			prevKilled(j, procs, now)
		}
	}
	prevBEKilled := s.OnBEKilled
	s.OnBEKilled = func(t cluster.BETask) {
		// Best-effort task indexes live in a different id space from
		// local job ids, so the kill is recorded as non-job-scoped.
		r.Record(s.DES.Now(), EvKill, -1, 1, ci)
		if prevBEKilled != nil {
			prevBEKilled(t)
		}
	}
	prevCrash := s.OnCrash
	s.OnCrash = func(procs int, now float64) {
		r.Record(now, EvCrash, -1, procs, ci)
		if prevCrash != nil {
			prevCrash(procs, now)
		}
	}
	prevRepair := s.OnRepair
	s.OnRepair = func(procs int, now float64) {
		r.Record(now, EvRepair, -1, procs, ci)
		if prevRepair != nil {
			prevRepair(procs, now)
		}
	}
	return ci
}

// Len reports the number of recorded events (0 on a nil recorder).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Finish seals the recorder into a CellTrace for the given cell index
// and label. The recorder must not be used afterwards. Nil recorders
// return a zero trace.
func (r *Recorder) Finish(cell int, label string) CellTrace {
	if r == nil {
		return CellTrace{Cell: cell, Label: label}
	}
	return CellTrace{
		Cell:     cell,
		Label:    label,
		Clusters: r.clusters,
		Events:   r.events,
		Dropped:  r.dropped,
	}
}

// Totals counts events by type for invariant checks and summaries.
type Totals struct {
	Submits, Starts, Finishes, Kills, Requeues int
	Crashes, Repairs, Migrates                 int
}

// Totals tallies the trace's events by type.
func (tr *CellTrace) Totals() Totals {
	var n Totals
	for _, e := range tr.Events {
		switch e.Type {
		case EvSubmit:
			n.Submits++
		case EvStart:
			n.Starts++
		case EvFinish:
			n.Finishes++
		case EvKill:
			n.Kills++
		case EvRequeue:
			n.Requeues++
		case EvCrash:
			n.Crashes++
		case EvRepair:
			n.Repairs++
		case EvMigrate:
			n.Migrates++
		}
	}
	return n
}

// Capacity sums the traced clusters' processor counts.
func (tr *CellTrace) Capacity() int {
	m := 0
	for _, c := range tr.Clusters {
		m += c.M
	}
	return m
}
