package runtrace

import (
	"io"
	"sort"

	"repro/internal/trace"
)

// ExportSWF writes the trace's completed local jobs as an SWF archive
// that the replay scenario kind (and loadgen) can consume: one record
// per job with the original submit time, the wait until its final
// start, its final runtime and processor count. Jobs that never
// finished (still queued or killed without completing) are skipped;
// jobs killed and restarted contribute their last start/finish pair.
// Records are sorted by (submit, id) so the archive satisfies the
// non-decreasing-release contract of streamed admission. Returns the
// number of exported jobs.
func ExportSWF(w io.Writer, tr CellTrace) (int, error) {
	type jobState struct {
		submit        float64
		start, finish float64
		procs         int32
		hasSubmit     bool
		hasFinish     bool
	}
	states := map[int32]*jobState{}
	order := []int32{}
	at := func(id int32) *jobState {
		if st, ok := states[id]; ok {
			return st
		}
		st := &jobState{}
		states[id] = st
		order = append(order, id)
		return st
	}
	for _, e := range tr.Events {
		if e.Job < 0 {
			continue
		}
		switch e.Type {
		case EvSubmit:
			st := at(e.Job)
			if !st.hasSubmit {
				st.submit = e.T
				st.hasSubmit = true
			}
		case EvStart:
			st := at(e.Job)
			st.start = e.T
			st.procs = e.Procs
			st.hasFinish = false
		case EvFinish:
			st := at(e.Job)
			st.finish = e.T
			st.hasFinish = true
		}
	}

	recs := make([]trace.SWFRecord, 0, len(order))
	for _, id := range order {
		st := states[id]
		if !st.hasSubmit || !st.hasFinish || st.procs <= 0 {
			continue
		}
		recs = append(recs, trace.SWFRecord{
			ID:     int(id),
			Submit: st.submit,
			Wait:   st.start - st.submit,
			// The runtime is the recorded span, not a model
			// evaluation, so the replay reproduces the source run's
			// schedule on the same platform and policy.
			Runtime: st.finish - st.start,
			Procs:   int(st.procs),
			Weight:  1,
		})
	}
	sort.SliceStable(recs, func(i, k int) bool {
		if recs[i].Submit != recs[k].Submit {
			return recs[i].Submit < recs[k].Submit
		}
		return recs[i].ID < recs[k].ID
	})
	sw := trace.NewSWFWriter(w)
	for _, rec := range recs {
		if err := sw.Write(rec); err != nil {
			return 0, err
		}
	}
	return len(recs), sw.Flush()
}
