package experiments

import (
	"fmt"

	"repro/internal/bicriteria"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/dlt"
	"repro/internal/lowerbound"
	"repro/internal/moldable"
	"repro/internal/rigid"
	"repro/internal/scenario"
	"repro/internal/smart"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ablationAllotmentRun compares the MRT knapsack allotment against the
// greedy γ(λ) allotment (DESIGN.md ablation 1). Params: "ms", "n",
// "eps".
func ablationAllotmentRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"ms": scenario.IntsParam, "n": scenario.IntParam, "eps": scenario.FloatParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "Ablation — MRT allotment selection: knapsack (paper) vs greedy γ(λ)"),
		"m", "n", "knapsack ratio", "greedy ratio", "knapsack iters", "greedy iters")
	ms := spec.Ints("ms", []int{32, 100})
	eps := spec.Float("eps", 0.01)
	if err := runRowCells(t, sc, len(ms), func(i int) ([]any, error) {
		m := ms[i]
		n := sc.jobs(spec.Int("n", 300))
		jobs := workload.Parallel(workload.GenConfig{N: n, M: m, Seed: seed + uint64(i)})
		lb := lowerbound.CmaxDual(jobs, m)
		knap, err := moldable.MRTWithAllot(jobs, m, eps, moldable.SelectAllotments)
		if err != nil {
			return nil, err
		}
		greedy, err := moldable.MRTWithAllot(jobs, m, eps, moldable.GreedyAllotments)
		if err != nil {
			return nil, err
		}
		return []any{m, n,
			knap.Schedule.Makespan() / lb, greedy.Schedule.Makespan() / lb,
			knap.Iterations, greedy.Iterations}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// AblationAllotment is the compatibility entry point for ablation 1.
func AblationAllotment(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := ablationAllotmentRun(mustSpec("ablation-allotment"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// ablationDoublingBaseRun compares initial-deadline choices in the
// bi-criteria algorithm: smallest job time (default) vs the instance
// lower bound vs an oversized base (DESIGN.md ablation 2). Params:
// "m", "n".
func ablationDoublingBaseRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"m": scenario.IntParam, "n": scenario.IntParam}); err != nil {
		return nil, err
	}
	t := newTable(1,
		title(spec, "Ablation — bi-criteria initial deadline d"),
		"d choice", "batches", "Cmax ratio", "ΣwC ratio")
	m := spec.Int("m", 64)
	n := sc.jobs(spec.Int("n", 300))
	jobs := workload.Parallel(workload.GenConfig{N: n, M: m, Seed: seed, Weighted: true})
	lb := lowerbound.CmaxDual(jobs, m)
	choices := []struct {
		name string
		d    float64
	}{
		{"min job time (default)", 0},
		{"instance LB", lb},
		{"8×LB (oversized)", 8 * lb},
	}
	if err := runRowCells(t, sc, len(choices), func(i int) ([]any, error) {
		res, err := bicriteria.Schedule(jobs, m, bicriteria.Options{
			InitialDeadline: choices[i].d,
		})
		if err != nil {
			return nil, err
		}
		return []any{choices[i].name, len(res.Batches), res.CmaxRatio(), res.WCRatio()}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// AblationDoublingBase is the compatibility entry point for ablation 2.
func AblationDoublingBase(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := ablationDoublingBaseRun(mustSpec("ablation-doubling-base"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// ablationShelfFillRun compares SMART's first-fit shelf filling against
// best-fit (DESIGN.md ablation 3). Params: "ms", "n".
func ablationShelfFillRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"ms": scenario.IntsParam, "n": scenario.IntParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "Ablation — SMART shelf filling rule"),
		"m", "n", "first-fit ΣwC", "best-fit ΣwC", "FF shelves", "BF shelves")
	ms := spec.Ints("ms", []int{16, 64})
	if err := runRowCells(t, sc, len(ms), func(i int) ([]any, error) {
		m := ms[i]
		n := sc.jobs(spec.Int("n", 400))
		jobs := workload.Parallel(workload.GenConfig{
			N: n, M: m, Seed: seed + uint64(i), Weighted: true, RigidFraction: 1,
		})
		lb := lowerbound.SumWeightedCompletion(jobs, m)
		ff, nFF, err := smart.Schedule(jobs, m, smart.FirstFit)
		if err != nil {
			return nil, err
		}
		bf, nBF, err := smart.Schedule(jobs, m, smart.BestFit)
		if err != nil {
			return nil, err
		}
		return []any{m, n,
			ff.Report().SumWeightedCompletion / lb,
			bf.Report().SumWeightedCompletion / lb,
			nFF, nBF}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// AblationShelfFill is the compatibility entry point for ablation 3.
func AblationShelfFill(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := ablationShelfFillRun(mustSpec("ablation-shelf-fill"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// ablationChunkRun sweeps the self-scheduling chunk size under latency
// (DESIGN.md ablation 4). Params: "w", "latency", "chunks".
func ablationChunkRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"w": scenario.FloatParam, "latency": scenario.FloatParam, "chunks": scenario.FloatsParam}); err != nil {
		return nil, err
	}
	W := spec.Float("w", 10000)
	latency := spec.Float("latency", 1)
	t := newTable(1,
		title(spec, fmt.Sprintf("Ablation — DLT self-scheduling chunk size (W=%g, latency %g)", W, latency)),
		"chunk", "makespan", "messages", "vs 1-round")
	mkStar := func() *dlt.Star { return dlt.Bus([]float64{1, 1, 1, 1, 1, 1, 1, 1}, 0.05, latency) }
	one, err := dlt.SingleRound(mkStar(), W)
	if err != nil {
		return nil, err
	}
	chunks := spec.Floats("chunks", []float64{W / 1000, W / 100, W / 20, W / 8})
	if err := runRowCells(t, sc, len(chunks), func(i int) ([]any, error) {
		d, err := dlt.SelfSchedule(mkStar(), W, chunks[i])
		if err != nil {
			return nil, err
		}
		return []any{chunks[i], d.Makespan, d.Messages, d.Makespan / one.Makespan}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// AblationChunk is the compatibility entry point for ablation 4.
func AblationChunk(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := ablationChunkRun(mustSpec("ablation-chunk"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// ablationKillPolicyRun compares best-effort eviction rules on a loaded
// cluster (DESIGN.md ablation 5). Params: "n", "tasks".
func ablationKillPolicyRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"n": scenario.IntParam, "tasks": scenario.IntParam}); err != nil {
		return nil, err
	}
	t := newTable(1,
		title(spec, "Ablation — best-effort kill policy (single 64-proc cluster)"),
		"policy", "BE done", "kills", "wasted work", "local Δ")
	n := sc.jobs(spec.Int("n", 60))
	kps := []struct {
		name string
		kill cluster.KillPolicy
	}{
		{"kill-newest", cluster.KillNewest},
		{"kill-largest-remaining", cluster.KillLargestRemaining},
	}
	if err := runRowCells(t, sc, len(kps), func(i int) ([]any, error) {
		jobs := workload.Parallel(workload.GenConfig{
			N: n, M: 64, Seed: seed, RigidFraction: 1, ArrivalRate: 0.01,
		})
		nBE := sc.jobs(spec.Int("tasks", 2000))
		sim := des.NewWithCapacity(len(jobs) + nBE)
		cs, err := cluster.New(sim, 64, 1, cluster.EASYPolicy{}, kps[i].kill)
		if err != nil {
			return nil, err
		}
		// Heterogeneous task lengths: the eviction choice matters only
		// when victims differ in remaining work.
		rng := stats.NewRNG(seed + 1000)
		for k := 0; k < nBE; k++ {
			cs.SubmitBestEffort(cluster.BETask{
				BagID: 0, Index: k, Duration: rng.Range(20, 600),
			})
		}
		for _, j := range jobs {
			if err := cs.Submit(j); err != nil {
				return nil, err
			}
		}
		if err := cs.Run(); err != nil {
			return nil, err
		}
		st := cs.BestEffort()
		return []any{kps[i].name, st.Completed, st.Killed, st.WastedWork, 0.0}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// AblationKillPolicy is the compatibility entry point for ablation 5.
func AblationKillPolicy(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := ablationKillPolicyRun(mustSpec("ablation-kill-policy"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// ablationCompactionRun measures the left-shift compaction post-pass
// (rigid.Compact) applied to the batch-structured bi-criteria schedules:
// batches leave idle steps at batch boundaries that compaction reclaims
// without moving any job later. Params: "m", "n".
func ablationCompactionRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"m": scenario.IntParam, "n": scenario.IntParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "Ablation — compaction post-pass on bi-criteria schedules"),
		"family", "n", "Cmax ratio", "compacted", "ΣwC ratio", "compacted ")
	m := spec.Int("m", 64)
	families := []bool{false, true}
	if err := runRowCells(t, sc, len(families), func(i int) ([]any, error) {
		parallel := families[i]
		family := "non-parallel"
		if parallel {
			family = "parallel"
		}
		n := sc.jobs(spec.Int("n", 300))
		cfg := workload.GenConfig{N: n, M: m, Seed: seed + uint64(i), Weighted: true}
		var jobs []*workload.Job
		if parallel {
			jobs = workload.Parallel(cfg)
		} else {
			jobs = workload.Sequential(cfg)
		}
		res, err := bicriteria.Schedule(jobs, m, bicriteria.Options{})
		if err != nil {
			return nil, err
		}
		compacted, err := rigid.Compact(res.Schedule)
		if err != nil {
			return nil, err
		}
		if err := compacted.Validate(); err != nil {
			return nil, err
		}
		cmaxLB := lowerbound.Cmax(jobs, m)
		wcLB := lowerbound.SumWeightedCompletion(jobs, m)
		return []any{family, n,
			res.Schedule.Makespan() / cmaxLB,
			compacted.Makespan() / cmaxLB,
			res.Schedule.Report().SumWeightedCompletion / wcLB,
			compacted.Report().SumWeightedCompletion / wcLB}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// AblationCompaction is the compatibility entry point for ablation 6.
func AblationCompaction(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := ablationCompactionRun(mustSpec("ablation-compaction"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}
