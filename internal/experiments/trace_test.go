package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runtrace"
	"repro/internal/scenario"
)

// tracedJSONL runs a spec and serializes its recorded traces.
func tracedJSONL(t *testing.T, spec *scenario.Spec, seed uint64, workers int) []byte {
	t.Helper()
	res, err := scenario.Run(spec, scenario.RunOptions{
		Seed:  seed,
		Scale: scenario.Scale{JobFactor: 20, Workers: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) == 0 {
		t.Fatal("traced run produced no traces")
	}
	var buf bytes.Buffer
	if err := runtrace.WriteJSONL(&buf, res.Traces); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminism: for a fixed seed the serialized trace is
// byte-identical between the sequential runner and the worker pool —
// the same contract the result tables honour — both on a healthy
// online run and under fault churn.
func TestTraceDeterminism(t *testing.T) {
	churn, ok := scenario.Lookup("churn")
	if !ok {
		t.Fatal("churn spec not registered")
	}
	tracedChurn := *churn // shallow copy: never mutate the shared catalog spec
	tracedChurn.Trace = &scenario.Trace{Events: true}
	specs := map[string]*scenario.Spec{
		"healthy-online": scenario.New("trace-online", "online",
			scenario.WithWorkload(scenario.Workload{N: 200, M: 32, RigidFraction: 0.5}),
			scenario.WithPolicies("fcfs", "easy"),
			scenario.WithParam("rates", []float64{0.1, 0.3}),
			scenario.WithTrace(scenario.Trace{Events: true}),
		),
		"churn": &tracedChurn,
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			seq := tracedJSONL(t, spec, 21, 0)
			par := tracedJSONL(t, spec, 21, 8)
			if !bytes.Equal(seq, par) {
				t.Fatalf("trace differs between sequential and parallel runs:\nsequential %d bytes, parallel %d bytes",
					len(seq), len(par))
			}
			// And across repeated invocations with the same seed.
			again := tracedJSONL(t, spec, 21, 4)
			if !bytes.Equal(seq, again) {
				t.Fatal("trace differs between runs with equal seeds")
			}
			diff := tracedJSONL(t, spec, 22, 0)
			if bytes.Equal(seq, diff) {
				t.Fatal("different seeds produced identical traces")
			}
		})
	}
}

// TestTraceUnsupportedKind: asking for a trace from a kind that does
// not record one is an error, not a silently empty trace.
func TestTraceUnsupportedKind(t *testing.T) {
	mrt, ok := scenario.Lookup("mrt")
	if !ok {
		t.Fatal("mrt spec not registered")
	}
	traced := *mrt
	traced.Trace = &scenario.Trace{Events: true}
	_, err := scenario.Run(&traced, scenario.RunOptions{Seed: 1, Scale: scenario.Scale{JobFactor: 20}})
	if err == nil || !strings.Contains(err.Error(), "does not record traces") {
		t.Fatalf("err = %v, want 'does not record traces'", err)
	}
}

// TestTraceMaxEventsDropped: the cap truncates storage but keeps the
// dropped count, so a clipped trace is detectable.
func TestTraceMaxEventsDropped(t *testing.T) {
	spec := scenario.New("trace-capped", "online",
		scenario.WithWorkload(scenario.Workload{N: 200, M: 32, RigidFraction: 1}),
		scenario.WithPolicies("fcfs"),
		scenario.WithParam("rates", []float64{0.3}),
		scenario.WithTrace(scenario.Trace{Events: true, MaxEvents: 10}),
	)
	res, err := scenario.Run(spec, scenario.RunOptions{Seed: 3, Scale: scenario.Scale{JobFactor: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(res.Traces))
	}
	tr := res.Traces[0]
	if len(tr.Events) != 10 {
		t.Fatalf("stored %d events, want 10", len(tr.Events))
	}
	if tr.Dropped == 0 {
		t.Fatal("no dropped count on a clipped trace")
	}
}

// finishOrder extracts the job-completion sequence from a trace.
func finishOrder(tr runtrace.CellTrace) []int32 {
	var order []int32
	for _, e := range tr.Events {
		if e.Type == runtrace.EvFinish {
			order = append(order, e.Job)
		}
	}
	return order
}

// TestReplayReproducesRecordedTrace: exporting a recorded trace as SWF
// and replaying it through the streaming "replay" kind on the same
// machine and policy reproduces the original completion order — a
// recorded run is a first-class workload input.
func TestReplayReproducesRecordedTrace(t *testing.T) {
	const m = 32
	src := scenario.New("trace-src", "online",
		// Rigid jobs only: the SWF record pins the allocation, so the
		// replay sees exactly the recorded shape.
		scenario.WithWorkload(scenario.Workload{N: 150, M: m, RigidFraction: 1}),
		scenario.WithPolicies("fcfs"),
		scenario.WithParam("rates", []float64{0.3}),
		scenario.WithTrace(scenario.Trace{Events: true}),
	)
	res, err := scenario.Run(src, scenario.RunOptions{Seed: 11, Scale: scenario.Scale{JobFactor: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(res.Traces))
	}
	rec := res.Traces[0]
	want := finishOrder(rec)
	if len(want) == 0 {
		t.Fatal("source run finished no jobs")
	}

	path := filepath.Join(t.TempDir(), "recorded.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := runtrace.ExportSWF(f, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("exported %d jobs, finished %d", n, len(want))
	}

	replay := scenario.New("trace-replay", "replay",
		scenario.WithPlatform(scenario.Platform{M: m}),
		scenario.WithPolicies("fcfs"),
		scenario.WithParam("swf", path),
		scenario.WithTrace(scenario.Trace{Events: true}),
	)
	res2, err := scenario.Run(replay, scenario.RunOptions{Seed: 99}) // seed is irrelevant: the workload is the file
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Traces) != 1 {
		t.Fatalf("replay: got %d traces, want 1", len(res2.Traces))
	}
	got := finishOrder(res2.Traces[0])
	if len(got) != len(want) {
		t.Fatalf("replay finished %d jobs, recorded run finished %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion order diverges at %d: replay job %d, recorded job %d", i, got[i], want[i])
		}
	}
}
