package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestReplayKindDeterministic: the replay kind is a pure function of
// (spec, seed) — two runs, including a parallel one, produce identical
// cells — and streaming changes nothing about the scores: a ring-retain
// run equals the discard run.
func TestReplayKindDeterministic(t *testing.T) {
	spec := mustSpec("replay")
	a, err := replayRun(spec, 7, Scale{JobFactor: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := replayRun(spec, 7, Scale{JobFactor: 20, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) == 0 || len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if !reflect.DeepEqual(a.Cells[i].Values, b.Cells[i].Values) {
			t.Fatalf("cell %d diverged: %v vs %v", i, a.Cells[i].Values, b.Cells[i].Values)
		}
	}

	ring := scenario.New("replay-ring", "replay",
		scenario.WithDesc("ring variant"),
		scenario.WithWorkload(*spec.Workload),
		scenario.WithParam("retain", "ring"), scenario.WithParam("ring", 16))
	c, err := replayRun(ring, 7, Scale{JobFactor: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if !reflect.DeepEqual(a.Cells[i].Values, c.Cells[i].Values) {
			t.Fatalf("retention changed scores at cell %d: %v vs %v", i, a.Cells[i].Values, c.Cells[i].Values)
		}
	}
}

// TestReplayKindSWF: params.swf streams a trace file; the resulting
// row matches replaying the same jobs materialized.
func TestReplayKindSWF(t *testing.T) {
	jobs := workload.Sequential(workload.GenConfig{N: 80, M: 8, Seed: 3, ArrivalRate: 1})
	recs := make([]trace.SWFRecord, len(jobs))
	for i, j := range jobs {
		recs[i] = trace.SWFRecord{ID: j.ID, Submit: j.Release, Wait: 0,
			Runtime: j.SeqTime, Procs: 1, Weight: j.Weight}
	}
	path := filepath.Join(t.TempDir(), "trace.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSWFRecords(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spec := scenario.New("replay-swf", "replay",
		scenario.WithDesc("swf variant"),
		scenario.WithPolicies("fcfs", "easy"),
		scenario.WithPlatform(scenario.Platform{M: 8}),
		scenario.WithParam("swf", path))
	res, err := replayRun(spec, 1, Scale{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(res.Cells))
	}
	for _, cell := range res.Cells {
		if got := cell.Values[1]; got != 80 {
			t.Fatalf("row %v completed %v jobs, want 80", cell.Values[0], got)
		}
	}

	bad := scenario.New("replay-missing", "replay",
		scenario.WithDesc("missing file"),
		scenario.WithPolicies("fcfs"),
		scenario.WithParam("swf", filepath.Join(t.TempDir(), "absent.swf")))
	if _, err := replayRun(bad, 1, Scale{}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
