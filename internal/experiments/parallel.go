package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
)

// Workers in a Scale selects the replication runner: 0 or 1 runs every
// experiment cell sequentially (the historical behaviour); larger values
// run independent cells on a worker pool bounded by GOMAXPROCS.
//
// Determinism contract: a cell is a self-contained unit of work — it
// derives its own RNG stream from a seed assigned *before* the fan-out
// and never shares mutable state with other cells — and results are
// collected in cell-index order. Tables produced with Workers: N are
// therefore bit-identical to Workers: 1 for the same base seed.

// workers returns the effective worker count for this scale.
func (s Scale) workers() int {
	w := s.Workers
	if w <= 1 {
		return 1
	}
	if maxw := runtime.GOMAXPROCS(0); w > maxw {
		w = maxw
	}
	return w
}

// runCells executes fn(0..n-1) — sequentially, or on sc.workers()
// goroutines — and returns the results in cell-index order. The first
// error (lowest cell index) wins, matching what the sequential loop
// would have reported.
//
// When sc.Ctx is cancelled, no further cells are dispatched and the
// pool returns the context's error after the in-flight cells finish —
// the cooperative-cancellation contract of the /v1 run API (a cancel
// is answered within roughly one cell's duration). sc.OnCellsStart /
// sc.OnCellDone observe progress; OnCellDone fires from worker
// goroutines and must be safe for concurrent use.
//
// Cells may themselves call runCells (CiGriTable fans each load level
// out into isolated/grid sub-runs); the outer workers then block in
// Wait, so runnable goroutines stay near the bound though momentary
// in-flight work can exceed it by the nesting factor.
func runCells[T any](sc Scale, n int, fn func(cell int) (T, error)) ([]T, error) {
	out, _, err := runCellsTimed(sc, n, fn)
	return out, err
}

// runCellsTimed is runCells plus the per-cell wall durations (indexed
// by cell). Each cell is timed exactly once, and the same measurement
// feeds both the OnCellDone progress event and the returned slice —
// so the /v1 event stream and the stored result cells agree to the
// nanosecond.
func runCellsTimed[T any](sc Scale, n int, fn func(cell int) (T, error)) ([]T, []time.Duration, error) {
	if sc.OnCellsStart != nil {
		sc.OnCellsStart(n)
	}
	ctx := sc.Ctx
	durs := make([]time.Duration, n)
	run := func(i int) (T, error) {
		t0 := time.Now()
		v, err := fn(i)
		durs[i] = time.Since(t0)
		if err == nil && sc.OnCellDone != nil {
			sc.OnCellDone(i, durs[i])
		}
		return v, err
	}
	out := make([]T, n)
	if w := sc.workers(); w > 1 && n > 1 {
		errs := make([]error, n)
		var wg sync.WaitGroup
		next := make(chan int)
		if w > n {
			w = n
		}
		for range w {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					// A cell dispatched before the cancel but not yet
					// started is skipped, not run.
					if ctx != nil && ctx.Err() != nil {
						errs[i] = ctx.Err()
						continue
					}
					out[i], errs[i] = run(i)
				}
			}()
		}
		for i := range n {
			if ctx == nil {
				next <- i
				continue
			}
			if err := ctx.Err(); err != nil {
				// Undispatched cells fail with the cancellation error
				// (slots untouched by any worker — no data race).
				errs[i] = err
				continue
			}
			select {
			case next <- i:
			case <-ctx.Done():
				errs[i] = ctx.Err()
			}
		}
		close(next)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
		return out, durs, nil
	}
	for i := range n {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		var err error
		if out[i], err = run(i); err != nil {
			return nil, nil, err
		}
	}
	return out, durs, nil
}

// rtable accumulates the typed rows of one experiment table and
// finalizes them as a scenario.Result — the typed cells plus the text
// rendering derived from them by the one table renderer. The leading
// axes columns are the sweep coordinates; the rest are metrics.
type rtable struct {
	title   string
	axes    int
	headers []string
	cells   []scenario.Cell
}

// newTable starts a result table (the replacement for the historical
// direct trace.NewTable construction in kind runners).
func newTable(axes int, title string, headers ...string) *rtable {
	return &rtable{title: title, axes: axes, headers: headers}
}

// AddRow appends one typed row (rows assembled outside the worker
// pool carry no per-cell duration).
func (t *rtable) AddRow(vals ...any) { t.addCell(vals, 0) }

func (t *rtable) addCell(vals []any, d time.Duration) {
	t.cells = append(t.cells, scenario.Cell{
		Index: len(t.cells), Values: vals, Duration: d.Seconds(),
	})
}

// Result finalizes the table as the kind runner's Result.
func (t *rtable) Result() *scenario.Result {
	return scenario.NewCellResult(t.title, t.headers, t.axes, t.cells)
}

// nextFanout assigns the next remoteable fan-out ordinal of this run.
// Kind runners perform their remoteable fan-outs sequentially (nested
// fan-outs use the raw runCells path and consume no ordinal), so for a
// fixed spec the numbering is deterministic — it is the coordinate
// system coordinator and workers share. Scales built without the
// scenario.Run adapter (the compatibility entry points) carry no
// counter and label every fan-out 0, which is harmless: the fleet
// hooks are only wired through fromOptions.
func (s Scale) nextFanout() int {
	if s.fanoutSeq == nil {
		return 0
	}
	return int(atomic.AddInt32(s.fanoutSeq, 1)) - 1
}

// runTableCells is the remoteable fan-out primitive: each cell's
// entire product is typed table rows, so a cell can execute in another
// process and ship its rows back. With sc.Remote set (the fleet
// coordinator side) every cell is dispatched through it concurrently —
// dispatch is I/O-bound waiting on workers, so the local Workers bound
// does not apply. With sc.Select set (the fleet worker side) only the
// leased cells execute, reporting rows through sc.OnCellRows. With
// neither, this is exactly runCellsTimed: the local pool, results in
// cell-index order.
func runTableCells(sc Scale, n int, fn func(cell int) ([][]any, error)) ([][][]any, []time.Duration, error) {
	fanout := sc.nextFanout()
	if sc.Remote != nil {
		return runRemoteCells(sc, fanout, n)
	}
	if sc.Select != nil || sc.OnCellRows != nil {
		inner := fn
		fn = func(i int) ([][]any, error) {
			if sc.Select != nil && !sc.Select(fanout, i) {
				return nil, nil // not ours: contributes no rows
			}
			t0 := time.Now()
			rows, err := inner(i)
			if err == nil && sc.OnCellRows != nil {
				sc.OnCellRows(fanout, i, rows, time.Since(t0))
			}
			return rows, err
		}
	}
	return runCellsTimed(sc, n, fn)
}

// runRemoteCells ships one fan-out through the coordinator seam. All n
// cells block on sc.Remote concurrently; results land in their slots,
// so reassembly order is cell order no matter which worker finished
// what when. The first error (lowest cell index) wins, matching the
// local pool's contract.
func runRemoteCells(sc Scale, fanout, n int) ([][][]any, []time.Duration, error) {
	if sc.OnCellsStart != nil {
		sc.OnCellsStart(n)
	}
	ctx := sc.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([][][]any, n)
	durs := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, d, err := sc.Remote.RunCell(ctx, fanout, i)
			if err != nil {
				errs[i] = err
				return
			}
			out[i], durs[i] = rows, d
			if sc.OnCellDone != nil {
				sc.OnCellDone(i, d)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return out, durs, nil
}

// runRowCells is the one-row-per-cell convenience over runTableCells:
// it runs the cells (locally or through the fleet seam) and appends
// each resulting row — with its wall duration — to the table in cell
// order. On the fleet worker side, skipped cells contribute nothing.
func runRowCells(t *rtable, sc Scale, n int, fn func(cell int) ([]any, error)) error {
	rows, durs, err := runTableCells(sc, n, func(i int) ([][]any, error) {
		row, err := fn(i)
		if err != nil {
			return nil, err
		}
		return [][]any{row}, nil
	})
	if err != nil {
		return err
	}
	for i, cellRows := range rows {
		for _, r := range cellRows {
			t.addCell(r, durs[i])
		}
	}
	return nil
}

// runMultiRowCells is the several-rows-per-cell variant (one cell per
// sweep coordinate, one row per policy inside it, say). Rows assembled
// from shared work carry no per-cell duration, matching the historical
// AddRow path.
func runMultiRowCells(t *rtable, sc Scale, n int, fn func(cell int) ([][]any, error)) error {
	rows, _, err := runTableCells(sc, n, fn)
	if err != nil {
		return err
	}
	for _, cellRows := range rows {
		for _, r := range cellRows {
			t.AddRow(r...)
		}
	}
	return nil
}
