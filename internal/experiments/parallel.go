package experiments

import (
	"runtime"
	"sync"

	"repro/internal/trace"
)

// Workers in a Scale selects the replication runner: 0 or 1 runs every
// experiment cell sequentially (the historical behaviour); larger values
// run independent cells on a worker pool bounded by GOMAXPROCS.
//
// Determinism contract: a cell is a self-contained unit of work — it
// derives its own RNG stream from a seed assigned *before* the fan-out
// and never shares mutable state with other cells — and results are
// collected in cell-index order. Tables produced with Workers: N are
// therefore bit-identical to Workers: 1 for the same base seed.

// workers returns the effective worker count for this scale.
func (s Scale) workers() int {
	w := s.Workers
	if w <= 1 {
		return 1
	}
	if maxw := runtime.GOMAXPROCS(0); w > maxw {
		w = maxw
	}
	return w
}

// runCells executes fn(0..n-1) — sequentially, or on sc.workers()
// goroutines — and returns the results in cell-index order. The first
// error (lowest cell index) wins, matching what the sequential loop
// would have reported.
//
// Cells may themselves call runCells (CiGriTable fans each load level
// out into isolated/grid sub-runs); the outer workers then block in
// Wait, so runnable goroutines stay near the bound though momentary
// in-flight work can exceed it by the nesting factor.
func runCells[T any](sc Scale, n int, fn func(cell int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if w := sc.workers(); w > 1 && n > 1 {
		errs := make([]error, n)
		var wg sync.WaitGroup
		next := make(chan int)
		if w > n {
			w = n
		}
		for range w {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					out[i], errs[i] = fn(i)
				}
			}()
		}
		for i := range n {
			next <- i
		}
		close(next)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	for i := range n {
		var err error
		if out[i], err = fn(i); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runRowCells is the one-row-per-cell convenience over runCells: it runs
// the cells and appends each resulting row to the table in cell order.
func runRowCells(t *trace.Table, sc Scale, n int, fn func(cell int) ([]any, error)) error {
	rows, err := runCells(sc, n, fn)
	if err != nil {
		return err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return nil
}
