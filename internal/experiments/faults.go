package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/lowerbound"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workload"
)

// planHasClusterFaults reports whether the plan injects anything into a
// single cluster (partitions are broker-level and handled separately).
func planHasClusterFaults(p scenario.Faults) bool {
	return p.MTBF > 0 || len(p.Outages) > 0 || len(p.Trace) > 0
}

// faultsRun is the "faults" kind: policy robustness under seeded node
// churn. One cell per MTBF value (0 = healthy baseline), every named
// online policy inside it, on a shared arrival stream plus a
// best-effort campaign whose killed tasks are resubmitted to the same
// cluster — the single-cluster model of the CiGri drift-back loop, so
// the BE loss and redistribution columns respond to the churn rate.
// The twin column is the availability-discounted makespan bound's
// relative error against the simulated makespan.
//
// Spec surface: Workload, Policies (default: the whole online catalog),
// Faults (optional base plan: MTTR/CrashProcs/Seed defaults for the
// sweep), params "mtbfs" (the MTBF axis; 0 rows run healthy),
// "crash_procs", "tasks" (campaign size), and "kill".
func faultsRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{
		"mtbfs": scenario.FloatsParam, "crash_procs": scenario.IntParam,
		"tasks": scenario.IntParam, "kill": scenario.StringParam,
	}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "EXT6 — policy robustness under node churn: §3 criteria and best-effort loss vs MTBF"),
		"MTBF", "policy", "Cmax ratio", "mean flow", "crashes", "requeues",
		"lost work", "BE done", "BE killed", "BE redist", "down %", "twin err %")
	gen, cfg := genConfig(spec.Workload, workload.GenConfig{
		N: 120, M: 64, ArrivalRate: 0.5, RigidFraction: 1,
	})
	mtbfs := spec.Floats("mtbfs", []float64{0, 2000, 500, 150})
	entries, err := resolvePolicies(spec.Policies, true)
	if err != nil {
		return nil, err
	}
	kill, err := killPolicy(spec.String("kill", "newest"))
	if err != nil {
		return nil, err
	}
	nBE := sc.jobs(spec.Int("tasks", 600))
	tc := newTraceCollector(spec, len(mtbfs))
	if err := runMultiRowCells(t, sc, len(mtbfs), func(i int) ([][]any, error) {
		mtbf := mtbfs[i]
		plan := scenario.Faults{}
		if spec.Faults != nil {
			plan = *spec.Faults
		}
		plan.Partitions = nil
		plan.MTBF = mtbf
		if mtbf == 0 {
			// Healthy baseline row: churn knobs off, scheduled outages
			// and traces from the base plan still apply (they are part
			// of the scenario, not the sweep).
			plan.MTTR, plan.CrashProcs, plan.MaxCrashes = 0, 0, 0
		} else if plan.CrashProcs == 0 {
			plan.CrashProcs = spec.Int("crash_procs", 8)
		}
		plan.Seed ^= seed + uint64(i)
		c := cfg
		c.N, c.Seed = sc.jobs(cfg.N), seed
		var out [][]any
		for _, e := range entries {
			jobs, err := generate(gen, c)
			if err != nil {
				return nil, err
			}
			sim := des.NewWithCapacity(len(jobs) + nBE)
			cs, err := cluster.New(sim, c.M, 1, e.NewPolicy(), kill)
			if err != nil {
				return nil, err
			}
			// Killed campaign tasks drift straight back to the same
			// cluster's best-effort queue (single-cluster stock).
			cs.OnBEKilled = func(bt cluster.BETask) { cs.SubmitBestEffort(bt) }
			if planHasClusterFaults(plan) {
				if _, err := faults.Attach(cs, plan); err != nil {
					return nil, err
				}
			}
			// Attach after the drift-back hook so the recorder chains it.
			rec := tc.recorder()
			rec.Attach(cs, "")
			rng := stats.NewRNG(seed + 7000 + uint64(i))
			for k := 0; k < nBE; k++ {
				cs.SubmitBestEffort(cluster.BETask{BagID: 0, Index: k, Duration: rng.Range(20, 600)})
			}
			for _, j := range jobs {
				if err := cs.Submit(j); err != nil {
					return nil, err
				}
			}
			if err := cs.Run(); err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
			}
			tc.add(i, e.Name, rec)
			rep := cs.Report()
			cmaxLB := lowerbound.Cmax(jobs, c.M)
			pred := faults.PredictCmax(jobs, c.M, plan)
			downPct := 0.0
			if now := sim.Now(); now > 0 {
				downPct = 100 * rep.Faults.DownProcSeconds / (float64(c.M) * now)
			}
			out = append(out, []any{
				mtbf, e.Name, rep.Makespan / cmaxLB, rep.MeanFlow,
				rep.Faults.Crashes, rep.Faults.Requeues, rep.Faults.LostWork,
				rep.BestEffort.Completed, rep.BestEffort.Killed, rep.BestEffort.Redistributed,
				downPct, 100 * faults.PredictionError(rep.Makespan, pred),
			})
		}
		return out, nil
	}); err != nil {
		return nil, err
	}
	res := t.Result()
	tc.install(res)
	return res, nil
}

// faultTwinRun is the "faulttwin" kind: the analytical twin validated
// against the simulator. One row per fault plan — healthy, light and
// heavy churn, a half-width outage, a total blackout, and a stepped
// availability trace — comparing the availability-discounted makespan
// lower bound of internal/faults/twin.go with the simulated makespan.
// The error column is (sim − predicted)/predicted; it stays positive
// because the twin is a lower bound.
//
// Spec surface: params "n", "m", "kill"; Policies (a single queue
// policy, default "easy").
func faultTwinRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{
		"n": scenario.IntParam, "m": scenario.IntParam, "kill": scenario.StringParam,
	}); err != nil {
		return nil, err
	}
	t := newTable(1,
		title(spec, "EXT7 — analytical twin: predicted (availability-discounted LB) vs simulated makespan per fault plan"),
		"plan", "crashes", "requeues", "down %", "sim Cmax", "twin Cmax", "err %")
	m := spec.Int("m", 32)
	n := sc.jobs(spec.Int("n", 400))
	queueName := "easy"
	if len(spec.Policies) == 1 {
		queueName = spec.Policies[0]
	} else if len(spec.Policies) > 1 {
		return nil, fmt.Errorf("experiments: faulttwin kind takes at most one queue policy, got %d", len(spec.Policies))
	}
	entries, err := resolvePolicies([]string{queueName}, true)
	if err != nil {
		return nil, err
	}
	kill, err := killPolicy(spec.String("kill", "newest"))
	if err != nil {
		return nil, err
	}
	plans := []struct {
		name string
		plan scenario.Faults
	}{
		{"healthy", scenario.Faults{}},
		{"churn-light", scenario.Faults{MTBF: 2000, MTTR: 200, CrashProcs: 4}},
		{"churn-heavy", scenario.Faults{MTBF: 300, MTTR: 60, CrashProcs: 8}},
		{"half-outage", scenario.Faults{Outages: []scenario.Outage{{Start: 400, End: 1600, Procs: m / 2}}}},
		{"blackout", scenario.Faults{Outages: []scenario.Outage{{Start: 600, End: 1200}}}},
		{"trace-steps", scenario.Faults{Trace: []scenario.AvailStep{
			{Time: 300, Avail: 3 * m / 4}, {Time: 900, Avail: m / 4}, {Time: 1500, Avail: m},
		}}},
	}
	if err := runRowCells(t, sc, len(plans), func(i int) ([]any, error) {
		plan := plans[i].plan
		plan.Seed = seed + uint64(i)
		jobs := workload.Parallel(workload.GenConfig{
			N: n, M: m, Seed: seed, RigidFraction: 1, ArrivalRate: 0.1,
		})
		cs, err := cluster.New(des.NewWithCapacity(len(jobs)+16), m, 1, entries[0].NewPolicy(), kill)
		if err != nil {
			return nil, err
		}
		if planHasClusterFaults(plan) {
			if _, err := faults.Attach(cs, plan); err != nil {
				return nil, err
			}
		}
		for _, j := range jobs {
			if err := cs.Submit(j); err != nil {
				return nil, err
			}
		}
		if err := cs.Run(); err != nil {
			return nil, fmt.Errorf("experiments: plan %s: %w", plans[i].name, err)
		}
		rep := cs.Report()
		pred := faults.PredictCmax(jobs, m, plan)
		downPct := 0.0
		if now := cs.DES.Now(); now > 0 {
			downPct = 100 * rep.Faults.DownProcSeconds / (float64(m) * now)
		}
		return []any{plans[i].name, rep.Faults.Crashes, rep.Faults.Requeues,
			downPct, rep.Makespan, pred, 100 * faults.PredictionError(rep.Makespan, pred)}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}
