package experiments

import (
	"fmt"

	"repro/internal/bicriteria"
	"repro/internal/dlt"
	"repro/internal/hetero"
	"repro/internal/lowerbound"
	"repro/internal/malleable"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/rigid"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/smart"
	"repro/internal/trace"
	"repro/internal/workload"
)

// malleableRun is the extension experiment for §2.2's third task
// class, which the paper defers ("we will not consider malleability
// here"): EQUIPARTITION and weight-proportional malleable scheduling
// versus the moldable MRT one-shot choice on the same jobs. It
// quantifies the paper's expectation that "malleability is much more
// easily usable from the scheduling point of view". Params: "ms", "n".
func malleableRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"ms": scenario.IntsParam, "n": scenario.IntParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "EXT1 — §2.2 malleable jobs (paper's future work): EQUI vs moldable MRT (ratios to lower bound)"),
		"m", "n", "moldable MRT", "malleable EQUI", "EQUI reallocs", "weighted EQUI ΣwC", "MRT ΣwC")
	ms := spec.Ints("ms", []int{16, 64})
	if err := runRowCells(t, sc, len(ms), func(i int) ([]any, error) {
		m := ms[i]
		n := sc.jobs(spec.Int("n", 150))
		jobs := workload.Parallel(workload.GenConfig{N: n, M: m, Seed: seed + uint64(i), Weighted: true})
		for _, j := range jobs {
			j.Kind = workload.Malleable
		}
		cmaxLB := lowerbound.CmaxDual(jobs, m)
		wcLB := lowerbound.SumWeightedCompletion(jobs, m)
		mrt, err := moldable.MRT(jobs, m, 0.01)
		if err != nil {
			return nil, err
		}
		equi, err := malleable.Schedule(jobs, m, malleable.Equi)
		if err != nil {
			return nil, err
		}
		wp, err := malleable.Schedule(jobs, m, malleable.WeightProportional)
		if err != nil {
			return nil, err
		}
		var wpWC, mrtWC float64
		for _, c := range wp.Completions {
			wpWC += c.Job.Weight * c.End
		}
		mrtWC = mrt.Schedule.Report().SumWeightedCompletion
		return []any{m, n,
			mrt.Schedule.Makespan() / cmaxLB,
			equi.Makespan / cmaxLB,
			equi.Reallocations,
			wpWC / wcLB,
			mrtWC / wcLB}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// MalleableTable is the compatibility entry point for EXT1.
func MalleableTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := malleableRun(mustSpec("malleable"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// treeDLTRun is the extension experiment for the paper's reference [4]
// (Cheng & Robertazzi tree networks): optimal single-round distribution
// on trees of growing depth with the same worker pool, quantifying the
// store-and-forward cost of hierarchy versus a flat star — the paper's
// §1.2 observation that interconnects "may be hierarchical".
// Params: "w" (total load).
func treeDLTRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"w": scenario.FloatParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "EXT2 — [4] divisible load on tree networks (same 13 workers, growing depth; W=10000)"),
		"topology", "nodes", "makespan", "vs flat star", "LB")
	W := spec.Float("w", 10000)
	mkNode := func(name string, link float64) *dlt.TreeNode {
		return &dlt.TreeNode{Name: name, Compute: 1, LinkToParent: link}
	}
	// Each cell builds its own topology (the solver annotates nodes).
	topologies := []struct {
		name  string
		build func() *dlt.TreeNode
	}{
		{"flat star (depth 1)", func() *dlt.TreeNode {
			flat := mkNode("root", 0)
			for i := 0; i < 12; i++ {
				flat.Children = append(flat.Children, mkNode(fmt.Sprintf("w%d", i), 0.05))
			}
			return flat
		}},
		{"3x3 tree (depth 2)", func() *dlt.TreeNode {
			twoLevel := mkNode("root", 0)
			id := 0
			for i := 0; i < 3; i++ {
				mid := mkNode(fmt.Sprintf("m%d", i), 0.05)
				for k := 0; k < 3; k++ {
					mid.Children = append(mid.Children, mkNode(fmt.Sprintf("l%d", id), 0.05))
					id++
				}
				twoLevel.Children = append(twoLevel.Children, mid)
			}
			return twoLevel
		}},
		{"chain (depth 12)", func() *dlt.TreeNode { return dlt.Chain(12, 1, 0.05) }},
	}
	type treeCell struct {
		size     int
		makespan float64
		lb       float64
	}
	cells, err := runCells(sc, len(topologies), func(i int) (treeCell, error) {
		n := topologies[i].build()
		d, err := dlt.TreeSingleRound(n, W)
		if err != nil {
			return treeCell{}, err
		}
		return treeCell{size: n.Size(), makespan: d.Makespan, lb: dlt.TreeLowerBound(n, W)}, nil
	})
	if err != nil {
		return nil, err
	}
	flat := cells[0].makespan
	for i, c := range topologies {
		t.AddRow(c.name, cells[i].size, cells[i].makespan, cells[i].makespan/flat, cells[i].lb)
	}
	return t.Result(), nil
}

// TreeDLTTable is the compatibility entry point for EXT2.
func TreeDLTTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := treeDLTRun(mustSpec("treedlt"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// criteriaRun is extension experiment EXT3: the paper's title question
// rendered as a matrix — every policy scored on every §3 criterion over
// one shared workload. No policy wins everywhere, which is exactly the
// paper's argument for per-application policy selection. Params: "m",
// "n".
func criteriaRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"m": scenario.IntParam, "n": scenario.IntParam}); err != nil {
		return nil, err
	}
	t := newTable(1,
		title(spec, "EXT3 — §3 criteria matrix: one workload, every policy, every criterion (ratios to lower bounds where defined)"),
		"policy", "Cmax", "ΣwC", "mean flow", "max stretch", "late", "util %")
	m := spec.Int("m", 64)
	n := sc.jobs(spec.Int("n", 200))
	jobs := workload.Parallel(workload.GenConfig{
		N: n, M: m, Seed: seed, Weighted: true, DueDateSlack: 8,
	})
	cmaxLB := lowerbound.CmaxDual(jobs, m)
	wcLB := lowerbound.SumWeightedCompletion(jobs, m)

	type policy struct {
		name string
		run  func(jobs []*workload.Job) (*sched.Schedule, error)
	}
	policies := []policy{
		{"mrt (§4.1)", func(jobs []*workload.Job) (*sched.Schedule, error) {
			r, err := moldable.MRT(jobs, m, 0.01)
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		}},
		{"smart (§4.3)", func(jobs []*workload.Job) (*sched.Schedule, error) {
			s, _, err := smart.Schedule(jobs, m, smart.FirstFit)
			return s, err
		}},
		{"bicriteria (§4.4)", func(jobs []*workload.Job) (*sched.Schedule, error) {
			r, err := bicriteria.Schedule(jobs, m, bicriteria.Options{})
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		}},
		{"ffdh (§2.2)", func(jobs []*workload.Job) (*sched.Schedule, error) {
			sh, err := rigid.FFDH(jobs, m)
			if err != nil {
				return nil, err
			}
			return rigid.ShelvesToSchedule(sh, m), nil
		}},
		{"minwork+lpt", func(jobs []*workload.Job) (*sched.Schedule, error) {
			return moldable.MinWorkList(jobs, m)
		}},
	}
	if err := runRowCells(t, sc, len(policies), func(i int) ([]any, error) {
		// Policy cells share the workload read-only (jobs are pure data).
		s, err := policies[i].run(jobs)
		if err != nil {
			return nil, err
		}
		rep := s.Report()
		return []any{policies[i].name,
			rep.Makespan / cmaxLB,
			rep.SumWeightedCompletion / wcLB,
			rep.MeanFlow,
			rep.MaxStretch,
			rep.LateCount,
			100 * rep.Utilization}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// CriteriaMatrixTable is the compatibility entry point for EXT3.
func CriteriaMatrixTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := criteriaRun(mustSpec("criteria"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// heteroGridRun is extension experiment EXT4: two-level scheduling
// across the speed-heterogeneous CIMENT grid — the §2.2 "uniform
// processors" view at grid scale. Compares the speed-aware partition
// against using only the largest cluster and a speed-blind deal.
func heteroGridRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "EXT4 — two-level moldable scheduling on the CIMENT grid (makespans, ratios to grid LB)"),
		"workload", "partition", "grid makespan", "ratio", "clusters used")
	workloads := []struct {
		name string
		cfg  workload.GenConfig
	}{
		// Heavy-tailed wide jobs: the critical path binds; spreading
		// cannot beat the fastest cluster but must not lose to it.
		{"critical-bound", workload.GenConfig{N: sc.jobs(1500), M: 64, Seed: seed}},
		// Many narrow jobs: aggregate capacity binds; spreading wins.
		{"capacity-bound", workload.GenConfig{
			N: sc.jobs(3000), M: 16, Seed: seed + 1, SeqSigma: 0.8, MaxProcsCap: 16,
		}},
	}
	partitions := []struct {
		name string
		p    hetero.Partition
	}{
		{"speed-aware LPT", hetero.SpeedAwareLPT},
		{"largest cluster only", hetero.LargestOnly},
		{"round robin", hetero.RoundRobin},
	}
	// Workloads and their lower bounds are generated once up front and
	// shared read-only by the partition cells (jobs are pure data; no
	// scheduler mutates them — the race-enabled test suite keeps that
	// honest).
	type wlData struct {
		jobs []*workload.Job
		lb   float64
	}
	g := platform.CIMENT()
	data := make([]wlData, len(workloads))
	for i, wl := range workloads {
		jobs := workload.Parallel(wl.cfg)
		data[i] = wlData{jobs: jobs, lb: hetero.LowerBound(jobs, g)}
	}
	if err := runRowCells(t, sc, len(workloads)*len(partitions), func(i int) ([]any, error) {
		wl := workloads[i/len(partitions)]
		part := partitions[i%len(partitions)]
		jobs, lb := data[i/len(partitions)].jobs, data[i/len(partitions)].lb
		asg, err := hetero.Schedule(jobs, g, part.p, 0.01)
		if err != nil {
			return nil, err
		}
		if err := asg.Validate(jobs, g); err != nil {
			return nil, err
		}
		used := map[int]bool{}
		for _, ci := range asg.JobCluster {
			used[ci] = true
		}
		return []any{wl.name, part.name, asg.Makespan, asg.Makespan / lb, len(used)}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// HeteroGridTable is the compatibility entry point for EXT4.
func HeteroGridTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := heteroGridRun(mustSpec("heterogrid"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}
