package experiments

import (
	"fmt"

	"repro/internal/bicriteria"
	"repro/internal/dlt"
	"repro/internal/hetero"
	"repro/internal/lowerbound"
	"repro/internal/malleable"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/rigid"
	"repro/internal/sched"
	"repro/internal/smart"
	"repro/internal/trace"
	"repro/internal/workload"
)

// MalleableTable is the extension experiment for §2.2's third task
// class, which the paper defers ("we will not consider malleability
// here"): EQUIPARTITION and weight-proportional malleable scheduling
// versus the moldable MRT one-shot choice on the same jobs. It
// quantifies the paper's expectation that "malleability is much more
// easily usable from the scheduling point of view".
func MalleableTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"EXT1 — §2.2 malleable jobs (paper's future work): EQUI vs moldable MRT (ratios to lower bound)",
		"m", "n", "moldable MRT", "malleable EQUI", "EQUI reallocs", "weighted EQUI ΣwC", "MRT ΣwC")
	for _, m := range []int{16, 64} {
		n := sc.jobs(150)
		jobs := workload.Parallel(workload.GenConfig{N: n, M: m, Seed: seed, Weighted: true})
		seed++
		for _, j := range jobs {
			j.Kind = workload.Malleable
		}
		cmaxLB := lowerbound.CmaxDual(jobs, m)
		wcLB := lowerbound.SumWeightedCompletion(jobs, m)
		mrt, err := moldable.MRT(jobs, m, 0.01)
		if err != nil {
			return nil, err
		}
		equi, err := malleable.Schedule(jobs, m, malleable.Equi)
		if err != nil {
			return nil, err
		}
		wp, err := malleable.Schedule(jobs, m, malleable.WeightProportional)
		if err != nil {
			return nil, err
		}
		var wpWC, mrtWC float64
		for _, c := range wp.Completions {
			wpWC += c.Job.Weight * c.End
		}
		mrtWC = mrt.Schedule.Report().SumWeightedCompletion
		t.AddRow(m, n,
			mrt.Schedule.Makespan()/cmaxLB,
			equi.Makespan/cmaxLB,
			equi.Reallocations,
			wpWC/wcLB,
			mrtWC/wcLB)
	}
	return t, nil
}

// TreeDLTTable is the extension experiment for the paper's reference [4]
// (Cheng & Robertazzi tree networks): optimal single-round distribution
// on trees of growing depth with the same worker pool, quantifying the
// store-and-forward cost of hierarchy versus a flat star — the paper's
// §1.2 observation that interconnects "may be hierarchical".
func TreeDLTTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"EXT2 — [4] divisible load on tree networks (same 13 workers, growing depth; W=10000)",
		"topology", "nodes", "makespan", "vs flat star", "LB")
	const W = 10000.0
	mkNode := func(name string, link float64) *dlt.TreeNode {
		return &dlt.TreeNode{Name: name, Compute: 1, LinkToParent: link}
	}
	// Flat star: root + 12 children.
	flat := mkNode("root", 0)
	for i := 0; i < 12; i++ {
		flat.Children = append(flat.Children, mkNode(fmt.Sprintf("w%d", i), 0.05))
	}
	// Two-level: root + 3 children × 3 grandchildren = 13 nodes.
	twoLevel := mkNode("root", 0)
	id := 0
	for i := 0; i < 3; i++ {
		mid := mkNode(fmt.Sprintf("m%d", i), 0.05)
		for k := 0; k < 3; k++ {
			mid.Children = append(mid.Children, mkNode(fmt.Sprintf("l%d", id), 0.05))
			id++
		}
		twoLevel.Children = append(twoLevel.Children, mid)
	}
	// Chain of depth 12.
	chain := dlt.Chain(12, 1, 0.05)

	flatD, err := dlt.TreeSingleRound(flat, W)
	if err != nil {
		return nil, err
	}
	for _, c := range []struct {
		name string
		n    *dlt.TreeNode
	}{
		{"flat star (depth 1)", flat},
		{"3x3 tree (depth 2)", twoLevel},
		{"chain (depth 12)", chain},
	} {
		d, err := dlt.TreeSingleRound(c.n, W)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, c.n.Size(), d.Makespan, d.Makespan/flatD.Makespan,
			dlt.TreeLowerBound(c.n, W))
	}
	return t, nil
}

// CriteriaMatrixTable is extension experiment EXT3: the paper's title
// question rendered as a matrix — every policy scored on every §3
// criterion over one shared workload. No policy wins everywhere, which
// is exactly the paper's argument for per-application policy selection.
func CriteriaMatrixTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"EXT3 — §3 criteria matrix: one workload, every policy, every criterion (ratios to lower bounds where defined)",
		"policy", "Cmax", "ΣwC", "mean flow", "max stretch", "late", "util %")
	m := 64
	n := sc.jobs(200)
	jobs := workload.Parallel(workload.GenConfig{
		N: n, M: m, Seed: seed, Weighted: true, DueDateSlack: 8,
	})
	cmaxLB := lowerbound.CmaxDual(jobs, m)
	wcLB := lowerbound.SumWeightedCompletion(jobs, m)

	type policy struct {
		name string
		run  func() (*sched.Schedule, error)
	}
	policies := []policy{
		{"mrt (§4.1)", func() (*sched.Schedule, error) {
			r, err := moldable.MRT(jobs, m, 0.01)
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		}},
		{"smart (§4.3)", func() (*sched.Schedule, error) {
			s, _, err := smart.Schedule(jobs, m, smart.FirstFit)
			return s, err
		}},
		{"bicriteria (§4.4)", func() (*sched.Schedule, error) {
			r, err := bicriteria.Schedule(jobs, m, bicriteria.Options{})
			if err != nil {
				return nil, err
			}
			return r.Schedule, nil
		}},
		{"ffdh (§2.2)", func() (*sched.Schedule, error) {
			sh, err := rigid.FFDH(jobs, m)
			if err != nil {
				return nil, err
			}
			return rigid.ShelvesToSchedule(sh, m), nil
		}},
		{"minwork+lpt", func() (*sched.Schedule, error) {
			return moldable.MinWorkList(jobs, m)
		}},
	}
	for _, p := range policies {
		s, err := p.run()
		if err != nil {
			return nil, err
		}
		rep := s.Report()
		t.AddRow(p.name,
			rep.Makespan/cmaxLB,
			rep.SumWeightedCompletion/wcLB,
			rep.MeanFlow,
			rep.MaxStretch,
			rep.LateCount,
			100*rep.Utilization)
	}
	return t, nil
}

// HeteroGridTable is extension experiment EXT4: two-level scheduling
// across the speed-heterogeneous CIMENT grid — the §2.2 "uniform
// processors" view at grid scale. Compares the speed-aware partition
// against using only the largest cluster and a speed-blind deal.
func HeteroGridTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"EXT4 — two-level moldable scheduling on the CIMENT grid (makespans, ratios to grid LB)",
		"workload", "partition", "grid makespan", "ratio", "clusters used")
	g := platform.CIMENT()
	for _, wl := range []struct {
		name string
		cfg  workload.GenConfig
	}{
		// Heavy-tailed wide jobs: the critical path binds; spreading
		// cannot beat the fastest cluster but must not lose to it.
		{"critical-bound", workload.GenConfig{N: sc.jobs(1500), M: 64, Seed: seed}},
		// Many narrow jobs: aggregate capacity binds; spreading wins.
		{"capacity-bound", workload.GenConfig{
			N: sc.jobs(3000), M: 16, Seed: seed + 1, SeqSigma: 0.8, MaxProcsCap: 16,
		}},
	} {
		jobs := workload.Parallel(wl.cfg)
		lb := hetero.LowerBound(jobs, g)
		for _, part := range []struct {
			name string
			p    hetero.Partition
		}{
			{"speed-aware LPT", hetero.SpeedAwareLPT},
			{"largest cluster only", hetero.LargestOnly},
			{"round robin", hetero.RoundRobin},
		} {
			asg, err := hetero.Schedule(jobs, g, part.p, 0.01)
			if err != nil {
				return nil, err
			}
			if err := asg.Validate(jobs, g); err != nil {
				return nil, err
			}
			used := map[int]bool{}
			for _, ci := range asg.JobCluster {
				used[ci] = true
			}
			t.AddRow(wl.name, part.name, asg.Makespan, asg.Makespan/lb, len(used))
		}
	}
	return t, nil
}
