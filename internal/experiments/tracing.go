package experiments

import (
	"repro/internal/runtrace"
	"repro/internal/scenario"
)

// traceCollector gathers per-cell event traces for kind runners that
// support the Spec trace axis. It is nil-safe end to end: when the spec
// does not request tracing, newTraceCollector returns nil, recorder()
// returns a nil *runtrace.Recorder (whose methods are no-ops) and
// install() does nothing — so the untraced hot path stays unchanged.
//
// perCell is indexed by cell; each cell's sub-runs (one per policy
// entry, say) append only from that cell's worker goroutine, mirroring
// the out[i]-slot discipline of runCells, so parallel cell execution
// needs no locking and the flattened order is deterministic.
type traceCollector struct {
	max     int
	perCell [][]runtrace.CellTrace
}

// newTraceCollector returns a collector for cells cells, or nil when
// the spec does not request tracing.
func newTraceCollector(spec *scenario.Spec, cells int) *traceCollector {
	if spec == nil || !spec.Traced() {
		return nil
	}
	return &traceCollector{
		max:     spec.Trace.MaxEvents,
		perCell: make([][]runtrace.CellTrace, cells),
	}
}

// recorder returns a fresh recorder for one cell sub-run (nil on a nil
// collector).
func (tc *traceCollector) recorder() *runtrace.Recorder {
	if tc == nil {
		return nil
	}
	return runtrace.NewRecorder(tc.max)
}

// add seals one sub-run's recorder into the cell's trace list. Safe to
// call only from the goroutine running that cell.
func (tc *traceCollector) add(cell int, label string, rec *runtrace.Recorder) {
	if tc == nil || rec == nil {
		return
	}
	tc.perCell[cell] = append(tc.perCell[cell], rec.Finish(cell, label))
}

// install flattens the collected traces in cell order onto the result.
func (tc *traceCollector) install(res *scenario.Result) {
	if tc == nil || res == nil {
		return
	}
	n := 0
	for _, ts := range tc.perCell {
		n += len(ts)
	}
	out := make([]runtrace.CellTrace, 0, n)
	for _, ts := range tc.perCell {
		out = append(out, ts...)
	}
	res.Traces = out
}
