package experiments

import (
	"fmt"

	"repro/internal/lowerbound"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// genConfig merges a declarative workload over a kind's defaults:
// non-zero Spec fields win, absent ones keep the paper's values (zero
// is "absent" in the JSON encoding). Numeric fields whose zero is
// meaningful against a non-zero kind default take -1 as the
// explicit-zero sentinel: arrival_rate: -1 means an offline stream
// (all jobs released at t=0), rigid_fraction: -1 means fully moldable,
// max_procs_cap: -1 means uncapped. Weighted needs no sentinel: no
// kind defaults it on, so "weighted": true/absent covers both states.
// It returns the generator name and the merged GenConfig (Seed and the
// scaled N still come from the kind).
func genConfig(w *scenario.Workload, def workload.GenConfig) (string, workload.GenConfig) {
	gen := "parallel"
	if w == nil {
		return gen, def
	}
	if w.Generator != "" {
		gen = w.Generator
	}
	if w.N != 0 {
		def.N = w.N
	}
	if w.M != 0 {
		def.M = w.M
	}
	if w.ArrivalRate < 0 {
		def.ArrivalRate = 0
	} else if w.ArrivalRate != 0 {
		def.ArrivalRate = w.ArrivalRate
	}
	if w.Weighted {
		def.Weighted = true
	}
	if w.RigidFraction < 0 {
		def.RigidFraction = 0
	} else if w.RigidFraction != 0 {
		def.RigidFraction = w.RigidFraction
	}
	if w.MaxProcsCap < 0 {
		def.MaxProcsCap = 0
	} else if w.MaxProcsCap != 0 {
		def.MaxProcsCap = w.MaxProcsCap
	}
	if w.SeqMu != 0 {
		def.SeqMu = w.SeqMu
	}
	if w.SeqSigma != 0 {
		def.SeqSigma = w.SeqSigma
	}
	if w.DueDateSlack != 0 {
		def.DueDateSlack = w.DueDateSlack
	}
	return gen, def
}

// resolvePolicies resolves a policy name list against the registry,
// requiring the online or offline capability. An empty list means
// every capable policy, in catalog order.
func resolvePolicies(names []string, needOnline bool) ([]*registry.Entry, error) {
	capable := func(e *registry.Entry) bool {
		if needOnline {
			return e.Caps.Online
		}
		return e.Caps.Offline
	}
	mode := "offline"
	if needOnline {
		mode = "online"
	}
	if len(names) == 0 {
		var out []*registry.Entry
		for _, e := range registry.All() {
			if capable(e) {
				out = append(out, e)
			}
		}
		return out, nil
	}
	out := make([]*registry.Entry, 0, len(names))
	for _, name := range names {
		e, err := registry.Get(name)
		if err != nil {
			return nil, err
		}
		if !capable(e) {
			return nil, fmt.Errorf("experiments: policy %q is not %s-capable", name, mode)
		}
		out = append(out, e)
	}
	return out, nil
}

// generate materializes a job stream from a generator name.
func generate(gen string, cfg workload.GenConfig) ([]*workload.Job, error) {
	switch gen {
	case "", "parallel":
		return workload.Parallel(cfg), nil
	case "sequential":
		return workload.Sequential(cfg), nil
	case "mixed":
		return workload.Mixed(cfg), nil
	}
	return nil, fmt.Errorf("experiments: generator %q is not usable here (want parallel|sequential|mixed)", gen)
}

// generateSource is the streaming counterpart of generate: same
// generator names but a pull-based Source (plus "communities", the
// CIMENT mix). Draw order matches the materializing generators, so
// workload.Collect over the returned source equals generate — a spec
// moved from a batch kind to the replay kind sees the same jobs.
func generateSource(gen string, cfg workload.GenConfig) (workload.Source, error) {
	switch gen {
	case "", "parallel":
		return workload.ParallelSource(cfg), nil
	case "sequential":
		return workload.SequentialSource(cfg), nil
	case "mixed":
		return workload.MixedSource(cfg), nil
	case "communities":
		return workload.CommunitiesSource(workload.CIMENTCommunities(), cfg.N, cfg.M, cfg.ArrivalRate, cfg.Seed), nil
	}
	return nil, fmt.Errorf("experiments: generator %q is not streamable here (want parallel|sequential|mixed|communities)", gen)
}

// metricColumn is one selectable output column of the "offline" kind.
type metricColumn struct {
	header string
	value  func(rep metrics.Report, cmaxLB, wcLB float64) any
}

var metricColumns = map[string]metricColumn{
	"cmax":         {"Cmax", func(r metrics.Report, _, _ float64) any { return r.Makespan }},
	"cmax_ratio":   {"Cmax ratio", func(r metrics.Report, lb, _ float64) any { return r.Makespan / lb }},
	"swc":          {"ΣwC", func(r metrics.Report, _, _ float64) any { return r.SumWeightedCompletion }},
	"swc_ratio":    {"ΣwC ratio", func(r metrics.Report, _, lb float64) any { return r.SumWeightedCompletion / lb }},
	"mean_flow":    {"mean flow", func(r metrics.Report, _, _ float64) any { return r.MeanFlow }},
	"max_flow":     {"max flow", func(r metrics.Report, _, _ float64) any { return r.MaxFlow }},
	"mean_stretch": {"mean stretch", func(r metrics.Report, _, _ float64) any { return r.MeanStretch }},
	"max_stretch":  {"max stretch", func(r metrics.Report, _, _ float64) any { return r.MaxStretch }},
	"late":         {"late", func(r metrics.Report, _, _ float64) any { return r.LateCount }},
	"util":         {"util %", func(r metrics.Report, _, _ float64) any { return 100 * r.Utilization }},
}

// MetricNames returns the selectable metric column names of the
// generic "offline" kind (for docs and error messages).
func MetricNames() []string {
	return []string{"cmax", "cmax_ratio", "swc", "swc_ratio",
		"mean_flow", "max_flow", "mean_stretch", "max_stretch", "late", "util"}
}

// offlineRun is the generic "offline" kind: one declarative workload,
// any set of offline-capable registry policies, any selection of §3
// metric columns. It is the fully JSON-composable path — a scenario
// file names a workload shape, a policy list and a metric list, and
// gets a comparison table without any new Go code.
//
// Spec surface: Workload, Platform.M (falls back to Workload.M),
// Policies (default: every offline-capable policy), Metrics (default:
// cmax_ratio, swc_ratio, mean_flow, max_stretch, late, util).
func offlineRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{}); err != nil {
		return nil, err
	}
	gen, cfg := genConfig(spec.Workload, workload.GenConfig{N: 200, M: 64})
	m := cfg.M
	if spec.Platform != nil && spec.Platform.M != 0 {
		m = spec.Platform.M
	}
	entries, err := resolvePolicies(spec.Policies, false)
	if err != nil {
		return nil, err
	}
	sel := spec.Metrics
	if len(sel) == 0 {
		sel = []string{"cmax_ratio", "swc_ratio", "mean_flow", "max_stretch", "late", "util"}
	}
	cols := make([]metricColumn, 0, len(sel))
	headers := []string{"policy"}
	for _, name := range sel {
		c, ok := metricColumns[name]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown metric %q (have: %v)", name, MetricNames())
		}
		cols = append(cols, c)
		headers = append(headers, c.header)
	}
	t := newTable(1, title(spec, fmt.Sprintf("offline policy sweep (m=%d, n=%d)", m, sc.jobs(cfg.N))), headers...)
	cfg.N, cfg.Seed = sc.jobs(cfg.N), seed
	jobs, err := generate(gen, cfg)
	if err != nil {
		return nil, err
	}
	cmaxLB := lowerbound.CmaxDual(jobs, m)
	wcLB := lowerbound.SumWeightedCompletion(jobs, m)
	if err := runRowCells(t, sc, len(entries), func(i int) ([]any, error) {
		// Policy cells share the workload read-only (jobs are pure data).
		s, err := entries[i].Offline(jobs, m)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", entries[i].Name, err)
		}
		rep := s.Report()
		row := []any{entries[i].Name}
		for _, c := range cols {
			row = append(row, c.value(rep, cmaxLB, wcLB))
		}
		return row, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}
