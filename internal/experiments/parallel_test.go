package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// renderRows flattens a table into comparable strings.
func renderRows(t *testing.T, tb *trace.Table) []string {
	t.Helper()
	out := make([]string, 0, len(tb.Rows))
	for _, row := range tb.Rows {
		out = append(out, strings.Join(row, "|"))
	}
	return out
}

// TestParallelMatchesSequential: for a fixed seed, every table must be
// bit-identical between the sequential runner and the worker pool — the
// determinism contract of the parallel experiment harness.
func TestParallelMatchesSequential(t *testing.T) {
	type tableFn func(uint64, Scale) (*trace.Table, error)
	tables := map[string]tableFn{
		"mrt":           MRTTable,
		"batch":         BatchTable,
		"smart":         SMARTTable,
		"bicriteria":    BiCriteriaTable,
		"dlt":           DLTTable,
		"cigri":         CiGriTable,
		"decentralized": DecentralizedTable,
		"mixed":         MixedTable,
		"reservations":  ReservationsTable,
		"malleable":     MalleableTable,
		"treedlt":       TreeDLTTable,
		"criteria":      CriteriaMatrixTable,
		"heterogrid":    HeteroGridTable,
		"gridpolicies":  GridPolicyTable,
		"abl-allot":     AblationAllotment,
		"abl-doubling":  AblationDoublingBase,
		"abl-shelf":     AblationShelfFill,
		"abl-chunk":     AblationChunk,
		"abl-kill":      AblationKillPolicy,
		"abl-compact":   AblationCompaction,
	}
	for name, fn := range tables {
		t.Run(name, func(t *testing.T) {
			seq, err := fn(21, Scale{JobFactor: 20})
			if err != nil {
				t.Fatal(err)
			}
			par, err := fn(21, Scale{JobFactor: 20, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			seqRows, parRows := renderRows(t, seq), renderRows(t, par)
			if len(seqRows) != len(parRows) {
				t.Fatalf("row counts differ: sequential %d, parallel %d", len(seqRows), len(parRows))
			}
			for i := range seqRows {
				if seqRows[i] != parRows[i] {
					t.Fatalf("row %d differs:\n  sequential: %s\n  parallel:   %s",
						i, seqRows[i], parRows[i])
				}
			}
		})
	}
}

// TestFig2ParallelMatchesSequential covers the non-Table figure driver.
func TestFig2ParallelMatchesSequential(t *testing.T) {
	np1, p1, err := Fig2Tables(5, Scale{JobFactor: 20})
	if err != nil {
		t.Fatal(err)
	}
	np2, p2, err := Fig2Tables(5, Scale{JobFactor: 20, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(np1) != len(np2) || len(p1) != len(p2) {
		t.Fatalf("series lengths differ")
	}
	for i := range np1 {
		if np1[i] != np2[i] || p1[i] != p2[i] {
			t.Fatalf("point %d differs between runners", i)
		}
	}
}

func TestRunCellsOrderAndErrors(t *testing.T) {
	// Results arrive in cell-index order however many workers run.
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := runCells(Scale{Workers: workers}, 20, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: cell %d = %d", workers, i, v)
			}
		}
	}
	// The lowest-index error wins, matching the sequential loop.
	boom7 := errors.New("boom 7")
	for _, workers := range []int{1, 4} {
		_, err := runCells(Scale{Workers: workers}, 12, func(i int) (int, error) {
			if i >= 7 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != boom7.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom7)
		}
	}
}

// TestRunCellsCancel: cancelling the scale context stops dispatch in
// both runners within one cell's work, returns the context error, and
// leaves the already-completed cells untouched.
func TestRunCellsCancel(t *testing.T) {
	for _, workers := range []int{0, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		_, err := runCells(Scale{Workers: workers, Ctx: ctx}, 1000, func(i int) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Dispatch stops after the cancelling cell (plus at most the
		// cells already picked up by the pool).
		if n := ran.Load(); n >= 100 {
			t.Fatalf("workers=%d: %d cells ran after cancel", workers, n)
		}
	}
}

// TestRunCellsProgress: the progress hooks see the fan-out size and
// every completed cell exactly once, with a positive duration.
func TestRunCellsProgress(t *testing.T) {
	for _, workers := range []int{0, 4} {
		var mu sync.Mutex
		total := 0
		seen := map[int]int{}
		sc := Scale{
			Workers:      workers,
			OnCellsStart: func(n int) { mu.Lock(); total += n; mu.Unlock() },
			OnCellDone: func(i int, d time.Duration) {
				mu.Lock()
				seen[i]++
				if d < 0 {
					t.Errorf("cell %d: negative duration", i)
				}
				mu.Unlock()
			},
		}
		if _, err := runCells(sc, 17, func(i int) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
		if total != 17 || len(seen) != 17 {
			t.Fatalf("workers=%d: total %d, distinct done %d", workers, total, len(seen))
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: cell %d reported %d times", workers, i, n)
			}
		}
	}
}
