package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/trace"
)

// renderRows flattens a table into comparable strings.
func renderRows(t *testing.T, tb *trace.Table) []string {
	t.Helper()
	out := make([]string, 0, len(tb.Rows))
	for _, row := range tb.Rows {
		out = append(out, strings.Join(row, "|"))
	}
	return out
}

// TestParallelMatchesSequential: for a fixed seed, every table must be
// bit-identical between the sequential runner and the worker pool — the
// determinism contract of the parallel experiment harness.
func TestParallelMatchesSequential(t *testing.T) {
	type tableFn func(uint64, Scale) (*trace.Table, error)
	tables := map[string]tableFn{
		"mrt":           MRTTable,
		"batch":         BatchTable,
		"smart":         SMARTTable,
		"bicriteria":    BiCriteriaTable,
		"dlt":           DLTTable,
		"cigri":         CiGriTable,
		"decentralized": DecentralizedTable,
		"mixed":         MixedTable,
		"reservations":  ReservationsTable,
		"malleable":     MalleableTable,
		"treedlt":       TreeDLTTable,
		"criteria":      CriteriaMatrixTable,
		"heterogrid":    HeteroGridTable,
		"gridpolicies":  GridPolicyTable,
		"abl-allot":     AblationAllotment,
		"abl-doubling":  AblationDoublingBase,
		"abl-shelf":     AblationShelfFill,
		"abl-chunk":     AblationChunk,
		"abl-kill":      AblationKillPolicy,
		"abl-compact":   AblationCompaction,
	}
	for name, fn := range tables {
		t.Run(name, func(t *testing.T) {
			seq, err := fn(21, Scale{JobFactor: 20})
			if err != nil {
				t.Fatal(err)
			}
			par, err := fn(21, Scale{JobFactor: 20, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			seqRows, parRows := renderRows(t, seq), renderRows(t, par)
			if len(seqRows) != len(parRows) {
				t.Fatalf("row counts differ: sequential %d, parallel %d", len(seqRows), len(parRows))
			}
			for i := range seqRows {
				if seqRows[i] != parRows[i] {
					t.Fatalf("row %d differs:\n  sequential: %s\n  parallel:   %s",
						i, seqRows[i], parRows[i])
				}
			}
		})
	}
}

// TestFig2ParallelMatchesSequential covers the non-Table figure driver.
func TestFig2ParallelMatchesSequential(t *testing.T) {
	np1, p1, err := Fig2Tables(5, Scale{JobFactor: 20})
	if err != nil {
		t.Fatal(err)
	}
	np2, p2, err := Fig2Tables(5, Scale{JobFactor: 20, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(np1) != len(np2) || len(p1) != len(p2) {
		t.Fatalf("series lengths differ")
	}
	for i := range np1 {
		if np1[i] != np2[i] || p1[i] != p2[i] {
			t.Fatalf("point %d differs between runners", i)
		}
	}
}

func TestRunCellsOrderAndErrors(t *testing.T) {
	// Results arrive in cell-index order however many workers run.
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := runCells(Scale{Workers: workers}, 20, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: cell %d = %d", workers, i, v)
			}
		}
	}
	// The lowest-index error wins, matching the sequential loop.
	boom7 := errors.New("boom 7")
	for _, workers := range []int{1, 4} {
		_, err := runCells(Scale{Workers: workers}, 12, func(i int) (int, error) {
			if i >= 7 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != boom7.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom7)
		}
	}
}
