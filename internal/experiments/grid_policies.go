package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// gridPolicyMembers builds the heterogeneous 4-cluster fleet the grid
// policies are compared on (mixed widths and speeds, EASY everywhere).
func gridPolicyMembers() []grid.Member {
	specs := []struct {
		name  string
		m     int
		speed float64
	}{
		{"big", 64, 1}, {"fast", 32, 1.5}, {"old", 32, 0.75}, {"tiny", 16, 2},
	}
	var members []grid.Member
	for _, s := range specs {
		members = append(members, grid.Member{
			Cluster: &platform.Cluster{Name: s.name, Nodes: s.m, ProcsPerNode: 1, Speed: s.speed},
			Policy:  cluster.EASYPolicy{},
		})
	}
	return members
}

// GridPolicyTable is experiment T15: the online grid routing catalog
// (the policies the gridd broker serves) swept head-to-head on one
// shared arrival stream plus one best-effort campaign, via the offline
// routed-grid twin of the broker (grid.Routed). Reports the local §3
// criteria and the campaign's best-effort loss per policy. Rows are
// registry-driven: a policy added to the grid catalog shows up here
// automatically.
func GridPolicyTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"T15 — online grid policies (broker routing catalog): 4 heterogeneous clusters, shared stream + campaign",
		"policy", "migr", "mean flow", "max flow", "makespan", "grid done", "kills", "wasted %", "grid Cmax")
	n := sc.jobs(240)
	tasks := sc.jobs(2400)
	jobs := workload.Parallel(workload.GenConfig{
		N: n, M: 32, Seed: seed, ArrivalRate: 0.1, RigidFraction: 1, MaxProcsCap: 32,
	})
	entries := registry.Grids()
	if err := runRowCells(t, sc, len(entries), func(i int) ([]any, error) {
		entry := entries[i]
		router := entry.New(grid.RouterOptions{Seed: seed, Threshold: 1.3, MaxMove: 8})
		bags := []*workload.Bag{{ID: 0, Runs: tasks, RunTime: 30, Name: "campaign"}}
		r, err := grid.NewRouted(gridPolicyMembers(), cloneJobSlice(jobs), bags, router,
			grid.RoutedOptions{ExchangePeriod: 30}, cluster.KillNewest)
		if err != nil {
			return nil, err
		}
		if err := r.Run(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", entry.Name, err)
		}
		st := r.Stats()
		if st.Rejected > 0 {
			return nil, fmt.Errorf("experiments: %s rejected %d jobs", entry.Name, st.Rejected)
		}
		cs := r.AllCompletions()
		wastedPct := 0.0
		if st.DoneWork+st.WastedWork > 0 {
			wastedPct = 100 * st.WastedWork / (st.DoneWork + st.WastedWork)
		}
		return []any{entry.Name, st.Migrations,
			metrics.MeanFlow(cs), metrics.MaxFlow(cs), metrics.Makespan(cs),
			st.TasksCompleted, st.TasksKilled, wastedPct, st.GridMakespan}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}
