package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/runtrace"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/workload"
)

// defaultGridClusters is the heterogeneous 4-cluster fleet the grid
// policies are compared on by default (mixed widths and speeds).
func defaultGridClusters() []scenario.Cluster {
	return []scenario.Cluster{
		{Name: "big", M: 64, Speed: 1},
		{Name: "fast", M: 32, Speed: 1.5},
		{Name: "old", M: 32, Speed: 0.75},
		{Name: "tiny", M: 16, Speed: 2},
	}
}

// gridMembers materializes a declarative fleet with one shared queue
// policy on every cluster.
func gridMembers(clusters []scenario.Cluster, newPolicy func() cluster.Policy) []grid.Member {
	var members []grid.Member
	for _, c := range clusters {
		speed := c.Speed
		if speed == 0 {
			speed = 1
		}
		members = append(members, grid.Member{
			Cluster: &platform.Cluster{Name: c.Name, Nodes: c.M, ProcsPerNode: 1, Speed: speed},
			Policy:  newPolicy(),
		})
	}
	return members
}

// gridRun is the generic "grid" kind: the online grid routing catalog
// (the policies the gridd broker serves) swept head-to-head on one
// shared arrival stream plus one best-effort campaign, via the offline
// routed-grid twin of the broker (grid.Routed). Reports the local §3
// criteria and the campaign's best-effort loss per routing policy.
//
// Spec surface: Platform.Clusters (the fleet; default the 4-cluster
// mix), Workload (the shared stream), Policies (a single queue policy
// for every cluster; default "easy"), and Grid (campaign size/run time,
// exchange period, threshold, max move, and Policy — one routing policy
// to run, or empty to sweep the whole grid catalog). The built-in
// "gridpolicies" Spec (T15) is an instance of this kind with the paper
// defaults, and stays registry-driven: a policy added to the grid
// catalog shows up there automatically.
func gridRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"kill": scenario.StringParam}); err != nil {
		return nil, err
	}
	headers := []string{"policy", "migr", "mean flow", "max flow", "makespan", "grid done", "kills", "wasted %", "grid Cmax"}
	if spec.Faults != nil {
		// Fault columns only when a plan is set, keeping the healthy
		// table (and its goldens) in its historical shape.
		headers = append(headers, "rejected", "crashes", "requeues")
	}
	t := newTable(1,
		title(spec, "T15 — online grid policies (broker routing catalog): 4 heterogeneous clusters, shared stream + campaign"),
		headers...)
	gen, cfg := genConfig(spec.Workload, workload.GenConfig{
		N: 240, M: 32, ArrivalRate: 0.1, RigidFraction: 1, MaxProcsCap: 32,
	})
	g := spec.Grid
	if g == nil {
		g = &scenario.Grid{}
	}
	// campaign_tasks: -1 disables the campaign; 0/absent keeps the
	// paper default.
	tasks := g.CampaignTasks
	if tasks == 0 {
		tasks = 2400
	}
	if tasks < 0 {
		tasks = 0
	} else {
		tasks = sc.jobs(tasks)
	}
	runTime := g.CampaignRunTime
	if runTime == 0 {
		runTime = 30
	}
	ropt := grid.RouterOptions{Seed: seed, Threshold: g.Threshold, MaxMove: g.MaxMove}
	if ropt.Threshold == 0 {
		ropt.Threshold = 1.3
	}
	if ropt.MaxMove == 0 {
		ropt.MaxMove = 8
	}
	period := g.ExchangePeriod
	if period == 0 {
		period = 30
	}
	clusters := defaultGridClusters()
	if spec.Platform != nil && len(spec.Platform.Clusters) > 0 {
		clusters = spec.Platform.Clusters
	}
	queueName := "easy"
	if len(spec.Policies) == 1 {
		queueName = spec.Policies[0]
	} else if len(spec.Policies) > 1 {
		return nil, fmt.Errorf("experiments: grid kind takes at most one queue policy, got %d", len(spec.Policies))
	}
	queue, err := registry.Get(queueName)
	if err != nil {
		return nil, err
	}
	if !queue.Caps.Online {
		return nil, fmt.Errorf("experiments: grid queue policy %q is not online-capable", queueName)
	}
	kill, err := killPolicy(spec.String("kill", "newest"))
	if err != nil {
		return nil, err
	}
	var entries []*registry.GridEntry
	if g.Policy != "" {
		e, err := registry.GetGrid(g.Policy)
		if err != nil {
			return nil, err
		}
		entries = []*registry.GridEntry{e}
	} else {
		entries = registry.Grids()
	}
	n := sc.jobs(cfg.N)
	cfg.N, cfg.Seed = n, seed
	jobs, err := generate(gen, cfg)
	if err != nil {
		return nil, err
	}
	tc := newTraceCollector(spec, len(entries))
	if err := runRowCells(t, sc, len(entries), func(i int) ([]any, error) {
		entry := entries[i]
		router := entry.New(ropt)
		var bags []*workload.Bag
		if tasks > 0 {
			bags = []*workload.Bag{{ID: 0, Runs: tasks, RunTime: runTime, Name: "campaign"}}
		}
		r, err := grid.NewRouted(gridMembers(clusters, queue.NewPolicy), cloneJobSlice(jobs), bags, router,
			grid.RoutedOptions{ExchangePeriod: period}, kill)
		if err != nil {
			return nil, err
		}
		var crashes, requeues int
		if spec.Faults != nil {
			r.SetPartitions(spec.Faults.Partitions)
			if planHasClusterFaults(*spec.Faults) {
				for ci := range clusters {
					fp := *spec.Faults
					fp.Partitions = nil
					// Every cluster churns from its own stream (one shared
					// stream would crash the whole fleet in lockstep).
					fp.Seed ^= seed + uint64(ci)*0x9e3779b97f4a7c15
					if _, err := faults.Attach(r.Sim(ci), fp); err != nil {
						return nil, err
					}
				}
			}
		}
		rec := tc.recorder()
		if rec != nil {
			for ci := range clusters {
				name := clusters[ci].Name
				if name == "" {
					name = fmt.Sprintf("c%d", ci)
				}
				rec.Attach(r.Sim(ci), name)
			}
			r.OnMigrate = func(j *workload.Job, src, dst int, now float64) {
				rec.Record(now, runtrace.EvMigrate, j.ID, j.MinProcs, dst)
			}
		}
		if err := r.Run(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", entry.Name, err)
		}
		tc.add(i, entry.Name, rec)
		st := r.Stats()
		if st.Rejected > 0 && spec.Faults == nil {
			// Under a fault plan rejections are expected (a job can
			// arrive while every wide-enough cluster is partitioned);
			// they get their own column instead of failing the run.
			return nil, fmt.Errorf("experiments: %s rejected %d jobs", entry.Name, st.Rejected)
		}
		if spec.Faults != nil {
			for ci := range clusters {
				fs := r.Sim(ci).FaultStats()
				crashes += fs.Crashes
				requeues += fs.Requeues
			}
		}
		cs := r.AllCompletions()
		wastedPct := 0.0
		if st.DoneWork+st.WastedWork > 0 {
			wastedPct = 100 * st.WastedWork / (st.DoneWork + st.WastedWork)
		}
		row := []any{entry.Name, st.Migrations,
			metrics.MeanFlow(cs), metrics.MaxFlow(cs), metrics.Makespan(cs),
			st.TasksCompleted, st.TasksKilled, wastedPct, st.GridMakespan}
		if spec.Faults != nil {
			row = append(row, st.Rejected, crashes, requeues)
		}
		return row, nil
	}); err != nil {
		return nil, err
	}
	res := t.Result()
	tc.install(res)
	return res, nil
}

// GridPolicyTable is the compatibility entry point for T15.
func GridPolicyTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := gridRun(mustSpec("gridpolicies"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}
