package experiments

import (
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/workload"
)

// replayRun is the "replay" kind: every named online-capable policy on
// one streamed workload — jobs admitted lazily through workload.Source
// as their release times come due, metrics folded by the O(1)
// accumulator, completion history bounded by the retention policy. The
// table is identical to what a materialized run would produce; what
// changes is peak memory, which stays O(active jobs) however long the
// stream is. That makes this the kind that replays multi-million-job
// SWF archives (params.swf) without holding the trace in memory.
//
// Spec surface: Workload (synthetic stream shape when no file is
// given; generator parallel|sequential|mixed|communities), Policies
// (default: the whole online catalog), params "swf" (path to an SWF
// trace streamed instead of a generator), "retain"
// ("none"|"ring"|"full", default "none"), "ring" (tail capacity for
// retain=ring, default 1024) and "kill" ("newest"|"largest").
func replayRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{
		"swf":    scenario.StringParam,
		"retain": scenario.StringParam,
		"ring":   scenario.IntParam,
		"kill":   scenario.StringParam,
	}); err != nil {
		return nil, err
	}
	gen, cfg := genConfig(spec.Workload, workload.GenConfig{N: 2000, M: 64, ArrivalRate: 2, RigidFraction: 0.5})
	m := cfg.M
	if spec.Platform != nil && spec.Platform.M != 0 {
		m = spec.Platform.M
	}
	entries, err := resolvePolicies(spec.Policies, true)
	if err != nil {
		return nil, err
	}
	kill, err := killPolicy(spec.String("kill", "newest"))
	if err != nil {
		return nil, err
	}
	swf := spec.String("swf", "")
	retain := spec.String("retain", "none")
	ringCap := spec.Int("ring", 1024)
	switch retain {
	case "none", "ring", "full":
	default:
		return nil, fmt.Errorf("experiments: replay kind: unknown retain %q (none|ring|full)", retain)
	}
	cfg.N, cfg.Seed = sc.jobs(cfg.N), seed
	src := fmt.Sprintf("%s stream, n=%d", gen, cfg.N)
	if swf != "" {
		src = "swf " + swf
	}
	t := newTable(1,
		title(spec, fmt.Sprintf("EXT5 — streaming replay (%s, m=%d, retain=%s): lazy admission, O(1) metrics", src, m, retain)),
		"policy", "jobs", "Cmax", "mean flow", "max stretch", "util %")
	tc := newTraceCollector(spec, len(entries))
	if err := runRowCells(t, sc, len(entries), func(i int) ([]any, error) {
		e := entries[i]
		// Each policy cell streams its own copy of the workload: a fresh
		// generator (same seed → same jobs) or a fresh file handle.
		var source workload.Source
		if swf != "" {
			f, err := os.Open(swf)
			if err != nil {
				return nil, fmt.Errorf("experiments: replay: %w", err)
			}
			defer f.Close()
			source = trace.NewSWFJobSource(f)
		} else {
			var err error
			if source, err = generateSource(gen, cfg); err != nil {
				return nil, err
			}
		}
		sim, err := cluster.New(des.New(), m, 1, e.NewPolicy(), kill)
		if err != nil {
			return nil, err
		}
		switch retain {
		case "none":
			err = sim.SetRetention(metrics.NewDiscard())
		case "ring":
			err = sim.SetRetention(metrics.NewRing(ringCap))
		}
		if err != nil {
			return nil, err
		}
		rec := tc.recorder()
		rec.Attach(sim, "")
		if err := sim.Stream(source); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		if err := sim.Run(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
		}
		tc.add(i, e.Name, rec)
		rep := sim.Report()
		return []any{
			e.Name, sim.CompletedCount(), rep.Makespan,
			rep.MeanFlow, rep.MaxStretch, 100 * rep.Utilization,
		}, nil
	}); err != nil {
		return nil, err
	}
	res := t.Result()
	tc.install(res)
	return res, nil
}
