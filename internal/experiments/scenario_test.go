package experiments

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/registry"
	"repro/internal/scenario"
)

// TestCatalogComplete: every historical experiment id is in the
// scenario catalog with a registered kind, in the legacy CLI order
// (figures, tables, ablations).
func TestCatalogComplete(t *testing.T) {
	want := []string{
		"fig2",
		"mrt", "batch", "smart", "bicriteria", "dlt", "cigri", "decentralized",
		"mixed", "reservations", "malleable", "treedlt", "criteria", "heterogrid",
		"policies", "gridpolicies", "replay", "churn", "faulttwin",
		"ablation-allotment", "ablation-doubling-base", "ablation-shelf-fill",
		"ablation-chunk", "ablation-kill-policy", "ablation-compaction",
	}
	got := scenario.CatalogIDs("")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("catalog order:\n got %v\nwant %v", got, want)
	}
	kinds := map[string]bool{}
	for _, k := range scenario.Kinds() {
		kinds[k] = true
	}
	for _, s := range scenario.Catalog() {
		if !kinds[s.Kind] {
			t.Fatalf("spec %q uses unregistered kind %q", s.ID, s.Kind)
		}
		if s.Desc == "" {
			t.Fatalf("spec %q has no description (the usage text needs one)", s.ID)
		}
	}
	// The generic kinds exist even though no built-in uses "offline".
	for _, k := range []string{"offline", "online", "grid"} {
		if !kinds[k] {
			t.Fatalf("generic kind %q not registered", k)
		}
	}
}

// TestSpecJSONRoundTripRuns: for every built-in table spec, encode →
// decode → run must match the Go-built spec cell-for-cell (the codec
// and the params coercion cannot change results).
func TestSpecJSONRoundTripRuns(t *testing.T) {
	opt := scenario.RunOptions{Seed: 42, Scale: scenario.Scale{JobFactor: 20}}
	for _, spec := range scenario.Catalog() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			t.Parallel()
			data, err := spec.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := scenario.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			res1, err := scenario.Run(spec, opt)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := scenario.Run(decoded, opt)
			if err != nil {
				t.Fatal(err)
			}
			var b1, b2 bytes.Buffer
			if err := res1.Emit(&b1, false); err != nil {
				t.Fatal(err)
			}
			if err := res2.Emit(&b2, false); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatalf("round-tripped spec diverged:\n--- go-built\n%s\n--- json\n%s", b1.String(), b2.String())
			}
			if res1.Table != nil && res2.Table != nil {
				if !reflect.DeepEqual(res1.Table.Rows, res2.Table.Rows) {
					t.Fatal("cell-level mismatch between go-built and round-tripped spec")
				}
			}
		})
	}
}

// TestCompatibilityWrappersUseCatalog: the exported XxxTable entry
// points must produce the same table as the scenario engine (they are
// documented as equivalent).
func TestCompatibilityWrappersUseCatalog(t *testing.T) {
	sc := Scale{JobFactor: 20}
	wrap, err := MRTTable(11, sc)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := scenario.Lookup("mrt")
	res, err := scenario.Run(spec, scenario.RunOptions{Seed: 11, Scale: scenario.Scale{JobFactor: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wrap.Rows, res.Table.Rows) {
		t.Fatal("MRTTable and scenario engine disagree")
	}
}

// TestGenericOfflineKind: the JSON-composable path — a spec written as
// data sweeps chosen policies over a chosen workload with chosen
// metric columns.
func TestGenericOfflineKind(t *testing.T) {
	spec := scenario.New("custom-offline", "offline",
		scenario.WithWorkload(scenario.Workload{N: 60, M: 32, Weighted: true}),
		scenario.WithPolicies("mrt", "smart", "ffdh"),
		scenario.WithMetrics("cmax_ratio", "swc_ratio", "util"),
	)
	res, err := scenario.Run(spec, scenario.RunOptions{Seed: 5, Scale: scenario.Scale{JobFactor: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Table
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per policy)", len(tb.Rows))
	}
	wantHeaders := []string{"policy", "Cmax ratio", "ΣwC ratio", "util %"}
	if !reflect.DeepEqual(tb.Headers, wantHeaders) {
		t.Fatalf("headers = %v", tb.Headers)
	}
	for i, name := range []string{"mrt", "smart", "ffdh"} {
		if tb.Rows[i][0] != name {
			t.Fatalf("row %d policy = %q, want %q", i, tb.Rows[i][0], name)
		}
	}
	// Unknown metric and offline-incapable policy are rejected.
	bad := scenario.New("x", "offline", scenario.WithMetrics("nope"))
	if _, err := scenario.Run(bad, scenario.RunOptions{Seed: 1}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	bad2 := scenario.New("x", "offline", scenario.WithPolicies("easy"))
	if _, err := scenario.Run(bad2, scenario.RunOptions{Seed: 1}); err == nil {
		t.Fatal("online-only policy accepted by offline kind")
	}
}

// TestGenericOnlineKind: policy subset + custom rate axis.
func TestGenericOnlineKind(t *testing.T) {
	spec := scenario.New("custom-online", "online",
		scenario.WithWorkload(scenario.Workload{N: 80, M: 32, RigidFraction: 1}),
		scenario.WithPolicies("fcfs", "easy"),
		scenario.WithParam("rates", []float64{0.1}),
	)
	res, err := scenario.Run(spec, scenario.RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (1 rate × 2 policies)", len(res.Table.Rows))
	}
	for i, name := range []string{"fcfs", "easy"} {
		if res.Table.Rows[i][2] != name {
			t.Fatalf("row %d policy = %q", i, res.Table.Rows[i][2])
		}
	}
	bad := scenario.New("x", "online", scenario.WithPolicies("mrt"))
	if _, err := scenario.Run(bad, scenario.RunOptions{Seed: 1}); err == nil {
		t.Fatal("offline-only policy accepted by online kind")
	}
}

// TestGenericGridKind: custom fleet + single routing policy.
func TestGenericGridKind(t *testing.T) {
	spec := scenario.New("custom-grid", "grid",
		scenario.WithWorkload(scenario.Workload{N: 40, M: 16, ArrivalRate: 0.2, RigidFraction: 1, MaxProcsCap: 16}),
		scenario.WithPlatform(scenario.Platform{Clusters: []scenario.Cluster{
			{Name: "a", M: 32}, {Name: "b", M: 16, Speed: 2},
		}}),
		scenario.WithGrid(scenario.Grid{Policy: "centralized", CampaignTasks: 200, CampaignRunTime: 10}),
	)
	res, err := scenario.Run(spec, scenario.RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 1 || res.Table.Rows[0][0] != "centralized" {
		t.Fatalf("rows = %v", res.Table.Rows)
	}
	// Empty Grid.Policy sweeps the whole catalog.
	sweep := scenario.New("sweep-grid", "grid",
		scenario.WithWorkload(scenario.Workload{N: 30, M: 16, ArrivalRate: 0.2, RigidFraction: 1, MaxProcsCap: 16}),
		scenario.WithGrid(scenario.Grid{CampaignTasks: 50, CampaignRunTime: 10}))
	res2, err := scenario.Run(sweep, scenario.RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Table.Rows) != len(registry.Grids()) {
		t.Fatalf("sweep rows = %d, want %d", len(res2.Table.Rows), len(registry.Grids()))
	}
	bad := scenario.New("x", "grid", scenario.WithPolicies("easy", "fcfs"))
	if _, err := scenario.Run(bad, scenario.RunOptions{Seed: 1}); err == nil {
		t.Fatal("multiple queue policies accepted by grid kind")
	}
}

// TestSpecFileLoading: a scenario written to disk loads and runs (the
// cmd/experiments `run file.json` path).
func TestSpecFileLoading(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/s.json"
	spec := scenario.New("file-spec", "offline",
		scenario.WithWorkload(scenario.Workload{N: 40, M: 16}),
		scenario.WithPolicies("ffdh"))
	data, err := spec.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := scenario.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "file-spec" || got.Kind != "offline" {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := scenario.Run(got, scenario.RunOptions{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Load(dir + "/missing.json"); err == nil {
		t.Fatal("missing file loaded")
	}
	if err := writeFile(dir+"/bad.json", []byte(`{"id":"x","kind":"k","bogus":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Load(dir + "/bad.json"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestKindsRejectBadParams: a typo'd or mistyped param in a scenario
// file errors instead of silently running the default sweep.
func TestKindsRejectBadParams(t *testing.T) {
	opt := scenario.RunOptions{Seed: 1, Scale: scenario.Scale{JobFactor: 20}}
	typo := scenario.New("typo", "mrt", scenario.WithParam("mss", []int{16}))
	if _, err := scenario.Run(typo, opt); err == nil || !strings.Contains(err.Error(), "unknown param") {
		t.Fatalf("typo'd param not rejected: %v", err)
	}
	mistyped := scenario.New("mistyped", "mrt", scenario.WithParam("eps", "0.005"))
	if _, err := scenario.Run(mistyped, opt); err == nil || !strings.Contains(err.Error(), "must be a") {
		t.Fatalf("mistyped param not rejected: %v", err)
	}
}

// TestGridKindSentinels: arrival_rate -1 forces an offline stream and
// campaign_tasks -1 disables the campaign (zero would mean "default").
func TestGridKindSentinels(t *testing.T) {
	spec := scenario.New("no-campaign", "grid",
		scenario.WithWorkload(scenario.Workload{N: 30, M: 16, ArrivalRate: -1, RigidFraction: 1, MaxProcsCap: 16}),
		scenario.WithGrid(scenario.Grid{Policy: "centralized", CampaignTasks: -1}))
	res, err := scenario.Run(spec, scenario.RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Table.Rows[0]
	// "grid done" (column 5) must be 0: no campaign ran.
	if row[5] != "0" {
		t.Fatalf("campaign not disabled: row %v", row)
	}
}

// TestOnlineKindWorkloadRate: workload.arrival_rate pins a single rate
// for the online kind; combining it with params.rates errors.
func TestOnlineKindWorkloadRate(t *testing.T) {
	spec := scenario.New("single-rate", "online",
		scenario.WithWorkload(scenario.Workload{N: 60, M: 32, ArrivalRate: 0.3, RigidFraction: 1}),
		scenario.WithPolicies("fcfs"))
	res, err := scenario.Run(spec, scenario.RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 1 || res.Table.Rows[0][0] != "0.3" {
		t.Fatalf("rows = %v, want one row at rate 0.3", res.Table.Rows)
	}
	both := scenario.New("both", "online",
		scenario.WithWorkload(scenario.Workload{ArrivalRate: 0.3}),
		scenario.WithParam("rates", []float64{0.1}))
	if _, err := scenario.Run(both, scenario.RunOptions{Seed: 5}); err == nil {
		t.Fatal("arrival_rate + rates accepted together")
	}
}
