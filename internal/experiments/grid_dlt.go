package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/dlt"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/rigid"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DLTTable is experiment T5 (§2.1): single-round vs multi-round vs
// dynamic self-scheduling across latency regimes on bus and star
// platforms, with the crossover the paper's model discussion predicts.
func DLTTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"T5 — §2.1 divisible load policies (makespans, lower bound in last column)",
		"platform", "latency", "1 round", "4 rounds", "16 rounds", "self-sched", "LB")
	platforms := []struct {
		name string
		star *dlt.Star
	}{
		{"bus-4", dlt.Bus([]float64{1, 1, 1, 1}, 0.2, 0)},
		{"star-hetero", &dlt.Star{Workers: []dlt.Worker{
			{Compute: 0.8, Link: 0.02},
			{Compute: 1.0, Link: 0.08},
			{Compute: 1.3, Link: 0.40},
			{Compute: 1.6, Link: 0.40},
		}}},
	}
	const W = 10000.0
	for _, pf := range platforms {
		for _, latency := range []float64{0, 1, 10, 100} {
			pf.star.Latency = latency
			one, err := dlt.SingleRound(pf.star, W)
			if err != nil {
				return nil, err
			}
			four, err := dlt.MultiRound(pf.star, W, 4)
			if err != nil {
				return nil, err
			}
			sixteen, err := dlt.MultiRound(pf.star, W, 16)
			if err != nil {
				return nil, err
			}
			dyn, err := dlt.SelfSchedule(pf.star, W, W/100)
			if err != nil {
				return nil, err
			}
			t.AddRow(pf.name, latency,
				one.Makespan, four.Makespan, sixteen.Makespan, dyn.Makespan,
				dlt.LowerBound(pf.star, W))
		}
	}
	return t, nil
}

// communityMembers builds the CIMENT members with per-cluster community
// workloads (jobs IDs unique across the grid).
func communityMembers(seed uint64, jobsPerCluster int, rate float64) []grid.Member {
	g := platform.CIMENT()
	var members []grid.Member
	id := 0
	for _, cl := range g.Clusters {
		jobs := workload.Communities(workload.CIMENTCommunities(), jobsPerCluster, cl.Procs(), rate, seed)
		seed++
		for _, j := range jobs {
			j.ID = id
			id++
		}
		members = append(members, grid.Member{Cluster: cl, Policy: cluster.EASYPolicy{}, Local: jobs})
	}
	return members
}

func cloneMembers(ms []grid.Member) []grid.Member {
	out := make([]grid.Member, len(ms))
	for i, m := range ms {
		jobs := make([]*workload.Job, len(m.Local))
		for k, j := range m.Local {
			jobs[k] = j.Clone()
		}
		out[i] = grid.Member{Cluster: m.Cluster, Policy: m.Policy, Local: jobs}
	}
	return out
}

// CiGriTable is experiment T6 (§5.2 centralized): the CIMENT grid running
// community jobs plus a multi-parametric campaign. Reports the fairness
// contract (local mean flow identical with and without the grid), grid
// throughput and the kill/resubmit overhead.
func CiGriTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"T6 — §5.2 centralized CiGri on CIMENT (Figure 3 platform)",
		"local load", "bag tasks", "local Δflow", "grid done", "kills", "wasted %", "grid makespan")
	for _, load := range []struct {
		name string
		rate float64
		jobs int
	}{
		{"light", 0.001, sc.jobs(40)},
		{"heavy", 0.01, sc.jobs(120)},
	} {
		members := communityMembers(seed, load.jobs, load.rate)
		seed += 10
		// Isolated baseline for the fairness check.
		iso, err := grid.RunIsolated(cloneMembers(members), cluster.KillNewest)
		if err != nil {
			return nil, err
		}
		runs := sc.jobs(5000)
		bags := []*workload.Bag{{ID: 0, Runs: runs, RunTime: 60, Name: "campaign"}}
		g, err := grid.NewCentralized(members, bags, cluster.KillNewest)
		if err != nil {
			return nil, err
		}
		if err := g.Run(); err != nil {
			return nil, err
		}
		var withGrid []metrics.Completion
		for i := 0; i < g.Members(); i++ {
			withGrid = append(withGrid, g.LocalCompletions(i)...)
		}
		st := g.Stats()
		delta := math.Abs(metrics.MeanFlow(withGrid) - metrics.MeanFlow(iso))
		wastedPct := 0.0
		if st.DoneWork+st.WastedWork > 0 {
			wastedPct = 100 * st.WastedWork / (st.DoneWork + st.WastedWork)
		}
		t.AddRow(load.name, runs, delta, st.TasksCompleted, st.TasksKilled,
			wastedPct, st.GridMakespan)
	}
	return t, nil
}

// DecentralizedTable is experiment T7 (§5.2 decentralized): the same
// imbalanced workload run isolated versus with periodic load exchange.
func DecentralizedTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"T7 — §5.2 decentralized load exchange (4×32-proc clusters, all load on cluster 0)",
		"scheme", "migrations", "mean flow", "max flow", "makespan")
	rng := stats.NewRNG(seed)
	n := sc.jobs(200)
	var jobs []*workload.Job
	clock := 0.0
	for i := 0; i < n; i++ {
		clock += rng.Exp(0.2)
		procs := rng.IntRange(1, 16)
		jobs = append(jobs, &workload.Job{
			ID: i, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: clock,
			SeqTime: rng.Range(30, 600) * float64(procs), MinProcs: procs, MaxProcs: procs,
			Model: workload.Linear{},
		})
	}
	mkMembers := func(js []*workload.Job) []grid.Member {
		split := grid.SplitJobsSkewed(js, 4, 1.0)
		var ms []grid.Member
		for i := 0; i < 4; i++ {
			ms = append(ms, grid.Member{
				Cluster: &platform.Cluster{
					Name: fmt.Sprintf("c%d", i), Nodes: 32, ProcsPerNode: 1, Speed: 1,
				},
				Policy: cluster.EASYPolicy{},
				Local:  split[i],
			})
		}
		return ms
	}
	iso, err := grid.RunIsolated(mkMembers(cloneJobSlice(jobs)), cluster.KillNewest)
	if err != nil {
		return nil, err
	}
	t.AddRow("isolated", 0, metrics.MeanFlow(iso), metrics.MaxFlow(iso), metrics.Makespan(iso))

	d, err := grid.NewDecentralized(mkMembers(cloneJobSlice(jobs)), grid.DecentralizedOptions{
		Period: 30, Threshold: 1.3, MaxMove: 8,
	}, cluster.KillNewest)
	if err != nil {
		return nil, err
	}
	if err := d.Run(); err != nil {
		return nil, err
	}
	ex := d.AllCompletions()
	t.AddRow("push exchange", d.Stats().Migrations,
		metrics.MeanFlow(ex), metrics.MaxFlow(ex), metrics.Makespan(ex))

	p, err := grid.NewDecentralized(mkMembers(cloneJobSlice(jobs)), grid.DecentralizedOptions{
		Period: 30, MaxMove: 8, Protocol: grid.Pull,
	}, cluster.KillNewest)
	if err != nil {
		return nil, err
	}
	if err := p.Run(); err != nil {
		return nil, err
	}
	pc := p.AllCompletions()
	t.AddRow("pull stealing", p.Stats().Migrations,
		metrics.MeanFlow(pc), metrics.MaxFlow(pc), metrics.Makespan(pc))
	return t, nil
}

// ReservationsTable is experiment T9 (§5.1): scheduling around advance
// reservations with FCFS versus conservative backfilling.
func ReservationsTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"T9 — §5.1 reservations: makespan ratios to the reservation-free lower bound",
		"reserved", "window", "FCFS", "conservative", "no-reservation conservative")
	m := 32
	n := sc.jobs(100)
	jobs := workload.Parallel(workload.GenConfig{
		N: n, M: m, Seed: seed, RigidFraction: 1, MaxProcsCap: 16, ArrivalRate: 0.05,
	})
	base, err := rigid.Conservative(jobs, m)
	if err != nil {
		return nil, err
	}
	for _, res := range []struct {
		procs int
		end   float64
	}{
		{8, 2000}, {16, 4000},
	} {
		cal, err := platform.NewCalendar(m, []platform.Reservation{
			{Name: "demo", Start: 500, End: res.end, Procs: res.procs},
		})
		if err != nil {
			return nil, err
		}
		f, err := rigid.FCFSWithCalendar(jobs, m, cal)
		if err != nil {
			return nil, err
		}
		c, err := rigid.ConservativeWithCalendar(jobs, m, cal)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d/%d procs", res.procs, m),
			fmt.Sprintf("[500,%g)", res.end),
			f.Makespan()/base.Makespan(),
			c.Makespan()/base.Makespan(),
			1.0)
	}
	return t, nil
}

func cloneJobSlice(jobs []*workload.Job) []*workload.Job {
	out := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}
