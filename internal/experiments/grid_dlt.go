package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/dlt"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/rigid"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// dltPlatforms builds the T5 platforms fresh (cells mutate Latency, so
// each cell constructs its own copy).
func dltPlatforms() []struct {
	name string
	star *dlt.Star
} {
	return []struct {
		name string
		star *dlt.Star
	}{
		{"bus-4", dlt.Bus([]float64{1, 1, 1, 1}, 0.2, 0)},
		{"star-hetero", &dlt.Star{Workers: []dlt.Worker{
			{Compute: 0.8, Link: 0.02},
			{Compute: 1.0, Link: 0.08},
			{Compute: 1.3, Link: 0.40},
			{Compute: 1.6, Link: 0.40},
		}}},
	}
}

// dltRun is experiment T5 (§2.1): single-round vs multi-round vs
// dynamic self-scheduling across latency regimes on bus and star
// platforms, with the crossover the paper's model discussion predicts.
// Params: "latencies", "w" (total load).
func dltRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"latencies": scenario.FloatsParam, "w": scenario.FloatParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "T5 — §2.1 divisible load policies (makespans, lower bound in last column)"),
		"platform", "latency", "1 round", "4 rounds", "16 rounds", "self-sched", "LB")
	latencies := spec.Floats("latencies", []float64{0, 1, 10, 100})
	nPlatforms := len(dltPlatforms())
	W := spec.Float("w", 10000)
	if err := runRowCells(t, sc, nPlatforms*len(latencies), func(i int) ([]any, error) {
		pf := dltPlatforms()[i/len(latencies)]
		pf.star.Latency = latencies[i%len(latencies)]
		one, err := dlt.SingleRound(pf.star, W)
		if err != nil {
			return nil, err
		}
		four, err := dlt.MultiRound(pf.star, W, 4)
		if err != nil {
			return nil, err
		}
		sixteen, err := dlt.MultiRound(pf.star, W, 16)
		if err != nil {
			return nil, err
		}
		dyn, err := dlt.SelfSchedule(pf.star, W, W/100)
		if err != nil {
			return nil, err
		}
		return []any{pf.name, pf.star.Latency,
			one.Makespan, four.Makespan, sixteen.Makespan, dyn.Makespan,
			dlt.LowerBound(pf.star, W)}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// DLTTable is the compatibility entry point for T5.
func DLTTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := dltRun(mustSpec("dlt"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// communityMembers builds the CIMENT members with per-cluster community
// workloads (jobs IDs unique across the grid).
func communityMembers(seed uint64, jobsPerCluster int, rate float64) []grid.Member {
	g := platform.CIMENT()
	var members []grid.Member
	id := 0
	for _, cl := range g.Clusters {
		jobs := workload.Communities(workload.CIMENTCommunities(), jobsPerCluster, cl.Procs(), rate, seed)
		seed++
		for _, j := range jobs {
			j.ID = id
			id++
		}
		members = append(members, grid.Member{Cluster: cl, Policy: cluster.EASYPolicy{}, Local: jobs})
	}
	return members
}

// cigriRun is experiment T6 (§5.2 centralized): the CIMENT grid running
// community jobs plus a multi-parametric campaign. Reports the fairness
// contract (local mean flow identical with and without the grid), grid
// throughput and the kill/resubmit overhead. Params: "runs" (campaign
// size), "run_time" (per-task duration).
//
// Each load level is a cell, and within a cell the isolated baseline and
// the grid run are themselves independent cells (both rebuild the same
// member workloads from the cell seed), so a full parallel run keeps all
// four simulations in flight.
func cigriRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"runs": scenario.IntParam, "run_time": scenario.FloatParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "T6 — §5.2 centralized CiGri on CIMENT (Figure 3 platform)"),
		"local load", "bag tasks", "local Δflow", "grid done", "kills", "wasted %", "grid makespan")
	loads := []struct {
		name string
		rate float64
		jobs int
	}{
		{"light", 0.001, sc.jobs(40)},
		{"heavy", 0.01, sc.jobs(120)},
	}
	runTime := spec.Float("run_time", 60)
	type gridResult struct {
		flowIso  float64 // isolated-run mean flow (sub-cell 0)
		flowGrid float64 // grid-run mean flow (sub-cell 1)
		stats    grid.CentralizedStats
	}
	if err := runRowCells(t, sc, len(loads), func(i int) ([]any, error) {
		load := loads[i]
		cellSeed := seed + uint64(10*i)
		runs := sc.jobs(spec.Int("runs", 5000))
		parts, err := runCells(sc, 2, func(sub int) (gridResult, error) {
			members := communityMembers(cellSeed, load.jobs, load.rate)
			if sub == 0 {
				iso, err := grid.RunIsolated(members, cluster.KillNewest)
				if err != nil {
					return gridResult{}, err
				}
				return gridResult{flowIso: metrics.MeanFlow(iso)}, nil
			}
			bags := []*workload.Bag{{ID: 0, Runs: runs, RunTime: runTime, Name: "campaign"}}
			g, err := grid.NewCentralized(members, bags, cluster.KillNewest)
			if err != nil {
				return gridResult{}, err
			}
			if err := g.Run(); err != nil {
				return gridResult{}, err
			}
			var withGrid []metrics.Completion
			for k := 0; k < g.Members(); k++ {
				withGrid = append(withGrid, g.LocalCompletions(k)...)
			}
			return gridResult{flowGrid: metrics.MeanFlow(withGrid), stats: g.Stats()}, nil
		})
		if err != nil {
			return nil, err
		}
		st := parts[1].stats
		delta := math.Abs(parts[1].flowGrid - parts[0].flowIso)
		wastedPct := 0.0
		if st.DoneWork+st.WastedWork > 0 {
			wastedPct = 100 * st.WastedWork / (st.DoneWork + st.WastedWork)
		}
		return []any{load.name, runs, delta, st.TasksCompleted, st.TasksKilled,
			wastedPct, st.GridMakespan}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// CiGriTable is the compatibility entry point for T6.
func CiGriTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := cigriRun(mustSpec("cigri"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// decentralizedRun is experiment T7 (§5.2 decentralized): the same
// imbalanced workload run isolated versus with periodic load exchange.
// The three schemes (isolated, push, pull) are independent cells over
// clones of one shared workload. Params: "n", "period", "threshold",
// "max_move".
func decentralizedRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"n": scenario.IntParam, "period": scenario.FloatParam, "threshold": scenario.FloatParam, "max_move": scenario.IntParam}); err != nil {
		return nil, err
	}
	t := newTable(1,
		title(spec, "T7 — §5.2 decentralized load exchange (4×32-proc clusters, all load on cluster 0)"),
		"scheme", "migrations", "mean flow", "max flow", "makespan")
	rng := stats.NewRNG(seed)
	n := sc.jobs(spec.Int("n", 200))
	period := spec.Float("period", 30)
	threshold := spec.Float("threshold", 1.3)
	maxMove := spec.Int("max_move", 8)
	var jobs []*workload.Job
	clock := 0.0
	for i := 0; i < n; i++ {
		clock += rng.Exp(0.2)
		procs := rng.IntRange(1, 16)
		jobs = append(jobs, &workload.Job{
			ID: i, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: clock,
			SeqTime: rng.Range(30, 600) * float64(procs), MinProcs: procs, MaxProcs: procs,
			Model: workload.Linear{},
		})
	}
	mkMembers := func(js []*workload.Job) []grid.Member {
		split := grid.SplitJobsSkewed(js, 4, 1.0)
		var ms []grid.Member
		for i := 0; i < 4; i++ {
			ms = append(ms, grid.Member{
				Cluster: &platform.Cluster{
					Name: fmt.Sprintf("c%d", i), Nodes: 32, ProcsPerNode: 1, Speed: 1,
				},
				Policy: cluster.EASYPolicy{},
				Local:  split[i],
			})
		}
		return ms
	}
	if err := runRowCells(t, sc, 3, func(i int) ([]any, error) {
		members := mkMembers(cloneJobSlice(jobs))
		switch i {
		case 0:
			iso, err := grid.RunIsolated(members, cluster.KillNewest)
			if err != nil {
				return nil, err
			}
			return []any{"isolated", 0,
				metrics.MeanFlow(iso), metrics.MaxFlow(iso), metrics.Makespan(iso)}, nil
		case 1:
			d, err := grid.NewDecentralized(members, grid.DecentralizedOptions{
				Period: period, Threshold: threshold, MaxMove: maxMove,
			}, cluster.KillNewest)
			if err != nil {
				return nil, err
			}
			if err := d.Run(); err != nil {
				return nil, err
			}
			ex := d.AllCompletions()
			return []any{"push exchange", d.Stats().Migrations,
				metrics.MeanFlow(ex), metrics.MaxFlow(ex), metrics.Makespan(ex)}, nil
		default:
			p, err := grid.NewDecentralized(members, grid.DecentralizedOptions{
				Period: period, MaxMove: maxMove, Protocol: grid.Pull,
			}, cluster.KillNewest)
			if err != nil {
				return nil, err
			}
			if err := p.Run(); err != nil {
				return nil, err
			}
			pc := p.AllCompletions()
			return []any{"pull stealing", p.Stats().Migrations,
				metrics.MeanFlow(pc), metrics.MaxFlow(pc), metrics.Makespan(pc)}, nil
		}
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// DecentralizedTable is the compatibility entry point for T7.
func DecentralizedTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := decentralizedRun(mustSpec("decentralized"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// reservationsRun is experiment T9 (§5.1): scheduling around advance
// reservations with FCFS versus conservative backfilling. Params: "m",
// "n".
func reservationsRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"m": scenario.IntParam, "n": scenario.IntParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "T9 — §5.1 reservations: makespan ratios to the reservation-free lower bound"),
		"reserved", "window", "FCFS", "conservative", "no-reservation conservative")
	m := spec.Int("m", 32)
	n := sc.jobs(spec.Int("n", 100))
	jobs := workload.Parallel(workload.GenConfig{
		N: n, M: m, Seed: seed, RigidFraction: 1, MaxProcsCap: 16, ArrivalRate: 0.05,
	})
	resCfgs := []struct {
		procs int
		end   float64
	}{
		{8, 2000}, {16, 4000},
	}
	// Cell 0 is the reservation-free baseline every row normalizes by;
	// cells 1..n are the reservation scenarios (FCFS + conservative
	// makespans). The profile builders only read the shared job slice.
	type resCell struct {
		fcfs, cons float64
	}
	cells, err := runCells(sc, 1+len(resCfgs), func(i int) (resCell, error) {
		if i == 0 {
			base, err := rigid.Conservative(jobs, m)
			if err != nil {
				return resCell{}, err
			}
			return resCell{cons: base.Makespan()}, nil
		}
		res := resCfgs[i-1]
		cal, err := platform.NewCalendar(m, []platform.Reservation{
			{Name: "demo", Start: 500, End: res.end, Procs: res.procs},
		})
		if err != nil {
			return resCell{}, err
		}
		f, err := rigid.FCFSWithCalendar(jobs, m, cal)
		if err != nil {
			return resCell{}, err
		}
		c, err := rigid.ConservativeWithCalendar(jobs, m, cal)
		if err != nil {
			return resCell{}, err
		}
		return resCell{fcfs: f.Makespan(), cons: c.Makespan()}, nil
	})
	if err != nil {
		return nil, err
	}
	base := cells[0].cons
	for i, res := range resCfgs {
		t.AddRow(
			fmt.Sprintf("%d/%d procs", res.procs, m),
			fmt.Sprintf("[500,%g)", res.end),
			cells[i+1].fcfs/base,
			cells[i+1].cons/base,
			1.0)
	}
	return t.Result(), nil
}

// ReservationsTable is the compatibility entry point for T9.
func ReservationsTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := reservationsRun(mustSpec("reservations"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

func cloneJobSlice(jobs []*workload.Job) []*workload.Job {
	out := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}
