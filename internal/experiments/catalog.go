package experiments

import (
	"fmt"
	"io"

	"repro/internal/bicriteria"
	"repro/internal/scenario"
)

// This file wires the experiment engine into internal/scenario: it
// registers every kind interpreter and the built-in Spec catalog that
// reproduces the paper's evaluation. Catalog registration order is the
// CLI display and "all"-expansion order (figures, tables, ablations —
// the historical cmd/experiments order).

// fromOptions converts the invocation options to the engine scale,
// carrying the run-lifecycle plumbing (cancellation context, progress
// callbacks) through to the cell worker pool.
func fromOptions(opt scenario.RunOptions) Scale {
	return Scale{
		JobFactor: opt.Scale.JobFactor, Workers: opt.Scale.Workers,
		Ctx: opt.Context, OnCellsStart: opt.OnCellsStart, OnCellDone: opt.OnCellDone,
		Remote: opt.Remote, Select: opt.Select, OnCellRows: opt.OnCellRows,
		fanoutSeq: new(int32),
	}
}

// tableRun is the signature every table kind implements: it expands
// the Spec into cells and returns the typed scenario.Result (the text
// table derives from the cells through the one renderer).
type tableRun func(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error)

// tableKind adapts a tableRun into a scenario.Runner.
func tableKind(fn tableRun) scenario.Runner {
	return func(spec *scenario.Spec, opt scenario.RunOptions) (*scenario.Result, error) {
		return fn(spec, opt.Seed, fromOptions(opt))
	}
}

// fig2Kind renders Figure 2's two series through the bespoke figure
// writer (it has no table form, matching the historical output).
func fig2Kind(spec *scenario.Spec, opt scenario.RunOptions) (*scenario.Result, error) {
	np, p, err := fig2Run(spec, opt.Seed, fromOptions(opt))
	if err != nil {
		return nil, err
	}
	return scenario.CustomResult(func(w io.Writer) error {
		bicriteria.WriteFig2(w, np, p)
		return nil
	}), nil
}

// mustSpec resolves a built-in catalog Spec (the compatibility entry
// points run through it so exported XxxTable calls see the same
// defaults as the scenario engine).
func mustSpec(id string) *scenario.Spec {
	s, ok := scenario.Lookup(id)
	if !ok {
		panic(fmt.Sprintf("experiments: built-in spec %q not registered", id))
	}
	return s
}

func init() {
	// Kind interpreters. One per bespoke table, plus the generic
	// JSON-composable kinds ("offline", "online", "grid") that the
	// built-in T14/T15 specs are themselves instances of.
	scenario.RegisterKind("fig2", fig2Kind)
	scenario.RegisterKind("mrt", tableKind(mrtRun))
	scenario.RegisterKind("batch", tableKind(batchRun))
	scenario.RegisterKind("smart", tableKind(smartRun))
	scenario.RegisterKind("bicriteria", tableKind(bicriteriaRun))
	scenario.RegisterKind("dlt", tableKind(dltRun))
	scenario.RegisterKind("cigri", tableKind(cigriRun))
	scenario.RegisterKind("decentralized", tableKind(decentralizedRun))
	scenario.RegisterKind("mixed", tableKind(mixedRun))
	scenario.RegisterKind("reservations", tableKind(reservationsRun))
	scenario.RegisterKind("malleable", tableKind(malleableRun))
	scenario.RegisterKind("treedlt", tableKind(treeDLTRun))
	scenario.RegisterKind("criteria", tableKind(criteriaRun))
	scenario.RegisterKind("heterogrid", tableKind(heteroGridRun))
	scenario.RegisterKind("online", tableKind(onlineRun))
	scenario.RegisterKind("grid", tableKind(gridRun))
	scenario.RegisterKind("offline", tableKind(offlineRun))
	scenario.RegisterKind("replay", tableKind(replayRun))
	scenario.RegisterKind("faults", tableKind(faultsRun))
	scenario.RegisterKind("faulttwin", tableKind(faultTwinRun))
	scenario.RegisterKind("ablation-allotment", tableKind(ablationAllotmentRun))
	scenario.RegisterKind("ablation-doubling-base", tableKind(ablationDoublingBaseRun))
	scenario.RegisterKind("ablation-shelf-fill", tableKind(ablationShelfFillRun))
	scenario.RegisterKind("ablation-chunk", tableKind(ablationChunkRun))
	scenario.RegisterKind("ablation-kill-policy", tableKind(ablationKillPolicyRun))
	scenario.RegisterKind("ablation-compaction", tableKind(ablationCompactionRun))

	// Built-in catalog: the paper's evaluation as Specs. Each records
	// its headline parameters explicitly (same values the kind would
	// default to) so an encoded spec documents the experiment and a
	// tweaked copy is a complete starting point.
	scenario.Register(scenario.New("fig2", "fig2",
		scenario.WithGroup(scenario.GroupFigure),
		scenario.WithDesc("Figure 2: bi-criteria doubling ratios vs n, both job families"),
		scenario.WithParam("m", 100), scenario.WithParam("reps", 3)))
	scenario.Register(scenario.New("mrt", "mrt",
		scenario.WithTitle("T1 — §4.1 offline moldable Cmax: MRT (3/2+ε) vs baselines (ratios to lower bound)"),
		scenario.WithDesc("T1: offline MRT vs naive allotment baselines"),
		scenario.WithParam("ms", []int{16, 64, 100}),
		scenario.WithParam("ns", []int{50, 200, 1000}),
		scenario.WithParam("eps", 0.01)))
	scenario.Register(scenario.New("batch", "batch",
		scenario.WithTitle("T2 — §4.2 online moldable Cmax: batches over MRT (ratios to lower bound, bound 3+ε)"),
		scenario.WithDesc("T2: online batch framework across arrival intensities"),
		scenario.WithParam("m", 64), scenario.WithParam("n", 300),
		scenario.WithParam("rates", []float64{0.05, 0.5, 5})))
	scenario.Register(scenario.New("smart", "smart",
		scenario.WithTitle("T3 — §4.3 rigid completion-time sums: SMART shelves (ratios to lower bound)"),
		scenario.WithDesc("T3: SMART shelves vs list baseline, weighted and not"),
		scenario.WithParam("ms", []int{16, 64}), scenario.WithParam("n", 400)))
	scenario.Register(scenario.New("bicriteria", "bicriteria",
		scenario.WithTitle("T4 — §4.4 bi-criteria doubling: both ratios bounded by 4ρ = 6"),
		scenario.WithDesc("T4: doubling algorithm vs pure MRT on both families"),
		scenario.WithParam("m", 64), scenario.WithParam("ns", []int{100, 500})))
	scenario.Register(scenario.New("dlt", "dlt",
		scenario.WithTitle("T5 — §2.1 divisible load policies (makespans, lower bound in last column)"),
		scenario.WithDesc("T5: divisible load single/multi-round vs self-scheduling"),
		scenario.WithParam("latencies", []float64{0, 1, 10, 100}),
		scenario.WithParam("w", 10000)))
	scenario.Register(scenario.New("cigri", "cigri",
		scenario.WithTitle("T6 — §5.2 centralized CiGri on CIMENT (Figure 3 platform)"),
		scenario.WithDesc("T6: centralized CiGri campaign over community load"),
		scenario.WithParam("runs", 5000), scenario.WithParam("run_time", 60)))
	scenario.Register(scenario.New("decentralized", "decentralized",
		scenario.WithTitle("T7 — §5.2 decentralized load exchange (4×32-proc clusters, all load on cluster 0)"),
		scenario.WithDesc("T7: isolated vs push vs pull load exchange"),
		scenario.WithParam("n", 200), scenario.WithParam("period", 30),
		scenario.WithParam("threshold", 1.3), scenario.WithParam("max_move", 8)))
	scenario.Register(scenario.New("mixed", "mixed",
		scenario.WithTitle("T8 — §5.1 rigid+moldable mixes: the three proposed strategies (Cmax/ΣwC ratios to lower bounds)"),
		scenario.WithDesc("T8: three strategies for mixing rigid and moldable jobs"),
		scenario.WithParam("m", 64), scenario.WithParam("n", 200),
		scenario.WithParam("fracs", []float64{0.3, 0.7})))
	scenario.Register(scenario.New("reservations", "reservations",
		scenario.WithTitle("T9 — §5.1 reservations: makespan ratios to the reservation-free lower bound"),
		scenario.WithDesc("T9: FCFS vs conservative backfilling around reservations"),
		scenario.WithParam("m", 32), scenario.WithParam("n", 100)))
	scenario.Register(scenario.New("malleable", "malleable",
		scenario.WithTitle("EXT1 — §2.2 malleable jobs (paper's future work): EQUI vs moldable MRT (ratios to lower bound)"),
		scenario.WithDesc("EXT1: malleable EQUI vs moldable MRT"),
		scenario.WithParam("ms", []int{16, 64}), scenario.WithParam("n", 150)))
	scenario.Register(scenario.New("treedlt", "treedlt",
		scenario.WithTitle("EXT2 — [4] divisible load on tree networks (same 13 workers, growing depth; W=10000)"),
		scenario.WithDesc("EXT2: divisible load on trees of growing depth"),
		scenario.WithParam("w", 10000)))
	scenario.Register(scenario.New("criteria", "criteria",
		scenario.WithTitle("EXT3 — §3 criteria matrix: one workload, every policy, every criterion (ratios to lower bounds where defined)"),
		scenario.WithDesc("EXT3: every policy scored on every §3 criterion"),
		scenario.WithParam("m", 64), scenario.WithParam("n", 200)))
	scenario.Register(scenario.New("heterogrid", "heterogrid",
		scenario.WithTitle("EXT4 — two-level moldable scheduling on the CIMENT grid (makespans, ratios to grid LB)"),
		scenario.WithDesc("EXT4: two-level scheduling on the heterogeneous grid")))
	scenario.Register(scenario.New("policies", "online",
		scenario.WithTitle("T14 — online policy catalog (registry): §3 criteria per queue policy on shared arrival streams"),
		scenario.WithDesc("T14: every online registry policy on shared arrival streams"),
		scenario.WithWorkload(scenario.Workload{N: 300, M: 64, RigidFraction: 0.5}),
		scenario.WithParam("rates", []float64{0.05, 0.2})))
	scenario.Register(scenario.New("gridpolicies", "grid",
		scenario.WithTitle("T15 — online grid policies (broker routing catalog): 4 heterogeneous clusters, shared stream + campaign"),
		scenario.WithDesc("T15: every grid routing policy on one fleet + campaign"),
		scenario.WithWorkload(scenario.Workload{N: 240, M: 32, ArrivalRate: 0.1, RigidFraction: 1, MaxProcsCap: 32}),
		scenario.WithGrid(scenario.Grid{ExchangePeriod: 30, Threshold: 1.3, MaxMove: 8,
			CampaignTasks: 2400, CampaignRunTime: 30})))

	scenario.Register(scenario.New("replay", "replay",
		scenario.WithTitle("EXT5 — streaming replay: lazy admission + O(1) accumulator, online catalog on one shared stream"),
		scenario.WithDesc("EXT5: streamed workload replay with O(active) memory"),
		scenario.WithWorkload(scenario.Workload{N: 2000, M: 64, ArrivalRate: 2, RigidFraction: 0.5}),
		scenario.WithParam("retain", "none")))

	scenario.Register(scenario.New("churn", "faults",
		scenario.WithTitle("EXT6 — policy robustness under node churn: §3 criteria and best-effort loss vs MTBF"),
		scenario.WithDesc("EXT6: online policies under seeded node churn, BE loss vs MTBF"),
		scenario.WithWorkload(scenario.Workload{N: 120, M: 64, ArrivalRate: 0.5, RigidFraction: 1}),
		scenario.WithParam("mtbfs", []float64{0, 2000, 500, 150}),
		scenario.WithParam("crash_procs", 8),
		scenario.WithParam("tasks", 600)))
	scenario.Register(scenario.New("faulttwin", "faulttwin",
		scenario.WithTitle("EXT7 — analytical twin: predicted (availability-discounted LB) vs simulated makespan per fault plan"),
		scenario.WithDesc("EXT7: closed-form availability-discounted bound vs simulation"),
		scenario.WithParam("n", 400), scenario.WithParam("m", 32)))

	scenario.Register(scenario.New("ablation-allotment", "ablation-allotment",
		scenario.WithGroup(scenario.GroupAblation),
		scenario.WithDesc("MRT allotment selection: knapsack vs greedy γ(λ)")))
	scenario.Register(scenario.New("ablation-doubling-base", "ablation-doubling-base",
		scenario.WithGroup(scenario.GroupAblation),
		scenario.WithDesc("bi-criteria initial deadline choice")))
	scenario.Register(scenario.New("ablation-shelf-fill", "ablation-shelf-fill",
		scenario.WithGroup(scenario.GroupAblation),
		scenario.WithDesc("SMART shelf filling: first-fit vs best-fit")))
	scenario.Register(scenario.New("ablation-chunk", "ablation-chunk",
		scenario.WithGroup(scenario.GroupAblation),
		scenario.WithDesc("DLT self-scheduling chunk size under latency")))
	scenario.Register(scenario.New("ablation-kill-policy", "ablation-kill-policy",
		scenario.WithGroup(scenario.GroupAblation),
		scenario.WithDesc("best-effort eviction rule comparison")))
	scenario.Register(scenario.New("ablation-compaction", "ablation-compaction",
		scenario.WithGroup(scenario.GroupAblation),
		scenario.WithDesc("left-shift compaction post-pass on bi-criteria schedules")))
}
