package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/registry"
	"repro/internal/trace"
)

var quick = Scale{JobFactor: 10}

// checkTable verifies the table renders and has the expected row count.
func checkTable(t *testing.T, tb *trace.Table, err error, minRows int) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < minRows {
		t.Fatalf("table %q has %d rows, want >= %d", tb.Title, len(tb.Rows), minRows)
	}
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func parseRatio(t *testing.T, cell string) float64 {
	t.Helper()
	var v float64
	if _, err := sscan(cell, &v); err != nil {
		t.Fatalf("cell %q is not a number: %v", cell, err)
	}
	return v
}

func TestMRTTable(t *testing.T) {
	tb, err := MRTTable(1, quick)
	out := checkTable(t, tb, err, 9)
	if !strings.Contains(out, "MRT") {
		t.Fatal("missing MRT column")
	}
	// Every MRT ratio must respect the 3/2+ε envelope (column 2).
	for _, row := range tb.Rows {
		if r := parseRatio(t, row[2]); r > 1.55 || r < 1.0-1e-9 {
			t.Fatalf("MRT ratio %v outside [1, 1.55]: row %v", r, row)
		}
	}
}

func TestBatchTable(t *testing.T) {
	tb, err := BatchTable(2, quick)
	checkTable(t, tb, err, 3)
	for _, row := range tb.Rows {
		if r := parseRatio(t, row[4]); r > 3.05 || r < 1.0-1e-9 {
			t.Fatalf("online ratio %v outside [1, 3+ε]: row %v", r, row)
		}
	}
}

func TestSMARTTable(t *testing.T) {
	tb, err := SMARTTable(3, quick)
	checkTable(t, tb, err, 4)
	for _, row := range tb.Rows {
		if r := parseRatio(t, row[3]); r > 8.53 || r < 1.0-1e-9 {
			t.Fatalf("SMART ratio %v outside [1, 8.53]: row %v", r, row)
		}
	}
}

func TestBiCriteriaTable(t *testing.T) {
	tb, err := BiCriteriaTable(4, quick)
	checkTable(t, tb, err, 4)
	for _, row := range tb.Rows {
		if r := parseRatio(t, row[2]); r > 6 {
			t.Fatalf("doubling Cmax ratio %v exceeds 4ρ: row %v", r, row)
		}
		if r := parseRatio(t, row[3]); r > 6 {
			t.Fatalf("doubling ΣwC ratio %v exceeds 4ρ: row %v", r, row)
		}
	}
}

func TestFig2Tables(t *testing.T) {
	np, p, err := Fig2Tables(5, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(np) != len(p) || len(np) == 0 {
		t.Fatalf("series lengths %d/%d", len(np), len(p))
	}
	for _, pt := range append(np, p...) {
		if pt.CmaxRatio < 1-1e-9 || pt.CmaxRatio > 6 {
			t.Fatalf("Cmax ratio %v out of envelope at n=%d", pt.CmaxRatio, pt.N)
		}
		if pt.WCRatio < 1-1e-9 || pt.WCRatio > 6 {
			t.Fatalf("ΣwC ratio %v out of envelope at n=%d", pt.WCRatio, pt.N)
		}
	}
}

func TestDLTTable(t *testing.T) {
	tb, err := DLTTable(6, quick)
	out := checkTable(t, tb, err, 8)
	if !strings.Contains(out, "bus-4") || !strings.Contains(out, "star-hetero") {
		t.Fatal("platforms missing")
	}
	// At latency 100 (last row per platform), 1 round must beat 16 rounds.
	for _, row := range tb.Rows {
		if row[1] == "100" {
			one := parseRatio(t, row[2])
			sixteen := parseRatio(t, row[4])
			if one >= sixteen {
				t.Fatalf("no crossover at latency 100: 1r=%v 16r=%v", one, sixteen)
			}
		}
		if row[1] == "0" {
			one := parseRatio(t, row[2])
			sixteen := parseRatio(t, row[4])
			if sixteen >= one {
				t.Fatalf("multi-round not winning at latency 0: 1r=%v 16r=%v", one, sixteen)
			}
		}
	}
}

func TestCiGriTable(t *testing.T) {
	tb, err := CiGriTable(7, quick)
	checkTable(t, tb, err, 2)
	for _, row := range tb.Rows {
		// Fairness: local flow difference must be ~0.
		if d := parseRatio(t, row[2]); d > 1e-6 {
			t.Fatalf("local jobs disturbed by grid: Δflow = %v", d)
		}
	}
}

func TestDecentralizedTable(t *testing.T) {
	tb, err := DecentralizedTable(8, quick)
	checkTable(t, tb, err, 2)
	isoFlow := parseRatio(t, tb.Rows[0][2])
	exFlow := parseRatio(t, tb.Rows[1][2])
	if exFlow >= isoFlow {
		t.Fatalf("exchange (%v) did not improve on isolated (%v)", exFlow, isoFlow)
	}
	if mig := parseRatio(t, tb.Rows[1][1]); mig == 0 {
		t.Fatal("no migrations recorded")
	}
}

func TestGridPolicyTable(t *testing.T) {
	tb, err := GridPolicyTable(8, quick)
	checkTable(t, tb, err, len(registry.Grids()))
	seen := map[string]bool{}
	for _, row := range tb.Rows {
		seen[row[0]] = true
		// Every policy must finish the whole campaign (column "grid done").
		done := parseRatio(t, row[5])
		want := parseRatio(t, tb.Rows[0][5])
		if done != want {
			t.Fatalf("%s completed %v campaign tasks, others %v", row[0], done, want)
		}
	}
	for _, e := range registry.Grids() {
		if !seen[e.Name] {
			t.Fatalf("grid policy %s missing from table (rows %v)", e.Name, tb.Rows)
		}
	}
}

func TestMixedTable(t *testing.T) {
	tb, err := MixedTable(9, quick)
	checkTable(t, tb, err, 6)
	// Strategy C must be present and valid for both fractions.
	foundC := 0
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[2], "C") {
			foundC++
			if r := parseRatio(t, row[3]); r > 6 {
				t.Fatalf("strategy C Cmax ratio %v exceeds 4ρ", r)
			}
		}
	}
	if foundC != 2 {
		t.Fatalf("strategy C rows: %d", foundC)
	}
}

func TestReservationsTable(t *testing.T) {
	tb, err := ReservationsTable(10, quick)
	checkTable(t, tb, err, 2)
	for _, row := range tb.Rows {
		fcfs := parseRatio(t, row[2])
		cons := parseRatio(t, row[3])
		if cons > fcfs+1e-9 {
			t.Fatalf("conservative (%v) worse than FCFS (%v) around reservations", cons, fcfs)
		}
		if cons < 1-1e-9 {
			t.Fatalf("reserved run beat the reservation-free baseline: %v", cons)
		}
	}
}

func TestAblations(t *testing.T) {
	type run func(uint64, Scale) (*trace.Table, error)
	for name, f := range map[string]run{
		"allotment":    AblationAllotment,
		"doublingBase": AblationDoublingBase,
		"shelfFill":    AblationShelfFill,
		"chunk":        AblationChunk,
		"killPolicy":   AblationKillPolicy,
		"compaction":   AblationCompaction,
	} {
		tb, err := f(11, quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkTable(t, tb, nil, 2)
	}
}

func TestScaleFloor(t *testing.T) {
	sc := Scale{JobFactor: 100}
	if got := sc.jobs(50); got != 10 {
		t.Fatalf("scale floor = %d, want 10", got)
	}
	if got := (Scale{}).jobs(50); got != 50 {
		t.Fatalf("unit scale = %d, want 50", got)
	}
}

// sscan parses one float (strconv wrapper kept local to the test).
func sscan(s string, v *float64) (int, error) {
	f, err := strconvParse(s)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}

func strconvParse(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

func TestMalleableTable(t *testing.T) {
	tb, err := MalleableTable(12, quick)
	checkTable(t, tb, err, 2)
	for _, row := range tb.Rows {
		equi := parseRatio(t, row[3])
		if equi < 1-1e-9 {
			t.Fatalf("EQUI ratio %v below 1 — bound broken", equi)
		}
		if equi > 3 {
			t.Fatalf("EQUI ratio %v implausibly high", equi)
		}
	}
}

func TestTreeDLTTable(t *testing.T) {
	tb, err := TreeDLTTable(13, quick)
	checkTable(t, tb, err, 3)
	// Hierarchy costs: flat star must be the fastest topology.
	flat := parseRatio(t, tb.Rows[0][2])
	two := parseRatio(t, tb.Rows[1][2])
	chain := parseRatio(t, tb.Rows[2][2])
	if !(flat <= two && two <= chain) {
		t.Fatalf("depth ordering violated: flat=%v two=%v chain=%v", flat, two, chain)
	}
}

func TestDecentralizedTableHasPullRow(t *testing.T) {
	tb, err := DecentralizedTable(8, quick)
	checkTable(t, tb, err, 3)
	foundPull := false
	for _, row := range tb.Rows {
		if strings.Contains(row[0], "pull") {
			foundPull = true
			if parseRatio(t, row[2]) >= parseRatio(t, tb.Rows[0][2]) {
				t.Fatal("pull stealing did not improve on isolated")
			}
		}
	}
	if !foundPull {
		t.Fatal("pull row missing")
	}
}

func TestCriteriaMatrixTable(t *testing.T) {
	tb, err := CriteriaMatrixTable(14, quick)
	checkTable(t, tb, err, 5)
	// Find per-criterion winners: no single policy may win every column
	// (the paper's argument for per-application selection).
	bestCmax, bestWC := 0, 0
	for i, row := range tb.Rows {
		if parseRatio(t, row[1]) < parseRatio(t, tb.Rows[bestCmax][1]) {
			bestCmax = i
		}
		if parseRatio(t, row[2]) < parseRatio(t, tb.Rows[bestWC][2]) {
			bestWC = i
		}
	}
	if bestCmax == bestWC {
		t.Logf("note: policy %q won both criteria on this draw", tb.Rows[bestCmax][0])
	}
	// MRT must win (or tie) the Cmax column — it is the Cmax specialist.
	if tb.Rows[bestCmax][0] != "mrt (§4.1)" {
		t.Fatalf("Cmax winner is %q, want MRT", tb.Rows[bestCmax][0])
	}
}

func TestHeteroGridTable(t *testing.T) {
	tb, err := HeteroGridTable(15, quick)
	checkTable(t, tb, err, 6)
	// In the capacity-bound regime (rows 3-5), speed-aware must beat
	// round robin.
	lpt := parseRatio(t, tb.Rows[3][3])
	rr := parseRatio(t, tb.Rows[5][3])
	if lpt >= rr {
		t.Fatalf("capacity-bound: speed-aware (%v) not better than round robin (%v)", lpt, rr)
	}
	for _, row := range tb.Rows {
		if r := parseRatio(t, row[3]); r < 1-1e-9 {
			t.Fatalf("ratio %v below 1 — grid lower bound broken: %v", r, row)
		}
	}
}
