// Package experiments contains the engine behind the scenario catalog:
// every table and figure of the paper's evaluation (see DESIGN.md §1
// for the experiment index) is expressed as a kind runner that expands
// a declarative scenario.Spec into independent cells and feeds them to
// the worker-pool replication runner (parallel.go).
//
// The package registers two things with internal/scenario at init time
// (catalog.go): the kind interpreters, and the built-in Specs that
// reproduce the paper's tables bit-identically. The exported XxxTable
// functions are thin compatibility wrappers over the built-in Specs so
// the root benchmark and integration suites keep their entry points.
//
// Every table is structured as a list of independent cells (one
// parameter combination each, with a deterministic per-cell seed) that
// runCells executes either sequentially or on a worker pool — see
// parallel.go for the determinism contract.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/bicriteria"
	"repro/internal/lowerbound"
	"repro/internal/moldable"
	"repro/internal/rigid"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/smart"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scale shrinks experiment sizes for tests/benchmarks (1 = paper scale)
// and selects the replication runner.
type Scale struct {
	// JobFactor divides job counts (min result 10).
	JobFactor int
	// Workers bounds the experiment worker pool: 0 or 1 runs cells
	// sequentially, larger values fan independent cells out over up to
	// min(Workers, GOMAXPROCS) goroutines. Tables are bit-identical
	// across worker counts for a fixed seed.
	Workers int

	// Ctx, when non-nil, cancels cell dispatch cooperatively (see
	// runCells); it does not affect determinism of completed cells.
	Ctx context.Context
	// OnCellsStart and OnCellDone observe worker-pool progress (cells
	// discovered by a fan-out / one cell finished with its duration).
	// OnCellDone may fire concurrently from worker goroutines.
	OnCellsStart func(n int)
	OnCellDone   func(index int, d time.Duration)

	// Remote, Select and OnCellRows carry the fleet dispatch seam of
	// scenario.RunOptions into the cell runner (see runTableCells);
	// fromOptions wires them, together with the fan-out ordinal
	// counter, so distributed runs shard exactly the fan-outs whose
	// cells are plain table rows.
	Remote     scenario.CellRunner
	Select     func(fanout, cell int) bool
	OnCellRows func(fanout, cell int, rows [][]any, d time.Duration)
	// fanoutSeq numbers the run's remoteable fan-outs in invocation
	// order (nil outside the scenario.Run adapter — the fleet hooks are
	// only ever set alongside it).
	fanoutSeq *int32
}

func (s Scale) jobs(n int) int {
	if s.JobFactor <= 1 {
		return n
	}
	if v := n / s.JobFactor; v >= 10 {
		return v
	}
	return 10
}

// title returns the spec's title override, or the kind's default.
func title(spec *scenario.Spec, def string) string {
	if spec != nil && spec.Title != "" {
		return spec.Title
	}
	return def
}

// mrtRun is experiment T1 (§4.1): the offline MRT algorithm versus its
// 3/2 + ε guarantee and the naive allotment baselines, across platform
// widths and job counts. Params: "ms", "ns" (the sweep axes), "eps".
func mrtRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"ms": scenario.IntsParam, "ns": scenario.IntsParam, "eps": scenario.FloatParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "T1 — §4.1 offline moldable Cmax: MRT (3/2+ε) vs baselines (ratios to lower bound)"),
		"m", "n", "MRT", "λ-accepted", "MinWork+LPT", "MaxProcs+LPT", "γ(LB)+LPT", "bound")
	eps := spec.Float("eps", 0.01)
	type cell struct {
		m, n int
	}
	var cells []cell
	for _, m := range spec.Ints("ms", []int{16, 64, 100}) {
		for _, n := range spec.Ints("ns", []int{50, 200, 1000}) {
			cells = append(cells, cell{m, n})
		}
	}
	if err := runRowCells(t, sc, len(cells), func(i int) ([]any, error) {
		m, n := cells[i].m, sc.jobs(cells[i].n)
		jobs := workload.Parallel(workload.GenConfig{N: n, M: m, Seed: seed + uint64(i)})
		lb := lowerbound.CmaxDual(jobs, m)
		res, err := moldable.MRT(jobs, m, eps)
		if err != nil {
			return nil, err
		}
		minw, err := moldable.MinWorkList(jobs, m)
		if err != nil {
			return nil, err
		}
		maxp, err := moldable.MaxProcsList(jobs, m)
		if err != nil {
			return nil, err
		}
		gl, err := moldable.GammaList(jobs, m)
		if err != nil {
			return nil, err
		}
		return []any{m, n,
			res.Schedule.Makespan() / lb,
			res.Lambda / lb,
			minw.Makespan() / lb,
			maxp.Makespan() / lb,
			gl.Makespan() / lb,
			"1.5+ε"}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// MRTTable is the compatibility entry point for T1 (the built-in "mrt"
// scenario run at the given seed and scale).
func MRTTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := mrtRun(mustSpec("mrt"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// batchRun is experiment T2 (§4.2): the batch framework over MRT with
// release dates versus its 2ρ = 3 + ε guarantee, across arrival
// intensities. Params: "m", "n", "rates", "eps".
func batchRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"m": scenario.IntParam, "n": scenario.IntParam, "rates": scenario.FloatsParam, "eps": scenario.FloatParam}); err != nil {
		return nil, err
	}
	t := newTable(3,
		title(spec, "T2 — §4.2 online moldable Cmax: batches over MRT (ratios to lower bound, bound 3+ε)"),
		"m", "n", "arrival rate", "batches", "online ratio", "offline-MRT ratio")
	m := spec.Int("m", 64)
	eps := spec.Float("eps", 0.01)
	rates := spec.Floats("rates", []float64{0.05, 0.5, 5})
	if err := runRowCells(t, sc, len(rates), func(i int) ([]any, error) {
		rate := rates[i]
		n := sc.jobs(spec.Int("n", 300))
		jobs := workload.Parallel(workload.GenConfig{
			N: n, M: m, Seed: seed + uint64(i), ArrivalRate: rate,
		})
		lb := lowerbound.Cmax(jobs, m)
		res, err := batch.OnlineMoldable(jobs, m, eps)
		if err != nil {
			return nil, err
		}
		// Offline reference: same jobs, releases ignored.
		offline := make([]*workload.Job, len(jobs))
		for k, j := range jobs {
			c := j.Clone()
			c.Release = 0
			offline[k] = c
		}
		off, err := moldable.MRT(offline, m, eps)
		if err != nil {
			return nil, err
		}
		return []any{m, n, rate, len(res.Batches),
			res.Schedule.Makespan() / lb,
			off.Schedule.Makespan() / lowerbound.CmaxDual(offline, m)}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// BatchTable is the compatibility entry point for T2.
func BatchTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := batchRun(mustSpec("batch"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// smartRun is experiment T3 (§4.3): SMART shelves versus the 8 / 8.53
// bounds and a submission-order list baseline. Params: "ms", "n".
func smartRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"ms": scenario.IntsParam, "n": scenario.IntParam}); err != nil {
		return nil, err
	}
	t := newTable(3,
		title(spec, "T3 — §4.3 rigid completion-time sums: SMART shelves (ratios to lower bound)"),
		"m", "n", "weighted", "SMART ΣwC", "list ΣwC", "shelves", "bound")
	type cell struct {
		m        int
		weighted bool
	}
	var cells []cell
	for _, m := range spec.Ints("ms", []int{16, 64}) {
		for _, weighted := range []bool{false, true} {
			cells = append(cells, cell{m, weighted})
		}
	}
	if err := runRowCells(t, sc, len(cells), func(i int) ([]any, error) {
		m, weighted := cells[i].m, cells[i].weighted
		n := sc.jobs(spec.Int("n", 400))
		jobs := workload.Parallel(workload.GenConfig{
			N: n, M: m, Seed: seed + uint64(i), Weighted: weighted, RigidFraction: 1,
		})
		lb := lowerbound.SumWeightedCompletion(jobs, m)
		s, shelves, err := smart.Schedule(jobs, m, smart.FirstFit)
		if err != nil {
			return nil, err
		}
		list, err := rigid.List(jobs, m, rigid.ByRelease)
		if err != nil {
			return nil, err
		}
		bound := smart.RatioUnweighted
		if weighted {
			bound = smart.RatioWeighted
		}
		return []any{m, n, weighted,
			s.Report().SumWeightedCompletion / lb,
			list.Report().SumWeightedCompletion / lb,
			shelves,
			bound}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// SMARTTable is the compatibility entry point for T3.
func SMARTTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := smartRun(mustSpec("smart"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// bicriteriaRun is experiment T4 (§4.4): the doubling algorithm's two
// ratios versus 4ρ, contrasted with pure MRT (good Cmax, unmanaged
// ΣwC). Params: "m", "ns" (per-family job counts), "eps".
func bicriteriaRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"m": scenario.IntParam, "ns": scenario.IntsParam, "eps": scenario.FloatParam}); err != nil {
		return nil, err
	}
	t := newTable(2,
		title(spec, "T4 — §4.4 bi-criteria doubling: both ratios bounded by 4ρ = 6"),
		"family", "n", "doubling Cmax", "doubling ΣwC", "MRT Cmax", "MRT ΣwC", "bound")
	type cell struct {
		parallel bool
		n0       int
	}
	var cells []cell
	for _, parallel := range []bool{false, true} {
		for _, n0 := range spec.Ints("ns", []int{100, 500}) {
			cells = append(cells, cell{parallel, n0})
		}
	}
	m := spec.Int("m", 64)
	eps := spec.Float("eps", 0.01)
	if err := runRowCells(t, sc, len(cells), func(i int) ([]any, error) {
		parallel := cells[i].parallel
		family := "non-parallel"
		if parallel {
			family = "parallel"
		}
		n := sc.jobs(cells[i].n0)
		cfg := workload.GenConfig{N: n, M: m, Seed: seed + uint64(i), Weighted: true}
		var jobs []*workload.Job
		if parallel {
			jobs = workload.Parallel(cfg)
		} else {
			jobs = workload.Sequential(cfg)
		}
		res, err := bicriteria.Schedule(jobs, m, bicriteria.Options{})
		if err != nil {
			return nil, err
		}
		mrt, err := moldable.MRT(jobs, m, eps)
		if err != nil {
			return nil, err
		}
		wcLB := lowerbound.SumWeightedCompletion(jobs, m)
		cmaxLB := lowerbound.CmaxDual(jobs, m)
		return []any{family, n,
			res.CmaxRatio(), res.WCRatio(),
			mrt.Schedule.Makespan() / cmaxLB,
			mrt.Schedule.Report().SumWeightedCompletion / wcLB,
			bicriteria.TheoreticalRatio(moldable.Rho)}, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// BiCriteriaTable is the compatibility entry point for T4.
func BiCriteriaTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := bicriteriaRun(mustSpec("bicriteria"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// fig2Run regenerates both series of Figure 2 (the two series run as
// independent cells). Params: "m", "reps", "ns" (full-scale axis).
func fig2Run(spec *scenario.Spec, seed uint64, sc Scale) (np, p []bicriteria.Fig2Point, err error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{
		"m": scenario.IntParam, "reps": scenario.IntParam,
		"ns": scenario.IntsParam, "quick_ns": scenario.IntsParam,
	}); err != nil {
		return nil, nil, err
	}
	ns := spec.Ints("ns", bicriteria.DefaultNs())
	if sc.JobFactor > 1 {
		ns = spec.Ints("quick_ns", []int{10, 50, 100, 200})
	}
	m := spec.Int("m", 100)
	reps := spec.Int("reps", 3)
	series, err := runCells(sc, 2, func(i int) ([]bicriteria.Fig2Point, error) {
		return bicriteria.Fig2Series(bicriteria.Fig2Config{
			M: m, Ns: ns, Seed: seed + uint64(i), Reps: reps, Parallel: i == 1,
		})
	})
	if err != nil {
		return nil, nil, err
	}
	return series[0], series[1], nil
}

// Fig2Tables is the compatibility entry point for Figure 2.
func Fig2Tables(seed uint64, sc Scale) (np, p []bicriteria.Fig2Point, err error) {
	return fig2Run(mustSpec("fig2"), seed, sc)
}

// mixedRun is experiment T8 (§5.1): the three strategies for mixing
// rigid and moldable jobs on one cluster. Params: "m", "n", "fracs".
func mixedRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"m": scenario.IntParam, "n": scenario.IntParam, "fracs": scenario.FloatsParam}); err != nil {
		return nil, err
	}
	t := newTable(3,
		title(spec, "T8 — §5.1 rigid+moldable mixes: the three proposed strategies (Cmax/ΣwC ratios to lower bounds)"),
		"rigid frac", "n", "strategy", "Cmax ratio", "ΣwC ratio")
	m := spec.Int("m", 64)
	fracs := spec.Floats("fracs", []float64{0.3, 0.7})
	if err := runMultiRowCells(t, sc, len(fracs), func(i int) ([][]any, error) {
		frac := fracs[i]
		n := sc.jobs(spec.Int("n", 200))
		jobs := workload.Mixed(workload.GenConfig{
			N: n, M: m, Seed: seed + uint64(i), Weighted: true, RigidFraction: frac,
		})
		cmaxLB := lowerbound.CmaxDual(jobs, m)
		wcLB := lowerbound.SumWeightedCompletion(jobs, m)
		var out [][]any
		for _, strat := range []string{"A: phases", "B: a-priori allot", "C: bicriteria batches"} {
			s, err := runMixedStrategy(strat, jobs, m)
			if err != nil {
				return nil, err
			}
			if err := s.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}); err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", strat, err)
			}
			rep := s.Report()
			out = append(out, []any{frac, n, strat, rep.Makespan / cmaxLB, rep.SumWeightedCompletion / wcLB})
		}
		return out, nil
	}); err != nil {
		return nil, err
	}
	return t.Result(), nil
}

// MixedTable is the compatibility entry point for T8.
func MixedTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := mixedRun(mustSpec("mixed"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// runMixedStrategy implements §5.1's three ideas.
func runMixedStrategy(strat string, jobs []*workload.Job, m int) (*sched.Schedule, error) {
	switch strat[:1] {
	case "A":
		// Separate: rigid jobs first (conservative packing), moldable
		// after, shifted past the rigid phase.
		var rigids, molds []*workload.Job
		for _, j := range jobs {
			if j.Kind == workload.Rigid {
				rigids = append(rigids, j)
			} else {
				molds = append(molds, j)
			}
		}
		s := sched.New(m)
		phaseEnd := 0.0
		if len(rigids) > 0 {
			rs, err := rigid.List(rigids, m, rigid.ByLPT)
			if err != nil {
				return nil, err
			}
			if err := s.Merge(rs); err != nil {
				return nil, err
			}
			phaseEnd = rs.Makespan()
		}
		if len(molds) > 0 {
			res, err := moldable.MRT(molds, m, 0.01)
			if err != nil {
				return nil, err
			}
			if err := s.Merge(res.Schedule.Shift(phaseEnd)); err != nil {
				return nil, err
			}
		}
		return s, nil
	case "B":
		// A-priori allotment: freeze every moldable job at its γ(LB)
		// allocation, then one rigid scheduling pass over everything.
		return moldable.GammaList(jobs, m)
	default:
		// C: the bi-criteria batch algorithm handles rigid jobs natively
		// (a rigid job is a moldable job with a single allocation) —
		// "schedule each rigid job in the first batch in which it fits".
		res, err := bicriteria.Schedule(jobs, m, bicriteria.Options{})
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}
}
