package experiments

import (
	"testing"

	"repro/internal/scenario"
)

// TestFaultTablesParallelMatchSequential: the new fault tables must be
// bit-identical between the sequential runner and the worker pool, the
// same contract the healthy tables honour — churn seeds are derived
// per cell, never from worker identity or completion order.
func TestFaultTablesParallelMatchSequential(t *testing.T) {
	kinds := map[string]func(*scenario.Spec, uint64, Scale) (*scenario.Result, error){
		"churn":     faultsRun,
		"faulttwin": faultTwinRun,
	}
	for id, fn := range kinds {
		t.Run(id, func(t *testing.T) {
			spec, ok := scenario.Lookup(id)
			if !ok {
				t.Fatalf("spec %q not registered", id)
			}
			seq, err := fn(spec, 21, Scale{JobFactor: 20})
			if err != nil {
				t.Fatal(err)
			}
			par, err := fn(spec, 21, Scale{JobFactor: 20, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			seqRows := renderRows(t, seq.Table)
			parRows := renderRows(t, par.Table)
			if len(seqRows) == 0 {
				t.Fatal("table is empty")
			}
			if len(seqRows) != len(parRows) {
				t.Fatalf("row counts differ: sequential %d, parallel %d", len(seqRows), len(parRows))
			}
			for i := range seqRows {
				if seqRows[i] != parRows[i] {
					t.Fatalf("row %d differs:\n  sequential: %s\n  parallel:   %s",
						i, seqRows[i], parRows[i])
				}
			}
		})
	}
}

// TestChurnTableShape: the churn table carries the twin-error column
// and a healthy baseline row (MTBF 0) with zero crashes.
func TestChurnTableShape(t *testing.T) {
	spec, ok := scenario.Lookup("churn")
	if !ok {
		t.Fatal("churn spec not registered")
	}
	res, err := faultsRun(spec, 7, Scale{JobFactor: 25})
	if err != nil {
		t.Fatal(err)
	}
	tb := res.Table
	last := len(tb.Headers) - 1
	if tb.Headers[last] != "twin err %" {
		t.Fatalf("last column is %q, want the twin error", tb.Headers[last])
	}
	foundHealthy := false
	for _, row := range tb.Rows {
		if row[0] == "0" {
			foundHealthy = true
			if row[4] != "0" {
				t.Fatalf("healthy baseline row reports %s crashes", row[4])
			}
		}
	}
	if !foundHealthy {
		t.Fatal("no healthy (MTBF 0) baseline row")
	}
}
