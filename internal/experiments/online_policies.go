package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/lowerbound"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/workload"
)

// onlineRun is the generic "online" kind: every named online-capable
// policy of the internal/registry catalog head-to-head on the same
// arrival streams, scored with the §3 criteria. Rows are grouped by
// arrival rate; the job stream is identical across policies for a
// fixed seed, so differences are purely the policy's.
//
// Spec surface: Workload (generator/N/M/rigid fraction/...), Policies
// (default: the whole online catalog), params "rates" (the arrival-rate
// axis; alternatively workload.arrival_rate pins a single rate — setting
// both is an error) and "kill" ("newest"|"largest"). The built-in
// "policies" Spec (T14) is an instance of this kind with the paper
// defaults.
func onlineRun(spec *scenario.Spec, seed uint64, sc Scale) (*scenario.Result, error) {
	if err := spec.CheckParams(map[string]scenario.ParamType{"rates": scenario.FloatsParam, "kill": scenario.StringParam}); err != nil {
		return nil, err
	}
	headers := []string{"rate", "n", "policy", "Cmax ratio", "mean flow", "max flow", "mean stretch", "util%"}
	if spec.Faults != nil {
		// The fault columns appear only when a plan is set, so the
		// healthy table (and its goldens) keeps its historical shape.
		headers = append(headers, "crashes", "requeues", "lost work")
	}
	t := newTable(3,
		title(spec, "T14 — online policy catalog (registry): §3 criteria per queue policy on shared arrival streams"),
		headers...)
	gen, cfg := genConfig(spec.Workload, workload.GenConfig{N: 300, M: 64, RigidFraction: 0.5})
	rates := spec.Floats("rates", nil)
	if spec.Workload != nil && spec.Workload.ArrivalRate != 0 {
		if rates != nil {
			return nil, fmt.Errorf("experiments: online kind: set workload.arrival_rate or params.rates, not both")
		}
		rates = []float64{cfg.ArrivalRate} // -1 sentinel already resolved to 0
	}
	if rates == nil {
		rates = []float64{0.05, 0.2}
	}
	entries, err := resolvePolicies(spec.Policies, true)
	if err != nil {
		return nil, err
	}
	kill, err := killPolicy(spec.String("kill", "newest"))
	if err != nil {
		return nil, err
	}
	tc := newTraceCollector(spec, len(rates))
	if err := runMultiRowCells(t, sc, len(rates), func(i int) ([][]any, error) {
		rate := rates[i]
		n := sc.jobs(cfg.N)
		var out [][]any
		for _, e := range entries {
			c := cfg
			c.N, c.Seed, c.ArrivalRate = n, seed+uint64(i), rate
			jobs, err := generate(gen, c)
			if err != nil {
				return nil, err
			}
			sim, err := cluster.New(des.New(), c.M, 1, e.NewPolicy(), kill)
			if err != nil {
				return nil, err
			}
			if spec.Faults != nil {
				fp := *spec.Faults
				fp.Partitions = nil
				fp.Seed ^= seed + uint64(i)
				if _, err := faults.Attach(sim, fp); err != nil {
					return nil, err
				}
			}
			rec := tc.recorder()
			rec.Attach(sim, "")
			for _, j := range jobs {
				if err := sim.Submit(j); err != nil {
					return nil, err
				}
			}
			if err := sim.Run(); err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
			}
			tc.add(i, e.Name, rec)
			cs := sim.Completions()
			rep := metrics.NewReport(cs, c.M)
			cmaxLB := lowerbound.Cmax(jobs, c.M)
			row := []any{
				rate, n, e.Name, rep.Makespan / cmaxLB,
				rep.MeanFlow, rep.MaxFlow, rep.MeanStretch, 100 * rep.Utilization,
			}
			if spec.Faults != nil {
				fs := sim.FaultStats()
				row = append(row, fs.Crashes, fs.Requeues, fs.LostWork)
			}
			out = append(out, row)
		}
		return out, nil
	}); err != nil {
		return nil, err
	}
	res := t.Result()
	tc.install(res)
	return res, nil
}

// OnlinePolicyTable is the compatibility entry point for T14.
func OnlinePolicyTable(seed uint64, sc Scale) (*trace.Table, error) {
	res, err := onlineRun(mustSpec("policies"), seed, sc)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// killPolicy resolves the best-effort eviction rule by name.
func killPolicy(name string) (cluster.KillPolicy, error) {
	switch name {
	case "", "newest":
		return cluster.KillNewest, nil
	case "largest":
		return cluster.KillLargestRemaining, nil
	}
	return cluster.KillNewest, fmt.Errorf("experiments: unknown kill policy %q (newest|largest)", name)
}
