package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/lowerbound"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// OnlinePolicyTable compares every online-capable policy of the
// internal/registry catalog head-to-head on the same arrival streams:
// the queue policies that gridd can serve, scored with the §3 criteria.
// Rows are grouped by arrival rate; the job stream is identical across
// policies for a fixed seed, so differences are purely the policy's.
func OnlinePolicyTable(seed uint64, sc Scale) (*trace.Table, error) {
	t := trace.NewTable(
		"T14 — online policy catalog (registry): §3 criteria per queue policy on shared arrival streams",
		"rate", "n", "policy", "Cmax ratio", "mean flow", "max flow", "mean stretch", "util%")
	m := 64
	rates := []float64{0.05, 0.2}
	entries := registry.Online()
	rows, err := runCells(sc, len(rates), func(i int) ([][]any, error) {
		rate := rates[i]
		n := sc.jobs(300)
		var out [][]any
		for _, e := range entries {
			jobs := workload.Parallel(workload.GenConfig{
				N: n, M: m, Seed: seed + uint64(i), ArrivalRate: rate, RigidFraction: 0.5,
			})
			sim, err := cluster.New(des.New(), m, 1, e.NewPolicy(), cluster.KillNewest)
			if err != nil {
				return nil, err
			}
			for _, j := range jobs {
				if err := sim.Submit(j); err != nil {
					return nil, err
				}
			}
			if err := sim.Run(); err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", e.Name, err)
			}
			cs := sim.Completions()
			rep := metrics.NewReport(cs, m)
			cmaxLB := lowerbound.Cmax(jobs, m)
			out = append(out, []any{
				rate, n, e.Name, rep.Makespan / cmaxLB,
				rep.MeanFlow, rep.MaxFlow, rep.MeanStretch, 100 * rep.Utilization,
			})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cellRows := range rows {
		for _, r := range cellRows {
			t.AddRow(r...)
		}
	}
	return t, nil
}
