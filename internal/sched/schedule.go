// Package sched holds the schedule (Gantt chart) representation shared by
// every scheduling algorithm in the repository, its validity checker, and
// conversions to metric records and concrete processor assignments.
//
// Algorithms produce allocations as (job, start, processor count); the
// package verifies the §2.2 semantics — rigid jobs get exactly their
// requested processors, moldable jobs a legal count fixed for the whole
// execution, release dates respected, platform capacity never exceeded —
// and can materialize concrete processor IDs via the platform sweep.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Alloc is one scheduled job: Start time and processor count. Duration is
// normally derived from the job profile; a positive Duration overrides it
// (used by heterogeneous-speed simulations where the same job runs slower
// on another cluster).
type Alloc struct {
	Job      *workload.Job
	Start    float64
	Procs    int
	Duration float64 // 0 ⇒ Job.TimeOn(Procs)
	// ProcIDs, when non-nil, pins the concrete processors.
	ProcIDs []int
}

// End returns Start + the effective duration.
func (a Alloc) End() float64 { return a.Start + a.EffectiveDuration() }

// EffectiveDuration returns Duration if set, else the job profile time.
func (a Alloc) EffectiveDuration() float64 {
	if a.Duration > 0 {
		return a.Duration
	}
	return a.Job.TimeOn(a.Procs)
}

// Schedule is a complete Gantt chart on m processors.
type Schedule struct {
	M      int
	Allocs []Alloc
}

// New creates an empty schedule on m processors.
func New(m int) *Schedule {
	return &Schedule{M: m}
}

// Add appends an allocation.
func (s *Schedule) Add(a Alloc) { s.Allocs = append(s.Allocs, a) }

// Makespan returns the latest completion time (0 for an empty schedule).
func (s *Schedule) Makespan() float64 {
	var mk float64
	for _, a := range s.Allocs {
		if e := a.End(); e > mk {
			mk = e
		}
	}
	return mk
}

// Completions converts the schedule to metric records.
func (s *Schedule) Completions() []metrics.Completion {
	cs := make([]metrics.Completion, len(s.Allocs))
	for i, a := range s.Allocs {
		cs[i] = metrics.Completion{Job: a.Job, Start: a.Start, End: a.End(), Procs: a.Procs}
	}
	return cs
}

// Report evaluates all §3 criteria on the schedule.
func (s *Schedule) Report() metrics.Report {
	return metrics.NewReport(s.Completions(), s.M)
}

// ValidateOptions tunes schedule validation.
type ValidateOptions struct {
	// IgnoreReleases skips the start >= release check (used by offline
	// algorithms that deliberately reset releases to 0).
	IgnoreReleases bool
	// AllowDurationOverride accepts Duration != Job.TimeOn(Procs).
	AllowDurationOverride bool
	// Calendar, when non-nil, additionally checks that allocations only
	// use processors left free by reservations.
	Calendar *platform.Calendar
}

// Validate checks the full §2.2 semantics with default options.
func (s *Schedule) Validate() error { return s.ValidateWith(ValidateOptions{}) }

// ValidateWith checks:
//   - every allocation has a legal processor count for its job kind;
//   - durations match the moldable profile (unless overridden);
//   - no job appears twice;
//   - release dates are respected (unless ignored);
//   - aggregate demand never exceeds M (and reservations, if any);
//   - pinned ProcIDs are in range, unique, and non-overlapping.
func (s *Schedule) ValidateWith(opt ValidateOptions) error {
	if s.M <= 0 {
		return fmt.Errorf("sched: schedule on %d processors", s.M)
	}
	seen := make(map[int]bool, len(s.Allocs))
	intervals := make([]platform.Interval, 0, len(s.Allocs))
	const eps = 1e-9
	for i, a := range s.Allocs {
		j := a.Job
		if j == nil {
			return fmt.Errorf("sched: allocation %d has nil job", i)
		}
		if seen[j.ID] {
			return fmt.Errorf("sched: job %d scheduled twice", j.ID)
		}
		seen[j.ID] = true
		if !j.CanRunOn(a.Procs) {
			return fmt.Errorf("sched: job %d on %d procs outside [%d,%d]",
				j.ID, a.Procs, j.MinProcs, j.MaxProcs)
		}
		if a.Procs > s.M {
			return fmt.Errorf("sched: job %d on %d procs exceeds platform %d", j.ID, a.Procs, s.M)
		}
		if j.Kind == workload.Rigid && a.Procs != j.MinProcs {
			return fmt.Errorf("sched: rigid job %d on %d procs, requested %d", j.ID, a.Procs, j.MinProcs)
		}
		if !opt.AllowDurationOverride && a.Duration > 0 {
			want := j.TimeOn(a.Procs)
			if math.Abs(a.Duration-want) > eps*(1+want) {
				return fmt.Errorf("sched: job %d duration %v != profile %v", j.ID, a.Duration, want)
			}
		}
		if !opt.IgnoreReleases && a.Start < j.Release-eps {
			return fmt.Errorf("sched: job %d starts at %v before release %v", j.ID, a.Start, j.Release)
		}
		if a.Start < 0 {
			return fmt.Errorf("sched: job %d starts at negative time %v", j.ID, a.Start)
		}
		if a.ProcIDs != nil {
			if len(a.ProcIDs) != a.Procs {
				return fmt.Errorf("sched: job %d pins %d procs but Procs=%d", j.ID, len(a.ProcIDs), a.Procs)
			}
			ids := map[int]bool{}
			for _, p := range a.ProcIDs {
				if p < 0 || p >= s.M {
					return fmt.Errorf("sched: job %d pins out-of-range proc %d", j.ID, p)
				}
				if ids[p] {
					return fmt.Errorf("sched: job %d pins proc %d twice", j.ID, p)
				}
				ids[p] = true
			}
		}
		intervals = append(intervals, platform.Interval{Start: a.Start, End: a.End(), Count: a.Procs})
	}
	if peak := platform.PeakDemand(intervals); peak > s.M {
		return fmt.Errorf("sched: peak demand %d exceeds %d processors", peak, s.M)
	}
	if opt.Calendar != nil {
		if err := s.validateCalendar(opt.Calendar); err != nil {
			return err
		}
	}
	// Pairwise overlap check for pinned processors.
	return s.validatePinned()
}

func (s *Schedule) validateCalendar(cal *platform.Calendar) error {
	// At every allocation boundary, demand must fit the free capacity.
	type ev struct {
		t float64
		d int
	}
	var evs []ev
	for _, a := range s.Allocs {
		evs = append(evs, ev{a.Start, a.Procs}, ev{a.End(), -a.Procs})
	}
	sort.Slice(evs, func(i, k int) bool {
		if evs[i].t != evs[k].t {
			return evs[i].t < evs[k].t
		}
		return evs[i].d < evs[k].d
	})
	cur := 0
	for i, e := range evs {
		cur += e.d
		// Check the interval [e.t, next boundary): availability may dip
		// inside due to a reservation starting there.
		end := math.Inf(1)
		if i+1 < len(evs) {
			end = evs[i+1].t
		}
		if cur > 0 && cal.MinAvailable(e.t, end) < cur {
			return fmt.Errorf("sched: demand %d exceeds reservation-free capacity after t=%v", cur, e.t)
		}
	}
	return nil
}

func (s *Schedule) validatePinned() error {
	pinned := make([]Alloc, 0)
	for _, a := range s.Allocs {
		if a.ProcIDs != nil {
			pinned = append(pinned, a)
		}
	}
	for i := range pinned {
		for k := i + 1; k < len(pinned); k++ {
			a, b := pinned[i], pinned[k]
			if a.Start < b.End() && b.Start < a.End() {
				used := map[int]bool{}
				for _, p := range a.ProcIDs {
					used[p] = true
				}
				for _, p := range b.ProcIDs {
					if used[p] {
						return fmt.Errorf("sched: jobs %d and %d share proc %d while overlapping",
							a.Job.ID, b.Job.ID, p)
					}
				}
			}
		}
	}
	return nil
}

// AssignProcessors computes concrete processor IDs for every allocation
// that does not pin them yet, using the platform interval sweep. The
// schedule must be valid. The assignment is stored in place.
func (s *Schedule) AssignProcessors() error {
	intervals := make([]platform.Interval, len(s.Allocs))
	for i, a := range s.Allocs {
		intervals[i] = platform.Interval{Start: a.Start, End: a.End(), Count: a.Procs}
	}
	ids, err := platform.Assign(s.M, intervals)
	if err != nil {
		return err
	}
	for i := range s.Allocs {
		if s.Allocs[i].ProcIDs == nil {
			s.Allocs[i].ProcIDs = ids[i]
		}
	}
	return nil
}

// Covers reports whether the schedule contains exactly the given jobs.
func (s *Schedule) Covers(jobs []*workload.Job) error {
	want := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		want[j.ID] = true
	}
	got := make(map[int]bool, len(s.Allocs))
	for _, a := range s.Allocs {
		got[a.Job.ID] = true
	}
	for id := range want {
		if !got[id] {
			return fmt.Errorf("sched: job %d missing from schedule", id)
		}
	}
	for id := range got {
		if !want[id] {
			return fmt.Errorf("sched: unexpected job %d in schedule", id)
		}
	}
	return nil
}

// Shift returns a copy of the schedule with every start time moved by dt.
func (s *Schedule) Shift(dt float64) *Schedule {
	out := New(s.M)
	for _, a := range s.Allocs {
		a.Start += dt
		out.Add(a)
	}
	return out
}

// Merge appends all allocations of other into s (same platform width
// required).
func (s *Schedule) Merge(other *Schedule) error {
	if other.M != s.M {
		return fmt.Errorf("sched: merging schedules of widths %d and %d", other.M, s.M)
	}
	s.Allocs = append(s.Allocs, other.Allocs...)
	return nil
}

// SortByStart orders allocations by start time (stable by job ID).
func (s *Schedule) SortByStart() {
	sort.Slice(s.Allocs, func(i, k int) bool {
		if s.Allocs[i].Start != s.Allocs[k].Start {
			return s.Allocs[i].Start < s.Allocs[k].Start
		}
		return s.Allocs[i].Job.ID < s.Allocs[k].Job.ID
	})
}

// Work returns the total processor-time area of the schedule.
func (s *Schedule) Work() float64 {
	var w float64
	for _, a := range s.Allocs {
		w += float64(a.Procs) * a.EffectiveDuration()
	}
	return w
}
