package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workload"
)

func mold(id int, seq float64, maxP int) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Moldable, Weight: 1, DueDate: -1,
		SeqTime: seq, MinProcs: 1, MaxProcs: maxP, Model: workload.Linear{},
	}
}

func rigid(id int, seq float64, p int) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1,
		SeqTime: seq, MinProcs: p, MaxProcs: p, Model: workload.Linear{},
	}
}

func TestValidSchedule(t *testing.T) {
	s := New(4)
	s.Add(Alloc{Job: mold(1, 8, 4), Start: 0, Procs: 2}) // ends at 4
	s.Add(Alloc{Job: mold(2, 4, 4), Start: 0, Procs: 2}) // ends at 2
	s.Add(Alloc{Job: mold(3, 8, 4), Start: 2, Procs: 2}) // ends at 6
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); got != 6 {
		t.Fatalf("Makespan = %v", got)
	}
	if got := s.Work(); got != 8+4+8 {
		t.Fatalf("Work = %v", got)
	}
}

func TestValidateCapacity(t *testing.T) {
	s := New(3)
	s.Add(Alloc{Job: mold(1, 8, 3), Start: 0, Procs: 2})
	s.Add(Alloc{Job: mold(2, 8, 3), Start: 1, Procs: 2})
	if err := s.Validate(); err == nil {
		t.Fatal("overcommitted schedule accepted")
	}
}

func TestValidateRelease(t *testing.T) {
	j := mold(1, 4, 2)
	j.Release = 10
	s := New(2)
	s.Add(Alloc{Job: j, Start: 5, Procs: 1})
	if err := s.Validate(); err == nil {
		t.Fatal("pre-release start accepted")
	}
	if err := s.ValidateWith(ValidateOptions{IgnoreReleases: true}); err != nil {
		t.Fatalf("IgnoreReleases failed: %v", err)
	}
}

func TestValidateRigid(t *testing.T) {
	s := New(4)
	s.Add(Alloc{Job: rigid(1, 8, 2), Start: 0, Procs: 3})
	if err := s.Validate(); err == nil {
		t.Fatal("rigid job with wrong allocation accepted")
	}
}

func TestValidateDoubleSchedule(t *testing.T) {
	j := mold(1, 4, 2)
	s := New(4)
	s.Add(Alloc{Job: j, Start: 0, Procs: 1})
	s.Add(Alloc{Job: j, Start: 10, Procs: 1})
	if err := s.Validate(); err == nil {
		t.Fatal("job scheduled twice accepted")
	}
}

func TestValidateDurationOverride(t *testing.T) {
	s := New(2)
	s.Add(Alloc{Job: mold(1, 4, 2), Start: 0, Procs: 1, Duration: 99})
	if err := s.Validate(); err == nil {
		t.Fatal("wrong duration accepted")
	}
	if err := s.ValidateWith(ValidateOptions{AllowDurationOverride: true}); err != nil {
		t.Fatalf("override rejected: %v", err)
	}
}

func TestValidateProcsOutOfRange(t *testing.T) {
	s := New(8)
	j := mold(1, 4, 2)
	s.Add(Alloc{Job: j, Start: 0, Procs: 3})
	if err := s.Validate(); err == nil {
		t.Fatal("allocation above MaxProcs accepted")
	}
}

func TestValidateWithCalendar(t *testing.T) {
	cal, err := platform.NewCalendar(4, []platform.Reservation{
		{Name: "res", Start: 5, End: 15, Procs: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 procs from t=0..10 collides with only 1 free during [5,10).
	s := New(4)
	s.Add(Alloc{Job: mold(1, 20, 4), Start: 0, Procs: 2})
	if err := s.ValidateWith(ValidateOptions{Calendar: cal}); err == nil {
		t.Fatal("reservation conflict accepted")
	}
	// 1 proc is fine.
	s2 := New(4)
	s2.Add(Alloc{Job: mold(1, 10, 4), Start: 0, Procs: 1})
	if err := s2.ValidateWith(ValidateOptions{Calendar: cal}); err != nil {
		t.Fatalf("feasible schedule rejected: %v", err)
	}
}

func TestAssignProcessors(t *testing.T) {
	s := New(4)
	s.Add(Alloc{Job: mold(1, 8, 4), Start: 0, Procs: 2})
	s.Add(Alloc{Job: mold(2, 8, 4), Start: 0, Procs: 2})
	s.Add(Alloc{Job: mold(3, 4, 4), Start: 4, Procs: 4})
	if err := s.AssignProcessors(); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, p := range s.Allocs[0].ProcIDs {
		used[p] = true
	}
	for _, p := range s.Allocs[1].ProcIDs {
		if used[p] {
			t.Fatal("overlapping jobs share a processor")
		}
	}
}

func TestCovers(t *testing.T) {
	jobs := []*workload.Job{mold(1, 4, 2), mold(2, 4, 2)}
	s := New(2)
	s.Add(Alloc{Job: jobs[0], Start: 0, Procs: 1})
	if err := s.Covers(jobs); err == nil {
		t.Fatal("missing job not detected")
	}
	s.Add(Alloc{Job: jobs[1], Start: 0, Procs: 1})
	if err := s.Covers(jobs); err != nil {
		t.Fatal(err)
	}
	s.Add(Alloc{Job: mold(3, 4, 2), Start: 4, Procs: 1})
	if err := s.Covers(jobs); err == nil {
		t.Fatal("extra job not detected")
	}
}

func TestShiftAndMerge(t *testing.T) {
	s := New(2)
	s.Add(Alloc{Job: mold(1, 4, 2), Start: 0, Procs: 2})
	shifted := s.Shift(10)
	if shifted.Allocs[0].Start != 10 {
		t.Fatalf("Shift start = %v", shifted.Allocs[0].Start)
	}
	if s.Allocs[0].Start != 0 {
		t.Fatal("Shift mutated the original")
	}
	other := New(2)
	other.Add(Alloc{Job: mold(2, 4, 2), Start: 2, Procs: 2})
	if err := s.Merge(other); err != nil {
		t.Fatal(err)
	}
	if len(s.Allocs) != 2 {
		t.Fatal("Merge lost allocations")
	}
	bad := New(3)
	if err := s.Merge(bad); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestSortByStart(t *testing.T) {
	s := New(4)
	s.Add(Alloc{Job: mold(2, 1, 2), Start: 5, Procs: 1})
	s.Add(Alloc{Job: mold(1, 1, 2), Start: 0, Procs: 1})
	s.Add(Alloc{Job: mold(3, 1, 2), Start: 5, Procs: 1})
	s.SortByStart()
	if s.Allocs[0].Job.ID != 1 || s.Allocs[1].Job.ID != 2 {
		t.Fatal("SortByStart wrong order")
	}
}

func TestReportFromSchedule(t *testing.T) {
	s := New(2)
	s.Add(Alloc{Job: mold(1, 4, 2), Start: 0, Procs: 2}) // ends 2
	r := s.Report()
	if r.Makespan != 2 || r.N != 1 {
		t.Fatalf("report = %+v", r)
	}
	if math.Abs(r.Utilization-1) > 1e-12 {
		t.Fatalf("utilization = %v, want 1", r.Utilization)
	}
}

// Property: a randomly generated non-overlapping stack of shelves always
// validates, and AssignProcessors always yields a pinned-valid schedule.
func TestScheduleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 16)
		s := New(m)
		clock := 0.0
		id := 1
		for shelf := 0; shelf < rng.IntRange(1, 5); shelf++ {
			free := m
			var maxDur float64
			for free > 0 && rng.Bool(0.8) {
				p := rng.IntRange(1, free)
				seq := rng.Range(1, 100)
				j := mold(id, seq, m)
				id++
				s.Add(Alloc{Job: j, Start: clock, Procs: p})
				if d := j.TimeOn(p); d > maxDur {
					maxDur = d
				}
				free -= p
			}
			clock += maxDur
		}
		if err := s.Validate(); err != nil {
			return false
		}
		if err := s.AssignProcessors(); err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
