package api

import (
	"compress/gzip"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/runtrace"
)

const tracedSpec = `{"seed": 5, "spec": {
	"id": "traced", "kind": "online",
	"workload": {"n": 60, "m": 16, "rigid_fraction": 1},
	"policies": ["fcfs"],
	"params": {"rates": [0.3]},
	"scale": {"job_factor": 20},
	"trace": {"events": true}
}}`

func getTrace(t *testing.T, url, id, query string, gzipped bool) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/runs/"+id+"/trace"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gzipped {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r io.Reader = resp.Body
	if gzipped && resp.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		defer zr.Close()
		r = zr
	}
	body, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestTraceEndpoint(t *testing.T) {
	_, srv := newTestService(t, Config{MaxActive: 1})
	st, code, _ := postRun(t, srv.URL, tracedSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitState(t, srv.URL, st.ID, RunDone)
	if final.TraceEvents == 0 {
		t.Fatal("status reports no trace events on a traced run")
	}

	code, body, hdr := getTrace(t, srv.URL, st.ID, "", false)
	if code != http.StatusOK {
		t.Fatalf("trace: %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines, err := runtrace.ParseLines(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	traces, err := runtrace.Rebuild(lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	n := traces[0].Totals()
	if n.Submits == 0 || n.Submits != n.Finishes+n.Kills {
		t.Fatalf("conservation violated: submits %d, finishes %d, kills %d", n.Submits, n.Finishes, n.Kills)
	}

	// The gzip negotiation serves the same bytes.
	code, zbody, zhdr := getTrace(t, srv.URL, st.ID, "", true)
	if code != http.StatusOK {
		t.Fatalf("gzip trace: %d", code)
	}
	if zhdr.Get("Content-Encoding") != "gzip" {
		t.Fatal("no gzip encoding despite Accept-Encoding")
	}
	if zbody != body {
		t.Fatal("gzip body differs from identity body")
	}

	// Cell filter: cell 0 exists, cell 7 does not, "abc" is malformed.
	if code, _, _ := getTrace(t, srv.URL, st.ID, "?cell=0", false); code != http.StatusOK {
		t.Fatalf("cell filter: %d", code)
	}
	if code, _, _ := getTrace(t, srv.URL, st.ID, "?cell=7", false); code != http.StatusNotFound {
		t.Fatalf("unknown cell: %d, want 404", code)
	}
	if code, _, _ := getTrace(t, srv.URL, st.ID, "?cell=abc", false); code != http.StatusBadRequest {
		t.Fatalf("bad cell: %d, want 400", code)
	}
}

func TestTraceEndpointUntracedAndUnknown(t *testing.T) {
	_, srv := newTestService(t, Config{MaxActive: 1})
	st, _, _ := postRun(t, srv.URL, `{"spec": {"id": "plain", "kind": "api-sleep", "params": {"cells": 1}}}`)
	waitState(t, srv.URL, st.ID, RunDone)
	code, body, _ := getTrace(t, srv.URL, st.ID, "", false)
	if code != http.StatusNotFound {
		t.Fatalf("untraced run: %d, want 404", code)
	}
	if !strings.Contains(body, "no trace") {
		t.Fatalf("untraced hint missing: %s", body)
	}
	if code, _, _ := getTrace(t, srv.URL, "nope", "", false); code != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", code)
	}
}

func TestTraceEndpointConflictWhileRunning(t *testing.T) {
	_, srv := newTestService(t, Config{MaxActive: 1})
	st, _, _ := postRun(t, srv.URL, `{"spec": {"id": "gated", "kind": "api-gate", "params": {"cells": 1}}}`)
	waitState(t, srv.URL, st.ID, RunRunning)
	code, _, _ := getTrace(t, srv.URL, st.ID, "", false)
	gate <- struct{}{} // release the cell before asserting
	waitState(t, srv.URL, st.ID, RunDone)
	if code != http.StatusConflict {
		t.Fatalf("running run: %d, want 409", code)
	}
}
