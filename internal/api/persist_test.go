package api

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// copyStoreDir snapshots the persistence directory mid-flight — the
// byte-level equivalent of kill -9 while the daemon is working.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// getText fetches a path and returns the body (helper for byte-identity
// checks on results and traces).
func getText(t *testing.T, url, path string) (string, int) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

// persistTracedSpec exercises a real catalog kind with event tracing on, so
// the persisted payload carries result cells AND a JSONL trace.
const persistTracedSpec = `{"spec":{"id":"persist-traced","kind":"online",` +
	`"workload":{"n":40,"m":16,"rigid_fraction":1},` +
	`"policies":["fcfs"],"params":{"rates":[0.3]},"trace":{"events":true}},"seed":7}`

// TestRestartRecoversRuns: a service reopened on a byte-copy of the
// persistence directory (taken while a run was still executing) serves
// finished results, text renderings, traces and SSE history
// byte-identically, fails the in-flight run with a restart reason,
// keeps run IDs monotonic, and answers an identical resubmission from
// the memo cache.
func TestRestartRecoversRuns(t *testing.T) {
	dir := t.TempDir()
	_, srv := newTestService(t, Config{MaxActive: 2, MaxHistory: 8, Store: openStoreT(t, dir)})

	done, code, _ := postRun(t, srv.URL, persistTracedSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, srv.URL, done.ID, RunDone)
	wantJSON, _ := getText(t, srv.URL, "/v1/runs/"+done.ID+"/result")
	wantText, _ := getText(t, srv.URL, "/v1/runs/"+done.ID+"/result?format=text")
	wantTrace, _ := getText(t, srv.URL, "/v1/runs/"+done.ID+"/trace")
	if !strings.Contains(wantTrace, `"ev":"meta"`) {
		t.Fatalf("traced run produced no trace:\n%s", wantTrace)
	}

	inflight, _, _ := postRun(t, srv.URL, `{"spec":{"id":"g","kind":"api-gate","params":{"cells":1}}}`)
	waitState(t, srv.URL, inflight.ID, RunRunning)

	// kill -9: only the bytes already on disk survive.
	svc2, srv2 := newTestService(t, Config{MaxActive: 2, MaxHistory: 8,
		Store: openStoreT(t, copyStoreDir(t, dir))})

	gotJSON, code := getText(t, srv2.URL, "/v1/runs/"+done.ID+"/result")
	if code != http.StatusOK || gotJSON != wantJSON {
		t.Fatalf("recovered result JSON diverges (status %d)\nwant:\n%s\ngot:\n%s", code, wantJSON, gotJSON)
	}
	gotText, _ := getText(t, srv2.URL, "/v1/runs/"+done.ID+"/result?format=text")
	if gotText != wantText {
		t.Fatalf("recovered text table diverges\nwant:\n%s\ngot:\n%s", wantText, gotText)
	}
	gotTrace, _ := getText(t, srv2.URL, "/v1/runs/"+done.ID+"/trace")
	if gotTrace != wantTrace {
		t.Fatalf("recovered trace diverges\nwant:\n%s\ngot:\n%s", wantTrace, gotTrace)
	}

	// SSE on a recovered terminal run replays history and closes on the
	// terminal state event.
	events, err := streamEvents(context.Background(), srv2.URL, done.ID)
	if err != nil {
		t.Fatalf("SSE on recovered run: %v", err)
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != RunDone {
		t.Fatalf("recovered SSE history ends with %+v, want done state event", last)
	}

	// The run that was mid-flight at the crash is failed, with a reason
	// that names the restart.
	st := getStatus(t, srv2.URL, inflight.ID)
	if st.State != RunFailed || !strings.Contains(st.Error, "interrupted by daemon restart") {
		t.Fatalf("in-flight run recovered as %q (err %q), want failed/restart reason", st.State, st.Error)
	}

	// Run IDs stay monotonic across the restart: no recycled IDs.
	next, _, _ := postRun(t, srv2.URL, `{"spec":{"id":"n","kind":"api-sleep","params":{"cells":1,"us":1}}}`)
	if next.ID <= inflight.ID {
		t.Fatalf("post-restart run ID %q not after pre-crash %q", next.ID, inflight.ID)
	}

	// An identical resubmission is a memo hit rebuilt from the store:
	// immediately done, flagged cached, byte-identical result.
	hit, code, _ := postRun(t, srv2.URL, persistTracedSpec)
	if code != http.StatusAccepted || !hit.Cached || hit.State != RunDone {
		t.Fatalf("resubmission after restart: status %d cached=%v state=%q", code, hit.Cached, hit.State)
	}
	hitJSON, _ := getText(t, srv2.URL, "/v1/runs/"+hit.ID+"/result")
	if hitJSON != wantJSON {
		t.Fatalf("cached result diverges from original\nwant:\n%s\ngot:\n%s", wantJSON, hitJSON)
	}
	if sum := svc2.Summary(); sum.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", sum.CacheHits)
	}
}

// TestMemoization: identical submissions are answered from the cache
// without re-executing cells; different seeds miss; NoMemo disables.
func TestMemoization(t *testing.T) {
	_, srv := newTestService(t, Config{MaxActive: 2, MaxHistory: 8})
	body := `{"spec":{"id":"m","kind":"api-sleep","params":{"cells":2,"us":1}},"seed":9}`

	first, _, _ := postRun(t, srv.URL, body)
	if first.Cached {
		t.Fatal("first submission claims cached")
	}
	waitState(t, srv.URL, first.ID, RunDone)
	wantJSON, _ := getText(t, srv.URL, "/v1/runs/"+first.ID+"/result")

	hit, _, _ := postRun(t, srv.URL, body)
	if !hit.Cached || hit.State != RunDone || hit.ID == first.ID {
		t.Fatalf("second submission: cached=%v state=%q id=%q (first %q)", hit.Cached, hit.State, hit.ID, first.ID)
	}
	if got, _ := getText(t, srv.URL, "/v1/runs/"+hit.ID+"/result"); got != wantJSON {
		t.Fatalf("cached result diverges\nwant:\n%s\ngot:\n%s", wantJSON, got)
	}

	miss, _, _ := postRun(t, srv.URL, `{"spec":{"id":"m","kind":"api-sleep","params":{"cells":2,"us":1}},"seed":10}`)
	if miss.Cached {
		t.Fatal("different seed served from cache")
	}
	waitState(t, srv.URL, miss.ID, RunDone)

	_, srvOff := newTestService(t, Config{MaxActive: 2, MaxHistory: 8, NoMemo: true})
	a, _, _ := postRun(t, srvOff.URL, body)
	waitState(t, srvOff.URL, a.ID, RunDone)
	b, _, _ := postRun(t, srvOff.URL, body)
	if b.Cached {
		t.Fatal("NoMemo service served a cache hit")
	}
	waitState(t, srvOff.URL, b.ID, RunDone)
}

func postRunKey(t *testing.T, url, key, body string) (RunStatus, int, http.Header) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/runs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	_ = decodeBody(resp.Body, &st)
	return st, resp.StatusCode, resp.Header
}

func decodeBody(r io.Reader, out any) error {
	b, err := io.ReadAll(r)
	if err != nil || len(b) == 0 {
		return err
	}
	return json.Unmarshal(b, out)
}

// TestTenantAuth: submissions need a configured key (401/403), each
// tenant admits against its own quota (429 + Retry-After), reads stay
// open, and cross-tenant cancellation is refused.
func TestTenantAuth(t *testing.T) {
	ts, err := store.ParseTenants([]byte(`[
		{"name":"alpha","key":"alpha-key","max_active":1,"submit_rate":100,"burst":100},
		{"name":"beta","key":"beta-key","max_active":1,"submit_rate":100,"burst":100},
		{"name":"gamma","key":"gamma-key","max_active":4,"submit_rate":0.5,"burst":1}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	_, srv := newTestService(t, Config{MaxActive: 4, MaxHistory: 16, Tenants: ts})
	gateBody := func(id string) string {
		return `{"spec":{"id":"` + id + `","kind":"api-gate","params":{"cells":1}}}`
	}

	if _, code, hdr := postRunKey(t, srv.URL, "", gateBody("x")); code != http.StatusUnauthorized || hdr.Get("WWW-Authenticate") == "" {
		t.Fatalf("missing key: status %d, WWW-Authenticate %q", code, hdr.Get("WWW-Authenticate"))
	}
	if _, code, _ := postRunKey(t, srv.URL, "wrong", gateBody("x")); code != http.StatusForbidden {
		t.Fatalf("unknown key: status %d, want 403", code)
	}

	// Bearer form works too.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/runs", strings.NewReader(gateBody("a1")))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer alpha-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var aRun RunStatus
	_ = decodeBody(resp.Body, &aRun)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || aRun.Tenant != "alpha" {
		t.Fatalf("alpha submit: status %d tenant %q", resp.StatusCode, aRun.Tenant)
	}

	// Alpha is at max_active 1: its next submission is refused with a
	// Retry-After hint — while beta admits independently.
	_, code, hdr := postRunKey(t, srv.URL, "alpha-key", gateBody("a2"))
	if code != http.StatusTooManyRequests || hdr.Get("Retry-After") == "" {
		t.Fatalf("alpha over quota: status %d, Retry-After %q", code, hdr.Get("Retry-After"))
	}
	bRun, code, _ := postRunKey(t, srv.URL, "beta-key", gateBody("b1"))
	if code != http.StatusAccepted || bRun.Tenant != "beta" {
		t.Fatalf("beta submit while alpha throttled: status %d tenant %q", code, bRun.Tenant)
	}

	// Gamma has active slots free but a one-token bucket: the second
	// submission is rate-limited, not slot-limited.
	if _, code, _ := postRunKey(t, srv.URL, "gamma-key", `{"spec":{"id":"g1","kind":"api-sleep","params":{"cells":1,"us":1}}}`); code != http.StatusAccepted {
		t.Fatalf("gamma first submit: status %d", code)
	}
	if _, code, _ := postRunKey(t, srv.URL, "gamma-key", `{"spec":{"id":"g2","kind":"api-sleep","params":{"cells":1,"us":1}}}`); code != http.StatusTooManyRequests {
		t.Fatalf("gamma rate limit: status %d, want 429", code)
	}

	// Reads stay open: no key needed for status.
	if st := getStatus(t, srv.URL, aRun.ID); st.ID != aRun.ID {
		t.Fatalf("unauthenticated status read failed: %+v", st)
	}

	// Beta cannot cancel alpha's run; alpha can.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+aRun.ID, nil)
	req.Header.Set("X-API-Key", "beta-key")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant cancel: status %d, want 403", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+aRun.ID, nil)
	req.Header.Set("X-API-Key", "alpha-key")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("own cancel: status %d, want 200", resp.StatusCode)
	}
	waitState(t, srv.URL, aRun.ID, RunCancelled)

	// With the slot released, alpha admits again.
	again, code, _ := postRunKey(t, srv.URL, "alpha-key", gateBody("a3"))
	if code != http.StatusAccepted {
		t.Fatalf("alpha after release: status %d", code)
	}
	_, _ = cancelRun(t, srv.URL, again.ID)
	_, _ = cancelRun(t, srv.URL, bRun.ID)
}
