package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"repro/internal/runtrace"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/trace"
)

// terminalPayload is the opaque Terminal blob the store keeps for a
// finished run: everything needed to re-serve the status timings, the
// SSE event history, /result in every format, and /trace byte-identically
// after a restart. All fields are typed structs (no raw []any), so a
// JSON round trip cannot blur int/float distinctions the text renderer
// depends on.
type terminalPayload struct {
	Events     []Event      `json:"events,omitempty"`
	Timings    []CellTiming `json:"timings,omitempty"`
	CellsDone  int          `json:"cells_done,omitempty"`
	CellsTotal int          `json:"cells_total,omitempty"`
	Result     *resultRec   `json:"result,omitempty"`
	// TraceJSONL is the run's event trace in the exact JSONL encoding
	// /v1/runs/{id}/trace serves (runtrace round-trips it losslessly).
	TraceJSONL string `json:"trace_jsonl,omitempty"`
}

// resultRec persists a scenario.Result. Form picks the rebuild path:
// "cells" (typed cells re-render the table), "rows" (pre-rendered
// string rows), or "custom" (captured text output of a figure).
type resultRec struct {
	Form    string     `json:"form"`
	SpecID  string     `json:"spec_id,omitempty"`
	Kind    string     `json:"kind,omitempty"`
	Seed    uint64     `json:"seed"`
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers,omitempty"`
	Axes    int        `json:"axes,omitempty"`
	Cells   []cellRec  `json:"cells,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Text    string     `json:"text,omitempty"`
}

// cellRec is one typed result cell, values wrapped in the tagged Value
// codec shared with the fleet wire protocol.
type cellRec struct {
	Index    int              `json:"index"`
	Values   []scenario.Value `json:"values"`
	Duration float64          `json:"duration_seconds,omitempty"`
}

// buildTerminal marshals a run's terminal payload. The service mutex
// must be held (reads the run's mutable fields).
func buildTerminal(r *Run) (json.RawMessage, error) {
	p := terminalPayload{
		Events:     r.events,
		Timings:    r.timings,
		CellsDone:  r.cellsDone,
		CellsTotal: r.cellsTotal,
	}
	if r.result != nil {
		rr, err := encodeResult(r.result)
		if err != nil {
			return nil, err
		}
		p.Result = rr
		if len(r.result.Traces) > 0 {
			var buf bytes.Buffer
			if err := runtrace.WriteJSONL(&buf, r.result.Traces); err != nil {
				return nil, err
			}
			p.TraceJSONL = buf.String()
		}
	}
	return json.Marshal(&p)
}

func encodeResult(res *scenario.Result) (*resultRec, error) {
	rr := &resultRec{
		SpecID: res.SpecID, Kind: res.Kind, Seed: res.Seed,
		Title: res.Title, Headers: res.Headers, Axes: res.Axes,
	}
	switch {
	case res.Cells != nil:
		rr.Form = "cells"
		rr.Cells = make([]cellRec, len(res.Cells))
		for i, c := range res.Cells {
			vals := make([]scenario.Value, len(c.Values))
			for j, v := range c.Values {
				ev, err := scenario.EncodeValue(v)
				if err != nil {
					return nil, err
				}
				vals[j] = ev
			}
			rr.Cells[i] = cellRec{Index: c.Index, Values: vals, Duration: c.Duration}
		}
	case res.Table != nil:
		rr.Form = "rows"
		rr.Rows = res.Table.Rows
	default:
		// Custom renderer (figures): capture its text once; the render
		// is deterministic, so the capture is the output.
		rr.Form = "custom"
		var buf bytes.Buffer
		if err := res.EmitFormat(&buf, "text"); err != nil {
			return nil, err
		}
		rr.Text = buf.String()
	}
	return rr, nil
}

func decodeResult(rr *resultRec, opt scenario.RunOptions) (*scenario.Result, error) {
	var res *scenario.Result
	switch rr.Form {
	case "cells":
		cells := make([]scenario.Cell, len(rr.Cells))
		for i, c := range rr.Cells {
			vals := make([]any, len(c.Values))
			for j, v := range c.Values {
				dv, err := v.Decode()
				if err != nil {
					return nil, err
				}
				vals[j] = dv
			}
			cells[i] = scenario.Cell{Index: c.Index, Values: vals, Duration: c.Duration}
		}
		// NewCellResult re-renders the text table from the typed cells —
		// byte-identical because the Value codec round-trips exactly.
		res = scenario.NewCellResult(rr.Title, rr.Headers, rr.Axes, cells)
	case "rows":
		res = scenario.TableResult(&trace.Table{Title: rr.Title, Headers: rr.Headers, Rows: rr.Rows})
	case "custom":
		text := rr.Text
		res = scenario.CustomResult(func(w io.Writer) error {
			_, err := io.WriteString(w, text)
			return err
		})
		res.Title, res.Headers = rr.Title, rr.Headers
	default:
		return nil, fmt.Errorf("api: unknown persisted result form %q", rr.Form)
	}
	res.SpecID, res.Kind, res.Seed, res.Axes = rr.SpecID, rr.Kind, rr.Seed, rr.Axes
	res.Options = opt
	return res, nil
}

// applyTerminal restores a run's terminal fields from its persisted
// payload.
func applyTerminal(r *Run, payload json.RawMessage) error {
	var p terminalPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return err
	}
	r.events = p.Events
	r.timings = p.Timings
	r.cellsDone, r.cellsTotal = p.CellsDone, p.CellsTotal
	if p.Result != nil {
		res, err := decodeResult(p.Result, r.opt)
		if err != nil {
			return err
		}
		if p.TraceJSONL != "" {
			lines, err := runtrace.ParseLines(strings.NewReader(p.TraceJSONL))
			if err != nil {
				return err
			}
			traces, err := runtrace.Rebuild(lines)
			if err != nil {
				return err
			}
			res.Traces = traces
		}
		r.result = res
	}
	return nil
}

// record snapshots the run's durable identity for a WAL submit record.
// The service mutex must be held.
func (r *Run) record() *store.RunRecord {
	return &store.RunRecord{
		ID: r.id, Seq: uint64(r.seqNo), Tenant: r.tenant,
		State: string(r.state), Error: r.err,
		Cached: r.cached, MemoKey: r.memoKey,
		Spec: r.specJSON, Seed: r.opt.Seed, JobFactor: r.opt.Scale.JobFactor,
		Created: r.created, Started: r.started, Finished: r.finished,
	}
}

// runFromRecord rebuilds a run from its durable record. The returned
// run never executes (its context is pre-cancelled); non-terminal
// records come back in their persisted state for the caller to repair.
func runFromRecord(rec *store.RunRecord) (*Run, error) {
	spec, err := scenario.Decode(bytes.NewReader(rec.Spec))
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Run{
		id: rec.ID, seqNo: int(rec.Seq), spec: spec,
		opt: scenario.RunOptions{
			Seed: rec.Seed, SeedExplicit: true,
			Scale: scenario.Scale{JobFactor: rec.JobFactor},
		},
		ctx: ctx, cancel: cancel,
		state: RunState(rec.State), err: rec.Error,
		created: rec.Created, started: rec.Started, finished: rec.Finished,
		tenant: rec.Tenant, cached: rec.Cached, memoKey: rec.MemoKey,
		specJSON: append(json.RawMessage(nil), rec.Spec...),
		wake:     make(chan struct{}),
	}
	if r.state.Terminal() && rec.Terminal != nil {
		if err := applyTerminal(r, rec.Terminal); err != nil {
			return nil, fmt.Errorf("terminal payload: %w", err)
		}
	}
	return r, nil
}

// recover rebuilds the run store from the durable store at boot: every
// persisted run is restored, runs that were queued or running when the
// process died are finalized as failed with a restart reason (and that
// repair is itself persisted, so the next boot replays it instead of
// re-deciding), the memo index is rebuilt from done runs, and the
// monotonic counters (run ID sequence, eviction count, cache hits)
// resume where they left off. Runs only before the executor pool
// starts, so no locking is needed.
func (s *RunService) recover() {
	st := s.cfg.Store
	for _, rec := range st.Runs() {
		r, err := runFromRecord(rec)
		if err != nil {
			log.Printf("api: recover: dropping run %s: %v", rec.ID, err)
			continue
		}
		if !r.state.Terminal() {
			r.state = RunFailed
			r.err = "interrupted by daemon restart"
			r.finished = time.Now()
			r.publish(Event{Type: "state", State: RunFailed, Error: r.err})
			if err := st.Append(store.Record{
				Op: "terminal", ID: r.id, State: string(RunFailed),
				Error: r.err, Finished: r.finished,
			}); err != nil {
				log.Printf("api: recover: persist restart-failure %s: %v", r.id, err)
			}
		}
		s.runs[r.id] = r
		s.order = append(s.order, r)
		if r.state == RunDone && r.memoKey != "" && !s.cfg.NoMemo {
			if _, ok := s.memo[r.memoKey]; !ok {
				s.memo[r.memoKey] = r
			}
		}
	}
	s.seq = int(st.Seq())
	s.evicted = st.Evicted()
	s.cacheHits = st.CacheHits()
	s.evictLocked()
}
