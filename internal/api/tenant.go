package api

import (
	"net/http"
	"strings"

	"repro/internal/store"
)

// tenantFor authenticates a mutating request against the configured
// tenant set. Without a tenant set every caller is the anonymous
// tenant (nil, ok) — single-user deployments need no keys. With one,
// a missing key is 401 and an unknown key 403; both are answered here.
// Read-only endpoints (status, results, traces, events) stay open:
// results of the deterministic engine are reproducible from the public
// catalog, so there is nothing secret to protect, and keeping them
// keyless preserves every existing dashboard and CLI flow.
func (s *RunService) tenantFor(w http.ResponseWriter, r *http.Request) (*store.Tenant, bool) {
	if s.cfg.Tenants == nil {
		return nil, true
	}
	key := requestKey(r)
	if key == "" {
		w.Header().Set("WWW-Authenticate", `Bearer realm="gridd"`)
		WriteError(w, http.StatusUnauthorized, "missing API key (Authorization: Bearer <key> or X-API-Key)")
		return nil, false
	}
	t, ok := s.cfg.Tenants.Lookup(key)
	if !ok {
		WriteError(w, http.StatusForbidden, "unknown API key")
		return nil, false
	}
	return t, true
}

// requestKey extracts the API key from Authorization: Bearer or the
// X-API-Key fallback (for clients that cannot set Authorization).
func requestKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return r.Header.Get("X-API-Key")
}

// tenantName is the status-facing name of a (possibly anonymous)
// tenant.
func tenantName(t *store.Tenant) string {
	if t == nil {
		return ""
	}
	return t.Name
}
