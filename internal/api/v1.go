package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/scenario"
)

// Mount registers the versioned run-lifecycle API plus the legacy
// POST /scenarios compatibility shim on mux:
//
//	POST   /v1/runs              submit a scenario run (202 + RunStatus)
//	GET    /v1/runs              list stored runs
//	GET    /v1/runs/{id}         typed status incl. per-cell timings
//	GET    /v1/runs/{id}/events  SSE stream of cell/state events
//	GET    /v1/runs/{id}/result  result (?format=json|text|csv)
//	GET    /v1/runs/{id}/trace   JSONL event trace (?cell=N filter)
//	DELETE /v1/runs/{id}         cooperative cancellation
//	POST   /scenarios            legacy synchronous shim over /v1
//	                             (also served at /v1/scenarios)
func (s *RunService) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/version", handleVersion)
	RegisterBoth(mux, "POST /scenarios", s.handleLegacyScenario)
	// A coordinator-backed service also serves the fleet lease
	// protocol (POST /v1/fleet/lease|complete|heartbeat, GET
	// /v1/fleet/workers) — mounted through the interface so the api
	// package never imports internal/fleet.
	if f, ok := s.cfg.Fleet.(interface{ Mount(*http.ServeMux) }); ok {
		f.Mount(mux)
	}
}

// decodeRequest parses a run submission (shared by /v1/runs and the
// legacy shim — same body shape).
func decodeRequest(w http.ResponseWriter, r *http.Request) (scenario.HTTPRequest, bool) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req scenario.HTTPRequest
	if err := dec.Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad scenario request: %v", err))
		return req, false
	}
	return req, true
}

func (s *RunService) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	run, herr := s.SubmitAs(req, tn)
	if herr != nil {
		s.writeSubmitErr(w, herr)
		return
	}
	WriteJSON(w, http.StatusAccepted, s.Status(run, false))
}

// writeSubmitErr answers a rejected submission; 429s carry the
// per-tenant Retry-After when the tenant's own quota (not the global
// backlog) was the binding constraint.
func (s *RunService) writeSubmitErr(w http.ResponseWriter, herr *httpErr) {
	if herr.code == http.StatusTooManyRequests {
		retry := herr.retryAfter
		if retry <= 0 {
			retry = s.RetryAfter()
		}
		WriteBusy(w, retry, herr.msg)
		return
	}
	WriteError(w, herr.code, herr.msg)
}

func (s *RunService) handleList(w http.ResponseWriter, r *http.Request) {
	out := s.List()
	if out == nil {
		out = []RunStatus{}
	}
	WriteJSON(w, http.StatusOK, out)
}

// lookup resolves the {id} path value, answering 404 itself.
func (s *RunService) lookup(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	run, ok := s.Get(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, fmt.Sprintf("unknown run %q", r.PathValue("id")))
	}
	return run, ok
}

func (s *RunService) handleStatus(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	WriteJSON(w, http.StatusOK, s.Status(run, true))
}

func (s *RunService) handleCancel(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if tn != nil {
		// Tenants may only cancel their own runs (runs recovered from a
		// pre-tenancy store have no owner and stay cancellable).
		if owner := s.Status(run, false); owner.Tenant != "" && owner.Tenant != tn.Name {
			WriteError(w, http.StatusForbidden,
				fmt.Sprintf("run %s belongs to tenant %q", owner.ID, owner.Tenant))
			return
		}
	}
	if !s.Cancel(run) {
		WriteJSON(w, http.StatusConflict, s.Status(run, false))
		return
	}
	WriteJSON(w, http.StatusOK, s.Status(run, false))
}

func (s *RunService) handleResult(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st := s.Status(run, false)
	if st.State != RunDone {
		WriteError(w, http.StatusConflict, fmt.Sprintf("run %s is %s, not done", st.ID, st.State))
		return
	}
	res, ok := s.Result(run)
	if !ok {
		WriteError(w, http.StatusInternalServerError, "done run has no result")
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json":
		out, err := res.JSON()
		if err != nil {
			WriteError(w, http.StatusInternalServerError, err.Error())
			return
		}
		WriteJSON(w, http.StatusOK, out)
	case "text", "csv":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := res.EmitFormat(w, format); err != nil {
			// Headers are gone; the body break is the best signal left.
			fmt.Fprintf(w, "\nERROR: %v\n", err)
		}
	default:
		WriteError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (json|text|csv)", format))
	}
}

// handleEvents streams the run's progress as Server-Sent Events: the
// full event history first (late subscribers see every cell), then
// live events until the terminal state event closes the stream. A
// disconnected client is detected through the request context and
// costs nothing afterwards.
func (s *RunService) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	next := 0
	for {
		s.mu.Lock()
		events := append([]Event(nil), run.events[next:]...)
		terminal := run.state.Terminal()
		wake := run.wake
		s.mu.Unlock()
		for _, e := range events {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data); err != nil {
				return
			}
		}
		if len(events) > 0 {
			flusher.Flush()
		}
		next += len(events)
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// RetryAfter is the back-off hint a rejected client receives in the
// Retry-After header, computed from the submission backlog: an idle
// queue answers one second (quick runs clear in well under that), and
// every run already waiting beyond the executor pool adds another —
// capped at 30s — so a polling worker fleet backs off proportionally
// to how saturated the daemon actually is instead of hammering it
// once a second.
func (s *RunService) RetryAfter() time.Duration {
	s.mu.Lock()
	waiting := s.active - s.cfg.MaxActive
	s.mu.Unlock()
	if waiting < 0 {
		waiting = 0
	}
	d := time.Duration(1+waiting) * time.Second
	if max := 30 * time.Second; d > max {
		d = max
	}
	return d
}

// handleLegacyScenario is the POST /scenarios compatibility shim: it
// submits through the same run store the /v1 API uses, waits for the
// terminal state, and answers with the legacy one-shot table payload
// (same status codes as the historical synchronous handler: 400/404
// on bad requests, 422 for figure scenarios, plus 429 + Retry-After
// when the run queue is full, where the old handler answered a bare
// 503). Client disconnects cancel the run.
func (s *RunService) handleLegacyScenario(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	run, herr := s.SubmitAs(req, tn)
	if herr != nil {
		s.writeSubmitErr(w, herr)
		return
	}
	st, err := s.Wait(r.Context(), run)
	if err != nil {
		// The client went away: nobody wants this synchronous run.
		s.Cancel(run)
		return
	}
	switch st.State {
	case RunFailed:
		WriteError(w, http.StatusBadRequest, st.Error)
		return
	case RunCancelled:
		WriteError(w, http.StatusServiceUnavailable, "run cancelled: "+st.Error)
		return
	}
	res, ok := s.Result(run)
	if !ok || res.Table == nil {
		WriteError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("scenario %q renders custom output; run it through the CLI", st.SpecID))
		return
	}
	WriteJSON(w, http.StatusOK, scenario.HTTPResponse{
		ID: st.SpecID, Kind: st.Kind, Seed: res.Seed,
		Title: res.Table.Title, Headers: res.Table.Headers, Rows: res.Table.Rows,
	})
}

// WriteRunMetrics appends the run-store series to a Prometheus text
// exposition (shared by both daemon modes' /metrics handlers).
func WriteRunMetrics(w io.Writer, sum RunsSummary) {
	g := func(name, help, typ string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	g("gridd_runs_stored", "Scenario runs currently stored.", "gauge", float64(sum.Total))
	g("gridd_runs_active", "Scenario runs queued or running.", "gauge", float64(sum.Queued+sum.Running))
	g("gridd_runs_evicted_total", "Terminal runs evicted from the bounded history (monotonic across restarts with persistence).", "counter", float64(sum.Evicted))
	g("gridd_run_cache_hits_total", "Run submissions served from the memo cache without executing cells.", "counter", float64(sum.CacheHits))
}
