package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/store"
)

// Config parameterizes a RunService.
type Config struct {
	// MaxActive bounds concurrently executing runs (the gridd
	// -max-runs flag). Default 2: the daemon's first job is pacing
	// live simulations; scenario runs are batch work riding along.
	MaxActive int
	// MaxPending bounds queued-but-not-started runs beyond MaxActive;
	// submissions past the bound get 429 + Retry-After. Default
	// 2×MaxActive.
	MaxPending int
	// MaxHistory bounds the run store: when exceeded, the oldest
	// terminal runs are evicted (active runs never are). Default 64.
	MaxHistory int
	// MaxInlineJobs bounds the workload / campaign size an inline spec
	// may request server-side (catalog ids are trusted). Default
	// 100_000.
	MaxInlineJobs int
	// MaxBody caps request bodies (Wrap applies it). Default 1 MiB.
	MaxBody int64
	// Log, when set, receives request log lines from the middleware.
	Log *log.Logger
	// Fleet, when set, distributes each run's remoteable cells through
	// a coordinator (implemented by *fleet.Coordinator) instead of the
	// local pool. Traced runs always execute locally — their recorders
	// cannot ship over the wire.
	Fleet Fleet
	// Store, when set, makes the run store durable: submissions, state
	// transitions and terminal results are WAL-persisted and the whole
	// store is rebuilt from disk at boot (runs in flight at a crash
	// recover as failed with a restart reason).
	Store *store.Store
	// Tenants, when set, turns on multi-tenancy: mutating endpoints
	// require a tenant API key and admission is per-tenant (token
	// bucket + active-run cap) instead of only the global bound.
	Tenants *store.TenantSet
	// NoMemo disables content-addressed result memoization (identical
	// spec+seed submissions re-execute instead of returning the cached
	// terminal run).
	NoMemo bool
}

// Fleet is the coordinator seam of a distributed daemon: the api
// declares the interface (so it does not import internal/fleet, which
// mounts its handlers through this service) and the fleet package
// implements it.
type Fleet interface {
	// Dispatcher registers a run and returns the CellRunner the
	// scenario engine dispatches remoteable cells through.
	Dispatcher(runID string, spec *scenario.Spec, seed uint64, jobFactor int) (scenario.CellRunner, error)
	// RunWorkers lists the workers that contributed cells to a run.
	RunWorkers(runID string) []string
	// Forget drops a run's fleet-side record (store eviction).
	Forget(runID string)
}

func (c Config) fill() Config {
	if c.MaxActive <= 0 {
		c.MaxActive = 2
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 2 * c.MaxActive
	}
	if c.MaxHistory <= 0 {
		c.MaxHistory = 64
	}
	if c.MaxInlineJobs <= 0 {
		c.MaxInlineJobs = 100_000
	}
	if c.MaxBody <= 0 {
		c.MaxBody = DefaultMaxBody
	}
	return c
}

// RunsSummary aggregates the run store for the /stats endpoints. It is
// computed from the same Run records (and their Result cells) the /v1
// endpoints serve, so the two surfaces cannot diverge.
type RunsSummary struct {
	Total      int `json:"total"`
	Queued     int `json:"queued"`
	Running    int `json:"running"`
	Done       int `json:"done"`
	Failed     int `json:"failed"`
	Cancelled  int `json:"cancelled"`
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`
	// ResultRows counts typed result cells across completed runs —
	// read from the stored scenario.Result artifacts themselves.
	ResultRows int `json:"result_rows"`
	// Evicted counts terminal runs dropped by the bounded store
	// (monotonic across restarts when persistence is on).
	Evicted int `json:"evicted"`
	// CacheHits counts submissions served from the memo cache without
	// executing cells (monotonic across restarts when persistence is
	// on).
	CacheHits uint64 `json:"cache_hits"`
}

// ErrBusy rejects submissions past the queue bound (HTTP 429).
var ErrBusy = errors.New("api: run queue full; retry later")

// ErrStopped rejects submissions into a closed service.
var ErrStopped = errors.New("api: run service stopped")

// RunService owns the run store and the executor pool behind the /v1
// run-lifecycle API. One instance is shared by every handler of a
// daemon (single-cluster service or broker), making it the single
// source of truth for scenario-run state.
type RunService struct {
	cfg Config

	mu        sync.Mutex
	runs      map[string]*Run
	order     []*Run // insertion order (listing + eviction)
	seq       int
	active    int // queued or executing (not yet finalized)
	evicted   int
	cacheHits uint64
	// memo maps a content address (canonical spec + seed + job factor +
	// catalog hash) to the first done run carrying that result.
	memo    map[string]*Run
	stopped bool

	queue chan *Run
	wg    sync.WaitGroup
}

// NewRunService starts the executor pool (cfg.MaxActive workers). With
// a durable store configured, the in-memory state is first rebuilt
// from snapshot + WAL — before the pool starts, so recovered runs can
// never race live ones.
func NewRunService(cfg Config) *RunService {
	cfg = cfg.fill()
	s := &RunService{
		cfg:   cfg,
		runs:  map[string]*Run{},
		memo:  map[string]*Run{},
		queue: make(chan *Run, cfg.MaxActive+cfg.MaxPending),
	}
	if cfg.Store != nil {
		s.recover()
	}
	for range cfg.MaxActive {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Config returns the filled configuration.
func (s *RunService) Config() Config { return s.cfg }

// Close cancels every live run, stops the executor pool and waits for
// it to drain. Subsequent submissions fail with ErrStopped.
func (s *RunService) Close() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	for _, r := range s.order {
		if !r.state.Terminal() {
			r.cancel()
			if r.state == RunQueued {
				s.terminateLocked(r, RunCancelled, "service shutting down")
			}
		}
	}
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Summary aggregates the store (the /stats "runs" section).
func (s *RunService) Summary() RunsSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := RunsSummary{Total: len(s.order), Evicted: s.evicted, CacheHits: s.cacheHits}
	for _, r := range s.order {
		switch r.state {
		case RunQueued:
			sum.Queued++
		case RunRunning:
			sum.Running++
		case RunDone:
			sum.Done++
		case RunFailed:
			sum.Failed++
		case RunCancelled:
			sum.Cancelled++
		}
		sum.CellsDone += r.cellsDone
		sum.CellsTotal += r.cellsTotal
		if r.result != nil {
			sum.ResultRows += len(r.result.Cells)
		}
	}
	return sum
}

// httpErr pairs a status code with a message for the resolve step;
// 429 rejections may carry a per-tenant Retry-After hint.
type httpErr struct {
	code       int
	msg        string
	retryAfter time.Duration
}

// resolveSpec validates a submission and resolves its Spec — at
// submission time, so a bad request fails synchronously (400/404) and
// only runnable Specs enter the queue.
func (s *RunService) resolveSpec(req *scenario.HTTPRequest) (*scenario.Spec, *httpErr) {
	var spec *scenario.Spec
	switch {
	case req.ID != "" && req.Spec != nil:
		return nil, &httpErr{code: http.StatusBadRequest, msg: "set either id or spec, not both"}
	case req.ID != "":
		s, ok := scenario.Lookup(req.ID)
		if !ok {
			return nil, &httpErr{code: http.StatusNotFound, msg: fmt.Sprintf("unknown scenario %q", req.ID)}
		}
		spec = s
	case req.Spec != nil:
		spec = req.Spec
		if spec.ID == "" {
			spec.ID = "adhoc"
		}
		// Bound the work an inline spec can request of a live daemon
		// (cancellation is cooperative per cell, so one huge cell could
		// still pin a worker for its full duration).
		if spec.Workload != nil && spec.Workload.N > s.cfg.MaxInlineJobs {
			return nil, &httpErr{code: http.StatusBadRequest, msg: fmt.Sprintf(
				"inline spec requests %d jobs (max %d server-side; run it through the CLI)",
				spec.Workload.N, s.cfg.MaxInlineJobs)}
		}
		if spec.Grid != nil && spec.Grid.CampaignTasks > s.cfg.MaxInlineJobs {
			return nil, &httpErr{code: http.StatusBadRequest, msg: fmt.Sprintf(
				"inline spec requests %d campaign tasks (max %d server-side; run it through the CLI)",
				spec.Grid.CampaignTasks, s.cfg.MaxInlineJobs)}
		}
		// Clamp inline trace recording (req.Spec is per-request, so
		// mutating it is safe — catalog specs are shared and never
		// touched here).
		if spec.Trace != nil && spec.Trace.Events &&
			(spec.Trace.MaxEvents == 0 || spec.Trace.MaxEvents > maxInlineTraceEvents) {
			spec.Trace.MaxEvents = maxInlineTraceEvents
		}
	default:
		return nil, &httpErr{code: http.StatusBadRequest, msg: "set id or spec"}
	}
	if err := spec.Validate(); err != nil {
		return nil, &httpErr{code: http.StatusBadRequest, msg: err.Error()}
	}
	if !scenario.HasKind(spec.Kind) {
		return nil, &httpErr{code: http.StatusBadRequest, msg: fmt.Sprintf("unknown scenario kind %q", spec.Kind)}
	}
	return spec, nil
}

// options resolves the effective RunOptions for a submission (same
// precedence as the CLI: explicit seed beats a Spec-pinned one).
func options(spec *scenario.Spec, req *scenario.HTTPRequest) scenario.RunOptions {
	workers := req.Workers
	if maxw := runtime.GOMAXPROCS(0); workers > maxw {
		workers = maxw
	}
	opt := scenario.RunOptions{Seed: 42, Scale: scenario.Scale{Workers: workers}}
	if req.Seed != nil {
		opt.Seed = *req.Seed
		opt.SeedExplicit = true
	}
	// One precedence rule, owned by the scenario package (the status
	// endpoint shows the effective seed before the run executes).
	opt.Seed = spec.EffectiveSeed(opt)
	if req.Quick {
		opt.Scale.JobFactor = 10
	}
	return opt
}

// Submit validates the request, registers a run and queues it for the
// executor pool as the anonymous tenant. It returns immediately;
// progress flows through the run's event stream.
func (s *RunService) Submit(req scenario.HTTPRequest) (*Run, *httpErr) {
	return s.SubmitAs(req, nil)
}

// SubmitAs is Submit on behalf of a tenant (nil = anonymous). The
// order of gates matters: memoization first (a cache hit costs the
// tenant a rate token but no executor capacity), then the global
// backlog bound, then the tenant's own quota — so one tenant saturating
// its quota never consumes global queue slots.
func (s *RunService) SubmitAs(req scenario.HTTPRequest, tn *store.Tenant) (*Run, *httpErr) {
	spec, herr := s.resolveSpec(&req)
	if herr != nil {
		return nil, herr
	}
	opt := options(spec, &req)
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, &httpErr{code: http.StatusInternalServerError, msg: err.Error()}
	}
	var memoKey string
	if !s.cfg.NoMemo {
		memoKey = store.MemoKey(specJSON, opt.Seed, opt.Scale.JobFactor, scenario.CatalogHash())
	}
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil, &httpErr{code: http.StatusServiceUnavailable, msg: ErrStopped.Error()}
	}
	if memoKey != "" {
		if src, ok := s.memo[memoKey]; ok && src.state == RunDone {
			if tn != nil {
				if ok, retry := tn.AdmitCached(now); !ok {
					return nil, &httpErr{
						code:       http.StatusTooManyRequests,
						msg:        fmt.Sprintf("tenant %q submit rate exceeded; retry later", tn.Name),
						retryAfter: retry,
					}
				}
			}
			return s.cachedRunLocked(src, spec, opt, specJSON, memoKey, tenantName(tn), now), nil
		}
	}
	if s.active >= s.cfg.MaxActive+s.cfg.MaxPending {
		return nil, &httpErr{code: http.StatusTooManyRequests, msg: ErrBusy.Error()}
	}
	if tn != nil {
		if ok, retry := tn.Admit(now); !ok {
			return nil, &httpErr{
				code:       http.StatusTooManyRequests,
				msg:        fmt.Sprintf("tenant %q quota exceeded; retry later", tn.Name),
				retryAfter: retry,
			}
		}
	}
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	r := &Run{
		id: fmt.Sprintf("r%06d", s.seq), seqNo: s.seq, spec: spec, opt: opt,
		specJSON: specJSON, memoKey: memoKey,
		tenant: tenantName(tn), tenantRef: tn,
		ctx: ctx, cancel: cancel,
		state: RunQueued, created: now,
		wake: make(chan struct{}),
	}
	if s.cfg.Store != nil {
		// Persist before acknowledging: a submission the WAL never saw
		// must not exist. On failure, undo the admission entirely.
		if perr := s.cfg.Store.Append(store.Record{Op: "submit", Run: r.record()}); perr != nil {
			s.seq--
			if tn != nil {
				tn.Release()
			}
			cancel()
			return nil, &httpErr{code: http.StatusInternalServerError, msg: "persist submission: " + perr.Error()}
		}
	}
	s.runs[r.id] = r
	s.order = append(s.order, r)
	s.active++
	s.evictLocked()
	// Send under the lock: it can never block (queue capacity equals
	// the active bound just checked), and holding s.mu means Close
	// cannot close the channel between the stopped check and the send.
	s.queue <- r
	return r, nil
}

// cachedRunLocked registers a memo-cache hit: a brand-new run that is
// born done, sharing the source run's result artifact (immutable once
// terminal). It never touches the executor pool. s.mu must be held.
func (s *RunService) cachedRunLocked(src *Run, spec *scenario.Spec, opt scenario.RunOptions, specJSON []byte, memoKey, tenant string, now time.Time) *Run {
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Run{
		id: fmt.Sprintf("r%06d", s.seq), seqNo: s.seq, spec: spec, opt: opt,
		specJSON: specJSON, memoKey: memoKey,
		tenant: tenant, cached: true,
		ctx: ctx, cancel: cancel,
		state: RunDone, created: now, finished: now,
		cellsDone: src.cellsDone, cellsTotal: src.cellsTotal,
		result: src.result,
		wake:   make(chan struct{}),
	}
	r.publish(Event{Type: "state", State: RunDone})
	s.cacheHits++
	if s.cfg.Store != nil {
		rec := r.record()
		payload, perr := buildTerminal(r)
		if perr == nil {
			rec.Terminal = payload
			perr = s.cfg.Store.Append(store.Record{Op: "submit", Run: rec})
		}
		if perr != nil {
			log.Printf("api: persist cached run %s: %v", r.id, perr)
		}
	}
	s.runs[r.id] = r
	s.order = append(s.order, r)
	s.evictLocked()
	return r
}

// evictLocked drops the oldest terminal runs past MaxHistory.
func (s *RunService) evictLocked() {
	for len(s.order) > s.cfg.MaxHistory {
		victim := -1
		for i, r := range s.order {
			if r.state.Terminal() {
				victim = i
				break
			}
		}
		if victim < 0 {
			return // everything live; the active bound caps this
		}
		r := s.order[victim]
		delete(s.runs, r.id)
		s.order = append(s.order[:victim], s.order[victim+1:]...)
		s.evicted++
		if r.memoKey != "" && s.memo[r.memoKey] == r {
			// The memo entry dies with its backing run; the next
			// identical submission re-executes and re-registers.
			delete(s.memo, r.memoKey)
		}
		if s.cfg.Store != nil {
			if err := s.cfg.Store.Append(store.Record{Op: "evict", ID: r.id}); err != nil {
				log.Printf("api: persist eviction %s: %v", r.id, err)
			}
		}
		if s.cfg.Fleet != nil {
			s.cfg.Fleet.Forget(r.id)
		}
	}
}

// terminateLocked moves a run to a terminal state and publishes the
// closing event. It does NOT release the run's active slot — the
// worker that drains the run from the queue does, so the slot
// accounting always matches the queue-channel occupancy and a
// cancel-resubmit burst can never block on a full channel. s.mu must
// be held.
func (s *RunService) terminateLocked(r *Run, state RunState, errMsg string) {
	r.state = state
	r.err = errMsg
	r.finished = time.Now()
	r.publish(Event{Type: "state", State: state, Error: errMsg})
	if r.tenantRef != nil {
		r.tenantRef.Release()
		r.tenantRef = nil
	}
	if state == RunDone && r.memoKey != "" && !s.cfg.NoMemo {
		if _, ok := s.memo[r.memoKey]; !ok {
			s.memo[r.memoKey] = r
		}
	}
	if s.cfg.Store != nil {
		payload, err := buildTerminal(r)
		if err == nil {
			err = s.cfg.Store.Append(store.Record{
				Op: "terminal", ID: r.id, State: string(state),
				Error: errMsg, Finished: r.finished, Terminal: payload,
			})
		}
		if err != nil {
			log.Printf("api: persist terminal %s: %v", r.id, err)
		}
	}
}

// worker executes queued runs one at a time.
func (s *RunService) worker() {
	defer s.wg.Done()
	for r := range s.queue {
		s.mu.Lock()
		if r.state.Terminal() { // cancelled (or shut down) before start
			s.active--
			s.mu.Unlock()
			continue
		}
		r.state = RunRunning
		r.started = time.Now()
		r.publish(Event{Type: "state", State: RunRunning})
		if s.cfg.Store != nil {
			if err := s.cfg.Store.Append(store.Record{
				Op: "state", ID: r.id, State: string(RunRunning), Started: r.started,
			}); err != nil {
				log.Printf("api: persist state %s: %v", r.id, err)
			}
		}
		opt := r.opt
		s.mu.Unlock()

		opt.Context = r.ctx
		opt.OnCellsStart = func(n int) {
			s.mu.Lock()
			r.cellsTotal += n
			s.mu.Unlock()
		}
		opt.OnCellDone = func(index int, d time.Duration) {
			s.mu.Lock()
			r.cellsDone++
			r.timings = append(r.timings, CellTiming{Index: index, DurationSeconds: d.Seconds()})
			r.publish(Event{Type: "cell", Cell: &CellEvent{
				Index: index, Done: r.cellsDone, Total: r.cellsTotal,
				DurationSeconds: d.Seconds(),
			}})
			s.mu.Unlock()
		}

		if f := s.cfg.Fleet; f != nil && !r.spec.Traced() {
			// Distributed mode: remoteable cells go through the
			// coordinator's work queue (opt.Seed is already the
			// resolved effective seed — see options()).
			cr, ferr := f.Dispatcher(r.id, r.spec, opt.Seed, opt.Scale.JobFactor)
			if ferr != nil {
				s.mu.Lock()
				s.terminateLocked(r, RunFailed, ferr.Error())
				s.active--
				s.mu.Unlock()
				r.cancel()
				continue
			}
			opt.Remote = cr
		}

		res, err := runSpec(r.spec, opt)

		if err == nil && res != nil {
			// Outside the lock: histogram folds walk every event.
			observeTraces(res.Traces)
		}

		s.mu.Lock()
		switch {
		case err == nil:
			r.result = res
			s.terminateLocked(r, RunDone, "")
		case r.ctx.Err() != nil || errors.Is(err, context.Canceled):
			s.terminateLocked(r, RunCancelled, err.Error())
		default:
			s.terminateLocked(r, RunFailed, err.Error())
		}
		s.active--
		s.mu.Unlock()
		r.cancel() // release the context's resources
	}
}

// runSpec executes the scenario, converting a runner panic into a
// failed run: the executor runs on a plain goroutine, so without this
// a pathological inline spec (validation is structural, not semantic)
// would crash the whole daemon — including the live cluster
// simulation it is pacing. The old synchronous handler got this
// containment for free from net/http's per-request recover.
func runSpec(spec *scenario.Spec, opt scenario.RunOptions) (res *scenario.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("api: scenario %q panicked: %v", spec.ID, p)
		}
	}()
	return scenario.Run(spec, opt)
}

// Get returns a run by id.
func (s *RunService) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// Status snapshots one run. The fleet contributor list is filled
// outside the store lock (the coordinator has its own).
func (s *RunService) Status(r *Run, includeCells bool) RunStatus {
	s.mu.Lock()
	st := r.status(includeCells)
	s.mu.Unlock()
	if s.cfg.Fleet != nil {
		st.Workers = s.cfg.Fleet.RunWorkers(st.ID)
	}
	return st
}

// List snapshots every stored run in submission order.
func (s *RunService) List() []RunStatus {
	s.mu.Lock()
	out := make([]RunStatus, len(s.order))
	for i, r := range s.order {
		out[i] = r.status(false)
	}
	s.mu.Unlock()
	if s.cfg.Fleet != nil {
		for i := range out {
			out[i].Workers = s.cfg.Fleet.RunWorkers(out[i].ID)
		}
	}
	return out
}

// Cancel requests cooperative cancellation. Queued runs finalize
// immediately; running ones stop after their in-flight cells. The
// returned bool is false when the run had already finished.
func (s *RunService) Cancel(r *Run) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case r.state == RunQueued:
		r.cancel()
		s.terminateLocked(r, RunCancelled, "cancelled before start")
		return true
	case r.state == RunRunning:
		r.cancel()
		return true
	default:
		return false
	}
}

// Wait blocks until the run reaches a terminal state or ctx fires,
// returning the final status.
func (s *RunService) Wait(ctx context.Context, r *Run) (RunStatus, error) {
	for {
		s.mu.Lock()
		st := r.status(false)
		wake := r.wake
		s.mu.Unlock()
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Result returns the stored result artifact once the run is done.
func (s *RunService) Result(r *Run) (*scenario.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return r.result, r.result != nil
}
