// Package api is the shared HTTP surface of the gridd daemon family:
// the versioned /v1 run-lifecycle API (asynchronous scenario runs with
// typed status, per-cell SSE progress streams and cooperative
// cancellation), the bounded in-memory run store behind it, the legacy
// POST /scenarios compatibility shim, and the middleware stack (body
// limits, JSON error envelope, request logging) that the single-cluster
// service (internal/service) and the grid broker (internal/gridservice)
// both mount instead of each carrying its own copy.
package api

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Error is the JSON error envelope shared by every endpoint.
type Error struct {
	Error string `json:"error"`
}

// WriteJSON writes v as the response body with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the shared JSON error envelope.
func WriteError(w http.ResponseWriter, code int, msg string) {
	WriteJSON(w, code, Error{Error: msg})
}

// WriteBusy writes a 429 with a Retry-After hint (the back-pressure
// answer of the run endpoints, replacing the legacy bare 503).
func WriteBusy(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	WriteError(w, http.StatusTooManyRequests, msg)
}

// DefaultMaxBody caps request bodies across the API: job specs and
// scenario specs are a few KB of JSON, so 1 MiB is generous.
const DefaultMaxBody = 1 << 20

// RegisterBoth registers one handler at its legacy path and under the
// /v1 prefix — the compatibility guarantee is structural: both routes
// run the same code. pattern is a method-qualified mux pattern like
// "GET /stats".
func RegisterBoth(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, h)
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic("api: RegisterBoth pattern must be \"METHOD /path\"")
	}
	mux.HandleFunc(method+" /v1"+path, h)
}

// statusWriter records the response code and body size for the request
// log while passing Flush through (the SSE stream needs the flusher).
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Wrap applies the shared middleware stack around a service mux: the
// request-body cap and, when logger is non-nil, a request log line per
// call (method, path, status, duration).
func Wrap(h http.Handler, maxBody int64, logger *log.Logger) http.Handler {
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		}
		if logger == nil {
			h.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		logger.Printf("%s %s %d %s %dB run=%s",
			r.Method, r.URL.Path, code, time.Since(t0).Round(time.Microsecond),
			sw.bytes, runIDFromPath(r.URL.Path))
	})
}

// runIDFromPath extracts the run id from /v1/runs/{id}[/...] paths for
// request-log correlation ("-" when the path is not run-scoped).
func runIDFromPath(p string) string {
	rest, ok := strings.CutPrefix(p, "/v1/runs/")
	if !ok {
		return "-"
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "-"
	}
	return rest
}
