package api

import (
	"net/http"

	"repro/internal/scenario"
	"repro/internal/version"
)

// VersionInfo is the GET /v1/version payload: enough build identity
// for a fleet worker (or any client) to decide compatibility before
// doing work — the catalog hash pins the scenario semantics, version
// and toolchain pin the numerics.
type VersionInfo struct {
	Version     string `json:"version"`
	GoVersion   string `json:"go_version"`
	CatalogHash string `json:"catalog_hash"`
	Scenarios   int    `json:"scenarios"`
	Kinds       int    `json:"kinds"`
}

// CurrentVersion returns this binary's build info.
func CurrentVersion() VersionInfo {
	return VersionInfo{
		Version:     version.Version,
		GoVersion:   version.Go(),
		CatalogHash: scenario.CatalogHash(),
		Scenarios:   len(scenario.Catalog()),
		Kinds:       len(scenario.Kinds()),
	}
}

func handleVersion(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, CurrentVersion())
}
