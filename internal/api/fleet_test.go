package api

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// fakeFleet implements the Fleet seam without a coordinator: it hands
// back no runner (cells stay local) and records the calls the service
// makes, so the integration contract is testable in isolation.
type fakeFleet struct {
	mu        sync.Mutex
	workers   []string
	forgotten []string
	runs      []string
}

func (f *fakeFleet) Dispatcher(runID string, spec *scenario.Spec, seed uint64, jobFactor int) (scenario.CellRunner, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.runs = append(f.runs, runID)
	return nil, nil
}

func (f *fakeFleet) RunWorkers(runID string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.workers...)
}

func (f *fakeFleet) Forget(runID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.forgotten = append(f.forgotten, runID)
}

// TestVersionEndpoint: GET /v1/version reports the build identity a
// fleet worker handshakes against — in particular the catalog hash,
// which must match the scenario package's own.
func TestVersionEndpoint(t *testing.T) {
	_, srv := newTestService(t, Config{})
	resp, err := http.Get(srv.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Version == "" || v.GoVersion == "" {
		t.Fatalf("incomplete version info: %+v", v)
	}
	if v.CatalogHash != scenario.CatalogHash() {
		t.Fatalf("catalog hash %q, want %q", v.CatalogHash, scenario.CatalogHash())
	}
	if v.Scenarios != len(scenario.Catalog()) || v.Kinds != len(scenario.Kinds()) {
		t.Fatalf("catalog counts %+v", v)
	}
}

// TestRetryAfterScalesWithBacklog: the 429 hint grows with the number
// of runs waiting beyond the executor pool instead of the old flat 1s,
// so rejected clients back off proportionally to real saturation.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	s, srv := newTestService(t, Config{MaxActive: 1, MaxPending: 3})

	if got := s.RetryAfter(); got != time.Second {
		t.Fatalf("idle RetryAfter = %v, want 1s", got)
	}
	blocker, _, _ := postRun(t, srv.URL, `{"spec":{"id":"b","kind":"api-gate","params":{"cells":1}}}`)
	waitState(t, srv.URL, blocker.ID, RunRunning)
	var queued []RunStatus
	for i := 0; i < 3; i++ {
		st, code, _ := postRun(t, srv.URL, `{"spec":{"id":"q","kind":"api-gate","params":{"cells":1}}}`)
		if code != http.StatusAccepted {
			t.Fatalf("queued submit %d: %d", i, code)
		}
		queued = append(queued, st)
	}
	// active = 4, pool = 1: three runs are waiting -> 4s hint.
	if got := s.RetryAfter(); got != 4*time.Second {
		t.Fatalf("saturated RetryAfter = %v, want 4s", got)
	}
	_, code, hdr := postRun(t, srv.URL, `{"spec":{"id":"x","kind":"api-gate","params":{"cells":1}}}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit: %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "4" {
		t.Fatalf("Retry-After = %q, want \"4\" (1s + 3 waiting)", ra)
	}
	for range 4 {
		gate <- struct{}{}
	}
	waitState(t, srv.URL, blocker.ID, RunDone)
	for _, st := range queued {
		waitState(t, srv.URL, st.ID, RunDone)
	}
	if got := s.RetryAfter(); got != time.Second {
		t.Fatalf("drained RetryAfter = %v, want 1s", got)
	}
}

// TestRunStatusWorkersField: with a Fleet configured, run statuses and
// listings carry the contributing worker ids, and store eviction tells
// the fleet to forget the run.
func TestRunStatusWorkersField(t *testing.T) {
	ff := &fakeFleet{workers: []string{"host-a", "host-b"}}
	_, srv := newTestService(t, Config{MaxHistory: 1, Fleet: ff})

	st, code, _ := postRun(t, srv.URL, `{"spec":{"id":"w","kind":"api-sleep","params":{"cells":2,"us":1}}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitState(t, srv.URL, st.ID, RunDone)
	if !reflect.DeepEqual(final.Workers, []string{"host-a", "host-b"}) {
		t.Fatalf("workers = %v", final.Workers)
	}
	ff.mu.Lock()
	dispatched := append([]string(nil), ff.runs...)
	ff.mu.Unlock()
	if !reflect.DeepEqual(dispatched, []string{st.ID}) {
		t.Fatalf("dispatcher saw runs %v, want [%s]", dispatched, st.ID)
	}

	// A second run evicts the first (MaxHistory 1) and must Forget it.
	st2, _, _ := postRun(t, srv.URL, `{"spec":{"id":"w2","kind":"api-sleep","params":{"cells":1,"us":1}}}`)
	waitState(t, srv.URL, st2.ID, RunDone)
	_, _, _ = postRun(t, srv.URL, `{"spec":{"id":"w3","kind":"api-sleep","params":{"cells":1,"us":1}}}`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		ff.mu.Lock()
		n := len(ff.forgotten)
		first := ""
		if n > 0 {
			first = ff.forgotten[0]
		}
		ff.mu.Unlock()
		if n > 0 {
			if first != st.ID {
				t.Fatalf("first forgotten run %q, want %q", first, st.ID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("eviction never told the fleet to forget the run")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSSESubscriberSurvivesEviction: a live SSE subscriber holds the
// run across store eviction — it still receives the complete history
// and the terminal event, even though the run is already gone from the
// lookup path (404). Satellite-4a regression: run-store eviction racing
// a live subscriber must not truncate or corrupt the stream.
func TestSSESubscriberSurvivesEviction(t *testing.T) {
	_, srv := newTestService(t, Config{MaxActive: 2, MaxHistory: 2})

	st, code, _ := postRun(t, srv.URL, `{"spec":{"id":"g","kind":"api-gate","params":{"cells":3}}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, srv.URL, st.ID, RunRunning)
	type streamOut struct {
		events []Event
		err    error
	}
	outc := make(chan streamOut, 1)
	go func() {
		events, err := streamEvents(context.Background(), srv.URL, st.ID)
		outc <- streamOut{events, err}
	}()
	// Let the subscriber attach mid-run, then finish the run while
	// hammering the store with runs that evict it.
	time.Sleep(10 * time.Millisecond)
	for range 3 {
		gate <- struct{}{}
	}
	waitState(t, srv.URL, st.ID, RunDone)
	for i := 0; i < 4; i++ {
		st2, code, _ := postRun(t, srv.URL, `{"spec":{"id":"f","kind":"api-sleep","params":{"cells":1,"us":1}}}`)
		if code != http.StatusAccepted {
			t.Fatalf("filler submit %d: %d", i, code)
		}
		waitState(t, srv.URL, st2.ID, RunDone)
	}
	// The run is evicted...
	resp, err := http.Get(srv.URL + "/v1/runs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted run status: %d, want 404", resp.StatusCode)
	}
	// ...yet the subscriber saw everything, terminally closed.
	out := <-outc
	if out.err != nil {
		t.Fatalf("stream: %v", out.err)
	}
	cells := 0
	for _, e := range out.events {
		if e.Type == "cell" {
			cells++
		}
	}
	last := out.events[len(out.events)-1]
	if cells != 3 || last.Type != "state" || last.State != RunDone {
		t.Fatalf("subscriber saw %d cell events, last %+v", cells, last)
	}
}
