package api

import (
	"context"
	"time"

	"repro/internal/scenario"
	"repro/internal/store"
)

// RunState is the lifecycle state of one scenario run.
type RunState string

const (
	RunQueued    RunState = "queued"
	RunRunning   RunState = "running"
	RunDone      RunState = "done"
	RunFailed    RunState = "failed"
	RunCancelled RunState = "cancelled"
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == RunDone || s == RunFailed || s == RunCancelled
}

// CellEvent is the payload of one per-cell completion event.
type CellEvent struct {
	// Index is the finished cell's index within its fan-out.
	Index int `json:"index"`
	// Done and Total are the run-wide progress counters at the time of
	// the event (Total counts cells discovered so far — nested
	// fan-outs grow it while the run executes).
	Done  int `json:"done"`
	Total int `json:"total"`
	// DurationSeconds is the cell's wall-clock compute time.
	DurationSeconds float64 `json:"duration_seconds"`
}

// Event is one entry of a run's progress stream (the SSE payload).
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state" or "cell"
	// State is set on "state" events (running + the terminal state).
	State RunState `json:"state,omitempty"`
	// Error carries the failure/cancellation message on terminal
	// "state" events.
	Error string `json:"error,omitempty"`
	// Cell is set on "cell" events.
	Cell *CellEvent `json:"cell,omitempty"`
}

// CellTiming is one per-cell wall-clock timing in a RunStatus, listed
// in completion order.
type CellTiming struct {
	Index           int     `json:"index"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// RunStatus is the typed status of one run (GET /v1/runs/{id}).
type RunStatus struct {
	ID     string   `json:"id"`
	SpecID string   `json:"spec_id"`
	Kind   string   `json:"kind"`
	Seed   uint64   `json:"seed"`
	State  RunState `json:"state"`
	Error  string   `json:"error,omitempty"`
	// CellsDone / CellsTotal report worker-pool progress. Total is the
	// number of cells discovered so far: kinds with nested fan-outs
	// grow it while running, so it is final only once the run is.
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`
	// Rows counts the typed result rows (set once done).
	Rows int `json:"rows,omitempty"`
	// TraceEvents counts recorded trace events across all cells (set
	// once done, only for traced runs).
	TraceEvents     int        `json:"trace_events,omitempty"`
	Created         time.Time  `json:"created"`
	Started         *time.Time `json:"started,omitempty"`
	Finished        *time.Time `json:"finished,omitempty"`
	DurationSeconds float64    `json:"duration_seconds,omitempty"`
	// Cells lists per-cell wall timings in completion order (only on
	// the single-run endpoint, not in listings).
	Cells []CellTiming `json:"cells,omitempty"`
	// Workers lists the fleet workers that contributed cells to this
	// run (sorted; only in distributed mode).
	Workers []string `json:"workers,omitempty"`
	// Tenant names the submitting tenant (multi-tenant deployments).
	Tenant string `json:"tenant,omitempty"`
	// Cached marks a run whose result was served from the memo cache at
	// submission time, without executing any cells.
	Cached bool `json:"cached,omitempty"`
}

// Run is one scenario run tracked by the store. Every mutable field
// below ctx/cancel is guarded by the owning RunService's mutex —
// run state and store state share one lock, so they never need to be
// held separately.
type Run struct {
	id string
	// seqNo is the monotonic submission sequence the id is derived
	// from; it persists in the durable store so recovered listings
	// never collide with new runs.
	seqNo int
	spec  *scenario.Spec
	opt   scenario.RunOptions
	// specJSON is the canonical spec encoding: the memoization identity
	// and the durable submit record share these exact bytes.
	specJSON []byte

	ctx    context.Context
	cancel context.CancelFunc

	state      RunState
	err        string
	tenant     string
	cached     bool
	memoKey    string
	tenantRef  *store.Tenant // admission slot to release at terminal
	created    time.Time
	started    time.Time
	finished   time.Time
	cellsDone  int
	cellsTotal int
	timings    []CellTiming
	result     *scenario.Result

	events []Event
	// wake is closed and replaced on every event append; stream
	// readers wait on it (a broadcast without per-subscriber state, so
	// an abandoned SSE connection costs nothing after its context
	// fires).
	wake chan struct{}
}

// publish appends one event and wakes streamers. The owning service's
// mutex must be held.
func (r *Run) publish(e Event) {
	e.Seq = len(r.events)
	r.events = append(r.events, e)
	close(r.wake)
	r.wake = make(chan struct{})
}

// status snapshots the run. The owning service's mutex must be held.
func (r *Run) status(includeCells bool) RunStatus {
	st := RunStatus{
		ID: r.id, SpecID: r.spec.ID, Kind: r.spec.Kind, Seed: r.opt.Seed,
		State: r.state, Error: r.err,
		CellsDone: r.cellsDone, CellsTotal: r.cellsTotal,
		Created: r.created,
		Tenant:  r.tenant, Cached: r.cached,
	}
	if r.result != nil {
		st.Rows = len(r.result.Cells)
		for i := range r.result.Traces {
			st.TraceEvents += len(r.result.Traces[i].Events)
		}
	}
	if !r.started.IsZero() {
		t := r.started
		st.Started = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		st.Finished = &t
		if !r.started.IsZero() {
			st.DurationSeconds = r.finished.Sub(r.started).Seconds()
		}
	}
	if includeCells && len(r.timings) > 0 {
		st.Cells = append([]CellTiming(nil), r.timings...)
	}
	return st
}
