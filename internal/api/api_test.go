package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	_ "repro/internal/experiments" // register the scenario kinds + catalog
	"repro/internal/scenario"
)

// Test-only kinds. "api-sleep" runs n cells of a fixed wall duration
// each, honouring the cancellation/progress contract the experiments
// worker pool implements; "api-gate" blocks each cell until the test
// releases it, for deterministic queue/cancel interleavings.
var (
	registerOnce sync.Once
	gate         chan struct{}
)

func registerTestKinds() {
	registerOnce.Do(func() {
		gate = make(chan struct{})
		scenario.RegisterKind("api-sleep", func(spec *scenario.Spec, opt scenario.RunOptions) (*scenario.Result, error) {
			n := spec.Int("cells", 4)
			delay := time.Duration(spec.Int("us", 1000)) * time.Microsecond
			if opt.OnCellsStart != nil {
				opt.OnCellsStart(n)
			}
			cells := make([]scenario.Cell, 0, n)
			for i := range n {
				if opt.Context != nil {
					select {
					case <-time.After(delay):
					case <-opt.Context.Done():
						return nil, opt.Context.Err()
					}
				} else {
					time.Sleep(delay)
				}
				if opt.OnCellDone != nil {
					opt.OnCellDone(i, delay)
				}
				cells = append(cells, scenario.Cell{Index: i, Values: []any{i, i * i}})
			}
			return scenario.NewCellResult("api-sleep", []string{"i", "sq"}, 1, cells), nil
		})
		scenario.RegisterKind("api-panic", func(spec *scenario.Spec, opt scenario.RunOptions) (*scenario.Result, error) {
			panic("kaboom")
		})
		scenario.RegisterKind("api-gate", func(spec *scenario.Spec, opt scenario.RunOptions) (*scenario.Result, error) {
			n := spec.Int("cells", 1)
			if opt.OnCellsStart != nil {
				opt.OnCellsStart(n)
			}
			cells := make([]scenario.Cell, 0, n)
			for i := range n {
				select {
				case <-gate:
				case <-opt.Context.Done():
					return nil, opt.Context.Err()
				}
				if opt.OnCellDone != nil {
					opt.OnCellDone(i, time.Microsecond)
				}
				cells = append(cells, scenario.Cell{Index: i, Values: []any{i}})
			}
			return scenario.NewCellResult("api-gate", []string{"i"}, 1, cells), nil
		})
	})
}

func newTestService(t *testing.T, cfg Config) (*RunService, *httptest.Server) {
	t.Helper()
	registerTestKinds()
	s := NewRunService(cfg)
	mux := http.NewServeMux()
	s.Mount(mux)
	srv := httptest.NewServer(Wrap(mux, 0, nil))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func postRun(t *testing.T, url, body string) (RunStatus, int, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode, resp.Header
}

func getStatus(t *testing.T, url, id string) RunStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func cancelRun(t *testing.T, url, id string) (RunStatus, int) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, url+"/v1/runs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode
}

func waitState(t *testing.T, url, id string, want RunState) RunStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, url, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("run %s state %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// streamEvents consumes the SSE endpoint until it closes, returning
// the decoded events.
func streamEvents(ctx context.Context, url, id string) ([]Event, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var e Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				return events, err
			}
			events = append(events, e)
		}
	}
	return events, sc.Err()
}

// TestV1LifecycleMatchesLegacyTable: a built-in catalog scenario run
// through POST /v1/runs + the event stream reproduces the exact
// pre-redesign text table via the text renderer, and the typed status
// is consistent with the cells streamed.
func TestV1LifecycleMatchesLegacyTable(t *testing.T) {
	_, srv := newTestService(t, Config{})

	st, code, _ := postRun(t, srv.URL, `{"id":"mrt","quick":true,"seed":42}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if st.ID == "" || st.SpecID != "mrt" || st.Kind != "mrt" || st.Seed != 42 {
		t.Fatalf("submit status %+v", st)
	}

	events, err := streamEvents(context.Background(), srv.URL, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	cellEvents := 0
	for _, e := range events {
		if e.Type == "cell" {
			cellEvents++
		}
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != RunDone {
		t.Fatalf("stream did not end with done: %+v", last)
	}

	final := getStatus(t, srv.URL, st.ID)
	if final.State != RunDone || final.CellsDone != final.CellsTotal || final.CellsDone != cellEvents {
		t.Fatalf("final status %+v (cell events %d)", final, cellEvents)
	}
	if len(final.Cells) != cellEvents {
		t.Fatalf("per-cell timings: %d, want %d", len(final.Cells), cellEvents)
	}

	// Text result must be byte-identical to the engine's own rendering.
	resp, err := http.Get(srv.URL + "/v1/runs/" + st.ID + "/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(resp)
	spec, _ := scenario.Lookup("mrt")
	want, err := scenario.Run(spec, scenario.RunOptions{
		Seed: 42, SeedExplicit: true, Scale: scenario.Scale{JobFactor: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := want.Table.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got != buf.String() {
		t.Fatalf("text result differs from direct run:\n got: %q\nwant: %q", got, buf.String())
	}

	// JSON result carries the typed cells with axes/metrics split.
	var rj scenario.ResultJSON
	resp2, err := http.Get(srv.URL + "/v1/runs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&rj); err != nil {
		t.Fatal(err)
	}
	if rj.ID != "mrt" || len(rj.Cells) != len(want.Table.Rows) || rj.Axes != 2 {
		t.Fatalf("json result %+v", rj)
	}
	if rj.Cells[0].Axes["m"] == nil || rj.Cells[0].Metrics["MRT"] == nil {
		t.Fatalf("cell 0 axes/metrics: %+v", rj.Cells[0])
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.String(), err
}

// TestLegacyShimMatchesV1: the POST /scenarios shim serves exactly the
// table the /v1 pipeline produced for the same request.
func TestLegacyShimMatchesV1(t *testing.T) {
	_, srv := newTestService(t, Config{})

	body := `{"id":"treedlt","quick":true}`
	resp, err := http.Post(srv.URL+"/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shim status %d", resp.StatusCode)
	}
	var legacy scenario.HTTPResponse
	if err := json.NewDecoder(resp.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	st, code, _ := postRun(t, srv.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("v1 submit %d", code)
	}
	final := waitState(t, srv.URL, st.ID, RunDone)
	textResp, err := http.Get(srv.URL + "/v1/runs/" + final.ID + "/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	v1Text, _ := readAll(textResp)

	legacyTable := scenario.RenderTable(legacy.Title, legacy.Headers, nil)
	legacyTable.Rows = legacy.Rows
	var buf bytes.Buffer
	if err := legacyTable.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != v1Text {
		t.Fatalf("legacy shim table differs from /v1:\nlegacy: %q\n    v1: %q", buf.String(), v1Text)
	}
}

// TestCancelBeforeStart: a queued run cancels instantly without ever
// executing, and the slot accounting still drains cleanly.
func TestCancelBeforeStart(t *testing.T) {
	_, srv := newTestService(t, Config{MaxActive: 1})

	blocker, code, _ := postRun(t, srv.URL, `{"spec":{"id":"b","kind":"api-gate","params":{"cells":1}}}`)
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit %d", code)
	}
	waitState(t, srv.URL, blocker.ID, RunRunning)

	queued, code, _ := postRun(t, srv.URL, `{"spec":{"id":"q","kind":"api-gate","params":{"cells":1}}}`)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit %d", code)
	}
	if st := getStatus(t, srv.URL, queued.ID); st.State != RunQueued {
		t.Fatalf("state %q, want queued", st.State)
	}
	st, code := cancelRun(t, srv.URL, queued.ID)
	if code != http.StatusOK || st.State != RunCancelled {
		t.Fatalf("cancel: %d %+v", code, st)
	}
	if st.Started != nil || st.CellsDone != 0 {
		t.Fatalf("cancelled-before-start run executed: %+v", st)
	}
	// Cancelling a finished run conflicts.
	if _, code := cancelRun(t, srv.URL, queued.ID); code != http.StatusConflict {
		t.Fatalf("double cancel: %d", code)
	}

	gate <- struct{}{} // release the blocker
	waitState(t, srv.URL, blocker.ID, RunDone)
}

// TestCancelMidRun: cancelling a running paper-style sweep stops it
// within one cell's duration, keeps the cells that completed, and
// leaks no goroutines.
func TestCancelMidRun(t *testing.T) {
	_, srv := newTestService(t, Config{})

	// Warm up the HTTP/keepalive plumbing, then baseline goroutines.
	warm, _, _ := postRun(t, srv.URL, `{"spec":{"id":"w","kind":"api-sleep","params":{"cells":2,"us":100}}}`)
	waitState(t, srv.URL, warm.ID, RunDone)
	base := runtime.NumGoroutine()

	st, code, _ := postRun(t, srv.URL,
		`{"spec":{"id":"slow","kind":"api-sleep","params":{"cells":1000,"us":5000}}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit %d", code)
	}
	// Wait until at least one cell completed, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, srv.URL, st.ID).CellsDone == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no cell progress")
		}
		time.Sleep(time.Millisecond)
	}
	t0 := time.Now()
	if _, code := cancelRun(t, srv.URL, st.ID); code != http.StatusOK {
		t.Fatalf("cancel %d", code)
	}
	var final RunStatus
	for {
		final = getStatus(t, srv.URL, st.ID)
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run did not stop: %+v", final)
		}
		time.Sleep(time.Millisecond)
	}
	// One cell is 5ms; well under a second proves the cancel was
	// answered within ~one cell, not after the remaining ~990 cells.
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	if final.State != RunCancelled {
		t.Fatalf("state %q, want cancelled", final.State)
	}
	if final.CellsDone == 0 || final.CellsDone >= 1000 {
		t.Fatalf("partial progress expected, got %d cells", final.CellsDone)
	}

	// Goroutines must settle back to the baseline (no leaked workers,
	// streams or contexts).
	for end := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= base+2 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSSEClientDisconnect: a subscriber dropping mid-run neither
// blocks the run nor leaks the handler goroutine.
func TestSSEClientDisconnect(t *testing.T) {
	_, srv := newTestService(t, Config{})

	st, _, _ := postRun(t, srv.URL, `{"spec":{"id":"s","kind":"api-sleep","params":{"cells":200,"us":2000}}}`)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = streamEvents(ctx, srv.URL, st.ID) // dies with ctx
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("disconnected stream never returned")
	}
	// The run itself keeps going to completion.
	final := waitState(t, srv.URL, st.ID, RunDone)
	if final.CellsDone != 200 {
		t.Fatalf("run affected by disconnect: %+v", final)
	}
	// A late subscriber still replays the full history.
	events, err := streamEvents(context.Background(), srv.URL, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 202 { // running + 200 cells + done
		t.Fatalf("late replay: %d events, want 202", len(events))
	}
}

// TestRunnerPanicContained: a panicking runner fails its run instead
// of crashing the daemon, and the executor keeps serving.
func TestRunnerPanicContained(t *testing.T) {
	_, srv := newTestService(t, Config{})

	st, code, _ := postRun(t, srv.URL, `{"spec":{"id":"p","kind":"api-panic"}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	var final RunStatus
	for {
		final = getStatus(t, srv.URL, st.ID)
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("panicking run never finalized: %+v", final)
		}
		time.Sleep(time.Millisecond)
	}
	if final.State != RunFailed || !strings.Contains(final.Error, "panicked") {
		t.Fatalf("final %+v", final)
	}
	// The worker survived: a normal run still executes afterwards.
	next, _, _ := postRun(t, srv.URL, `{"spec":{"id":"n","kind":"api-sleep","params":{"cells":1,"us":1}}}`)
	waitState(t, srv.URL, next.ID, RunDone)
}

// TestStoreEvictionOrder: the bounded store evicts the oldest terminal
// runs first and never the live ones.
func TestStoreEvictionOrder(t *testing.T) {
	s, srv := newTestService(t, Config{MaxHistory: 3})

	var ids []string
	for i := 0; i < 6; i++ {
		st, code, _ := postRun(t, srv.URL, `{"spec":{"id":"e","kind":"api-sleep","params":{"cells":1,"us":1}}}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		waitState(t, srv.URL, st.ID, RunDone)
		ids = append(ids, st.ID)
	}
	list := s.List()
	if len(list) != 3 {
		t.Fatalf("store holds %d runs, want 3", len(list))
	}
	for i, st := range list {
		if want := ids[3+i]; st.ID != want {
			t.Fatalf("slot %d holds %s, want %s (oldest-first eviction)", i, st.ID, want)
		}
	}
	if sum := s.Summary(); sum.Evicted != 3 || sum.Total != 3 {
		t.Fatalf("summary %+v", sum)
	}
	// Evicted runs are gone from the lookup path too.
	resp, err := http.Get(srv.URL + "/v1/runs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted run lookup: %d", resp.StatusCode)
	}
}

// TestBusyRetryAfter: submissions past the queue bound answer 429 with
// a Retry-After hint.
func TestBusyRetryAfter(t *testing.T) {
	_, srv := newTestService(t, Config{MaxActive: 1, MaxPending: 1})

	blocker, _, _ := postRun(t, srv.URL, `{"spec":{"id":"b","kind":"api-gate","params":{"cells":1}}}`)
	waitState(t, srv.URL, blocker.ID, RunRunning)
	queued, code, _ := postRun(t, srv.URL, `{"spec":{"id":"q","kind":"api-gate","params":{"cells":1}}}`)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit %d", code)
	}
	_, code, hdr := postRun(t, srv.URL, `{"spec":{"id":"x","kind":"api-gate","params":{"cells":1}}}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	gate <- struct{}{}
	gate <- struct{}{}
	waitState(t, srv.URL, blocker.ID, RunDone)
	waitState(t, srv.URL, queued.ID, RunDone)
}

// TestSubmitValidation: bad submissions fail synchronously with the
// legacy status codes.
func TestSubmitValidation(t *testing.T) {
	_, srv := newTestService(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"id":"mrt","spec":{"id":"x","kind":"mrt"}}`, http.StatusBadRequest},
		{`{"id":"no-such-scenario"}`, http.StatusNotFound},
		{`{"spec":{"id":"x","kind":"no-such-kind"}}`, http.StatusBadRequest},
		{`{"id":"mrt","bogus":true}`, http.StatusBadRequest},
		{`{"spec":{"id":"big","kind":"offline","workload":{"n":1000000}}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, code, _ := postRun(t, srv.URL, tc.body)
		if code != tc.want {
			t.Errorf("POST /v1/runs %s: %d, want %d", tc.body, code, tc.want)
		}
	}
}

// TestConcurrentSubmissions: parallel clients hammering POST /v1/runs
// stay race-clean and every accepted run terminates.
func TestConcurrentSubmissions(t *testing.T) {
	s, srv := newTestService(t, Config{MaxActive: 4, MaxPending: 32, MaxHistory: 64})

	const clients = 16
	var wg sync.WaitGroup
	ids := make(chan string, clients*2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 2; k++ {
				st, code, _ := postRun(t, srv.URL, `{"spec":{"id":"c","kind":"api-sleep","params":{"cells":3,"us":200}}}`)
				if code == http.StatusAccepted {
					ids <- st.ID
				} else if code != http.StatusTooManyRequests {
					t.Errorf("submit: %d", code)
				}
			}
		}()
	}
	wg.Wait()
	close(ids)
	n := 0
	for id := range ids {
		st := waitState(t, srv.URL, id, RunDone)
		if st.CellsDone != 3 {
			t.Errorf("run %s: %d cells", id, st.CellsDone)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no run accepted")
	}
	sum := s.Summary()
	if sum.Done != n {
		t.Fatalf("summary done %d, want %d", sum.Done, n)
	}
}

// TestSummarySingleSourceOfTruth: the /stats runs aggregation equals a
// recomputation from the /v1 listing and the stored Result cells.
func TestSummarySingleSourceOfTruth(t *testing.T) {
	s, srv := newTestService(t, Config{})
	for i := 0; i < 3; i++ {
		st, _, _ := postRun(t, srv.URL, `{"id":"treedlt","quick":true}`)
		waitState(t, srv.URL, st.ID, RunDone)
	}
	sum := s.Summary()
	var recomputed RunsSummary
	recomputed.Evicted = sum.Evicted
	recomputed.CacheHits = sum.CacheHits
	for _, st := range s.List() {
		recomputed.Total++
		switch st.State {
		case RunDone:
			recomputed.Done++
		case RunFailed:
			recomputed.Failed++
		case RunCancelled:
			recomputed.Cancelled++
		case RunQueued:
			recomputed.Queued++
		case RunRunning:
			recomputed.Running++
		}
		recomputed.CellsDone += st.CellsDone
		recomputed.CellsTotal += st.CellsTotal
		r, _ := s.Get(st.ID)
		if res, ok := s.Result(r); ok {
			recomputed.ResultRows += len(res.Cells)
		}
	}
	if sum != recomputed {
		t.Fatalf("summary diverges from store:\n stats: %+v\nstore: %+v", sum, recomputed)
	}
	if sum.ResultRows == 0 || sum.CellsDone == 0 {
		t.Fatalf("degenerate summary %+v", sum)
	}
}
