package api

import (
	"compress/gzip"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/runtrace"
)

// maxInlineTraceEvents caps per-cell trace recording for inline specs
// submitted over HTTP, so one request cannot grow an unbounded event
// log inside the daemon. Catalog specs are trusted as deployed
// configuration and keep whatever the spec says.
const maxInlineTraceEvents = 1 << 20

// traceSeriesBins is the resolution at which finished traced runs are
// folded into the Prometheus histograms.
const traceSeriesBins = 32

// handleTrace serves GET /v1/runs/{id}/trace: the run's recorded event
// traces as JSON Lines (one meta line plus one line per event, per cell
// sub-run), optionally filtered to one cell with ?cell=N and
// gzip-compressed when the client accepts it. Traces exist only for
// done runs whose spec set the trace axis; the result is immutable once
// the run is terminal, so the response streams without holding the
// store lock.
func (s *RunService) handleTrace(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st := s.Status(run, false)
	if st.State != RunDone {
		WriteError(w, http.StatusConflict, fmt.Sprintf("run %s is %s, not done", st.ID, st.State))
		return
	}
	res, ok := s.Result(run)
	if !ok {
		WriteError(w, http.StatusInternalServerError, "done run has no result")
		return
	}
	traces := res.Traces
	if len(traces) == 0 {
		WriteError(w, http.StatusNotFound,
			fmt.Sprintf("run %s has no trace (set \"trace\": {\"events\": true} on the spec)", st.ID))
		return
	}
	if c := r.URL.Query().Get("cell"); c != "" {
		cell, err := strconv.Atoi(c)
		if err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad cell %q", c))
			return
		}
		var filtered []runtrace.CellTrace
		for _, tr := range traces {
			if tr.Cell == cell {
				filtered = append(filtered, tr)
			}
		}
		if len(filtered) == 0 {
			WriteError(w, http.StatusNotFound, fmt.Sprintf("run %s has no cell %d", st.ID, cell))
			return
		}
		traces = filtered
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		w.Header().Set("Content-Encoding", "gzip")
		w.WriteHeader(http.StatusOK)
		gz := gzip.NewWriter(w)
		_ = runtrace.WriteJSONL(gz, traces)
		_ = gz.Close()
		return
	}
	w.WriteHeader(http.StatusOK)
	_ = runtrace.WriteJSONL(w, traces)
}

// observeTraces folds a finished run's traces into the process-wide
// trace histograms (time-binned utilization and queue depth).
func observeTraces(traces []runtrace.CellTrace) {
	for i := range traces {
		series := runtrace.BinSeries(traces[i], traceSeriesBins)
		for _, u := range series.Util {
			metrics.TraceUtilization.Observe(u)
		}
		for _, q := range series.Queue {
			metrics.TraceQueueDepth.Observe(q)
		}
	}
}
