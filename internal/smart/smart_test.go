package smart

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lowerbound"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func rjob(id int, dur float64, procs int, weight float64) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Weight: weight, DueDate: -1,
		SeqTime: dur * float64(procs), MinProcs: procs, MaxProcs: procs,
		Model: workload.Linear{},
	}
}

func rigidInstance(seed uint64, n, m int, weighted bool) []*workload.Job {
	rng := stats.NewRNG(seed)
	jobs := make([]*workload.Job, n)
	for i := range jobs {
		w := 1.0
		if weighted {
			w = float64(rng.Zipf(1.1, 10))
		}
		jobs[i] = rjob(i, rng.LogNormal(1.5, 1.0), rng.IntRange(1, m), w)
	}
	return jobs
}

func TestScheduleValidComplete(t *testing.T) {
	jobs := rigidInstance(1, 60, 16, true)
	s, shelves, err := Schedule(jobs, 16, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if shelves <= 0 {
		t.Fatal("no shelves built")
	}
	if err := s.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Covers(jobs); err != nil {
		t.Fatal(err)
	}
}

func TestShelfHeightsArePowersOfTwo(t *testing.T) {
	jobs := rigidInstance(2, 40, 8, false)
	s, _, err := Schedule(jobs, 8, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	// Every start time must be a sum of powers of two (weak check: every
	// job fits within the power-of-two shelf above its own time).
	for _, a := range s.Allocs {
		tt := a.Job.TimeOn(a.Procs)
		class := math.Ceil(math.Log2(tt) - 1e-12)
		shelfHeight := math.Pow(2, class)
		if tt > shelfHeight*(1+1e-9) {
			t.Fatalf("job %d time %v exceeds its shelf height %v", a.Job.ID, tt, shelfHeight)
		}
	}
}

func TestSmithRuleOrder(t *testing.T) {
	// Heavy short jobs must be scheduled before light long jobs.
	heavy := rjob(1, 1, 1, 100)
	light := rjob(2, 64, 1, 1)
	s, _, err := Schedule([]*workload.Job{light, heavy}, 4, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	starts := map[int]float64{}
	for _, a := range s.Allocs {
		starts[a.Job.ID] = a.Start
	}
	if starts[1] >= starts[2] {
		t.Fatalf("heavy short job starts at %v, after light long at %v", starts[1], starts[2])
	}
}

func TestUnweightedRatioBound(t *testing.T) {
	// §4.3: ratio 8 for ΣCi. Measured against the lower bound it must
	// stay within 8 on random instances (usually far below).
	worst := 0.0
	for seed := uint64(0); seed < 10; seed++ {
		jobs := rigidInstance(seed, 80, 16, false)
		s, _, err := Schedule(jobs, 16, FirstFit)
		if err != nil {
			t.Fatal(err)
		}
		lb := lowerbound.SumCompletion(jobs, 16)
		ratio := s.Report().SumCompletion / lb
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > RatioUnweighted {
		t.Fatalf("measured ΣC ratio %v exceeds the proven bound 8", worst)
	}
	if worst < 1 {
		t.Fatalf("ratio %v below 1 — lower bound broken", worst)
	}
}

func TestWeightedRatioBound(t *testing.T) {
	worst := 0.0
	for seed := uint64(20); seed < 30; seed++ {
		jobs := rigidInstance(seed, 80, 16, true)
		s, _, err := Schedule(jobs, 16, FirstFit)
		if err != nil {
			t.Fatal(err)
		}
		lb := lowerbound.SumWeightedCompletion(jobs, 16)
		ratio := s.Report().SumWeightedCompletion / lb
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > RatioWeighted {
		t.Fatalf("measured ΣwC ratio %v exceeds the proven bound 8.53", worst)
	}
}

func TestBestFitAblation(t *testing.T) {
	jobs := rigidInstance(3, 100, 16, true)
	ff, nFF, err := Schedule(jobs, 16, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	bf, nBF, err := Schedule(jobs, 16, BestFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}); err != nil {
		t.Fatal(err)
	}
	// Both must pack all jobs; shelf counts may differ but not wildly.
	if nBF > 2*nFF+2 || nFF > 2*nBF+2 {
		t.Fatalf("shelf counts diverge: FF=%d BF=%d", nFF, nBF)
	}
	_ = ff
}

func TestOversizedJobRejected(t *testing.T) {
	if _, _, err := Schedule([]*workload.Job{rjob(1, 5, 32, 1)}, 8, FirstFit); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestSubSecondJobs(t *testing.T) {
	// Times < 1 produce negative shelf classes; heights 2^-k must still
	// bound the job times.
	jobs := []*workload.Job{
		rjob(1, 0.3, 1, 1), rjob(2, 0.6, 2, 1), rjob(3, 0.1, 1, 1),
	}
	s, _, err := Schedule(jobs, 4, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}); err != nil {
		t.Fatal(err)
	}
}

func TestMoldableFrozenAtMinProcs(t *testing.T) {
	j := &workload.Job{
		ID: 1, Kind: workload.Moldable, Weight: 1, DueDate: -1,
		SeqTime: 10, MinProcs: 2, MaxProcs: 8, Model: workload.Linear{},
	}
	s, _, err := Schedule([]*workload.Job{j}, 8, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if s.Allocs[0].Procs != 2 {
		t.Fatalf("moldable job frozen at %d procs, want MinProcs=2", s.Allocs[0].Procs)
	}
}

// Property: SMART schedules are always valid, complete, and within the
// proven constant of the ΣwC lower bound.
func TestSMARTProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8, weighted bool) bool {
		n := int(nRaw%60) + 1
		m := int(mRaw%14) + 2
		jobs := rigidInstance(seed, n, m, weighted)
		for _, fill := range []Fill{FirstFit, BestFit} {
			s, _, err := Schedule(jobs, m, fill)
			if err != nil {
				return false
			}
			if s.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}) != nil {
				return false
			}
			if s.Covers(jobs) != nil {
				return false
			}
			lb := lowerbound.SumWeightedCompletion(jobs, m)
			if lb > 0 && s.Report().SumWeightedCompletion > RatioWeighted*lb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
