// Package smart implements the shelf-based algorithm of Schwiegelshohn,
// Ludwig, Wolf, Turek and Yu ("SMART bounds for weighted response time
// scheduling") cited in §4.3 of the paper: rigid Parallel Tasks are
// packed onto shelves whose heights are powers of two, shelves are filled
// first-fit, and the shelf order follows Smith's rule on aggregate shelf
// weight — giving constant performance ratios for ΣCi (8) and ΣωiCi
// (8.53). The paper uses it as the baseline that batch scheduling with
// better internal algorithms improves upon.
package smart

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sched"
	"repro/internal/workload"
)

// Fill selects the shelf-filling rule (the paper's version uses first
// fit; best fit is the ablation).
type Fill int

const (
	// FirstFit places each job on the first shelf of its class with room.
	FirstFit Fill = iota
	// BestFit places each job on the fullest shelf of its class with room.
	BestFit
)

// shelf is one power-of-two shelf under construction.
type shelf struct {
	class  int // height = 2^class
	height float64
	width  int
	weight float64
	jobs   []*workload.Job
}

// Schedule packs the rigid jobs and returns the shelf schedule ordered by
// Smith's rule, plus the shelf count (diagnostics). Moldable jobs are
// frozen at MinProcs.
func Schedule(jobs []*workload.Job, m int, fill Fill) (*sched.Schedule, int, error) {
	// Classify jobs by shelf class: smallest k with 2^k >= time.
	// Jobs are inserted in decreasing width within each class so first
	// fit packs tightly.
	type item struct {
		job   *workload.Job
		procs int
		time  float64
		class int
	}
	items := make([]item, 0, len(jobs))
	for _, j := range jobs {
		procs := j.MinProcs
		if procs > m {
			return nil, 0, fmt.Errorf("smart: job %d needs %d > %d procs", j.ID, procs, m)
		}
		t := j.TimeOn(procs)
		if t <= 0 {
			return nil, 0, fmt.Errorf("smart: job %d has non-positive time", j.ID)
		}
		// class = ceil(log2 t), with exact powers of two staying put.
		class := int(math.Ceil(math.Log2(t) - 1e-12))
		items = append(items, item{job: j, procs: procs, time: t, class: class})
	}
	sort.SliceStable(items, func(a, b int) bool {
		if items[a].class != items[b].class {
			return items[a].class < items[b].class
		}
		if items[a].procs != items[b].procs {
			return items[a].procs > items[b].procs
		}
		return items[a].job.ID < items[b].job.ID
	})

	shelvesByClass := map[int][]*shelf{}
	var shelves []*shelf
	for _, it := range items {
		group := shelvesByClass[it.class]
		var target *shelf
		switch fill {
		case BestFit:
			bestRem := math.MaxInt32
			for _, sh := range group {
				rem := m - sh.width
				if rem >= it.procs && rem < bestRem {
					bestRem = rem
					target = sh
				}
			}
		default: // FirstFit
			for _, sh := range group {
				if sh.width+it.procs <= m {
					target = sh
					break
				}
			}
		}
		if target == nil {
			target = &shelf{class: it.class, height: math.Pow(2, float64(it.class))}
			shelvesByClass[it.class] = append(shelvesByClass[it.class], target)
			shelves = append(shelves, target)
		}
		target.jobs = append(target.jobs, it.job)
		target.width += it.procs
		target.weight += it.job.Weight
	}

	// Smith's rule over shelves: ascending height/weight. Shelves with
	// zero weight go last (they only delay others).
	sort.SliceStable(shelves, func(a, b int) bool {
		wa, wb := shelves[a].weight, shelves[b].weight
		switch {
		case wa > 0 && wb > 0:
			return shelves[a].height*wb < shelves[b].height*wa
		case wa > 0:
			return true
		case wb > 0:
			return false
		default:
			return shelves[a].height < shelves[b].height
		}
	})

	s := sched.New(m)
	clock := 0.0
	for _, sh := range shelves {
		for _, j := range sh.jobs {
			s.Add(sched.Alloc{Job: j, Start: clock, Procs: j.MinProcs})
		}
		clock += sh.height
	}
	return s, len(shelves), nil
}

// RatioUnweighted is the proven §4.3 bound for ΣCi.
const RatioUnweighted = 8.0

// RatioWeighted is the proven §4.3 bound for ΣωiCi.
const RatioWeighted = 8.53
