package cluster

import (
	"errors"
	"testing"

	"repro/internal/des"
	"repro/internal/workload"
)

func rigidJob(id int, seq float64, procs int) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1,
		SeqTime: seq, MinProcs: procs, MaxProcs: procs, Model: workload.Linear{},
	}
}

// TestSubmitAfterRunDrained pins the ErrDrained contract: once Run has
// returned, Submit and InjectNow must refuse instead of scheduling
// events that will never fire.
func TestSubmitAfterRunDrained(t *testing.T) {
	s, err := New(des.New(), 4, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(rigidJob(0, 10, 2)); err != nil {
		t.Fatal(err)
	}
	if s.Drained() {
		t.Fatal("drained before Run")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Drained() {
		t.Fatal("not drained after Run")
	}
	if err := s.Submit(rigidJob(1, 10, 2)); !errors.Is(err, ErrDrained) {
		t.Fatalf("Submit after Run = %v, want ErrDrained", err)
	}
	if err := s.InjectNow(rigidJob(2, 10, 2)); !errors.Is(err, ErrDrained) {
		t.Fatalf("InjectNow after Run = %v, want ErrDrained", err)
	}
	if got := len(s.Completions()); got != 1 {
		t.Fatalf("%d completions after rejected submissions, want 1", got)
	}
}

// TestDrainWithoutRun covers the service path: Drain flips the guard
// without running events, so a self-driven simulation can stop accepting
// work before fast-forwarding.
func TestDrainWithoutRun(t *testing.T) {
	s, err := New(des.New(), 4, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(rigidJob(0, 10, 2)); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if err := s.Submit(rigidJob(1, 10, 2)); !errors.Is(err, ErrDrained) {
		t.Fatalf("Submit after Drain = %v, want ErrDrained", err)
	}
	// The already-accepted job still completes.
	if err := s.DES.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Completions()); got != 1 {
		t.Fatalf("%d completions, want 1", got)
	}
}

// TestQueuedAndRunningSnapshots covers the observer accessors the gridd
// service exposes through /queue.
func TestQueuedAndRunningSnapshots(t *testing.T) {
	s, err := New(des.New(), 2, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	// Two 2-wide jobs: one runs, one waits.
	if err := s.Submit(rigidJob(0, 100, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(rigidJob(1, 100, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.DES.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	running := s.Running()
	queued := s.Queued()
	if len(running) != 1 || running[0].Job.ID != 0 || running[0].Procs != 2 {
		t.Fatalf("running snapshot: %+v", running)
	}
	if len(queued) != 1 || queued[0].ID != 1 {
		t.Fatalf("queued snapshot: %+v", queued)
	}
	// Snapshots are copies: mutating them must not disturb the simulator.
	queued[0] = nil
	if s.QueueLength() != 1 || s.Queued()[0] == nil {
		t.Fatal("Queued() exposed internal state")
	}
}
