package cluster

// Property tests for the incremental resource-profile engine: the
// persistent profile the simulator maintains across start/finish events
// must at every decision point be semantically identical to a profile
// rebuilt from scratch out of the running set — the invariant that lets
// policies skip the rebuild.

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/rigid"
	"repro/internal/stats"
)

// auditPolicy wraps a policy and cross-checks View.Profile against a
// from-scratch rebuild before every decision.
type auditPolicy struct {
	t     *testing.T
	inner Policy
	hits  *int
}

func (p auditPolicy) Name() string { return p.inner.Name() }

func (p auditPolicy) Decide(v View) []Decision {
	*p.hits++
	if v.Profile == nil {
		p.t.Error("view missing persistent profile")
		return p.inner.Decide(v)
	}
	ref := rigid.NewProfile(v.M)
	for _, r := range v.Running {
		if r.End > v.Now {
			if err := ref.Reserve(v.Now, r.End-v.Now, r.Procs); err != nil {
				p.t.Fatalf("t=%v: rebuild from running set failed: %v", v.Now, err)
			}
		}
	}
	// Semantic equality: same availability inside every segment of either
	// profile from now on (piecewise-constant ⇒ one sample per segment).
	// Sampling midpoints rather than breakpoints sidesteps the one-ULP
	// end-time differences between the incremental profile (which stores
	// exact reservation ends) and the rebuild (whose Now + (End-Now)
	// round trip can be off by one float step).
	pts := append(v.Profile.Breakpoints(), ref.Breakpoints()...)
	pts = append(pts, v.Now)
	sort.Float64s(pts)
	for i, t0 := range pts {
		if t0 < v.Now {
			continue
		}
		sample := t0 + 1 // beyond the last breakpoint
		if i+1 < len(pts) {
			if pts[i+1]-t0 <= 1e-9*(1+math.Abs(t0)) {
				continue // ULP sliver between near-identical breakpoints
			}
			sample = (t0 + pts[i+1]) / 2
		}
		if got, want := v.Profile.AvailableAt(sample), ref.AvailableAt(sample); got != want {
			p.t.Fatalf("t=%v: incremental profile has %d free at %v, rebuild has %d",
				v.Now, got, sample, want)
		}
	}
	// The persistent profile must stay trimmed and canonical: its
	// breakpoint count is bounded by running jobs + 1, not history.
	if got, limit := v.Profile.Segments(), len(v.Running)+1; got > limit {
		p.t.Fatalf("t=%v: %d segments for %d running jobs (history not trimmed/coalesced)",
			v.Now, got, len(v.Running))
	}
	bp := v.Profile.Breakpoints()
	for i := 1; i < len(bp); i++ {
		if v.Profile.AvailableAt(bp[i]) == v.Profile.AvailableAt(bp[i-1]) {
			p.t.Fatalf("t=%v: persistent profile not coalesced at %v", v.Now, bp[i])
		}
	}
	return p.inner.Decide(v)
}

// TestIncrementalProfileMatchesRebuild drives randomized workloads —
// local jobs plus best-effort churn forcing kills and refills — through
// every queue policy with the audit wrapper attached.
func TestIncrementalProfileMatchesRebuild(t *testing.T) {
	for _, inner := range []Policy{ConservativePolicy{}, EASYPolicy{}, FCFSPolicy{}, GreedyFitPolicy{}} {
		inner := inner
		t.Run(inner.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				rng := stats.NewRNG(seed)
				m := rng.IntRange(2, 16)
				n := rng.IntRange(1, 20)
				hits := 0
				s, err := New(des.New(), m, 1, auditPolicy{t: t, inner: inner, hits: &hits}, KillNewest)
				if err != nil {
					return false
				}
				for i := 0; i < 25; i++ {
					s.SubmitBestEffort(BETask{BagID: 1, Index: i, Duration: rng.Range(1, 15)})
				}
				clock := 0.0
				for i := 0; i < n; i++ {
					clock += rng.Exp(0.3)
					if err := s.Submit(rjob(i, rng.Range(0.5, 12), rng.IntRange(1, m), clock)); err != nil {
						return false
					}
				}
				if err := s.Run(); err != nil {
					return false
				}
				return hits > 0 && len(s.Completions()) == n
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestViewBuffersReused: the scratch buffers backing View.Queue must not
// reallocate once warmed up (the per-reschedule copies they replace were
// a top allocation site).
func TestViewBuffersReused(t *testing.T) {
	s, err := New(des.New(), 4, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Submit(rjob(i, 2, 1, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if cap(s.viewQueue) == 0 && cap(s.viewRunning) == 0 {
		t.Fatal("view scratch buffers never used")
	}
	if len(s.Completions()) != 30 {
		t.Fatalf("%d completions", len(s.Completions()))
	}
}
