package cluster

import (
	"errors"
	"testing"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// sameCompletion compares by value: the two runs build distinct Job
// instances, so pointer equality cannot hold.
func sameCompletion(a, b metrics.Completion) bool {
	return a.Job.ID == b.Job.ID && a.Start == b.Start && a.End == b.End && a.Procs == b.Procs
}

// runMaterialized submits every job up front (the historical path).
func runMaterialized(t *testing.T, m int, policy Policy, jobs []*workload.Job) *Sim {
	t.Helper()
	s, err := New(des.New(), m, 1, policy, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// runStreamed admits the same jobs lazily through Stream.
func runStreamed(t *testing.T, m int, policy Policy, src workload.Source, retain metrics.Retention) *Sim {
	t.Helper()
	s, err := New(des.New(), m, 1, policy, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if retain != nil {
		if err := s.SetRetention(retain); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stream(src); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamMatchesMaterialized: lazy admission must reproduce the
// pre-submitted simulation exactly — same completions in the same
// order, same report — for continuous release streams (no release ever
// collides with a finish instant) across policies and both generators.
func TestStreamMatchesMaterialized(t *testing.T) {
	policies := []Policy{FCFSPolicy{}, EASYPolicy{}, GreedyFitPolicy{}}
	gens := []func(seed uint64) ([]*workload.Job, workload.Source){
		func(seed uint64) ([]*workload.Job, workload.Source) {
			cfg := workload.GenConfig{N: 400, M: 32, Seed: seed, ArrivalRate: 0.5, RigidFraction: 0.5}
			return workload.Parallel(cfg), workload.ParallelSource(cfg)
		},
		func(seed uint64) ([]*workload.Job, workload.Source) {
			cfg := workload.GenConfig{N: 300, M: 32, Seed: seed, ArrivalRate: 2}
			return workload.Sequential(cfg), workload.SequentialSource(cfg)
		},
	}
	for gi, gen := range gens {
		for _, pol := range policies {
			jobs, src := gen(uint64(11 + gi))
			want := runMaterialized(t, 32, pol, jobs)
			got := runStreamed(t, 32, pol, src, nil)
			wcs, gcs := want.Completions(), got.Completions()
			if len(wcs) != len(gcs) {
				t.Fatalf("%s/gen%d: %d vs %d completions", pol.Name(), gi, len(wcs), len(gcs))
			}
			for i := range wcs {
				if !sameCompletion(wcs[i], gcs[i]) {
					t.Fatalf("%s/gen%d: completion %d diverged:\nwant %+v\ngot  %+v",
						pol.Name(), gi, i, wcs[i], gcs[i])
				}
			}
			if want.Report() != got.Report() {
				t.Fatalf("%s/gen%d: reports diverged", pol.Name(), gi)
			}
		}
	}
}

// TestStreamReportMatchesNewReport: the O(1) Report equals the
// slice-based report over the full retained history.
func TestStreamReportMatchesNewReport(t *testing.T) {
	cfg := workload.GenConfig{N: 250, M: 16, Seed: 4, ArrivalRate: 1, Weighted: true, DueDateSlack: 2}
	s := runStreamed(t, 16, EASYPolicy{}, workload.ParallelSource(cfg), nil)
	if want := metrics.NewReport(s.CompletionsView(), 16); want != s.Report() {
		t.Fatalf("report diverged:\nNewReport %+v\nReport    %+v", want, s.Report())
	}
}

// TestStreamBoundedRetention: with a ring (or discard) store the
// aggregate report is untouched while memory holds only the tail.
func TestStreamBoundedRetention(t *testing.T) {
	cfg := workload.GenConfig{N: 300, M: 16, Seed: 9, ArrivalRate: 1}
	full := runStreamed(t, 16, EASYPolicy{}, workload.ParallelSource(cfg), nil)

	ring := runStreamed(t, 16, EASYPolicy{}, workload.ParallelSource(cfg), metrics.NewRing(32))
	if ring.Report() != full.Report() {
		t.Fatal("ring retention changed the report")
	}
	tail := ring.Completions()
	if len(tail) != 32 {
		t.Fatalf("ring kept %d records, want 32", len(tail))
	}
	fullCs := full.Completions()
	wantTail := fullCs[len(fullCs)-32:]
	for i := range tail {
		if !sameCompletion(tail[i], wantTail[i]) {
			t.Fatalf("ring tail %d diverged", i)
		}
	}

	disc := runStreamed(t, 16, EASYPolicy{}, workload.ParallelSource(cfg), metrics.NewDiscard())
	if disc.Report() != full.Report() {
		t.Fatal("discard retention changed the report")
	}
	if len(disc.Completions()) != 0 {
		t.Fatal("discard kept records")
	}
	if disc.CompletedCount() != 300 || disc.Submitted() != 300 {
		t.Fatalf("counts wrong: completed=%d submitted=%d", disc.CompletedCount(), disc.Submitted())
	}
}

// TestStreamBurstGroup: jobs sharing one release timestamp are admitted
// inside a single arrival event (event count stays O(distinct release
// times), not O(jobs)) and all complete.
func TestStreamBurstGroup(t *testing.T) {
	jobs := make([]*workload.Job, 40)
	for i := range jobs {
		jobs[i] = &workload.Job{
			ID: i, Kind: workload.Rigid, Release: float64(i / 10), Weight: 1, DueDate: -1,
			SeqTime: 1, MinProcs: 1, MaxProcs: 1, Model: workload.Linear{},
		}
	}
	s, err := New(des.New(), 64, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stream(workload.NewSliceSource(jobs)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.CompletedCount() != 40 {
		t.Fatalf("completed %d of 40", s.CompletedCount())
	}
	// 4 arrival groups + 40 finish events + the initial arrival chain:
	// far fewer than one arrival event per job would produce.
	if got := s.DES.Processed; got > 48 {
		t.Fatalf("burst groups not coalesced: %d events", got)
	}
}

// failingSource yields one good job then fails.
type failingSource struct{ done bool }

func (f *failingSource) Next() (*workload.Job, bool) {
	if f.done {
		return nil, false
	}
	f.done = true
	return &workload.Job{
		ID: 0, Kind: workload.Rigid, Release: 0, Weight: 1, DueDate: -1,
		SeqTime: 1, MinProcs: 1, MaxProcs: 1, Model: workload.Linear{},
	}, true
}

func (f *failingSource) Err() error { return errSource }

var errSource = errors.New("stream corrupted")

// TestStreamSourceError: a mid-stream source failure surfaces from Run.
func TestStreamSourceError(t *testing.T) {
	s, err := New(des.New(), 4, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stream(&failingSource{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); !errors.Is(err, errSource) {
		t.Fatalf("Run = %v, want source error", err)
	}

	// An oversized job in the stream also aborts with a clear error —
	// at attach time when it is the stream head, from Run otherwise.
	wide := &workload.Job{
		ID: 7, Kind: workload.Rigid, Release: 0, Weight: 1, DueDate: -1,
		SeqTime: 1, MinProcs: 99, MaxProcs: 99, Model: workload.Linear{},
	}
	s2, _ := New(des.New(), 4, 1, FCFSPolicy{}, KillNewest)
	err2 := s2.Stream(workload.NewSliceSource([]*workload.Job{wide}))
	if err2 == nil {
		err2 = s2.Run()
	}
	if err2 == nil {
		t.Fatal("oversized streamed job not rejected")
	}
}

// TestStreamGuards: double-attach and post-drain streaming are rejected,
// as is a retention swap after completions exist.
func TestStreamGuards(t *testing.T) {
	s, _ := New(des.New(), 4, 1, FCFSPolicy{}, KillNewest)
	src := workload.SequentialSource(workload.GenConfig{N: 5, Seed: 1})
	if err := s.Stream(src); err != nil {
		t.Fatal(err)
	}
	if err := s.Stream(workload.SequentialSource(workload.GenConfig{N: 5, Seed: 2})); err == nil {
		t.Fatal("second Stream accepted")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRetention(metrics.NewDiscard()); err == nil {
		t.Fatal("retention swap after completions accepted")
	}
	if err := s.Stream(src); !errors.Is(err, ErrDrained) {
		t.Fatalf("post-drain Stream = %v, want ErrDrained", err)
	}
}

// TestSubmitAllMatchesSubmitLoop: the batch insertion path is
// indistinguishable from the Submit loop.
func TestSubmitAllMatchesSubmitLoop(t *testing.T) {
	cfg := workload.GenConfig{N: 200, M: 16, Seed: 21, ArrivalRate: 1, RigidFraction: 0.3}
	jobs := workload.Parallel(cfg)
	want := runMaterialized(t, 16, EASYPolicy{}, jobs)

	s, err := New(des.New(), 16, 1, EASYPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitAll(workload.Parallel(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	wcs, gcs := want.Completions(), s.Completions()
	if len(wcs) != len(gcs) {
		t.Fatalf("%d vs %d completions", len(wcs), len(gcs))
	}
	for i := range wcs {
		if wcs[i].Job.ID != gcs[i].Job.ID || wcs[i].End != gcs[i].End {
			t.Fatalf("completion %d diverged", i)
		}
	}

	// Validation is atomic: one oversized job rejects the whole batch.
	bad := []*workload.Job{jobs[0], {ID: 999, Kind: workload.Rigid, Release: 0, Weight: 1,
		DueDate: -1, SeqTime: 1, MinProcs: 99, MaxProcs: 99, Model: workload.Linear{}}}
	s2, _ := New(des.New(), 16, 1, EASYPolicy{}, KillNewest)
	if err := s2.SubmitAll(bad); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if s2.Submitted() != 0 || s2.DES.Pending() != 0 {
		t.Fatalf("partial batch: submitted=%d pending=%d", s2.Submitted(), s2.DES.Pending())
	}
}

// TestStreamLargeScaleBounded exercises a bigger stream end to end with
// discard retention — the replay configuration — and cross-checks the
// report against a full-retention run.
func TestStreamLargeScaleBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream")
	}
	cfg := workload.GenConfig{N: 20000, M: 64, Seed: 5, ArrivalRate: 4, SeqMu: 2.5}
	lean := runStreamed(t, 64, EASYPolicy{}, workload.ParallelSource(cfg), metrics.NewDiscard())
	full := runStreamed(t, 64, EASYPolicy{}, workload.ParallelSource(cfg), nil)
	if lean.Report() != full.Report() {
		t.Fatalf("reports diverged:\nlean %+v\nfull %+v", lean.Report(), full.Report())
	}
	if lean.CompletedCount() != 20000 {
		t.Fatalf("completed %d", lean.CompletedCount())
	}
}
