package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func rjob(id int, dur float64, procs int, release float64) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: release,
		SeqTime: dur * float64(procs), MinProcs: procs, MaxProcs: procs,
		Model: workload.Linear{},
	}
}

func runSim(t *testing.T, m int, speed float64, policy Policy, jobs []*workload.Job) *Sim {
	t.Helper()
	s, err := New(des.New(), m, speed, policy, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// validateCompletions re-checks the DES outcome against the static
// schedule validator.
func validateCompletions(t *testing.T, cs []metrics.Completion, m int) {
	t.Helper()
	intervals := make([]platform.Interval, len(cs))
	for i, c := range cs {
		intervals[i] = platform.Interval{Start: c.Start, End: c.End, Count: c.Procs}
		if c.Start < c.Job.Release-1e-9 {
			t.Fatalf("job %d started before release", c.Job.ID)
		}
	}
	if peak := platform.PeakDemand(intervals); peak > m {
		t.Fatalf("peak demand %d exceeds %d", peak, m)
	}
}

func TestFCFSSimple(t *testing.T) {
	jobs := []*workload.Job{
		rjob(1, 10, 4, 0), // full machine
		rjob(2, 5, 2, 0),  // must wait (FCFS head rule)
	}
	s := runSim(t, 4, 1, FCFSPolicy{}, jobs)
	cs := s.Completions()
	validateCompletions(t, cs, 4)
	for _, c := range cs {
		if c.Job.ID == 2 && c.Start < 10 {
			t.Fatalf("job 2 started at %v before job 1 finished", c.Start)
		}
	}
}

func TestFCFSNoBackfill(t *testing.T) {
	// Head (wide) blocked by a running job; a narrow later job must NOT
	// jump ahead under FCFS.
	jobs := []*workload.Job{
		rjob(1, 10, 3, 0),
		rjob(2, 5, 4, 0), // blocked head
		rjob(3, 1, 1, 0), // would fit now, FCFS must hold it
	}
	s := runSim(t, 4, 1, FCFSPolicy{}, jobs)
	for _, c := range s.Completions() {
		if c.Job.ID == 3 && c.Start < 10 {
			t.Fatalf("FCFS backfilled job 3 at %v", c.Start)
		}
	}
}

func TestEASYBackfills(t *testing.T) {
	jobs := []*workload.Job{
		rjob(1, 10, 3, 0),
		rjob(2, 5, 4, 0), // blocked head; shadow = 10
		rjob(3, 2, 1, 0), // ends at 2 <= 10: backfills
	}
	s := runSim(t, 4, 1, EASYPolicy{}, jobs)
	starts := map[int]float64{}
	for _, c := range s.Completions() {
		starts[c.Job.ID] = c.Start
	}
	if starts[3] != 0 {
		t.Fatalf("EASY did not backfill job 3 (start %v)", starts[3])
	}
	if starts[2] != 10 {
		t.Fatalf("EASY delayed the head: job 2 at %v, want 10", starts[2])
	}
	validateCompletions(t, s.Completions(), 4)
}

func TestEASYDoesNotDelayHead(t *testing.T) {
	jobs := []*workload.Job{
		rjob(1, 10, 3, 0),
		rjob(2, 5, 4, 0),  // head, shadow = 10
		rjob(3, 20, 1, 0), // ends at 20 > shadow and 1 > extra(=0): must wait
	}
	s := runSim(t, 4, 1, EASYPolicy{}, jobs)
	starts := map[int]float64{}
	for _, c := range s.Completions() {
		starts[c.Job.ID] = c.Start
	}
	if starts[2] > 10+1e-9 {
		t.Fatalf("head delayed to %v by backfilling", starts[2])
	}
}

func TestGreedyFitStartsEverythingThatFits(t *testing.T) {
	jobs := []*workload.Job{
		rjob(1, 10, 3, 0),
		rjob(2, 5, 4, 0), // doesn't fit
		rjob(3, 2, 1, 0), // fits: greedy starts it
	}
	s := runSim(t, 4, 1, GreedyFitPolicy{}, jobs)
	starts := map[int]float64{}
	for _, c := range s.Completions() {
		starts[c.Job.ID] = c.Start
	}
	if starts[3] != 0 {
		t.Fatalf("greedy did not start job 3 at 0 (start %v)", starts[3])
	}
}

func TestSpeedScalesDurations(t *testing.T) {
	jobs := []*workload.Job{rjob(1, 10, 1, 0)}
	s := runSim(t, 2, 2.0, FCFSPolicy{}, jobs)
	c := s.Completions()[0]
	if math.Abs(c.End-5) > 1e-9 {
		t.Fatalf("speed-2 cluster ran 10s job in %v, want 5", c.End)
	}
}

func TestReleaseDatesHonored(t *testing.T) {
	jobs := []*workload.Job{rjob(1, 5, 1, 100)}
	s := runSim(t, 2, 1, FCFSPolicy{}, jobs)
	if c := s.Completions()[0]; c.Start < 100 {
		t.Fatalf("started at %v before release 100", c.Start)
	}
}

func TestBestEffortFillsAndIsKilled(t *testing.T) {
	sim := des.New()
	s, err := New(sim, 4, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	var killed, done []BETask
	s.OnBEKilled = func(bt BETask) { killed = append(killed, bt) }
	s.OnBEDone = func(bt BETask) { done = append(done, bt) }

	// Grid tasks available from the start; a local job arrives at t=5
	// needing the whole machine → running BE tasks must die.
	for i := 0; i < 4; i++ {
		s.SubmitBestEffort(BETask{BagID: 1, Index: i, Duration: 100})
	}
	if err := s.Submit(rjob(1, 10, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(killed) != 4 {
		t.Fatalf("%d best-effort tasks killed, want 4", len(killed))
	}
	st := s.BestEffort()
	if st.Killed != 4 || st.Completed != 0 {
		t.Fatalf("BE stats: %+v", st)
	}
	// 4 tasks ran from 0 to 5 → 20 units wasted.
	if math.Abs(st.WastedWork-20) > 1e-9 {
		t.Fatalf("wasted work %v, want 20", st.WastedWork)
	}
	// The local job must start exactly at its release (not delayed by BE).
	if c := s.Completions()[0]; c.Start != 5 {
		t.Fatalf("local job delayed to %v by best-effort work", c.Start)
	}
}

func TestBestEffortCompletesInHoles(t *testing.T) {
	sim := des.New()
	s, err := New(sim, 4, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	s.SubmitBestEffort(BETask{BagID: 1, Index: 0, Duration: 3})
	if err := s.Submit(rjob(1, 10, 2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.BestEffort()
	if st.Completed != 1 || st.Killed != 0 {
		t.Fatalf("BE stats: %+v", st)
	}
	if st.DoneWork != 3 {
		t.Fatalf("done work %v", st.DoneWork)
	}
}

func TestKillNewestVsLargest(t *testing.T) {
	run := func(kp KillPolicy) BEStats {
		sim := des.New()
		s, err := New(sim, 2, 1, FCFSPolicy{}, kp)
		if err != nil {
			t.Fatal(err)
		}
		// Long task starts first, short second; local 1-proc job at t=1
		// forces one kill.
		s.SubmitBestEffort(BETask{BagID: 0, Index: 0, Duration: 100})
		s.SubmitBestEffort(BETask{BagID: 0, Index: 1, Duration: 2})
		if err := s.Submit(rjob(1, 5, 1, 1)); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.BestEffort()
	}
	// KillNewest kills the short task (fifo order: long got seq 0);
	// KillLargestRemaining kills the long one.
	newest := run(KillNewest)
	largest := run(KillLargestRemaining)
	if newest.Killed != 1 || largest.Killed != 1 {
		t.Fatalf("kills: newest=%+v largest=%+v", newest, largest)
	}
	if !(largest.DoneWork < newest.DoneWork) {
		t.Fatalf("largest-remaining should lose the long task: newest=%+v largest=%+v",
			newest, largest)
	}
}

func TestStealQueued(t *testing.T) {
	sim := des.New()
	s, err := New(sim, 2, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the machine so later jobs stay queued.
	if err := s.Submit(rjob(1, 50, 2, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 4; i++ {
		if err := s.Submit(rjob(i, 5, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if got := s.QueueLength(); got != 3 {
		t.Fatalf("queue length %d, want 3", got)
	}
	if w := s.QueuedWork(); w != 15 {
		t.Fatalf("queued work %v, want 15", w)
	}
	stolen := s.StealQueued(2)
	if len(stolen) != 2 || stolen[0].ID != 3 || stolen[1].ID != 4 {
		t.Fatalf("stole %v", stolen)
	}
	// Remaining sim must still complete consistently.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.Completions()) != 2 {
		t.Fatalf("%d completions, want 2 (one running + one queued kept)", len(s.Completions()))
	}
}

func TestInjectNow(t *testing.T) {
	sim := des.New()
	s, err := New(sim, 2, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	j := rjob(1, 5, 1, 0) // released long ago on another cluster
	if err := s.InjectNow(j); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	c := s.Completions()[0]
	if c.Start < 10 {
		t.Fatalf("injected job ran at %v before injection time", c.Start)
	}
}

func TestOversizedSubmitRejected(t *testing.T) {
	s, err := New(des.New(), 2, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(rjob(1, 5, 4, 0)); err == nil {
		t.Fatal("oversized job accepted")
	}
	if err := s.InjectNow(rjob(2, 5, 4, 0)); err == nil {
		t.Fatal("oversized injection accepted")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(nil, 0, 1, FCFSPolicy{}, KillNewest); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := New(nil, 2, 0, FCFSPolicy{}, KillNewest); err == nil {
		t.Fatal("speed=0 accepted")
	}
	if _, err := New(nil, 2, 1, nil, KillNewest); err == nil {
		t.Fatal("nil policy accepted")
	}
}

// Property: for random rigid workloads, every policy completes all jobs
// with no capacity violation and no pre-release start, and EASY's mean
// flow is never worse than FCFS's by more than noise... EASY can in
// contrived cases lose on mean flow, so we only assert the hard
// invariants plus "EASY utilization >= FCFS utilization - epsilon" on
// makespan-equal... keep to hard invariants.
func TestPoliciesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 16)
		n := rng.IntRange(1, 25)
		var jobs []*workload.Job
		clock := 0.0
		for i := 0; i < n; i++ {
			clock += rng.Exp(0.3)
			jobs = append(jobs, rjob(i, rng.Range(0.5, 15), rng.IntRange(1, m), clock))
		}
		for _, pol := range []Policy{FCFSPolicy{}, EASYPolicy{}, GreedyFitPolicy{}} {
			s, err := New(des.New(), m, 1, pol, KillNewest)
			if err != nil {
				return false
			}
			for _, j := range jobs {
				if err := s.Submit(j); err != nil {
					return false
				}
			}
			if err := s.Run(); err != nil {
				return false
			}
			cs := s.Completions()
			if len(cs) != n {
				return false
			}
			intervals := make([]platform.Interval, len(cs))
			for i, c := range cs {
				if c.Start < c.Job.Release-1e-9 {
					return false
				}
				intervals[i] = platform.Interval{Start: c.Start, End: c.End, Count: c.Procs}
			}
			if platform.PeakDemand(intervals) > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: best-effort tasks never delay local jobs — with and without
// grid load, local completion times are identical.
func TestBestEffortNonInterferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 8)
		n := rng.IntRange(1, 15)
		var jobs []*workload.Job
		clock := 0.0
		for i := 0; i < n; i++ {
			clock += rng.Exp(0.2)
			jobs = append(jobs, rjob(i, rng.Range(0.5, 10), rng.IntRange(1, m), clock))
		}
		runLocal := func(withBE bool) map[int]float64 {
			s, err := New(des.New(), m, 1, EASYPolicy{}, KillNewest)
			if err != nil {
				return nil
			}
			if withBE {
				for i := 0; i < 30; i++ {
					s.SubmitBestEffort(BETask{BagID: 9, Index: i, Duration: rng.Range(1, 20)})
				}
			}
			for _, j := range jobs {
				if err := s.Submit(j); err != nil {
					return nil
				}
			}
			if err := s.Run(); err != nil {
				return nil
			}
			ends := map[int]float64{}
			for _, c := range s.Completions() {
				ends[c.Job.ID] = c.End
			}
			return ends
		}
		without := runLocal(false)
		rng2 := stats.NewRNG(seed) // re-seed so BE durations don't shift local draws
		_ = rng2
		with := runLocal(true)
		if without == nil || with == nil {
			return false
		}
		for id, end := range without {
			if math.Abs(with[id]-end) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleFromCompletionsRoundTrip(t *testing.T) {
	// Cross-check: a DES run converted to a static schedule validates.
	jobs := []*workload.Job{
		rjob(1, 10, 2, 0), rjob(2, 5, 2, 0), rjob(3, 3, 1, 4),
	}
	s := runSim(t, 4, 1, EASYPolicy{}, jobs)
	st := sched.New(4)
	for _, c := range s.Completions() {
		st.Add(sched.Alloc{Job: c.Job, Start: c.Start, Procs: c.Procs})
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}
