package cluster

import (
	"repro/internal/rigid"
)

// ConservativePolicy is online conservative backfilling: every queued
// job holds a reservation in a tentative plan built from the running
// set, and a job starts when its planned start equals the current time.
// Unlike EASY, no queued job can ever be delayed by a later submission
// — the §5.2 variant the paper name-checks for hole-filling
// ("conservative backfilling").
//
// The plan is rebuilt from scratch on every decision point, which keeps
// the policy stateless (a pure function of the view) at O(n²) cost per
// event — fine for the queue lengths of the simulations here.
type ConservativePolicy struct{}

// Name implements Policy.
func (ConservativePolicy) Name() string { return "conservative" }

// Decide implements Policy.
func (ConservativePolicy) Decide(v View) []Decision {
	profile := rigid.NewProfile(v.M)
	// Running jobs block their processors until their known end times.
	for _, r := range v.Running {
		if r.End > v.Now {
			if err := profile.Reserve(v.Now, r.End-v.Now, r.Procs); err != nil {
				return nil // inconsistent view; refuse rather than guess
			}
		}
	}
	var out []Decision
	for _, j := range v.Queue {
		p := procsFor(j)
		dur := v.Duration(j, p)
		start, err := profile.EarliestSlot(v.Now, dur, p)
		if err != nil {
			continue // wider than the machine; unreachable via Submit
		}
		if err := profile.Reserve(start, dur, p); err != nil {
			continue
		}
		if start <= v.Now+1e-12 {
			out = append(out, Decision{Job: j, Procs: p})
		}
	}
	return out
}

// compile-time interface checks for all shipped policies.
var (
	_ Policy = FCFSPolicy{}
	_ Policy = EASYPolicy{}
	_ Policy = GreedyFitPolicy{}
	_ Policy = ConservativePolicy{}
)
