package cluster

// ConservativePolicy is online conservative backfilling: every queued
// job holds a reservation in a tentative plan built from the running
// set, and a job starts when its planned start equals the current time.
// Unlike EASY, no queued job can ever be delayed by a later submission
// — the §5.2 variant the paper name-checks for hole-filling
// ("conservative backfilling").
//
// The policy stays stateless (a pure function of the view): the tentative
// plan is carved into a pooled clone of the simulator's persistent
// profile, so the per-decision cost is one memcpy plus one reservation
// per queued job instead of the former from-scratch rebuild over the
// whole running set.
type ConservativePolicy struct{}

// Name implements Policy.
func (ConservativePolicy) Name() string { return "conservative" }

// Decide implements Policy.
func (ConservativePolicy) Decide(v View) []Decision {
	if len(v.Queue) == 0 {
		return nil
	}
	profile, ok := v.planProfile()
	if !ok {
		return nil // inconsistent view; refuse rather than guess
	}
	defer profile.Recycle()
	var out []Decision
	for _, j := range v.Queue {
		p := procsFor(j)
		dur := v.Duration(j, p)
		start, err := profile.EarliestSlot(v.Now, dur, p)
		if err != nil {
			continue // wider than the machine; unreachable via Submit
		}
		if err := profile.Reserve(start, dur, p); err != nil {
			continue
		}
		if start <= v.Now+1e-12 {
			out = append(out, Decision{Job: j, Procs: p})
		}
	}
	return out
}

// compile-time interface checks for all shipped policies.
var (
	_ Policy = FCFSPolicy{}
	_ Policy = EASYPolicy{}
	_ Policy = GreedyFitPolicy{}
	_ Policy = ConservativePolicy{}
)
