package cluster

import (
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestCrashAtFinishInstant: a crash scheduled before the simulation
// starts shares a timestamp with the victim's own finish event. The
// crash event was enqueued first, so it fires first, kills the job and
// requeues it; the stale finish event must no-op (no double completion,
// no phantom free capacity).
func TestCrashAtFinishInstant(t *testing.T) {
	s, err := New(des.New(), 4, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	// Crash enqueued before the job arrives: same fire time as the
	// finish event, smaller sequence number.
	if err := s.DES.At(10, func() {
		if err := s.Crash(4, 20); err != nil {
			t.Errorf("crash: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(rjob(1, 10, 4, 0)); err != nil { // runs [0,10)
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	cs := s.Completions()
	if len(cs) != 1 {
		t.Fatalf("completions = %d, want 1", len(cs))
	}
	if cs[0].End <= 20 {
		t.Fatalf("job finished at %v, want after the repair at 20", cs[0].End)
	}
	fs := s.FaultStats()
	if fs.Requeues != 1 || fs.Crashes != 1 || fs.Repairs != 1 {
		t.Fatalf("fault stats = %+v, want 1 requeue, 1 crash, 1 repair", fs)
	}
	if fs.LostWork != 40 { // 4 procs × 10 s at speed 1
		t.Fatalf("lost work = %v, want 40", fs.LostWork)
	}
	validateCompletions(t, cs, 4)
}

// TestCrashDuringDrain: capacity disappears while a deep queue is still
// draining. Every job must complete anyway and the schedule must stay
// feasible against the shrunken width.
func TestCrashDuringDrain(t *testing.T) {
	s, err := New(des.New(), 4, 1, EASYPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*workload.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, rjob(i+1, 10, 2, 0)) // 6 sequential waves of 2
	}
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DES.At(15, func() {
		if err := s.Crash(2, 35); err != nil {
			t.Errorf("crash: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	cs := s.Completions()
	if len(cs) != len(jobs) {
		t.Fatalf("completions = %d, want %d", len(cs), len(jobs))
	}
	validateCompletions(t, cs, 4)
	// During [15, 35) only 2 processors were up: no two jobs may overlap
	// inside the window.
	for i, a := range cs {
		for _, b := range cs[i+1:] {
			ai := a.Start < 35 && a.End > 15
			bi := b.Start < 35 && b.End > 15
			if ai && bi && a.Start < b.End && b.Start < a.End {
				t.Fatalf("jobs %d and %d overlap inside the outage window", a.Job.ID, b.Job.ID)
			}
		}
	}
}

// TestRepairWithEmptyQueue: a crash/repair cycle on an idle cluster must
// leave the DES drainable and the counters exact.
func TestRepairWithEmptyQueue(t *testing.T) {
	s, err := New(des.New(), 8, 1, EASYPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(rjob(1, 5, 2, 0)); err != nil { // done at 5
		t.Fatal(err)
	}
	if err := s.DES.At(10, func() {
		if err := s.Crash(3, 40); err != nil {
			t.Errorf("crash: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	fs := s.FaultStats()
	if fs.Crashes != 1 || fs.Repairs != 1 || fs.Requeues != 0 {
		t.Fatalf("fault stats = %+v, want 1 crash, 1 repair, 0 requeues", fs)
	}
	if fs.DownProcSeconds != 3*30 {
		t.Fatalf("down proc-seconds = %v, want 90", fs.DownProcSeconds)
	}
	if s.Avail() != 8 {
		t.Fatalf("avail = %d after repair, want 8", s.Avail())
	}
}

// TestFullOutageNeverDeadlocks: a 100%-capacity outage mid-run requeues
// everything; the cluster must come back and finish the workload rather
// than wedge (the repair reschedule path).
func TestFullOutageNeverDeadlocks(t *testing.T) {
	s, err := New(des.New(), 4, 1, EASYPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*workload.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, rjob(i+1, 20, 2, float64(i)))
	}
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DES.At(10, func() {
		if err := s.Crash(4, 50); err != nil { // whole cluster down
			t.Errorf("crash: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	cs := s.Completions()
	if len(cs) != len(jobs) {
		t.Fatalf("completions = %d, want %d", len(cs), len(jobs))
	}
	for _, c := range cs {
		if c.Start >= 10 && c.Start < 50 {
			t.Fatalf("job %d started at %v inside the full outage", c.Job.ID, c.Start)
		}
	}
	if s.Avail() != 4 {
		t.Fatalf("avail = %d after repair, want 4", s.Avail())
	}
	validateCompletions(t, cs, 4)
}

// TestSetAvailabilityTrace: a piecewise trace shrinks then restores the
// width; backfill plans must tolerate the loss and the downtime integral
// must match the trace exactly.
func TestSetAvailabilityTrace(t *testing.T) {
	s, err := New(des.New(), 8, 1, EASYPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Submit(rjob(i+1, 10, 4, 0)); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.DES.At(5, func() { s.SetAvailability(4) })
	_ = s.DES.At(25, func() { s.SetAvailability(8) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	cs := s.Completions()
	if len(cs) != 8 {
		t.Fatalf("completions = %d, want 8", len(cs))
	}
	validateCompletions(t, cs, 8)
	fs := s.FaultStats()
	if fs.DownProcSeconds != 4*20 {
		t.Fatalf("down proc-seconds = %v, want 80", fs.DownProcSeconds)
	}
}

// TestCrashValidation: malformed crash calls must be rejected.
func TestCrashValidation(t *testing.T) {
	s, err := New(des.New(), 4, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(0, 10); err == nil {
		t.Fatal("crash of 0 procs accepted")
	}
	if err := s.Crash(2, 0); err == nil {
		t.Fatal("crash with repair time in the past accepted")
	}
}

// beKillOrder runs one loaded best-effort scenario and records the
// eviction order (bag index and resubmit generation of each victim).
func beKillOrder(t *testing.T, kill KillPolicy, seed uint64) []string {
	t.Helper()
	s, err := New(des.New(), 8, 1, EASYPolicy{}, kill)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	s.OnBEKilled = func(bt BETask) {
		order = append(order, fmt.Sprintf("%d.%d", bt.Index, bt.Resubmits))
		s.SubmitBestEffort(bt) // drift back, so tasks can die repeatedly
	}
	rng := stats.NewRNG(seed)
	for k := 0; k < 40; k++ {
		dur := rng.Range(20, 200)
		if k%4 == 0 {
			dur = 50 // deliberate ties: equal remaining work across victims
		}
		s.SubmitBestEffort(BETask{BagID: 0, Index: k, Duration: dur})
	}
	for i := 0; i < 12; i++ {
		if err := s.Submit(rjob(i+1, 30, 4, float64(10*i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DES.At(35, func() {
		if err := s.Crash(4, 90); err != nil {
			t.Errorf("crash: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) == 0 {
		t.Fatal("scenario produced no best-effort kills")
	}
	return order
}

// TestKillPolicyDeterminism: for a fixed seed, the best-effort eviction
// order — including ties in remaining work — must be bit-identical
// across runs for both kill policies. This is the property the parallel
// experiment runner and the golden tables rely on.
func TestKillPolicyDeterminism(t *testing.T) {
	policies := map[string]KillPolicy{
		"newest":            KillNewest,
		"largest-remaining": KillLargestRemaining,
	}
	for name, kp := range policies {
		t.Run(name, func(t *testing.T) {
			first := beKillOrder(t, kp, 7)
			for run := 0; run < 3; run++ {
				again := beKillOrder(t, kp, 7)
				if len(again) != len(first) {
					t.Fatalf("run %d: %d kills, want %d", run, len(again), len(first))
				}
				for i := range first {
					if first[i] != again[i] {
						t.Fatalf("run %d: kill %d is %s, want %s", run, i, again[i], first[i])
					}
				}
			}
		})
	}
}

// TestRedistributedCounting: a task killed and resubmitted counts one
// redistribution per resubmission.
func TestRedistributedCounting(t *testing.T) {
	s, err := New(des.New(), 4, 1, EASYPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	s.OnBEKilled = func(bt BETask) { s.SubmitBestEffort(bt) }
	s.SubmitBestEffort(BETask{BagID: 0, Index: 0, Duration: 100})
	if err := s.Submit(rjob(1, 10, 4, 5)); err != nil { // evicts the task at t=5
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.BestEffort()
	if st.Killed != 1 || st.Redistributed != 1 || st.Completed != 1 {
		t.Fatalf("best-effort stats = %+v, want 1 killed, 1 redistributed, 1 completed", st)
	}
}
