package cluster

import (
	"sync"
	"testing"

	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/workload"
)

func snapJob(id int, dur float64, procs int, release float64) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: release,
		SeqTime: dur * float64(procs), MinProcs: procs, MaxProcs: procs,
		Model: workload.Linear{},
	}
}

// TestLoadSnapshotConsistency checks the published snapshot against the
// owner-side accessors at quiescent points.
func TestLoadSnapshotConsistency(t *testing.T) {
	sim, err := New(des.New(), 8, 1, FCFSPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	ld := sim.LoadSnapshot()
	if ld.M != 8 || ld.Speed != 1 || ld.Free != 8 || ld.Queued != 0 {
		t.Fatalf("fresh snapshot %+v", ld)
	}
	sim.EnablePolling()
	// Two jobs: one runs (4 procs), one waits behind it (8 procs).
	if err := sim.Submit(snapJob(1, 10, 4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(snapJob(2, 5, 8, 0)); err != nil {
		t.Fatal(err)
	}
	for _, task := range []BETask{{BagID: 0, Index: 0, Duration: 3}, {BagID: 0, Index: 1, Duration: 3}} {
		sim.SubmitBestEffort(task)
	}
	if err := sim.DES.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	ld = sim.LoadSnapshot()
	if ld.Free != sim.Free() || ld.Queued != sim.QueueLength() ||
		ld.BEQueued != sim.BestEffortQueueLength() || ld.BEActive != sim.BestEffortActive() {
		t.Fatalf("snapshot %+v diverges from accessors (free=%d queued=%d beq=%d bea=%d)",
			ld, sim.Free(), sim.QueueLength(), sim.BestEffortQueueLength(), sim.BestEffortActive())
	}
	if got, want := ld.QueuedWork, sim.QueuedWork(); got != want {
		t.Fatalf("snapshot queued work %v, accessor %v", got, want)
	}
	if ld.NormLoad() != want8(ld.QueuedWork) {
		t.Fatalf("norm load %v", ld.NormLoad())
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	ld = sim.LoadSnapshot()
	if ld.Free != 8 || ld.Queued != 0 || ld.QueuedWork != 0 || ld.BEActive != 0 {
		t.Fatalf("drained snapshot %+v", ld)
	}
}

func want8(w float64) float64 { return w / 8 }

// TestLoadSnapshotRaceSafe polls the snapshot from concurrent readers
// while the simulation runs — the broker's polling pattern. Run with
// -race: any unsynchronized access to simulator state would trip it.
func TestLoadSnapshotRaceSafe(t *testing.T) {
	sim, err := New(des.New(), 16, 1, EASYPolicy{}, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	sim.EnablePolling()
	rng := stats.NewRNG(11)
	clock := 0.0
	for i := 0; i < 300; i++ {
		clock += rng.Exp(0.5)
		if err := sim.Submit(snapJob(i, rng.Range(1, 20), rng.IntRange(1, 8), clock)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		sim.SubmitBestEffort(BETask{BagID: 0, Index: i, Duration: rng.Range(1, 5)})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ld := sim.LoadSnapshot()
				if ld.Free < 0 || ld.Free > ld.M || ld.Queued < 0 || ld.BEActive > ld.M {
					t.Errorf("inconsistent snapshot %+v", ld)
					return
				}
			}
		}()
	}
	if err := sim.Run(); err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
}
