// Package cluster is the event-driven single-cluster simulator: local
// jobs arrive online into a submission queue, a pluggable policy decides
// starts, and — following the CiGri design of §5.2 — best-effort grid
// tasks fill the remaining holes and are killed (and handed back to the
// grid) whenever a local job needs their processors. Local jobs can never
// be delayed by best-effort work.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/rigid"
	"repro/internal/workload"
)

// ErrDrained rejects submissions into a simulation whose event stream has
// already drained: the DES clock cannot accept arrivals once Run has
// returned (previously such submissions were silently queued into events
// that would never fire, or double-ran the heap). Check with errors.Is.
var ErrDrained = errors.New("cluster: simulation drained; no further submissions accepted")

// Decision is one start decision of a policy: run Job on Procs
// processors now.
type Decision struct {
	Job   *workload.Job
	Procs int
}

// RunningInfo describes a running local job to policies (for shadow-time
// computations).
type RunningInfo struct {
	End   float64
	Procs int
}

// View is the state snapshot handed to a policy. Avail counts free
// processors plus processors held by evictable best-effort tasks: the
// §5.2 contract is that local jobs behave as if grid jobs did not exist.
//
// Queue and Running alias simulator-owned scratch buffers that are
// recycled between decision points: policies may read them freely during
// Decide but must not retain them afterwards.
type View struct {
	Now     float64
	M       int
	Avail   int
	Speed   float64
	Queue   []*workload.Job // submission order
	Running []RunningInfo   // local jobs only
	// Profile, when set, is the cluster's persistent availability
	// profile: every running local job holds a reservation [Now, End),
	// maintained incrementally across events. Policies must treat it as
	// read-only — what-if probing goes through a (pooled) Clone. Views
	// built by hand may leave it nil; policies then derive the same
	// information from Running.
	Profile *rigid.Profile
}

// planProfile returns a scratch profile seeded with the running set: a
// pooled clone of the persistent profile when present, else a fresh one
// rebuilt from Running. The caller owns the result and should Recycle it
// when done. ok is false when Running is inconsistent (overcommitted).
func (v View) planProfile() (p *rigid.Profile, ok bool) {
	if v.Profile != nil {
		return v.Profile.Clone(), true
	}
	p = rigid.NewProfile(v.M)
	for _, r := range v.Running {
		if r.End <= v.Now {
			continue
		}
		if err := p.Reserve(v.Now, r.End-v.Now, r.Procs); err != nil {
			return nil, false
		}
	}
	return p, true
}

// Duration returns the execution time of job j on p processors on this
// cluster (profile time divided by the cluster speed factor).
func (v View) Duration(j *workload.Job, p int) float64 {
	return j.TimeOn(p) / v.Speed
}

// Policy decides which queued jobs start now. Implementations must only
// start jobs that fit in v.Avail and must not start a job twice.
type Policy interface {
	Name() string
	Decide(v View) []Decision
}

// KillPolicy selects which best-effort tasks die when a local job needs
// processors (§5.2: "the latter will be killed").
type KillPolicy int

const (
	// KillNewest evicts the most recently started tasks first (least
	// sunk work — the CiGri-friendly default).
	KillNewest KillPolicy = iota
	// KillLargestRemaining evicts tasks with the most remaining work
	// first (frees capacity for longest, maximizes wasted work — the
	// adversarial ablation).
	KillLargestRemaining
)

// BETask is one elementary run of a multi-parametric grid campaign.
type BETask struct {
	BagID    int
	Index    int
	Duration float64 // at reference speed 1.0
	// Resubmits counts how many times this task has been killed and
	// handed back for redistribution (killOneBE increments it before the
	// OnBEKilled handoff, so a task arriving with Resubmits > 0 is a
	// redistribution — the BEStats.Redistributed signal).
	Resubmits int
}

// LoadInfo is a point-in-time load snapshot of one cluster, published
// atomically at event granularity so external observers (the grid broker
// routing submissions across a fleet) can poll it from any goroutine
// without going through the simulator's owner.
type LoadInfo struct {
	// M and Speed are the static cluster dimensions.
	M     int
	Speed float64
	// Free is the physically free processor count.
	Free int
	// Queued and QueuedWork describe the waiting local jobs (work at
	// reference speed, the §5.2 load-balance signal).
	Queued     int
	QueuedWork float64
	// BEQueued and BEActive count waiting / running best-effort tasks.
	BEQueued, BEActive int
}

// NormLoad returns the normalized queued load: time to drain the waiting
// work on the full cluster (QueuedWork / (M × Speed)).
func (l LoadInfo) NormLoad() float64 {
	if l.M <= 0 || l.Speed <= 0 {
		return 0
	}
	return l.QueuedWork / (float64(l.M) * l.Speed)
}

// BEStats aggregates the best-effort activity of one cluster. It is an
// alias of the metrics type so Sim.Report can carry it without copying
// field by field.
type BEStats = metrics.BestEffortStats

// FaultStats aggregates the fault-injection activity of one cluster
// (alias of the metrics type, see BEStats).
type FaultStats = metrics.FaultStats

// availHorizon is the finite "forever" used for open-ended capacity
// reservations (SetAvailability has no known repair time): far beyond
// any simulation horizon but still a normal float, so the resource
// profile stays free of infinities.
const availHorizon = 1e15

// outage is one transient capacity loss with a known repair time.
type outage struct {
	procs int
	until float64
}

type beRunning struct {
	task  BETask
	start float64
	end   float64
	seq   uint64
	// event generation guard: a killed task's finish event must not fire.
	cancelled bool
	// fire is the pre-built finish callback, created once per pooled
	// instance so refilling a hole costs no closure allocation.
	fire func()
}

// Sim simulates one cluster.
type Sim struct {
	DES    *des.Simulator
	M      int
	Speed  float64
	policy Policy
	kill   KillPolicy

	queue []*workload.Job
	// queuedWork tracks the queue's total minimal work incrementally (the
	// LoadSnapshot signal; QueuedWork() recomputes it exactly).
	queuedWork float64
	localProcs int
	running    []*localRunning
	// acc streams every completion through the one-pass §3 criteria
	// report; retain decides which records are kept (full history by
	// default — goldens, tests and the offline tables read it — or a
	// bounded/empty store for archive replays, see SetRetention).
	acc    *metrics.Accumulator
	retain metrics.Retention

	// Lazy-admission state (Stream): src yields jobs in release order,
	// pending is the head waiting for its release event, srcErr records
	// a mid-stream failure surfaced by Run.
	src      workload.Source
	pending  *workload.Job
	srcErr   error
	arriveFn func()

	// profile is the persistent availability timeline of the local jobs:
	// starting a job reserves [now, end) and the reservation expires on
	// its own, so no work is needed at finish beyond trimming history.
	// Policies receive it through View.Profile instead of rebuilding an
	// equivalent profile from the running set at every decision point.
	profile *rigid.Profile
	// viewQueue / viewRunning are the scratch buffers behind View.Queue
	// and View.Running, reused across reschedules.
	viewQueue   []*workload.Job
	viewRunning []RunningInfo
	// reschedulePending coalesces best-effort submission bursts into one
	// zero-delay reschedule event.
	reschedulePending bool

	beQueue   []BETask
	beActive  []*beRunning
	beFree    []*beRunning // recycled after their finish event has fired
	beSeq     uint64
	beStats   BEStats
	submitted int
	drained   bool

	// Fault-injection state. avail is the number of currently working
	// processors (M while healthy — the only cost on the healthy hot
	// path is reading this field instead of the M constant); outages are
	// the active transient capacity losses (known repair times) and
	// traceDown the open-ended capacity loss set by SetAvailability.
	// availSince anchors the DownProcSeconds integration.
	avail      int
	traceDown  int
	outages    []*outage
	availSince float64
	faultStats FaultStats

	// load is the atomically published LoadInfo snapshot behind
	// LoadSnapshot, refreshed after every event that changes the queue or
	// the processor occupation. Publication is gated on poll so offline
	// simulations (no external observers) pay nothing per event.
	load atomic.Pointer[LoadInfo]
	poll bool

	// OnBEKilled, when set, receives killed tasks (the grid server
	// resubmits them). OnBEDone receives completed tasks.
	OnBEKilled func(t BETask)
	OnBEDone   func(t BETask)
	// OnIdle, when set, is invoked after every reschedule with the
	// number of free processors (the grid server refills holes).
	OnIdle func(free int)
	// OnLocalStart, when set, observes every local-job start (the gridd
	// service tracks job lifecycles through it).
	OnLocalStart func(j *workload.Job, procs int, now float64)
	// OnLocalDone, when set, observes every local-job completion in
	// event order.
	OnLocalDone func(c metrics.Completion)
	// OnLocalSubmit, when set, observes every local-job admission into
	// the waiting queue (direct submission, streamed arrival, or
	// migration injection). Crash-kill requeues are reported through
	// OnLocalKilled instead, so submit observers count each job once.
	OnLocalSubmit func(j *workload.Job, now float64)
	// OnLocalKilled, when set, observes a running local job evicted by
	// a capacity loss; the job is requeued at the tail of the waiting
	// queue with its release date intact.
	OnLocalKilled func(j *workload.Job, procs int, now float64)
	// OnCrash and OnRepair, when set, observe capacity-loss and
	// capacity-return events with the processor count taken/returned.
	OnCrash  func(procs int, now float64)
	OnRepair func(procs int, now float64)
}

type localRunning struct {
	job   *workload.Job
	procs int
	start float64
	end   float64
	// cancelled guards the pending finish event of a job killed by a
	// crash: the event still fires but must not complete the job.
	cancelled bool
}

// New creates a cluster simulator. speed scales all execution times
// (CIMENT clusters differ in processor generation); policy decides local
// starts.
func New(sim *des.Simulator, m int, speed float64, policy Policy, kill KillPolicy) (*Sim, error) {
	if m <= 0 {
		return nil, fmt.Errorf("cluster: %d processors", m)
	}
	if speed <= 0 {
		return nil, fmt.Errorf("cluster: speed %v", speed)
	}
	if policy == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	if sim == nil {
		sim = des.New()
	}
	s := &Sim{
		DES: sim, M: m, Speed: speed, policy: policy, kill: kill,
		profile: rigid.NewProfile(m),
		acc:     metrics.NewAccumulator(m),
		retain:  metrics.NewFullRetention(),
		avail:   m,
	}
	s.forcePublishLoad()
	return s, nil
}

// publishLoad refreshes the atomic LoadSnapshot (loop/owner goroutine
// only; readers are lock-free). A no-op until EnablePolling.
func (s *Sim) publishLoad() {
	if !s.poll {
		return
	}
	s.forcePublishLoad()
}

func (s *Sim) forcePublishLoad() {
	s.load.Store(&LoadInfo{
		M: s.M, Speed: s.Speed, Free: s.free(),
		Queued: len(s.queue), QueuedWork: s.queuedWork,
		BEQueued: len(s.beQueue), BEActive: len(s.beActive),
	})
}

// EnablePolling turns on per-event LoadSnapshot publication (the gridd
// engines enable it; batch simulations skip the per-event cost). Must be
// called before the simulation starts running — it flips owner-side
// state.
func (s *Sim) EnablePolling() {
	s.poll = true
	s.forcePublishLoad()
}

// LoadSnapshot returns the latest published load snapshot. Unlike every
// other accessor it is safe to call from any goroutine while the
// simulation runs elsewhere: the snapshot is replaced atomically at
// event granularity, so readers see a consistent (if slightly stale)
// view. Without EnablePolling it reports the construction-time state.
func (s *Sim) LoadSnapshot() LoadInfo { return *s.load.Load() }

// admit appends one job to the waiting queue from event context. All
// four admission paths (Submit, SubmitAll, streamed arrival, InjectNow)
// funnel through here so OnLocalSubmit observers see every arrival.
func (s *Sim) admit(j *workload.Job) {
	s.queue = append(s.queue, j)
	w, _ := j.MinWork(s.M)
	s.queuedWork += w
	if s.OnLocalSubmit != nil {
		s.OnLocalSubmit(j, s.DES.Now())
	}
	s.reschedule()
}

// Submit registers a local job: it arrives at its release date.
func (s *Sim) Submit(j *workload.Job) error {
	if s.drained {
		return ErrDrained
	}
	if j.MinProcs > s.M {
		return fmt.Errorf("cluster: job %d needs %d > %d procs", j.ID, j.MinProcs, s.M)
	}
	s.submitted++
	return s.DES.At(math.Max(j.Release, s.DES.Now()), func() {
		s.admit(j)
	})
}

// SubmitAll submits a batch of local jobs in one heap operation
// (des.AtBatch): arrival events get consecutive sequence numbers in
// slice order, so the simulation is indistinguishable from a Submit
// loop — only the insertion cost changes. The whole batch is validated
// first; on error nothing was submitted.
func (s *Sim) SubmitAll(jobs []*workload.Job) error {
	if s.drained {
		return ErrDrained
	}
	for _, j := range jobs {
		if j.MinProcs > s.M {
			return fmt.Errorf("cluster: job %d needs %d > %d procs", j.ID, j.MinProcs, s.M)
		}
	}
	now := s.DES.Now()
	evs := make([]des.Event, len(jobs))
	for i, j := range jobs {
		j := j
		evs[i] = des.Event{Time: math.Max(j.Release, now), Fn: func() {
			s.admit(j)
		}}
	}
	if err := s.DES.AtBatch(evs); err != nil {
		return err
	}
	s.submitted += len(jobs)
	return nil
}

// Stream attaches a pull source for lazy admission: instead of one
// pre-scheduled arrival event per job, the simulator keeps exactly one
// pending arrival — the stream head — and pulls the next job when that
// event fires, so peak memory is O(active jobs) regardless of stream
// length. Jobs are admitted at max(Release, now); sources should yield
// non-decreasing releases (all workload generators and sorted SWF
// archives do), out-of-order jobs are admitted as soon as they surface.
// Arrival groups sharing a release admit inside a single event. If the
// source implements Err() error, a mid-stream failure aborts admission
// and surfaces from Run.
func (s *Sim) Stream(src workload.Source) error {
	if s.drained {
		return ErrDrained
	}
	if src == nil {
		return fmt.Errorf("cluster: nil source")
	}
	if s.src != nil || s.pending != nil {
		return fmt.Errorf("cluster: a source is already streaming")
	}
	if s.arriveFn == nil {
		s.arriveFn = s.arrive
	}
	s.src = src
	s.pull()
	return s.scheduleArrival()
}

// pull advances the stream head into pending (or ends the stream).
func (s *Sim) pull() {
	j, ok := s.src.Next()
	if !ok {
		if es, hasErr := s.src.(interface{ Err() error }); hasErr {
			if err := es.Err(); err != nil && s.srcErr == nil {
				s.srcErr = err
			}
		}
		s.src, s.pending = nil, nil
		return
	}
	if j.MinProcs > s.M {
		if s.srcErr == nil {
			s.srcErr = fmt.Errorf("cluster: job %d needs %d > %d procs", j.ID, j.MinProcs, s.M)
		}
		s.src, s.pending = nil, nil
		return
	}
	s.pending = j
}

// scheduleArrival schedules the single arrival event for the stream
// head (no-op once the source is exhausted).
func (s *Sim) scheduleArrival() error {
	if s.pending == nil {
		return s.srcErr
	}
	return s.DES.At(math.Max(s.pending.Release, s.DES.Now()), s.arriveFn)
}

// arrive admits the stream head plus every follower already released —
// a bursty arrival group costs one event, not one per job — then
// re-arms the next arrival.
func (s *Sim) arrive() {
	now := s.DES.Now()
	for s.pending != nil && s.pending.Release <= now {
		j := s.pending
		s.submitted++
		s.admit(j)
		s.pull()
	}
	_ = s.scheduleArrival()
}

// SubmitBestEffort enqueues a grid task; it will run in scheduling holes.
func (s *Sim) SubmitBestEffort(t BETask) {
	if t.Resubmits > 0 {
		s.beStats.Redistributed++
	}
	s.beQueue = append(s.beQueue, t)
	s.publishLoad()
	// Defer the fill to an immediate event so that submission during
	// another event keeps deterministic ordering. Bursts of submissions
	// coalesce into a single pending reschedule: one fill pass over the
	// queue is equivalent to one pass per task and keeps the event heap
	// from ballooning with no-op wakeups.
	if s.reschedulePending {
		return
	}
	s.reschedulePending = true
	_ = s.DES.After(0, func() {
		s.reschedulePending = false
		s.reschedule()
	})
}

// free returns physically free working processors.
func (s *Sim) free() int {
	return s.avail - s.localProcs - len(s.beActive)
}

// reschedule runs the policy, starts its decisions (evicting best-effort
// tasks as needed), then refills holes with best-effort tasks.
func (s *Sim) reschedule() {
	now := s.DES.Now()
	s.profile.TrimBefore(now)
	s.viewQueue = append(s.viewQueue[:0], s.queue...)
	s.viewRunning = s.viewRunning[:0]
	for _, r := range s.running {
		s.viewRunning = append(s.viewRunning, RunningInfo{End: r.end, Procs: r.procs})
	}
	view := View{
		Now: now, M: s.M, Avail: s.avail - s.localProcs, Speed: s.Speed,
		Queue: s.viewQueue, Running: s.viewRunning, Profile: s.profile,
	}
	decisions := s.policy.Decide(view)
	for _, d := range decisions {
		s.start(d, now)
	}
	s.fillBestEffort(now)
	s.publishLoad()
	if s.OnIdle != nil {
		s.OnIdle(s.free())
	}
}

func (s *Sim) start(d Decision, now float64) {
	// Remove from queue; ignore unknown jobs (policy bug guard).
	idx := -1
	for i, j := range s.queue {
		if j.ID == d.Job.ID {
			idx = i
			break
		}
	}
	if idx < 0 || d.Procs < d.Job.MinProcs || d.Procs > d.Job.MaxProcs {
		return
	}
	if d.Procs > s.avail-s.localProcs {
		return // policy overcommitted (or capacity just crashed); refuse
	}
	// Evict best-effort tasks if physically needed.
	for s.free() < d.Procs {
		if !s.killOneBE(now) {
			return // cannot happen: free+BE >= M-localProcs >= d.Procs
		}
	}
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	w, _ := d.Job.MinWork(s.M)
	s.queuedWork -= w
	if s.queuedWork < 0 {
		s.queuedWork = 0 // float drift guard
	}
	dur := d.Job.TimeOn(d.Procs) / s.Speed
	if err := s.profile.Reserve(now, dur, d.Procs); err != nil {
		// Cannot happen while profile and running set agree (the Procs
		// guard above bounds the demand by the profile's minimum
		// availability); resync defensively rather than diverge.
		s.rebuildProfile(now)
		_ = s.profile.Reserve(now, dur, d.Procs)
	}
	run := &localRunning{job: d.Job, procs: d.Procs, start: now, end: now + dur}
	s.running = append(s.running, run)
	s.localProcs += d.Procs
	if s.OnLocalStart != nil {
		s.OnLocalStart(run.job, run.procs, now)
	}
	_ = s.DES.At(run.end, func() {
		s.finish(run)
	})
}

func (s *Sim) finish(run *localRunning) {
	if run.cancelled {
		return // killed by a crash; the job was requeued
	}
	for i, r := range s.running {
		if r == run {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.localProcs -= run.procs
	c := metrics.Completion{
		Job: run.job, Start: run.start, End: run.end, Procs: run.procs,
	}
	s.acc.Add(c)
	s.retain.Add(c)
	if s.OnLocalDone != nil {
		s.OnLocalDone(c)
	}
	s.reschedule()
}

// rebuildProfile reconstructs the persistent profile from the running
// set and the active capacity losses (fault events call it; otherwise a
// defensive resync, never needed while the incremental updates and the
// running list agree — the cross-check is a test invariant). Outages
// with known repair times are carved out only until that time, so a
// backfill plan sees the capacity come back and can reserve behind it.
func (s *Sim) rebuildProfile(now float64) {
	s.profile = rigid.NewProfile(s.M)
	s.profile.TrimBefore(now)
	remaining := s.M - s.avail
	for _, o := range s.outages {
		if remaining <= 0 {
			break
		}
		p := o.procs
		if p > remaining {
			p = remaining
		}
		if o.until > now && p > 0 {
			_ = s.profile.Reserve(now, o.until-now, p)
			remaining -= p
		}
	}
	if remaining > 0 {
		// Open-ended loss (SetAvailability): no known repair time.
		_ = s.profile.Reserve(now, availHorizon, remaining)
	}
	for _, r := range s.running {
		if r.end > now {
			_ = s.profile.Reserve(now, r.end-now, r.procs)
		}
	}
}

// killOneBE evicts one best-effort task per the kill policy. Returns
// false when none is running.
func (s *Sim) killOneBE(now float64) bool {
	if len(s.beActive) == 0 {
		return false
	}
	victim := 0
	switch s.kill {
	case KillLargestRemaining:
		best := -1.0
		for i, b := range s.beActive {
			if rem := b.end - now; rem > best {
				best = rem
				victim = i
			}
		}
	default: // KillNewest
		for i, b := range s.beActive {
			if b.start > s.beActive[victim].start ||
				(b.start == s.beActive[victim].start && b.seq > s.beActive[victim].seq) {
				victim = i
			}
		}
	}
	b := s.beActive[victim]
	s.beActive = append(s.beActive[:victim], s.beActive[victim+1:]...)
	b.cancelled = true
	s.beStats.Killed++
	s.beStats.WastedWork += (now - b.start) * s.Speed
	b.task.Resubmits++
	if s.OnBEKilled != nil {
		s.OnBEKilled(b.task)
	}
	return true
}

// killOneLocal evicts the most recently started local job (least sunk
// work, ties broken by the larger job ID — deterministic) and requeues
// it at the tail of the submission queue with its release date intact,
// so the §3 flow/stretch criteria absorb the wait-time penalty. Returns
// false when nothing is running.
func (s *Sim) killOneLocal(now float64) bool {
	if len(s.running) == 0 {
		return false
	}
	victim := 0
	for i, r := range s.running {
		v := s.running[victim]
		if r.start > v.start || (r.start == v.start && r.job.ID > v.job.ID) {
			victim = i
		}
	}
	run := s.running[victim]
	s.running = append(s.running[:victim], s.running[victim+1:]...)
	run.cancelled = true
	s.localProcs -= run.procs
	s.faultStats.Requeues++
	s.faultStats.LostWork += float64(run.procs) * (now - run.start) * s.Speed
	s.queue = append(s.queue, run.job)
	w, _ := run.job.MinWork(s.M)
	s.queuedWork += w
	if s.OnLocalKilled != nil {
		s.OnLocalKilled(run.job, run.procs, now)
	}
	return true
}

// Crash takes procs working processors offline until the given virtual
// time (the repair time is known at crash time — the fault engine draws
// it from the MTTR distribution when the crash fires). Best-effort
// tasks are evicted first (they drift back through OnBEKilled, the
// §5.2 central-stock path); if capacity is still overcommitted, local
// jobs are killed newest-first and requeued. Owner-goroutine only, like
// every mutating call.
func (s *Sim) Crash(procs int, until float64) error {
	now := s.DES.Now()
	if procs <= 0 {
		return fmt.Errorf("cluster: crash of %d procs", procs)
	}
	if math.IsNaN(until) || until <= now {
		return fmt.Errorf("cluster: crash repair time %v not after now %v", until, now)
	}
	s.faultStats.Crashes++
	if procs > s.avail {
		procs = s.avail // cannot take down more than is up
	}
	if procs <= 0 {
		return nil // already fully down
	}
	o := &outage{procs: procs, until: until}
	s.outages = append(s.outages, o)
	if s.OnCrash != nil {
		s.OnCrash(procs, now)
	}
	s.applyAvail(now)
	return s.DES.At(until, func() { s.repair(o) })
}

// repair returns one outage's capacity to service.
func (s *Sim) repair(o *outage) {
	for i, x := range s.outages {
		if x == o {
			s.outages = append(s.outages[:i], s.outages[i+1:]...)
			break
		}
	}
	s.faultStats.Repairs++
	if s.OnRepair != nil {
		s.OnRepair(o.procs, s.DES.Now())
	}
	s.applyAvail(s.DES.Now())
}

// SetAvailability pins the number of working processors to avail
// (clamped to [0, M]) with no scheduled repair — the hook behind
// time-varying availability traces, where the fault engine issues one
// call per trace step. Shrinking evicts best-effort tasks first, then
// requeues local jobs; growing triggers an immediate reschedule.
func (s *Sim) SetAvailability(avail int) {
	if avail < 0 {
		avail = 0
	}
	if avail > s.M {
		avail = s.M
	}
	s.traceDown = s.M - avail
	s.applyAvail(s.DES.Now())
}

// Avail returns the current number of working processors (M unless
// faults are active).
func (s *Sim) Avail() int { return s.avail }

// applyAvail recomputes availability from the active capacity losses
// and reconciles the simulation with it: integrate downtime, evict
// overcommitted work, rebuild the profile with the losses carved out,
// and reschedule.
func (s *Sim) applyAvail(now float64) {
	down := s.traceDown
	for _, o := range s.outages {
		down += o.procs
	}
	if down > s.M {
		down = s.M
	}
	a := s.M - down
	if a == s.avail {
		return
	}
	s.faultStats.DownProcSeconds += float64(s.M-s.avail) * (now - s.availSince)
	s.availSince = now
	s.avail = a
	for s.free() < 0 && s.killOneBE(now) {
	}
	for s.free() < 0 && s.killOneLocal(now) {
	}
	s.rebuildProfile(now)
	s.reschedule()
}

// FaultStats returns the fault counters with the downtime integral
// extended to the current virtual time.
func (s *Sim) FaultStats() FaultStats {
	fs := s.faultStats
	if s.avail < s.M {
		fs.DownProcSeconds += float64(s.M-s.avail) * (s.DES.Now() - s.availSince)
	}
	return fs
}

func (s *Sim) fillBestEffort(now float64) {
	for s.free() > 0 && len(s.beQueue) > 0 {
		t := s.beQueue[0]
		s.beQueue = s.beQueue[1:]
		var b *beRunning
		if n := len(s.beFree); n > 0 {
			b = s.beFree[n-1]
			s.beFree = s.beFree[:n-1]
		} else {
			b = &beRunning{}
			bb := b
			b.fire = func() { s.finishBE(bb) }
		}
		b.task, b.start, b.end = t, now, now+t.Duration/s.Speed
		b.seq, b.cancelled = s.beSeq, false
		s.beSeq++
		s.beActive = append(s.beActive, b)
		_ = s.DES.At(b.end, b.fire)
	}
}

// finishBE fires for every started task, including killed ones (whose
// work was already accounted by killOneBE); a task's beRunning instance
// is recycled here, once its pending finish event cannot fire again.
func (s *Sim) finishBE(b *beRunning) {
	if b.cancelled {
		s.beFree = append(s.beFree, b)
		return
	}
	for i, x := range s.beActive {
		if x == b {
			s.beActive = append(s.beActive[:i], s.beActive[i+1:]...)
			break
		}
	}
	task := b.task
	s.beFree = append(s.beFree, b)
	s.beStats.Completed++
	s.beStats.DoneWork += task.Duration
	if s.OnBEDone != nil {
		s.OnBEDone(task)
	}
	s.reschedule()
}

// Run drives the simulation to completion (all submitted local jobs done
// and the event queue drained). Afterwards the simulation is drained:
// further Submit/InjectNow calls return ErrDrained.
func (s *Sim) Run() error {
	err := s.DES.Run()
	s.drained = true
	if err != nil {
		return err
	}
	if s.srcErr != nil {
		return s.srcErr
	}
	if s.acc.N() != s.submitted {
		return fmt.Errorf("cluster: %d of %d local jobs completed (queue starved: %d waiting)",
			s.acc.N(), s.submitted, len(s.queue))
	}
	return nil
}

// Drain marks the simulation as no longer accepting submissions without
// running it (the gridd service drives the DES clock itself and calls
// this on graceful shutdown before fast-forwarding the remaining events).
func (s *Sim) Drain() { s.drained = true }

// Drained reports whether the simulation still accepts submissions.
func (s *Sim) Drained() bool { return s.drained }

// Completions returns the retained local-job completion records. Under
// the default full retention that is every completion; bounded stores
// (SetRetention) return only what they kept — use Report for the exact
// aggregate criteria, which never depend on retention.
func (s *Sim) Completions() []metrics.Completion {
	return s.retain.Completions()
}

// CompletionsView returns the live completion records without copying
// when the retention store supports it (the default full store does).
// Owner-goroutine only, read-only, and not to be retained across events
// — use Completions for a stable snapshot. It exists so per-scrape
// metric reports need not copy an ever-growing slice.
func (s *Sim) CompletionsView() []metrics.Completion {
	if v, ok := s.retain.(metrics.Viewer); ok {
		return v.View()
	}
	return s.retain.Completions()
}

// SetRetention replaces the completion-history store. The default
// retains everything (the behaviour tests, goldens and the offline
// tables rely on); streaming replays opt into metrics.NewRing /
// NewDiscard so peak memory is O(active jobs). Must be called before
// the first completion.
func (s *Sim) SetRetention(r metrics.Retention) error {
	if r == nil {
		return fmt.Errorf("cluster: nil retention")
	}
	if s.acc.N() > 0 {
		return fmt.Errorf("cluster: retention change after %d completions", s.acc.N())
	}
	s.retain = r
	return nil
}

// Report returns the one-pass §3 criteria report over every completion
// so far, plus the cluster's best-effort and fault counters. O(1): the
// accumulator folds completions in as they happen, so calling this per
// event (or per scrape) costs nothing — and the criteria fields are
// bit-for-bit identical to metrics.NewReport over the full history
// (NewReport leaves the BestEffort/Faults counters zero, so the whole
// struct compares equal for runs without best-effort or fault traffic).
func (s *Sim) Report() metrics.Report {
	rep := s.acc.Report()
	rep.BestEffort = s.beStats
	rep.Faults = s.FaultStats()
	return rep
}

// CompletedCount returns the number of completed local jobs (retention
// independent).
func (s *Sim) CompletedCount() int { return s.acc.N() }

// Submitted returns the number of local jobs admitted so far (for a
// streaming run this grows as the source is consumed).
func (s *Sim) Submitted() int { return s.submitted }

// Streaming reports whether a lazy-admission source is still attached
// (more local jobs will surface later than Submitted counts — the fault
// engine must not treat the sim as finished yet).
func (s *Sim) Streaming() bool { return s.src != nil || s.pending != nil }

// RunningCount returns the number of currently running local jobs.
func (s *Sim) RunningCount() int { return len(s.running) }

// BestEffort returns the best-effort statistics.
func (s *Sim) BestEffort() BEStats { return s.beStats }

// BestEffortQueueLength returns the number of grid tasks waiting (not
// running) on this cluster.
func (s *Sim) BestEffortQueueLength() int { return len(s.beQueue) }

// BestEffortActive returns the number of grid tasks currently running.
func (s *Sim) BestEffortActive() int { return len(s.beActive) }

// Free returns the currently free processor count.
func (s *Sim) Free() int { return s.free() }

// QueueLength returns the current waiting-queue length (used by the
// decentralized load exchange to compare cluster loads).
func (s *Sim) QueueLength() int { return len(s.queue) }

// Queued returns a copy of the waiting queue in submission order.
func (s *Sim) Queued() []*workload.Job {
	return append([]*workload.Job(nil), s.queue...)
}

// RunningSnapshot describes one running local job to external observers
// (the gridd /queue endpoint).
type RunningSnapshot struct {
	Job   *workload.Job
	Procs int
	Start float64
	End   float64
}

// Running returns a snapshot of the currently running local jobs in
// start order.
func (s *Sim) Running() []RunningSnapshot {
	out := make([]RunningSnapshot, 0, len(s.running))
	for _, r := range s.running {
		out = append(out, RunningSnapshot{Job: r.job, Procs: r.procs, Start: r.start, End: r.end})
	}
	return out
}

// QueuedWork returns the total minimal work waiting in the queue at
// reference speed (the load-balance signal of §5.2's decentralized
// scheme).
func (s *Sim) QueuedWork() float64 {
	var w float64
	for _, j := range s.queue {
		mw, _ := j.MinWork(s.M)
		w += mw
	}
	return w
}

// StealQueued removes and returns up to n jobs from the tail of the
// waiting queue (decentralized work exchange). Jobs already started
// cannot be stolen.
func (s *Sim) StealQueued(n int) []*workload.Job {
	if n <= 0 || len(s.queue) == 0 {
		return nil
	}
	if n > len(s.queue) {
		n = len(s.queue)
	}
	stolen := append([]*workload.Job(nil), s.queue[len(s.queue)-n:]...)
	s.queue = s.queue[:len(s.queue)-n]
	s.submitted -= n
	for _, j := range stolen {
		w, _ := j.MinWork(s.M)
		s.queuedWork -= w
	}
	if s.queuedWork < 0 {
		s.queuedWork = 0
	}
	s.publishLoad()
	return stolen
}

// InjectNow enqueues a job immediately (migration arrival from another
// cluster; its release date is in the past by construction).
func (s *Sim) InjectNow(j *workload.Job) error {
	if s.drained {
		return ErrDrained
	}
	if j.MinProcs > s.M {
		return fmt.Errorf("cluster: job %d needs %d > %d procs", j.ID, j.MinProcs, s.M)
	}
	s.submitted++
	return s.DES.After(0, func() {
		s.admit(j)
	})
}
