package cluster

import (
	"repro/internal/workload"
)

// procsFor returns the processor count a queue policy uses for a job:
// rigid jobs their fixed count; moldable jobs their minimum (queue
// policies in production batch systems treat requests as rigid — the
// moldable intelligence lives in the batch/bicriteria algorithms).
func procsFor(j *workload.Job) int { return j.MinProcs }

// FCFSPolicy starts the queue head whenever it fits and never looks past
// it — the strict no-backfilling baseline.
type FCFSPolicy struct{}

// Name implements Policy.
func (FCFSPolicy) Name() string { return "fcfs" }

// Decide implements Policy.
func (FCFSPolicy) Decide(v View) []Decision {
	var out []Decision
	avail := v.Avail
	for _, j := range v.Queue {
		p := procsFor(j)
		if p > avail {
			break
		}
		out = append(out, Decision{Job: j, Procs: p})
		avail -= p
	}
	return out
}

// EASYPolicy is EASY (aggressive) backfilling: the queue head gets a
// reservation at the earliest time enough processors free up (the shadow
// time); later jobs may start now if they terminate before the shadow
// time or fit in the processors left over at it.
//
// The shadow time is read off the cluster's persistent availability
// profile (one scan over the profile's segments) instead of sorting the
// running set at every decision point. Because all reservations in that
// profile start now, its availability is non-decreasing over the future,
// so the first segment with enough free processors is the shadow time —
// and its surplus counts *every* processor free at that instant, where
// the former sorted-scan stopped mid-way through simultaneous releases.
type EASYPolicy struct{}

// Name implements Policy.
func (EASYPolicy) Name() string { return "easy" }

// Decide implements Policy.
func (EASYPolicy) Decide(v View) []Decision {
	if len(v.Queue) == 0 {
		return nil
	}
	var out []Decision
	avail := v.Avail
	queue := v.Queue
	profile, ok := v.planProfile()
	if !ok {
		return nil
	}
	defer profile.Recycle()

	// Start heads while they fit.
	for len(queue) > 0 {
		head := queue[0]
		p := procsFor(head)
		if p > avail {
			break
		}
		out = append(out, Decision{Job: head, Procs: p})
		avail -= p
		if err := profile.Reserve(v.Now, v.Duration(head, p), p); err != nil {
			return out // inconsistent view; stop extending the plan
		}
		queue = queue[1:]
	}
	if len(queue) == 0 {
		return out
	}

	// Shadow time for the blocked head.
	head := queue[0]
	need := procsFor(head)
	shadow, extra := profile.EarliestAvail(v.Now, need)
	if extra < 0 {
		extra = 0 // saturated forever: nothing fits beside the head
	}

	// Backfill the rest.
	for _, j := range queue[1:] {
		p := procsFor(j)
		if p > avail {
			continue
		}
		end := v.Now + v.Duration(j, p)
		fitsBefore := end <= shadow+1e-12
		fitsBeside := p <= extra
		if fitsBefore || fitsBeside {
			out = append(out, Decision{Job: j, Procs: p})
			avail -= p
			if !fitsBefore {
				extra -= p
			}
		}
	}
	return out
}

// GreedyFitPolicy starts any queued job that fits, scanning in queue
// order — maximal utilization, no starvation protection (wide jobs can
// wait forever behind a stream of narrow ones).
type GreedyFitPolicy struct{}

// Name implements Policy.
func (GreedyFitPolicy) Name() string { return "greedyfit" }

// Decide implements Policy.
func (GreedyFitPolicy) Decide(v View) []Decision {
	var out []Decision
	avail := v.Avail
	for _, j := range v.Queue {
		p := procsFor(j)
		if p <= avail {
			out = append(out, Decision{Job: j, Procs: p})
			avail -= p
		}
	}
	return out
}
