package cluster

// Cross-validation tests: the event-driven simulator and the offline
// profile-based builders implement the same policies through entirely
// different code paths; on identical inputs they must agree. This is the
// strongest correctness oracle in the repository — a bug in either the
// DES, the profile, or a policy shows up as a divergence here.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/rigid"
	"repro/internal/stats"
	"repro/internal/workload"
)

func randomRigidWorkload(seed uint64, n, m int, rate float64) []*workload.Job {
	rng := stats.NewRNG(seed)
	jobs := make([]*workload.Job, n)
	clock := 0.0
	for i := range jobs {
		clock += rng.Exp(rate)
		p := rng.IntRange(1, m)
		jobs[i] = &workload.Job{
			ID: i, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: clock,
			SeqTime: rng.Range(0.5, 25) * float64(p), MinProcs: p, MaxProcs: p,
			Model: workload.Linear{},
		}
	}
	return jobs
}

func desStarts(t *testing.T, jobs []*workload.Job, m int, pol Policy) map[int]float64 {
	t.Helper()
	s, err := New(des.New(), m, 1, pol, KillNewest)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	starts := map[int]float64{}
	for _, c := range s.Completions() {
		starts[c.Job.ID] = c.Start
	}
	return starts
}

func TestDESFCFSMatchesOffline(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		jobs := randomRigidWorkload(seed, 25, 8, 0.4)
		online := desStarts(t, jobs, 8, FCFSPolicy{})
		offline, err := rigid.FCFS(jobs, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range offline.Allocs {
			if got := online[a.Job.ID]; math.Abs(got-a.Start) > 1e-9 {
				t.Fatalf("seed %d job %d: DES start %v, offline start %v",
					seed, a.Job.ID, got, a.Start)
			}
		}
	}
}

func TestDESConservativeMatchesOfflineWhenAllAtZero(t *testing.T) {
	// With every job released at 0, the online plan never changes as
	// time passes, so the two implementations must agree exactly.
	for seed := uint64(0); seed < 20; seed++ {
		jobs := randomRigidWorkload(seed, 25, 8, 0.4)
		for _, j := range jobs {
			j.Release = 0
		}
		online := desStarts(t, jobs, 8, ConservativePolicy{})
		offline, err := rigid.Conservative(jobs, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range offline.Allocs {
			if got := online[a.Job.ID]; math.Abs(got-a.Start) > 1e-9 {
				t.Fatalf("seed %d job %d: DES start %v, offline start %v",
					seed, a.Job.ID, got, a.Start)
			}
		}
	}
}

func TestConservativePolicyNeverDelaysEarlierJob(t *testing.T) {
	// The defining property of conservative backfilling: removing any
	// suffix of the queue never changes earlier jobs' start times. We
	// test the observable consequence online: starts with the full
	// workload equal starts with the last job dropped, for the prefix.
	for seed := uint64(30); seed < 40; seed++ {
		jobs := randomRigidWorkload(seed, 15, 8, 0.5)
		full := desStarts(t, jobs, 8, ConservativePolicy{})
		prefix := jobs[:len(jobs)-1]
		part := desStarts(t, prefix, 8, ConservativePolicy{})
		for _, j := range prefix {
			if math.Abs(full[j.ID]-part[j.ID]) > 1e-9 {
				t.Fatalf("seed %d: job %d moved from %v to %v when a later job was added",
					seed, j.ID, part[j.ID], full[j.ID])
			}
		}
	}
}

func TestConservativeBackfillsLikeOffline(t *testing.T) {
	// The canonical scenario: wide head blocked, small job backfills.
	jobs := []*workload.Job{
		{ID: 1, Kind: workload.Rigid, Weight: 1, DueDate: -1, SeqTime: 30, MinProcs: 3, MaxProcs: 3, Model: workload.Linear{}},
		{ID: 2, Kind: workload.Rigid, Weight: 1, DueDate: -1, SeqTime: 10, MinProcs: 2, MaxProcs: 2, Model: workload.Linear{}},
		{ID: 3, Kind: workload.Rigid, Weight: 1, DueDate: -1, SeqTime: 2, MinProcs: 1, MaxProcs: 1, Model: workload.Linear{}},
	}
	starts := desStarts(t, jobs, 4, ConservativePolicy{})
	if starts[3] != 0 {
		t.Fatalf("small job did not backfill: start %v", starts[3])
	}
	if starts[2] != 10 {
		t.Fatalf("blocked job start %v, want 10", starts[2])
	}
}

// Property: across random online workloads, conservative's per-job start
// times are never later than FCFS's (conservative dominates FCFS).
func TestConservativeDominatesFCFSProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 12)
		jobs := randomRigidWorkload(seed, rng.IntRange(2, 20), m, 0.4)
		var consStarts, fcfsStarts map[int]float64
		{
			s, err := New(des.New(), m, 1, ConservativePolicy{}, KillNewest)
			if err != nil {
				return false
			}
			for _, j := range jobs {
				if err := s.Submit(j); err != nil {
					return false
				}
			}
			if err := s.Run(); err != nil {
				return false
			}
			consStarts = map[int]float64{}
			for _, c := range s.Completions() {
				consStarts[c.Job.ID] = c.Start
			}
		}
		{
			s, err := New(des.New(), m, 1, FCFSPolicy{}, KillNewest)
			if err != nil {
				return false
			}
			for _, j := range jobs {
				if err := s.Submit(j); err != nil {
					return false
				}
			}
			if err := s.Run(); err != nil {
				return false
			}
			fcfsStarts = map[int]float64{}
			for _, c := range s.Completions() {
				fcfsStarts[c.Job.ID] = c.Start
			}
		}
		for id, cs := range consStarts {
			if cs > fcfsStarts[id]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
