package cluster

import (
	"testing"

	"repro/internal/des"
	"repro/internal/rigid"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchView builds a realistic decision point: queued jobs behind a
// running set, with the persistent profile the simulator would maintain.
func benchView(nQueue, nRunning, m int) View {
	rng := stats.NewRNG(11)
	profile := rigid.NewProfile(m)
	var running []RunningInfo
	used := 0
	for i := 0; i < nRunning; i++ {
		procs := rng.IntRange(1, m/4)
		if used+procs > m {
			break
		}
		end := rng.Range(1, 50)
		if err := profile.Reserve(0, end, procs); err != nil {
			panic(err)
		}
		running = append(running, RunningInfo{End: end, Procs: procs})
		used += procs
	}
	queue := make([]*workload.Job, nQueue)
	for i := range queue {
		p := rng.IntRange(1, m/2)
		queue[i] = &workload.Job{
			ID: i, Kind: workload.Rigid, Weight: 1, DueDate: -1,
			SeqTime: rng.Range(1, 40) * float64(p), MinProcs: p, MaxProcs: p,
			Model: workload.Linear{},
		}
	}
	return View{
		Now: 0, M: m, Avail: m - used, Speed: 1,
		Queue: queue, Running: running, Profile: profile,
	}
}

// BenchmarkConservativeDecide times one online conservative-backfilling
// decision — the per-event cost the incremental profile engine targets.
func BenchmarkConservativeDecide(b *testing.B) {
	v := benchView(50, 20, 64)
	pol := ConservativePolicy{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ds := pol.Decide(v); len(ds) == 0 {
			b.Fatal("no decisions")
		}
	}
}

// BenchmarkEASYDecide times one EASY decision (profile-based shadow time).
func BenchmarkEASYDecide(b *testing.B) {
	v := benchView(50, 20, 64)
	pol := EASYPolicy{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ds := pol.Decide(v); len(ds) == 0 {
			b.Fatal("no decisions")
		}
	}
}

// BenchmarkClusterSimEASY runs a full cluster simulation with best-effort
// churn — the CiGri inner loop.
func BenchmarkClusterSimEASY(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := stats.NewRNG(7)
		s, err := New(des.NewWithCapacity(600), 32, 1, EASYPolicy{}, KillNewest)
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 400; k++ {
			s.SubmitBestEffort(BETask{BagID: 0, Index: k, Duration: rng.Range(5, 50)})
		}
		clock := 0.0
		for k := 0; k < 150; k++ {
			clock += rng.Exp(0.2)
			if err := s.Submit(rjob(k, rng.Range(1, 20), rng.IntRange(1, 16), clock)); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
