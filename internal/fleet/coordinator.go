package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Config parameterizes a Coordinator.
type Config struct {
	// TTL is the lease time budget: a lease not heartbeated within it
	// requeues its unfinished cells. Default 15s.
	TTL time.Duration
	// MaxBatch caps cells per lease regardless of what a worker asks
	// for. Default 16.
	MaxBatch int
	// AffinityBlock is the consistent-hash bucket width: cells of one
	// fan-out are hashed to workers in blocks of this many adjacent
	// indices, so a worker that warmed a spec's workload keeps getting
	// neighbouring cells. Default 4.
	AffinityBlock int
	// RetainRuns bounds how many idle (no outstanding cells) run
	// records — contributor sets, spec payloads — the coordinator
	// keeps for the RunStatus workers field. Default 128.
	RetainRuns int
	// Build is the coordinator's identity for the compatibility check.
	// Zero means CurrentBuild().
	Build BuildInfo
}

func (c Config) fill() Config {
	if c.TTL <= 0 {
		c.TTL = 15 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.AffinityBlock <= 0 {
		c.AffinityBlock = 4
	}
	if c.RetainRuns <= 0 {
		c.RetainRuns = 128
	}
	if c.Build == (BuildInfo{}) {
		c.Build = CurrentBuild()
	}
	return c
}

type taskState int

const (
	taskPending taskState = iota
	taskLeased
	taskDone
)

// task is one enqueued cell: the unit a dispatcher blocks on and a
// worker executes.
type task struct {
	run   *runState
	ref   CellRef
	seq   int // global enqueue order (FIFO + requeue-to-front ordering)
	state taskState
	// result has capacity 1: the first completion delivers, the
	// dispatcher consumes; duplicates never block or overwrite.
	result chan outcome
}

type outcome struct {
	rows [][]any
	d    time.Duration
	err  error
}

// runState is the coordinator's record of one distributed run.
type runState struct {
	id           string
	specID       string
	spec         []byte
	seed         uint64
	jobFactor    int
	tasks        map[CellRef]*task
	contributors map[string]struct{}
	open         int // tasks not yet done
	forgotten    bool
}

// lease is one granted batch.
type lease struct {
	id       string
	worker   string
	run      *runState
	tasks    []*task
	deadline time.Time
}

type workerInfo struct {
	id          string
	build       BuildInfo
	firstSeen   time.Time
	lastSeen    time.Time
	leases      int
	cellsDone   int
	failures    int
	expirations int
}

// Coordinator owns the cell work queue of a distributed daemon. It
// implements the api.Fleet seam (Dispatcher/RunWorkers/Forget), the
// Transport interface (so in-process workers can drive it directly in
// tests), and mounts the /v1/fleet HTTP surface.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	wake     chan struct{} // closed+replaced when work arrives
	runs     map[string]*runState
	order    []string // run registration order (retention)
	pending  []*task  // task seq order
	leases   map[string]*lease
	workers  map[string]*workerInfo
	leaseSeq int
	taskSeq  int

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator starts a coordinator (and its lease janitor).
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:     cfg.fill(),
		wake:    make(chan struct{}),
		runs:    map[string]*runState{},
		leases:  map[string]*lease{},
		workers: map[string]*workerInfo{},
		stop:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.janitor()
	return c
}

// Build returns the coordinator's build identity.
func (c *Coordinator) Build() BuildInfo { return c.cfg.Build }

// TTL returns the configured lease TTL.
func (c *Coordinator) TTL() time.Duration { return c.cfg.TTL }

// Close stops the janitor, fails every outstanding cell with ErrClosed
// (unblocking dispatchers) and rejects further calls.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	for _, rs := range c.runs {
		for _, t := range rs.tasks {
			if t.state != taskDone {
				t.state = taskDone
				rs.open--
				t.result <- outcome{err: ErrClosed}
			}
		}
	}
	c.pending = nil
	c.wakeLocked()
	c.mu.Unlock()
	c.wg.Wait()
}

// wakeLocked signals every lease long-poll (close-and-replace
// broadcast; c.mu must be held).
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// janitor expires overdue leases, requeueing their unfinished cells.
func (c *Coordinator) janitor() {
	defer c.wg.Done()
	period := c.cfg.TTL / 4
	if period < 25*time.Millisecond {
		period = 25 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tick.C:
			c.mu.Lock()
			c.expireLocked(now)
			c.mu.Unlock()
		}
	}
}

// expireLocked requeues the unfinished cells of every overdue lease.
// Requeued tasks keep their original seq, so after the re-sort they
// sit ahead of younger work — a killed worker's cells are retried
// first, not starved.
func (c *Coordinator) expireLocked(now time.Time) {
	requeued := false
	for id, ls := range c.leases {
		if now.Before(ls.deadline) {
			continue
		}
		for _, t := range ls.tasks {
			if t.state == taskLeased {
				t.state = taskPending
				c.pending = append(c.pending, t)
				requeued = true
			}
		}
		if w := c.workers[ls.worker]; w != nil {
			w.leases--
			w.expirations++
		}
		delete(c.leases, id)
	}
	if requeued {
		sort.Slice(c.pending, func(i, j int) bool { return c.pending[i].seq < c.pending[j].seq })
		c.wakeLocked()
	}
}

// Dispatcher registers a run and returns its scenario.CellRunner: the
// coordinator side of the fleet seam (api.Config.Fleet). The spec is
// serialized once here; every lease of the run carries it.
func (c *Coordinator) Dispatcher(runID string, spec *scenario.Spec, seed uint64, jobFactor int) (scenario.CellRunner, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode spec %q: %w", spec.ID, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if _, dup := c.runs[runID]; dup {
		return nil, fmt.Errorf("fleet: run %s already registered", runID)
	}
	rs := &runState{
		id: runID, specID: spec.ID, spec: b, seed: seed, jobFactor: jobFactor,
		tasks: map[CellRef]*task{}, contributors: map[string]struct{}{},
	}
	c.runs[runID] = rs
	c.order = append(c.order, runID)
	c.retainLocked()
	return &dispatcher{c: c, run: rs}, nil
}

// retainLocked drops the oldest idle run records past the retention
// bound (active runs — open cells — are never dropped).
func (c *Coordinator) retainLocked() {
	for len(c.runs) > c.cfg.RetainRuns {
		victim := -1
		for i, id := range c.order {
			if rs := c.runs[id]; rs != nil && rs.open == 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			return
		}
		id := c.order[victim]
		c.runs[id].forgotten = true
		delete(c.runs, id)
		c.order = append(c.order[:victim], c.order[victim+1:]...)
	}
}

// Forget drops a run's record (the api store evicted it).
func (c *Coordinator) Forget(runID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.runs[runID]
	if rs == nil {
		return
	}
	// Fail anything still outstanding: the run is gone, nobody will
	// consume late results.
	for _, t := range rs.tasks {
		if t.state != taskDone {
			if t.state == taskPending {
				c.removePendingLocked(t)
			}
			t.state = taskDone
			rs.open--
			t.result <- outcome{err: fmt.Errorf("fleet: run %s evicted", runID)}
		}
	}
	rs.forgotten = true
	delete(c.runs, runID)
	for i, id := range c.order {
		if id == runID {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// RunWorkers returns the sorted ids of workers that contributed cells
// to the run (the RunStatus workers field).
func (c *Coordinator) RunWorkers(runID string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.runs[runID]
	if rs == nil || len(rs.contributors) == 0 {
		return nil
	}
	out := make([]string, 0, len(rs.contributors))
	for id := range rs.contributors {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// dispatcher is the per-run scenario.CellRunner handed to the engine.
type dispatcher struct {
	c   *Coordinator
	run *runState
}

// RunCell enqueues one cell and blocks until a worker completes it (or
// ctx fires — the cell is then abandoned so a zombie completion is a
// no-op).
func (d *dispatcher) RunCell(ctx context.Context, fanout, cell int) ([][]any, time.Duration, error) {
	t, err := d.c.enqueue(d.run, CellRef{Fanout: fanout, Cell: cell})
	if err != nil {
		return nil, 0, err
	}
	select {
	case out := <-t.result:
		return out.rows, out.d, out.err
	case <-ctx.Done():
		d.c.abandon(t)
		// A completion may have raced the cancel in; prefer it.
		select {
		case out := <-t.result:
			return out.rows, out.d, out.err
		default:
			return nil, 0, ctx.Err()
		}
	}
}

func (c *Coordinator) enqueue(rs *runState, ref CellRef) (*task, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if rs.forgotten {
		return nil, fmt.Errorf("fleet: run %s evicted", rs.id)
	}
	if _, dup := rs.tasks[ref]; dup {
		return nil, fmt.Errorf("fleet: run %s cell %s dispatched twice", rs.id, ref)
	}
	c.taskSeq++
	t := &task{run: rs, ref: ref, seq: c.taskSeq, result: make(chan outcome, 1)}
	rs.tasks[ref] = t
	rs.open++
	c.pending = append(c.pending, t)
	c.wakeLocked()
	return t, nil
}

func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.state == taskDone {
		return
	}
	if t.state == taskPending {
		c.removePendingLocked(t)
	}
	t.state = taskDone
	t.run.open--
}

func (c *Coordinator) removePendingLocked(t *task) {
	for i, p := range c.pending {
		if p == t {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// LeaseCells grants a batch of pending cells, long-polling up to the
// request's wait. A nil lease (and nil error) means no work arrived in
// time. Incompatible builds are refused with ErrIncompatible.
func (c *Coordinator) LeaseCells(ctx context.Context, req LeaseRequest) (*Lease, error) {
	if req.WorkerID == "" {
		return nil, fmt.Errorf("fleet: lease request without worker_id")
	}
	if !req.Build.Compatible(c.cfg.Build) {
		return nil, fmt.Errorf("%w: worker %s is %s/%s/catalog %s, coordinator is %s/%s/catalog %s",
			ErrIncompatible, req.WorkerID,
			req.Build.Version, req.Build.GoVersion, req.Build.CatalogHash,
			c.cfg.Build.Version, c.cfg.Build.GoVersion, c.cfg.Build.CatalogHash)
	}
	max := req.MaxCells
	if max <= 0 {
		max = 1
	}
	if max > c.cfg.MaxBatch {
		max = c.cfg.MaxBatch
	}
	deadline := time.Now().Add(time.Duration(req.WaitSeconds * float64(time.Second)))
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		w := c.touchLocked(req.WorkerID, req.Build)
		if batch := c.pickLocked(w, max); len(batch) > 0 {
			out := c.grantLocked(w, batch)
			c.mu.Unlock()
			return out, nil
		}
		wake := c.wake
		c.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(wait)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
			return nil, nil
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}

func (c *Coordinator) touchLocked(id string, build BuildInfo) *workerInfo {
	w := c.workers[id]
	if w == nil {
		w = &workerInfo{id: id, build: build, firstSeen: time.Now()}
		c.workers[id] = w
	}
	w.lastSeen = time.Now()
	return w
}

// aliveWindow is how long after its last contact a worker still counts
// for affinity hashing.
func (c *Coordinator) aliveWindow() time.Duration { return 3 * c.cfg.TTL }

// preferredLocked rendezvous-hashes a cell's affinity key — (spec id,
// fanout, cell block) — over the alive workers. Same key, same fleet:
// same worker, so profile/workload caches get reused; a worker joining
// or dying only remaps the keys it wins or held.
func (c *Coordinator) preferredLocked(t *task, now time.Time) string {
	key := t.run.specID + "|" + strconv.Itoa(t.ref.Fanout) + "|" + strconv.Itoa(t.ref.Cell/c.cfg.AffinityBlock)
	var best string
	var bestScore uint64
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.aliveWindow() {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(id))
		if s := h.Sum64(); best == "" || s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// pickLocked selects a batch for the worker: its oldest
// affinity-preferred cell if any (cache reuse), else the oldest
// pending cell outright — work conservation beats affinity. The batch
// fills with further cells of the same run, affinity-preferred first.
func (c *Coordinator) pickLocked(w *workerInfo, max int) []*task {
	if len(c.pending) == 0 {
		return nil
	}
	now := time.Now()
	var first *task
	for _, t := range c.pending {
		if c.preferredLocked(t, now) == w.id {
			first = t
			break
		}
	}
	if first == nil {
		first = c.pending[0]
	}
	batch := []*task{first}
	for _, t := range c.pending {
		if len(batch) >= max {
			break
		}
		if t != first && t.run == first.run && c.preferredLocked(t, now) == w.id {
			batch = append(batch, t)
		}
	}
	for _, t := range c.pending {
		if len(batch) >= max {
			break
		}
		if t == first || t.run != first.run {
			continue
		}
		dup := false
		for _, b := range batch {
			if b == t {
				dup = true
				break
			}
		}
		if !dup {
			batch = append(batch, t)
		}
	}
	return batch
}

func (c *Coordinator) grantLocked(w *workerInfo, batch []*task) *Lease {
	c.leaseSeq++
	ls := &lease{
		id: "l" + strconv.Itoa(c.leaseSeq), worker: w.id, run: batch[0].run,
		tasks: batch, deadline: time.Now().Add(c.cfg.TTL),
	}
	refs := make([]CellRef, len(batch))
	for i, t := range batch {
		t.state = taskLeased
		c.removePendingLocked(t)
		refs[i] = t.ref
	}
	c.leases[ls.id] = ls
	w.leases++
	return &Lease{
		ID: ls.id, RunID: ls.run.id, Spec: ls.run.spec,
		Seed: ls.run.seed, JobFactor: ls.run.jobFactor,
		Cells: refs, TTLSeconds: c.cfg.TTL.Seconds(),
	}
}

// CompleteCells applies a worker's results. First result per cell
// wins; anything else — unknown run, finished task, abandoned cell —
// counts as a duplicate and changes nothing, so retries and expired
// leases are harmless.
func (c *Coordinator) CompleteCells(_ context.Context, req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return CompleteResponse{}, ErrClosed
	}
	var resp CompleteResponse
	w := c.workers[req.WorkerID]
	if w != nil {
		w.lastSeen = time.Now()
	}
	rs := c.runs[req.RunID]
	for _, cr := range req.Results {
		var t *task
		if rs != nil {
			t = rs.tasks[cr.CellRef]
		}
		if t == nil || t.state == taskDone {
			resp.Duplicates++
			continue
		}
		var out outcome
		switch {
		case cr.Error != "":
			out.err = fmt.Errorf("fleet: worker %s: cell %s: %s", req.WorkerID, cr.CellRef, cr.Error)
		default:
			rows, err := DecodeRows(cr.Rows)
			if err != nil {
				out.err = fmt.Errorf("fleet: worker %s: cell %s: %w", req.WorkerID, cr.CellRef, err)
			} else {
				out.rows = rows
				out.d = time.Duration(cr.DurationSeconds * float64(time.Second))
			}
		}
		if t.state == taskPending {
			// Its lease expired and it was requeued; this result still
			// arrived first, so take it off the queue and use it.
			c.removePendingLocked(t)
		}
		t.state = taskDone
		rs.open--
		t.result <- out
		rs.contributors[req.WorkerID] = struct{}{}
		if w != nil {
			w.cellsDone++
			if out.err != nil {
				w.failures++
			}
		}
		resp.Accepted++
	}
	// Drop the lease once everything it covers is finished.
	if ls := c.leases[req.LeaseID]; ls != nil && ls.worker == req.WorkerID {
		done := true
		for _, t := range ls.tasks {
			if t.state != taskDone {
				done = false
				break
			}
		}
		if done {
			delete(c.leases, req.LeaseID)
			if w != nil {
				w.leases--
			}
		}
	}
	return resp, nil
}

// Heartbeat extends the worker's leases and reports the ones the
// coordinator no longer honours.
func (c *Coordinator) Heartbeat(_ context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return HeartbeatResponse{}, ErrClosed
	}
	now := time.Now()
	if w := c.workers[req.WorkerID]; w != nil {
		w.lastSeen = now
	}
	resp := HeartbeatResponse{TTLSeconds: c.cfg.TTL.Seconds()}
	for _, id := range req.LeaseIDs {
		ls := c.leases[id]
		if ls == nil || ls.worker != req.WorkerID {
			resp.Expired = append(resp.Expired, id)
			continue
		}
		ls.deadline = now.Add(c.cfg.TTL)
	}
	return resp, nil
}

// WorkersStatus snapshots the fleet view, sorted by worker id.
func (c *Coordinator) WorkersStatus() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		st := WorkerStatus{
			ID: w.id, Version: w.build.Version, Leases: w.leases,
			CellsDone: w.cellsDone, Failures: w.failures, Expirations: w.expirations,
			FirstSeen: w.firstSeen, LastSeen: w.lastSeen,
			Alive: now.Sub(w.lastSeen) <= c.aliveWindow(),
		}
		if life := now.Sub(w.firstSeen).Seconds(); life > 0 {
			st.CellsPerSec = float64(w.cellsDone) / life
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PendingCells reports the current queue depth (tests and the smoke
// script's progress assertions).
func (c *Coordinator) PendingCells() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}
