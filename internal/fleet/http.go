package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/api"
)

// Mount registers the fleet lease protocol on mux (the api RunService
// auto-mounts it when its Config.Fleet is a Coordinator):
//
//	POST /v1/fleet/lease      lease a cell batch (long-poll;
//	                          {"lease":null} = no work, 409 = build
//	                          mismatch)
//	POST /v1/fleet/complete   report typed cell results (idempotent)
//	POST /v1/fleet/heartbeat  extend lease TTLs
//	GET  /v1/fleet/workers    fleet view (gridctl workers)
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/fleet/lease", c.handleLease)
	mux.HandleFunc("POST /v1/fleet/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/fleet/workers", c.handleWorkers)
}

// decodeBody parses a fleet request strictly (workers are our own
// binaries; an unknown field means a build skew worth failing loudly).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		api.WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad fleet request: %v", err))
		return false
	}
	return true
}

func writeFleetError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrIncompatible):
		api.WriteError(w, http.StatusConflict, err.Error())
	case errors.Is(err, ErrClosed):
		api.WriteError(w, http.StatusServiceUnavailable, err.Error())
	case r.Context().Err() != nil:
		// The worker hung up mid long-poll; nothing useful to write.
	default:
		api.WriteError(w, http.StatusBadRequest, err.Error())
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ls, err := c.LeaseCells(r.Context(), req)
	if err != nil {
		writeFleetError(w, r, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, LeaseResponse{Lease: ls})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := c.CompleteCells(r.Context(), req)
	if err != nil {
		writeFleetError(w, r, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := c.Heartbeat(r.Context(), req)
	if err != nil {
		writeFleetError(w, r, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	out := c.WorkersStatus()
	if out == nil {
		out = []WorkerStatus{}
	}
	api.WriteJSON(w, http.StatusOK, out)
}
