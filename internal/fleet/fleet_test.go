package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/scenario"
)

// testSpec builds a minimal spec for protocol-level tests (the lease
// payload just carries its JSON; no kind needs to run).
func testSpec(id string) *scenario.Spec {
	return scenario.New(id, "offline",
		scenario.WithWorkload(scenario.Workload{N: 10, M: 8}),
		scenario.WithPolicies("ffdh"))
}

// TestValueCodecRoundTrip: every table value type survives the wire
// with its exact Go type and value — including the float corner cases
// (NaN, ±Inf, shortest-form round-trip) the text renderer would expose.
func TestValueCodecRoundTrip(t *testing.T) {
	vals := []any{
		0, -7, 123456789, int64(1) << 60,
		uint64(0), uint64(math.MaxUint64),
		0.0, -0.0, 1.0 / 3.0, 6.02e23, math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1),
		"", "hello", "0.5", "with spaces\tand tabs",
		true, false,
	}
	for _, v := range vals {
		ev, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v (%T): %v", v, v, err)
		}
		got, err := ev.Decode()
		if err != nil {
			t.Fatalf("decode %v (%T): %v", v, v, err)
		}
		want := v
		if iv, ok := v.(int64); ok {
			want = int(iv) // int64 intentionally lands as int (the table vocabulary)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %v (%T) -> %v (%T)", v, v, got, got)
		}
	}
	// NaN defeats DeepEqual; check it separately.
	ev, err := EncodeValue(math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := got.(float64); !ok || !math.IsNaN(f) {
		t.Fatalf("NaN round trip -> %v (%T)", got, got)
	}
	// Types outside the vocabulary are refused, not coerced.
	if _, err := EncodeValue(int32(3)); err == nil {
		t.Fatal("int32 encoded silently")
	}
	if _, err := EncodeValue(nil); err == nil {
		t.Fatal("nil encoded silently")
	}
	if _, err := (Value{T: "x", V: "1"}).Decode(); err == nil {
		t.Fatal("unknown tag decoded")
	}
}

// complete is a test helper: deliver rows for the given cells.
func complete(t *testing.T, c *Coordinator, worker, leaseID, runID string, cells []CellRef, rows [][]any) CompleteResponse {
	t.Helper()
	var results []CellResult
	for _, ref := range cells {
		vals, err := EncodeRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, CellResult{CellRef: ref, Rows: vals, DurationSeconds: 0.001})
	}
	resp, err := c.CompleteCells(context.Background(), CompleteRequest{
		WorkerID: worker, LeaseID: leaseID, RunID: runID, Results: results,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestLeaseLifecycle: dispatch → lease → complete delivers the typed
// rows back to the blocked dispatcher, and the run records its
// contributor.
func TestLeaseLifecycle(t *testing.T) {
	c := NewCoordinator(Config{TTL: time.Minute})
	defer c.Close()

	cr, err := c.Dispatcher("r1", testSpec("s1"), 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	type cellOut struct {
		rows [][]any
		err  error
	}
	done := make(chan cellOut, 1)
	go func() {
		rows, _, err := cr.RunCell(context.Background(), 0, 3)
		done <- cellOut{rows, err}
	}()

	ls, err := c.LeaseCells(context.Background(), LeaseRequest{
		WorkerID: "w1", Build: c.Build(), MaxCells: 4, WaitSeconds: 5,
	})
	if err != nil || ls == nil {
		t.Fatalf("lease: %v %v", ls, err)
	}
	if ls.RunID != "r1" || ls.Seed != 42 || len(ls.Cells) != 1 || ls.Cells[0] != (CellRef{0, 3}) {
		t.Fatalf("lease = %+v", ls)
	}
	want := [][]any{{"easy", 1.5, 7, true}}
	resp := complete(t, c, "w1", ls.ID, "r1", ls.Cells, want)
	if resp.Accepted != 1 || resp.Duplicates != 0 {
		t.Fatalf("complete = %+v", resp)
	}
	out := <-done
	if out.err != nil || !reflect.DeepEqual(out.rows, want) {
		t.Fatalf("dispatcher got %v, %v", out.rows, out.err)
	}
	if ws := c.RunWorkers("r1"); !reflect.DeepEqual(ws, []string{"w1"}) {
		t.Fatalf("contributors = %v", ws)
	}
	st := c.WorkersStatus()
	if len(st) != 1 || st[0].ID != "w1" || st[0].CellsDone != 1 || st[0].Leases != 0 {
		t.Fatalf("workers = %+v", st)
	}
}

// TestLeaseExpiryRequeueAndDuplicate: a lease that never heartbeats
// expires, its cell requeues to another worker, and the dead worker's
// late completion is judged a duplicate — the first accepted result is
// the one the dispatcher sees. This is the satellite-4 recovery path:
// kill a worker mid-run, lose no work, double-deliver safely.
func TestLeaseExpiryRequeueAndDuplicate(t *testing.T) {
	c := NewCoordinator(Config{TTL: 80 * time.Millisecond})
	defer c.Close()

	cr, err := c.Dispatcher("r1", testSpec("s1"), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan [][]any, 1)
	go func() {
		rows, _, _ := cr.RunCell(context.Background(), 0, 0)
		done <- rows
	}()

	// Worker A leases and "dies" (no heartbeat, no completion yet).
	lsA, err := c.LeaseCells(context.Background(), LeaseRequest{WorkerID: "a", Build: c.Build(), MaxCells: 1, WaitSeconds: 5})
	if err != nil || lsA == nil {
		t.Fatalf("lease A: %v %v", lsA, err)
	}
	// Worker B long-polls; the janitor must requeue A's cell to it.
	lsB, err := c.LeaseCells(context.Background(), LeaseRequest{WorkerID: "b", Build: c.Build(), MaxCells: 1, WaitSeconds: 5})
	if err != nil || lsB == nil {
		t.Fatalf("lease B after expiry: %v %v", lsB, err)
	}
	if lsB.Cells[0] != lsA.Cells[0] {
		t.Fatalf("B leased %v, want A's expired %v", lsB.Cells, lsA.Cells)
	}

	if resp := complete(t, c, "b", lsB.ID, "r1", lsB.Cells, [][]any{{"from-b"}}); resp.Accepted != 1 {
		t.Fatalf("B's completion rejected: %+v", resp)
	}
	// A's zombie completion arrives late: pure duplicate, no effect.
	if resp := complete(t, c, "a", lsA.ID, "r1", lsA.Cells, [][]any{{"from-a"}}); resp.Accepted != 0 || resp.Duplicates != 1 {
		t.Fatalf("zombie completion = %+v", resp)
	}
	if rows := <-done; !reflect.DeepEqual(rows, [][]any{{"from-b"}}) {
		t.Fatalf("dispatcher saw %v, want from-b (first accepted wins)", rows)
	}
	if ws := c.RunWorkers("r1"); !reflect.DeepEqual(ws, []string{"b"}) {
		t.Fatalf("contributors = %v, want [b]", ws)
	}
	st := c.WorkersStatus()
	for _, w := range st {
		if w.ID == "a" && w.Expirations != 1 {
			t.Fatalf("worker a expirations = %d, want 1", w.Expirations)
		}
	}
}

// TestIncompatibleBuildRefused: a worker whose build info differs is
// refused with ErrIncompatible before any work is handed out.
func TestIncompatibleBuildRefused(t *testing.T) {
	c := NewCoordinator(Config{TTL: time.Minute})
	defer c.Close()
	bad := c.Build()
	bad.CatalogHash = "deadbeefdeadbeef"
	_, err := c.LeaseCells(context.Background(), LeaseRequest{WorkerID: "w", Build: bad, MaxCells: 1})
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
	if _, err := c.LeaseCells(context.Background(), LeaseRequest{Build: c.Build()}); err == nil {
		t.Fatal("empty worker_id accepted")
	}
}

// TestLongPollTimesOutEmpty: no work → nil lease after the wait, not an
// error and not a hang.
func TestLongPollTimesOutEmpty(t *testing.T) {
	c := NewCoordinator(Config{TTL: time.Minute})
	defer c.Close()
	start := time.Now()
	ls, err := c.LeaseCells(context.Background(), LeaseRequest{WorkerID: "w", Build: c.Build(), WaitSeconds: 0.05})
	if err != nil || ls != nil {
		t.Fatalf("lease = %v, %v", ls, err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("long poll did not respect the wait bound")
	}
}

// TestForgetFailsOutstanding: evicting a run fails its blocked
// dispatchers instead of leaking them.
func TestForgetFailsOutstanding(t *testing.T) {
	c := NewCoordinator(Config{TTL: time.Minute})
	defer c.Close()
	cr, err := c.Dispatcher("r1", testSpec("s1"), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := cr.RunCell(context.Background(), 0, 0)
		errc <- err
	}()
	// Wait until the cell is enqueued, then forget the run.
	for c.PendingCells() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Forget("r1")
	if err := <-errc; err == nil {
		t.Fatal("RunCell survived Forget")
	}
	if c.PendingCells() != 0 {
		t.Fatal("forgotten run left pending cells")
	}
}

// TestCloseUnblocksDispatchers: Close fails outstanding cells with
// ErrClosed.
func TestCloseUnblocksDispatchers(t *testing.T) {
	c := NewCoordinator(Config{TTL: time.Minute})
	cr, err := c.Dispatcher("r1", testSpec("s1"), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := cr.RunCell(context.Background(), 0, 0)
		errc <- err
	}()
	for c.PendingCells() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestAffinityDeterministic: the rendezvous hash gives every cell block
// exactly one preferred worker, stable across calls, and spreads blocks
// across a fleet.
func TestAffinityDeterministic(t *testing.T) {
	c := NewCoordinator(Config{TTL: time.Minute, AffinityBlock: 2})
	defer c.Close()
	now := time.Now()
	for _, id := range []string{"w1", "w2", "w3"} {
		c.mu.Lock()
		c.touchLocked(id, c.Build())
		c.mu.Unlock()
	}
	rs := &runState{specID: "mrt"}
	seen := map[string]int{}
	for cell := range 32 {
		tk := &task{run: rs, ref: CellRef{Fanout: 0, Cell: cell}}
		c.mu.Lock()
		first := c.preferredLocked(tk, now)
		second := c.preferredLocked(tk, now)
		c.mu.Unlock()
		if first != second || first == "" {
			t.Fatalf("cell %d: unstable preference %q vs %q", cell, first, second)
		}
		// Adjacent cells of one block share a preference (cache reuse).
		c.mu.Lock()
		buddy := c.preferredLocked(&task{run: rs, ref: CellRef{Fanout: 0, Cell: cell ^ 1}}, now)
		c.mu.Unlock()
		if buddy != first {
			t.Fatalf("cells %d and %d of one block prefer %q vs %q", cell, cell^1, first, buddy)
		}
		seen[first]++
	}
	if len(seen) < 2 {
		t.Fatalf("all 16 blocks hashed to one worker: %v", seen)
	}
}

// TestRetainBoundsIdleRuns: finished run records are bounded; active
// ones survive retention.
func TestRetainBoundsIdleRuns(t *testing.T) {
	c := NewCoordinator(Config{TTL: time.Minute, RetainRuns: 3})
	defer c.Close()
	for i := range 10 {
		if _, err := c.Dispatcher(fmt.Sprintf("r%d", i), testSpec("s"), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := len(c.runs)
	c.mu.Unlock()
	if n > 3 {
		t.Fatalf("retained %d idle runs, want <= 3", n)
	}
}
