package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Transport is how a worker reaches its coordinator. *Coordinator
// implements it directly (in-process fleets in tests); pkg/client
// implements it over the /v1/fleet HTTP surface. LeaseCells returning
// (nil, nil) means "no work yet, poll again".
type Transport interface {
	LeaseCells(ctx context.Context, req LeaseRequest) (*Lease, error)
	CompleteCells(ctx context.Context, req CompleteRequest) (CompleteResponse, error)
	Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error)
}

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// ID identifies the worker to the coordinator (default
	// "host-pid").
	ID string
	// Build is the identity offered in lease requests (default
	// CurrentBuild()).
	Build BuildInfo
	// Batch is the cells requested per lease. Default 4.
	Batch int
	// Poll is the lease long-poll wait. Default 5s.
	Poll time.Duration
	// Workers bounds the local pool executing a lease's cells
	// (0 = GOMAXPROCS).
	Workers int
	// Log, when set, narrates leases and failures.
	Log *log.Logger
}

func (c WorkerConfig) fill() WorkerConfig {
	if c.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.Build == (BuildInfo{}) {
		c.Build = CurrentBuild()
	}
	if c.Batch <= 0 {
		c.Batch = 4
	}
	if c.Poll <= 0 {
		c.Poll = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

func (c WorkerConfig) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log.Printf(format, args...)
	}
}

// RunWorker is the worker loop: lease, execute, complete, repeat,
// heartbeating while a lease is in flight. It returns nil when ctx is
// cancelled (graceful drain: finished cells of the current lease are
// still reported; unfinished ones requeue via lease expiry) and an
// error only when the coordinator refuses this build outright.
func RunWorker(ctx context.Context, tr Transport, cfg WorkerConfig) error {
	cfg = cfg.fill()
	for {
		if ctx.Err() != nil {
			return nil
		}
		ls, err := tr.LeaseCells(ctx, LeaseRequest{
			WorkerID: cfg.ID, Build: cfg.Build,
			MaxCells: cfg.Batch, WaitSeconds: cfg.Poll.Seconds(),
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if errors.Is(err, ErrIncompatible) {
				return err
			}
			cfg.logf("fleet worker %s: lease: %v", cfg.ID, err)
			select {
			case <-time.After(time.Second):
			case <-ctx.Done():
				return nil
			}
			continue
		}
		if ls == nil {
			continue // long-poll lapsed without work
		}
		cfg.logf("fleet worker %s: leased %d cells of %s (lease %s)", cfg.ID, len(ls.Cells), ls.RunID, ls.ID)

		hctx, stopHeartbeat := context.WithCancel(ctx)
		var hwg sync.WaitGroup
		hwg.Add(1)
		go func() {
			defer hwg.Done()
			heartbeatLoop(hctx, tr, cfg, ls)
		}()
		results := ExecuteLease(ctx, ls, cfg.Workers)
		stopHeartbeat()
		hwg.Wait()

		if ctx.Err() != nil {
			// Draining: report only the cells that actually finished;
			// the rest requeue when the lease expires.
			kept := results[:0]
			for _, r := range results {
				if r.Error == "" {
					kept = append(kept, r)
				}
			}
			results = kept
			if len(results) == 0 {
				return nil
			}
		}
		// Completion must not die with the drain context: finished work
		// is valuable and the call is idempotent.
		cctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		resp, err := tr.CompleteCells(cctx, CompleteRequest{
			WorkerID: cfg.ID, LeaseID: ls.ID, RunID: ls.RunID, Results: results,
		})
		cancel()
		if err != nil {
			cfg.logf("fleet worker %s: complete lease %s: %v", cfg.ID, ls.ID, err)
		} else if resp.Duplicates > 0 {
			cfg.logf("fleet worker %s: lease %s: %d accepted, %d duplicate", cfg.ID, ls.ID, resp.Accepted, resp.Duplicates)
		}
		if ctx.Err() != nil {
			return nil
		}
	}
}

// heartbeatLoop extends the lease while its cells execute. A reported
// expiry is not fatal: the work continues and its completion is simply
// judged (accepted or duplicate) by the coordinator.
func heartbeatLoop(ctx context.Context, tr Transport, cfg WorkerConfig, ls *Lease) {
	ttl := time.Duration(ls.TTLSeconds * float64(time.Second))
	period := ttl / 3
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			resp, err := tr.Heartbeat(ctx, HeartbeatRequest{WorkerID: cfg.ID, LeaseIDs: []string{ls.ID}})
			if err != nil {
				if ctx.Err() == nil {
					cfg.logf("fleet worker %s: heartbeat: %v", cfg.ID, err)
				}
				continue
			}
			if len(resp.Expired) > 0 {
				cfg.logf("fleet worker %s: lease %s expired under us", cfg.ID, ls.ID)
			}
		}
	}
}

// ExecuteLease reproduces the leased cells locally: it decodes the
// run's spec, re-runs it with a Select filter that executes exactly
// the leased cells (every other cell is skipped unrun), and captures
// each cell's typed rows through the OnCellRows hook. Determinism
// comes for free: the worker evaluates the same fan-out expansion the
// coordinator did, with the same resolved seed, so (fanout, cell)
// names identical work on both sides.
//
// One CellResult per leased cell, always: cells the run never reached
// (an error upstream, a cancelled context) come back with an error so
// the coordinator can account for them.
func ExecuteLease(ctx context.Context, ls *Lease, localWorkers int) []CellResult {
	out := make([]CellResult, 0, len(ls.Cells))
	fail := func(msg string) []CellResult {
		for _, ref := range ls.Cells {
			out = append(out, CellResult{CellRef: ref, Error: msg})
		}
		return out
	}
	spec, err := scenario.Decode(bytes.NewReader(ls.Spec))
	if err != nil {
		return fail(fmt.Sprintf("decode spec: %v", err))
	}
	if spec.Traced() {
		// Trace recorders live inside cell closures and cannot ship
		// over the wire; coordinators never distribute traced runs.
		return fail("traced specs are not distributable")
	}
	want := make(map[CellRef]bool, len(ls.Cells))
	for _, ref := range ls.Cells {
		want[ref] = true
	}
	if localWorkers <= 0 {
		localWorkers = runtime.GOMAXPROCS(0)
	}
	var mu sync.Mutex
	results := map[CellRef]CellResult{}
	opt := scenario.RunOptions{
		Seed: ls.Seed, SeedExplicit: true,
		Scale:   scenario.Scale{JobFactor: ls.JobFactor, Workers: localWorkers},
		Context: ctx,
		Select:  func(f, cl int) bool { return want[CellRef{Fanout: f, Cell: cl}] },
		OnCellRows: func(f, cl int, rows [][]any, d time.Duration) {
			ref := CellRef{Fanout: f, Cell: cl}
			cr := CellResult{CellRef: ref, DurationSeconds: d.Seconds()}
			if vals, err := EncodeRows(rows); err != nil {
				cr.Error = err.Error()
			} else {
				cr.Rows = vals
			}
			mu.Lock()
			results[ref] = cr
			mu.Unlock()
		},
	}
	_, runErr := runSpec(spec, opt)
	for _, ref := range ls.Cells {
		if cr, ok := results[ref]; ok {
			out = append(out, cr)
			continue
		}
		msg := "cell did not execute"
		if runErr != nil {
			msg = runErr.Error()
		}
		out = append(out, CellResult{CellRef: ref, Error: msg})
	}
	return out
}

// runSpec contains a runner panic as a failed lease instead of
// crashing the worker daemon (same containment the api executor has).
func runSpec(spec *scenario.Spec, opt scenario.RunOptions) (res *scenario.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("scenario %q panicked: %v", spec.ID, p)
		}
	}()
	return scenario.Run(spec, opt)
}
