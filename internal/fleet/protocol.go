// Package fleet is the distributed run executor of the gridd daemon
// family: a coordinator mode where the /v1 run store doubles as a cell
// work queue, and a stateless worker mode that leases cell batches
// over HTTP, executes them through the scenario kind runners, and
// ships typed rows back.
//
// The protocol is lease/ack with TTLs: a worker POSTs a lease request
// (its id, build info, batch size), receives a batch of cells of one
// run plus the run's spec and resolved seed, heartbeats while
// executing, and POSTs typed per-cell results. A lease whose TTL
// lapses requeues its unfinished cells, so killing a worker mid-run
// loses no work; completing the same cell twice is a no-op (first
// result wins). Cells are reassembled by (fanout, cell) index on the
// coordinator, so the rendered table is byte-identical to a
// single-process run regardless of worker count, arrival order, or
// retries.
package fleet

import (
	"encoding/json"
	"errors"
	"strconv"
	"time"

	"repro/internal/scenario"
	"repro/internal/version"
)

// ErrIncompatible rejects a worker whose build info does not match the
// coordinator's (HTTP 409 on the wire). Merging cells from diverging
// builds could silently mix two different experiments into one table.
var ErrIncompatible = errors.New("fleet: incompatible worker build")

// ErrClosed rejects calls into a closed coordinator.
var ErrClosed = errors.New("fleet: coordinator closed")

// BuildInfo identifies a binary well enough to refuse mixing
// incompatible coordinator/worker builds in one run: the catalog hash
// guards the scenario semantics, version and toolchain guard the
// numerics.
type BuildInfo struct {
	Version     string `json:"version"`
	GoVersion   string `json:"go_version"`
	CatalogHash string `json:"catalog_hash"`
}

// CurrentBuild returns this binary's build identity.
func CurrentBuild() BuildInfo {
	return BuildInfo{
		Version:     version.Version,
		GoVersion:   version.Go(),
		CatalogHash: scenario.CatalogHash(),
	}
}

// Compatible reports whether two builds may share a distributed run.
// All three fields must match exactly.
func (b BuildInfo) Compatible(o BuildInfo) bool { return b == o }

// CellRef names one remoteable cell within a run: the fan-out ordinal
// (kind runners perform remoteable fan-outs sequentially, so ordinals
// are deterministic for a fixed spec) and the cell index within it.
type CellRef struct {
	Fanout int `json:"fanout"`
	Cell   int `json:"cell"`
}

func (r CellRef) String() string { return strconv.Itoa(r.Fanout) + "/" + strconv.Itoa(r.Cell) }

// LeaseRequest asks the coordinator for a batch of cells.
type LeaseRequest struct {
	WorkerID string    `json:"worker_id"`
	Build    BuildInfo `json:"build"`
	// MaxCells bounds the batch (capped by the coordinator's own
	// bound; 0 means 1).
	MaxCells int `json:"max_cells,omitempty"`
	// WaitSeconds long-polls: the coordinator holds the request up to
	// this long waiting for work before answering "none".
	WaitSeconds float64 `json:"wait_seconds,omitempty"`
}

// Lease is one granted batch: cells of a single run, plus everything a
// stateless worker needs to reproduce them — the full spec, the
// resolved seed, and the invocation-level job factor.
type Lease struct {
	ID    string          `json:"id"`
	RunID string          `json:"run_id"`
	Spec  json.RawMessage `json:"spec"`
	// Seed is the coordinator's fully resolved effective seed; the
	// worker applies it as explicit so spec-pinned seeds cannot
	// re-override it (they resolve to the same value anyway).
	Seed      uint64    `json:"seed"`
	JobFactor int       `json:"job_factor,omitempty"`
	Cells     []CellRef `json:"cells"`
	// TTLSeconds is the lease's time budget: heartbeat before it
	// lapses or the cells requeue to other workers.
	TTLSeconds float64 `json:"ttl_seconds"`
}

// LeaseResponse envelopes the poll answer; a nil Lease means no work
// arrived before the wait deadline (poll again).
type LeaseResponse struct {
	Lease *Lease `json:"lease,omitempty"`
}

// Value is one typed table value on the wire; the codec lives in the
// scenario package (scenario.Value) because the durable run store
// persists the same representation. The fleet protocol keeps these
// aliases so wire types and existing callers are unchanged.
type Value = scenario.Value

// EncodeValue encodes one table value. Types outside the table-row
// vocabulary error loudly: silently coercing them would break the
// byte-identity contract far from the cause.
func EncodeValue(v any) (Value, error) { return scenario.EncodeValue(v) }

// EncodeRows encodes a cell's typed rows for the wire.
func EncodeRows(rows [][]any) ([][]Value, error) { return scenario.EncodeRows(rows) }

// DecodeRows restores a cell's typed rows.
func DecodeRows(rows [][]Value) ([][]any, error) { return scenario.DecodeRows(rows) }

// CellResult is one finished cell: its typed rows (or an error) plus
// the worker's wall-clock measurement.
type CellResult struct {
	CellRef
	Rows            [][]Value `json:"rows,omitempty"`
	DurationSeconds float64   `json:"duration_seconds,omitempty"`
	Error           string    `json:"error,omitempty"`
}

// CompleteRequest reports a lease's results. Completion is idempotent:
// the first result for a cell wins, a second ack is counted as a
// duplicate and changes nothing — so retries and zombie workers whose
// leases expired are harmless.
type CompleteRequest struct {
	WorkerID string       `json:"worker_id"`
	LeaseID  string       `json:"lease_id"`
	RunID    string       `json:"run_id"`
	Results  []CellResult `json:"results"`
}

// CompleteResponse summarizes what the coordinator did with the
// report.
type CompleteResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// HeartbeatRequest extends the TTL of the listed leases (and marks the
// worker alive for affinity).
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	LeaseIDs []string `json:"lease_ids,omitempty"`
}

// HeartbeatResponse lists leases the coordinator no longer honours
// (expired and requeued, or unknown): the worker's results for those
// may be discarded as duplicates.
type HeartbeatResponse struct {
	Expired    []string `json:"expired,omitempty"`
	TTLSeconds float64  `json:"ttl_seconds"`
}

// WorkerStatus is one row of the fleet view (GET /v1/fleet/workers,
// gridctl workers).
type WorkerStatus struct {
	ID      string `json:"id"`
	Version string `json:"version"`
	// Leases counts currently granted (unexpired, unfinished) leases.
	Leases    int `json:"leases"`
	CellsDone int `json:"cells_done"`
	// CellsPerSec is CellsDone over the worker's lifetime so far.
	CellsPerSec float64 `json:"cells_per_sec"`
	// Failures counts cells the worker reported as errored.
	Failures int `json:"failures,omitempty"`
	// Expirations counts leases the janitor took back from this worker.
	Expirations int       `json:"expirations,omitempty"`
	FirstSeen   time.Time `json:"first_seen"`
	LastSeen    time.Time `json:"last_seen"`
	// Alive reports a recent heartbeat (within the affinity window).
	Alive bool `json:"alive"`
}
