package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	_ "repro/internal/experiments" // register the scenario kinds + catalog
	"repro/internal/scenario"
)

// runLocal renders a spec single-process (the reference bytes).
func runLocal(t *testing.T, spec *scenario.Spec, opt scenario.RunOptions) string {
	t.Helper()
	res, err := scenario.Run(spec, opt)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	var buf bytes.Buffer
	if err := res.Emit(&buf, false); err != nil {
		t.Fatalf("local emit: %v", err)
	}
	return buf.String()
}

// runFleet renders a spec through a coordinator with n in-process
// workers driving the given transport (the Coordinator itself, or a
// fault-injecting wrapper), mirroring exactly what the api executor
// does: resolved seed into Dispatcher, Remote into the run options.
func runFleet(t *testing.T, spec *scenario.Spec, opt scenario.RunOptions, c *Coordinator, tr Transport, n int) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(ctx, tr, WorkerConfig{
				ID: fmt.Sprintf("w%d", i), Batch: 2, Poll: 50 * time.Millisecond, Workers: 2,
			}); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	runID := "run-" + spec.ID
	if !spec.Traced() {
		seed := spec.EffectiveSeed(opt)
		cr, err := c.Dispatcher(runID, spec, seed, opt.Scale.JobFactor)
		if err != nil {
			t.Fatalf("dispatcher: %v", err)
		}
		opt.Remote = cr
	}
	res, err := scenario.Run(spec, opt)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	var buf bytes.Buffer
	if err := res.Emit(&buf, false); err != nil {
		t.Fatalf("fleet emit: %v", err)
	}
	return buf.String()
}

// TestGoldenFleetMatchesLocal is the acceptance harness: every built-in
// scenario, rendered through a coordinator + 2 workers, must be
// byte-identical to the single-process rendering — regardless of which
// worker ran which cell or in what order results arrived.
func TestGoldenFleetMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed golden sweep is not -short work")
	}
	for _, spec := range scenario.Catalog() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			t.Parallel()
			opt := scenario.RunOptions{Seed: 42, Scale: scenario.Scale{JobFactor: 20}}
			want := runLocal(t, spec, opt)
			c := NewCoordinator(Config{TTL: 30 * time.Second})
			defer c.Close()
			got := runFleet(t, spec, opt, c, c, 2)
			if got != want {
				t.Fatalf("fleet output diverged from local:\n--- local\n%s\n--- fleet\n%s", want, got)
			}
		})
	}
}

// crashingTransport simulates a worker killed mid-run: the first
// completion report is swallowed (as if the process died after
// executing but before the ack landed) and the worker stops leasing.
// The cells must requeue via lease expiry and land on the surviving
// worker — with the final table still byte-identical.
type crashingTransport struct {
	Transport
	mu      sync.Mutex
	crashed bool
}

func (ct *crashingTransport) LeaseCells(ctx context.Context, req LeaseRequest) (*Lease, error) {
	ct.mu.Lock()
	dead := ct.crashed
	ct.mu.Unlock()
	if dead {
		<-ctx.Done() // the process is "gone"; just wait out the test
		return nil, ctx.Err()
	}
	return ct.Transport.LeaseCells(ctx, req)
}

func (ct *crashingTransport) CompleteCells(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	ct.mu.Lock()
	first := !ct.crashed
	ct.crashed = true
	ct.mu.Unlock()
	if first {
		return CompleteResponse{}, errors.New("worker killed before ack")
	}
	return ct.Transport.CompleteCells(ctx, req)
}

// perWorkerTransport routes one worker id through the crashing wrapper
// and everyone else straight to the coordinator.
type perWorkerTransport struct {
	victim string
	crash  Transport
	direct Transport
}

func (p *perWorkerTransport) pick(id string) Transport {
	if id == p.victim {
		return p.crash
	}
	return p.direct
}

func (p *perWorkerTransport) LeaseCells(ctx context.Context, req LeaseRequest) (*Lease, error) {
	return p.pick(req.WorkerID).LeaseCells(ctx, req)
}

func (p *perWorkerTransport) CompleteCells(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	return p.pick(req.WorkerID).CompleteCells(ctx, req)
}

func (p *perWorkerTransport) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return p.pick(req.WorkerID).Heartbeat(ctx, req)
}

// TestGoldenFleetSurvivesWorkerDeath: worker w0 executes its first
// lease, dies before the ack, and never comes back. A short TTL
// requeues its cells to w1; the rendered table must still be
// byte-identical to the single-process run.
func TestGoldenFleetSurvivesWorkerDeath(t *testing.T) {
	spec, ok := scenario.Lookup("mrt")
	if !ok {
		t.Fatal("mrt not in catalog")
	}
	opt := scenario.RunOptions{Seed: 42, Scale: scenario.Scale{JobFactor: 20}}
	want := runLocal(t, spec, opt)

	c := NewCoordinator(Config{TTL: 200 * time.Millisecond})
	defer c.Close()
	// The victim's heartbeats also die with it (crashingTransport routes
	// them to the coordinator until the crash; afterwards the worker
	// never leases again, so its lease expires unattended).
	ct := &crashingTransport{Transport: c}
	tr := &perWorkerTransport{victim: "w0", crash: ct, direct: c}
	got := runFleet(t, spec, opt, c, tr, 2)
	if got != want {
		t.Fatalf("post-crash fleet output diverged:\n--- local\n%s\n--- fleet\n%s", want, got)
	}
	ct.mu.Lock()
	crashed := ct.crashed
	ct.mu.Unlock()
	if !crashed {
		t.Fatal("victim worker never got a lease; the crash path was not exercised")
	}
	// The surviving worker must have contributed (w0's swallowed ack may
	// still have raced some cells in as duplicates-to-be, but the run
	// cannot have completed without w1 picking up the expired cells).
	workers := c.RunWorkers("run-" + spec.ID)
	found := false
	for _, w := range workers {
		if w == "w1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("surviving worker absent from contributors: %v", workers)
	}
}
