package moldable

import (
	"fmt"

	"repro/internal/lowerbound"
	"repro/internal/rigid"
	"repro/internal/sched"
	"repro/internal/workload"
)

// freeze returns rigid clones of the jobs with the given per-job
// processor counts, suitable for the rigid-job policies.
func freeze(jobs []*workload.Job, procs func(*workload.Job) int) ([]*workload.Job, map[int]*workload.Job) {
	frozen := make([]*workload.Job, len(jobs))
	orig := make(map[int]*workload.Job, len(jobs))
	for i, j := range jobs {
		p := procs(j)
		c := j.Clone()
		c.Kind = workload.Rigid
		c.MinProcs, c.MaxProcs = p, p
		frozen[i] = c
		orig[j.ID] = j
	}
	return frozen, orig
}

// rebind maps a schedule over frozen clones back to the original jobs so
// callers see their own pointers.
func rebind(s *sched.Schedule, orig map[int]*workload.Job) *sched.Schedule {
	out := sched.New(s.M)
	for _, a := range s.Allocs {
		a.Job = orig[a.Job.ID]
		out.Add(a)
	}
	return out
}

// MinWorkList is the communication-shy baseline: every job takes its
// minimal-work allocation (usually sequential) and the resulting rigid
// jobs are LPT list-scheduled. It wastes no work but ignores the
// critical path, so long sequential jobs dominate its makespan.
func MinWorkList(jobs []*workload.Job, m int) (*sched.Schedule, error) {
	frozen, orig := freeze(jobs, func(j *workload.Job) int {
		_, p := j.MinWork(m)
		return p
	})
	s, err := rigid.List(frozen, m, rigid.ByLPT)
	if err != nil {
		return nil, fmt.Errorf("moldable: MinWorkList: %w", err)
	}
	return rebind(s, orig), nil
}

// MaxProcsList is the greedy-parallel baseline: every job takes its
// fastest allocation (MaxProcs capped at m) and the rigid jobs are LPT
// list-scheduled. It minimizes per-job time but inflates work, so it
// loses when speedups are sublinear — the trade-off the MRT knapsack
// balances.
func MaxProcsList(jobs []*workload.Job, m int) (*sched.Schedule, error) {
	frozen, orig := freeze(jobs, func(j *workload.Job) int {
		_, p := j.MinTime(m)
		return p
	})
	s, err := rigid.List(frozen, m, rigid.ByLPT)
	if err != nil {
		return nil, fmt.Errorf("moldable: MaxProcsList: %w", err)
	}
	return rebind(s, orig), nil
}

// GammaList is the one-shot dual baseline: jobs take their canonical
// allotment γ(j, LB) for the instance lower bound (falling back to the
// minimal-work allocation when even γ(j, LB) does not exist) and are LPT
// list-scheduled. One construction, no binary search — the natural
// middle ground between the naive baselines and full MRT.
func GammaList(jobs []*workload.Job, m int) (*sched.Schedule, error) {
	lb := lowerbound.CmaxDual(jobs, m)
	frozen, orig := freeze(jobs, func(j *workload.Job) int {
		if q := j.Gamma(lb, m); q > 0 {
			return q
		}
		_, p := j.MinWork(m)
		return p
	})
	s, err := rigid.List(frozen, m, rigid.ByLPT)
	if err != nil {
		return nil, fmt.Errorf("moldable: GammaList: %w", err)
	}
	return rebind(s, orig), nil
}
