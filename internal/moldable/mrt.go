package moldable

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lowerbound"
	"repro/internal/rigid"
	"repro/internal/sched"
	"repro/internal/workload"
)

// AllotFunc selects allotments for a guess λ (knapsack or greedy).
type AllotFunc func(jobs []*workload.Job, m int, lambda float64) ([]Allotment, bool)

// Result is the outcome of the MRT dual-approximation.
type Result struct {
	Schedule *sched.Schedule
	// Lambda is the accepted guess: the smallest λ found whose
	// construction fits within 3λ/2.
	Lambda float64
	// LowerBound is the certified makespan lower bound of the instance.
	LowerBound float64
	// Iterations counts binary-search steps.
	Iterations int
}

// Ratio returns makespan / lower bound (an upper bound on the true
// performance ratio).
func (r *Result) Ratio() float64 {
	if r.LowerBound <= 0 {
		return 1
	}
	return r.Schedule.Makespan() / r.LowerBound
}

// MRT schedules independent moldable jobs offline on m processors for
// makespan, with accuracy parameter eps > 0 controlling the binary
// search (§4.1: performance ratio 3/2 + ε on monotone instances).
// Release dates are ignored (offline model: everything available at 0);
// the batch package layers release dates on top.
func MRT(jobs []*workload.Job, m int, eps float64) (*Result, error) {
	return MRTWithAllot(jobs, m, eps, SelectAllotments)
}

// MRTWithAllot is MRT with a pluggable allotment selector (for the
// knapsack-vs-greedy ablation).
func MRTWithAllot(jobs []*workload.Job, m int, eps float64, allot AllotFunc) (*Result, error) {
	if m <= 0 {
		return nil, fmt.Errorf("moldable: MRT on %d processors", m)
	}
	if eps <= 0 {
		eps = 0.01
	}
	if len(jobs) == 0 {
		return &Result{Schedule: sched.New(m), Lambda: 0, LowerBound: 0}, nil
	}
	for _, j := range jobs {
		if t, _ := j.MinTime(m); math.IsInf(t, 0) {
			return nil, fmt.Errorf("moldable: job %d cannot run on %d processors", j.ID, m)
		}
	}
	lb := lowerbound.CmaxDual(jobs, m)
	if lb <= 0 {
		return nil, fmt.Errorf("moldable: degenerate lower bound %v", lb)
	}

	// Find a feasible upper guess by doubling from the lower bound.
	res := &Result{LowerBound: lb}
	hi := lb
	var hiSched *sched.Schedule
	for i := 0; ; i++ {
		if s, ok := construct(jobs, m, hi, allot); ok {
			hiSched = s
			break
		}
		hi *= 2
		if i > 60 {
			return nil, fmt.Errorf("moldable: no feasible guess found up to %v", hi)
		}
	}
	lo := lb // invariant: guesses at or below lo may be infeasible; hi works
	res.Lambda = hi
	res.Schedule = hiSched

	for res.Iterations = 0; hi-lo > eps*lo && res.Iterations < 200; res.Iterations++ {
		mid := (lo + hi) / 2
		if s, ok := construct(jobs, m, mid, allot); ok {
			hi = mid
			res.Lambda = mid
			res.Schedule = s
		} else {
			lo = mid
		}
	}
	if err := res.Schedule.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}); err != nil {
		return nil, fmt.Errorf("moldable: produced invalid schedule: %w", err)
	}
	return res, nil
}

// construct attempts to build a schedule for guess λ within the 3λ/2
// two-shelf envelope. Shelf-1 jobs (time in (λ/2, λ]) all start at 0;
// shelf-2 jobs are folded into the remaining capacity by first-fit
// decreasing time over the availability profile (this subsumes both the
// paper's second shelf at t=λ and its insert-under-shelf-1
// transformations). Construction fails if the resulting makespan exceeds
// 3λ/2, which keeps the accepted-guess invariant of the dual
// approximation.
func construct(jobs []*workload.Job, m int, lambda float64, allot AllotFunc) (*sched.Schedule, bool) {
	al, ok := allot(jobs, m, lambda)
	if !ok {
		return nil, false
	}
	var shelf1, shelf2 []Allotment
	for _, a := range al {
		if a.Shelf == 1 {
			shelf1 = append(shelf1, a)
		} else {
			shelf2 = append(shelf2, a)
		}
	}
	s := sched.New(m)
	profile := rigid.NewProfile(m)
	// Shelf 1: all at time 0, width fits by the knapsack constraint (the
	// greedy ablation may overflow here — then the guess fails).
	for _, a := range shelf1 {
		if err := profile.Reserve(0, a.Time, a.Procs); err != nil {
			return nil, false
		}
		s.Add(sched.Alloc{Job: a.Job, Start: 0, Procs: a.Procs})
	}
	// Shelf 2: first-fit decreasing time into the profile.
	sort.SliceStable(shelf2, func(i, k int) bool {
		if shelf2[i].Time != shelf2[k].Time {
			return shelf2[i].Time > shelf2[k].Time
		}
		return shelf2[i].Job.ID < shelf2[k].Job.ID
	})
	limit := 1.5 * lambda * (1 + 1e-9)
	for _, a := range shelf2 {
		start, err := profile.EarliestSlot(0, a.Time, a.Procs)
		if err != nil || start+a.Time > limit {
			return nil, false
		}
		if err := profile.Reserve(start, a.Time, a.Procs); err != nil {
			return nil, false
		}
		s.Add(sched.Alloc{Job: a.Job, Start: start, Procs: a.Procs})
	}
	return s, true
}

// ConstructForDeadline exposes the single-guess construction: it tries to
// schedule all jobs within 3d/2 using guess d and reports success. The
// batch and bicriteria packages use it as their deadline procedure
// (ACmax in §4.4 with ρCmax = 3/2).
func ConstructForDeadline(jobs []*workload.Job, m int, d float64) (*sched.Schedule, bool) {
	return construct(jobs, m, d, SelectAllotments)
}

// Rho is the makespan performance ratio of the construction used as the
// deadline procedure (the 3/2 of §4.1, ignoring the ε of the search).
const Rho = 1.5
