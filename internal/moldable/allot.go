// Package moldable implements scheduling of moldable Parallel Tasks —
// the paper's core single-cluster machinery (§4.1). The centerpiece is
// the MRT dual-approximation algorithm: a guess λ of the optimal
// makespan is validated by a knapsack allotment selection that splits
// tasks between a λ-shelf and a λ/2-shelf while minimizing total work;
// a binary search then drives λ down to the smallest constructible
// guess, yielding a 3/2+ε performance ratio on monotone instances.
//
// The construction step follows the published two-shelf skeleton with an
// engineering simplification documented in DESIGN.md: shelf-2 tasks are
// inserted by first-fit-decreasing into the availability profile (which
// subsumes the paper's fold-under-shelf-1 transformations); any guess
// whose construction exceeds 3λ/2 is declared infeasible, so emitted
// schedules always satisfy the shelf bound for their accepted guess.
package moldable

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// Allotment is the per-job outcome of the knapsack selection for a guess λ.
type Allotment struct {
	Job *workload.Job
	// Procs is the selected processor count.
	Procs int
	// Time is the resulting execution time.
	Time float64
	// Shelf is 1 if the job is placed on the λ-shelf (time may exceed
	// λ/2), 2 if on the λ/2-shelf (time ≤ λ/2).
	Shelf int
}

// Work returns Procs * Time.
func (a Allotment) Work() float64 { return float64(a.Procs) * a.Time }

// SelectAllotments runs the §4.1 dual-approximation feasibility test for
// guess λ: each job is assigned either its canonical λ-allotment γ(j, λ)
// (shelf 1) or its canonical λ/2-allotment γ(j, λ/2) (shelf 2), choosing
// the split that minimizes total work subject to the shelf-1 width
// constraint Σ q ≤ m (the knapsack). It returns ok=false when λ is
// infeasible: some job cannot meet λ at all, forced shelf-1 width
// overflows m, or minimal total work exceeds the area λ·m.
func SelectAllotments(jobs []*workload.Job, m int, lambda float64) (allot []Allotment, ok bool) {
	if lambda <= 0 {
		return nil, false
	}
	type option struct {
		q1, q2 int     // γ(λ), γ(λ/2); q2 == 0 ⇒ forced shelf 1
		w1, w2 float64 // corresponding works
	}
	opts := make([]option, len(jobs))
	forcedWidth := 0
	baseWork := 0.0 // work if every optional job sits on shelf 2
	for i, j := range jobs {
		q1 := j.Gamma(lambda, m)
		if q1 == 0 {
			return nil, false // job cannot meet the deadline at all
		}
		q2 := j.Gamma(lambda/2, m)
		o := option{q1: q1, q2: q2, w1: j.WorkOn(q1)}
		if q2 > 0 {
			o.w2 = j.WorkOn(q2)
			baseWork += o.w2
		} else {
			forcedWidth += q1
			baseWork += o.w1
		}
		opts[i] = o
	}
	if forcedWidth > m {
		return nil, false
	}
	capacity := m - forcedWidth

	// 0/1 knapsack: moving an optional job to shelf 1 saves (w2 - w1) ≥ 0
	// work (monotone jobs) but consumes q1 of the shelf-1 width budget.
	// Maximize savings within the remaining capacity. Jobs whose two
	// options coincide (q1 == q2) stay on shelf 2 — identical cost, no
	// width consumed.
	type cand struct {
		idx    int
		width  int
		saving float64
	}
	var cands []cand
	for i, o := range opts {
		if o.q2 == 0 || o.q1 == o.q2 {
			continue
		}
		saving := o.w2 - o.w1
		if saving < 0 {
			saving = 0 // non-monotone profile; shelf 1 never pays off
		}
		cands = append(cands, cand{idx: i, width: o.q1, saving: saving})
	}
	dp := make([]float64, capacity+1)
	take := make([][]bool, len(cands))
	for k, c := range cands {
		take[k] = make([]bool, capacity+1)
		for w := capacity; w >= c.width; w-- {
			if v := dp[w-c.width] + c.saving; v > dp[w] {
				dp[w] = v
				take[k][w] = true
			}
		}
	}
	// Reconstruct choices.
	onShelf1 := make(map[int]bool)
	w := capacity
	for k := len(cands) - 1; k >= 0; k-- {
		if take[k][w] {
			onShelf1[cands[k].idx] = true
			w -= cands[k].width
		}
	}
	totalWork := baseWork - dp[capacity]
	if totalWork > lambda*float64(m)*(1+1e-12) {
		return nil, false
	}

	allot = make([]Allotment, len(jobs))
	for i, j := range jobs {
		o := opts[i]
		switch {
		case o.q2 == 0 || onShelf1[i]:
			allot[i] = Allotment{Job: j, Procs: o.q1, Time: j.TimeOn(o.q1), Shelf: 1}
		default:
			allot[i] = Allotment{Job: j, Procs: o.q2, Time: j.TimeOn(o.q2), Shelf: 2}
		}
	}
	return allot, true
}

// GreedyAllotments is the ablation alternative to the knapsack: jobs are
// assigned γ(j, λ) unconditionally (everyone targets the λ-shelf) and
// classified by their resulting time. Cheaper but ignores the shelf-1
// width budget, so construction fails more often and the binary search
// settles on larger guesses.
func GreedyAllotments(jobs []*workload.Job, m int, lambda float64) (allot []Allotment, ok bool) {
	if lambda <= 0 {
		return nil, false
	}
	allot = make([]Allotment, len(jobs))
	var work float64
	for i, j := range jobs {
		q := j.Gamma(lambda, m)
		if q == 0 {
			return nil, false
		}
		t := j.TimeOn(q)
		shelf := 1
		if t <= lambda/2 {
			shelf = 2
		}
		allot[i] = Allotment{Job: j, Procs: q, Time: t, Shelf: shelf}
		work += allot[i].Work()
	}
	if work > lambda*float64(m)*(1+1e-12) {
		return nil, false
	}
	return allot, true
}

// TotalWork sums the work of an allotment set.
func TotalWork(allot []Allotment) float64 {
	var w float64
	for _, a := range allot {
		w += a.Work()
	}
	return w
}

// Shelf1Width sums the widths of shelf-1 allotments.
func Shelf1Width(allot []Allotment) int {
	var w int
	for _, a := range allot {
		if a.Shelf == 1 {
			w += a.Procs
		}
	}
	return w
}

// checkAllotment validates internal invariants (used by tests).
func checkAllotment(allot []Allotment, m int, lambda float64) error {
	for _, a := range allot {
		if a.Time > lambda*(1+1e-9) {
			return fmt.Errorf("moldable: job %d time %v exceeds λ=%v", a.Job.ID, a.Time, lambda)
		}
		if a.Shelf == 2 && a.Time > lambda/2*(1+1e-9) {
			return fmt.Errorf("moldable: shelf-2 job %d time %v exceeds λ/2", a.Job.ID, a.Time)
		}
		if a.Shelf != 1 && a.Shelf != 2 {
			return fmt.Errorf("moldable: job %d on shelf %d", a.Job.ID, a.Shelf)
		}
	}
	if w := Shelf1Width(allot); w > m {
		return fmt.Errorf("moldable: shelf-1 width %d exceeds %d", w, m)
	}
	if tw := TotalWork(allot); tw > lambda*float64(m)*(1+1e-9) {
		return fmt.Errorf("moldable: total work %v exceeds area %v", tw, lambda*float64(m))
	}
	if math.IsNaN(TotalWork(allot)) {
		return fmt.Errorf("moldable: NaN work")
	}
	return nil
}
