package moldable

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lowerbound"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func mold(id int, seq float64, maxP int, model workload.SpeedupModel) *workload.Job {
	j := &workload.Job{
		ID: id, Kind: workload.Moldable, Weight: 1, DueDate: -1,
		SeqTime: seq, MinProcs: 1, MaxProcs: maxP, Model: model,
	}
	j.Times = workload.MakeTable(model, seq, maxP)
	return j
}

func randomInstance(seed uint64, n, m int) []*workload.Job {
	rng := stats.NewRNG(seed)
	jobs := make([]*workload.Job, n)
	for i := range jobs {
		var model workload.SpeedupModel
		if rng.Bool(0.5) {
			model = workload.Amdahl{Alpha: rng.Range(0.02, 0.3)}
		} else {
			model = workload.PowerLaw{Sigma: rng.Range(0.5, 1.0)}
		}
		jobs[i] = mold(i, rng.Range(1, 100), rng.IntRange(1, m), model)
	}
	return jobs
}

func TestSelectAllotmentsInvariants(t *testing.T) {
	jobs := randomInstance(1, 50, 16)
	lb := lowerbound.CmaxDual(jobs, 16)
	for _, mult := range []float64{1.0, 1.2, 2.0} {
		lambda := lb * mult
		allot, ok := SelectAllotments(jobs, 16, lambda)
		if !ok {
			if mult >= 1.0 {
				// λ ≥ LB must pass the feasibility test: the dual bound is
				// precisely the smallest feasible λ.
				t.Fatalf("λ=%v (mult %v) declared infeasible", lambda, mult)
			}
			continue
		}
		if err := checkAllotment(allot, 16, lambda); err != nil {
			t.Fatalf("mult %v: %v", mult, err)
		}
		if len(allot) != len(jobs) {
			t.Fatalf("allotment dropped jobs: %d of %d", len(allot), len(jobs))
		}
	}
}

func TestSelectAllotmentsInfeasibleLambda(t *testing.T) {
	jobs := []*workload.Job{mold(1, 100, 1, workload.Linear{})}
	// Sequential-only job of length 100 cannot meet λ=50.
	if _, ok := SelectAllotments(jobs, 8, 50); ok {
		t.Fatal("infeasible λ accepted")
	}
	if _, ok := SelectAllotments(jobs, 8, 0); ok {
		t.Fatal("λ=0 accepted")
	}
}

func TestSelectAllotmentsKnapsackPrefersShelf1Savings(t *testing.T) {
	// Two jobs with strong speedup: on a tight λ both want small procs on
	// shelf 1; verify the knapsack respects the width budget m.
	jobs := []*workload.Job{
		mold(1, 40, 8, workload.Linear{}),
		mold(2, 40, 8, workload.Linear{}),
	}
	m := 8
	lb := lowerbound.CmaxDual(jobs, m) // = 10 (80 work / 8)
	allot, ok := SelectAllotments(jobs, m, lb)
	if !ok {
		t.Fatalf("λ=LB=%v infeasible", lb)
	}
	if w := Shelf1Width(allot); w > m {
		t.Fatalf("shelf-1 width %d exceeds %d", w, m)
	}
}

func TestMRTEmptyAndSingle(t *testing.T) {
	res, err := MRT(nil, 4, 0.01)
	if err != nil || len(res.Schedule.Allocs) != 0 {
		t.Fatalf("empty MRT: %v, %v", res, err)
	}
	j := mold(1, 10, 4, workload.Linear{})
	res, err = MRT([]*workload.Job{j}, 4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// One perfectly parallel job: optimum is 10/4 = 2.5.
	if res.Schedule.Makespan() > 2.5*1.05 {
		t.Fatalf("single-job makespan %v, optimum 2.5", res.Schedule.Makespan())
	}
}

func TestMRTRejectsImpossibleJob(t *testing.T) {
	j := &workload.Job{
		ID: 1, Kind: workload.Rigid, SeqTime: 10, MinProcs: 8, MaxProcs: 8,
		Model: workload.Linear{}, Weight: 1, DueDate: -1,
	}
	if _, err := MRT([]*workload.Job{j}, 4, 0.01); err == nil {
		t.Fatal("job wider than platform accepted")
	}
}

func TestMRTShelfBoundInvariant(t *testing.T) {
	// The accepted guess must satisfy makespan ≤ 3λ/2 (the construction
	// invariant of the dual approximation).
	for seed := uint64(0); seed < 10; seed++ {
		jobs := randomInstance(seed, 60, 20)
		res, err := MRT(jobs, 20, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if mk := res.Schedule.Makespan(); mk > 1.5*res.Lambda*(1+1e-6) {
			t.Fatalf("seed %d: makespan %v exceeds 3λ/2 = %v", seed, mk, 1.5*res.Lambda)
		}
		if err := res.Schedule.Covers(jobs); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMRTRatioOnMonotoneInstances(t *testing.T) {
	// §4.1 guarantee: ratio 3/2 + ε against the optimum. We measure
	// against the (weaker) lower bound; the measured ratio must stay
	// within 3/2 + ε against it on these instances, since the accepted
	// guess λ* ≤ (1+ε)·λmin and makespan ≤ 3λ*/2 with λmin ≤ ~LB here.
	worst := 0.0
	for seed := uint64(10); seed < 25; seed++ {
		jobs := randomInstance(seed, 80, 32)
		res, err := MRT(jobs, 32, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if r := res.Ratio(); r > worst {
			worst = r
		}
	}
	if worst > 1.55 {
		t.Fatalf("worst measured ratio %v exceeds 3/2 + ε envelope", worst)
	}
	if worst < 1.0-1e-9 {
		t.Fatalf("ratio %v below 1 — lower bound broken", worst)
	}
}

func TestMRTIdenticalSequentialJobs(t *testing.T) {
	// m identical sequential jobs: optimum = their time; MRT must be
	// exactly optimal here (they all fit side by side).
	var jobs []*workload.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, mold(i, 10, 1, workload.Linear{}))
	}
	res, err := MRT(jobs, 8, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() > 10*1.01 {
		t.Fatalf("makespan %v, want ~10", res.Schedule.Makespan())
	}
}

func TestMRTGreedyAblationStillValid(t *testing.T) {
	jobs := randomInstance(30, 40, 16)
	res, err := MRTWithAllot(jobs, 16, 0.01, GreedyAllotments)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}); err != nil {
		t.Fatal(err)
	}
	knap, err := MRT(jobs, 16, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The knapsack should never be meaningfully worse than greedy.
	if knap.Schedule.Makespan() > res.Schedule.Makespan()*1.1 {
		t.Fatalf("knapsack %v much worse than greedy %v",
			knap.Schedule.Makespan(), res.Schedule.Makespan())
	}
}

func TestConstructForDeadline(t *testing.T) {
	jobs := randomInstance(40, 30, 16)
	lb := lowerbound.CmaxDual(jobs, 16)
	// A generous deadline must succeed and fit in 3d/2.
	s, ok := ConstructForDeadline(jobs, 16, 2*lb)
	if !ok {
		t.Fatal("generous deadline failed")
	}
	if s.Makespan() > 3*lb*(1+1e-9) {
		t.Fatalf("makespan %v exceeds 3d/2", s.Makespan())
	}
	// An absurdly tight deadline must fail.
	if _, ok := ConstructForDeadline(jobs, 16, lb/100); ok {
		t.Fatal("absurd deadline succeeded")
	}
}

func TestBaselines(t *testing.T) {
	jobs := randomInstance(50, 40, 16)
	for name, f := range map[string]func([]*workload.Job, int) (*sched.Schedule, error){
		"MinWorkList":  MinWorkList,
		"MaxProcsList": MaxProcsList,
		"GammaList":    GammaList,
	} {
		s, err := f(jobs, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		if err := s.Covers(jobs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Baseline allocations differ from the original moldable jobs'
		// open ranges, but must reference the original pointers.
		for _, a := range s.Allocs {
			if a.Job != jobs[a.Job.ID] {
				t.Fatalf("%s: schedule references cloned job %d", name, a.Job.ID)
			}
		}
	}
}

func TestMRTBeatsNaiveBaselinesOnParallelWork(t *testing.T) {
	// Strong-speedup jobs: MinWorkList (all sequential) should be clearly
	// worse than MRT.
	var jobs []*workload.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, mold(i, 64, 16, workload.PowerLaw{Sigma: 0.95}))
	}
	m := 16
	mrt, err := MRT(jobs, m, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := MinWorkList(jobs, m)
	if err != nil {
		t.Fatal(err)
	}
	if mrt.Schedule.Makespan() >= seq.Makespan() {
		t.Fatalf("MRT %v not better than sequential baseline %v on parallel work",
			mrt.Schedule.Makespan(), seq.Makespan())
	}
}

// Property: MRT always emits a valid complete schedule with the shelf
// invariant, for arbitrary monotone random instances.
func TestMRTProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 1
		m := int(mRaw%30) + 2
		jobs := randomInstance(seed, n, m)
		res, err := MRT(jobs, m, 0.02)
		if err != nil {
			return false
		}
		if res.Schedule.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}) != nil {
			return false
		}
		if res.Schedule.Covers(jobs) != nil {
			return false
		}
		mk := res.Schedule.Makespan()
		return mk <= 1.5*res.Lambda*(1+1e-6) && mk >= res.LowerBound*(1-1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the knapsack allotment never selects more total work than the
// greedy allotment at the same λ (it minimizes work under the width
// constraint; greedy ignores the constraint but picks γ(λ) which is the
// work-minimal deadline-λ allocation... so greedy work ≤ knapsack work is
// also possible — instead we check both respect the area bound).
func TestAllotmentAreaProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 24)
		jobs := randomInstance(seed, rng.IntRange(1, 40), m)
		lambda := lowerbound.CmaxDual(jobs, m) * rng.Range(1.0, 3.0)
		for _, f := range []AllotFunc{SelectAllotments, GreedyAllotments} {
			if allot, ok := f(jobs, m, lambda); ok {
				if TotalWork(allot) > lambda*float64(m)*(1+1e-9) {
					return false
				}
				for _, a := range allot {
					if a.Time > lambda*(1+1e-9) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestResultRatioDegenerate(t *testing.T) {
	r := &Result{Schedule: sched.New(4), LowerBound: 0}
	if r.Ratio() != 1 {
		t.Fatal("degenerate ratio != 1")
	}
}

func TestRhoConstant(t *testing.T) {
	if math.Abs(Rho-1.5) > 0 {
		t.Fatal("Rho drifted from the §4.1 value")
	}
}
