package moldable

import (
	"testing"

	"repro/internal/lowerbound"
	"repro/internal/workload"
)

func benchInstance(n, m int) []*workload.Job {
	return workload.Parallel(workload.GenConfig{N: n, M: m, Seed: 99})
}

func BenchmarkMRT100x64(b *testing.B) {
	jobs := benchInstance(100, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MRT(jobs, 64, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRT1000x100(b *testing.B) {
	jobs := benchInstance(1000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MRT(jobs, 100, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectAllotments(b *testing.B) {
	jobs := benchInstance(500, 100)
	lambda := lowerbound.CmaxDual(jobs, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := SelectAllotments(jobs, 100, lambda*1.2); !ok {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkConstructForDeadline(b *testing.B) {
	jobs := benchInstance(500, 100)
	d := lowerbound.CmaxDual(jobs, 100) * 1.5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ConstructForDeadline(jobs, 100, d); !ok {
			b.Fatal("construction failed")
		}
	}
}
