// Package core answers the paper's title question — which policy for
// which application? — as an executable decision procedure. An
// application profile (§2's taxonomy: rigid / moldable / divisible,
// offline / online, which §3 criterion matters) maps to the algorithm
// the paper's analysis recommends, with its proven guarantee:
//
//	offline moldable, Cmax           → MRT dual approximation   (3/2 + ε, §4.1)
//	online  moldable, Cmax           → batches over MRT         (3 + ε,   §4.2)
//	rigid, ΣCi / ΣωiCi               → SMART shelves            (8 / 8.53, §4.3)
//	moldable, Cmax AND ΣωiCi         → doubling bi-criteria     (4ρ = 6,  §4.4)
//	offline rigid, Cmax              → strip packing (FFDH/list)           (§2.2)
//	online  rigid, Cmax              → conservative backfilling            (§5.2)
//	divisible (multi-parametric)     → DLT distribution / best-effort grid (§2.1, §5.2)
//
// Run executes the recommendation on a concrete instance and returns the
// schedule, so the decision table is continuously validated by tests.
package core

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/bicriteria"
	"repro/internal/moldable"
	"repro/internal/rigid"
	"repro/internal/sched"
	"repro/internal/smart"
	"repro/internal/workload"
)

// Criterion is the optimization objective (§3).
type Criterion int

const (
	// Makespan is Cmax.
	Makespan Criterion = iota
	// WeightedCompletion is ΣωiCi (ΣCi when all weights are 1).
	WeightedCompletion
	// BiCriteria optimizes Cmax and ΣωiCi simultaneously.
	BiCriteria
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case Makespan:
		return "Cmax"
	case WeightedCompletion:
		return "ΣwC"
	case BiCriteria:
		return "Cmax+ΣwC"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Profile classifies an application per the paper's taxonomy.
type Profile struct {
	// Online means release dates are revealed over time (§4.2).
	Online bool
	// Moldable means jobs accept a processor-count choice (§2.2);
	// false = rigid.
	Moldable bool
	// Divisible means the workload is a fine-grain multi-parametric bag
	// (§2.1) — the DLT model applies instead of PT.
	Divisible bool
	// Criterion is the target objective.
	Criterion Criterion
}

// Recommendation names the policy the paper's analysis selects.
type Recommendation struct {
	Policy    string
	Guarantee string
	Section   string
	Rationale string
}

// Recommend maps a profile to the paper's answer.
func Recommend(p Profile) Recommendation {
	if p.Divisible {
		return Recommendation{
			Policy:    "dlt",
			Guarantee: "polynomial optimal single-round / asymptotically optimal steady state",
			Section:   "§2.1, §5.2",
			Rationale: "arbitrarily partitionable fine-grain work: distribute by closed form, or feed as best-effort grid jobs to fill holes",
		}
	}
	switch {
	case p.Criterion == BiCriteria:
		return Recommendation{
			Policy:    "bicriteria-doubling",
			Guarantee: "4ρ = 6 on both Cmax and ΣωiCi",
			Section:   "§4.4",
			Rationale: "doubling batches of a deadline procedure balance both antagonistic criteria",
		}
	case p.Criterion == WeightedCompletion:
		return Recommendation{
			Policy:    "smart-shelves",
			Guarantee: "8 (ΣCi), 8.53 (ΣωiCi)",
			Section:   "§4.3",
			Rationale: "power-of-two shelves ordered by Smith's rule bound completion-time sums for rigid tasks",
		}
	case p.Moldable && p.Online:
		return Recommendation{
			Policy:    "batch-mrt",
			Guarantee: "3 + ε",
			Section:   "§4.2",
			Rationale: "gathering arrivals into batches doubles the offline 3/2 + ε ratio",
		}
	case p.Moldable:
		return Recommendation{
			Policy:    "mrt",
			Guarantee: "3/2 + ε",
			Section:   "§4.1",
			Rationale: "dual-approximation knapsack allotment + two-shelf construction",
		}
	case p.Online:
		return Recommendation{
			Policy:    "conservative-backfilling",
			Guarantee: "heuristic (no constant ratio)",
			Section:   "§5.2",
			Rationale: "rigid online jobs: fill holes without delaying earlier-queued jobs",
		}
	default:
		return Recommendation{
			Policy:    "ffdh",
			Guarantee: "strip-packing constant (asymptotic 1.7·OPT + hmax for FFDH heights)",
			Section:   "§2.2",
			Rationale: "rigid offline jobs are rectangles: classic shelf packing",
		}
	}
}

// Run executes the recommended policy on the instance and returns the
// schedule. Divisible profiles are rejected — use the dlt package (the
// work there is a load mass, not discrete jobs).
func Run(jobs []*workload.Job, m int, p Profile) (*sched.Schedule, Recommendation, error) {
	rec := Recommend(p)
	var (
		s   *sched.Schedule
		err error
	)
	switch rec.Policy {
	case "dlt":
		return nil, rec, fmt.Errorf("core: divisible workloads are handled by the dlt package, not discrete scheduling")
	case "bicriteria-doubling":
		var res *bicriteria.Result
		res, err = bicriteria.Schedule(jobs, m, bicriteria.Options{})
		if err == nil {
			s = res.Schedule
		}
	case "smart-shelves":
		s, _, err = smart.Schedule(jobs, m, smart.FirstFit)
	case "batch-mrt":
		var res *batch.Result
		res, err = batch.OnlineMoldable(jobs, m, 0.01)
		if err == nil {
			s = res.Schedule
		}
	case "mrt":
		var res *moldable.Result
		res, err = moldable.MRT(jobs, m, 0.01)
		if err == nil {
			s = res.Schedule
		}
	case "conservative-backfilling":
		s, err = rigid.Conservative(jobs, m)
	case "ffdh":
		var shelves []*rigid.Shelf
		shelves, err = rigid.FFDH(jobs, m)
		if err == nil {
			s = rigid.ShelvesToSchedule(shelves, m)
		}
	default:
		err = fmt.Errorf("core: unknown policy %q", rec.Policy)
	}
	if err != nil {
		return nil, rec, err
	}
	opts := sched.ValidateOptions{IgnoreReleases: !p.Online}
	if err := s.ValidateWith(opts); err != nil {
		return nil, rec, fmt.Errorf("core: policy %q produced invalid schedule: %w", rec.Policy, err)
	}
	return s, rec, nil
}
