package core

import (
	"testing"

	"repro/internal/workload"
)

func TestRecommendTable(t *testing.T) {
	cases := []struct {
		p    Profile
		want string
	}{
		{Profile{Divisible: true}, "dlt"},
		{Profile{Criterion: BiCriteria, Moldable: true}, "bicriteria-doubling"},
		{Profile{Criterion: WeightedCompletion}, "smart-shelves"},
		{Profile{Moldable: true, Online: true}, "batch-mrt"},
		{Profile{Moldable: true}, "mrt"},
		{Profile{Online: true}, "conservative-backfilling"},
		{Profile{}, "ffdh"},
	}
	for _, c := range cases {
		got := Recommend(c.p)
		if got.Policy != c.want {
			t.Errorf("Recommend(%+v) = %q, want %q", c.p, got.Policy, c.want)
		}
		if got.Guarantee == "" || got.Section == "" || got.Rationale == "" {
			t.Errorf("incomplete recommendation for %+v: %+v", c.p, got)
		}
	}
}

func TestCriterionString(t *testing.T) {
	if Makespan.String() != "Cmax" || WeightedCompletion.String() != "ΣwC" ||
		BiCriteria.String() != "Cmax+ΣwC" {
		t.Fatal("Criterion strings drifted")
	}
}

func TestRunAllPTPolicies(t *testing.T) {
	m := 16
	moldableJobs := workload.Parallel(workload.GenConfig{N: 30, M: m, Seed: 1, Weighted: true})
	onlineMoldable := workload.Parallel(workload.GenConfig{N: 30, M: m, Seed: 2, ArrivalRate: 0.2})
	rigidJobs := workload.Parallel(workload.GenConfig{N: 30, M: m, Seed: 3, RigidFraction: 1})
	onlineRigid := workload.Parallel(workload.GenConfig{N: 30, M: m, Seed: 4, RigidFraction: 1, ArrivalRate: 0.2})

	cases := []struct {
		name string
		p    Profile
		jobs []*workload.Job
	}{
		{"mrt", Profile{Moldable: true}, moldableJobs},
		{"batch", Profile{Moldable: true, Online: true}, onlineMoldable},
		{"smart", Profile{Criterion: WeightedCompletion}, rigidJobs},
		{"bicriteria", Profile{Criterion: BiCriteria, Moldable: true}, moldableJobs},
		{"ffdh", Profile{}, rigidJobs},
		{"conservative", Profile{Online: true}, onlineRigid},
	}
	for _, c := range cases {
		s, rec, err := Run(c.jobs, m, c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if s == nil || len(s.Allocs) != len(c.jobs) {
			t.Fatalf("%s (%s): incomplete schedule", c.name, rec.Policy)
		}
		if err := s.Covers(c.jobs); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestRunRejectsDivisible(t *testing.T) {
	if _, _, err := Run(nil, 4, Profile{Divisible: true}); err == nil {
		t.Fatal("divisible profile accepted by Run")
	}
}

func TestRunPropagatesPolicyErrors(t *testing.T) {
	// A job wider than the platform makes every policy fail cleanly.
	j := &workload.Job{
		ID: 1, Kind: workload.Rigid, Weight: 1, DueDate: -1,
		SeqTime: 10, MinProcs: 64, MaxProcs: 64, Model: workload.Linear{},
	}
	for _, p := range []Profile{
		{Moldable: true}, {Criterion: WeightedCompletion}, {},
	} {
		if _, _, err := Run([]*workload.Job{j}, 4, p); err == nil {
			t.Fatalf("oversized job accepted by %+v", p)
		}
	}
}
