package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestNewRNGDifferentSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	sub := a.Split()
	// Continuing the parent must not mirror the child.
	if a.Uint64() == sub.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange out of range: %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("degenerate IntRange = %d", got)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(17)
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(19)
	const n = 50001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(2.0, 1.0)
	}
	sort.Float64s(xs)
	median := xs[n/2]
	want := math.Exp(2.0)
	if math.Abs(median-want)/want > 0.05 {
		t.Fatalf("lognormal median = %v, want ~%v", median, want)
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	r := NewRNG(23)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, 3)
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("Weibull(1,3) mean = %v, want ~3", mean)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 10000; i++ {
		x := r.BoundedPareto(1.5, 10, 1000)
		if x < 10-1e-9 || x > 1000+1e-9 {
			t.Fatalf("BoundedPareto out of range: %v", x)
		}
	}
}

func TestZipfRange(t *testing.T) {
	r := NewRNG(31)
	counts := make([]int, 11)
	for i := 0; i < 20000; i++ {
		k := r.Zipf(1.2, 10)
		if k < 1 || k > 10 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("Zipf not decreasing: rank1=%d rank10=%d", counts[1], counts[10])
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(37)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestChoiceWeighted(t *testing.T) {
	r := NewRNG(41)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("Choice frequencies not ordered: %v", counts)
	}
	// Zero-weight entries must never be chosen.
	for i := 0; i < 1000; i++ {
		if r.Choice([]float64{0, 1, 0}) != 1 {
			t.Fatal("Choice picked a zero-weight entry")
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestGeoMean(t *testing.T) {
	s := Summarize([]float64{1, 100})
	if math.Abs(s.GeoMean()-10) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 10", s.GeoMean())
	}
	s2 := Summarize([]float64{0, 5})
	if s2.GeoMean() != 0 {
		t.Fatalf("GeoMean with zero sample = %v, want 0", s2.GeoMean())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 50} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestMeanCI(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 5
	}
	mean, hw := MeanCI(xs)
	if mean != 5 || hw != 0 {
		t.Fatalf("constant-sample CI = %v ± %v", mean, hw)
	}
}

// Property: quantiles are monotone in q for any sample.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm always returns a valid permutation.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: summary bounds bracket the mean and quantiles.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		eps := 1e-9 * (1 + math.Abs(s.Max))
		return s.Min <= s.Mean+eps && s.Mean <= s.Max+eps &&
			s.Min <= s.P50+eps && s.P50 <= s.Max+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
