package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates basic statistics over a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	P50, P90, P99  float64
	Sum            float64
	geometricAccum float64
}

// Summarize computes a Summary over the sample. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	logs := 0.0
	allPos := true
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x > 0 {
			logs += math.Log(x)
		} else {
			allPos = false
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Quantile(sorted, 0.50)
	s.P90 = Quantile(sorted, 0.90)
	s.P99 = Quantile(sorted, 0.99)
	if allPos {
		s.geometricAccum = math.Exp(logs / float64(s.N))
	}
	return s
}

// GeoMean returns the geometric mean, or 0 if any sample was non-positive.
func (s Summary) GeoMean() float64 { return s.geometricAccum }

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p90=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanCI returns the mean together with a 95% confidence half-width using
// the normal approximation (adequate for the replication counts we run).
func MeanCI(xs []float64) (mean, halfWidth float64) {
	s := Summarize(xs)
	if s.N < 2 {
		return s.Mean, 0
	}
	return s.Mean, 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples < Lo
	Over   int // samples >= Hi
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i == len(h.Counts) { // floating point edge
		i--
	}
	h.Counts[i]++
}

// Total returns the number of samples recorded, including out-of-range.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}
