// Package stats provides deterministic pseudo-random number generation,
// probability distributions and summary statistics for the scheduling
// simulations. Everything is seeded explicitly so that every experiment in
// the repository is reproducible bit-for-bit.
//
// The generator is xoshiro256** seeded through splitmix64, following the
// reference construction by Blackman and Vigna. It is small, fast, and has
// no global state: each RNG value is an independent stream.
package stats

import "math"

// RNG is a deterministic pseudo-random generator (xoshiro256**).
// The zero value is not valid; use NewRNG.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed and returns the next splitmix64 output.
// It is used only to initialize the xoshiro state from a single word.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given seed. Two generators
// built from the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new generator whose stream is independent from r's
// continued stream. It is used to hand sub-streams to workload generators
// so that adding a consumer does not perturb the others.
func (r *RNG) Split() *RNG {
	seed := r.Uint64() ^ 0xd1b54a32d192ed03
	return NewRNG(seed)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill
	// here; modulo bias is negligible for the ranges we use (n << 2^64),
	// but we still reject the biased tail for exactness.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	// Guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// LogNormal returns a lognormal variate with the given parameters of the
// underlying normal distribution.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Weibull returns a Weibull variate with shape k and scale lambda.
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Weibull with non-positive parameter")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// BoundedPareto returns a Pareto variate with index alpha truncated to
// [lo, hi]. Heavy-tailed sizes such as multi-parametric bag run counts are
// drawn from this.
func (r *RNG) BoundedPareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("stats: BoundedPareto with invalid parameters")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Zipf returns an integer in [1, n] with probability proportional to
// 1/rank^s, by inverse transform over the precomputed CDF-free rejection of
// Jain. For the small n used in workloads a linear scan is fine.
func (r *RNG) Zipf(s float64, n int) int {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	// Normalization constant.
	var h float64
	for k := 1; k <= n; k++ {
		h += 1 / math.Pow(float64(k), s)
	}
	u := r.Float64() * h
	var acc float64
	for k := 1; k <= n; k++ {
		acc += 1 / math.Pow(float64(k), s)
		if u <= acc {
			return k
		}
	}
	return n
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle shuffles the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly chosen index weighted by w (all weights must
// be non-negative, with positive sum).
func (r *RNG) Choice(w []float64) int {
	var sum float64
	for _, x := range w {
		if x < 0 {
			panic("stats: Choice with negative weight")
		}
		sum += x
	}
	if sum <= 0 {
		panic("stats: Choice with non-positive weight sum")
	}
	u := r.Float64() * sum
	var acc float64
	for i, x := range w {
		acc += x
		if u <= acc {
			return i
		}
	}
	return len(w) - 1
}
