package malleable

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lowerbound"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workload"
)

func mjob(id int, seq float64, minP, maxP int) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Malleable, Weight: 1, DueDate: -1,
		SeqTime: seq, MinProcs: minP, MaxProcs: maxP, Model: workload.Linear{},
	}
}

func TestSingleJobUsesMaxProcs(t *testing.T) {
	j := mjob(1, 16, 1, 4)
	res, err := Schedule([]*workload.Job{j}, 8, Equi)
	if err != nil {
		t.Fatal(err)
	}
	// Alone on the machine: runs at MaxProcs=4 → 16/4 = 4 s.
	if math.Abs(res.Makespan-4) > 1e-9 {
		t.Fatalf("makespan %v, want 4", res.Makespan)
	}
	if res.Reallocations != 0 {
		t.Fatalf("%d reallocations for a lone job", res.Reallocations)
	}
}

func TestEquipartitionIdenticalLinearJobsIsOptimal(t *testing.T) {
	// k identical fully-parallel jobs on m procs: EQUI keeps the machine
	// saturated, so makespan = total work / m (the area bound).
	var jobs []*workload.Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, mjob(i, 32, 1, 8))
	}
	res, err := Schedule(jobs, 8, Equi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-16) > 1e-6 {
		t.Fatalf("makespan %v, want 4*32/8 = 16", res.Makespan)
	}
}

func TestMalleableAdaptsToCompletions(t *testing.T) {
	// A short and a long job: when the short one finishes, the long one
	// must absorb its processors and finish earlier than with a static
	// split.
	short := mjob(1, 8, 1, 8)
	long := mjob(2, 40, 1, 8)
	res, err := Schedule([]*workload.Job{short, long}, 8, Equi)
	if err != nil {
		t.Fatal(err)
	}
	// Static halves: long takes 40/4 = 10. Malleable: both at 4 until
	// short ends at 2 (8/4), then long at 8 procs: remaining 40-2*4=32
	// work → 4 more seconds → 6 total.
	if math.Abs(res.Makespan-6) > 1e-6 {
		t.Fatalf("makespan %v, want 6", res.Makespan)
	}
	if res.Reallocations == 0 {
		t.Fatal("no reallocation recorded")
	}
}

func TestReleaseDatesRespected(t *testing.T) {
	a := mjob(1, 10, 1, 2)
	b := mjob(2, 10, 1, 2)
	b.Release = 100
	res, err := Schedule([]*workload.Job{a, b}, 4, Equi)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Completions {
		if c.Start < c.Job.Release-1e-9 {
			t.Fatalf("job %d started at %v before release %v", c.Job.ID, c.Start, c.Job.Release)
		}
	}
}

func TestMinProcsAdmissionFCFS(t *testing.T) {
	// Two jobs each requiring the whole machine: strictly sequential.
	a := mjob(1, 8, 4, 4)
	b := mjob(2, 8, 4, 4)
	res, err := Schedule([]*workload.Job{a, b}, 4, Equi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-4) > 1e-9 {
		t.Fatalf("makespan %v, want 2+2", res.Makespan)
	}
	var first, second float64
	for _, c := range res.Completions {
		if c.Job.ID == 1 {
			first = c.End
		} else {
			second = c.End
		}
	}
	if !(first < second) {
		t.Fatal("FCFS admission violated")
	}
}

func TestWeightProportionalFavorsHeavy(t *testing.T) {
	heavy := mjob(1, 32, 1, 16)
	heavy.Weight = 9
	light := mjob(2, 32, 1, 16)
	light.Weight = 1
	res, err := Schedule([]*workload.Job{heavy, light}, 10, WeightProportional)
	if err != nil {
		t.Fatal(err)
	}
	var endH, endL float64
	for _, c := range res.Completions {
		if c.Job.ID == 1 {
			endH = c.End
		} else {
			endL = c.End
		}
	}
	if endH >= endL {
		t.Fatalf("heavy job finished at %v, after light at %v", endH, endL)
	}
}

func TestOversizedJobRejected(t *testing.T) {
	if _, err := Schedule([]*workload.Job{mjob(1, 4, 8, 8)}, 4, Equi); err == nil {
		t.Fatal("oversized job accepted")
	}
	if _, err := Schedule(nil, 0, Equi); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestMalleableAtLeastLowerBound(t *testing.T) {
	jobs := workload.Parallel(workload.GenConfig{N: 40, M: 16, Seed: 3})
	for _, j := range jobs {
		j.Kind = workload.Malleable
	}
	res, err := Schedule(jobs, 16, Equi)
	if err != nil {
		t.Fatal(err)
	}
	lb := lowerbound.CmaxDual(jobs, 16)
	if res.Makespan < lb*(1-1e-9) {
		t.Fatalf("makespan %v below lower bound %v", res.Makespan, lb)
	}
}

func TestMalleableVsMoldableOnLinearJobs(t *testing.T) {
	// With linear speedups and no allocation caps, malleability can only
	// help versus the moldable one-shot choice: EQUI keeps the machine
	// saturated whenever work remains.
	rng := stats.NewRNG(11)
	var jobs []*workload.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, mjob(i, rng.Range(5, 50), 1, 16))
	}
	mal, err := Schedule(jobs, 16, Equi)
	if err != nil {
		t.Fatal(err)
	}
	mol, err := moldable.MRT(jobs, 16, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if mal.Makespan > mol.Schedule.Makespan()*(1+1e-6) {
		t.Fatalf("malleable EQUI (%v) worse than moldable MRT (%v) on linear jobs",
			mal.Makespan, mol.Schedule.Makespan())
	}
}

// Property: the simulation never overcommits the machine (sampled at
// completion records via a capacity sweep of piecewise allocations is
// not directly possible — allocations change over time — so we check
// the conservation invariants instead: every job completes exactly once,
// never before release + its fastest possible time, and makespan is at
// least the area bound).
func TestMalleableProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8, weighted bool) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw%30) + 1
		m := int(mRaw%14) + 2
		var jobs []*workload.Job
		clock := 0.0
		for i := 0; i < n; i++ {
			clock += rng.Exp(0.5)
			minP := rng.IntRange(1, m)
			j := mjob(i, rng.Range(1, 40), minP, rng.IntRange(minP, m))
			j.Release = clock
			if weighted {
				j.Weight = rng.Range(0.1, 10)
			}
			jobs = append(jobs, j)
		}
		share := Equi
		if weighted {
			share = WeightProportional
		}
		res, err := Schedule(jobs, m, share)
		if err != nil {
			return false
		}
		if len(res.Completions) != n {
			return false
		}
		seen := map[int]bool{}
		for _, c := range res.Completions {
			if seen[c.Job.ID] {
				return false
			}
			seen[c.Job.ID] = true
			minT, _ := c.Job.MinTime(m)
			if c.End < c.Job.Release+minT*(1-1e-6) {
				return false // finished impossibly fast
			}
			if c.Start < c.Job.Release-1e-9 {
				return false
			}
		}
		lb := lowerbound.CmaxArea(jobs, m)
		return res.Makespan >= lb*(1-1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check: total processor-seconds consumed (integrated from the
// per-interval allocations) can never exceed m × makespan. We verify via
// platform.PeakDemand over reconstructed constant-allocation segments of
// a two-job scenario.
func TestNoOvercommitTwoJobs(t *testing.T) {
	a := mjob(1, 12, 1, 3)
	b := mjob(2, 12, 1, 3)
	res, err := Schedule([]*workload.Job{a, b}, 4, Equi)
	if err != nil {
		t.Fatal(err)
	}
	// 4 procs split 2+2 until the first completion; both jobs run 12/2=6s
	// → both end at 6, no reallocation beyond the initial deal.
	if math.Abs(res.Makespan-6) > 1e-9 {
		t.Fatalf("makespan %v, want 6", res.Makespan)
	}
	intervals := []platform.Interval{}
	for _, c := range res.Completions {
		intervals = append(intervals, platform.Interval{Start: c.Start, End: c.End, Count: 2})
	}
	if platform.PeakDemand(intervals) > 4 {
		t.Fatal("overcommitted")
	}
}
