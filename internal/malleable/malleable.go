// Package malleable implements scheduling for the third Parallel Task
// class of §2.2 — malleable jobs, whose processor allocation may change
// during execution. The paper leaves malleability as future work ("in
// the near future, moldability and malleability should be used more and
// more"; "we will not consider malleability here"); this package
// implements it as the natural extension: the classical EQUIPARTITION
// policy, which redistributes the machine equally among active jobs at
// every arrival and completion, plus a weight-proportional variant.
//
// Execution semantics: a malleable job with profile TimeOn(p) executes
// at rate 1/TimeOn(p) "job fractions per second" while allocated p
// processors; reallocation is free (the penalty model already folds
// redistribution costs into the profile, exactly as §4 folds
// communications). Jobs whose MinProcs cannot be granted wait in FCFS
// order.
package malleable

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// Share selects how processors are split among active jobs.
type Share int

const (
	// Equi gives every active job an equal share (EQUIPARTITION).
	Equi Share = iota
	// WeightProportional shares in proportion to job weights (heavier
	// ΣωiCi jobs drain faster).
	WeightProportional
)

// Result is the outcome of a malleable simulation.
type Result struct {
	Completions []metrics.Completion
	// Reallocations counts allocation changes across all jobs (the cost
	// a runtime system would pay in migrations).
	Reallocations int
	// Makespan is the completion time of the last job.
	Makespan float64
}

type activeJob struct {
	job       *workload.Job
	remaining float64 // fraction of the job left, in [0, 1]
	procs     int
	newProcs  int // scratch for the reallocation round
	start     float64
	started   bool
}

// Schedule simulates the malleable policy on m processors. Jobs may
// carry release dates; admission is FCFS on the MinProcs budget and the
// surplus is re-dealt at every arrival and completion.
func Schedule(jobs []*workload.Job, m int, share Share) (*Result, error) {
	if m <= 0 {
		return nil, fmt.Errorf("malleable: %d processors", m)
	}
	for _, j := range jobs {
		if j.MinProcs > m {
			return nil, fmt.Errorf("malleable: job %d needs %d > %d procs", j.ID, j.MinProcs, m)
		}
	}
	pending := append([]*workload.Job(nil), jobs...)
	sort.SliceStable(pending, func(i, k int) bool {
		if pending[i].Release != pending[k].Release {
			return pending[i].Release < pending[k].Release
		}
		return pending[i].ID < pending[k].ID
	})

	res := &Result{}
	var active []*activeJob
	var waiting []*activeJob // admitted FCFS when MinProcs fits
	clock := 0.0
	idx := 0
	const tiny = 1e-12

	admit := func() {
		// Move waiting jobs into the active set while their minimum
		// allocation fits next to the other actives' minimums.
		minSum := 0
		for _, a := range active {
			minSum += a.job.MinProcs
		}
		for len(waiting) > 0 && minSum+waiting[0].job.MinProcs <= m {
			a := waiting[0]
			waiting = waiting[1:]
			minSum += a.job.MinProcs
			active = append(active, a)
		}
	}

	reallocate := func() {
		// Everyone gets MinProcs, then the surplus is dealt per the
		// share rule, capped by MaxProcs (and m).
		surplus := m
		for _, a := range active {
			a.newProcs = a.job.MinProcs
			surplus -= a.job.MinProcs
		}
		if surplus < 0 {
			panic("malleable: admission violated the MinProcs budget")
		}
		switch share {
		case WeightProportional:
			// Largest-remainder apportionment by weight.
			var wsum float64
			for _, a := range active {
				wsum += math.Max(a.job.Weight, tiny)
			}
			type frac struct {
				a *activeJob
				f float64
			}
			var fr []frac
			used := 0
			for _, a := range active {
				want := float64(surplus) * math.Max(a.job.Weight, tiny) / wsum
				grant := int(want)
				room := a.job.MaxProcs - a.newProcs
				if grant > room {
					grant = room
				}
				a.newProcs += grant
				used += grant
				fr = append(fr, frac{a, want - float64(int(want))})
			}
			surplus -= used
			sort.SliceStable(fr, func(i, k int) bool { return fr[i].f > fr[k].f })
			for _, f := range fr {
				if surplus == 0 {
					break
				}
				if f.a.newProcs < f.a.job.MaxProcs {
					f.a.newProcs++
					surplus--
				}
			}
		default: // Equi: round-robin one processor at a time
			for surplus > 0 {
				granted := false
				for _, a := range active {
					if surplus == 0 {
						break
					}
					if a.newProcs < a.job.MaxProcs {
						a.newProcs++
						surplus--
						granted = true
					}
				}
				if !granted {
					break // everyone saturated
				}
			}
		}
		for _, a := range active {
			if a.newProcs != a.procs {
				if a.started {
					res.Reallocations++
				}
				a.procs = a.newProcs
			}
			if !a.started {
				a.started = true
				a.start = clock
			}
		}
	}

	for idx < len(pending) || len(active) > 0 || len(waiting) > 0 {
		// Admit and (re)allocate.
		admit()
		if len(active) == 0 {
			if idx >= len(pending) {
				return nil, fmt.Errorf("malleable: %d jobs stuck waiting", len(waiting))
			}
			clock = math.Max(clock, pending[idx].Release)
			waiting = append(waiting, &activeJob{job: pending[idx], remaining: 1})
			idx++
			continue
		}
		reallocate()

		// Next event: earliest finish at current rates, or next arrival.
		nextFinish := math.Inf(1)
		for _, a := range active {
			if a.procs <= 0 {
				continue
			}
			if f := clock + a.remaining*a.job.TimeOn(a.procs); f < nextFinish {
				nextFinish = f
			}
		}
		nextArrival := math.Inf(1)
		if idx < len(pending) {
			nextArrival = math.Max(pending[idx].Release, clock)
		}
		next := math.Min(nextFinish, nextArrival)
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("malleable: no progress at t=%v", clock)
		}
		dt := next - clock

		// Integrate remaining fractions.
		if dt > 0 {
			for _, a := range active {
				if a.procs > 0 {
					a.remaining -= dt / a.job.TimeOn(a.procs)
				}
			}
			clock = next
		}

		// Absorb the arrival, if that was the event.
		if nextArrival <= nextFinish && idx < len(pending) && pending[idx].Release <= clock+tiny {
			waiting = append(waiting, &activeJob{job: pending[idx], remaining: 1})
			idx++
		}

		// Retire finished jobs.
		var still []*activeJob
		for _, a := range active {
			if a.remaining <= 1e-9 {
				res.Completions = append(res.Completions, metrics.Completion{
					Job: a.job, Start: a.start, End: clock, Procs: a.procs,
				})
				if clock > res.Makespan {
					res.Makespan = clock
				}
			} else {
				still = append(still, a)
			}
		}
		active = still
	}
	if len(res.Completions) != len(jobs) {
		return nil, fmt.Errorf("malleable: %d of %d jobs completed", len(res.Completions), len(jobs))
	}
	return res, nil
}
