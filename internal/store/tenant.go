package store

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"
)

// TenantConfig is one entry of the -tenants file. Exactly one of Key
// (plaintext, convenient for dev) or KeySHA256 (hex digest, so the
// config file never holds the secret) must be set.
type TenantConfig struct {
	Name string `json:"name"`
	// Key is the plaintext API key (dev convenience).
	Key string `json:"key,omitempty"`
	// KeySHA256 is the lowercase hex SHA-256 of the API key.
	KeySHA256 string `json:"key_sha256,omitempty"`
	// MaxActive caps this tenant's concurrently admitted (queued +
	// running) runs. 0 means 2.
	MaxActive int `json:"max_active,omitempty"`
	// SubmitRate refills the submission token bucket, in submissions
	// per second. 0 means 5/s.
	SubmitRate float64 `json:"submit_rate,omitempty"`
	// Burst is the bucket capacity. 0 means max(2×rate, 1).
	Burst float64 `json:"burst,omitempty"`
}

// Tenant is one tenant's live admission state: an active-run cap plus a
// token-bucket submit-rate limit, both private to the tenant so one
// greedy client cannot starve the rest.
type Tenant struct {
	Name string

	mu         sync.Mutex
	maxActive  int
	rate       float64
	burst      float64
	tokens     float64
	lastRefill time.Time
	active     int
}

// TenantSet resolves API keys to tenants.
type TenantSet struct {
	byHash  map[string]*Tenant
	ordered []*Tenant
}

// LoadTenants reads and validates a tenants file.
func LoadTenants(path string) (*TenantSet, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTenants(b)
}

// ParseTenants builds a TenantSet from the JSON tenants config: either
// a bare array of tenant objects or {"tenants": [...]}.
func ParseTenants(b []byte) (*TenantSet, error) {
	var cfgs []TenantConfig
	if err := json.Unmarshal(b, &cfgs); err != nil {
		var wrap struct {
			Tenants []TenantConfig `json:"tenants"`
		}
		if err2 := json.Unmarshal(b, &wrap); err2 != nil || wrap.Tenants == nil {
			return nil, fmt.Errorf("store: tenants file: %v", err)
		}
		cfgs = wrap.Tenants
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("store: tenants file defines no tenants")
	}
	ts := &TenantSet{byHash: make(map[string]*Tenant)}
	seen := make(map[string]bool)
	for i, c := range cfgs {
		if c.Name == "" {
			return nil, fmt.Errorf("store: tenant %d: missing name", i)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("store: duplicate tenant name %q", c.Name)
		}
		seen[c.Name] = true
		var hash string
		switch {
		case c.Key != "" && c.KeySHA256 != "":
			return nil, fmt.Errorf("store: tenant %q: set key or key_sha256, not both", c.Name)
		case c.Key != "":
			hash = HashKey(c.Key)
		case c.KeySHA256 != "":
			hash = strings.ToLower(c.KeySHA256)
			if len(hash) != sha256.Size*2 {
				return nil, fmt.Errorf("store: tenant %q: key_sha256 must be %d hex chars", c.Name, sha256.Size*2)
			}
			if _, err := hex.DecodeString(hash); err != nil {
				return nil, fmt.Errorf("store: tenant %q: key_sha256 is not hex", c.Name)
			}
		default:
			return nil, fmt.Errorf("store: tenant %q: missing key or key_sha256", c.Name)
		}
		if _, dup := ts.byHash[hash]; dup {
			return nil, fmt.Errorf("store: tenant %q: key collides with another tenant", c.Name)
		}
		if c.MaxActive < 0 || c.SubmitRate < 0 || c.Burst < 0 {
			return nil, fmt.Errorf("store: tenant %q: negative quota", c.Name)
		}
		t := &Tenant{
			Name:      c.Name,
			maxActive: c.MaxActive,
			rate:      c.SubmitRate,
			burst:     c.Burst,
		}
		if t.maxActive == 0 {
			t.maxActive = 2
		}
		if t.rate == 0 {
			t.rate = 5
		}
		if t.burst == 0 {
			t.burst = max(2*t.rate, 1)
		}
		t.tokens = t.burst
		ts.byHash[hash] = t
		ts.ordered = append(ts.ordered, t)
	}
	return ts, nil
}

// HashKey returns the lowercase hex SHA-256 of an API key.
func HashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Lookup resolves an API key; ok is false for unknown keys. Comparison
// is over fixed-length digests in constant time.
func (ts *TenantSet) Lookup(key string) (*Tenant, bool) {
	want := sha256.Sum256([]byte(key))
	for hash, t := range ts.byHash {
		have, _ := hex.DecodeString(hash)
		if subtle.ConstantTimeCompare(want[:], have) == 1 {
			return t, true
		}
	}
	return nil, false
}

// Names lists tenant names in config order.
func (ts *TenantSet) Names() []string {
	out := make([]string, len(ts.ordered))
	for i, t := range ts.ordered {
		out[i] = t.Name
	}
	return out
}

// Admit decides a submission at time now. Admission costs one bucket
// token and one active-run slot (released by Release when the run
// reaches a terminal state). On refusal, retry says how long until the
// tenant should try again.
func (t *Tenant) Admit(now time.Time) (ok bool, retry time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refill(now)
	if t.tokens < 1 {
		return false, t.tokenWait()
	}
	if t.active >= t.maxActive {
		// Run durations are unknowable up front; a flat second keeps
		// clients polling without hammering.
		return false, time.Second
	}
	t.tokens--
	t.active++
	return true, 0
}

// AdmitCached decides a memo-cache-hit submission: it costs a rate
// token (cache hits are still requests) but no active-run slot, since
// no cells execute.
func (t *Tenant) AdmitCached(now time.Time) (ok bool, retry time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refill(now)
	if t.tokens < 1 {
		return false, t.tokenWait()
	}
	t.tokens--
	return true, 0
}

// Release returns an active-run slot after a run reaches a terminal
// state (or its admission is rolled back on a failed persist).
func (t *Tenant) Release() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.active > 0 {
		t.active--
	}
}

// Active returns the tenant's currently admitted run count.
func (t *Tenant) Active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// refill tops up the token bucket for the time elapsed since the last
// refill. Caller holds t.mu.
func (t *Tenant) refill(now time.Time) {
	if t.lastRefill.IsZero() {
		t.lastRefill = now
		return
	}
	dt := now.Sub(t.lastRefill).Seconds()
	if dt <= 0 {
		return
	}
	t.tokens = min(t.burst, t.tokens+dt*t.rate)
	t.lastRefill = now
}

// tokenWait estimates the delay until one token is available. Caller
// holds t.mu.
func (t *Tenant) tokenWait() time.Duration {
	need := 1 - t.tokens
	d := time.Duration(need / t.rate * float64(time.Second))
	if d < time.Second {
		d = time.Second // floor: Retry-After is whole seconds on the wire
	}
	return d
}
