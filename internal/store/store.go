// Package store is the durable, multi-tenant run store behind the /v1
// run API: a stdlib-only append-only WAL (length-prefixed, CRC32-framed
// JSON records) with periodic compacting snapshots, per-tenant API keys
// and token-bucket admission quotas, and content-addressed memoization
// of terminal results.
//
// The store persists run lifecycle facts, not live state: a submit
// record (the full run identity — spec, seed, tenant, memo key), state
// transitions, one terminal record carrying the opaque result payload,
// and evictions. Boot is snapshot + WAL replay through the same apply
// path used for live appends, so a recovered store is byte-identical to
// the live one at the moment of the last acknowledged append — the
// property the prefix-replay tests pin. Runs that were queued or
// running when the process died are the caller's to repair (the API
// layer marks them failed with a restart reason); the store itself
// never invents transitions.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options tunes a Store.
type Options struct {
	// NoSync skips the per-append fsync (tests; never production).
	NoSync bool
	// CompactBytes triggers a compacting snapshot once the live WAL
	// exceeds this size. 0 means the 8 MiB default; negative disables
	// auto-compaction.
	CompactBytes int64
}

const defaultCompactBytes = 8 << 20

// RunRecord is the durable identity and outcome of one run. Spec and
// Terminal are opaque JSON payloads owned by the API layer; the store
// only guarantees they come back byte-identical.
type RunRecord struct {
	ID     string `json:"id"`
	Seq    uint64 `json:"seq"`
	Tenant string `json:"tenant,omitempty"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	// Cached marks a run whose terminal result was served from the memo
	// cache at submit time, without executing cells.
	Cached  bool            `json:"cached,omitempty"`
	MemoKey string          `json:"memo_key,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Seed    uint64          `json:"seed"`
	// JobFactor persists the invocation-level scale override so a
	// recovered run's memo identity matches a fresh submission's.
	JobFactor int             `json:"job_factor,omitempty"`
	Created   time.Time       `json:"created"`
	Started   time.Time       `json:"started,omitzero"`
	Finished  time.Time       `json:"finished,omitzero"`
	Terminal  json.RawMessage `json:"terminal,omitempty"`
}

func (r *RunRecord) clone() *RunRecord {
	c := *r
	return &c
}

// Record is one WAL entry.
type Record struct {
	// Op is "submit" (Run set), "state" (ID, State, Started), "terminal"
	// (ID, State, Error, Finished, Terminal) or "evict" (ID).
	Op       string          `json:"op"`
	Run      *RunRecord      `json:"run,omitempty"`
	ID       string          `json:"id,omitempty"`
	State    string          `json:"state,omitempty"`
	Error    string          `json:"error,omitempty"`
	Started  time.Time       `json:"started,omitzero"`
	Finished time.Time       `json:"finished,omitzero"`
	Terminal json.RawMessage `json:"terminal,omitempty"`
}

// snapshot is the on-disk compaction format: full store state at a
// generation boundary. Seq and Evicted ride along so run IDs and the
// eviction counter stay monotonic across restarts.
type snapshot struct {
	Gen       int          `json:"gen"`
	Seq       uint64       `json:"seq"`
	Evicted   int          `json:"evicted"`
	CacheHits uint64       `json:"cache_hits"`
	Runs      []*RunRecord `json:"runs"`
}

// Store is the durable run store. Safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu        sync.Mutex
	gen       int
	w         *walWriter
	seq       uint64
	evicted   int
	cacheHits uint64
	order     []string
	runs      map[string]*RunRecord
}

// Open loads (or initialises) the store in dir: it picks the newest
// valid snapshot generation, replays that generation's WAL through the
// live apply path (truncating a torn tail), and deletes stale
// generations.
func Open(dir string, opt Options) (*Store, error) {
	if opt.CompactBytes == 0 {
		opt.CompactBytes = defaultCompactBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opt: opt, runs: make(map[string]*RunRecord)}
	if err := s.load(); err != nil {
		return nil, err
	}
	w, err := openWAL(s.walPath(s.gen), opt.NoSync)
	if err != nil {
		return nil, err
	}
	s.w = w
	s.removeStaleGenerations()
	return s, nil
}

func (s *Store) snapshotPath(gen int) string {
	return filepath.Join(s.dir, fmt.Sprintf("snapshot-%08d.json", gen))
}

func (s *Store) walPath(gen int) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%08d.log", gen))
}

// load restores state from the newest parseable snapshot plus its WAL.
// A corrupt newest snapshot falls back to the previous generation — its
// files are still on disk because deletion happens only after the next
// snapshot is durable.
func (s *Store) load() error {
	gens, err := s.generations()
	if err != nil {
		return err
	}
	s.gen = 0
	for i := len(gens) - 1; i >= 0; i-- {
		snap, err := readSnapshot(s.snapshotPath(gens[i]))
		if err != nil {
			continue // corrupt or half-written snapshot: try older
		}
		s.gen = gens[i]
		s.seq = snap.Seq
		s.evicted = snap.Evicted
		s.cacheHits = snap.CacheHits
		for _, r := range snap.Runs {
			s.runs[r.ID] = r
			s.order = append(s.order, r.ID)
		}
		break
	}
	return replayWAL(s.walPath(s.gen), func(payload []byte) error {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("store: corrupt WAL record: %v", err)
		}
		s.apply(&rec)
		return nil
	})
}

// generations lists snapshot generation numbers present in dir,
// ascending. Generation 0 (no snapshot file, just wal-00000000.log) is
// implicit and always valid.
func (s *Store) generations() ([]int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var gens []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".json"))
		if err != nil {
			continue
		}
		gens = append(gens, n)
	}
	sort.Ints(gens)
	return gens, nil
}

func readSnapshot(path string) (*snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// removeStaleGenerations deletes snapshot/WAL files of every generation
// other than the live one. Best-effort: a leftover file only wastes
// disk, it can never be picked over a newer valid snapshot.
func (s *Store) removeStaleGenerations() {
	gens, err := s.generations()
	if err != nil {
		return
	}
	for _, g := range gens {
		if g == s.gen {
			continue
		}
		os.Remove(s.snapshotPath(g))
		os.Remove(s.walPath(g))
	}
	if s.gen != 0 {
		os.Remove(s.walPath(0))
	}
}

// apply folds one record into in-memory state. It is the single code
// path shared by live appends and boot replay — the reason replay
// reconstructs live state exactly.
func (s *Store) apply(rec *Record) {
	switch rec.Op {
	case "submit":
		r := rec.Run.clone()
		if _, dup := s.runs[r.ID]; dup {
			return // replay safety: duplicate submits are impossible live
		}
		s.runs[r.ID] = r
		s.order = append(s.order, r.ID)
		if r.Seq > s.seq {
			s.seq = r.Seq
		}
		if r.Cached {
			s.cacheHits++
		}
	case "state":
		r := s.runs[rec.ID]
		if r == nil {
			return
		}
		r.State = rec.State
		if !rec.Started.IsZero() {
			r.Started = rec.Started
		}
	case "terminal":
		r := s.runs[rec.ID]
		if r == nil {
			return
		}
		r.State = rec.State
		r.Error = rec.Error
		r.Finished = rec.Finished
		r.Terminal = rec.Terminal
	case "evict":
		if _, ok := s.runs[rec.ID]; !ok {
			return
		}
		delete(s.runs, rec.ID)
		for i, id := range s.order {
			if id == rec.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.evicted++
	}
}

// Append persists one record (WAL append + fsync) and folds it into
// memory. The record is durable before Append returns; on error nothing
// was acknowledged and in-memory state is unchanged.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	if err := s.w.append(payload); err != nil {
		return err
	}
	s.apply(&rec)
	if s.opt.CompactBytes > 0 && s.w.size > s.opt.CompactBytes {
		return s.compactLocked()
	}
	return nil
}

// Compact writes a full snapshot of the next generation (tmp + rename +
// dir fsync), switches appends to a fresh WAL, and deletes the old
// generation. Crash-safe at every step: until the rename lands, boot
// uses the old snapshot + old WAL; after it, the new snapshot alone
// carries the state.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	next := s.gen + 1
	snap := snapshot{
		Gen:       next,
		Seq:       s.seq,
		Evicted:   s.evicted,
		CacheHits: s.cacheHits,
		Runs:      make([]*RunRecord, 0, len(s.order)),
	}
	for _, id := range s.order {
		snap.Runs = append(snap.Runs, s.runs[id])
	}
	b, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	tmp := s.snapshotPath(next) + ".tmp"
	if err := writeFileSync(tmp, b, s.opt.NoSync); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.snapshotPath(next)); err != nil {
		os.Remove(tmp)
		return err
	}
	if !s.opt.NoSync {
		syncDir(s.dir)
	}
	w, err := openWAL(s.walPath(next), s.opt.NoSync)
	if err != nil {
		return err
	}
	old, oldGen := s.w, s.gen
	s.w, s.gen = w, next
	old.close()
	os.Remove(s.walPath(oldGen))
	os.Remove(s.snapshotPath(oldGen))
	return nil
}

// Close releases the WAL file handle. The store stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.close()
	s.w = nil
	return err
}

// Seq returns the highest run sequence number ever persisted; new run
// IDs must start above it so recovered listings never collide.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Evicted returns the all-time eviction count (monotonic across
// restarts).
func (s *Store) Evicted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// CacheHits returns the all-time memo cache hit count.
func (s *Store) CacheHits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheHits
}

// Runs returns the stored runs in submission order. The records are the
// store's own (treat as read-only); callers consuming them across
// appends must clone.
func (s *Store) Runs() []*RunRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*RunRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.runs[id])
	}
	return out
}

// Dump renders the full store state as canonical JSON — the
// byte-identity oracle for the prefix-replay property tests.
func (s *Store) Dump() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := snapshot{
		Seq:       s.seq,
		Evicted:   s.evicted,
		CacheHits: s.cacheHits,
		Runs:      make([]*RunRecord, 0, len(s.order)),
	}
	for _, id := range s.order {
		snap.Runs = append(snap.Runs, s.runs[id])
	}
	b, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		panic("store: dump marshal: " + err.Error())
	}
	return b
}

func writeFileSync(path string, b []byte, noSync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
