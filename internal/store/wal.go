package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL framing: each record is [length uint32 BE][crc32 uint32 BE][payload].
// The CRC covers the payload only; length is validated by bounds. A torn
// tail — a partial frame from a crash mid-write — is detected by a short
// read or CRC mismatch and truncated away on replay, never fatal: the
// store simply forgets the last unacknowledged append, which is exactly
// the write that was never acknowledged to any client.
const (
	walFrameHeader = 8
	// walMaxRecord bounds a single record; anything larger is treated
	// as corruption (a torn length word can decode to gigabytes).
	walMaxRecord = 64 << 20
)

// walWriter appends CRC-framed records to an open WAL file.
type walWriter struct {
	f      *os.File
	size   int64
	noSync bool
}

func openWAL(path string, noSync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, size: st.Size(), noSync: noSync}, nil
}

// append frames and writes one record, then fsyncs (unless NoSync).
// Append is all-or-nothing from the reader's perspective: a crash
// mid-write leaves a torn frame that replay truncates.
func (w *walWriter) append(payload []byte) error {
	if len(payload) > walMaxRecord {
		return fmt.Errorf("store: WAL record too large (%d bytes)", len(payload))
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeader:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.size += int64(len(frame))
	if w.noSync {
		return nil
	}
	return w.f.Sync()
}

func (w *walWriter) close() error { return w.f.Close() }

// replayWAL streams every intact record of a WAL file to fn, in order.
// On the first torn or corrupt frame it truncates the file there and
// stops — records past a corrupt frame cannot be trusted (framing is
// lost). A missing file is an empty WAL.
func replayWAL(path string, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<20)
	var good int64
	hdr := make([]byte, walFrameHeader)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			break // clean EOF or torn header: truncate at `good`
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n > walMaxRecord {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		if err := fn(payload); err != nil {
			return err
		}
		good += walFrameHeader + int64(n)
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if good == st.Size() {
		return nil
	}
	// Torn tail: drop it so the next append starts on a frame boundary.
	return os.Truncate(path, good)
}
