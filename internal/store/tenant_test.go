package store

import (
	"strings"
	"testing"
	"time"
)

func TestParseTenants(t *testing.T) {
	good := []string{
		`[{"name":"alpha","key":"alpha-key"}]`,
		`{"tenants":[{"name":"alpha","key":"alpha-key"},{"name":"beta","key_sha256":"` + HashKey("beta-key") + `"}]}`,
	}
	for _, in := range good {
		if _, err := ParseTenants([]byte(in)); err != nil {
			t.Errorf("ParseTenants(%s): %v", in, err)
		}
	}

	bad := map[string]string{
		`[]`:            "no tenants",
		`[{"key":"k"}]`: "missing name",
		`[{"name":"a","key":"k"},{"name":"a","key":"k2"}]`: "duplicate tenant name",
		`[{"name":"a"}]`: "missing key",
		`[{"name":"a","key":"k","key_sha256":"ab"}]`:                     "not both",
		`[{"name":"a","key_sha256":"abcd"}]`:                             "must be 64 hex chars",
		`[{"name":"a","key_sha256":"` + strings.Repeat("zz", 32) + `"}]`: "not hex",
		`[{"name":"a","key":"k"},{"name":"b","key":"k"}]`:                "collides",
		`[{"name":"a","key":"k","max_active":-1}]`:                       "negative quota",
		`not json`: "tenants file",
	}
	for in, frag := range bad {
		_, err := ParseTenants([]byte(in))
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("ParseTenants(%s): err %v, want contains %q", in, err, frag)
		}
	}
}

func TestTenantLookup(t *testing.T) {
	ts, err := ParseTenants([]byte(`[{"name":"alpha","key":"alpha-key"},{"name":"beta","key_sha256":"` + HashKey("beta-key") + `"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Names() = %v", got)
	}
	for key, want := range map[string]string{"alpha-key": "alpha", "beta-key": "beta"} {
		tn, ok := ts.Lookup(key)
		if !ok || tn.Name != want {
			t.Fatalf("Lookup(%q) = %v, %v", key, tn, ok)
		}
	}
	if _, ok := ts.Lookup("wrong"); ok {
		t.Fatal("Lookup accepted an unknown key")
	}
}

// TestTenantAdmission drives the token bucket with explicit clocks: no
// sleeps, fully deterministic.
func TestTenantAdmission(t *testing.T) {
	ts, err := ParseTenants([]byte(`[{"name":"a","key":"k","max_active":2,"submit_rate":1,"burst":3}]`))
	if err != nil {
		t.Fatal(err)
	}
	tn := ts.ordered[0]
	now := time.Unix(1000, 0)

	// Burst of 3 tokens but only 2 active slots.
	for i := 0; i < 2; i++ {
		if ok, _ := tn.Admit(now); !ok {
			t.Fatalf("admit %d refused", i)
		}
	}
	if tn.Active() != 2 {
		t.Fatalf("Active() = %d, want 2", tn.Active())
	}
	ok, retry := tn.Admit(now)
	if ok || retry != time.Second {
		t.Fatalf("active-cap refusal: ok=%v retry=%v, want false/1s", ok, retry)
	}

	// A cache hit needs no slot — only a token (one left in the bucket).
	if ok, _ := tn.AdmitCached(now); !ok {
		t.Fatal("AdmitCached refused with a token available")
	}
	// Bucket empty now: even a cache hit is rate-limited.
	ok, retry = tn.AdmitCached(now)
	if ok || retry < time.Second {
		t.Fatalf("empty-bucket refusal: ok=%v retry=%v", ok, retry)
	}

	// Releasing a slot is not enough while the bucket is dry.
	tn.Release()
	if ok, _ := tn.Admit(now); ok {
		t.Fatal("admitted with empty bucket")
	}
	// One second refills one token (rate 1/s) → admit succeeds again.
	if ok, _ := tn.Admit(now.Add(time.Second)); !ok {
		t.Fatal("refused after refill")
	}
	// Refill never exceeds burst.
	tn.Release()
	tn.Release()
	far := now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := tn.AdmitCached(far); !ok {
			t.Fatalf("burst token %d missing after long idle", i)
		}
	}
	if ok, _ := tn.AdmitCached(far); ok {
		t.Fatal("bucket exceeded burst after long idle")
	}
}

func TestMemoKey(t *testing.T) {
	base := MemoKey([]byte(`{"id":"x"}`), 42, 1, "cat1")
	if len(base) != 16 {
		t.Fatalf("MemoKey length %d, want 16 hex chars", len(base))
	}
	if MemoKey([]byte(`{"id":"x"}`), 42, 1, "cat1") != base {
		t.Fatal("MemoKey not deterministic")
	}
	for name, other := range map[string]string{
		"spec":      MemoKey([]byte(`{"id":"y"}`), 42, 1, "cat1"),
		"seed":      MemoKey([]byte(`{"id":"x"}`), 43, 1, "cat1"),
		"jobFactor": MemoKey([]byte(`{"id":"x"}`), 42, 2, "cat1"),
		"catalog":   MemoKey([]byte(`{"id":"x"}`), 42, 1, "cat2"),
	} {
		if other == base {
			t.Errorf("MemoKey ignores %s", name)
		}
	}
}
