package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	opt.NoSync = true
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// copyDir simulates kill -9: the on-disk bytes at this instant are all
// a restarted process gets.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func mustAppend(t *testing.T, s *Store, rec Record) {
	t.Helper()
	if err := s.Append(rec); err != nil {
		t.Fatalf("Append(%+v): %v", rec, err)
	}
}

func submitRec(seq uint64, tenant string, terminal bool) Record {
	id := fmt.Sprintf("r%06d", seq)
	r := &RunRecord{
		ID: id, Seq: seq, Tenant: tenant, State: "queued",
		Spec:    json.RawMessage(fmt.Sprintf(`{"id":"spec-%d","kind":"mrt"}`, seq)),
		Seed:    seq * 17,
		Created: time.Unix(int64(1700000000+seq), 0).UTC(),
	}
	if terminal {
		r.State = "done"
		r.Cached = true
		r.MemoKey = fmt.Sprintf("%016x", seq)
		r.Finished = r.Created
		r.Terminal = json.RawMessage(`{"events":[{"seq":0,"type":"state","state":"done"}]}`)
	}
	return Record{Op: "submit", Run: r}
}

// TestPrefixReplayProperty is the crash-recovery property test: over a
// randomized run history (submits, state transitions, terminal results,
// cached submissions, evictions, interleaved compactions), the store
// reopened from a byte-copy of the directory is byte-identical (via the
// canonical Dump) to the live store at EVERY prefix of the history —
// i.e. kill -9 after any acknowledged append loses nothing.
func TestPrefixReplayProperty(t *testing.T) {
	for _, compact := range []int64{-1, 1 << 10} { // no auto-compaction / aggressive
		t.Run(fmt.Sprintf("compactBytes=%d", compact), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			dir := t.TempDir()
			live := openT(t, dir, Options{CompactBytes: compact})
			defer live.Close()

			var liveIDs []string // non-terminal and terminal still stored
			terminal := map[string]bool{}
			seq := uint64(0)
			const ops = 120
			for i := 0; i < ops; i++ {
				switch k := rng.Intn(10); {
				case k < 4 || len(liveIDs) == 0: // submit
					seq++
					cached := rng.Intn(4) == 0
					rec := submitRec(seq, []string{"", "alpha", "beta"}[rng.Intn(3)], cached)
					mustAppend(t, live, rec)
					liveIDs = append(liveIDs, rec.Run.ID)
					if cached {
						terminal[rec.Run.ID] = true
					}
				case k < 6: // state transition on a random live run
					id := liveIDs[rng.Intn(len(liveIDs))]
					if !terminal[id] {
						mustAppend(t, live, Record{
							Op: "state", ID: id, State: "running",
							Started: time.Unix(int64(1700100000+seq), 0).UTC(),
						})
					}
				case k < 8: // terminal result
					id := liveIDs[rng.Intn(len(liveIDs))]
					if !terminal[id] {
						st := []string{"done", "failed", "cancelled"}[rng.Intn(3)]
						mustAppend(t, live, Record{
							Op: "terminal", ID: id, State: st,
							Error:    map[bool]string{true: "", false: "boom"}[st == "done"],
							Finished: time.Unix(int64(1700200000+seq), 0).UTC(),
							Terminal: json.RawMessage(fmt.Sprintf(`{"cells_done":%d}`, rng.Intn(50))),
						})
						terminal[id] = true
					}
				default: // evict a terminal run, if any
					for _, id := range liveIDs {
						if terminal[id] {
							mustAppend(t, live, Record{Op: "evict", ID: id})
							for j, v := range liveIDs {
								if v == id {
									liveIDs = append(liveIDs[:j], liveIDs[j+1:]...)
									break
								}
							}
							delete(terminal, id)
							break
						}
					}
				}

				want := live.Dump()
				re := openT(t, copyDir(t, dir), Options{CompactBytes: compact})
				got := re.Dump()
				re.Close()
				if !bytes.Equal(want, got) {
					t.Fatalf("op %d: reopened store diverges from live store\nlive:\n%s\nreopened:\n%s", i, want, got)
				}
			}
			if seq < 20 {
				t.Fatalf("degenerate history: only %d submits", seq)
			}
		})
	}
}

// TestTornTailTruncated: a partial final frame (the write the crash cut
// short) is truncated on replay, never fatal, and the store equals the
// last fully acknowledged state. New appends after recovery land on a
// clean frame boundary.
func TestTornTailTruncated(t *testing.T) {
	for _, torn := range [][]byte{
		{0x00}, // torn length word
		{0x00, 0x00, 0x00, 0x20, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}, // full header, partial payload
		bytes.Repeat([]byte{0xff}, 12),                               // garbage length (> walMaxRecord)
	} {
		dir := t.TempDir()
		s := openT(t, dir, Options{CompactBytes: -1})
		mustAppend(t, s, submitRec(1, "alpha", false))
		mustAppend(t, s, submitRec(2, "beta", true))
		want := s.Dump()
		s.Close()

		wal := filepath.Join(dir, "wal-00000000.log")
		f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(torn); err != nil {
			t.Fatal(err)
		}
		f.Close()

		re := openT(t, dir, Options{CompactBytes: -1})
		if got := re.Dump(); !bytes.Equal(want, got) {
			t.Fatalf("torn tail %x: state diverges\nwant:\n%s\ngot:\n%s", torn, want, got)
		}
		// The torn bytes must be gone: the next append starts a valid frame.
		mustAppend(t, re, submitRec(3, "alpha", false))
		re.Close()
		re2 := openT(t, dir, Options{CompactBytes: -1})
		if re2.Seq() != 3 {
			t.Fatalf("torn tail %x: post-recovery append lost (seq %d, want 3)", torn, re2.Seq())
		}
		re2.Close()
	}
}

// TestCorruptMiddleRecord: a bit flip inside an earlier record cuts
// replay at that record (framing downstream is untrustworthy), keeping
// the intact prefix.
func TestCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{CompactBytes: -1})
	mustAppend(t, s, submitRec(1, "", false))
	afterFirst := s.Dump()
	mustAppend(t, s, submitRec(2, "", false))
	s.Close()

	wal := filepath.Join(dir, "wal-00000000.log")
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0xff // inside the second record's payload
	if err := os.WriteFile(wal, b, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openT(t, dir, Options{CompactBytes: -1})
	defer re.Close()
	if got := re.Dump(); !bytes.Equal(afterFirst, got) {
		t.Fatalf("corrupt record: want first-record prefix\nwant:\n%s\ngot:\n%s", afterFirst, got)
	}
}

// TestCompactionSurvivesRestart: counters (seq, evicted, cache hits)
// and run order persist through compaction + reopen, and stale
// generations are cleaned up.
func TestCompactionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{CompactBytes: -1})
	for i := uint64(1); i <= 5; i++ {
		mustAppend(t, s, submitRec(i, "alpha", i%2 == 0))
	}
	mustAppend(t, s, Record{Op: "evict", ID: "r000002"})
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	mustAppend(t, s, submitRec(6, "beta", false))
	want := s.Dump()
	s.Close()

	re := openT(t, dir, Options{CompactBytes: -1})
	defer re.Close()
	if got := re.Dump(); !bytes.Equal(want, got) {
		t.Fatalf("post-compaction reopen diverges\nwant:\n%s\ngot:\n%s", want, got)
	}
	if re.Seq() != 6 || re.Evicted() != 1 || re.CacheHits() != 2 {
		t.Fatalf("counters: seq=%d evicted=%d cacheHits=%d, want 6/1/2",
			re.Seq(), re.Evicted(), re.CacheHits())
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 2 { // snapshot-00000001.json + wal-00000001.log
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("stale generations not cleaned: %v", names)
	}
}

// TestCorruptSnapshotFallsBack: a half-written newest snapshot (crash
// during compaction, before the WAL switch was acknowledged) falls back
// to the previous generation.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{CompactBytes: -1})
	mustAppend(t, s, submitRec(1, "", false))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, submitRec(2, "", false))
	want := s.Dump()
	s.Close()

	// A torn next-generation snapshot appears (rename landed, content bad).
	if err := os.WriteFile(filepath.Join(dir, "snapshot-00000002.json"), []byte(`{"gen":2,`), 0o644); err != nil {
		t.Fatal(err)
	}
	re := openT(t, dir, Options{CompactBytes: -1})
	defer re.Close()
	if got := re.Dump(); !bytes.Equal(want, got) {
		t.Fatalf("corrupt snapshot: fallback diverges\nwant:\n%s\ngot:\n%s", want, got)
	}
}
