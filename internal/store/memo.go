package store

import (
	"fmt"
	"hash/fnv"
)

// MemoKey content-addresses a run's terminal result. Two submissions
// share a key exactly when the deterministic engine guarantees them
// byte-identical output: same canonical spec JSON, same effective seed,
// same invocation-level job factor, and the same scenario catalog (the
// catalog hash changes whenever any kind's semantics could have) —
// which is what makes serving the memoized result indistinguishable
// from re-executing the cells.
func MemoKey(specJSON []byte, seed uint64, jobFactor int, catalogHash string) string {
	h := fnv.New64a()
	h.Write(specJSON)
	fmt.Fprintf(h, "|%d|%d|%s", seed, jobFactor, catalogHash)
	return fmt.Sprintf("%016x", h.Sum64())
}
