package trace

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

func mold(id int, seq float64, maxP int) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Moldable, Weight: 1, DueDate: -1,
		SeqTime: seq, MinProcs: 1, MaxProcs: maxP, Model: workload.Linear{},
	}
}

func demoSchedule() *sched.Schedule {
	s := sched.New(4)
	s.Add(sched.Alloc{Job: mold(1, 8, 4), Start: 0, Procs: 2})
	s.Add(sched.Alloc{Job: mold(2, 4, 4), Start: 0, Procs: 2})
	s.Add(sched.Alloc{Job: mold(3, 4, 4), Start: 4, Procs: 4})
	return s
}

func TestGantt(t *testing.T) {
	var sb strings.Builder
	if err := Gantt(&sb, demoSchedule(), 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "makespan=5") {
		t.Fatalf("missing makespan header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 processors
		t.Fatalf("got %d lines", len(lines))
	}
	// Every processor row must contain job 3's label at the end.
	for _, l := range lines[1:] {
		if !strings.Contains(l, "3") {
			t.Fatalf("full-width job missing from row: %s", l)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Gantt(&sb, sched.New(2), 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty schedule not reported")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, demoSchedule()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job,class,start") {
		t.Fatalf("bad header: %s", lines[0])
	}
}

func TestSWFRoundTrip(t *testing.T) {
	cs := []metrics.Completion{
		{Job: mold(1, 8, 4), Start: 2, End: 6, Procs: 2},
		{Job: mold(2, 4, 4), Start: 0, End: 4, Procs: 1},
	}
	cs[0].Job.Release = 1
	var sb strings.Builder
	if err := WriteSWF(&sb, cs); err != nil {
		t.Fatal(err)
	}
	jobs, err := ReadSWF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	j := jobs[0]
	if j.ID != 1 || j.Release != 1 || j.MinProcs != 2 {
		t.Fatalf("roundtrip job: %+v", j)
	}
	// Runtime 4 on 2 procs → seq 8 under the linear profile.
	if j.TimeOn(2) != 4 {
		t.Fatalf("runtime %v, want 4", j.TimeOn(2))
	}
	if err := workload.ValidateAll(jobs); err != nil {
		t.Fatal(err)
	}
}

func TestReadSWFErrors(t *testing.T) {
	cases := []string{
		"1 2 3",       // short line
		"1 0 0 5 x 1", // non-numeric
		"1 0 0 5 0 1", // zero procs
		"1 0 0 0 2 1", // zero runtime
	}
	for _, c := range cases {
		if _, err := ReadSWF(strings.NewReader(c)); err == nil {
			t.Errorf("bad SWF %q accepted", c)
		}
	}
	// Comments and blanks are fine.
	jobs, err := ReadSWF(strings.NewReader("; header\n\n1 0 0 5 2 1\n"))
	if err != nil || len(jobs) != 1 {
		t.Fatalf("comment handling: %v, %d jobs", err, len(jobs))
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("demo", "name", "ratio")
	tb.AddRow("mrt", 1.2345678)
	tb.AddRow("fcfs", 2)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "name", "mrt", "1.235", "fcfs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "name,ratio\n") {
		t.Fatalf("bad CSV: %s", csv.String())
	}
}

func TestGanttWithPinnedProcessors(t *testing.T) {
	s := demoSchedule()
	if err := s.AssignProcessors(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Gantt(&sb, s, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p03") {
		t.Fatal("pinned Gantt missing processor rows")
	}
}

func TestGanttInfeasibleWidth(t *testing.T) {
	// A schedule that overcommits cannot be assigned processors: Gantt
	// must surface the error rather than render garbage.
	s := sched.New(1)
	s.Add(sched.Alloc{Job: mold(1, 4, 2), Start: 0, Procs: 1})
	s.Add(sched.Alloc{Job: mold(2, 4, 2), Start: 1, Procs: 1})
	var sb strings.Builder
	if err := Gantt(&sb, s, 10); err == nil {
		t.Fatal("overcommitted schedule rendered")
	}
}
