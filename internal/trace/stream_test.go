package trace

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

// randomRecs builds an adversarial, ID-sorted record set (the shape
// WriteSWFRecords emits).
func randomRecs(rng *stats.RNG, n int) []SWFRecord {
	recs := make([]SWFRecord, n)
	for i := range recs {
		recs[i] = SWFRecord{
			ID:      i,
			Submit:  rng.LogNormal(0, 8),
			Wait:    rng.LogNormal(0, 8),
			Runtime: rng.LogNormal(0, 8),
			Procs:   rng.IntRange(1, 512),
			Weight:  float64(rng.Zipf(1.1, 10)),
		}
	}
	return recs
}

// TestSWFScannerMatchesRead: the streaming scanner and the materializing
// reader are the same parser — identical records over randomized traces.
func TestSWFScannerMatchesRead(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		recs := randomRecs(rng, 1+rng.Intn(60))
		var buf bytes.Buffer
		if err := WriteSWFRecords(&buf, recs); err != nil {
			t.Fatal(err)
		}
		want, err := ReadSWFRecords(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		sc := NewSWFScanner(bytes.NewReader(buf.Bytes()))
		var got []SWFRecord
		for sc.Scan() {
			got = append(got, sc.Record())
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: scanner saw %d records, reader %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: record %d diverged: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSWFScannerMalformed: malformed lines fail with the same error
// surface ReadSWFRecords always had, records before the bad line are
// still delivered, and the scanner stays stopped afterwards.
func TestSWFScannerMalformed(t *testing.T) {
	cases := []struct {
		name   string
		input  string
		okRecs int
		errSub string
	}{
		{"too_few_fields", "; header\n1 0 0 5 2 1\n2 0 0\n", 1, "line 3: 3 fields, want 6"},
		{"unparsable_field", "1 0 0 5 2 1\n2 0 zebra 5 2 1\n", 1, "line 2 field 2"},
		{"truncated_final_record", "1 0 0 5 2 1\n2 1 0", 1, "line 2: 3 fields, want 6"},
		{"garbage_first_line", "<html>not a trace</html>\n", 0, "line 1"},
		{"nan_field_parses", "1 NaN 0 5 2 1\n", 1, ""}, // ParseFloat accepts NaN; policy lives upstream
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewSWFScanner(strings.NewReader(tc.input))
			n := 0
			for sc.Scan() {
				n++
			}
			if n != tc.okRecs {
				t.Fatalf("delivered %d records, want %d", n, tc.okRecs)
			}
			err := sc.Err()
			if tc.errSub == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.errSub)
			}
			if sc.Scan() {
				t.Fatal("scanner advanced after error")
			}
			// The materializing reader reports the identical error.
			if _, rerr := ReadSWFRecords(strings.NewReader(tc.input)); rerr == nil || rerr.Error() != err.Error() {
				t.Fatalf("reader error %v != scanner error %v", rerr, err)
			}
		})
	}
}

// TestSWFScannerOversizedLine: a line beyond the 4 MiB cap fails with
// bufio.ErrTooLong instead of buffering without bound.
func TestSWFScannerOversizedLine(t *testing.T) {
	var b strings.Builder
	b.WriteString("1 0 0 5 2 1\n2 0 0 5 2 ")
	b.WriteString(strings.Repeat("9", maxSWFLine+16))
	b.WriteString("\n")
	sc := NewSWFScanner(strings.NewReader(b.String()))
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Fatalf("delivered %d records, want 1", n)
	}
	if err := sc.Err(); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", err)
	}
}

// TestSWFJobSourceStreamsJobs: the Source adapter yields the same jobs
// as the materializing ReadSWF, and a record that cannot become a job
// stops the stream with an error after the preceding jobs were yielded.
func TestSWFJobSourceStreamsJobs(t *testing.T) {
	rng := stats.NewRNG(3)
	recs := randomRecs(rng, 40)
	var buf bytes.Buffer
	if err := WriteSWFRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	want, err := ReadSWF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src := NewSWFJobSource(bytes.NewReader(buf.Bytes()))
	var got []*workload.Job
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, j)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("job %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}

	// Zero-proc record mid-stream: two good jobs, then a hard stop.
	bad := "1 0 0 5 2 1\n2 0 0 5 1 1\n3 0 0 5 0 1\n4 0 0 5 1 1\n"
	src = NewSWFJobSource(strings.NewReader(bad))
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 || src.Err() == nil {
		t.Fatalf("bad record: yielded %d jobs, err=%v", n, src.Err())
	}
	if _, ok := src.Next(); ok || src.Err() == nil {
		t.Fatal("source restarted after error")
	}
}

// TestSWFWriterStreamEquivalence: streaming records one at a time in ID
// order produces the exact bytes of the batch writer, and the streamed
// file preserves the write→read→write stability property.
func TestSWFWriterStreamEquivalence(t *testing.T) {
	rng := stats.NewRNG(11)
	recs := randomRecs(rng, 50)
	var batch bytes.Buffer
	if err := WriteSWFRecords(&batch, recs); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w := NewSWFWriter(&stream)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), stream.Bytes()) {
		t.Fatalf("streamed bytes diverged from batch writer:\n%s\nvs\n%s", stream.String(), batch.String())
	}
	parsed, err := ReadSWFRecords(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteSWFRecords(&second, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), second.Bytes()) {
		t.Fatal("streamed file not write→read→write stable")
	}
}

// TestSWFSpool: the spill retention keeps a bounded tail, spools
// evictions in Add order, and DrainTail persists the remainder so the
// file holds the complete history.
func TestSWFSpool(t *testing.T) {
	job := &workload.Job{ID: 0, Kind: workload.Rigid, Release: 0, Weight: 1, DueDate: -1,
		SeqTime: 2, MinProcs: 1, MaxProcs: 1, Model: workload.Linear{}}
	var file bytes.Buffer
	sp := NewSWFSpool(&file, 4)
	var all []metrics.Completion
	for i := 0; i < 10; i++ {
		j := *job
		j.ID = i
		c := metrics.Completion{Job: &j, Start: float64(i), End: float64(i + 2), Procs: 1}
		all = append(all, c)
		sp.Add(c)
	}
	if sp.Len() != 4 {
		t.Fatalf("tail length %d, want 4", sp.Len())
	}
	if tail := sp.Completions(); tail[0].Job.ID != 6 || tail[3].Job.ID != 9 {
		t.Fatalf("tail wrong: %v..%v", tail[0].Job.ID, tail[3].Job.ID)
	}
	if err := sp.DrainTail(); err != nil {
		t.Fatal(err)
	}
	if sp.Err() != nil {
		t.Fatal(sp.Err())
	}
	recs, err := ReadSWFRecords(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("spooled %d records, want 10", len(recs))
	}
	for i, rec := range recs {
		if want := RecordOf(all[i]); rec != want {
			t.Fatalf("spooled record %d = %+v, want %+v", i, rec, want)
		}
	}

	// Write failures are sticky and surface from Flush/Err.
	bad := NewSWFSpool(failWriter{}, 1)
	for i := 0; i < 64*1024; i++ { // push past the bufio buffer
		bad.Add(all[0])
	}
	if bad.Flush() == nil || bad.Err() == nil {
		t.Fatal("spool write failure not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// FuzzSWFScanner: for arbitrary input the scanner must never panic, must
// agree with ReadSWFRecords (records and error), and any input that
// parses cleanly must round-trip byte-stably through write→read→write.
func FuzzSWFScanner(f *testing.F) {
	f.Add("; id submit wait runtime procs weight\n1 0 0 5 2 1\n")
	f.Add("1 1e-300 2.5 3 4 5\n2 1e300 0.1 7 1 1")
	f.Add("")
	f.Add(";\n\n  \n")
	f.Add("1 0 0 5 2 1 extra fields ignored\n")
	f.Add("-1 -2 -3 -4 -5 -6\n")
	f.Add("a b c d e f\n")
	f.Add("1 0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		sc := NewSWFScanner(strings.NewReader(input))
		var got []SWFRecord
		for sc.Scan() {
			got = append(got, sc.Record())
		}
		want, rerr := ReadSWFRecords(strings.NewReader(input))
		serr := sc.Err()
		if (serr == nil) != (rerr == nil) || (serr != nil && serr.Error() != rerr.Error()) {
			t.Fatalf("scanner err %v, reader err %v", serr, rerr)
		}
		if rerr != nil {
			return
		}
		if len(got) != len(want) {
			t.Fatalf("scanner %d records, reader %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
			}
		}
		// Canonicalize once, then the format is a fixed point.
		var first bytes.Buffer
		if err := WriteSWFRecords(&first, want); err != nil {
			t.Fatal(err)
		}
		again, err := ReadSWFRecords(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form failed to parse: %v", err)
		}
		var second bytes.Buffer
		if err := WriteSWFRecords(&second, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write→read→write not stable:\n%s\nvs\n%s", first.String(), second.String())
		}
	})
}
