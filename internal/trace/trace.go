// Package trace renders schedules and experiment results: ASCII Gantt
// charts for quick eyeballing, CSV exports for plotting, an SWF-flavoured
// (Standard Workload Format) job-trace writer/reader, and the aligned
// text tables used by cmd/experiments.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Gantt renders an ASCII Gantt chart of the schedule: one row per
// processor, time quantized into width columns. Jobs are labelled by the
// last character of their ID (readable for small demos; the point is
// shape, not identification).
func Gantt(w io.Writer, s *sched.Schedule, width int) error {
	if width <= 0 {
		width = 80
	}
	if len(s.Allocs) == 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	// Need concrete processors.
	pinned := s
	hasPins := true
	for _, a := range s.Allocs {
		if a.ProcIDs == nil {
			hasPins = false
			break
		}
	}
	if !hasPins {
		clone := sched.New(s.M)
		clone.Allocs = append([]sched.Alloc(nil), s.Allocs...)
		if err := clone.AssignProcessors(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		pinned = clone
	}
	mk := pinned.Makespan()
	grid := make([][]byte, s.M)
	for p := range grid {
		grid[p] = []byte(strings.Repeat(".", width))
	}
	for _, a := range pinned.Allocs {
		label := byte('0' + byte(a.Job.ID%10))
		c0 := int(a.Start / mk * float64(width))
		c1 := int(a.End() / mk * float64(width))
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if c1 > width {
			c1 = width
		}
		for _, p := range a.ProcIDs {
			for c := c0; c < c1; c++ {
				grid[p][c] = label
			}
		}
	}
	fmt.Fprintf(w, "Gantt: m=%d, makespan=%.4g, one column = %.4g\n", s.M, mk, mk/float64(width))
	for p := s.M - 1; p >= 0; p-- {
		if _, err := fmt.Fprintf(w, "p%02d |%s|\n", p, grid[p]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports a schedule as CSV (job, class, start, end, procs,
// weight, release) for external plotting.
func WriteCSV(w io.Writer, s *sched.Schedule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "job,class,start,end,procs,weight,release")
	rows := append([]sched.Alloc(nil), s.Allocs...)
	sort.Slice(rows, func(i, k int) bool { return rows[i].Start < rows[k].Start })
	for _, a := range rows {
		fmt.Fprintf(bw, "%d,%s,%g,%g,%d,%g,%g\n",
			a.Job.ID, a.Job.Class, a.Start, a.End(), a.Procs, a.Job.Weight, a.Job.Release)
	}
	return bw.Flush()
}

// SWFRecord is one line of the SWF-flavoured trace, kept in its on-disk
// field layout (submit + wait + runtime) so that a read trace can be
// rewritten byte-identically. Deriving the fields from a Completion and
// re-adding them are NOT inverse operations in floating point — e.g.
// (submit+wait)-submit can round differently from wait — so the record,
// not the Completion, is the canonical round-trip unit.
type SWFRecord struct {
	ID      int
	Submit  float64
	Wait    float64
	Runtime float64
	Procs   int
	Weight  float64
}

// RecordOf derives the SWF line of one completion.
func RecordOf(c metrics.Completion) SWFRecord {
	return SWFRecord{
		ID: c.Job.ID, Submit: c.Job.Release,
		Wait: c.Start - c.Job.Release, Runtime: c.End - c.Start,
		Procs: c.Procs, Weight: c.Job.Weight,
	}
}

// Job materializes a record as a rigid job (runtime frozen as the
// sequential profile on the recorded processor count).
func (rec SWFRecord) Job() (*workload.Job, error) {
	if rec.Procs <= 0 || rec.Runtime <= 0 {
		return nil, fmt.Errorf("trace: record %d: procs %d runtime %v", rec.ID, rec.Procs, rec.Runtime)
	}
	return &workload.Job{
		ID: rec.ID, Kind: workload.Rigid, Release: math.Max(rec.Submit, 0),
		Weight: rec.Weight, DueDate: -1,
		SeqTime: rec.Runtime * float64(rec.Procs), MinProcs: rec.Procs, MaxProcs: rec.Procs,
		Model: workload.Linear{},
	}, nil
}

// WriteSWFRecords writes records verbatim in SWF field order, sorted by
// ID. Floats use %g (shortest uniquely-parsing form), so writing what
// ReadSWFRecords returned reproduces the input bytes exactly.
func WriteSWFRecords(w io.Writer, recs []SWFRecord) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; id submit wait runtime procs weight")
	rows := append([]SWFRecord(nil), recs...)
	sort.SliceStable(rows, func(i, k int) bool { return rows[i].ID < rows[k].ID })
	for _, rec := range rows {
		fmt.Fprintf(bw, "%d %g %g %g %d %g\n",
			rec.ID, rec.Submit, rec.Wait, rec.Runtime, rec.Procs, rec.Weight)
	}
	return bw.Flush()
}

// WriteSWF writes completions in the spirit of the Standard Workload
// Format: whitespace-separated fields, one job per line, -1 for unknown.
// Fields: id, submit, wait, runtime, procs, weight.
func WriteSWF(w io.Writer, cs []metrics.Completion) error {
	recs := make([]SWFRecord, len(cs))
	for i, c := range cs {
		recs[i] = RecordOf(c)
	}
	return WriteSWFRecords(w, recs)
}

// ReadSWFRecords parses the WriteSWF format, preserving every field. It
// is a materializing Collect over SWFScanner; stream-scale callers
// should iterate the scanner (or SWFJobSource) directly.
func ReadSWFRecords(r io.Reader) ([]SWFRecord, error) {
	sc := NewSWFScanner(r)
	var recs []SWFRecord
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ReadSWF parses the WriteSWF format back into rigid jobs (runtime frozen
// as the sequential profile on the recorded processor count).
func ReadSWF(r io.Reader) ([]*workload.Job, error) {
	recs, err := ReadSWFRecords(r)
	if err != nil {
		return nil, err
	}
	jobs := make([]*workload.Job, 0, len(recs))
	for _, rec := range recs {
		j, err := rec.Job()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// Table is an aligned-text experiment table (also exportable as CSV).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 4, 64)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintln(bw, t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], c)
		}
		fmt.Fprintln(bw)
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return bw.Flush()
}

// WriteCSV renders the table as CSV (the title line is not emitted —
// CSV output is for plotting pipelines).
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(t.Headers, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(bw, strings.Join(r, ","))
	}
	return bw.Flush()
}

// ReadTableCSV parses the WriteCSV format back into a Table (first
// line headers, remaining lines rows; the title is not part of the
// format). Cells are kept verbatim, so WriteCSV of the result
// reproduces the input bytes exactly — including rows whose cells
// themselves contain commas (those split into extra columns, but the
// comma-join emission is the identity on them).
func ReadTableCSV(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(nil, 4<<20) // wide tables exceed the 64 KiB default line cap
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty CSV table")
	}
	t := &Table{Headers: strings.Split(sc.Text(), ",")}
	for sc.Scan() {
		t.Rows = append(t.Rows, strings.Split(sc.Text(), ","))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
