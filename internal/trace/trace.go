// Package trace renders schedules and experiment results: ASCII Gantt
// charts for quick eyeballing, CSV exports for plotting, an SWF-flavoured
// (Standard Workload Format) job-trace writer/reader, and the aligned
// text tables used by cmd/experiments.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Gantt renders an ASCII Gantt chart of the schedule: one row per
// processor, time quantized into width columns. Jobs are labelled by the
// last character of their ID (readable for small demos; the point is
// shape, not identification).
func Gantt(w io.Writer, s *sched.Schedule, width int) error {
	if width <= 0 {
		width = 80
	}
	if len(s.Allocs) == 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	// Need concrete processors.
	pinned := s
	hasPins := true
	for _, a := range s.Allocs {
		if a.ProcIDs == nil {
			hasPins = false
			break
		}
	}
	if !hasPins {
		clone := sched.New(s.M)
		clone.Allocs = append([]sched.Alloc(nil), s.Allocs...)
		if err := clone.AssignProcessors(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		pinned = clone
	}
	mk := pinned.Makespan()
	grid := make([][]byte, s.M)
	for p := range grid {
		grid[p] = []byte(strings.Repeat(".", width))
	}
	for _, a := range pinned.Allocs {
		label := byte('0' + byte(a.Job.ID%10))
		c0 := int(a.Start / mk * float64(width))
		c1 := int(a.End() / mk * float64(width))
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if c1 > width {
			c1 = width
		}
		for _, p := range a.ProcIDs {
			for c := c0; c < c1; c++ {
				grid[p][c] = label
			}
		}
	}
	fmt.Fprintf(w, "Gantt: m=%d, makespan=%.4g, one column = %.4g\n", s.M, mk, mk/float64(width))
	for p := s.M - 1; p >= 0; p-- {
		if _, err := fmt.Fprintf(w, "p%02d |%s|\n", p, grid[p]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports a schedule as CSV (job, class, start, end, procs,
// weight, release) for external plotting.
func WriteCSV(w io.Writer, s *sched.Schedule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "job,class,start,end,procs,weight,release")
	rows := append([]sched.Alloc(nil), s.Allocs...)
	sort.Slice(rows, func(i, k int) bool { return rows[i].Start < rows[k].Start })
	for _, a := range rows {
		fmt.Fprintf(bw, "%d,%s,%g,%g,%d,%g,%g\n",
			a.Job.ID, a.Job.Class, a.Start, a.End(), a.Procs, a.Job.Weight, a.Job.Release)
	}
	return bw.Flush()
}

// WriteSWF writes completions in the spirit of the Standard Workload
// Format: whitespace-separated fields, one job per line, -1 for unknown.
// Fields: id, submit, wait, runtime, procs, weight.
func WriteSWF(w io.Writer, cs []metrics.Completion) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; id submit wait runtime procs weight")
	rows := append([]metrics.Completion(nil), cs...)
	sort.Slice(rows, func(i, k int) bool { return rows[i].Job.ID < rows[k].Job.ID })
	for _, c := range rows {
		fmt.Fprintf(bw, "%d %g %g %g %d %g\n",
			c.Job.ID, c.Job.Release, c.Start-c.Job.Release, c.End-c.Start,
			c.Procs, c.Job.Weight)
	}
	return bw.Flush()
}

// ReadSWF parses the WriteSWF format back into rigid jobs (runtime frozen
// as the sequential profile on the recorded processor count).
func ReadSWF(r io.Reader) ([]*workload.Job, error) {
	sc := bufio.NewScanner(r)
	var jobs []*workload.Job
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 6 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 6", line, len(fields))
		}
		vals := make([]float64, 6)
		for i, f := range fields[:6] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %w", line, i, err)
			}
			vals[i] = v
		}
		procs := int(vals[4])
		runtime := vals[3]
		if procs <= 0 || runtime <= 0 {
			return nil, fmt.Errorf("trace: line %d: procs %d runtime %v", line, procs, runtime)
		}
		jobs = append(jobs, &workload.Job{
			ID: int(vals[0]), Kind: workload.Rigid, Release: math.Max(vals[1], 0),
			Weight: vals[5], DueDate: -1,
			SeqTime: runtime * float64(procs), MinProcs: procs, MaxProcs: procs,
			Model: workload.Linear{},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Table is an aligned-text experiment table (also exportable as CSV).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 4, 64)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintln(bw, t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], c)
		}
		fmt.Fprintln(bw)
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return bw.Flush()
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(t.Headers, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(bw, strings.Join(r, ","))
	}
	return bw.Flush()
}
