package trace

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestSWFRoundTripByteStable is the write→read→write property: for
// randomized record sets, parsing a written trace and writing it again
// must reproduce the bytes exactly. The record layer (not Completion) is
// the canonical unit precisely because wait = Start - Release does not
// survive float re-derivation; this pins that design.
func TestSWFRoundTripByteStable(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntRange(1, 40)
		recs := make([]SWFRecord, n)
		for i := range recs {
			recs[i] = SWFRecord{
				ID: i,
				// Adversarial magnitudes: tiny, huge and plain values mixed,
				// the shapes that expose %g precision drift.
				Submit:  rng.LogNormal(0, 8),
				Wait:    rng.LogNormal(0, 8),
				Runtime: rng.LogNormal(0, 8),
				Procs:   rng.IntRange(1, 512),
				Weight:  float64(rng.Zipf(1.1, 10)),
			}
		}
		var first bytes.Buffer
		if err := WriteSWFRecords(&first, recs); err != nil {
			t.Fatal(err)
		}
		parsed, err := ReadSWFRecords(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(parsed) != n {
			t.Fatalf("trial %d: parsed %d of %d records", trial, len(parsed), n)
		}
		var second bytes.Buffer
		if err := WriteSWFRecords(&second, parsed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: write→read→write not byte-stable:\n--- first ---\n%s--- second ---\n%s",
				trial, first.String(), second.String())
		}
	}
}

// TestSWFRoundTripFromSimulation runs real workloads through the cluster
// simulator and round-trips the resulting completions — the end-to-end
// path gridsim -swf and loadgen -swf users exercise.
func TestSWFRoundTripFromSimulation(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		jobs := workload.Parallel(workload.GenConfig{N: 60, M: 16, Seed: seed, ArrivalRate: 0.3})
		sim, err := cluster.New(des.New(), 16, 1, cluster.EASYPolicy{}, cluster.KillNewest)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if err := sim.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		var first bytes.Buffer
		if err := WriteSWF(&first, sim.Completions()); err != nil {
			t.Fatal(err)
		}
		recs, err := ReadSWFRecords(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := WriteSWFRecords(&second, recs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: simulated trace not byte-stable", seed)
		}
		// And the job view still parses into runnable rigid jobs.
		parsed, err := ReadSWF(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(parsed) != len(jobs) {
			t.Fatalf("seed %d: %d jobs parsed, want %d", seed, len(parsed), len(jobs))
		}
		for _, j := range parsed {
			if err := j.Validate(); err != nil {
				t.Fatalf("seed %d: parsed job invalid: %v", seed, err)
			}
		}
	}
}

// TestSWFEqualIDOrderStable pins the ordering fix the round-trip
// uncovered: records sharing an ID must keep their relative order across
// writes (the sort is stable), or a rewrite reshuffles the file.
func TestSWFEqualIDOrderStable(t *testing.T) {
	recs := []SWFRecord{
		{ID: 3, Submit: 1, Wait: 0, Runtime: 5, Procs: 1, Weight: 1},
		{ID: 3, Submit: 2, Wait: 0, Runtime: 6, Procs: 2, Weight: 1},
		{ID: 1, Submit: 9, Wait: 0, Runtime: 7, Procs: 3, Weight: 1},
	}
	var a bytes.Buffer
	if err := WriteSWFRecords(&a, recs); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadSWFRecords(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteSWFRecords(&b, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("equal-ID records reordered:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestRecordOfCompletion checks the Completion→record derivation.
func TestRecordOfCompletion(t *testing.T) {
	j := &workload.Job{ID: 4, Kind: workload.Rigid, Release: 10, Weight: 2,
		DueDate: -1, SeqTime: 30, MinProcs: 3, MaxProcs: 3, Model: workload.Linear{}}
	rec := RecordOf(metrics.Completion{Job: j, Start: 15, End: 25, Procs: 3})
	if rec.ID != 4 || rec.Submit != 10 || rec.Wait != 5 || rec.Runtime != 10 || rec.Procs != 3 || rec.Weight != 2 {
		t.Fatalf("RecordOf = %+v", rec)
	}
	job, err := rec.Job()
	if err != nil {
		t.Fatal(err)
	}
	if job.SeqTime != 30 || job.MinProcs != 3 || job.Release != 10 {
		t.Fatalf("record job = %+v", job)
	}
	if _, err := (SWFRecord{ID: 1, Runtime: 0, Procs: 1}).Job(); err == nil {
		t.Fatal("zero-runtime record materialized a job")
	}
}
