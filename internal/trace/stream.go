package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// maxSWFLine bounds a single trace line. Real SWF archives keep lines
// well under a kilobyte; 4 MiB leaves room for pathological whitespace
// padding while still failing fast (bufio.ErrTooLong) on garbage input
// instead of buffering an unbounded "line".
const maxSWFLine = 4 << 20

// SWFScanner reads an SWF-flavoured trace one record at a time in O(1)
// memory — the streaming counterpart of ReadSWFRecords (which is now a
// Collect over it). Usage mirrors bufio.Scanner:
//
//	sc := trace.NewSWFScanner(r)
//	for sc.Scan() {
//	    rec := sc.Record()
//	    ...
//	}
//	if err := sc.Err(); err != nil { ... }
type SWFScanner struct {
	sc   *bufio.Scanner
	line int
	rec  SWFRecord
	err  error
	done bool
}

// NewSWFScanner returns a scanner over r. Input is buffered; lines are
// capped at 4 MiB.
func NewSWFScanner(r io.Reader) *SWFScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxSWFLine)
	return &SWFScanner{sc: sc}
}

// Scan advances to the next record, skipping blank lines and comments.
// It returns false at end of input or on the first malformed line; Err
// distinguishes the two.
func (s *SWFScanner) Scan() bool {
	if s.err != nil || s.done {
		return false
	}
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 6 {
			s.err = fmt.Errorf("trace: line %d: %d fields, want 6", s.line, len(fields))
			return false
		}
		var vals [6]float64
		for i, f := range fields[:6] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				s.err = fmt.Errorf("trace: line %d field %d: %w", s.line, i, err)
				return false
			}
			vals[i] = v
		}
		s.rec = SWFRecord{
			ID: int(vals[0]), Submit: vals[1], Wait: vals[2],
			Runtime: vals[3], Procs: int(vals[4]), Weight: vals[5],
		}
		return true
	}
	s.done = true
	s.err = s.sc.Err()
	return false
}

// Record returns the record produced by the last successful Scan.
func (s *SWFScanner) Record() SWFRecord { return s.rec }

// Line returns the 1-based input line of the last record (diagnostics).
func (s *SWFScanner) Line() int { return s.line }

// Err returns the first parse or read error, or nil after a clean EOF.
func (s *SWFScanner) Err() error { return s.err }

// SWFJobSource adapts an SWF trace to workload.Source: records are
// materialized as rigid jobs one at a time as the simulation pulls them,
// so replaying a multi-million-job archive never holds more than the
// stream head in memory. A record that cannot become a job (non-positive
// procs or runtime) stops the stream with that error.
type SWFJobSource struct {
	sc  *SWFScanner
	err error
}

// NewSWFJobSource returns a job source streaming from r.
func NewSWFJobSource(r io.Reader) *SWFJobSource {
	return &SWFJobSource{sc: NewSWFScanner(r)}
}

// Next returns the next job in trace order.
func (s *SWFJobSource) Next() (*workload.Job, bool) {
	if s.err != nil {
		return nil, false
	}
	if !s.sc.Scan() {
		s.err = s.sc.Err()
		return nil, false
	}
	j, err := s.sc.Record().Job()
	if err != nil {
		s.err = err
		return nil, false
	}
	return j, true
}

// Err reports why the stream ended, nil for a clean EOF.
func (s *SWFJobSource) Err() error { return s.err }

// SWFWriter emits records one at a time in the WriteSWFRecords line
// format (header, then "%d %g %g %g %d %g"). Unlike WriteSWFRecords it
// does not sort: records appear in Write order, so callers streaming a
// completion feed get End-time order, not ID order. Reading such a file
// back and rewriting it with WriteSWFRecords canonicalizes the order.
type SWFWriter struct {
	bw  *bufio.Writer
	err error
}

// NewSWFWriter wraps w and writes the SWF header line.
func NewSWFWriter(w io.Writer) *SWFWriter {
	bw := bufio.NewWriter(w)
	_, err := fmt.Fprintln(bw, "; id submit wait runtime procs weight")
	return &SWFWriter{bw: bw, err: err}
}

// Write appends one record. After the first error all writes are no-ops
// returning that error.
func (w *SWFWriter) Write(rec SWFRecord) error {
	if w.err != nil {
		return w.err
	}
	_, w.err = fmt.Fprintf(w.bw, "%d %g %g %g %d %g\n",
		rec.ID, rec.Submit, rec.Wait, rec.Runtime, rec.Procs, rec.Weight)
	return w.err
}

// Flush drains the buffer to the underlying writer.
func (w *SWFWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// SWFSpool is a metrics.Retention that keeps a bounded in-memory tail
// and spools every evicted completion to an SWF stream — the full
// history survives on disk while the simulation's heap stays O(tail).
// Retention.Add cannot return an error, so write failures are sticky:
// check Err (or the Flush result) after the run.
type SWFSpool struct {
	ring metrics.Retention
	w    *SWFWriter
}

// NewSWFSpool spools evictions to w, retaining the last tailCap
// completions in memory (tailCap <= 0 falls back to 1).
func NewSWFSpool(w io.Writer, tailCap int) *SWFSpool {
	sp := &SWFSpool{w: NewSWFWriter(w)}
	sp.ring = metrics.NewSpillRing(tailCap, func(c metrics.Completion) {
		sp.w.Write(RecordOf(c)) //nolint:errcheck // sticky in w.err, surfaced by Err/Flush
	})
	return sp
}

// Add records one completion, spilling the oldest tail entry if full.
func (sp *SWFSpool) Add(c metrics.Completion) { sp.ring.Add(c) }

// Len returns the in-memory tail length.
func (sp *SWFSpool) Len() int { return sp.ring.Len() }

// Completions returns the in-memory tail, oldest first.
func (sp *SWFSpool) Completions() []metrics.Completion { return sp.ring.Completions() }

// Flush drains buffered spilled records. The in-memory tail is NOT
// written: it remains queryable via Completions. Call DrainTail first to
// persist everything.
func (sp *SWFSpool) Flush() error { return sp.w.Flush() }

// DrainTail spools the retained tail to the stream (oldest first) and
// empties it, then flushes. After DrainTail the on-disk file holds every
// completion ever Added, in Add order.
func (sp *SWFSpool) DrainTail() error {
	for _, c := range sp.ring.Completions() {
		if err := sp.w.Write(RecordOf(c)); err != nil {
			return err
		}
	}
	sp.ring = metrics.NewSpillRing(1, func(c metrics.Completion) {
		sp.w.Write(RecordOf(c)) //nolint:errcheck // sticky in w.err
	})
	return sp.w.Flush()
}

// Err returns the first spool write error, if any.
func (sp *SWFSpool) Err() error {
	if sp.w.err != nil {
		return sp.w.err
	}
	return nil
}
