package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestTableCSVRoundTrip: WriteCSV → ReadTableCSV → WriteCSV is
// byte-stable (the table mirror of the SWF write→read→write property).
func TestTableCSVRoundTrip(t *testing.T) {
	tb := NewTable("title is not part of the CSV", "m", "n", "ratio", "note")
	tb.AddRow(16, 50, 1.2345678, "plain")
	tb.AddRow(64, 1000, 0.5, "γ(LB)+LPT")
	tb.AddRow(100, 10, 3.0, "spaces ok")

	var first bytes.Buffer
	if err := tb.WriteCSV(&first); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTableCSV(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Headers, tb.Headers) {
		t.Fatalf("headers: %v != %v", parsed.Headers, tb.Headers)
	}
	if !reflect.DeepEqual(parsed.Rows, tb.Rows) {
		t.Fatalf("rows: %v != %v", parsed.Rows, tb.Rows)
	}
	var second bytes.Buffer
	if err := parsed.WriteCSV(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-stable:\n%q\nvs\n%q", first.String(), second.String())
	}
}

// TestTableCSVRoundTripCommaCells: cells containing commas (e.g. the
// reservations table's "[500,2000)" windows) shift column boundaries on
// parse, but the emission still reproduces the input bytes exactly —
// the guarantee pipelines depend on.
func TestTableCSVRoundTripCommaCells(t *testing.T) {
	tb := NewTable("", "reserved", "window", "FCFS")
	tb.AddRow("8/32 procs", "[500,2000)", 1.1)
	tb.AddRow("16/32 procs", "[500,4000)", 1.3)

	var first bytes.Buffer
	if err := tb.WriteCSV(&first); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTableCSV(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Rows[0]) != 4 {
		t.Fatalf("comma cell should split into 4 fields, got %d", len(parsed.Rows[0]))
	}
	var second bytes.Buffer
	if err := parsed.WriteCSV(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("comma-cell round trip not byte-stable:\n%q\nvs\n%q", first.String(), second.String())
	}
}

func TestReadTableCSVErrors(t *testing.T) {
	if _, err := ReadTableCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	tb, err := ReadTableCSV(strings.NewReader("a,b\n"))
	if err != nil || len(tb.Rows) != 0 || len(tb.Headers) != 2 {
		t.Fatalf("header-only parse: %+v, %v", tb, err)
	}
}
