package rigid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// refReservation is one live reservation of the naive reference model.
type refReservation struct {
	start, end float64
	procs      int
}

// refAvail recomputes availability at t from first principles.
func refAvail(m int, live []refReservation, t float64) int {
	a := m
	for _, r := range live {
		if r.start <= t && t < r.end {
			a -= r.procs
		}
	}
	return a
}

// checkCanonical asserts no two adjacent segments share an availability
// (the coalescing invariant that bounds profile growth).
func checkCanonical(t *testing.T, p *Profile) {
	t.Helper()
	bp := p.Breakpoints()
	for i := 1; i < len(bp); i++ {
		if p.AvailableAt(bp[i]) == p.AvailableAt(bp[i-1]) {
			t.Fatalf("profile not coalesced: segments %d and %d both have %d free (breakpoints %v)",
				i-1, i, p.AvailableAt(bp[i]), bp)
		}
	}
}

// TestProfileCoalescesAdjacentReservations: butt-jointed reservations of
// the same width must not leave internal breakpoints behind.
func TestProfileCoalescesAdjacentReservations(t *testing.T) {
	p := NewProfile(8)
	for i := 0; i < 10; i++ {
		if err := p.Reserve(float64(i)*5, 5, 3); err != nil {
			t.Fatal(err)
		}
	}
	// One [0,50) block of 3 procs: exactly two breakpoints (0 and 50).
	if got := p.Segments(); got != 2 {
		t.Fatalf("segments = %d after adjacent reservations, want 2 (breakpoints %v)",
			got, p.Breakpoints())
	}
	checkCanonical(t, p)
	// Releasing it all restores the single all-free segment.
	for i := 0; i < 10; i++ {
		if err := p.Release(float64(i)*5, 5, 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Segments(); got != 1 {
		t.Fatalf("segments = %d after full release, want 1", got)
	}
	if got := p.AvailableAt(25); got != 8 {
		t.Fatalf("AvailableAt(25) = %d after full release", got)
	}
}

// TestProfileReserveReleaseProperty: random interleaved reservations and
// releases must always agree with the from-first-principles reference
// and keep the representation canonical.
func TestProfileReserveReleaseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 32)
		p := NewProfile(m)
		var live []refReservation
		for op := 0; op < 80; op++ {
			if len(live) > 0 && rng.Range(0, 1) < 0.4 {
				// Release a random live reservation in full.
				k := rng.IntRange(0, len(live)-1)
				r := live[k]
				if err := p.Release(r.start, r.end-r.start, r.procs); err != nil {
					t.Logf("release of live reservation failed: %v", err)
					return false
				}
				live = append(live[:k], live[k+1:]...)
			} else {
				start := rng.Range(0, 100)
				dur := rng.Range(0.5, 20)
				procs := rng.IntRange(1, m)
				err := p.Reserve(start, dur, procs)
				fits := true
				for _, bp := range append(p.Breakpoints(), start) {
					if bp >= start && bp < start+dur && refAvail(m, live, bp) < procs {
						fits = false
						break
					}
				}
				if (err == nil) != fits {
					t.Logf("seed %d: Reserve(%v,%v,%d) err=%v but reference fits=%v",
						seed, start, dur, procs, err, fits)
					return false
				}
				if err == nil {
					live = append(live, refReservation{start, start + dur, procs})
				}
			}
			// Cross-check availability at every breakpoint and at
			// midpoints between them.
			bp := p.Breakpoints()
			for i, t0 := range bp {
				if p.AvailableAt(t0) != refAvail(m, live, t0) {
					t.Logf("seed %d: avail(%v) = %d, reference %d",
						seed, t0, p.AvailableAt(t0), refAvail(m, live, t0))
					return false
				}
				if i+1 < len(bp) {
					mid := (t0 + bp[i+1]) / 2
					if p.AvailableAt(mid) != refAvail(m, live, mid) {
						return false
					}
				}
			}
			// Canonical representation, bounded growth.
			for i := 1; i < len(bp); i++ {
				if p.AvailableAt(bp[i]) == p.AvailableAt(bp[i-1]) {
					t.Logf("seed %d: not coalesced at %v", seed, bp[i])
					return false
				}
			}
			if p.Segments() > 2*len(live)+1 {
				t.Logf("seed %d: %d segments for %d live reservations", seed, p.Segments(), len(live))
				return false
			}
		}
		// Draining every reservation must restore the all-free profile.
		for _, r := range live {
			if err := p.Release(r.start, r.end-r.start, r.procs); err != nil {
				return false
			}
		}
		return p.Segments() == 1 && p.AvailableAt(0) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestProfileRollingWindowPattern exercises the incremental-simulation
// usage: reservations always start at the advancing clock, history is
// trimmed away, and the profile must stay equivalent to one rebuilt from
// the live reservations (sampled at segment midpoints — reservation ends
// rebuilt as now + (end-now) can sit one float ULP off the exact ends
// the incremental profile stores).
func TestProfileRollingWindowPattern(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 16)
		p := NewProfile(m)
		now := 0.0
		var live []refReservation
		for op := 0; op < 120; op++ {
			now += rng.Exp(1)
			var keep []refReservation
			used := 0
			for _, r := range live {
				if r.end > now {
					keep = append(keep, r)
					used += r.procs
				}
			}
			live = keep
			p.TrimBefore(now)
			if used < m && rng.Bool(0.7) {
				procs := rng.IntRange(1, m-used)
				dur := rng.Range(0.1, 10)
				if err := p.Reserve(now, dur, procs); err != nil {
					t.Logf("seed %d op %d: reserve at now failed: %v", seed, op, err)
					return false
				}
				live = append(live, refReservation{now, now + dur, procs})
			}
			if p.Start() != now {
				return false
			}
			if p.Segments() > len(live)+1 {
				t.Logf("seed %d: %d segments for %d live reservations", seed, p.Segments(), len(live))
				return false
			}
			bp := p.Breakpoints()
			for i, t0 := range bp {
				sample := t0 + 0.5
				if i+1 < len(bp) {
					sample = (t0 + bp[i+1]) / 2
				}
				if p.AvailableAt(sample) != refAvail(m, live, sample) {
					t.Logf("seed %d op %d: avail(%v) = %d, reference %d",
						seed, op, sample, p.AvailableAt(sample), refAvail(m, live, sample))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEarliestSlotMatchesBruteForce: the hinted sweep must return the
// same slot as probing every breakpoint in order.
func TestEarliestSlotMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 24)
		p := NewProfile(m)
		for i := 0; i < 30; i++ {
			_ = p.Reserve(rng.Range(0, 200), rng.Range(1, 30), rng.IntRange(1, m))
		}
		for q := 0; q < 20; q++ {
			ready := rng.Range(0, 150)
			dur := rng.Range(0.5, 40)
			procs := rng.IntRange(1, m)
			got, err := p.EarliestSlot(ready, dur, procs)
			if err != nil {
				return false // finite reservations: never saturated forever
			}
			// Brute force: candidates are ready plus later breakpoints.
			cands := []float64{ready}
			for _, bp := range p.Breakpoints() {
				if bp > ready {
					cands = append(cands, bp)
				}
			}
			want := math.Inf(1)
			for _, c := range cands {
				if p.fits(c, dur, procs) {
					want = c
					break
				}
			}
			if got != want {
				t.Logf("seed %d: EarliestSlot(%v,%v,%d) = %v, brute force %v",
					seed, ready, dur, procs, got, want)
				return false
			}
			if !p.fits(got, dur, procs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestAvail(t *testing.T) {
	p := NewProfile(8)
	if err := p.Reserve(0, 10, 6); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(0, 20, 2); err != nil {
		t.Fatal(err)
	}
	// [0,10): 0 free; [10,20): 6 free; [20,∞): 8 free.
	if at, extra := p.EarliestAvail(0, 4); at != 10 || extra != 2 {
		t.Fatalf("EarliestAvail(0,4) = %v,%d; want 10,2", at, extra)
	}
	if at, extra := p.EarliestAvail(0, 8); at != 20 || extra != 0 {
		t.Fatalf("EarliestAvail(0,8) = %v,%d; want 20,0", at, extra)
	}
	// from inside a satisfying segment clamps to from.
	if at, extra := p.EarliestAvail(12, 4); at != 12 || extra != 2 {
		t.Fatalf("EarliestAvail(12,4) = %v,%d; want 12,2", at, extra)
	}
	// from below the profile start (e.g. after TrimBefore) clamps up
	// instead of indexing before the first segment.
	p.TrimBefore(5)
	if at, extra := p.EarliestAvail(0, 4); at != 10 || extra != 2 {
		t.Fatalf("EarliestAvail(0,4) after trim = %v,%d; want 10,2", at, extra)
	}
}

func TestTrimBefore(t *testing.T) {
	p := NewProfile(4)
	if err := p.Reserve(0, 10, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(5, 10, 1); err != nil {
		t.Fatal(err)
	}
	p.TrimBefore(7)
	if got := p.Start(); got != 7 {
		t.Fatalf("Start() = %v after TrimBefore(7)", got)
	}
	if got := p.AvailableAt(7); got != 1 {
		t.Fatalf("AvailableAt(7) = %d, want 1", got)
	}
	if got := p.AvailableAt(12); got != 3 {
		t.Fatalf("AvailableAt(12) = %d, want 3", got)
	}
	if got := p.AvailableAt(20); got != 4 {
		t.Fatalf("AvailableAt(20) = %d, want 4", got)
	}
	// Queries keep working on the trimmed timeline: 3 procs free from 10,
	// the full machine only from 15.
	if s, err := p.EarliestSlot(7, 2, 3); err != nil || s != 10 {
		t.Fatalf("EarliestSlot(7,2,3) after trim = %v, %v; want 10", s, err)
	}
	if s, err := p.EarliestSlot(7, 2, 4); err != nil || s != 15 {
		t.Fatalf("EarliestSlot(7,2,4) after trim = %v, %v; want 15", s, err)
	}
	checkCanonical(t, p)
}

func TestCloneRecycleIndependence(t *testing.T) {
	p := NewProfile(4)
	if err := p.Reserve(2, 6, 3); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.Reserve(2, 6, 1); err != nil {
		t.Fatal(err)
	}
	if got := p.AvailableAt(4); got != 1 {
		t.Fatalf("clone mutation leaked into original: %d", got)
	}
	if got := c.AvailableAt(4); got != 0 {
		t.Fatalf("clone AvailableAt(4) = %d", got)
	}
	c.Recycle()
	// A recycled clone's arrays may be reused by the next Clone; the
	// original must stay untouched.
	c2 := p.Clone()
	defer c2.Recycle()
	if got := c2.AvailableAt(4); got != 1 {
		t.Fatalf("fresh clone disagrees with original: %d", got)
	}
}
