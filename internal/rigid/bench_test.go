package rigid

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func benchJobs(n, m int) []*workload.Job {
	rng := stats.NewRNG(7)
	jobs := make([]*workload.Job, n)
	clock := 0.0
	for i := range jobs {
		clock += rng.Exp(0.5)
		p := rng.IntRange(1, m)
		jobs[i] = &workload.Job{
			ID: i, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: clock,
			SeqTime: rng.Range(1, 50) * float64(p), MinProcs: p, MaxProcs: p,
			Model: workload.Linear{},
		}
	}
	return jobs
}

func BenchmarkConservative1000(b *testing.B) {
	jobs := benchJobs(1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conservative(jobs, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFDH1000(b *testing.B) {
	jobs := benchJobs(1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFDH(jobs, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileEarliestSlot(b *testing.B) {
	p := NewProfile(128)
	rng := stats.NewRNG(3)
	// Fragment the profile with 200 reservations.
	for i := 0; i < 200; i++ {
		s := rng.Range(0, 1000)
		_ = p.Reserve(s, rng.Range(1, 20), rng.IntRange(1, 64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.EarliestSlot(0, 5, 32); err != nil {
			b.Fatal(err)
		}
	}
}
