package rigid

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func benchJobs(n, m int) []*workload.Job {
	rng := stats.NewRNG(7)
	jobs := make([]*workload.Job, n)
	clock := 0.0
	for i := range jobs {
		clock += rng.Exp(0.5)
		p := rng.IntRange(1, m)
		jobs[i] = &workload.Job{
			ID: i, Kind: workload.Rigid, Weight: 1, DueDate: -1, Release: clock,
			SeqTime: rng.Range(1, 50) * float64(p), MinProcs: p, MaxProcs: p,
			Model: workload.Linear{},
		}
	}
	return jobs
}

func BenchmarkConservative1000(b *testing.B) {
	jobs := benchJobs(1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conservative(jobs, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFDH1000(b *testing.B) {
	jobs := benchJobs(1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFDH(jobs, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileReserveRelease cycles rolling reservation windows —
// the coalescing hot path: without segment merging the profile would
// grow with every operation; with it the segment count stays bounded by
// the live reservations.
func BenchmarkProfileReserveRelease(b *testing.B) {
	p := NewProfile(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := float64(i % 512)
		if err := p.Reserve(base, 16, 32); err != nil {
			b.Fatal(err)
		}
		if err := p.Reserve(base+4, 8, 48); err != nil {
			b.Fatal(err)
		}
		if err := p.Release(base+4, 8, 48); err != nil {
			b.Fatal(err)
		}
		if err := p.Release(base, 16, 32); err != nil {
			b.Fatal(err)
		}
	}
	if p.Segments() != 1 {
		b.Fatalf("profile leaked %d segments", p.Segments())
	}
}

// BenchmarkProfileClone measures the pooled what-if copy (one per online
// scheduling decision).
func BenchmarkProfileClone(b *testing.B) {
	p := NewProfile(128)
	rng := stats.NewRNG(5)
	for i := 0; i < 60; i++ {
		_ = p.Reserve(rng.Range(0, 500), rng.Range(1, 30), rng.IntRange(1, 48))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := p.Clone()
		c.Recycle()
	}
}

func BenchmarkProfileEarliestSlot(b *testing.B) {
	p := NewProfile(128)
	rng := stats.NewRNG(3)
	// Fragment the profile with 200 reservations.
	for i := 0; i < 200; i++ {
		s := rng.Range(0, 1000)
		_ = p.Reserve(s, rng.Range(1, 20), rng.IntRange(1, 64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.EarliestSlot(0, 5, 32); err != nil {
			b.Fatal(err)
		}
	}
}
