package rigid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Order is a queue ordering for the list-based policies.
type Order int

const (
	// ByRelease orders by release date then ID (submission order).
	ByRelease Order = iota
	// ByLPT orders by decreasing processing time (longest first).
	ByLPT
	// BySPT orders by increasing processing time (shortest first).
	BySPT
	// ByArea orders by decreasing processor-time area.
	ByArea
)

// sortJobs returns a copy of jobs in the requested order. Rigid jobs use
// their fixed processor count to price time/area.
func sortJobs(jobs []*workload.Job, ord Order) []*workload.Job {
	out := append([]*workload.Job(nil), jobs...)
	cmpTime := func(j *workload.Job) float64 { return j.TimeOn(j.MinProcs) }
	sort.SliceStable(out, func(a, b int) bool {
		switch ord {
		case ByLPT:
			ta, tb := cmpTime(out[a]), cmpTime(out[b])
			if ta != tb {
				return ta > tb
			}
		case BySPT:
			ta, tb := cmpTime(out[a]), cmpTime(out[b])
			if ta != tb {
				return ta < tb
			}
		case ByArea:
			wa, wb := out[a].WorkOn(out[a].MinProcs), out[b].WorkOn(out[b].MinProcs)
			if wa != wb {
				return wa > wb
			}
		default: // ByRelease
			if out[a].Release != out[b].Release {
				return out[a].Release < out[b].Release
			}
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// requireRigidCount returns the processor count a policy should use for
// the job: rigid jobs use their fixed count; moldable jobs are frozen at
// MinProcs (callers wanting smarter allotments should pre-mold via the
// moldable package).
func requireRigidCount(j *workload.Job) int { return j.MinProcs }

// FCFS schedules jobs strictly in queue order: a job never starts before
// any job ahead of it in the queue. This is the no-backfilling baseline
// every batch system starts from.
func FCFS(jobs []*workload.Job, m int) (*sched.Schedule, error) {
	return FCFSWithCalendar(jobs, m, nil)
}

// FCFSWithCalendar is FCFS around a reservation calendar (§5.1).
func FCFSWithCalendar(jobs []*workload.Job, m int, cal *platform.Calendar) (*sched.Schedule, error) {
	profile, err := profileFor(m, cal)
	if err != nil {
		return nil, err
	}
	s := sched.New(m)
	frontier := 0.0 // start-time monotonicity enforces queue order
	for _, j := range sortJobs(jobs, ByRelease) {
		procs := requireRigidCount(j)
		dur := j.TimeOn(procs)
		ready := math.Max(j.Release, frontier)
		start, err := profile.EarliestSlot(ready, dur, procs)
		if err != nil {
			return nil, fmt.Errorf("rigid: FCFS cannot place job %d: %w", j.ID, err)
		}
		if err := profile.Reserve(start, dur, procs); err != nil {
			return nil, err
		}
		s.Add(sched.Alloc{Job: j, Start: start, Procs: procs})
		frontier = start
	}
	return s, nil
}

// Conservative builds a conservative-backfilling schedule: each job in
// queue order receives the earliest slot that fits, holes included, so no
// job is ever delayed by a later-queued job ("conservative backfilling",
// the variant the paper cites for hole-filling in §5.2).
func Conservative(jobs []*workload.Job, m int) (*sched.Schedule, error) {
	return ConservativeWithCalendar(jobs, m, nil)
}

// ConservativeWithCalendar is Conservative around reservations.
func ConservativeWithCalendar(jobs []*workload.Job, m int, cal *platform.Calendar) (*sched.Schedule, error) {
	return listWithProfile(sortJobs(jobs, ByRelease), m, cal)
}

// List schedules jobs by the given priority order, giving each job the
// earliest slot that fits (Graham list scheduling generalized to rigid
// multiprocessor jobs). With ByLPT this is the classic LPT baseline.
func List(jobs []*workload.Job, m int, ord Order) (*sched.Schedule, error) {
	return listWithProfile(sortJobs(jobs, ord), m, nil)
}

func profileFor(m int, cal *platform.Calendar) (*Profile, error) {
	if cal != nil {
		if cal.M() != m {
			return nil, fmt.Errorf("rigid: calendar width %d != platform %d", cal.M(), m)
		}
		return NewProfileFromCalendar(cal)
	}
	return NewProfile(m), nil
}

func listWithProfile(ordered []*workload.Job, m int, cal *platform.Calendar) (*sched.Schedule, error) {
	profile, err := profileFor(m, cal)
	if err != nil {
		return nil, err
	}
	s := sched.New(m)
	for _, j := range ordered {
		procs := requireRigidCount(j)
		dur := j.TimeOn(procs)
		start, err := profile.EarliestSlot(j.Release, dur, procs)
		if err != nil {
			return nil, fmt.Errorf("rigid: cannot place job %d: %w", j.ID, err)
		}
		if err := profile.Reserve(start, dur, procs); err != nil {
			return nil, err
		}
		s.Add(sched.Alloc{Job: j, Start: start, Procs: procs})
	}
	return s, nil
}

// Shelf is one shelf of a shelf-based schedule: all jobs start together
// at the shelf's start time (§4.3's packing scheme).
type Shelf struct {
	Start  float64
	Height float64 // shelf duration = max job time inside
	Jobs   []*workload.Job
	used   int
}

// Width returns the processors currently occupied on the shelf.
func (sh *Shelf) Width() int { return sh.used }

// NFDH packs rigid jobs with Next-Fit Decreasing Height: jobs sorted by
// decreasing time; a job opens a new shelf when it does not fit on the
// current one. Returns the shelves in bottom-up order; makespan is the
// sum of shelf heights.
func NFDH(jobs []*workload.Job, m int) ([]*Shelf, error) {
	ordered := sortJobs(jobs, ByLPT)
	var shelves []*Shelf
	var cur *Shelf
	clock := 0.0
	for _, j := range ordered {
		procs := requireRigidCount(j)
		if procs > m {
			return nil, fmt.Errorf("rigid: job %d needs %d > %d procs", j.ID, procs, m)
		}
		if cur == nil || cur.used+procs > m {
			if cur != nil {
				clock += cur.Height
			}
			cur = &Shelf{Start: clock}
			shelves = append(shelves, cur)
		}
		placeOnShelf(cur, j, procs)
	}
	return shelves, nil
}

// FFDH packs with First-Fit Decreasing Height: each job goes on the first
// existing shelf with room, else opens a new shelf. Shelf start times are
// assigned afterwards by stacking.
func FFDH(jobs []*workload.Job, m int) ([]*Shelf, error) {
	ordered := sortJobs(jobs, ByLPT)
	var shelves []*Shelf
	for _, j := range ordered {
		procs := requireRigidCount(j)
		if procs > m {
			return nil, fmt.Errorf("rigid: job %d needs %d > %d procs", j.ID, procs, m)
		}
		placed := false
		for _, sh := range shelves {
			if sh.used+procs <= m {
				placeOnShelf(sh, j, procs)
				placed = true
				break
			}
		}
		if !placed {
			sh := &Shelf{}
			placeOnShelf(sh, j, procs)
			shelves = append(shelves, sh)
		}
	}
	RestackShelves(shelves, 0)
	return shelves, nil
}

func placeOnShelf(sh *Shelf, j *workload.Job, procs int) {
	sh.Jobs = append(sh.Jobs, j)
	sh.used += procs
	if t := j.TimeOn(procs); t > sh.Height {
		sh.Height = t
	}
}

// RestackShelves assigns start times by stacking the shelves in order
// starting at base.
func RestackShelves(shelves []*Shelf, base float64) {
	clock := base
	for _, sh := range shelves {
		sh.Start = clock
		clock += sh.Height
	}
}

// ShelvesToSchedule converts shelves to a flat schedule on m processors.
func ShelvesToSchedule(shelves []*Shelf, m int) *sched.Schedule {
	s := sched.New(m)
	for _, sh := range shelves {
		for _, j := range sh.Jobs {
			s.Add(sched.Alloc{Job: j, Start: sh.Start, Procs: requireRigidCount(j)})
		}
	}
	return s
}

// Compact left-shifts a schedule: allocations are re-placed in
// non-decreasing start order (ties by job ID), each at the earliest slot
// the profile allows at its allotted width, never before its release.
// The result is never worse on makespan or any completion time and is
// the standard post-pass after batch-structured algorithms (batches and
// shelves leave idle steps that compaction reclaims).
func Compact(s *sched.Schedule) (*sched.Schedule, error) {
	ordered := append([]sched.Alloc(nil), s.Allocs...)
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].Start != ordered[b].Start {
			return ordered[a].Start < ordered[b].Start
		}
		return ordered[a].Job.ID < ordered[b].Job.ID
	})
	profile := NewProfile(s.M)
	out := sched.New(s.M)
	for _, a := range ordered {
		dur := a.EffectiveDuration()
		start, err := profile.EarliestSlot(a.Job.Release, dur, a.Procs)
		if err != nil {
			return nil, fmt.Errorf("rigid: compaction failed for job %d: %w", a.Job.ID, err)
		}
		if start > a.Start {
			start = a.Start // never move a job later than it already was
		}
		if err := profile.Reserve(start, dur, a.Procs); err != nil {
			return nil, err
		}
		out.Add(sched.Alloc{Job: a.Job, Start: start, Procs: a.Procs, Duration: a.Duration})
	}
	return out, nil
}
