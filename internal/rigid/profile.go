// Package rigid implements scheduling algorithms for rigid Parallel Tasks
// (§2.2: jobs whose processor count is fixed a priori, the strip-packing
// view). It provides the resource-profile data structure shared by all
// queue-based policies, the FCFS and conservative-backfilling builders,
// priority list scheduling, and the NFDH/FFDH shelf packers used both as
// baselines and as building blocks by the SMART and MRT implementations.
package rigid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/platform"
)

// Profile is a piecewise-constant availability timeline over m processors.
// Segment i covers [times[i], times[i+1]) with avail[i] free processors;
// the last segment extends to +infinity. Profiles answer earliest-slot
// queries and record reservations, which is all a queue-based scheduler
// needs.
type Profile struct {
	m     int
	times []float64
	avail []int
}

// NewProfile returns an all-free profile over m processors.
func NewProfile(m int) *Profile {
	if m <= 0 {
		panic(fmt.Sprintf("rigid: profile over %d processors", m))
	}
	return &Profile{m: m, times: []float64{0}, avail: []int{m}}
}

// NewProfileFromCalendar returns a profile with the calendar's
// reservations already carved out.
func NewProfileFromCalendar(cal *platform.Calendar) (*Profile, error) {
	p := NewProfile(cal.M())
	for _, r := range cal.Reservations() {
		if err := p.Reserve(r.Start, r.End-r.Start, r.Procs); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// M returns the processor count.
func (p *Profile) M() int { return p.m }

// segmentAt returns the index of the segment containing time t (t >= 0).
func (p *Profile) segmentAt(t float64) int {
	// binary search for the last breakpoint <= t
	i := sort.Search(len(p.times), func(k int) bool { return p.times[k] > t })
	return i - 1
}

// AvailableAt returns the free processor count at time t.
func (p *Profile) AvailableAt(t float64) int {
	if t < 0 {
		return 0
	}
	return p.avail[p.segmentAt(t)]
}

// split inserts a breakpoint at t if absent and returns its segment index.
func (p *Profile) split(t float64) int {
	i := p.segmentAt(t)
	if p.times[i] == t {
		return i
	}
	p.times = append(p.times, 0)
	p.avail = append(p.avail, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.avail[i+2:], p.avail[i+1:])
	p.times[i+1] = t
	p.avail[i+1] = p.avail[i]
	return i + 1
}

// fits reports whether procs processors are free during [start, start+dur).
func (p *Profile) fits(start, dur float64, procs int) bool {
	end := start + dur
	for i := p.segmentAt(start); i < len(p.times); i++ {
		if p.times[i] >= end {
			break
		}
		segEnd := math.Inf(1)
		if i+1 < len(p.times) {
			segEnd = p.times[i+1]
		}
		if segEnd <= start {
			continue
		}
		if p.avail[i] < procs {
			return false
		}
	}
	return true
}

// EarliestSlot returns the earliest start time >= ready at which procs
// processors are continuously free for dur. It returns an error if
// procs > m (never fits). dur must be positive.
func (p *Profile) EarliestSlot(ready, dur float64, procs int) (float64, error) {
	if procs > p.m {
		return 0, fmt.Errorf("rigid: slot for %d procs on %d-proc profile", procs, p.m)
	}
	if dur <= 0 {
		return 0, fmt.Errorf("rigid: slot with non-positive duration %v", dur)
	}
	if procs <= 0 {
		return math.Max(ready, 0), nil
	}
	if ready < 0 {
		ready = 0
	}
	// Candidate starts: ready, then every later breakpoint. The last
	// segment is infinite with avail == free-forever value, so the loop
	// terminates (a candidate in the last segment either fits there or
	// the demand can never fit — excluded by procs <= m and the fact the
	// final segment's availability is ultimately m minus still-reserved
	// infinite tails, which Reserve forbids).
	cand := ready
	for {
		if p.fits(cand, dur, procs) {
			return cand, nil
		}
		i := p.segmentAt(cand)
		if i+1 >= len(p.times) {
			return 0, fmt.Errorf("rigid: no slot for %d procs (profile saturated forever)", procs)
		}
		cand = p.times[i+1]
	}
}

// Reserve removes procs processors during [start, start+dur). It returns
// an error if availability would go negative anywhere in the window.
func (p *Profile) Reserve(start, dur float64, procs int) error {
	if procs == 0 || dur == 0 {
		return nil
	}
	if procs < 0 || dur < 0 || start < 0 {
		return fmt.Errorf("rigid: invalid reservation start=%v dur=%v procs=%d", start, dur, procs)
	}
	if !p.fits(start, dur, procs) {
		return fmt.Errorf("rigid: reservation of %d procs at [%v,%v) exceeds availability",
			procs, start, start+dur)
	}
	i := p.split(start)
	j := p.split(start + dur)
	for k := i; k < j; k++ {
		p.avail[k] -= procs
	}
	return nil
}

// Release returns procs processors during [start, start+dur) (undo of
// Reserve; availability may not exceed m).
func (p *Profile) Release(start, dur float64, procs int) error {
	if procs == 0 || dur == 0 {
		return nil
	}
	if procs < 0 || dur < 0 || start < 0 {
		return fmt.Errorf("rigid: invalid release start=%v dur=%v procs=%d", start, dur, procs)
	}
	i := p.split(start)
	j := p.split(start + dur)
	for k := i; k < j; k++ {
		if p.avail[k]+procs > p.m {
			return fmt.Errorf("rigid: release of %d procs at t=%v exceeds capacity", procs, p.times[k])
		}
	}
	for k := i; k < j; k++ {
		p.avail[k] += procs
	}
	return nil
}

// Clone returns a deep copy (used for what-if probing by backfilling).
func (p *Profile) Clone() *Profile {
	return &Profile{
		m:     p.m,
		times: append([]float64(nil), p.times...),
		avail: append([]int(nil), p.avail...),
	}
}

// Segments returns the breakpoint count (diagnostics / tests).
func (p *Profile) Segments() int { return len(p.times) }
