// Package rigid implements scheduling algorithms for rigid Parallel Tasks
// (§2.2: jobs whose processor count is fixed a priori, the strip-packing
// view). It provides the resource-profile data structure shared by all
// queue-based policies, the FCFS and conservative-backfilling builders,
// priority list scheduling, and the NFDH/FFDH shelf packers used both as
// baselines and as building blocks by the SMART and MRT implementations.
package rigid

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/platform"
)

// Profile is a piecewise-constant availability timeline over m processors.
// Segment i covers [times[i], times[i+1]) with avail[i] free processors;
// the last segment extends to +infinity. Profiles answer earliest-slot
// queries and record reservations, which is all a queue-based scheduler
// needs.
//
// The representation is kept canonical: no two adjacent segments have
// equal availability (Reserve/Release coalesce on the way out), so the
// segment count is bounded by the number of *distinct* availability
// changes, not by the number of operations performed.
type Profile struct {
	m     int
	times []float64
	avail []int
	// hint is the segment index of the last lookup. Scheduling access
	// patterns are strongly local (a reservation's start is queried, then
	// split, then re-queried), so segmentAt tries hint and its neighbours
	// before falling back to binary search.
	hint int
}

// NewProfile returns an all-free profile over m processors.
func NewProfile(m int) *Profile {
	if m <= 0 {
		panic(fmt.Sprintf("rigid: profile over %d processors", m))
	}
	return &Profile{m: m, times: []float64{0}, avail: []int{m}}
}

// NewProfileFromCalendar returns a profile with the calendar's
// reservations already carved out.
func NewProfileFromCalendar(cal *platform.Calendar) (*Profile, error) {
	p := NewProfile(cal.M())
	for _, r := range cal.Reservations() {
		if err := p.Reserve(r.Start, r.End-r.Start, r.Procs); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// M returns the processor count.
func (p *Profile) M() int { return p.m }

// segmentAt returns the index of the segment containing time t. t must be
// >= times[0] (always true for t >= 0 on untrimmed profiles).
func (p *Profile) segmentAt(t float64) int {
	n := len(p.times)
	h := p.hint
	if h >= n {
		h = n - 1
	}
	// Fast paths: t falls in the hinted segment, the next one, or the
	// previous one. These cover the overwhelming majority of lookups in
	// list scheduling and incremental simulation.
	if p.times[h] <= t {
		if h+1 >= n || t < p.times[h+1] {
			p.hint = h
			return h
		}
		if h+2 >= n || t < p.times[h+2] {
			p.hint = h + 1
			return h + 1
		}
	} else if h > 0 && p.times[h-1] <= t {
		p.hint = h - 1
		return h - 1
	}
	i := sort.Search(n, func(k int) bool { return p.times[k] > t }) - 1
	p.hint = i
	return i
}

// AvailableAt returns the free processor count at time t.
func (p *Profile) AvailableAt(t float64) int {
	if t < p.times[0] {
		return 0
	}
	return p.avail[p.segmentAt(t)]
}

// split inserts a breakpoint at t if absent and returns its segment index.
func (p *Profile) split(t float64) int {
	i := p.segmentAt(t)
	if p.times[i] == t {
		return i
	}
	p.times = append(p.times, 0)
	p.avail = append(p.avail, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.avail[i+2:], p.avail[i+1:])
	p.times[i+1] = t
	p.avail[i+1] = p.avail[i]
	p.hint = i + 1
	return i + 1
}

// coalesceAt removes breakpoint k when it separates two segments of equal
// availability, keeping the representation canonical.
func (p *Profile) coalesceAt(k int) {
	if k <= 0 || k >= len(p.times) || p.avail[k] != p.avail[k-1] {
		return
	}
	p.times = append(p.times[:k], p.times[k+1:]...)
	p.avail = append(p.avail[:k], p.avail[k+1:]...)
	if p.hint >= len(p.times) {
		p.hint = len(p.times) - 1
	}
}

// fits reports whether procs processors are free during [start, start+dur).
func (p *Profile) fits(start, dur float64, procs int) bool {
	end := start + dur
	for i := p.segmentAt(start); i < len(p.times); i++ {
		if p.times[i] >= end {
			break
		}
		if p.avail[i] < procs {
			return false
		}
	}
	return true
}

// EarliestSlot returns the earliest start time >= ready at which procs
// processors are continuously free for dur. It returns an error if
// procs > m (never fits). dur must be positive.
//
// The search is a single forward sweep: the candidate start jumps past the
// first blocking segment and the sweep resumes there, so segments left of
// the final answer are visited at most once (amortized O(segments) per
// query instead of the former O(segments²) restart-from-scratch probing).
func (p *Profile) EarliestSlot(ready, dur float64, procs int) (float64, error) {
	if procs > p.m {
		return 0, fmt.Errorf("rigid: slot for %d procs on %d-proc profile", procs, p.m)
	}
	if dur <= 0 {
		return 0, fmt.Errorf("rigid: slot with non-positive duration %v", dur)
	}
	if procs <= 0 {
		return math.Max(ready, p.times[0]), nil
	}
	if ready < p.times[0] {
		ready = p.times[0]
	}
	i := p.segmentAt(ready)
	cand := ready
	for {
		end := cand + dur
		blocked := -1
		for k := i; k < len(p.times) && p.times[k] < end; k++ {
			if p.avail[k] < procs {
				blocked = k
				break
			}
		}
		if blocked < 0 {
			p.hint = i
			return cand, nil
		}
		if blocked+1 >= len(p.times) {
			return 0, fmt.Errorf("rigid: no slot for %d procs (profile saturated forever)", procs)
		}
		i = blocked + 1
		cand = p.times[i]
	}
}

// EarliestAvail returns the first time >= from at which at least procs
// processors are free, together with the surplus (availability minus
// procs) at that time. For a profile whose reservations all start at or
// before from — the persistent cluster profile — this is exactly EASY
// backfilling's shadow time and spare-processor count. The second result
// is -1 when the profile is saturated forever (cannot happen while every
// reservation is finite).
func (p *Profile) EarliestAvail(from float64, procs int) (float64, int) {
	if from < p.times[0] {
		from = p.times[0]
	}
	for i := p.segmentAt(from); i < len(p.times); i++ {
		if p.avail[i] >= procs {
			return math.Max(p.times[i], from), p.avail[i] - procs
		}
	}
	return math.Inf(1), -1
}

// Reserve removes procs processors during [start, start+dur). It returns
// an error if availability would go negative anywhere in the window.
func (p *Profile) Reserve(start, dur float64, procs int) error {
	if procs == 0 || dur == 0 {
		return nil
	}
	if procs < 0 || dur < 0 || start < p.times[0] {
		return fmt.Errorf("rigid: invalid reservation start=%v dur=%v procs=%d", start, dur, procs)
	}
	if !p.fits(start, dur, procs) {
		return fmt.Errorf("rigid: reservation of %d procs at [%v,%v) exceeds availability",
			procs, start, start+dur)
	}
	i := p.split(start)
	j := p.split(start + dur)
	for k := i; k < j; k++ {
		p.avail[k] -= procs
	}
	// Only the window edges can have become mergeable: interior
	// breakpoints separated distinct availabilities before the uniform
	// subtraction and still do. Coalesce j before i so indices stay valid.
	p.coalesceAt(j)
	p.coalesceAt(i)
	return nil
}

// Release returns procs processors during [start, start+dur) (undo of
// Reserve; availability may not exceed m).
func (p *Profile) Release(start, dur float64, procs int) error {
	if procs == 0 || dur == 0 {
		return nil
	}
	if procs < 0 || dur < 0 || start < p.times[0] {
		return fmt.Errorf("rigid: invalid release start=%v dur=%v procs=%d", start, dur, procs)
	}
	i := p.split(start)
	j := p.split(start + dur)
	for k := i; k < j; k++ {
		if p.avail[k]+procs > p.m {
			return fmt.Errorf("rigid: release of %d procs at t=%v exceeds capacity", procs, p.times[k])
		}
	}
	for k := i; k < j; k++ {
		p.avail[k] += procs
	}
	p.coalesceAt(j)
	p.coalesceAt(i)
	return nil
}

// TrimBefore discards history before t: segments that end at or before t
// are dropped and the first remaining segment is clamped to start at t.
// Afterwards the profile only answers queries for times >= t. The
// incremental cluster simulator calls this with the current clock so the
// persistent profile's size tracks the *running* job set, not the whole
// simulation history.
func (p *Profile) TrimBefore(t float64) {
	if t <= p.times[0] {
		return
	}
	if i := p.segmentAt(t); i > 0 {
		p.times = append(p.times[:0], p.times[i:]...)
		p.avail = append(p.avail[:0], p.avail[i:]...)
	}
	p.times[0] = t
	p.hint = 0
}

// profilePool recycles Clone backing arrays: what-if probing (one clone
// per scheduling decision) dominated allocation in the event simulators.
var profilePool = sync.Pool{New: func() any { return new(Profile) }}

// Clone returns a deep copy (used for what-if probing by backfilling).
// The copy is backed by pooled arrays; callers that are done with a clone
// should hand it back via Recycle to make the backing arrays reusable.
func (p *Profile) Clone() *Profile {
	c := profilePool.Get().(*Profile)
	c.m = p.m
	c.hint = p.hint
	c.times = append(c.times[:0], p.times...)
	c.avail = append(c.avail[:0], p.avail...)
	return c
}

// Recycle returns a profile to the clone pool. The profile must not be
// used afterwards. Recycling is optional — unrecycled clones are simply
// collected by the GC like before.
func (p *Profile) Recycle() {
	if p != nil {
		profilePool.Put(p)
	}
}

// Segments returns the breakpoint count (diagnostics / tests).
func (p *Profile) Segments() int { return len(p.times) }

// Breakpoints returns a copy of the segment start times (diagnostics /
// tests; the canonical-form and equivalence checks sample these).
func (p *Profile) Breakpoints() []float64 {
	return append([]float64(nil), p.times...)
}

// Start returns the earliest time the profile can answer queries for
// (0 for fresh profiles; later after TrimBefore).
func (p *Profile) Start() float64 { return p.times[0] }
