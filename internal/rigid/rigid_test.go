package rigid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lowerbound"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func rjob(id int, dur float64, procs int) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Weight: 1, DueDate: -1,
		SeqTime: dur * float64(procs), MinProcs: procs, MaxProcs: procs,
		Model: workload.Linear{}, // TimeOn(procs) = dur
	}
}

func TestProfileBasics(t *testing.T) {
	p := NewProfile(4)
	if p.AvailableAt(0) != 4 {
		t.Fatal("fresh profile not fully free")
	}
	if err := p.Reserve(10, 5, 3); err != nil {
		t.Fatal(err)
	}
	if got := p.AvailableAt(12); got != 1 {
		t.Fatalf("AvailableAt(12) = %d", got)
	}
	if got := p.AvailableAt(15); got != 4 {
		t.Fatalf("AvailableAt(15) = %d (half-open end)", got)
	}
	if got := p.AvailableAt(9.99); got != 4 {
		t.Fatalf("AvailableAt(9.99) = %d", got)
	}
}

func TestProfileOverReserve(t *testing.T) {
	p := NewProfile(2)
	if err := p.Reserve(0, 10, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(5, 10, 1); err == nil {
		t.Fatal("over-reservation accepted")
	}
}

func TestProfileRelease(t *testing.T) {
	p := NewProfile(4)
	if err := p.Reserve(0, 10, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(2, 3, 2); err != nil {
		t.Fatal(err)
	}
	if got := p.AvailableAt(3); got != 3 {
		t.Fatalf("AvailableAt(3) after release = %d", got)
	}
	if err := p.Release(0, 1, 4); err == nil {
		t.Fatal("over-release accepted")
	}
}

func TestEarliestSlotFindsHole(t *testing.T) {
	p := NewProfile(4)
	// Block 3 procs during [0, 10): a 1-proc job fits at 0, a 2-proc at 10.
	if err := p.Reserve(0, 10, 3); err != nil {
		t.Fatal(err)
	}
	if s, err := p.EarliestSlot(0, 5, 1); err != nil || s != 0 {
		t.Fatalf("1-proc slot = %v, %v", s, err)
	}
	if s, err := p.EarliestSlot(0, 5, 2); err != nil || s != 10 {
		t.Fatalf("2-proc slot = %v, %v", s, err)
	}
}

func TestEarliestSlotSpanningSegments(t *testing.T) {
	p := NewProfile(4)
	// Two gaps: [0,5) has 1 free, [5,8) has 4 free, [8,12) has 1 free.
	if err := p.Reserve(0, 5, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(8, 4, 3); err != nil {
		t.Fatal(err)
	}
	// A 2-proc job of length 4 does not fit in [5,8); earliest is 12.
	if s, err := p.EarliestSlot(0, 4, 2); err != nil || s != 12 {
		t.Fatalf("slot = %v, %v; want 12", s, err)
	}
	// Length 3 fits exactly at 5.
	if s, err := p.EarliestSlot(0, 3, 2); err != nil || s != 5 {
		t.Fatalf("slot = %v, %v; want 5", s, err)
	}
}

func TestEarliestSlotTooWide(t *testing.T) {
	p := NewProfile(2)
	if _, err := p.EarliestSlot(0, 1, 3); err == nil {
		t.Fatal("slot wider than platform accepted")
	}
}

func TestProfileFromCalendar(t *testing.T) {
	cal, err := platform.NewCalendar(4, []platform.Reservation{
		{Name: "r", Start: 5, End: 10, Procs: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfileFromCalendar(cal)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.AvailableAt(7); got != 2 {
		t.Fatalf("AvailableAt(7) = %d", got)
	}
}

func TestFCFSOrder(t *testing.T) {
	// Queue: wide job then narrow job. FCFS must not let the narrow job
	// start before the wide one.
	jobs := []*workload.Job{
		rjob(1, 10, 4), // released 0
		rjob(2, 1, 1),  // released 0, queued after
	}
	s, err := FCFS(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	starts := map[int]float64{}
	for _, a := range s.Allocs {
		starts[a.Job.ID] = a.Start
	}
	if starts[2] < starts[1] {
		t.Fatalf("FCFS reordered: job2 at %v before job1 at %v", starts[2], starts[1])
	}
}

func TestConservativeBackfills(t *testing.T) {
	// Job1 holds 3/4 procs for 10s; job2 (queued 2nd) needs 2 procs →
	// waits; job3 needs 1 proc for 2s → backfills at t=0 without delaying
	// job2.
	jobs := []*workload.Job{
		rjob(1, 10, 3),
		rjob(2, 5, 2),
		rjob(3, 2, 1),
	}
	s, err := Conservative(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	starts := map[int]float64{}
	for _, a := range s.Allocs {
		starts[a.Job.ID] = a.Start
	}
	if starts[3] != 0 {
		t.Fatalf("job3 should backfill at 0, got %v", starts[3])
	}
	if starts[2] != 10 {
		t.Fatalf("job2 should start at 10, got %v", starts[2])
	}
}

func TestConservativeRespectsReleases(t *testing.T) {
	j := rjob(1, 5, 1)
	j.Release = 42
	s, err := Conservative([]*workload.Job{j}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Allocs[0].Start != 42 {
		t.Fatalf("start = %v, want release 42", s.Allocs[0].Start)
	}
}

func TestListLPTBetterOrEqualFCFSOnCmax(t *testing.T) {
	rng := stats.NewRNG(5)
	var jobs []*workload.Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, rjob(i, rng.Range(1, 20), rng.IntRange(1, 8)))
	}
	lpt, err := List(jobs, 8, ByLPT)
	if err != nil {
		t.Fatal(err)
	}
	if err := lpt.Validate(); err != nil {
		t.Fatal(err)
	}
	// LPT list scheduling should stay within 2x of the lower bound here.
	lb := lowerbound.Cmax(jobs, 8)
	if lpt.Makespan() > 2.5*lb {
		t.Fatalf("LPT makespan %v vs bound %v", lpt.Makespan(), lb)
	}
}

func TestFCFSWithCalendarAvoidsReservation(t *testing.T) {
	cal, err := platform.NewCalendar(4, []platform.Reservation{
		{Name: "res", Start: 0, End: 10, Procs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FCFSWithCalendar([]*workload.Job{rjob(1, 5, 2)}, 4, cal)
	if err != nil {
		t.Fatal(err)
	}
	if s.Allocs[0].Start != 10 {
		t.Fatalf("job started at %v inside full reservation", s.Allocs[0].Start)
	}
}

func TestCalendarWidthMismatch(t *testing.T) {
	cal, _ := platform.NewCalendar(8, nil)
	if _, err := FCFSWithCalendar([]*workload.Job{rjob(1, 1, 1)}, 4, cal); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestNFDHShelves(t *testing.T) {
	jobs := []*workload.Job{
		rjob(1, 10, 2), rjob(2, 8, 2), rjob(3, 6, 2), rjob(4, 4, 2),
	}
	shelves, err := NFDH(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shelves) != 2 {
		t.Fatalf("NFDH built %d shelves, want 2", len(shelves))
	}
	if shelves[0].Height != 10 || shelves[1].Height != 6 {
		t.Fatalf("shelf heights %v/%v", shelves[0].Height, shelves[1].Height)
	}
	s := ShelvesToSchedule(shelves, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 16 {
		t.Fatalf("makespan %v, want 16", s.Makespan())
	}
}

func TestFFDHFillsEarlierShelves(t *testing.T) {
	// Heights 10, 9, 1 with widths 2, 2, 2 on m=4: NFDH puts the third job
	// on shelf 2 (it arrives after shelf 1 closed); FFDH also shelf 2; but
	// widths 2,3,1: FFDH packs job3 back onto shelf 1.
	jobs := []*workload.Job{
		rjob(1, 10, 2), rjob(2, 9, 3), rjob(3, 1, 1),
	}
	ff, err := FFDH(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := ShelvesToSchedule(ff, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); got != 19 {
		t.Fatalf("FFDH makespan = %v, want 19 (job3 on first shelf)", got)
	}
}

func TestShelvesRejectOversizedJob(t *testing.T) {
	if _, err := NFDH([]*workload.Job{rjob(1, 1, 9)}, 4); err == nil {
		t.Fatal("oversized job accepted by NFDH")
	}
	if _, err := FFDH([]*workload.Job{rjob(1, 1, 9)}, 4); err == nil {
		t.Fatal("oversized job accepted by FFDH")
	}
}

// Property: all rigid policies emit valid schedules covering all jobs, and
// conservative backfilling never exceeds FCFS on makespan.
func TestPoliciesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 16)
		n := rng.IntRange(1, 30)
		var jobs []*workload.Job
		clock := 0.0
		for i := 0; i < n; i++ {
			j := rjob(i, rng.Range(0.5, 20), rng.IntRange(1, m))
			clock += rng.Exp(0.5)
			j.Release = clock
			jobs = append(jobs, j)
		}
		fcfs, err := FCFS(jobs, m)
		if err != nil || fcfs.Validate() != nil || fcfs.Covers(jobs) != nil {
			return false
		}
		cons, err := Conservative(jobs, m)
		if err != nil || cons.Validate() != nil || cons.Covers(jobs) != nil {
			return false
		}
		lpt, err := List(jobs, m, ByLPT)
		if err != nil || lpt.Validate() != nil {
			return false
		}
		// Conservative dominates FCFS start-time-wise per job, hence also
		// on makespan.
		return cons.Makespan() <= fcfs.Makespan()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: NFDH/FFDH schedules are valid and within the classical 3x of
// the lower bound for offline jobs (NFDH's asymptotic bound is 2·OPT +
// hmax; 3x is a safe envelope that catches gross packing bugs).
func TestShelfQualityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 16)
		n := rng.IntRange(1, 40)
		var jobs []*workload.Job
		for i := 0; i < n; i++ {
			jobs = append(jobs, rjob(i, rng.Range(0.5, 20), rng.IntRange(1, m)))
		}
		lb := lowerbound.Cmax(jobs, m)
		for _, build := range []func([]*workload.Job, int) ([]*Shelf, error){NFDH, FFDH} {
			shelves, err := build(jobs, m)
			if err != nil {
				return false
			}
			s := ShelvesToSchedule(shelves, m)
			if s.Validate() != nil || s.Covers(jobs) != nil {
				return false
			}
			if s.Makespan() > 3*lb+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSortJobsOrders(t *testing.T) {
	jobs := []*workload.Job{rjob(1, 5, 1), rjob(2, 10, 2), rjob(3, 1, 4)}
	lpt := sortJobs(jobs, ByLPT)
	if lpt[0].ID != 2 || lpt[2].ID != 3 {
		t.Fatal("ByLPT wrong")
	}
	spt := sortJobs(jobs, BySPT)
	if spt[0].ID != 3 {
		t.Fatal("BySPT wrong")
	}
	area := sortJobs(jobs, ByArea)
	if area[0].ID != 2 { // 20 > 5 ≥ 4
		t.Fatal("ByArea wrong")
	}
	if math.IsNaN(lpt[0].SeqTime) {
		t.Fatal("unreachable")
	}
}

func TestCompactImprovesShelfSchedule(t *testing.T) {
	// NFDH leaves idle steps at the top of each shelf; compaction must
	// reclaim some without breaking validity.
	rng := stats.NewRNG(21)
	var jobs []*workload.Job
	for i := 0; i < 50; i++ {
		jobs = append(jobs, rjob(i, rng.Range(1, 20), rng.IntRange(1, 8)))
	}
	shelves, err := NFDH(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := ShelvesToSchedule(shelves, 8)
	compacted, err := Compact(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := compacted.ValidateWith(sched.ValidateOptions{IgnoreReleases: true}); err != nil {
		t.Fatal(err)
	}
	if compacted.Makespan() > s.Makespan()+1e-9 {
		t.Fatalf("compaction worsened makespan: %v -> %v", s.Makespan(), compacted.Makespan())
	}
	if compacted.Makespan() >= s.Makespan() {
		t.Skip("no idle steps to reclaim on this draw")
	}
}

// Property: compaction never delays any job, never breaks validity, and
// preserves the job set.
func TestCompactProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 12)
		n := rng.IntRange(1, 30)
		var jobs []*workload.Job
		clock := 0.0
		for i := 0; i < n; i++ {
			clock += rng.Exp(0.5)
			j := rjob(i, rng.Range(0.5, 15), rng.IntRange(1, m))
			j.Release = clock
			jobs = append(jobs, j)
		}
		base, err := FCFS(jobs, m)
		if err != nil {
			return false
		}
		compacted, err := Compact(base)
		if err != nil {
			return false
		}
		if compacted.Validate() != nil || compacted.Covers(jobs) != nil {
			return false
		}
		starts := map[int]float64{}
		for _, a := range base.Allocs {
			starts[a.Job.ID] = a.Start
		}
		for _, a := range compacted.Allocs {
			if a.Start > starts[a.Job.ID]+1e-9 {
				return false // compaction delayed a job
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
