package dlt

import (
	"fmt"
	"math"
)

// TreeNode is a node of a tree network in the sense of the paper's
// reference [4] (Cheng & Robertazzi, "Distributed computation for a tree
// network with communication delays"): the root holds the load, every
// node can compute, and each edge has a per-unit transfer cost. The
// one-port model applies at every node (a node sends to one child at a
// time, after its own receive completes — store-and-forward).
type TreeNode struct {
	Name string
	// Compute is the time to process one unit of load at this node.
	Compute float64
	// LinkToParent is the per-unit transfer cost of the edge above this
	// node (ignored at the root).
	LinkToParent float64
	Children     []*TreeNode
}

// Validate checks the subtree.
func (n *TreeNode) Validate() error {
	if n.Compute <= 0 {
		return fmt.Errorf("dlt: node %q compute %v", n.Name, n.Compute)
	}
	if n.LinkToParent < 0 {
		return fmt.Errorf("dlt: node %q link %v", n.Name, n.LinkToParent)
	}
	for _, c := range n.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the number of nodes in the subtree.
func (n *TreeNode) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Chain builds a linear chain (daisy chain) of depth d below a root —
// the classic degenerate tree used to sanity-check collapse formulas.
func Chain(depth int, compute, link float64) *TreeNode {
	root := &TreeNode{Name: "n0", Compute: compute}
	cur := root
	for i := 1; i <= depth; i++ {
		child := &TreeNode{
			Name: fmt.Sprintf("n%d", i), Compute: compute, LinkToParent: link,
		}
		cur.Children = []*TreeNode{child}
		cur = child
	}
	return root
}

// equivalent returns the per-unit-load completion time F of the subtree
// under optimal single-round distribution with simultaneous completion:
// a subtree receiving load L finishes it in F·L. Classical equivalent-
// processor collapse: each child subtree is first reduced to a single
// equivalent worker (link = child's edge, compute = child's F), then the
// node plus its equivalent children form a star whose closed form is the
// one-round distribution of the dlt package; the node's own computation
// is a zero-link worker. Leaves have F = Compute.
func (n *TreeNode) equivalent() (float64, error) {
	if len(n.Children) == 0 {
		return n.Compute, nil
	}
	workers := []Worker{{Name: n.Name, Compute: n.Compute, Link: 0}}
	for _, c := range n.Children {
		f, err := c.equivalent()
		if err != nil {
			return 0, err
		}
		workers = append(workers, Worker{Name: c.Name, Compute: f, Link: c.LinkToParent})
	}
	star := &Star{Workers: workers}
	d, err := SingleRound(star, 1)
	if err != nil {
		return 0, err
	}
	return d.Makespan, nil
}

// TreeDistribution is the outcome of TreeSingleRound.
type TreeDistribution struct {
	// Makespan is the completion time of the whole load.
	Makespan float64
	// Load maps node names to absolute load amounts (sums to W).
	Load map[string]float64
	// Equivalent is the root's per-unit-load time F (Makespan = F·W).
	Equivalent float64
}

// TreeSingleRound computes the optimal single-round distribution of load
// W over the tree: bottom-up equivalent-processor collapse, then
// top-down unfolding of the per-subtree fractions.
func TreeSingleRound(root *TreeNode, W float64) (*TreeDistribution, error) {
	if err := root.Validate(); err != nil {
		return nil, err
	}
	if W <= 0 {
		return nil, fmt.Errorf("dlt: non-positive load %v", W)
	}
	f, err := root.equivalent()
	if err != nil {
		return nil, err
	}
	out := &TreeDistribution{
		Makespan:   f * W,
		Load:       map[string]float64{},
		Equivalent: f,
	}
	if err := unfold(root, W, out.Load); err != nil {
		return nil, err
	}
	return out, nil
}

// unfold splits load among a node and its child subtrees using the same
// star solution as the collapse, recursively.
func unfold(n *TreeNode, load float64, acc map[string]float64) error {
	if _, dup := acc[n.Name]; dup {
		return fmt.Errorf("dlt: duplicate node name %q", n.Name)
	}
	if len(n.Children) == 0 {
		acc[n.Name] = load
		return nil
	}
	workers := []Worker{{Name: n.Name, Compute: n.Compute, Link: 0}}
	for _, c := range n.Children {
		f, err := c.equivalent()
		if err != nil {
			return err
		}
		workers = append(workers, Worker{Name: c.Name, Compute: f, Link: c.LinkToParent})
	}
	d, err := SingleRound(&Star{Workers: workers}, load)
	if err != nil {
		return err
	}
	acc[n.Name] = d.Alpha[0] * load
	for i, c := range n.Children {
		sub := d.Alpha[i+1] * load
		if sub <= 0 {
			if err := markZero(c, acc); err != nil {
				return err
			}
			continue
		}
		if err := unfold(c, sub, acc); err != nil {
			return err
		}
	}
	return nil
}

func markZero(n *TreeNode, acc map[string]float64) error {
	if _, dup := acc[n.Name]; dup {
		return fmt.Errorf("dlt: duplicate node name %q", n.Name)
	}
	acc[n.Name] = 0
	for _, c := range n.Children {
		if err := markZero(c, acc); err != nil {
			return err
		}
	}
	return nil
}

// TreeLowerBound is the compute-saturation bound for a tree: all nodes
// crunching in parallel with free communication.
func TreeLowerBound(root *TreeNode, W float64) float64 {
	var invSum float64
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		invSum += 1 / n.Compute
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if invSum == 0 {
		return math.Inf(1)
	}
	return W / invSum
}
