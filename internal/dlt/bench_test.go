package dlt

import "testing"

func benchStar(n int) *Star {
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = Worker{Compute: 1 + float64(i%5)*0.3, Link: 0.01 + float64(i%7)*0.05}
	}
	return &Star{Workers: ws, Latency: 0.5}
}

func BenchmarkSingleRound64(b *testing.B) {
	s := benchStar(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SingleRound(s, 1e5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiRound64x16(b *testing.B) {
	s := benchStar(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MultiRound(s, 1e5, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelfSchedule64(b *testing.B) {
	s := benchStar(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelfSchedule(s, 1e5, 1e5/500); err != nil {
			b.Fatal(err)
		}
	}
}
