package dlt

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestTreeLeafEqualsSingleWorker(t *testing.T) {
	leaf := &TreeNode{Name: "solo", Compute: 2}
	d, err := TreeSingleRound(leaf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Makespan-20) > 1e-9 {
		t.Fatalf("makespan %v, want 20", d.Makespan)
	}
	if math.Abs(d.Load["solo"]-10) > 1e-9 {
		t.Fatalf("load %v, want all at the leaf", d.Load["solo"])
	}
}

func TestTreeDepthOneMatchesStar(t *testing.T) {
	// Root with compute + 2 children == star with a zero-link master
	// worker: cross-check against the flat solver.
	root := &TreeNode{Name: "r", Compute: 1, Children: []*TreeNode{
		{Name: "a", Compute: 2, LinkToParent: 0.1},
		{Name: "b", Compute: 3, LinkToParent: 0.3},
	}}
	td, err := TreeSingleRound(root, 50)
	if err != nil {
		t.Fatal(err)
	}
	flat := &Star{Workers: []Worker{
		{Name: "r", Compute: 1, Link: 0},
		{Name: "a", Compute: 2, Link: 0.1},
		{Name: "b", Compute: 3, Link: 0.3},
	}}
	fd, err := SingleRound(flat, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(td.Makespan-fd.Makespan) > 1e-6*fd.Makespan {
		t.Fatalf("tree %v vs star %v", td.Makespan, fd.Makespan)
	}
}

func TestTreeLoadConservation(t *testing.T) {
	root := &TreeNode{Name: "r", Compute: 1, Children: []*TreeNode{
		{Name: "a", Compute: 1, LinkToParent: 0.2, Children: []*TreeNode{
			{Name: "aa", Compute: 1, LinkToParent: 0.3},
			{Name: "ab", Compute: 2, LinkToParent: 0.1},
		}},
		{Name: "b", Compute: 1.5, LinkToParent: 0.4},
	}}
	W := 100.0
	d, err := TreeSingleRound(root, W)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range d.Load {
		if v < -1e-9 {
			t.Fatalf("negative load %v", v)
		}
		sum += v
	}
	if math.Abs(sum-W) > 1e-6 {
		t.Fatalf("loads sum to %v, want %v", sum, W)
	}
	if len(d.Load) != root.Size() {
		t.Fatalf("%d load entries for %d nodes", len(d.Load), root.Size())
	}
}

func TestTreeBeatsSingleNode(t *testing.T) {
	// Adding children with finite links must not hurt: the collapse
	// should use them and beat the root alone.
	root := &TreeNode{Name: "r", Compute: 1, Children: []*TreeNode{
		{Name: "a", Compute: 1, LinkToParent: 0.05},
		{Name: "b", Compute: 1, LinkToParent: 0.05},
	}}
	d, err := TreeSingleRound(root, 90)
	if err != nil {
		t.Fatal(err)
	}
	aloneMakespan := 90.0 * 1
	if d.Makespan >= aloneMakespan {
		t.Fatalf("tree makespan %v not better than root alone %v", d.Makespan, aloneMakespan)
	}
	if d.Makespan < TreeLowerBound(root, 90)-1e-9 {
		t.Fatal("tree beat its lower bound")
	}
}

func TestChainCollapse(t *testing.T) {
	// A depth-3 chain: deeper nodes help less (store-and-forward), so
	// the equivalent time must decrease with each added level but stay
	// above the compute-saturation bound.
	prev := math.Inf(1)
	for depth := 0; depth <= 3; depth++ {
		c := Chain(depth, 1, 0.2)
		d, err := TreeSingleRound(c, 10)
		if err != nil {
			t.Fatal(err)
		}
		if d.Makespan >= prev {
			t.Fatalf("depth %d makespan %v did not improve on %v", depth, d.Makespan, prev)
		}
		prev = d.Makespan
		if lb := TreeLowerBound(c, 10); d.Makespan < lb-1e-9 {
			t.Fatalf("depth %d: makespan %v below bound %v", depth, d.Makespan, lb)
		}
	}
}

func TestTreeValidation(t *testing.T) {
	bad := &TreeNode{Name: "r", Compute: 0}
	if _, err := TreeSingleRound(bad, 10); err == nil {
		t.Fatal("zero-compute node accepted")
	}
	ok := &TreeNode{Name: "r", Compute: 1}
	if _, err := TreeSingleRound(ok, 0); err == nil {
		t.Fatal("zero load accepted")
	}
	dup := &TreeNode{Name: "x", Compute: 1, Children: []*TreeNode{
		{Name: "x", Compute: 1, LinkToParent: 0.1},
	}}
	if _, err := TreeSingleRound(dup, 10); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

// Property: random trees conserve load, respect the lower bound, and the
// root's equivalent time is no worse than the root's own compute time.
func TestTreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		id := 0
		var build func(depth int) *TreeNode
		build = func(depth int) *TreeNode {
			n := &TreeNode{
				Name:         fmt.Sprintf("n%d", id),
				Compute:      rng.Range(0.5, 4),
				LinkToParent: rng.Range(0.01, 1),
			}
			id++
			if depth > 0 {
				kids := rng.Intn(3)
				for k := 0; k < kids; k++ {
					n.Children = append(n.Children, build(depth-1))
				}
			}
			return n
		}
		root := build(3)
		W := rng.Range(10, 1000)
		d, err := TreeSingleRound(root, W)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range d.Load {
			if v < -1e-9 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-W) > 1e-6*W {
			return false
		}
		if d.Makespan < TreeLowerBound(root, W)*(1-1e-9) {
			return false
		}
		// The tree can never be slower than the root computing alone.
		return d.Makespan <= root.Compute*W*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeSingleRound(b *testing.B) {
	// Balanced ternary tree of depth 4 (121 nodes).
	id := 0
	var build func(depth int) *TreeNode
	build = func(depth int) *TreeNode {
		n := &TreeNode{
			Name: fmt.Sprintf("n%d", id), Compute: 1 + float64(id%3)*0.5,
			LinkToParent: 0.05 + float64(id%5)*0.02,
		}
		id++
		if depth > 0 {
			for k := 0; k < 3; k++ {
				n.Children = append(n.Children, build(depth-1))
			}
		}
		return n
	}
	root := build(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TreeSingleRound(root, 1e5); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBestRoundsLatencyMonotone(t *testing.T) {
	// The optimal round count must not increase with latency.
	s := homogeneousBus(4, 1, 0.3)
	W := 1000.0
	prevR := 1 << 30
	for _, lat := range []float64{0, 1, 10, 100} {
		s.Latency = lat
		r, d, err := BestRounds(s, W, 64)
		if err != nil {
			t.Fatal(err)
		}
		if d == nil || d.Makespan < LowerBound(s, W)-1e-9 {
			t.Fatalf("latency %v: bad best distribution", lat)
		}
		if r > prevR {
			t.Fatalf("optimal rounds increased with latency: %d after %d at lat=%v",
				r, prevR, lat)
		}
		prevR = r
	}
}

func TestBestRoundsDegenerate(t *testing.T) {
	s := homogeneousBus(2, 1, 0.1)
	if _, _, err := BestRounds(s, 100, 0); err == nil {
		t.Fatal("maxR=0 accepted")
	}
	r, d, err := BestRounds(s, 100, 1)
	if err != nil || r != 1 || d == nil {
		t.Fatalf("maxR=1: r=%d d=%v err=%v", r, d, err)
	}
}
