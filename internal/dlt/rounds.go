package dlt

import (
	"fmt"
	"math"
)

// BestRounds searches the number of rounds R in [1, maxR] minimizing the
// multi-round makespan for the given platform and load — the practical
// answer to §2.1's "distribution in one or several rounds" question. It
// exploits the (empirically) unimodal shape of makespan(R): more rounds
// improve overlap until per-message latency dominates, so the search
// stops once the makespan has deteriorated for three consecutive R. The
// exhaustive fallback keeps correctness on non-unimodal edge cases.
func BestRounds(s *Star, W float64, maxR int) (bestR int, best *Distribution, err error) {
	if maxR < 1 {
		return 0, nil, fmt.Errorf("dlt: maxR = %d", maxR)
	}
	bestMakespan := math.Inf(1)
	worse := 0
	for r := 1; r <= maxR; r++ {
		d, err := MultiRound(s, W, r)
		if err != nil {
			return 0, nil, err
		}
		if d.Makespan < bestMakespan {
			bestMakespan = d.Makespan
			bestR = r
			best = d
			worse = 0
		} else {
			worse++
			if worse >= 3 {
				break
			}
		}
	}
	return bestR, best, nil
}
