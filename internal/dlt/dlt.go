// Package dlt implements the Divisible Load model of §2.1 of the paper:
// an application is an arbitrarily-partitionable mass of independent
// fine-grain computation (the multi-parametric jobs of §5.2), distributed
// by a master to workers over a one-port network. The package provides
// the closed-form optimal single-round distribution on bus and star
// platforms (all participating workers finish simultaneously, links
// served by non-decreasing communication cost), fixed-R multi-round
// distribution, the dynamic self-scheduling ("work stealing") strategy,
// and the asymptotic steady-state throughput bound that the paper invokes
// for multi-parametric workloads.
package dlt

import (
	"fmt"
	"math"
	"sort"
)

// Worker is one compute resource of a star (or bus) platform.
// Compute is the time to process one unit of load; Link is the time to
// transfer one unit of load to this worker over its private link. On a
// bus platform all Link values are equal.
type Worker struct {
	Name    string
	Compute float64
	Link    float64
}

// Star is a master-worker platform under the one-port model: the master
// sends to one worker at a time. Latency is the fixed per-message cost
// (the affine communication model); zero gives the linear model with its
// clean closed forms.
type Star struct {
	Workers []Worker
	Latency float64
}

// Validate checks platform invariants.
func (s *Star) Validate() error {
	if len(s.Workers) == 0 {
		return fmt.Errorf("dlt: star with no workers")
	}
	if s.Latency < 0 {
		return fmt.Errorf("dlt: negative latency %v", s.Latency)
	}
	for i, w := range s.Workers {
		if w.Compute <= 0 {
			return fmt.Errorf("dlt: worker %d compute rate %v", i, w.Compute)
		}
		if w.Link < 0 {
			return fmt.Errorf("dlt: worker %d link rate %v", i, w.Link)
		}
	}
	return nil
}

// Bus builds a homogeneous-link platform: n workers with the given
// compute times and a shared link cost.
func Bus(computes []float64, link, latency float64) *Star {
	ws := make([]Worker, len(computes))
	for i, c := range computes {
		ws[i] = Worker{Name: fmt.Sprintf("w%d", i), Compute: c, Link: link}
	}
	return &Star{Workers: ws, Latency: latency}
}

// Distribution is the outcome of a distribution policy.
type Distribution struct {
	// Alpha[i] is the load fraction given to worker i (same order as the
	// platform's worker list); zero for non-participating workers.
	Alpha []float64
	// Makespan is the completion time of the whole load.
	Makespan float64
	// Rounds is the number of communication rounds used.
	Rounds int
	// Messages counts master sends (for overhead accounting).
	Messages int
}

// ordering returns worker indices sorted by non-decreasing link cost —
// the optimal service order for single-round distribution (faster links
// first dominate: a classical DLT exchange argument).
func ordering(s *Star) []int {
	idx := make([]int, len(s.Workers))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		wa, wb := s.Workers[idx[a]], s.Workers[idx[b]]
		if wa.Link != wb.Link {
			return wa.Link < wb.Link
		}
		return wa.Compute < wb.Compute
	})
	return idx
}

// SingleRound computes the optimal one-round distribution of load W on
// the platform: workers served in non-decreasing link cost, fractions
// chosen so all participants finish simultaneously. With non-zero latency
// some workers may be dropped (serving them costs more than they
// contribute); the best participating prefix is selected.
func SingleRound(s *Star, W float64) (*Distribution, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if W <= 0 {
		return nil, fmt.Errorf("dlt: non-positive load %v", W)
	}
	order := ordering(s)
	best := (*Distribution)(nil)
	for k := 1; k <= len(order); k++ {
		d, ok := singleRoundPrefix(s, W, order[:k])
		if !ok {
			continue
		}
		if best == nil || d.Makespan < best.Makespan {
			best = d
		}
	}
	if best == nil {
		return nil, fmt.Errorf("dlt: no feasible single-round distribution")
	}
	return best, nil
}

// singleRoundPrefix solves the simultaneous-completion linear system for
// the given participating workers (in service order):
//
//	t_i   = t_{i-1} + L + α_i·c_i·W        (one-port sends)
//	T     = t_i + α_i·w_i·W                (all finish at T)
//
// which gives α_{i+1} = (α_i·w_i·W − L) / ((c_{i+1}+w_{i+1})·W), an
// affine recurrence α_i = A_i·α_1 + B_i closed by Σα = 1. Returns
// ok=false when the system forces a negative fraction (too many workers
// for the latency).
func singleRoundPrefix(s *Star, W float64, order []int) (*Distribution, bool) {
	n := len(order)
	A := make([]float64, n)
	B := make([]float64, n)
	A[0], B[0] = 1, 0
	for i := 0; i+1 < n; i++ {
		wi := s.Workers[order[i]]
		next := s.Workers[order[i+1]]
		den := (next.Link + next.Compute) * W
		A[i+1] = A[i] * wi.Compute * W / den
		B[i+1] = (B[i]*wi.Compute*W - s.Latency) / den
	}
	var sumA, sumB float64
	for i := 0; i < n; i++ {
		sumA += A[i]
		sumB += B[i]
	}
	if sumA <= 0 {
		return nil, false
	}
	alpha1 := (1 - sumB) / sumA
	alpha := make([]float64, len(s.Workers))
	for i := 0; i < n; i++ {
		a := A[i]*alpha1 + B[i]
		if a < -1e-12 {
			return nil, false
		}
		if a < 0 {
			a = 0
		}
		alpha[order[i]] = a
	}
	// Makespan from the first worker: T = L + α_1(c_1 + w_1)W.
	first := s.Workers[order[0]]
	T := s.Latency + alpha[order[0]]*(first.Link+first.Compute)*W
	return &Distribution{Alpha: alpha, Makespan: T, Rounds: 1, Messages: n}, true
}

// MultiRound distributes the load in R equal-size rounds, each split
// with the no-latency simultaneous-finish proportions, and simulates the
// one-port timeline exactly (a worker may still be computing the previous
// chunk when the next one lands; computation then queues). Overlapping
// communication with computation is what multi-round buys; per-message
// latency is what it pays (R·n messages).
func MultiRound(s *Star, W float64, R int) (*Distribution, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if W <= 0 {
		return nil, fmt.Errorf("dlt: non-positive load %v", W)
	}
	if R <= 0 {
		return nil, fmt.Errorf("dlt: %d rounds", R)
	}
	order := ordering(s)
	// Intra-round proportions from the latency-free closed form over all
	// workers; if that fails (cannot here with L=0), uniform.
	noLat := &Star{Workers: s.Workers, Latency: 0}
	base, ok := singleRoundPrefix(noLat, W, order)
	if !ok {
		base = &Distribution{Alpha: uniform(len(s.Workers))}
	}
	alpha := base.Alpha

	clock := 0.0 // master port free time
	workerFree := make([]float64, len(s.Workers))
	finish := 0.0
	messages := 0
	perRound := W / float64(R)
	total := make([]float64, len(s.Workers))
	for r := 0; r < R; r++ {
		for _, wi := range order {
			load := alpha[wi] * perRound
			if load <= 0 {
				continue
			}
			w := s.Workers[wi]
			clock += s.Latency + load*w.Link // one-port send
			messages++
			start := math.Max(clock, workerFree[wi])
			workerFree[wi] = start + load*w.Compute
			if workerFree[wi] > finish {
				finish = workerFree[wi]
			}
			total[wi] += load
		}
	}
	for i := range total {
		total[i] /= W
	}
	return &Distribution{Alpha: total, Makespan: finish, Rounds: R, Messages: messages}, nil
}

// SelfSchedule simulates the dynamic strategy of §2.1 ([3]-style work
// stealing flattened to master-worker self-scheduling): the load is cut
// into fixed-size chunks and idle workers fetch the next chunk over the
// one-port link. No sizing knowledge is needed — the baseline for
// comparing against the omniscient closed forms.
func SelfSchedule(s *Star, W float64, chunk float64) (*Distribution, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if W <= 0 || chunk <= 0 {
		return nil, fmt.Errorf("dlt: load %v, chunk %v", W, chunk)
	}
	remaining := W
	clock := 0.0 // master port
	workerFree := make([]float64, len(s.Workers))
	total := make([]float64, len(s.Workers))
	finish := 0.0
	messages := 0
	for remaining > 1e-15 {
		load := math.Min(chunk, remaining)
		remaining -= load
		// Next worker to request: the one that frees earliest, with the
		// tie broken toward faster links (its request reaches the master
		// first).
		wi := 0
		bestReady := math.Inf(1)
		for i := range s.Workers {
			ready := workerFree[i]
			if ready < bestReady || (ready == bestReady && s.Workers[i].Link < s.Workers[wi].Link) {
				bestReady = ready
				wi = i
			}
		}
		w := s.Workers[wi]
		sendStart := math.Max(clock, 0)
		clock = sendStart + s.Latency + load*w.Link
		messages++
		start := math.Max(clock, workerFree[wi])
		workerFree[wi] = start + load*w.Compute
		total[wi] += load
		if workerFree[wi] > finish {
			finish = workerFree[wi]
		}
	}
	for i := range total {
		total[i] /= W
	}
	return &Distribution{Alpha: total, Makespan: finish, Rounds: messages, Messages: messages}, nil
}

func uniform(n int) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = 1 / float64(n)
	}
	return a
}

// LowerBound returns a certified makespan lower bound for distributing
// load W on the platform: the pipelined bound max over k of the time for
// the k fastest-link workers to receive and compute everything
// (simplified to the two classical terms: pure compute with infinite
// bandwidth, and the master's port serialization on the cheapest link).
func LowerBound(s *Star, W float64) float64 {
	var invSum float64
	minLink := math.Inf(1)
	for _, w := range s.Workers {
		invSum += 1 / w.Compute
		if w.Link < minLink {
			minLink = w.Link
		}
	}
	compute := W / invSum // all workers crunching in parallel, no comm
	port := W * minLink   // master must push every unit through its port
	return math.Max(compute, port)
}

// SteadyStateThroughput returns the optimal asymptotic throughput (load
// units per time) for an endless supply of divisible work — the §5.2
// observation that multi-parametric jobs admit polynomial optimal
// steady-state solutions. Classical bandwidth-centric result: saturate
// workers in increasing link-cost order while the master port allows,
// i.e. maximize Σ x_i subject to x_i ≤ 1/w_i and Σ x_i·c_i ≤ 1.
func SteadyStateThroughput(s *Star) float64 {
	order := ordering(s)
	portBudget := 1.0
	var rate float64
	for _, wi := range order {
		w := s.Workers[wi]
		maxRate := 1 / w.Compute
		if w.Link <= 0 {
			rate += maxRate
			continue
		}
		affordable := portBudget / w.Link
		x := math.Min(maxRate, affordable)
		rate += x
		portBudget -= x * w.Link
		if portBudget <= 1e-15 {
			break
		}
	}
	return rate
}
