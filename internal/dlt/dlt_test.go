package dlt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func homogeneousBus(n int, compute, link float64) *Star {
	cs := make([]float64, n)
	for i := range cs {
		cs[i] = compute
	}
	return Bus(cs, link, 0)
}

func TestValidate(t *testing.T) {
	bad := []*Star{
		{},
		{Workers: []Worker{{Compute: 0, Link: 1}}},
		{Workers: []Worker{{Compute: 1, Link: -1}}},
		{Workers: []Worker{{Compute: 1, Link: 1}}, Latency: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad platform %d accepted", i)
		}
	}
}

func TestSingleRoundFractionsSumToOne(t *testing.T) {
	s := Bus([]float64{1, 2, 4}, 0.1, 0)
	d, err := SingleRound(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, a := range d.Alpha {
		if a < 0 {
			t.Fatalf("negative fraction %v", a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestSingleRoundSimultaneousCompletion(t *testing.T) {
	s := &Star{Workers: []Worker{
		{Compute: 1, Link: 0.1},
		{Compute: 2, Link: 0.3},
		{Compute: 3, Link: 0.2},
	}}
	W := 50.0
	d, err := SingleRound(s, W)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the one-port timeline in the service order (link ascending)
	// and verify all participants finish at the makespan.
	order := ordering(s)
	clock := 0.0
	for _, wi := range order {
		if d.Alpha[wi] == 0 {
			continue
		}
		w := s.Workers[wi]
		clock += d.Alpha[wi] * w.Link * W
		finish := clock + d.Alpha[wi]*w.Compute*W
		if math.Abs(finish-d.Makespan) > 1e-6*d.Makespan {
			t.Fatalf("worker %d finishes at %v, makespan %v", wi, finish, d.Makespan)
		}
	}
}

func TestSingleRoundHomogeneousBusFormula(t *testing.T) {
	// n identical workers (compute w, link c) on a bus: the closed form
	// gives α_{i+1} = α_i · w/(c+w). Verify against the recurrence.
	s := homogeneousBus(4, 2, 0.5)
	d, err := SingleRound(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	ratio := 2.0 / 2.5
	for i := 0; i+1 < 4; i++ {
		got := d.Alpha[i+1] / d.Alpha[i]
		if math.Abs(got-ratio) > 1e-9 {
			t.Fatalf("fraction ratio %v, want %v", got, ratio)
		}
	}
}

func TestSingleRoundBeatsLowerBound(t *testing.T) {
	s := Bus([]float64{1, 2, 3, 5}, 0.2, 0)
	W := 200.0
	d, err := SingleRound(s, W)
	if err != nil {
		t.Fatal(err)
	}
	if lb := LowerBound(s, W); d.Makespan < lb-1e-9 {
		t.Fatalf("makespan %v below lower bound %v", d.Makespan, lb)
	}
}

func TestSingleRoundDropsWorkersUnderLatency(t *testing.T) {
	// Huge per-message latency: using all 8 workers must be worse than a
	// subset; the solver should not return negative fractions.
	s := homogeneousBus(8, 1, 0.01)
	s.Latency = 50
	d, err := SingleRound(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, a := range d.Alpha {
		if a > 1e-12 {
			active++
		}
	}
	if active == 8 {
		t.Fatalf("all workers kept despite latency 50 (makespan %v)", d.Makespan)
	}
}

func TestSingleRoundFasterLinkServedFirstIsBetter(t *testing.T) {
	// The optimal order serves cheaper links first; verify the solver's
	// makespan is no worse than the reversed-order solution.
	s := &Star{Workers: []Worker{
		{Compute: 1, Link: 0.05},
		{Compute: 1, Link: 0.5},
	}}
	W := 30.0
	d, err := SingleRound(s, W)
	if err != nil {
		t.Fatal(err)
	}
	rev, ok := singleRoundPrefix(s, W, []int{1, 0})
	if ok && rev.Makespan < d.Makespan-1e-9 {
		t.Fatalf("reversed order better: %v < %v", rev.Makespan, d.Makespan)
	}
}

func TestMultiRoundOverlapsCommunication(t *testing.T) {
	// Comm-heavy platform, no latency: multi-round should beat one round
	// by overlapping sends with computation.
	s := homogeneousBus(4, 1, 0.5)
	W := 100.0
	one, err := SingleRound(s, W)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiRound(s, W, 10)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Makespan >= one.Makespan {
		t.Fatalf("10 rounds (%v) not better than 1 round (%v) on comm-heavy bus",
			multi.Makespan, one.Makespan)
	}
}

func TestMultiRoundLatencyCrossover(t *testing.T) {
	// With heavy latency, many rounds pay R·n messages and must lose to
	// one round — the T5 crossover.
	s := homogeneousBus(4, 1, 0.1)
	s.Latency = 20
	W := 100.0
	one, err := SingleRound(s, W)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiRound(s, W, 20)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Makespan <= one.Makespan {
		t.Fatalf("20 rounds (%v) beat 1 round (%v) despite latency 20",
			multi.Makespan, one.Makespan)
	}
}

func TestMultiRoundConservesLoad(t *testing.T) {
	s := Bus([]float64{1, 3}, 0.2, 0.5)
	d, err := MultiRound(s, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, a := range d.Alpha {
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distributed fractions sum to %v", sum)
	}
	if d.Messages == 0 || d.Rounds != 5 {
		t.Fatalf("rounds/messages bookkeeping: %+v", d)
	}
}

func TestSelfScheduleCompletes(t *testing.T) {
	s := Bus([]float64{1, 2, 4}, 0.1, 0.2)
	d, err := SelfSchedule(s, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, a := range d.Alpha {
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if d.Makespan < LowerBound(s, 60)-1e-9 {
		t.Fatal("self-schedule beat the lower bound")
	}
}

func TestSelfScheduleFasterWorkerGetsMore(t *testing.T) {
	s := &Star{Workers: []Worker{
		{Compute: 1, Link: 0.01},
		{Compute: 10, Link: 0.01},
	}}
	d, err := SelfSchedule(s, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Alpha[0] <= d.Alpha[1] {
		t.Fatalf("fast worker got %v, slow got %v", d.Alpha[0], d.Alpha[1])
	}
}

func TestSelfScheduleChunkTradeoff(t *testing.T) {
	// With latency, tiny chunks pay per-message overhead; huge chunks
	// lose balance. A mid chunk should beat a tiny chunk here.
	s := homogeneousBus(4, 1, 0.05)
	s.Latency = 1
	W := 200.0
	tiny, err := SelfSchedule(s, W, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := SelfSchedule(s, W, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Makespan >= tiny.Makespan {
		t.Fatalf("chunk 10 (%v) not better than chunk 0.5 (%v) under latency",
			mid.Makespan, tiny.Makespan)
	}
}

func TestSteadyStateThroughputBusSaturation(t *testing.T) {
	// Two workers, compute 1 (rate 1 each), links 0.25: port allows
	// 1/0.25 = 4 units/s; workers cap at 2. Throughput = 2.
	s := Bus([]float64{1, 1}, 0.25, 0)
	if got := SteadyStateThroughput(s); math.Abs(got-2) > 1e-9 {
		t.Fatalf("throughput %v, want 2 (compute-bound)", got)
	}
	// Expensive links: port 1/c = 0.5 caps below compute 2.
	s2 := Bus([]float64{1, 1}, 2, 0)
	if got := SteadyStateThroughput(s2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("throughput %v, want 0.5 (port-bound)", got)
	}
}

func TestSteadyStatePrefersCheapLinks(t *testing.T) {
	// Cheap-link slow worker plus expensive-link fast worker: the
	// bandwidth-centric rule saturates the cheap link first, then spends
	// the remaining port budget on the expensive one.
	s := &Star{Workers: []Worker{
		{Compute: 2, Link: 0.1}, // rate ≤ 0.5, port cost 0.1/unit
		{Compute: 0.5, Link: 1}, // rate ≤ 2, port cost 1/unit
	}}
	// Cheap worker: x0 = 0.5 uses 0.05 port. Remaining 0.95 port allows
	// x1 = 0.95 < 2. Total 1.45.
	if got := SteadyStateThroughput(s); math.Abs(got-1.45) > 1e-9 {
		t.Fatalf("throughput %v, want 1.45", got)
	}
}

func TestLowerBoundTerms(t *testing.T) {
	s := Bus([]float64{1, 1}, 3, 0)
	// compute bound: W / (1+1) = 0.5W; port bound: 3W → port dominates.
	if got := LowerBound(s, 10); math.Abs(got-30) > 1e-9 {
		t.Fatalf("LowerBound = %v, want 30", got)
	}
	s2 := Bus([]float64{4, 4}, 0.1, 0)
	// compute: 10/(0.5) = 20; port: 1 → compute dominates.
	if got := LowerBound(s2, 10); math.Abs(got-20) > 1e-9 {
		t.Fatalf("LowerBound = %v, want 20", got)
	}
}

func TestBadInputs(t *testing.T) {
	s := homogeneousBus(2, 1, 0.1)
	if _, err := SingleRound(s, 0); err == nil {
		t.Fatal("W=0 accepted by SingleRound")
	}
	if _, err := MultiRound(s, 10, 0); err == nil {
		t.Fatal("R=0 accepted by MultiRound")
	}
	if _, err := SelfSchedule(s, 10, 0); err == nil {
		t.Fatal("chunk=0 accepted by SelfSchedule")
	}
}

// Property: all policies conserve load, respect the lower bound, and the
// omniscient single round is never beaten by self-scheduling with the
// same platform at zero latency (it is the optimal one-round schedule,
// and chunked self-scheduling is a feasible... NOTE: multi-round CAN beat
// single round, so only self-schedule with huge chunk (≈ single round
// without simultaneity) is compared).
func TestPoliciesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := rng.IntRange(1, 8)
		ws := make([]Worker, n)
		for i := range ws {
			ws[i] = Worker{Compute: rng.Range(0.5, 5), Link: rng.Range(0.01, 1)}
		}
		s := &Star{Workers: ws, Latency: rng.Range(0, 2)}
		W := rng.Range(10, 500)
		lb := LowerBound(s, W)

		check := func(d *Distribution, err error) bool {
			if err != nil {
				return false
			}
			var sum float64
			for _, a := range d.Alpha {
				if a < -1e-12 {
					return false
				}
				sum += a
			}
			return math.Abs(sum-1) < 1e-6 && d.Makespan >= lb*(1-1e-9)
		}
		if !check(SingleRound(s, W)) {
			return false
		}
		if !check(MultiRound(s, W, rng.IntRange(1, 10))) {
			return false
		}
		return check(SelfSchedule(s, W, W/float64(rng.IntRange(2, 50))))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
