package lowerbound

import (
	"testing"

	"repro/internal/workload"
)

func BenchmarkCmaxDual1000(b *testing.B) {
	jobs := workload.Parallel(workload.GenConfig{N: 1000, M: 100, Seed: 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if CmaxDual(jobs, 100) <= 0 {
			b.Fatal("degenerate bound")
		}
	}
}

func BenchmarkSumWeighted1000(b *testing.B) {
	jobs := workload.Parallel(workload.GenConfig{N: 1000, M: 100, Seed: 6, Weighted: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if SumWeightedCompletion(jobs, 100) <= 0 {
			b.Fatal("degenerate bound")
		}
	}
}
