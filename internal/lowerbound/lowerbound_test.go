package lowerbound

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func mold(id int, seq float64, maxP int) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Moldable, Weight: 1, DueDate: -1,
		SeqTime: seq, MinProcs: 1, MaxProcs: maxP, Model: workload.Linear{},
	}
}

func TestCmaxArea(t *testing.T) {
	jobs := []*workload.Job{mold(1, 10, 4), mold(2, 30, 4)}
	if got := CmaxArea(jobs, 4); math.Abs(got-10) > 1e-12 {
		t.Fatalf("CmaxArea = %v, want 10", got)
	}
}

func TestCmaxMinTime(t *testing.T) {
	jobs := []*workload.Job{mold(1, 10, 1), mold(2, 30, 4)}
	// job1 can only run sequentially: min time 10; job2: 30/4 = 7.5.
	if got := CmaxMinTime(jobs, 4); got != 10 {
		t.Fatalf("CmaxMinTime = %v, want 10", got)
	}
}

func TestCmaxDualDominates(t *testing.T) {
	rng := stats.NewRNG(1)
	var jobs []*workload.Job
	for i := 0; i < 30; i++ {
		j := mold(i, rng.Range(1, 100), rng.IntRange(1, 8))
		j.Model = workload.Amdahl{Alpha: 0.1}
		jobs = append(jobs, j)
	}
	m := 8
	dual := CmaxDual(jobs, m)
	if dual < CmaxArea(jobs, m)-1e-9 {
		t.Fatal("dual bound below area bound")
	}
	if dual < CmaxMinTime(jobs, m)-1e-9 {
		t.Fatal("dual bound below min-time bound")
	}
}

func TestCmaxDualSingleJob(t *testing.T) {
	// One sequential-only job: the dual bound must equal its time.
	jobs := []*workload.Job{mold(1, 42, 1)}
	if got := CmaxDual(jobs, 16); math.Abs(got-42) > 1e-6 {
		t.Fatalf("CmaxDual = %v, want 42", got)
	}
}

func TestCmaxDualTightOnPerfectPacking(t *testing.T) {
	// m identical sequential jobs on m processors: optimum = seq time.
	var jobs []*workload.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, mold(i, 10, 1))
	}
	if got := CmaxDual(jobs, 8); math.Abs(got-10) > 1e-6 {
		t.Fatalf("CmaxDual = %v, want 10", got)
	}
}

func TestCmaxWithReleases(t *testing.T) {
	j := mold(1, 10, 1)
	j.Release = 100
	if got := Cmax([]*workload.Job{j}, 4); math.Abs(got-110) > 1e-6 {
		t.Fatalf("Cmax = %v, want 110", got)
	}
}

func TestCmaxEmpty(t *testing.T) {
	if CmaxDual(nil, 4) != 0 || Cmax(nil, 4) != 0 {
		t.Fatal("empty instance bound != 0")
	}
}

func TestSumWeightedCompletionSingleMachine(t *testing.T) {
	// Two sequential jobs on one processor, weights 1: optimal ΣC by SPT
	// = 2 + (2+5) = 9. The bound must not exceed it and should be
	// reasonably tight here (it equals it: squashed machine = machine).
	jobs := []*workload.Job{mold(1, 5, 1), mold(2, 2, 1)}
	got := SumWeightedCompletion(jobs, 1)
	if got > 9+1e-9 {
		t.Fatalf("bound %v exceeds optimal 9", got)
	}
	if math.Abs(got-9) > 1e-9 {
		t.Fatalf("bound %v not tight on single machine, want 9", got)
	}
}

func TestSumWeightedCompletionUsesWeights(t *testing.T) {
	a := mold(1, 10, 1)
	a.Weight = 10
	b := mold(2, 10, 1)
	b.Weight = 1
	withW := SumWeightedCompletion([]*workload.Job{a, b}, 1)
	unw := SumCompletion([]*workload.Job{a, b}, 1)
	if withW <= unw {
		t.Fatalf("weighted bound %v not above unweighted %v", withW, unw)
	}
}

func TestSumCompletionIgnoresStoredWeights(t *testing.T) {
	a := mold(1, 5, 1)
	a.Weight = 100
	b := mold(2, 2, 1)
	got := SumCompletion([]*workload.Job{a, b}, 1)
	if math.Abs(got-9) > 1e-9 {
		t.Fatalf("SumCompletion = %v, want 9", got)
	}
}

func TestSumWeightedReleaseTerm(t *testing.T) {
	j := mold(1, 1, 1)
	j.Release = 1000
	got := SumWeightedCompletion([]*workload.Job{j}, 4)
	if got < 1001-1e-9 {
		t.Fatalf("bound %v misses release term 1001", got)
	}
}

// buildGreedySchedule packs jobs sequentially with a simple list rule so
// property tests can compare a real schedule against the bounds.
func buildGreedySchedule(jobs []*workload.Job, m int) *sched.Schedule {
	s := sched.New(m)
	// Free time per processor (list scheduling on 1 proc each).
	free := make([]float64, m)
	for _, j := range jobs {
		// Earliest processor.
		best := 0
		for p := 1; p < m; p++ {
			if free[p] < free[best] {
				best = p
			}
		}
		start := math.Max(free[best], j.Release)
		s.Add(sched.Alloc{Job: j, Start: start, Procs: 1})
		free[best] = start + j.TimeOn(1)
	}
	return s
}

// Property: bounds never exceed the value of an actual feasible schedule.
func TestBoundsBelowFeasibleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(1, 8)
		n := rng.IntRange(1, 20)
		var jobs []*workload.Job
		for i := 0; i < n; i++ {
			j := mold(i, rng.Range(1, 50), rng.IntRange(1, m))
			j.Model = workload.Amdahl{Alpha: rng.Range(0, 0.5)}
			j.Weight = rng.Range(0.1, 5)
			jobs = append(jobs, j)
		}
		s := buildGreedySchedule(jobs, m)
		if s.Validate() != nil {
			return false
		}
		rep := s.Report()
		if Cmax(jobs, m) > rep.Makespan+1e-6 {
			return false
		}
		if SumWeightedCompletion(jobs, m) > rep.SumWeightedCompletion+1e-6 {
			return false
		}
		return SumCompletion(jobs, m) <= rep.SumCompletion+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: dual feasibility is monotone — the returned λ is feasible and
// 0.99λ is not (unless λ hit the trivial lower bound).
func TestDualMinimalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := rng.IntRange(2, 12)
		n := rng.IntRange(2, 15)
		var jobs []*workload.Job
		for i := 0; i < n; i++ {
			j := mold(i, rng.Range(1, 80), rng.IntRange(1, m))
			j.Model = workload.PowerLaw{Sigma: rng.Range(0.5, 1.0)}
			jobs = append(jobs, j)
		}
		lam := CmaxDual(jobs, m)
		if !dualFeasible(jobs, m, lam*(1+1e-6)) {
			return false
		}
		trivial := math.Max(CmaxArea(jobs, m), CmaxMinTime(jobs, m))
		if lam > trivial*(1+1e-9) {
			// Strictly above the trivial bound: must be minimal.
			return !dualFeasible(jobs, m, lam*0.99)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
