// Package lowerbound computes lower bounds on the optimal value of the
// §3 criteria for sets of rigid/moldable Parallel Tasks. Every experiment
// in the repository reports performance ratios against these bounds, the
// same methodology as the paper's Figure 2 (the true optimum being
// intractable, ratios are measured against a certified underestimate, so
// reported ratios are upper bounds on the true ratios).
package lowerbound

import (
	"math"
	"sort"

	"repro/internal/workload"
)

// CmaxArea returns the area (average work) bound: total minimal work
// divided by the number of processors. No schedule can beat it because m
// processors provide at most m·Cmax units of work.
func CmaxArea(jobs []*workload.Job, m int) float64 {
	return workload.TotalMinWork(jobs, m) / float64(m)
}

// CmaxMinTime returns the critical-job bound: the largest minimal
// execution time over all jobs (every job must run somewhere, entirely).
func CmaxMinTime(jobs []*workload.Job, m int) float64 {
	var lb float64
	for _, j := range jobs {
		t, _ := j.MinTime(m)
		if !math.IsInf(t, 0) && t > lb {
			lb = t
		}
	}
	return lb
}

// minWorkUnder returns the minimal work of job j among allocations of at
// most m processors whose execution time is at most deadline, or +Inf if
// no allocation meets the deadline. Monotone non-increasing in deadline
// by construction, which makes the dual bound's binary search sound even
// for non-monotone profiles.
func minWorkUnder(j *workload.Job, deadline float64, m int) float64 {
	best := math.Inf(1)
	hi := j.MaxProcs
	if hi > m {
		hi = m
	}
	for p := j.MinProcs; p <= hi; p++ {
		if j.TimeOn(p) <= deadline {
			if w := j.WorkOn(p); w < best {
				best = w
			}
		}
	}
	return best
}

// dualFeasible reports whether the guess λ passes the dual-approximation
// feasibility test of §4.1: every job has an allocation meeting λ, and
// the sum of the cheapest such allocations fits in the area λ·m.
func dualFeasible(jobs []*workload.Job, m int, lambda float64) bool {
	var work float64
	bound := lambda * float64(m)
	for _, j := range jobs {
		w := minWorkUnder(j, lambda, m)
		if math.IsInf(w, 0) {
			return false
		}
		work += w
		if work > bound*(1+1e-12) {
			return false
		}
	}
	return true
}

// CmaxDual returns the dual-approximation bound: the smallest λ (up to
// relative precision 1e-9) such that the instance passes the feasibility
// test. In the optimal schedule of makespan C*, every job meets deadline
// C* and the packed work fits in C*·m, so C* is feasible and the smallest
// feasible λ is a valid lower bound. It dominates both CmaxArea and
// CmaxMinTime.
func CmaxDual(jobs []*workload.Job, m int) float64 {
	if len(jobs) == 0 {
		return 0
	}
	lo := math.Max(CmaxArea(jobs, m), CmaxMinTime(jobs, m))
	if lo == 0 {
		return 0
	}
	if dualFeasible(jobs, m, lo) {
		return lo
	}
	hi := CmaxMinTime(jobs, m) + workload.TotalMinWork(jobs, m)/float64(m)
	for !dualFeasible(jobs, m, hi) {
		// Degenerate profiles (e.g. min-work allocation slower than λ):
		// widen until feasible. Doubling terminates because at λ ≥ max
		// sequential time the cheapest allocation is unconstrained.
		hi *= 2
		if math.IsInf(hi, 0) {
			return lo
		}
	}
	for i := 0; i < 100 && (hi-lo) > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if dualFeasible(jobs, m, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Cmax returns the strongest available makespan lower bound, including
// the release-date term max_j (r_j + minTime_j).
func Cmax(jobs []*workload.Job, m int) float64 {
	lb := CmaxDual(jobs, m)
	for _, j := range jobs {
		t, _ := j.MinTime(m)
		if math.IsInf(t, 0) {
			continue
		}
		if v := j.Release + t; v > lb {
			lb = v
		}
	}
	return lb
}

// SumWeightedCompletion returns a lower bound on ΣωiCi combining:
//
//  1. the squashed-area bound: in any schedule, if jobs are indexed by
//     completion order then m·C(k) ≥ Σ_{i≤k} minwork_i, so ΣwC is at
//     least the WSPT value of the single-machine instance with sizes
//     minwork_i/m (Smith's rule gives the minimizing order);
//  2. the per-job bound C_j ≥ r_j + minTime_j.
//
// The maximum of the two is returned. Works for rigid jobs too (their
// min work is the only work).
func SumWeightedCompletion(jobs []*workload.Job, m int) float64 {
	type item struct {
		size, weight float64
	}
	items := make([]item, 0, len(jobs))
	var perJob float64
	for _, j := range jobs {
		w, _ := j.MinWork(m)
		t, _ := j.MinTime(m)
		if math.IsInf(t, 0) {
			continue // unschedulable on this width; contributes nothing
		}
		items = append(items, item{size: w / float64(m), weight: j.Weight})
		perJob += j.Weight * (j.Release + t)
	}
	// Smith's rule: sort by size/weight ascending (zero-weight jobs last;
	// they contribute nothing but still occupy the squashed machine).
	sort.Slice(items, func(a, b int) bool {
		wa, wb := items[a].weight, items[b].weight
		if wa > 0 && wb > 0 {
			return items[a].size*wb < items[b].size*wa
		}
		return wa > wb
	})
	var clock, squashed float64
	for _, it := range items {
		clock += it.size
		squashed += it.weight * clock
	}
	return math.Max(squashed, perJob)
}

// SumCompletion returns the unweighted specialization of
// SumWeightedCompletion (treating every weight as 1 regardless of the
// stored weights).
func SumCompletion(jobs []*workload.Job, m int) float64 {
	clone := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		c := j.Clone()
		c.Weight = 1
		clone[i] = c
	}
	return SumWeightedCompletion(clone, m)
}
