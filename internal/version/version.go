// Package version pins the build identity of the gridd binary family.
// The daemon serves it at GET /v1/version (together with the scenario
// catalog hash) and the fleet coordinator compares it against every
// worker's before granting a lease: two builds that disagree on
// version, toolchain or catalog could produce subtly different cell
// rows, and a distributed run must never merge those into one table.
package version

import "runtime"

// Version is the repo release string. Override at build time with
//
//	go build -ldflags "-X repro/internal/version.Version=v1.2.3"
var Version = "0.9.0"

// Go returns the toolchain that built this binary (floating-point
// code generation differences across toolchains would break the
// byte-identity contract of distributed runs, so it is part of the
// compatibility check).
func Go() string { return runtime.Version() }
