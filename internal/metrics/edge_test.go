package metrics

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func edgeJob(id int, release, seq float64, procs int, due float64) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Rigid, Release: release, Weight: 1, DueDate: due,
		SeqTime: seq, MinProcs: procs, MaxProcs: procs, Model: workload.Linear{},
	}
}

// TestEmptyCompletions pins every aggregate on the empty slice: all must
// return zero (not NaN, not panic), since a freshly started gridd serves
// /stats before any job has completed.
func TestEmptyCompletions(t *testing.T) {
	var cs []Completion
	checks := map[string]float64{
		"Makespan":              Makespan(cs),
		"SumCompletion":         SumCompletion(cs),
		"SumWeightedCompletion": SumWeightedCompletion(cs),
		"SumFlow":               SumFlow(cs),
		"MeanFlow":              MeanFlow(cs),
		"MaxFlow":               MaxFlow(cs),
		"MeanStretch":           MeanStretch(cs, 8),
		"MaxStretch":            MaxStretch(cs, 8),
		"SumTardiness":          SumTardiness(cs),
		"MaxTardiness":          MaxTardiness(cs),
		"Utilization":           Utilization(cs, 8),
	}
	for name, v := range checks {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("%s(empty) = %v, want 0", name, v)
		}
	}
	if LateCount(cs) != 0 {
		t.Fatalf("LateCount(empty) = %d", LateCount(cs))
	}
	rep := NewReport(cs, 8)
	if rep.N != 0 || rep.MeanStretch != 0 || rep.Utilization != 0 {
		t.Fatalf("NewReport(empty) = %+v", rep)
	}
}

// TestZeroDurationStretch covers jobs whose best possible execution time
// is zero (degenerate SeqTime): Stretch's flow/0 must be suppressed to 0
// rather than returning +Inf or NaN into MaxStretch.
func TestZeroDurationStretch(t *testing.T) {
	zero := &workload.Job{
		ID: 1, Kind: workload.Rigid, Release: 0, Weight: 1, DueDate: -1,
		SeqTime: 0, MinProcs: 1, MaxProcs: 1, Model: workload.Linear{},
	}
	c := Completion{Job: zero, Start: 5, End: 5, Procs: 1}
	if s := c.Stretch(4); s != 0 {
		t.Fatalf("Stretch of zero-duration job = %v, want 0", s)
	}
	// Mixed with a normal job, the zero-duration one must not dominate.
	normal := Completion{Job: edgeJob(2, 0, 10, 1, -1), Start: 0, End: 20, Procs: 1}
	cs := []Completion{c, normal}
	if mx := MaxStretch(cs, 4); math.IsInf(mx, 1) || math.IsNaN(mx) || mx != 2 {
		t.Fatalf("MaxStretch with zero-duration job = %v, want 2", mx)
	}
	if mean := MeanStretch(cs, 4); math.IsNaN(mean) || mean != 1 {
		t.Fatalf("MeanStretch with zero-duration job = %v, want 1", mean)
	}
}

// TestZeroDurationCompletion: a job that starts and ends at the same
// instant contributes zero area and zero flow-from-start, and must keep
// Utilization finite.
func TestZeroDurationCompletion(t *testing.T) {
	cs := []Completion{
		{Job: edgeJob(1, 0, 10, 2, -1), Start: 3, End: 3, Procs: 2},
		{Job: edgeJob(2, 0, 12, 3, -1), Start: 0, End: 4, Procs: 3},
	}
	if u := Utilization(cs, 4); math.IsNaN(u) || u != 12.0/16.0 {
		t.Fatalf("Utilization = %v, want %v", u, 12.0/16.0)
	}
	if f := cs[0].Flow(); f != 3 {
		t.Fatalf("Flow = %v, want 3 (End - Release)", f)
	}
}

// TestTardinessNoDueDate pins the DueDate = -1 convention: such jobs are
// never late no matter how long they run.
func TestTardinessNoDueDate(t *testing.T) {
	c := Completion{Job: edgeJob(1, 0, 10, 1, -1), Start: 0, End: 1e12, Procs: 1}
	if d := c.Tardiness(); d != 0 {
		t.Fatalf("Tardiness with DueDate=-1 = %v, want 0", d)
	}
	cs := []Completion{
		c,
		{Job: edgeJob(2, 0, 10, 1, 5), Start: 0, End: 8, Procs: 1},  // 3 late
		{Job: edgeJob(3, 0, 10, 1, 20), Start: 0, End: 8, Procs: 1}, // on time
	}
	if n := LateCount(cs); n != 1 {
		t.Fatalf("LateCount = %d, want 1", n)
	}
	if s := SumTardiness(cs); s != 3 {
		t.Fatalf("SumTardiness = %v, want 3", s)
	}
	if mx := MaxTardiness(cs); mx != 3 {
		t.Fatalf("MaxTardiness = %v, want 3", mx)
	}
}

// TestThroughputGuards pins the panic contract on non-positive horizons
// and the boundary inclusion (End <= horizon counts).
func TestThroughputGuards(t *testing.T) {
	cs := []Completion{
		{Job: edgeJob(1, 0, 10, 1, -1), Start: 0, End: 5, Procs: 1},
		{Job: edgeJob(2, 0, 10, 1, -1), Start: 0, End: 10, Procs: 1},
		{Job: edgeJob(3, 0, 10, 1, -1), Start: 0, End: 15, Procs: 1},
	}
	if th := Throughput(cs, 10); th != 0.2 {
		t.Fatalf("Throughput = %v, want 0.2", th)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Throughput(0) did not panic")
		}
	}()
	Throughput(cs, 0)
}
