// Package metrics implements the optimization criteria catalogue of §3 of
// the paper: makespan, (weighted) sum of completion times, mean and
// maximum stretch, tardiness variants, throughput and utilization. All
// criteria operate on completion records so that both static schedules
// and discrete-event simulations can be scored identically.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// Completion records the outcome of one job.
type Completion struct {
	Job   *workload.Job
	Start float64
	End   float64
	// Procs is the number of processors the job ran on.
	Procs int
}

// Flow returns End - Release (the paper calls ΣCi - ri "mean stretch";
// in modern terminology this per-job quantity is the flow time).
func (c Completion) Flow() float64 { return c.End - c.Job.Release }

// Stretch returns flow time normalized by the job's best possible
// execution time on the platform width m (slowdown). Jobs with zero
// minimal time return 0.
func (c Completion) Stretch(m int) float64 {
	t, _ := c.Job.MinTime(m)
	if t <= 0 || math.IsInf(t, 0) {
		return 0
	}
	return c.Flow() / t
}

// Tardiness returns max(0, End - DueDate), or 0 when the job has no due
// date (DueDate < 0).
func (c Completion) Tardiness() float64 {
	if c.Job.DueDate < 0 {
		return 0
	}
	if d := c.End - c.Job.DueDate; d > 0 {
		return d
	}
	return 0
}

// Makespan returns max End over the records (0 when empty) — Cmax in §3.
func Makespan(cs []Completion) float64 {
	var mk float64
	for _, c := range cs {
		if c.End > mk {
			mk = c.End
		}
	}
	return mk
}

// SumCompletion returns ΣCi.
func SumCompletion(cs []Completion) float64 {
	var s float64
	for _, c := range cs {
		s += c.End
	}
	return s
}

// SumWeightedCompletion returns ΣωiCi.
func SumWeightedCompletion(cs []Completion) float64 {
	var s float64
	for _, c := range cs {
		s += c.Job.Weight * c.End
	}
	return s
}

// SumFlow returns Σ(Ci - ri), the paper's "mean stretch" numerator.
func SumFlow(cs []Completion) float64 {
	var s float64
	for _, c := range cs {
		s += c.Flow()
	}
	return s
}

// MeanFlow returns SumFlow / n (0 when empty).
func MeanFlow(cs []Completion) float64 {
	if len(cs) == 0 {
		return 0
	}
	return SumFlow(cs) / float64(len(cs))
}

// MaxFlow returns the maximum Ci - ri ("the longest waiting time for a
// user" in §3's maximum-stretch sense, unnormalized).
func MaxFlow(cs []Completion) float64 {
	var mx float64
	for _, c := range cs {
		if f := c.Flow(); f > mx {
			mx = f
		}
	}
	return mx
}

// MaxStretch returns the maximum normalized stretch over the records.
func MaxStretch(cs []Completion, m int) float64 {
	var mx float64
	for _, c := range cs {
		if s := c.Stretch(m); s > mx {
			mx = s
		}
	}
	return mx
}

// MeanStretch returns the average normalized stretch.
func MeanStretch(cs []Completion, m int) float64 {
	if len(cs) == 0 {
		return 0
	}
	var s float64
	for _, c := range cs {
		s += c.Stretch(m)
	}
	return s / float64(len(cs))
}

// LateCount returns the number of tardy jobs.
func LateCount(cs []Completion) int {
	var n int
	for _, c := range cs {
		if c.Tardiness() > 0 {
			n++
		}
	}
	return n
}

// SumTardiness returns Σ max(0, Ci - di).
func SumTardiness(cs []Completion) float64 {
	var s float64
	for _, c := range cs {
		s += c.Tardiness()
	}
	return s
}

// MaxTardiness returns max tardiness over the records.
func MaxTardiness(cs []Completion) float64 {
	var mx float64
	for _, c := range cs {
		if d := c.Tardiness(); d > mx {
			mx = d
		}
	}
	return mx
}

// Throughput returns completed jobs per unit time over [0, horizon]
// (§3's steady-state criterion). It panics on a non-positive horizon.
func Throughput(cs []Completion, horizon float64) float64 {
	if horizon <= 0 {
		panic("metrics: non-positive horizon")
	}
	var n int
	for _, c := range cs {
		if c.End <= horizon {
			n++
		}
	}
	return float64(n) / horizon
}

// Utilization returns the fraction of the m-processor area [0, makespan]
// that is covered by job execution. Empty records give 0.
func Utilization(cs []Completion, m int) float64 {
	mk := Makespan(cs)
	if mk <= 0 || m <= 0 {
		return 0
	}
	var area float64
	for _, c := range cs {
		area += float64(c.Procs) * (c.End - c.Start)
	}
	return area / (mk * float64(m))
}

// BestEffortStats aggregates the best-effort (grid campaign) activity
// of one cluster: the §5.2 semantics where grid tasks fill scheduling
// holes and are killed whenever local work needs their processors.
type BestEffortStats struct {
	Completed int
	Killed    int
	// Redistributed counts killed tasks that re-arrived on a cluster
	// after drifting back through the central stock (one count per
	// resubmission, so a task killed twice counts twice).
	Redistributed int
	DoneWork      float64 // reference-speed work completed
	WastedWork    float64 // reference-speed work lost to kills
}

// FaultStats aggregates fault-injection activity on one cluster: node
// crashes/repairs and the local jobs killed and resubmitted when
// capacity disappears under them.
type FaultStats struct {
	// Crashes and Repairs count capacity-loss and capacity-return
	// events (a whole-cluster outage is one crash).
	Crashes int
	Repairs int
	// Requeues counts local jobs killed by a crash and resubmitted to
	// the tail of the queue (their wait-time penalty shows up in the
	// flow/stretch criteria because the release date is unchanged).
	Requeues int
	// LostWork is the reference-speed work destroyed by crashes
	// (procs × elapsed × speed per killed local job).
	LostWork float64
	// DownProcSeconds integrates unavailable capacity over time
	// (proc-seconds; the denominator of empirical availability).
	DownProcSeconds float64
}

// Report bundles every §3 criterion for one experiment run, plus the
// best-effort and fault counters of the run when the producer tracks
// them (cluster.Sim.Report fills them; NewReport leaves them zero).
type Report struct {
	N                     int
	Makespan              float64
	SumCompletion         float64
	SumWeightedCompletion float64
	MeanFlow              float64
	MaxFlow               float64
	MeanStretch           float64
	MaxStretch            float64
	LateCount             int
	SumTardiness          float64
	Utilization           float64
	BestEffort            BestEffortStats
	Faults                FaultStats
}

// NewReport evaluates all criteria at once.
func NewReport(cs []Completion, m int) Report {
	return Report{
		N:                     len(cs),
		Makespan:              Makespan(cs),
		SumCompletion:         SumCompletion(cs),
		SumWeightedCompletion: SumWeightedCompletion(cs),
		MeanFlow:              MeanFlow(cs),
		MaxFlow:               MaxFlow(cs),
		MeanStretch:           MeanStretch(cs, m),
		MaxStretch:            MaxStretch(cs, m),
		LateCount:             LateCount(cs),
		SumTardiness:          SumTardiness(cs),
		Utilization:           Utilization(cs, m),
	}
}

// String renders the report as a compact single line.
func (r Report) String() string {
	return fmt.Sprintf("n=%d Cmax=%.4g ΣC=%.4g ΣwC=%.4g meanflow=%.4g util=%.2f%%",
		r.N, r.Makespan, r.SumCompletion, r.SumWeightedCompletion, r.MeanFlow, 100*r.Utilization)
}
