package metrics

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// reportsIdentical compares two reports field by field with ==: the
// accumulator contract is bit-for-bit equality, not epsilon closeness.
func reportsIdentical(a, b Report) bool { return a == b }

// accumulate folds a slice through an Accumulator.
func accumulate(cs []Completion, m int) Report {
	acc := NewAccumulator(m)
	for _, c := range cs {
		acc.Add(c)
	}
	if acc.N() != len(cs) || acc.M() != m {
		panic("accumulator miscounted")
	}
	return acc.Report()
}

// TestAccumulatorMatchesNewReportRandom is the property test of the
// streaming stats path: across randomized workloads (moldable and
// rigid, weighted, due dates, out-of-order completion streams) the
// one-pass report equals the slice-based NewReport bit-for-bit.
func TestAccumulatorMatchesNewReportRandom(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 200; trial++ {
		m := rng.IntRange(1, 96)
		n := rng.Intn(120)
		cfg := workload.GenConfig{
			N: n + 1, M: m, Seed: uint64(trial),
			ArrivalRate:   rng.Range(0, 2),
			Weighted:      rng.Bool(0.5),
			RigidFraction: rng.Range(0, 1),
		}
		if rng.Bool(0.3) {
			cfg.DueDateSlack = rng.Range(1, 4)
		}
		jobs := workload.Parallel(cfg)
		cs := make([]Completion, 0, len(jobs))
		for _, j := range jobs {
			procs := j.MinProcs
			start := j.Release + rng.Range(0, 50)
			// A slice of the stream completes instantly (zero duration)
			// and some jobs "complete" before others released — the
			// accumulator must not care about stream order.
			end := start
			if rng.Bool(0.9) {
				end = start + j.TimeOn(procs)
			}
			cs = append(cs, Completion{Job: j, Start: start, End: end, Procs: procs})
		}
		rng.Shuffle(len(cs), func(i, k int) { cs[i], cs[k] = cs[k], cs[i] })
		want := NewReport(cs, m)
		got := accumulate(cs, m)
		if !reportsIdentical(want, got) {
			t.Fatalf("trial %d (n=%d m=%d): accumulator diverged\nwant %+v\ngot  %+v",
				trial, len(cs), m, want, got)
		}
	}
}

// TestAccumulatorEdgeCases mirrors the metrics/edge_test.go cases the
// slice path pins: empty stream, zero-duration stretch suppression,
// DueDate=-1 never late, zero-makespan utilization.
func TestAccumulatorEdgeCases(t *testing.T) {
	// Empty: all zeros, no NaN.
	if rep := NewAccumulator(8).Report(); !reportsIdentical(rep, NewReport(nil, 8)) {
		t.Fatalf("empty accumulator report = %+v", rep)
	}

	zero := &workload.Job{
		ID: 1, Kind: workload.Rigid, Release: 0, Weight: 1, DueDate: -1,
		SeqTime: 0, MinProcs: 1, MaxProcs: 1, Model: workload.Linear{},
	}
	late := edgeJob(2, 0, 4, 2, 1) // due at 1, ends later
	noDue := edgeJob(3, 2, 3, 1, -1)
	cs := []Completion{
		{Job: zero, Start: 5, End: 5, Procs: 1}, // zero-duration, zero min-time
		{Job: late, Start: 0, End: 2, Procs: 2},
		{Job: noDue, Start: 2, End: 5, Procs: 1},
	}
	want := NewReport(cs, 4)
	got := accumulate(cs, 4)
	if !reportsIdentical(want, got) {
		t.Fatalf("edge stream diverged\nwant %+v\ngot  %+v", want, got)
	}
	if got.LateCount != 1 {
		t.Fatalf("LateCount = %d, want 1 (DueDate=-1 must never be late)", got.LateCount)
	}
	if got.MaxStretch == 0 || got.MeanStretch == 0 {
		t.Fatalf("stretch vanished entirely: %+v", got)
	}

	// All-zero-duration stream at t=0: utilization denominator is 0.
	zcs := []Completion{{Job: zero, Start: 0, End: 0, Procs: 1}}
	if w, g := NewReport(zcs, 4), accumulate(zcs, 4); !reportsIdentical(w, g) {
		t.Fatalf("zero-makespan stream diverged\nwant %+v\ngot  %+v", w, g)
	}
}

func TestRetentionStores(t *testing.T) {
	job := edgeJob(1, 0, 1, 1, -1)
	mk := func(i int) Completion {
		return Completion{Job: job, Start: float64(i), End: float64(i + 1), Procs: 1}
	}

	full := NewFullRetention()
	ring := NewRing(3)
	var spilled []Completion
	spill := NewSpillRing(2, func(c Completion) { spilled = append(spilled, c) })
	disc := NewDiscard()
	for i := 0; i < 5; i++ {
		c := mk(i)
		full.Add(c)
		ring.Add(c)
		spill.Add(c)
		disc.Add(c)
	}
	if full.Len() != 5 || len(full.Completions()) != 5 {
		t.Fatalf("full retention lost records: %d", full.Len())
	}
	if _, ok := full.(Viewer); !ok {
		t.Fatal("full retention must expose a zero-copy view")
	}
	got := ring.Completions()
	if ring.Len() != 3 || len(got) != 3 || got[0].Start != 2 || got[2].Start != 4 {
		t.Fatalf("ring tail wrong: %+v", got)
	}
	if len(spilled) != 3 || spilled[0].Start != 0 || spilled[2].Start != 2 {
		t.Fatalf("spill evictions wrong: %+v", spilled)
	}
	if tail := spill.Completions(); len(tail) != 2 || tail[0].Start != 3 {
		t.Fatalf("spill-ring tail wrong: %+v", tail)
	}
	if disc.Len() != 0 || disc.Completions() != nil {
		t.Fatal("discard retained something")
	}
}
