package metrics

// Accumulator computes the full §3 criteria Report in one pass over the
// completion stream, in O(1) memory: simulations feed every completion
// through Add as it happens and can ask for the Report at any point
// without retaining the records. Fed the same completions in the same
// order, Report() is bit-for-bit identical to NewReport over the
// materialized slice — each criterion performs the exact same float
// operations in the exact same order (a single left fold per metric).
//
// The platform width m is fixed at construction because stretch
// normalizes by the job's best execution time on m processors, which
// must be evaluated while the job is still live.
type Accumulator struct {
	m int

	n        int
	makespan float64
	sumC     float64
	sumWC    float64
	sumFlow  float64
	maxFlow  float64
	sumStr   float64
	maxStr   float64
	late     int
	sumTard  float64
	area     float64
}

// NewAccumulator returns an empty accumulator for an m-processor
// platform.
func NewAccumulator(m int) *Accumulator { return &Accumulator{m: m} }

// Add folds one completion into every criterion.
func (a *Accumulator) Add(c Completion) {
	a.n++
	if c.End > a.makespan {
		a.makespan = c.End
	}
	a.sumC += c.End
	a.sumWC += c.Job.Weight * c.End
	f := c.Flow()
	a.sumFlow += f
	if f > a.maxFlow {
		a.maxFlow = f
	}
	s := c.Stretch(a.m)
	a.sumStr += s
	if s > a.maxStr {
		a.maxStr = s
	}
	d := c.Tardiness()
	if d > 0 {
		a.late++
	}
	a.sumTard += d
	a.area += float64(c.Procs) * (c.End - c.Start)
}

// N returns the number of completions folded in so far.
func (a *Accumulator) N() int { return a.n }

// M returns the platform width the accumulator normalizes stretch by.
func (a *Accumulator) M() int { return a.m }

// Report finalizes the criteria (O(1): two divisions and the
// utilization ratio).
func (a *Accumulator) Report() Report {
	rep := Report{
		N:                     a.n,
		Makespan:              a.makespan,
		SumCompletion:         a.sumC,
		SumWeightedCompletion: a.sumWC,
		MaxFlow:               a.maxFlow,
		MaxStretch:            a.maxStr,
		LateCount:             a.late,
		SumTardiness:          a.sumTard,
	}
	if a.n > 0 {
		rep.MeanFlow = a.sumFlow / float64(a.n)
		rep.MeanStretch = a.sumStr / float64(a.n)
	}
	if a.makespan > 0 && a.m > 0 {
		rep.Utilization = a.area / (a.makespan * float64(a.m))
	}
	return rep
}
