package metrics

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func job(id int, release, weight, due, seq float64) *workload.Job {
	return &workload.Job{
		ID: id, Kind: workload.Moldable, Release: release, Weight: weight,
		DueDate: due, SeqTime: seq, MinProcs: 1, MaxProcs: 4,
		Model: workload.Linear{},
	}
}

func sample() []Completion {
	return []Completion{
		{Job: job(1, 0, 1, -1, 8), Start: 0, End: 10, Procs: 2},
		{Job: job(2, 5, 3, 12, 4), Start: 6, End: 14, Procs: 1},
		{Job: job(3, 2, 2, 100, 2), Start: 3, End: 5, Procs: 4},
	}
}

func TestMakespan(t *testing.T) {
	if got := Makespan(sample()); got != 14 {
		t.Fatalf("Makespan = %v", got)
	}
	if Makespan(nil) != 0 {
		t.Fatal("empty Makespan != 0")
	}
}

func TestSums(t *testing.T) {
	cs := sample()
	if got := SumCompletion(cs); got != 29 {
		t.Fatalf("ΣC = %v", got)
	}
	if got := SumWeightedCompletion(cs); got != 10+42+10 {
		t.Fatalf("ΣwC = %v", got)
	}
	// flows: 10-0, 14-5, 5-2 = 10, 9, 3
	if got := SumFlow(cs); got != 22 {
		t.Fatalf("ΣF = %v", got)
	}
	if got := MeanFlow(cs); math.Abs(got-22.0/3) > 1e-12 {
		t.Fatalf("meanF = %v", got)
	}
	if got := MaxFlow(cs); got != 10 {
		t.Fatalf("maxF = %v", got)
	}
}

func TestStretch(t *testing.T) {
	cs := sample()
	// job1: min time on 4 procs = 8/4 = 2; flow 10; stretch 5.
	if got := cs[0].Stretch(4); math.Abs(got-5) > 1e-12 {
		t.Fatalf("stretch = %v", got)
	}
	if got := MaxStretch(cs, 4); math.Abs(got-9.0) > 1e-12 {
		// job2: min time 1, flow 9 → 9; job3: min 0.5, flow 3 → 6.
		t.Fatalf("MaxStretch = %v", got)
	}
	want := (5.0 + 9.0 + 6.0) / 3
	if got := MeanStretch(cs, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanStretch = %v, want %v", got, want)
	}
}

func TestTardiness(t *testing.T) {
	cs := sample()
	// job1 no due date; job2 due 12 end 14 → 2; job3 due 100 → 0.
	if got := SumTardiness(cs); got != 2 {
		t.Fatalf("ΣT = %v", got)
	}
	if got := MaxTardiness(cs); got != 2 {
		t.Fatalf("maxT = %v", got)
	}
	if got := LateCount(cs); got != 1 {
		t.Fatalf("late = %d", got)
	}
}

func TestThroughput(t *testing.T) {
	cs := sample()
	if got := Throughput(cs, 10); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Throughput(10) = %v", got) // jobs 1 and 3 done by t=10
	}
	if got := Throughput(cs, 100); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("Throughput(100) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Throughput(0) did not panic")
		}
	}()
	Throughput(cs, 0)
}

func TestUtilization(t *testing.T) {
	cs := sample()
	// areas: 2*10 + 1*8 + 4*2 = 36; horizon 14 * m.
	if got := Utilization(cs, 4); math.Abs(got-36.0/56) > 1e-12 {
		t.Fatalf("Utilization = %v", got)
	}
	if Utilization(nil, 4) != 0 {
		t.Fatal("empty utilization != 0")
	}
}

func TestReport(t *testing.T) {
	r := NewReport(sample(), 4)
	if r.N != 3 || r.Makespan != 14 || r.LateCount != 1 {
		t.Fatalf("report = %+v", r)
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestStretchDegenerate(t *testing.T) {
	// A job whose min time is +Inf (cannot run) contributes stretch 0.
	j := &workload.Job{
		ID: 9, Kind: workload.Rigid, SeqTime: 5, MinProcs: 8, MaxProcs: 8,
		Model: workload.Linear{},
	}
	c := Completion{Job: j, Start: 0, End: 10, Procs: 8}
	if got := c.Stretch(4); got != 0 {
		t.Fatalf("degenerate stretch = %v", got)
	}
}
