package metrics

// Retention is the completion-history store of a simulation. The §3
// criteria never need it — they stream through an Accumulator — so
// keeping records is a policy choice: batch experiments and goldens
// retain everything, archive replays retain nothing (or a bounded tail
// for inspection), and the trace/observe path can spill to disk.
type Retention interface {
	// Add stores one completion record.
	Add(c Completion)
	// Len returns the number of records still retrievable.
	Len() int
	// Completions returns the retained records, oldest first. The
	// returned slice is owned by the caller unless the implementation
	// documents otherwise.
	Completions() []Completion
}

// fullRetention keeps every record in memory — the historical behaviour
// and the default of cluster simulations (tests, goldens and the
// offline tables all read the full history).
type fullRetention struct {
	cs []Completion
}

// NewFullRetention retains every completion record (O(total jobs)).
func NewFullRetention() Retention { return &fullRetention{} }

func (f *fullRetention) Add(c Completion)          { f.cs = append(f.cs, c) }
func (f *fullRetention) Len() int                  { return len(f.cs) }
func (f *fullRetention) Completions() []Completion { return append([]Completion(nil), f.cs...) }

// Viewer is an optional Retention extension giving zero-copy read
// access to the live records (owner-goroutine only, not to be retained).
type Viewer interface {
	View() []Completion
}

func (f *fullRetention) View() []Completion { return f.cs }

// ringRetention keeps the most recent capacity records.
type ringRetention struct {
	buf   []Completion
	next  int
	full  bool
	spill func(c Completion)
}

// NewRing retains only the most recent capacity completion records —
// the bounded store of streaming replays that still want a tail to
// inspect. capacity must be positive.
func NewRing(capacity int) Retention {
	if capacity <= 0 {
		capacity = 1
	}
	return &ringRetention{buf: make([]Completion, 0, capacity)}
}

// NewSpillRing is a ring whose evictions are handed to spill instead of
// being dropped — the hook disk spoolers (e.g. trace.SWFSpool) attach
// to. spill may be nil.
func NewSpillRing(capacity int, spill func(c Completion)) Retention {
	if capacity <= 0 {
		capacity = 1
	}
	return &ringRetention{buf: make([]Completion, 0, capacity), spill: spill}
}

func (r *ringRetention) Add(c Completion) {
	if !r.full {
		r.buf = append(r.buf, c)
		if len(r.buf) == cap(r.buf) {
			r.full = true
		}
		return
	}
	if r.spill != nil {
		r.spill(r.buf[r.next])
	}
	r.buf[r.next] = c
	r.next = (r.next + 1) % len(r.buf)
}

func (r *ringRetention) Len() int {
	return len(r.buf)
}

func (r *ringRetention) Completions() []Completion {
	out := make([]Completion, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// discardRetention keeps nothing: the pure-streaming mode where the
// accumulator report is the only output (archive replays).
type discardRetention struct{ n int }

// NewDiscard retains no completion records at all.
func NewDiscard() Retention { return &discardRetention{} }

func (d *discardRetention) Add(Completion)            { d.n++ }
func (d *discardRetention) Len() int                  { return 0 }
func (d *discardRetention) Completions() []Completion { return nil }
