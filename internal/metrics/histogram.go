package metrics

import (
	"fmt"
	"io"
	"sync"
)

// Histogram is a fixed-bucket cumulative histogram in Prometheus
// exposition shape. Observe is safe for concurrent use; the service
// layer feeds it from run workers while /metrics scrapes it.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; the last bucket is +Inf overflow
	sum    float64
	n      uint64
}

// NewHistogram builds a histogram with the given ascending upper
// bucket bounds (an implicit +Inf bucket is appended).
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Write emits the histogram in Prometheus text exposition format.
func (h *Histogram) Write(w io.Writer, name, help string) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, n)
}

// Process-wide histograms derived from recorded run traces: every
// traced run's time-binned utilization and queue depth feed them when
// the run completes, so /metrics exposes a fleet-level picture of how
// loaded the simulated platforms were.
var (
	TraceUtilization = NewHistogram(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1)
	TraceQueueDepth  = NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
)

// WriteTraceMetrics writes the trace-derived histograms in Prometheus
// exposition format (appended to both daemons' /metrics pages).
func WriteTraceMetrics(w io.Writer) {
	TraceUtilization.Write(w, "gridd_trace_utilization_ratio",
		"Per-time-bin utilization of traced runs (busy procs / capacity).")
	TraceQueueDepth.Write(w, "gridd_trace_queue_depth",
		"Per-time-bin mean queue depth of traced runs.")
}
